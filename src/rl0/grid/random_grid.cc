#include "rl0/grid/random_grid.h"

#include <algorithm>
#include <cmath>

#include "rl0/geom/distance_kernels.h"
#include "rl0/util/check.h"
#include "rl0/util/rng.h"

namespace rl0 {

namespace {
thread_local uint64_t g_dfs_nodes = 0;

// Per-point adjacency scratch, one struct so the hot path pays a single
// thread-local address computation instead of four.
struct AdjScratch {
  std::vector<int64_t> base;
  std::vector<double> scaled;
  std::vector<uint64_t> mix0;
  std::vector<uint8_t> free_axis;
  void Resize(size_t dim, bool screened) {
    base.resize(dim);
    scaled.resize(dim);
    if (screened) {
      mix0.resize(dim);
      free_axis.resize(dim);
    }
  }
};
thread_local AdjScratch g_adj_scratch;
}  // namespace

RandomGrid::RandomGrid(size_t dim, double side, uint64_t seed, Metric metric)
    : dim_(dim), side_(side), metric_(metric) {
  RL0_CHECK(dim >= 1);
  RL0_CHECK(side > 0.0);
  Xoshiro256pp rng(SplitMix64(seed ^ 0xC3115A11D5EEDULL));
  offset_.resize(dim);
  for (double& o : offset_) o = rng.NextDouble() * side;
}

double RandomGrid::Accumulate(double acc, double axis_distance) const {
  switch (metric_) {
    case Metric::kL2:
      return acc + axis_distance * axis_distance;
    case Metric::kL1:
      return acc + axis_distance;
    case Metric::kLinf:
      return std::max(acc, axis_distance);
  }
  return acc;
}

CellCoord RandomGrid::CellCoordOf(PointView p) const {
  RL0_DCHECK(p.dim() == dim_);
  CellCoord coord(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    coord[i] = static_cast<int64_t>(std::floor((p[i] - offset_[i]) / side_));
  }
  return coord;
}

uint64_t RandomGrid::CellKeyOf(PointView p) const {
  RL0_DCHECK(p.dim() == dim_);
  // Allocation-free fold, identical to CellKeyOf(CellCoordOf(p)).
  uint64_t h = CellKeySeed(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    h = CellKeyCombine(h, static_cast<int64_t>(
                              std::floor((p[i] - offset_[i]) / side_)));
  }
  return h;
}

double RandomGrid::DistanceToCell(PointView p,
                                  const CellCoord& coord) const {
  RL0_DCHECK(p.dim() == dim_ && coord.size() == dim_);
  double acc = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    const double lo = offset_[i] + static_cast<double>(coord[i]) * side_;
    const double hi = lo + side_;
    double d = 0.0;
    if (p[i] < lo) {
      d = lo - p[i];
    } else if (p[i] > hi) {
      d = p[i] - hi;
    }
    acc = Accumulate(acc, d);
  }
  return metric_ == Metric::kL2 ? std::sqrt(acc) : acc;
}

// Depth-first search over per-axis cell offsets. `scaled[i]` is the
// fractional position of p inside its cell on axis i (in [0, side)).
// For an axis offset o, the per-axis distance from p to the offset cell is
//   o == 0 : 0
//   o  > 0 : o*side - scaled[i]          (move up to the cell's low face)
//   o  < 0 : scaled[i] + (|o|-1)*side    (move down to the cell's high face)
// Offsets are explored in order of increasing distance (0, -1, +1, -2, ...)
// so each direction can stop at the first pruned offset. The accumulator
// `acc` folds per-axis distances under the grid's metric (Accumulate);
// `budget` is α² for L2 and α otherwise. Pruning is exact because every
// Minkowski accumulator is monotone in each axis distance.
void RandomGrid::DfsSearch(PointView p, const CellCoord& base,
                           const std::vector<double>& scaled, double budget,
                           size_t axis, double acc, CellCoord* current,
                           std::vector<CellCoord>* out) const {
  ++g_dfs_nodes;
  if (axis == dim_) {
    out->push_back(*current);
    return;
  }
  const double frac = scaled[axis];
  // Offset 0 first: zero added distance.
  (*current)[axis] = base[axis];
  DfsSearch(p, base, scaled, budget, axis + 1, acc, current, out);
  // Negative offsets: distance grows with |o|; stop at the first prune.
  for (int64_t o = -1;; --o) {
    const double d =
        frac + (static_cast<double>(-o) - 1.0) * side_;
    const double next = Accumulate(acc, d);
    if (next > budget) break;
    (*current)[axis] = base[axis] + o;
    DfsSearch(p, base, scaled, budget, axis + 1, next, current, out);
  }
  // Positive offsets.
  for (int64_t o = 1;; ++o) {
    const double d = static_cast<double>(o) * side_ - frac;
    const double next = Accumulate(acc, d);
    if (next > budget) break;
    (*current)[axis] = base[axis] + o;
    DfsSearch(p, base, scaled, budget, axis + 1, next, current, out);
  }
  (*current)[axis] = base[axis];
}

void RandomGrid::AdjacentCellCoords(PointView p, double alpha,
                                    std::vector<CellCoord>* out) const {
  RL0_DCHECK(p.dim() == dim_);
  RL0_DCHECK(alpha > 0.0);
  out->clear();
  g_dfs_nodes = 0;
  const CellCoord base = CellCoordOf(p);
  std::vector<double> scaled(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    const double lo = offset_[i] + static_cast<double>(base[i]) * side_;
    scaled[i] = p[i] - lo;  // in [0, side)
  }
  CellCoord current = base;
  const double budget = metric_ == Metric::kL2 ? alpha * alpha : alpha;
  DfsSearch(p, base, scaled, budget, 0, 0.0, &current, out);
}

// Hot-path adjacency: identical output to the coordinate DFS (the same
// per-axis moves and pruning), but no CellCoord materialization — the
// per-axis scratch lives in thread-local buffers, quantization runs
// through the vectorized QuantizeAxes kernel (bit-identical to the scalar
// loop, see geom/distance_kernels.h), and the cell keys are folded
// incrementally along the search path (DfsKeys). The prologue also marks
// which axes can branch at all (free_axis): an axis whose ±1 moves
// already exceed the budget at zero accumulated distance can never
// deviate on any path (accumulators are monotone), so the DFS folds it
// inline — at high dimension that is nearly every axis.
template <typename KeyVec>
uint64_t RandomGrid::AdjacentCellsImpl(PointView p, double alpha,
                                       KeyVec* out) const {
  RL0_DCHECK(p.dim() == dim_);
  RL0_DCHECK(alpha > 0.0);
  out->clear();
  g_dfs_nodes = 0;
  const bool screened = dim_ >= kScreenMinDim;
  AdjScratch& scratch = g_adj_scratch;
  scratch.Resize(dim_, screened);
  int64_t* base = scratch.base.data();
  double* scaled = scratch.scaled.data();
  uint64_t* mix0 = scratch.mix0.data();
  uint8_t* free_axis = scratch.free_axis.data();
  if (dim_ >= 4) {
    QuantizeAxes(p.data(), offset_.data(), dim_, side_, base, scaled);
  } else {
    // Below a vector's width the dispatch call costs more than it saves.
    for (size_t i = 0; i < dim_; ++i) {
      base[i] = static_cast<int64_t>(std::floor((p[i] - offset_[i]) / side_));
      scaled[i] = p[i] - (offset_[i] + static_cast<double>(base[i]) * side_);
    }
  }
  const double budget = metric_ == Metric::kL2 ? alpha * alpha : alpha;
  const DfsCtx<KeyVec> ctx{base, mix0, free_axis, scaled, budget, out};
  if (screened) {
    for (size_t i = 0; i < dim_; ++i) {
      mix0[i] = SplitMix64(static_cast<uint64_t>(base[i]));
      // The o = ±1 first-step distances, written exactly as the DFS loop
      // entries compute them (o = -1 and o = +1 below) so the feasibility
      // screen matches the in-search pruning bit for bit at acc = 0.
      const double dneg = scaled[i] + (1.0 - 1.0) * side_;
      const double dpos = 1.0 * side_ - scaled[i];
      free_axis[i] = Accumulate(0.0, dneg) <= budget ||
                     Accumulate(0.0, dpos) <= budget;
    }
    DfsKeys<true>(ctx, 0, 0.0, CellKeySeed(dim_));
  } else {
    // Low dimension with side ≤ d·α: nearly every axis can branch (at
    // d = 2, provably every axis), so the screen, the memoized mix and
    // the per-node check would be pure overhead — this instantiation is
    // the plain recursion, untouched.
    DfsKeys<false>(ctx, 0, 0.0, CellKeySeed(dim_));
  }
  // The zero-offset path is unprunable and explored first: (*out)[0] is
  // the key of cell(p) itself, before the deterministic sort.
  const uint64_t base_key = (*out)[0];
  std::sort(out->begin(), out->end());
  return base_key;
}

void RandomGrid::AdjacentCells(PointView p, double alpha,
                               std::vector<uint64_t>* out) const {
  (void)AdjacentCellsImpl(p, alpha, out);
}

void RandomGrid::AdjacentCells(PointView p, double alpha,
                               AdjKeyVec* out) const {
  (void)AdjacentCellsImpl(p, alpha, out);
}

uint64_t RandomGrid::AdjacentCellsWithBase(PointView p, double alpha,
                                           AdjKeyVec* out) const {
  return AdjacentCellsImpl(p, alpha, out);
}

uint64_t RandomGrid::AdjacentCellsWithBase(PointView p, double alpha,
                                           std::vector<uint64_t>* out) const {
  return AdjacentCellsImpl(p, alpha, out);
}

template <bool kScreened, typename KeyVec>
void RandomGrid::DfsKeys(const DfsCtx<KeyVec>& ctx, size_t axis, double acc,
                         uint64_t hash) const {
  // Fixed axes cannot branch on any path (their ±1 moves bust the budget
  // even from acc = 0, and accumulators only grow): fold them inline.
  // Node accounting matches the plain recursion one-to-one — one node
  // per axis step plus one per emitted key.
  if (kScreened) {
    while (axis < dim_ && !ctx.free_axis[axis]) {
      ++g_dfs_nodes;
      hash = SplitMix64(hash ^ ctx.mix0[axis]);  // == CellKeyCombine(·, base)
      ++axis;
    }
  }
  if (axis == dim_) {
    ++g_dfs_nodes;
    ctx.out->push_back(hash);
    return;
  }
  ++g_dfs_nodes;
  const double frac = ctx.scaled[axis];
  // Offset 0 first: zero added distance. The screened build reuses the
  // memoized inner mix (== CellKeyCombine(hash, base[axis]) bit for bit);
  // the unscreened build has no mix0 column and folds directly.
  if constexpr (kScreened) {
    DfsKeys<kScreened>(ctx, axis + 1, acc,
                       SplitMix64(hash ^ ctx.mix0[axis]));
  } else {
    DfsKeys<kScreened>(ctx, axis + 1, acc,
                       CellKeyCombine(hash, ctx.base[axis]));
  }
  // Negative offsets: distance grows with |o|; stop at the first prune.
  for (int64_t o = -1;; --o) {
    const double d = frac + (static_cast<double>(-o) - 1.0) * side_;
    const double next = Accumulate(acc, d);
    if (next > ctx.budget) break;
    DfsKeys<kScreened>(ctx, axis + 1, next,
            CellKeyCombine(hash, ctx.base[axis] + o));
  }
  // Positive offsets.
  for (int64_t o = 1;; ++o) {
    const double d = static_cast<double>(o) * side_ - frac;
    const double next = Accumulate(acc, d);
    if (next > ctx.budget) break;
    DfsKeys<kScreened>(ctx, axis + 1, next,
            CellKeyCombine(hash, ctx.base[axis] + o));
  }
}

void RandomGrid::AdjacentCellsNaive(PointView p, double alpha,
                                    std::vector<uint64_t>* out) const {
  RL0_DCHECK(p.dim() == dim_);
  out->clear();
  const CellCoord base = CellCoordOf(p);
  const int64_t r = static_cast<int64_t>(std::floor(alpha / side_)) + 1;
  CellCoord current(dim_);
  const double alpha_sq = alpha * alpha;
  // Odometer enumeration of the full (2r+1)^d block.
  std::vector<int64_t> off(dim_, -r);
  const double budget = metric_ == Metric::kL2 ? alpha_sq : alpha;
  for (;;) {
    for (size_t i = 0; i < dim_; ++i) current[i] = base[i] + off[i];
    // Exact box distance (not the incremental DFS formula) as a cross-check.
    double acc = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      const double lo = offset_[i] + static_cast<double>(current[i]) * side_;
      const double hi = lo + side_;
      double d = 0.0;
      if (p[i] < lo) d = lo - p[i];
      if (p[i] > hi) d = p[i] - hi;
      acc = Accumulate(acc, d);
    }
    if (acc <= budget) out->push_back(::rl0::CellKeyOf(current));
    size_t axis = 0;
    while (axis < dim_ && ++off[axis] > r) {
      off[axis] = -r;
      ++axis;
    }
    if (axis == dim_) break;
  }
  std::sort(out->begin(), out->end());
}

void RandomGrid::AdjacentCellsPaperDfs(PointView p, double alpha,
                                       std::vector<uint64_t>* out) const {
  RL0_DCHECK(p.dim() == dim_);
  out->clear();
  // Work in grid units (side rescaled to 1), exactly as Section 6.2.
  std::vector<double> x(dim_);
  for (size_t i = 0; i < dim_; ++i) x[i] = (p[i] - offset_[i]) / side_;
  const double alpha_scaled = alpha / side_;
  const double alpha_sq = alpha_scaled * alpha_scaled;

  std::vector<double> y(dim_, 0.0);
  CellCoord cell(dim_);
  // Recursive lambda implementing Algorithm 6 (SearchAdj).
  auto search = [&](auto&& self, size_t i, double s) -> void {
    if (s > alpha_sq) return;
    if (i == dim_) {
      // q' = q + 0.01 (q - p): nudge off the boundary, then take floor.
      for (size_t j = 0; j < dim_; ++j) {
        const double qj = y[j] + 0.01 * (y[j] - x[j]);
        cell[j] = static_cast<int64_t>(std::floor(qj));
      }
      out->push_back(::rl0::CellKeyOf(cell));
      return;
    }
    const double fl = std::floor(x[i]);
    const double ce = std::ceil(x[i]);
    y[i] = fl;
    self(self, i + 1, s + (fl - x[i]) * (fl - x[i]));
    y[i] = x[i];
    self(self, i + 1, s);
    y[i] = ce;
    self(self, i + 1, s + (ce - x[i]) * (ce - x[i]));
  };
  search(search, 0, 0.0);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

uint64_t RandomGrid::last_dfs_nodes() { return g_dfs_nodes; }

}  // namespace rl0
