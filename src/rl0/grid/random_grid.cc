#include "rl0/grid/random_grid.h"

#include <algorithm>
#include <cmath>

#include "rl0/util/check.h"
#include "rl0/util/rng.h"

namespace rl0 {

namespace {
thread_local uint64_t g_dfs_nodes = 0;
}  // namespace

RandomGrid::RandomGrid(size_t dim, double side, uint64_t seed, Metric metric)
    : dim_(dim), side_(side), metric_(metric) {
  RL0_CHECK(dim >= 1);
  RL0_CHECK(side > 0.0);
  Xoshiro256pp rng(SplitMix64(seed ^ 0xC3115A11D5EEDULL));
  offset_.resize(dim);
  for (double& o : offset_) o = rng.NextDouble() * side;
}

double RandomGrid::Accumulate(double acc, double axis_distance) const {
  switch (metric_) {
    case Metric::kL2:
      return acc + axis_distance * axis_distance;
    case Metric::kL1:
      return acc + axis_distance;
    case Metric::kLinf:
      return std::max(acc, axis_distance);
  }
  return acc;
}

CellCoord RandomGrid::CellCoordOf(PointView p) const {
  RL0_DCHECK(p.dim() == dim_);
  CellCoord coord(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    coord[i] = static_cast<int64_t>(std::floor((p[i] - offset_[i]) / side_));
  }
  return coord;
}

uint64_t RandomGrid::CellKeyOf(PointView p) const {
  RL0_DCHECK(p.dim() == dim_);
  // Allocation-free fold, identical to CellKeyOf(CellCoordOf(p)).
  uint64_t h = CellKeySeed(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    h = CellKeyCombine(h, static_cast<int64_t>(
                              std::floor((p[i] - offset_[i]) / side_)));
  }
  return h;
}

double RandomGrid::DistanceToCell(PointView p,
                                  const CellCoord& coord) const {
  RL0_DCHECK(p.dim() == dim_ && coord.size() == dim_);
  double acc = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    const double lo = offset_[i] + static_cast<double>(coord[i]) * side_;
    const double hi = lo + side_;
    double d = 0.0;
    if (p[i] < lo) {
      d = lo - p[i];
    } else if (p[i] > hi) {
      d = p[i] - hi;
    }
    acc = Accumulate(acc, d);
  }
  return metric_ == Metric::kL2 ? std::sqrt(acc) : acc;
}

// Depth-first search over per-axis cell offsets. `scaled[i]` is the
// fractional position of p inside its cell on axis i (in [0, side)).
// For an axis offset o, the per-axis distance from p to the offset cell is
//   o == 0 : 0
//   o  > 0 : o*side - scaled[i]          (move up to the cell's low face)
//   o  < 0 : scaled[i] + (|o|-1)*side    (move down to the cell's high face)
// Offsets are explored in order of increasing distance (0, -1, +1, -2, ...)
// so each direction can stop at the first pruned offset. The accumulator
// `acc` folds per-axis distances under the grid's metric (Accumulate);
// `budget` is α² for L2 and α otherwise. Pruning is exact because every
// Minkowski accumulator is monotone in each axis distance.
void RandomGrid::DfsSearch(PointView p, const CellCoord& base,
                           const std::vector<double>& scaled, double budget,
                           size_t axis, double acc, CellCoord* current,
                           std::vector<CellCoord>* out) const {
  ++g_dfs_nodes;
  if (axis == dim_) {
    out->push_back(*current);
    return;
  }
  const double frac = scaled[axis];
  // Offset 0 first: zero added distance.
  (*current)[axis] = base[axis];
  DfsSearch(p, base, scaled, budget, axis + 1, acc, current, out);
  // Negative offsets: distance grows with |o|; stop at the first prune.
  for (int64_t o = -1;; --o) {
    const double d =
        frac + (static_cast<double>(-o) - 1.0) * side_;
    const double next = Accumulate(acc, d);
    if (next > budget) break;
    (*current)[axis] = base[axis] + o;
    DfsSearch(p, base, scaled, budget, axis + 1, next, current, out);
  }
  // Positive offsets.
  for (int64_t o = 1;; ++o) {
    const double d = static_cast<double>(o) * side_ - frac;
    const double next = Accumulate(acc, d);
    if (next > budget) break;
    (*current)[axis] = base[axis] + o;
    DfsSearch(p, base, scaled, budget, axis + 1, next, current, out);
  }
  (*current)[axis] = base[axis];
}

void RandomGrid::AdjacentCellCoords(PointView p, double alpha,
                                    std::vector<CellCoord>* out) const {
  RL0_DCHECK(p.dim() == dim_);
  RL0_DCHECK(alpha > 0.0);
  out->clear();
  g_dfs_nodes = 0;
  const CellCoord base = CellCoordOf(p);
  std::vector<double> scaled(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    const double lo = offset_[i] + static_cast<double>(base[i]) * side_;
    scaled[i] = p[i] - lo;  // in [0, side)
  }
  CellCoord current = base;
  const double budget = metric_ == Metric::kL2 ? alpha * alpha : alpha;
  DfsSearch(p, base, scaled, budget, 0, 0.0, &current, out);
}

// Hot-path adjacency: identical output to the coordinate DFS (the same
// per-axis moves and pruning), but no CellCoord materialization — the
// per-axis scratch lives in thread-local buffers and the cell keys are
// folded incrementally along the search path (DfsKeys).
template <typename KeyVec>
void RandomGrid::AdjacentCellsImpl(PointView p, double alpha,
                                   KeyVec* out) const {
  RL0_DCHECK(p.dim() == dim_);
  RL0_DCHECK(alpha > 0.0);
  out->clear();
  g_dfs_nodes = 0;
  thread_local std::vector<int64_t> base;
  thread_local std::vector<double> scaled;
  base.resize(dim_);
  scaled.resize(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    base[i] = static_cast<int64_t>(std::floor((p[i] - offset_[i]) / side_));
    const double lo = offset_[i] + static_cast<double>(base[i]) * side_;
    scaled[i] = p[i] - lo;  // in [0, side)
  }
  const double budget = metric_ == Metric::kL2 ? alpha * alpha : alpha;
  DfsKeys(base.data(), scaled.data(), budget, 0, 0.0, CellKeySeed(dim_),
          out);
  std::sort(out->begin(), out->end());
}

void RandomGrid::AdjacentCells(PointView p, double alpha,
                               std::vector<uint64_t>* out) const {
  AdjacentCellsImpl(p, alpha, out);
}

void RandomGrid::AdjacentCells(PointView p, double alpha,
                               AdjKeyVec* out) const {
  AdjacentCellsImpl(p, alpha, out);
}

template <typename KeyVec>
void RandomGrid::DfsKeys(const int64_t* base, const double* scaled,
                         double budget, size_t axis, double acc,
                         uint64_t hash, KeyVec* out) const {
  ++g_dfs_nodes;
  if (axis == dim_) {
    out->push_back(hash);
    return;
  }
  const double frac = scaled[axis];
  // Offset 0 first: zero added distance.
  DfsKeys(base, scaled, budget, axis + 1, acc,
          CellKeyCombine(hash, base[axis]), out);
  // Negative offsets: distance grows with |o|; stop at the first prune.
  for (int64_t o = -1;; --o) {
    const double d = frac + (static_cast<double>(-o) - 1.0) * side_;
    const double next = Accumulate(acc, d);
    if (next > budget) break;
    DfsKeys(base, scaled, budget, axis + 1, next,
            CellKeyCombine(hash, base[axis] + o), out);
  }
  // Positive offsets.
  for (int64_t o = 1;; ++o) {
    const double d = static_cast<double>(o) * side_ - frac;
    const double next = Accumulate(acc, d);
    if (next > budget) break;
    DfsKeys(base, scaled, budget, axis + 1, next,
            CellKeyCombine(hash, base[axis] + o), out);
  }
}

void RandomGrid::AdjacentCellsNaive(PointView p, double alpha,
                                    std::vector<uint64_t>* out) const {
  RL0_DCHECK(p.dim() == dim_);
  out->clear();
  const CellCoord base = CellCoordOf(p);
  const int64_t r = static_cast<int64_t>(std::floor(alpha / side_)) + 1;
  CellCoord current(dim_);
  const double alpha_sq = alpha * alpha;
  // Odometer enumeration of the full (2r+1)^d block.
  std::vector<int64_t> off(dim_, -r);
  const double budget = metric_ == Metric::kL2 ? alpha_sq : alpha;
  for (;;) {
    for (size_t i = 0; i < dim_; ++i) current[i] = base[i] + off[i];
    // Exact box distance (not the incremental DFS formula) as a cross-check.
    double acc = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      const double lo = offset_[i] + static_cast<double>(current[i]) * side_;
      const double hi = lo + side_;
      double d = 0.0;
      if (p[i] < lo) d = lo - p[i];
      if (p[i] > hi) d = p[i] - hi;
      acc = Accumulate(acc, d);
    }
    if (acc <= budget) out->push_back(::rl0::CellKeyOf(current));
    size_t axis = 0;
    while (axis < dim_ && ++off[axis] > r) {
      off[axis] = -r;
      ++axis;
    }
    if (axis == dim_) break;
  }
  std::sort(out->begin(), out->end());
}

void RandomGrid::AdjacentCellsPaperDfs(PointView p, double alpha,
                                       std::vector<uint64_t>* out) const {
  RL0_DCHECK(p.dim() == dim_);
  out->clear();
  // Work in grid units (side rescaled to 1), exactly as Section 6.2.
  std::vector<double> x(dim_);
  for (size_t i = 0; i < dim_; ++i) x[i] = (p[i] - offset_[i]) / side_;
  const double alpha_scaled = alpha / side_;
  const double alpha_sq = alpha_scaled * alpha_scaled;

  std::vector<double> y(dim_, 0.0);
  CellCoord cell(dim_);
  // Recursive lambda implementing Algorithm 6 (SearchAdj).
  auto search = [&](auto&& self, size_t i, double s) -> void {
    if (s > alpha_sq) return;
    if (i == dim_) {
      // q' = q + 0.01 (q - p): nudge off the boundary, then take floor.
      for (size_t j = 0; j < dim_; ++j) {
        const double qj = y[j] + 0.01 * (y[j] - x[j]);
        cell[j] = static_cast<int64_t>(std::floor(qj));
      }
      out->push_back(::rl0::CellKeyOf(cell));
      return;
    }
    const double fl = std::floor(x[i]);
    const double ce = std::ceil(x[i]);
    y[i] = fl;
    self(self, i + 1, s + (fl - x[i]) * (fl - x[i]));
    y[i] = x[i];
    self(self, i + 1, s);
    y[i] = ce;
    self(self, i + 1, s + (ce - x[i]) * (ce - x[i]));
  };
  search(search, 0, 0.0);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

uint64_t RandomGrid::last_dfs_nodes() { return g_dfs_nodes; }

}  // namespace rl0
