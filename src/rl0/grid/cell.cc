#include "rl0/grid/cell.h"

#include "rl0/util/check.h"
#include "rl0/util/rng.h"

namespace rl0 {

uint64_t CellKeyOf(const CellCoord& coord) {
  // Sequential SplitMix64 combine; seeded by the dimension so that e.g.
  // the 1-d cell (5) and the 2-d cell (5, 0) get unrelated keys.
  uint64_t h = CellKeySeed(coord.size());
  for (int64_t c : coord) h = CellKeyCombine(h, c);
  return h;
}

uint64_t RowMajorCellId2D(int64_t row, int64_t col, int64_t columns) {
  RL0_CHECK(row >= 0 && col >= 0 && columns > 0 && col < columns);
  return static_cast<uint64_t>(row) * static_cast<uint64_t>(columns) +
         static_cast<uint64_t>(col);
}

}  // namespace rl0
