// Grid cell coordinates and 64-bit cell keys.
//
// A cell of the random grid is identified by its integer coordinate vector
// (c1, ..., cd). The paper (Section 2.1) numbers cells of the bounded grid
// row-major; to support unbounded coordinates and any dimension we instead
// map the coordinate vector to a 64-bit key with a fixed (unseeded) strong
// mixing combine. The sampling hash h (CellHasher, which *is* seeded) is
// applied on top of this key, so the composition plays the role of the
// paper's hash on cell IDs. Key collisions would merge two distant cells
// with probability ~ (#cells)^2 / 2^64 — negligible at streaming scales and
// harmless to correctness of group assignment (which is distance-checked).

#ifndef RL0_GRID_CELL_H_
#define RL0_GRID_CELL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rl0/util/rng.h"

namespace rl0 {

/// Integer coordinates of a grid cell.
using CellCoord = std::vector<int64_t>;

/// The cell-key fold, exposed axis by axis so hot paths (the adjacency
/// DFS) can thread partial hashes down the search tree instead of
/// materializing coordinate vectors: a d-dim key is
///   CellKeyCombine(...CellKeyCombine(CellKeySeed(d), c1)..., cd).
inline uint64_t CellKeySeed(size_t dim) {
  return SplitMix64(0x5274D1E5ULL + dim);
}
inline uint64_t CellKeyCombine(uint64_t h, int64_t coord) {
  return SplitMix64(h ^ SplitMix64(static_cast<uint64_t>(coord)));
}

/// Maps a coordinate vector to a 64-bit cell key (fixed mixing combine).
uint64_t CellKeyOf(const CellCoord& coord);

/// Row-major cell ID for a bounded 2-d grid with `columns` columns, exactly
/// as in the paper's Section 2.1 ((i-1)·Δ + j). Provided for tests and for
/// fidelity demonstrations; requires non-negative coordinates.
uint64_t RowMajorCellId2D(int64_t row, int64_t col, int64_t columns);

}  // namespace rl0

#endif  // RL0_GRID_CELL_H_
