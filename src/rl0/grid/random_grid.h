// The randomly shifted grid over R^d and the adj(p) neighborhood search.
//
// Section 2.1 of the paper posts a random grid of side α/2 (constant d) or
// d·α (high d, Section 4) over the space. For a point p,
//
//   cell(p) = the cell containing p,
//   adj(p)  = { cells C : d(p, C) ≤ α },
//
// where d(p, C) is the minimum distance from p to the (closed) cell box.
// adj(p) is computed with the paper's DFS over per-coordinate nearest
// points (Algorithms 6–7): for each axis the point either stays, moves to
// the lower cell boundary, or to the upper one; the search prunes as soon
// as the accumulated squared movement exceeds α². We generalize the
// per-axis moves to offsets -r..+r with r = ⌊α/side⌋ + 1 so the search is
// exact in the constant-d regime too (side = α/2 ⇒ cells two away can
// still be within α; the paper's |adj(p)| ≤ 25 bound in 2-d corresponds to
// the 5×5 block). With r = 1 the search degenerates to exactly the paper's
// Algorithm 6.

#ifndef RL0_GRID_RANDOM_GRID_H_
#define RL0_GRID_RANDOM_GRID_H_

#include <cstdint>
#include <vector>

#include "rl0/geom/metric.h"
#include "rl0/geom/point.h"
#include "rl0/grid/cell.h"
#include "rl0/util/small_vector.h"

namespace rl0 {

/// Adjacency key buffer with inline storage. 32 covers the paper's 2-d
/// worst case (|adj(p)| ≤ 25, the 5×5 block) and the high-dimension
/// regime's typical handful of keys, so the ingestion hot path never
/// allocates for adjacency results.
using AdjKeyVec = SmallVector<uint64_t, 32>;

/// A randomly shifted axis-aligned grid with cubic cells.
///
/// Immutable after construction; all methods are const and thread-safe.
class RandomGrid {
 public:
  /// Creates a grid over R^dim with the given cell side length; the offset
  /// is drawn uniformly from [0, side)^dim using `seed`. The metric
  /// governs DistanceToCell and the adjacency searches (the DFS pruning is
  /// exact for all Minkowski metrics; default L2 per the paper).
  /// Requires dim >= 1 and side > 0.
  RandomGrid(size_t dim, double side, uint64_t seed,
             Metric metric = Metric::kL2);

  /// Dimension of the underlying space.
  size_t dim() const { return dim_; }

  /// Cell side length.
  double side() const { return side_; }

  /// The random offset (for tests).
  const std::vector<double>& offset() const { return offset_; }

  /// The metric in force.
  Metric metric() const { return metric_; }

  /// Integer coordinates of the cell containing p. Requires p.dim()==dim().
  CellCoord CellCoordOf(PointView p) const;

  /// 64-bit key of the cell containing p.
  uint64_t CellKeyOf(PointView p) const;

  /// Minimum Euclidean distance from p to the closed box of cell `coord`.
  double DistanceToCell(PointView p, const CellCoord& coord) const;

  /// Computes adj(p) = keys of all cells within distance `alpha` of p,
  /// including cell(p) itself, via the pruned DFS described above.
  /// Results are appended to `out` (cleared first). Deterministic order.
  void AdjacentCells(PointView p, double alpha,
                     std::vector<uint64_t>* out) const;

  /// As above into an inline-capacity buffer — the allocation-free form
  /// the sampler hot paths use. Identical keys and order.
  void AdjacentCells(PointView p, double alpha, AdjKeyVec* out) const;

  /// As AdjacentCells, and additionally returns the key of cell(p) itself
  /// — bitwise CellKeyOf(p), read off the search's zero-offset path for
  /// free. The samplers' insert paths need both every element; fusing the
  /// two saves a full per-axis quantize-and-fold pass per point.
  uint64_t AdjacentCellsWithBase(PointView p, double alpha,
                                 AdjKeyVec* out) const;
  uint64_t AdjacentCellsWithBase(PointView p, double alpha,
                                 std::vector<uint64_t>* out) const;

  /// As AdjacentCells but returns coordinates (used by tests/baselines).
  void AdjacentCellCoords(PointView p, double alpha,
                          std::vector<CellCoord>* out) const;

  /// Reference implementation: full enumeration of the (2r+1)^d block with
  /// a distance filter. Exponential in d — tests and benchmarks only.
  void AdjacentCellsNaive(PointView p, double alpha,
                          std::vector<uint64_t>* out) const;

  /// Literal transcription of the paper's Algorithm 6/7 (per-axis moves to
  /// ⌊x⌋/stay/⌈x⌉ in grid units, boundary nudge by 0.01·(q-p)). Exact only
  /// when side ≥ alpha (the high-dimension regime it was designed for).
  /// Exposed for fidelity tests against AdjacentCells.
  void AdjacentCellsPaperDfs(PointView p, double alpha,
                             std::vector<uint64_t>* out) const;

  /// Number of DFS nodes visited by the last AdjacentCells call on this
  /// thread — instrumentation for the Section 6.2 pruning benchmark.
  static uint64_t last_dfs_nodes();

 private:
  void DfsSearch(PointView p, const CellCoord& base,
                 const std::vector<double>& scaled, double budget,
                 size_t axis, double acc, CellCoord* current,
                 std::vector<CellCoord>* out) const;

  /// Allocation-free variant of the DFS used by the ingestion hot path:
  /// instead of materializing CellCoord vectors it threads the partial
  /// cell-key hash (CellKeySeed/CellKeyCombine fold) down the search tree
  /// and emits finished 64-bit keys directly. Produces exactly the keys
  /// of DfsSearch + CellKeyOf. Two hot-path refinements over the literal
  /// recursion (bit-identical key set, same visited-node accounting):
  ///   * runs of *fixed* axes — axes whose ±1 moves already exceed the
  ///     budget at zero accumulated distance (`free_axis[i] == 0`), so no
  ///     path can ever branch there — fold inline instead of recursing;
  ///     at high dimension nearly every axis is fixed, which turns the
  ///     recursion into a short loop over the few branchable axes;
  ///   * `mix0[i]` memoizes the inner coordinate mix of the zero-offset
  ///     fold (CellKeyCombine's SplitMix64(base[i]) half), the fold every
  ///     path performs for every fixed axis.
  /// KeyVec is std::vector<uint64_t> or AdjKeyVec (both instantiated in
  /// random_grid.cc). The per-point invariants travel in one context
  /// struct so the recursion's live arguments (axis, acc, hash) stay in
  /// registers. `kScreened` selects the fixed-run collapse: only
  /// dimensions ≥ kScreenMinDim build the free-axis screen (below that,
  /// nearly every axis can branch and the screen plus its per-node check
  /// cost more than the collapsed calls) — both instantiations emit the
  /// identical key set.
  template <typename KeyVec>
  struct DfsCtx {
    const int64_t* base;
    const uint64_t* mix0;
    const uint8_t* free_axis;
    const double* scaled;
    double budget;
    KeyVec* out;
  };
  template <bool kScreened, typename KeyVec>
  void DfsKeys(const DfsCtx<KeyVec>& ctx, size_t axis, double acc,
               uint64_t hash) const;

  /// Dimension at which the free-axis screen starts paying for itself.
  static constexpr size_t kScreenMinDim = 8;

  /// Shared body of the AdjacentCells overloads. Returns the key of
  /// cell(p) (the zero-offset path's fold, always emitted first).
  template <typename KeyVec>
  uint64_t AdjacentCellsImpl(PointView p, double alpha, KeyVec* out) const;

  /// Folds one per-axis box distance into the running accumulator
  /// (L2: sum of squares; L1: sum; L∞: max).
  double Accumulate(double acc, double axis_distance) const;

  size_t dim_;
  double side_;
  Metric metric_;
  std::vector<double> offset_;
};

}  // namespace rl0

#endif  // RL0_GRID_RANDOM_GRID_H_
