// Fast seeded 64-bit mixing hash (heuristic full randomness).
//
// The paper's experiments (Section 6) assume, as is standard in practice,
// that a good mixing function behaves like a fully random hash. MixHash is
// two rounds of the SplitMix64 finalizer keyed by a seed; it is the default
// cell hash in benchmarks, while KWisePolyHash backs the theory-faithful
// configuration.

#ifndef RL0_HASHING_MIX_HASH_H_
#define RL0_HASHING_MIX_HASH_H_

#include <cstdint>

namespace rl0 {

/// A seeded 64-bit mixing hash with full 64-bit output.
class MixHash {
 public:
  /// Creates a hash keyed by `seed`.
  explicit MixHash(uint64_t seed);

  /// Hashes `x` to a 64-bit value.
  uint64_t operator()(uint64_t x) const;

 private:
  uint64_t key0_;
  uint64_t key1_;
};

}  // namespace rl0

#endif  // RL0_HASHING_MIX_HASH_H_
