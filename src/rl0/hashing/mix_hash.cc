#include "rl0/hashing/mix_hash.h"

#include "rl0/util/rng.h"

namespace rl0 {

MixHash::MixHash(uint64_t seed) {
  SplitMix64Sequence seq(seed);
  key0_ = seq.Next();
  key1_ = seq.Next();
}

uint64_t MixHash::operator()(uint64_t x) const {
  // Two keyed SplitMix64 finalizer rounds; each round has full avalanche.
  return SplitMix64(SplitMix64(x ^ key0_) ^ key1_);
}

}  // namespace rl0
