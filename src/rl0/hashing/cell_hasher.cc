#include "rl0/hashing/cell_hasher.h"

#include "rl0/util/check.h"

namespace rl0 {

CellHasher::CellHasher(HashFamily family, uint64_t seed, uint32_t kwise_k)
    : family_(family), mix_(seed) {
  if (family_ == HashFamily::kKWisePoly) {
    poly_ = std::make_unique<KWisePolyHash>(kwise_k, seed);
  }
}

CellHasher::CellHasher(const CellHasher& other)
    : family_(other.family_),
      mix_(other.mix_),
      poly_(other.poly_ ? std::make_unique<KWisePolyHash>(*other.poly_)
                        : nullptr) {}

CellHasher& CellHasher::operator=(const CellHasher& other) {
  if (this == &other) return *this;
  family_ = other.family_;
  mix_ = other.mix_;
  poly_ = other.poly_ ? std::make_unique<KWisePolyHash>(*other.poly_)
                      : nullptr;
  return *this;
}

uint64_t CellHasher::Hash(uint64_t cell_key) const {
  if (family_ == HashFamily::kKWisePoly) return (*poly_)(cell_key);
  return mix_(cell_key);
}

bool CellHasher::SampledAtLevel(uint64_t cell_key, uint32_t level) const {
  RL0_DCHECK(level <= kMaxLevel);
  if (level == 0) return true;  // R = 1: h(x) mod 1 == 0 for every x.
  const uint64_t mask = (uint64_t{1} << level) - 1;
  return (Hash(cell_key) & mask) == 0;
}

}  // namespace rl0
