// The nested ranged hash h_R used to sample grid cells.
//
// Section 2.1 of the paper: h maps cell IDs to a large range and
// h_R(x) = h(x) mod R with R = 2^level. A cell is *sampled at level ℓ* iff
// h_R(x) = 0, i.e. the low ℓ bits of h(x) are zero. This construction is
// nested (paper Fact 1(b)): the sampled set at level ℓ+1 is a subset of the
// sampled set at level ℓ, which is what makes rate-halving re-filters
// consistent in Algorithms 1 and 3.

#ifndef RL0_HASHING_CELL_HASHER_H_
#define RL0_HASHING_CELL_HASHER_H_

#include <cstdint>
#include <memory>

#include "rl0/hashing/kwise_hash.h"
#include "rl0/hashing/mix_hash.h"

namespace rl0 {

/// Which hash family backs the ranged hash.
enum class HashFamily {
  /// Seeded SplitMix64-based mixing; heuristic full randomness (default,
  /// matches the paper's experimental setup).
  kMix64,
  /// Θ(log m)-wise independent polynomial hash over GF(2^61-1); matches the
  /// paper's analysis assumptions.
  kKWisePoly,
};

/// A seeded, nested, ranged hash over 64-bit cell keys.
///
/// Thread-compatible: const methods are safe to call concurrently.
class CellHasher {
 public:
  /// Creates a hasher. `kwise_k` is the independence parameter used when
  /// `family == kKWisePoly` (pick Θ(log m); ignored for kMix64).
  CellHasher(HashFamily family, uint64_t seed, uint32_t kwise_k = 32);

  /// Copyable (deep-copies the polynomial coefficients) and movable, so
  /// samplers holding a CellHasher are copyable for sharding.
  CellHasher(const CellHasher& other);
  CellHasher& operator=(const CellHasher& other);
  CellHasher(CellHasher&&) = default;
  CellHasher& operator=(CellHasher&&) = default;

  /// The raw hash value h(key).
  uint64_t Hash(uint64_t cell_key) const;

  /// True iff h_R(key) = 0 for R = 2^level, i.e. the cell is sampled at
  /// `level`. Level 0 (R = 1) samples every cell. Monotone in `level`:
  /// SampledAtLevel(k, l+1) implies SampledAtLevel(k, l).
  bool SampledAtLevel(uint64_t cell_key, uint32_t level) const;

  /// The family backing this hasher.
  HashFamily family() const { return family_; }

  /// Maximum usable level (bits of uniform output available).
  static constexpr uint32_t kMaxLevel = 60;

 private:
  HashFamily family_;
  // Exactly one of the two engines is active (family_ selects it); both are
  // cheap to hold by value via optional-like unique_ptr for the poly hash.
  MixHash mix_;
  std::unique_ptr<KWisePolyHash> poly_;
};

}  // namespace rl0

#endif  // RL0_HASHING_CELL_HASHER_H_
