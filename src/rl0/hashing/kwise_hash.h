// k-wise independent hashing over the Mersenne prime field GF(2^61 - 1).
//
// The paper's analysis assumes fully random hash functions and notes
// (Section 1, Preliminaries) that Θ(log m)-wise independence suffices via
// Chernoff–Hoeffding bounds for limited independence [Schmidt–Siegel–
// Srinivasan]. A degree-(k-1) polynomial with independent uniform
// coefficients over a prime field is the textbook k-wise independent
// family; we use p = 2^61 - 1 so that modular reduction is a shift-add and
// products fit in 128-bit arithmetic.

#ifndef RL0_HASHING_KWISE_HASH_H_
#define RL0_HASHING_KWISE_HASH_H_

#include <cstdint>
#include <vector>

namespace rl0 {

/// The Mersenne prime 2^61 - 1 used as the field modulus.
inline constexpr uint64_t kMersenne61 = (uint64_t{1} << 61) - 1;

/// Reduces x (< 2^122) modulo 2^61 - 1.
uint64_t Mod61(__uint128_t x);

/// Modular multiplication in GF(2^61 - 1).
uint64_t MulMod61(uint64_t a, uint64_t b);

/// A k-wise independent hash function h: [2^61-1] -> [2^61-1], evaluated as
/// a random polynomial of degree k-1 via Horner's rule (O(k) per call).
class KWisePolyHash {
 public:
  /// Creates a hash with `k` independent coefficients derived from `seed`.
  /// Requires k >= 2 (pairwise independence at minimum).
  KWisePolyHash(uint32_t k, uint64_t seed);

  /// Evaluates the polynomial at `x` (reduced mod 2^61-1 first).
  /// The result is uniform in [0, 2^61-1) over the choice of coefficients.
  uint64_t operator()(uint64_t x) const;

  /// The independence parameter k.
  uint32_t k() const { return static_cast<uint32_t>(coeffs_.size()); }

 private:
  std::vector<uint64_t> coeffs_;  // coeffs_[0] + coeffs_[1]*x + ...
};

}  // namespace rl0

#endif  // RL0_HASHING_KWISE_HASH_H_
