#include "rl0/hashing/kwise_hash.h"

#include "rl0/util/check.h"
#include "rl0/util/rng.h"

namespace rl0 {

uint64_t Mod61(__uint128_t x) {
  // Fold twice: x = hi*2^61 + lo ≡ hi + lo (mod 2^61-1).
  uint64_t lo = static_cast<uint64_t>(x & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(x >> 61);
  uint64_t r = lo + (hi & kMersenne61) + static_cast<uint64_t>(hi >> 61);
  if (r >= kMersenne61) r -= kMersenne61;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

uint64_t MulMod61(uint64_t a, uint64_t b) {
  return Mod61(static_cast<__uint128_t>(a) * b);
}

KWisePolyHash::KWisePolyHash(uint32_t k, uint64_t seed) {
  RL0_CHECK(k >= 2);
  coeffs_.resize(k);
  SplitMix64Sequence seq(seed);
  for (uint32_t i = 0; i < k; ++i) {
    // Rejection-sample a uniform value in [0, p); acceptance probability
    // is ~1 - 2^-3, so the loop terminates immediately in practice.
    uint64_t v = seq.Next() & ((uint64_t{1} << 61) - 1);
    while (v >= kMersenne61) v = seq.Next() & ((uint64_t{1} << 61) - 1);
    coeffs_[i] = v;
  }
}

uint64_t KWisePolyHash::operator()(uint64_t x) const {
  const uint64_t xr = x % kMersenne61;
  // Horner's rule from the highest coefficient down.
  uint64_t acc = coeffs_.back();
  for (size_t i = coeffs_.size() - 1; i-- > 0;) {
    acc = Mod61(static_cast<__uint128_t>(acc) * xr + coeffs_[i]);
  }
  return acc;
}

}  // namespace rl0
