// Minimal bounds-checked binary (de)serialization helpers.
//
// Fixed-width little-endian encoding; doubles as IEEE-754 bit patterns.
// Writers append to a std::string; readers return Status on truncated or
// malformed input instead of crashing (snapshots may come from disk).

#ifndef RL0_UTIL_SERIALIZE_H_
#define RL0_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "rl0/util/status.h"

namespace rl0 {

/// Appends fixed-width values to a byte buffer.
class BinaryWriter {
 public:
  /// Creates a writer appending to `out` (not owned; must outlive).
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }

  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }

  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }

  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  void PutBytes(const void* data, size_t n) { PutRaw(data, n); }

 private:
  void PutRaw(const void* data, size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }

  std::string* out_;
};

/// Consumes fixed-width values from a byte buffer with bounds checks.
class BinaryReader {
 public:
  /// Creates a reader over `data` (not owned; must outlive).
  explicit BinaryReader(const std::string& data) : data_(data) {}

  Status GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetI64(int64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetDouble(double* v) { return GetRaw(v, sizeof(*v)); }

  Status GetBytes(void* out, size_t n) { return GetRaw(out, n); }

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }

  /// OK iff every byte was consumed (trailing garbage check).
  Status ExpectEnd() const {
    if (pos_ != data_.size()) {
      return Status::InvalidArgument("trailing bytes in snapshot");
    }
    return Status::OK();
  }

 private:
  Status GetRaw(void* out, size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::InvalidArgument("snapshot truncated");
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace rl0

#endif  // RL0_UTIL_SERIALIZE_H_
