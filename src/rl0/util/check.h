// Lightweight assertion macros for internal invariants.
//
// These are *internal* sanity checks (programming errors), not error
// handling for user input: fallible operations return rl0::Status instead
// (see util/status.h). RL0_CHECK stays on in release builds because the
// data-structure invariants it guards (e.g. the nested-hash property) are
// cheap to test and catastrophic to violate silently.

#ifndef RL0_UTIL_CHECK_H_
#define RL0_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace rl0 {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "RL0_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace rl0

/// Aborts the process with a diagnostic if `cond` does not hold.
#define RL0_CHECK(cond)                                         \
  do {                                                          \
    if (!(cond)) {                                              \
      ::rl0::internal::CheckFailed(__FILE__, __LINE__, #cond);  \
    }                                                           \
  } while (0)

/// RL0_DCHECK compiles away in NDEBUG builds; use it on hot paths.
#ifdef NDEBUG
#define RL0_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define RL0_DCHECK(cond) RL0_CHECK(cond)
#endif

#endif  // RL0_UTIL_CHECK_H_
