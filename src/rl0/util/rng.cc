#include "rl0/util/rng.h"

#include <cmath>

#include "rl0/util/check.h"

namespace rl0 {

namespace {
constexpr uint64_t kGoldenGamma = 0x9E3779B97F4A7C15ULL;

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t SplitMix64(uint64_t x) {
  x += kGoldenGamma;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t SplitMix64Sequence::Next() {
  state_ += kGoldenGamma;
  uint64_t x = state_;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Xoshiro256pp::Xoshiro256pp(uint64_t seed) {
  SplitMix64Sequence seq(seed);
  for (auto& word : s_) word = seq.Next();
  // An all-zero state is a fixed point of xoshiro; SplitMix64 of any seed
  // cannot produce four zero words in a row, but guard regardless.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

uint64_t Xoshiro256pp::operator()() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Xoshiro256pp::NextDouble() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

uint64_t Xoshiro256pp::NextBounded(uint64_t bound) {
  RL0_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

bool Xoshiro256pp::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Xoshiro256pp::NextGaussian() {
  // Box–Muller: draw until u1 is nonzero to keep log() finite.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double two_pi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

}  // namespace rl0
