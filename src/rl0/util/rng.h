// Deterministic pseudo-random number generation.
//
// Every randomized component in rl0 takes an explicit 64-bit seed so runs
// are reproducible. SplitMix64 is used for seeding / integer mixing;
// Xoshiro256++ is the general-purpose generator for sampling decisions
// (query-time subsampling, reservoir updates, dataset synthesis).
// Neither is cryptographic; both are standard choices for simulation.

#ifndef RL0_UTIL_RNG_H_
#define RL0_UTIL_RNG_H_

#include <array>
#include <cstdint>
#include <limits>

namespace rl0 {

/// Mixes a 64-bit value through the SplitMix64 finalizer. Good avalanche;
/// used to derive independent sub-seeds and to mix cell coordinates.
uint64_t SplitMix64(uint64_t x);

/// A SplitMix64 sequence generator (state advances by the golden gamma).
class SplitMix64Sequence {
 public:
  /// Creates a sequence starting from `seed`.
  explicit SplitMix64Sequence(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// xoshiro256++ generator (Blackman & Vigna). Satisfies the C++
/// UniformRandomBitGenerator concept so it composes with <random> if ever
/// needed, but we provide the uniform helpers used by the library directly.
class Xoshiro256pp {
 public:
  using result_type = uint64_t;

  /// Creates a generator; the 256-bit state is expanded from `seed` via
  /// SplitMix64 (the initialization recommended by the authors).
  explicit Xoshiro256pp(uint64_t seed = 0);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Returns the next 64 random bits.
  uint64_t operator()();

  /// Returns a double uniform in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Returns an integer uniform in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Returns a standard normal variate (Box–Muller; stateless variant).
  double NextGaussian();

 private:
  std::array<uint64_t, 4> s_;
};

}  // namespace rl0

#endif  // RL0_UTIL_RNG_H_
