// Status / Result<T>: exception-free error handling in the RocksDB style.
//
// Fallible public operations return Status (or Result<T> when they produce
// a value). Hot-path operations that cannot fail return void/values
// directly. Statuses carry a code and a human-readable message.

#ifndef RL0_UTIL_STATUS_H_
#define RL0_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "rl0/util/check.h"

namespace rl0 {

/// Error category for a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed an unusable option/parameter.
  kFailedPrecondition = 2,///< Operation not valid in the current state.
  kNotFound = 3,          ///< Requested item does not exist.
  kResourceExhausted = 4, ///< A capacity bound was exceeded (paper: "error").
  kInternal = 5,          ///< Invariant violation that was recoverable.
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, mirroring absl/RocksDB conventions.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The (possibly empty) error message.
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>", for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. Access to value() requires ok().
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit on purpose; mirrors StatusOr).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT
  /// Constructs from a non-OK status.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    RL0_CHECK(!std::get<Status>(payload_).ok());
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The status; OK when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  /// The contained value. Requires ok().
  const T& value() const& {
    RL0_CHECK(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    RL0_CHECK(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    RL0_CHECK(ok());
    return std::move(std::get<T>(payload_));
  }

  /// Returns the value or `fallback` if an error is stored.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace rl0

#endif  // RL0_UTIL_STATUS_H_
