// A bounded blocking queue: multiple producers, one (or more) consumers.
//
// The ingestion pipeline's backpressure primitive. Producers Push stream
// chunks and block while the queue is at capacity — a slow worker lane
// therefore throttles the feeders instead of letting queued chunks grow
// without bound. Consumers Pop in FIFO order and block while the queue is
// empty. Close() wakes everyone: pending Pops drain the remaining items
// and then return false, further Pushes are rejected.
//
// Plain mutex + condition variables on purpose: the queue hands over
// whole chunks (thousands of points), so per-operation overhead is
// irrelevant next to the work a chunk represents, and the lock gives the
// pipeline's Drain/snapshot barriers simple happens-before edges that
// ThreadSanitizer can verify. The annotated util/sync.h wrappers make
// the same discipline a compile-time check under Clang.

#ifndef RL0_UTIL_BOUNDED_QUEUE_H_
#define RL0_UTIL_BOUNDED_QUEUE_H_

#include <cstddef>
#include <deque>
#include <utility>

#include "rl0/util/sync.h"
#include "rl0/util/thread_annotations.h"

namespace rl0 {

/// A FIFO of at most `capacity` items with blocking Push/Pop and Close.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item`, blocking while the queue is full. Returns false iff
  /// the queue was closed (the item is dropped).
  bool Push(T item) {
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.size() >= capacity_) not_full_.Wait(&mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking Push. Returns false when full or closed.
  bool TryPush(T item) {
    {
      MutexLock lock(&mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking Pop. Returns false when the queue is empty (closed or
  /// not) — the shared-fleet consumers poll with this and park on the
  /// fleet's own condition variable instead of the queue's.
  bool TryPop(T* out) {
    {
      MutexLock lock(&mu_);
      if (items_.empty()) return false;
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return true;
  }

  /// Dequeues into `*out`, blocking while the queue is empty and open.
  /// Returns false iff the queue is closed and fully drained.
  bool Pop(T* out) {
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.empty()) not_empty_.Wait(&mu_);
      if (items_.empty()) return false;  // closed and drained
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return true;
  }

  /// Closes the queue: wakes all waiters; queued items remain poppable.
  void Close() {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(&mu_);
    return closed_;
  }

  size_t size() const {
    MutexLock lock(&mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ RL0_GUARDED_BY(mu_);
  bool closed_ RL0_GUARDED_BY(mu_) = false;
};

}  // namespace rl0

#endif  // RL0_UTIL_BOUNDED_QUEUE_H_
