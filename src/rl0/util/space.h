// Space accounting in machine words.
//
// The paper reports space ("pSpace") in *words*. To reproduce Figure 14 we
// give every streaming structure a SpaceWords() method computed from a
// documented, deterministic accounting model:
//
//   * a stored point of dimension d costs d words (its coordinates) plus
//     kPointHeaderWords of bookkeeping;
//   * a hash-map entry costs kMapEntryWords on top of its payload;
//   * scalar fields (counters, rates, iterators) cost one word each and are
//     bundled into the per-structure constants below.
//
// This intentionally counts the information-theoretic content of the
// structures (what the paper's analysis bounds), not allocator slack.
// SpaceMeter tracks the running and peak totals.

#ifndef RL0_UTIL_SPACE_H_
#define RL0_UTIL_SPACE_H_

#include <cstddef>

namespace rl0 {

/// Bookkeeping words charged per stored point (cell key + flags).
inline constexpr size_t kPointHeaderWords = 2;

/// Overhead words charged per associative-container entry.
inline constexpr size_t kMapEntryWords = 3;

/// Words charged for one stored point of dimension `dim`.
inline constexpr size_t PointWords(size_t dim) {
  return dim + kPointHeaderWords;
}

// --------------------------------------------------------------------------
// Arena (structure-of-arrays) accounting: RobustL0SamplerIW keeps its
// representatives in a RepTable — parallel columns over contiguous
// vectors, points in a PointStore arena — indexed by an open-addressing
// CellIndex. The words charged per representative follow that layout
// exactly (see core/rep_table.h):

/// Fixed SoA columns per representative: id, stream_index, cell_key,
/// point arena offset, and the packed flags+next-in-cell-chain word.
inline constexpr size_t kRepHeaderWords = 5;

/// One CellIndex bucket (cell key + chain head) amortized per rep.
inline constexpr size_t kCellIndexEntryWords = 2;

/// Words charged for one arena-backed representative of dimension `dim`:
/// the flat coordinates plus the SoA header plus its index share.
inline constexpr size_t RepArenaWords(size_t dim) {
  return dim + kRepHeaderWords + kCellIndexEntryWords;
}

/// Extra words per representative in the Section 2.3 reservoir variant:
/// the group-sample point (arena slot) plus sample_index and group_count.
inline constexpr size_t ReservoirRepExtraWords(size_t dim) {
  return dim + 2;
}

/// Fixed per-group fields of the sliding-window samplers' StoredGroup:
/// id, rep_index, rep_cell, latest_stamp, latest_index, the accepted
/// flag, and the two PointRef columns (rep, latest).
inline constexpr size_t kGroupHeaderWords = 8;

/// Words charged for one arena-backed sliding-window group of dimension
/// `dim`: two flat points (representative + latest) plus the group header
/// plus its three index entries (group map, cell multimap, stamp map).
inline constexpr size_t GroupArenaWords(size_t dim) {
  return 2 * dim + kGroupHeaderWords + 3 * kMapEntryWords;
}

/// Tracks current and peak space of a streaming structure.
class SpaceMeter {
 public:
  SpaceMeter() = default;

  /// Adds `words` to the current usage, updating the peak.
  void Add(size_t words);

  /// Removes `words` from the current usage.
  void Remove(size_t words);

  /// Replaces the current usage (used after wholesale rebuilds).
  void Set(size_t words);

  /// Current words in use.
  size_t current() const { return current_; }

  /// Peak words observed since construction (or ResetPeak()).
  size_t peak() const { return peak_; }

  /// Resets the peak to the current usage.
  void ResetPeak() { peak_ = current_; }

  /// Restores a checkpointed peak watermark: the peak becomes the larger
  /// of the current usage and `words`. Used by the snapshot restore path
  /// so peak accounting survives a checkpoint/restore cycle.
  void RestorePeak(size_t words) {
    if (words > peak_) peak_ = words;
  }

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
};

}  // namespace rl0

#endif  // RL0_UTIL_SPACE_H_
