// Space accounting in machine words.
//
// The paper reports space ("pSpace") in *words*. To reproduce Figure 14 we
// give every streaming structure a SpaceWords() method computed from a
// documented, deterministic accounting model:
//
//   * a stored point of dimension d costs d words (its coordinates) plus
//     kPointHeaderWords of bookkeeping;
//   * a hash-map entry costs kMapEntryWords on top of its payload;
//   * scalar fields (counters, rates, iterators) cost one word each and are
//     bundled into the per-structure constants below.
//
// This intentionally counts the information-theoretic content of the
// structures (what the paper's analysis bounds), not allocator slack.
// SpaceMeter tracks the running and peak totals.

#ifndef RL0_UTIL_SPACE_H_
#define RL0_UTIL_SPACE_H_

#include <cstddef>

namespace rl0 {

/// Bookkeeping words charged per stored point (cell key + flags).
inline constexpr size_t kPointHeaderWords = 2;

/// Overhead words charged per associative-container entry.
inline constexpr size_t kMapEntryWords = 3;

/// Words charged for one stored point of dimension `dim`.
inline constexpr size_t PointWords(size_t dim) {
  return dim + kPointHeaderWords;
}

/// Tracks current and peak space of a streaming structure.
class SpaceMeter {
 public:
  SpaceMeter() = default;

  /// Adds `words` to the current usage, updating the peak.
  void Add(size_t words);

  /// Removes `words` from the current usage.
  void Remove(size_t words);

  /// Replaces the current usage (used after wholesale rebuilds).
  void Set(size_t words);

  /// Current words in use.
  size_t current() const { return current_; }

  /// Peak words observed since construction (or ResetPeak()).
  size_t peak() const { return peak_; }

  /// Resets the peak to the current usage.
  void ResetPeak() { peak_ = current_; }

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
};

}  // namespace rl0

#endif  // RL0_UTIL_SPACE_H_
