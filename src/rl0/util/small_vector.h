// A vector with inline storage for the first N elements.
//
// The adjacency searches of the ingestion hot path produce a handful of
// 64-bit cell keys per point (|adj(p)| ≤ 25 in the paper's 2-d regime,
// typically ≪ that under the high-dimension grid). Storing them in a
// std::vector means a heap allocation per buffer — and the refilter /
// merge paths create such buffers afresh. SmallVector keeps the first
// `InlineCapacity` elements in the object itself and only touches the
// heap when a buffer outgrows that, which in practice never happens on
// the adjacency path.
//
// Restricted to trivially copyable T: the samplers only need it for
// scalar keys, and the restriction makes growth a memcpy with no
// element-lifetime bookkeeping.

#ifndef RL0_UTIL_SMALL_VECTOR_H_
#define RL0_UTIL_SMALL_VECTOR_H_

#include <cstddef>
#include <cstring>
#include <type_traits>

namespace rl0 {

/// A dynamically sized array of trivially copyable T with the first
/// `InlineCapacity` elements stored inline.
template <typename T, size_t InlineCapacity>
class SmallVector {
  static_assert(std::is_trivially_copyable<T>::value,
                "SmallVector requires trivially copyable elements");
  static_assert(InlineCapacity >= 1, "inline capacity must be positive");

 public:
  SmallVector() = default;

  SmallVector(const SmallVector& other) { *this = other; }

  SmallVector& operator=(const SmallVector& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    std::memcpy(data(), other.data(), other.size_ * sizeof(T));
    size_ = other.size_;
    return *this;
  }

  ~SmallVector() {
    if (heap_ != nullptr) delete[] heap_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Elements currently storable without reallocation.
  size_t capacity() const { return capacity_; }
  /// True while the elements live in the inline buffer (introspection).
  bool is_inline() const { return heap_ == nullptr; }

  T* data() { return heap_ != nullptr ? heap_ : inline_; }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_; }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }

  void clear() { size_ = 0; }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      // Copy first: `value` may alias an element of this vector, and
      // reserve() frees the old buffer (std::vector allows the pattern
      // v.push_back(v[0]); so must we).
      const T copy = value;
      reserve(capacity_ * 2);
      data()[size_++] = copy;
      return;
    }
    data()[size_++] = value;
  }

  /// Ensures room for `n` elements (never shrinks; keeps contents).
  void reserve(size_t n) {
    if (n <= capacity_) return;
    T* grown = new T[n];
    std::memcpy(grown, data(), size_ * sizeof(T));
    if (heap_ != nullptr) delete[] heap_;
    heap_ = grown;
    capacity_ = n;
  }

 private:
  T inline_[InlineCapacity];
  T* heap_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = InlineCapacity;
};

}  // namespace rl0

#endif  // RL0_UTIL_SMALL_VECTOR_H_
