// Clang thread-safety annotation macros (no-ops elsewhere).
//
// These wrap Clang's capability analysis attributes so the lock
// discipline that the whole pipeline rests on — per-shard state touched
// only by its lane worker, quiesced snapshots, the registry/tenant/feed/
// journal lock hierarchy (docs/ARCHITECTURE.md) — is checked by the
// COMPILER on every build with `-Wthread-safety`, not just by whichever
// interleavings the TSan stress jobs happen to hit. The library builds
// with `-Werror=thread-safety` on Clang (see CMakeLists.txt), so a
// guarded field read without its lock, or a `*Locked()` helper called
// unlocked, is a compile error, at zero runtime cost.
//
// Use the annotated wrappers in util/sync.h (`Mutex`, `MutexLock`,
// `CondVar`) rather than raw std primitives — tools/check_sync_lint.sh
// enforces that outside util/sync.h. Annotate:
//
//   * data members with RL0_GUARDED_BY(mu_);
//   * private `*Locked()` helpers with RL0_REQUIRES(mu_) (callers must
//     hold the lock) — for helpers taking the owning object as a
//     parameter, RL0_REQUIRES(t->mu) works too;
//   * public entry points that must NOT be called with a lock held
//     (they take it themselves) with RL0_EXCLUDES(mu_) where deadlock
//     potential is real;
//   * RL0_NO_THREAD_SAFETY_ANALYSIS only at documented sites where the
//     lock set is dynamic (see MutexLockSet in util/sync.h) — the
//     acceptance bar for this repo is at most two such sites.
//
// The negative-compilation test (tests/thread_annotation_compile_test)
// asserts on Clang that violations really fail to compile, so these
// annotations cannot silently rot into comments.

#ifndef RL0_UTIL_THREAD_ANNOTATIONS_H_
#define RL0_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define RL0_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define RL0_THREAD_ANNOTATION__(x)  // no-op on GCC/MSVC
#endif

/// Marks a class as a lockable capability, e.g.
/// `class RL0_CAPABILITY("mutex") Mutex { ... };`.
#define RL0_CAPABILITY(x) RL0_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (MutexLock).
#define RL0_SCOPED_CAPABILITY RL0_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only with the named capability held.
#define RL0_GUARDED_BY(x) RL0_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named capability.
#define RL0_PT_GUARDED_BY(x) RL0_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering documentation; checked under -Wthread-safety-beta.
#define RL0_ACQUIRED_BEFORE(...) \
  RL0_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define RL0_ACQUIRED_AFTER(...) \
  RL0_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// The caller must hold the capability (exclusively) when calling.
#define RL0_REQUIRES(...) \
  RL0_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// The caller must hold the capability at least shared.
#define RL0_REQUIRES_SHARED(...) \
  RL0_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define RL0_ACQUIRE(...) \
  RL0_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define RL0_ACQUIRE_SHARED(...) \
  RL0_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (held on entry).
#define RL0_RELEASE(...) \
  RL0_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RL0_RELEASE_SHARED(...) \
  RL0_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `<first-arg>`.
#define RL0_TRY_ACQUIRE(...) \
  RL0_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (the function takes it, or
/// taking it while held would deadlock).
#define RL0_EXCLUDES(...) RL0_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trust-me edge for
/// code the analysis cannot follow).
#define RL0_ASSERT_CAPABILITY(x) \
  RL0_THREAD_ANNOTATION__(assert_capability(x))

/// The function returns a reference to the named capability.
#define RL0_RETURN_CAPABILITY(x) RL0_THREAD_ANNOTATION__(lock_returned(x))

/// Turns the analysis off for one function. Keep to documented sites
/// with a dynamic lock set; target ≤ 2 in this repo (currently the two
/// MutexLockSet methods in util/sync.h).
#define RL0_NO_THREAD_SAFETY_ANALYSIS \
  RL0_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // RL0_UTIL_THREAD_ANNOTATIONS_H_
