// Small bit-manipulation helpers used across the library.

#ifndef RL0_UTIL_BITS_H_
#define RL0_UTIL_BITS_H_

#include <cstdint>

namespace rl0 {

/// Number of leading zero bits of x (64 for x == 0). C++17-compatible
/// stand-in for C++20's std::countl_zero.
inline uint32_t CountLeadingZeros(uint64_t x) {
  if (x == 0) return 64;
  return static_cast<uint32_t>(__builtin_clzll(x));
}

/// Returns ⌈log2(x)⌉ for x ≥ 1 (0 for x == 1).
inline uint32_t CeilLog2(uint64_t x) {
  if (x <= 1) return 0;
  return 64 - CountLeadingZeros(x - 1);
}

/// Returns ⌊log2(x)⌋ for x ≥ 1.
inline uint32_t FloorLog2(uint64_t x) {
  return 63 - CountLeadingZeros(x | 1);
}

/// Returns the smallest power of two ≥ x (x ≥ 1).
inline uint64_t NextPow2(uint64_t x) { return uint64_t{1} << CeilLog2(x); }

/// True iff x is a power of two (x ≥ 1).
inline bool IsPow2(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace rl0

#endif  // RL0_UTIL_BITS_H_
