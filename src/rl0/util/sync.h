// Annotated synchronization primitives: the only place raw std mutex
// types may appear (tools/check_sync_lint.sh enforces it).
//
// `Mutex` is std::mutex wearing Clang's capability attributes
// (util/thread_annotations.h), `MutexLock` the scoped-lockable RAII
// guard, `CondVar` a condition variable whose Wait statically requires
// the mutex it atomically releases. Together they let every concurrent
// component declare its lock discipline in the type system:
//
//   Mutex mu_;
//   std::deque<T> items_ RL0_GUARDED_BY(mu_);
//   ...
//   MutexLock lock(&mu_);
//   while (items_.empty()) not_empty_.Wait(&mu_);   // explicit loop
//
// Wait deliberately has no predicate overload: a predicate lambda is a
// separate function to the analysis and cannot carry RL0_REQUIRES, so
// guarded reads inside it would need escape hatches. An explicit while
// loop in the (annotated) caller is checked for free.
//
// `MutexLockSet` locks a runtime-sized set of mutexes — the shape of
// IngestPool::QuiescedRun's pause-every-lane barrier. A dynamic lock
// set is inexpressible in the static capability model, so its two
// methods are this repo's only sanctioned RL0_NO_THREAD_SAFETY_ANALYSIS
// sites; everything layered on top stays fully analyzed.

#ifndef RL0_UTIL_SYNC_H_
#define RL0_UTIL_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <vector>

#include "rl0/util/thread_annotations.h"

namespace rl0 {

class CondVar;

/// A std::mutex that is a Clang capability: functions and members can
/// name it in RL0_GUARDED_BY / RL0_REQUIRES / RL0_ACQUIRE annotations.
class RL0_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RL0_ACQUIRE() { mu_.lock(); }
  void Unlock() RL0_RELEASE() { mu_.unlock(); }
  bool TryLock() RL0_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // Wait adopts the raw handle to release-and-wait
  std::mutex mu_;
};

/// RAII lock for one Mutex (scoped capability: the analysis knows the
/// mutex is held exactly for this object's lifetime).
class RL0_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RL0_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RL0_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable over Mutex. Wait atomically releases the (held)
/// mutex and reacquires it before returning, so from the caller's
/// static point of view the capability is held throughout — hence
/// RL0_REQUIRES. Use an explicit `while (!cond) cv.Wait(&mu);` loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) RL0_REQUIRES(mu) {
    std::unique_lock<std::mutex> handle(mu->mu_, std::adopt_lock);
    cv_.wait(handle);
    handle.release();  // ownership returns to the caller's MutexLock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Locks a runtime-sized set of mutexes in the caller's Lock() order
/// and unlocks in reverse order at scope exit (exception-safe, unlike a
/// bare Lock loop). Callers must present the mutexes in a globally
/// consistent order — IngestPool::QuiescedRun's lane order qualifies
/// because lane workers only ever hold their own lane's mutex.
///
/// The two methods are this repo's only sanctioned
/// RL0_NO_THREAD_SAFETY_ANALYSIS sites (dynamic lock sets are
/// inexpressible statically); keep it that way.
class MutexLockSet {
 public:
  MutexLockSet() = default;
  MutexLockSet(const MutexLockSet&) = delete;
  MutexLockSet& operator=(const MutexLockSet&) = delete;

  ~MutexLockSet() RL0_NO_THREAD_SAFETY_ANALYSIS {
    for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
      (*it)->Unlock();
    }
  }

  void Lock(Mutex* mu) RL0_NO_THREAD_SAFETY_ANALYSIS {
    held_.reserve(held_.size() + 1);  // push_back below cannot throw
    mu->Lock();
    held_.push_back(mu);
  }

 private:
  std::vector<Mutex*> held_;
};

}  // namespace rl0

#endif  // RL0_UTIL_SYNC_H_
