#include "rl0/util/space.h"

#include "rl0/util/check.h"

namespace rl0 {

void SpaceMeter::Add(size_t words) {
  current_ += words;
  if (current_ > peak_) peak_ = current_;
}

void SpaceMeter::Remove(size_t words) {
  RL0_DCHECK(words <= current_);
  current_ -= (words <= current_) ? words : current_;
}

void SpaceMeter::Set(size_t words) {
  current_ = words;
  if (current_ > peak_) peak_ = current_;
}

}  // namespace rl0
