// A minimal C++17 stand-in for std::span<const T> (C++20).
//
// The batch ingestion APIs (InsertBatch) take contiguous chunks of stream
// points without owning them; Span is the thinnest possible carrier for
// that contract. Construction from std::vector and from pointer+size
// covers every call site in the library.

#ifndef RL0_UTIL_SPAN_H_
#define RL0_UTIL_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

namespace rl0 {

/// A non-owning view of `size` contiguous const T.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  Span(const std::vector<std::remove_cv_t<T>>& v)
      : data_(v.data()), size_(v.size()) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  /// The subspan [offset, offset + count); count is clamped to the end.
  Span subspan(size_t offset, size_t count) const {
    if (offset > size_) offset = size_;
    if (count > size_ - offset) count = size_ - offset;
    return Span(data_ + offset, count);
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace rl0

#endif  // RL0_UTIL_SPAN_H_
