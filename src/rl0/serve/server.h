// Connection layer of rl0_serve: sockets in, registry calls out.
//
// A Server listens on a unix socket and/or a loopback TCP port and runs
// one session per accepted connection. Each session is two threads and
// one bounded queue:
//
//   reader thread --> LineDecoder --> ParseCommand --> TenantRegistry
//        |                                                  |
//        |   responses (one string per command, in order)   |
//        +-------------------> out queue <------------------+
//                         (BoundedQueue<string>)   EVENT blocks from
//                               |                  standing queries
//                         writer thread --> socket
//
// Every queue item is one complete protocol unit — a full response
// (data lines + status line) or a full EVENT block — so the single
// writer can never interleave units, and responses stay in command
// order because only the reader pushes them.
//
// Backpressure is end-to-end and allocation-bounded by construction: a
// consumer that stops reading blocks its writer in send(), the out
// queue fills to its fixed capacity, and the next producer — the
// session's own reader, or a tenant feeder firing a standing query into
// this session — blocks in Push. The feeder's stall propagates to ITS
// client through TCP; nothing buffers unboundedly. A peer that stays
// unwritable past the stall budget is dropped (queue closed, pending
// sinks return false, subscriptions unsubscribed), so one dead consumer
// cannot wedge a tenant forever.
//
// Shutdown order: stop accepting; raise the shutdown flag (readers exit
// their poll loops and stall budgets shrink); CloseAll tenants — final
// checkpoint cuts and FLUSH-driven trigger fires deliver to still-live
// subscribers; then join every session. Deadlock-free because a stalled
// delivery trips the shrunken budget instead of blocking CloseAll.

#ifndef RL0_SERVE_SERVER_H_
#define RL0_SERVE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rl0/serve/registry.h"
#include "rl0/util/bounded_queue.h"
#include "rl0/util/status.h"
#include "rl0/util/sync.h"
#include "rl0/util/thread_annotations.h"

namespace rl0 {
namespace serve {

class Server {
 public:
  struct Options {
    /// Unix-domain socket path (empty = no unix listener).
    std::string unix_path;
    /// Loopback TCP port (0 = no TCP listener; pass -1 for an ephemeral
    /// port, then read tcp_port()).
    int tcp_port = 0;
    /// TenantRegistry knobs.
    size_t fleet_threads = 4;
    std::string checkpoint_root;
    /// Longest accepted protocol line (FEED batches bound this).
    size_t max_line_bytes = 1 << 20;
    /// Per-session out-queue capacity, in protocol units (responses /
    /// EVENT blocks). The backpressure bound.
    size_t event_queue_depth = 64;
  };

  /// Binds the listeners and starts the accept loop. At least one of
  /// unix_path / tcp_port must be set.
  static Result<std::unique_ptr<Server>> Start(const Options& options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Idempotent orderly shutdown (see file comment).
  void Shutdown();

  /// The TCP port actually bound (ephemeral requests resolve here); 0
  /// without a TCP listener.
  int tcp_port() const { return tcp_port_; }

  const std::string& unix_path() const { return options_.unix_path; }

  TenantRegistry* registry() { return registry_.get(); }

  /// High-water mark of any session's out queue since start — the
  /// concurrency tests pin this ≤ event_queue_depth.
  size_t MaxEventQueueDepth() const { return max_queue_depth_.load(); }

  /// Sessions accepted over the server's lifetime.
  size_t sessions_accepted() const { return sessions_accepted_.load(); }

 private:
  struct Session {
    int fd = -1;
    uint64_t id = 0;
    BoundedQueue<std::string> out;
    std::thread reader;
    std::thread writer;
    std::atomic<bool> done{false};

    explicit Session(size_t queue_depth) : out(queue_depth) {}
  };

  explicit Server(const Options& options);

  Status Bind();
  void AcceptLoop();
  void StartSession(int fd);
  void ReaderLoop(const std::shared_ptr<Session>& session);
  void WriterLoop(const std::shared_ptr<Session>& session);
  /// Handles one line; returns false on QUIT.
  bool HandleLine(const std::shared_ptr<Session>& session,
                  const std::string& line);
  void Respond(const std::shared_ptr<Session>& session, std::string block);
  void NoteQueueDepth(size_t depth);
  /// Joins sessions whose threads have finished (accept-loop hygiene).
  void ReapDone();

  Options options_;
  std::unique_ptr<TenantRegistry> registry_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = 0;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> shut_down_done_{false};
  std::thread accept_thread_;
  Mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_
      RL0_GUARDED_BY(sessions_mu_);
  uint64_t next_session_id_ RL0_GUARDED_BY(sessions_mu_) = 1;
  std::atomic<size_t> max_queue_depth_{0};
  std::atomic<size_t> sessions_accepted_{0};
};

}  // namespace serve
}  // namespace rl0

#endif  // RL0_SERVE_SERVER_H_
