#include "rl0/serve/cvm.h"

#include <cstring>

namespace rl0 {
namespace serve {

uint64_t PointKey(PointView point) {
  // Chain the SplitMix64 finalizer over the coordinate bit patterns.
  // memcpy (not a cast) keeps this well-defined; identical coordinate
  // bytes — and only those — collide by construction.
  uint64_t h = SplitMix64(0x463045F6ULL + point.dim());
  for (size_t i = 0; i < point.dim(); ++i) {
    uint64_t bits;
    const double c = point[i];
    std::memcpy(&bits, &c, sizeof(bits));
    h = SplitMix64(h ^ bits);
  }
  return h;
}

CvmEstimator::CvmEstimator(size_t capacity, uint64_t seed)
    : capacity_(capacity < 16 ? 16 : capacity),
      rng_(SplitMix64(seed ^ 0x43564DULL)) {}  // "CVM"

void CvmEstimator::Add(uint64_t key) {
  ++observed_;
  // CVM round: forget any prior decision for this key, then keep it
  // with the current probability. When the buffer fills, thin it by a
  // fair coin per key and halve p.
  kept_.erase(key);
  if (rng_.NextDouble() < p_) kept_.insert(key);
  while (kept_.size() >= capacity_) {
    for (auto it = kept_.begin(); it != kept_.end();) {
      if (rng_.NextDouble() < 0.5) {
        it = kept_.erase(it);
      } else {
        ++it;
      }
    }
    p_ *= 0.5;
    // (The loop repeats in the astronomically unlikely event no key was
    // evicted; p halves again, so it terminates with probability 1.)
  }
}

double CvmEstimator::Estimate() const {
  return static_cast<double>(kept_.size()) / p_;
}

}  // namespace serve
}  // namespace rl0
