// Durability plumbing shared by rl0_cli and the rl0_serve registry.
//
// Wraps core/checkpoint.h's journal + incremental-checkpoint primitives
// into the on-disk layout both front-ends speak:
//
//   <dir>/ckpt-000000.full     the base full checkpoint
//   <dir>/ckpt-NNNNNN.delta    incremental cuts, NNNNNN = 1, 2, ...
//   <dir>/journal.log          the fed-chunk journal (flushed at cuts)
//
// PoolCheckpointer journals every fed chunk and cuts the chain at a
// configurable point cadence; LoadCheckpointChain folds a directory back
// into {full checkpoint, journal valid-prefix} for RecoverPool. In the
// server each tenant created with ckpt=1 owns one PoolCheckpointer
// rooted at <checkpoint-root>/<tenant>.
//
// Recovery rebase: a delta can only be cut against the dirty-tracking
// epoch a *full* cut marked on the live shard tables
// (core/checkpoint.h). A freshly recovered pool has no epoch, and the
// journal has moved past the on-disk chain — so Rebase() cuts a new
// ckpt-000000.full (with the continuing journal sequence) and deletes
// the stale delta files. Skipping the rebase and cutting a delta first
// would chain it to a base the recovered state no longer matches.

#ifndef RL0_SERVE_CHECKPOINTER_H_
#define RL0_SERVE_CHECKPOINTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "rl0/core/checkpoint.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/util/status.h"

namespace rl0 {
namespace serve {

/// Writes `bytes` to `path` (binary, truncating). Returns false on any
/// I/O failure.
bool WriteFileBytes(const std::string& path, const std::string& bytes);

/// Reads a whole file as bytes.
Result<std::string> ReadFileBytes(const std::string& path);

/// "<dir>/ckpt-NNNNNN.full" / ".delta".
std::string CheckpointFileName(const std::string& dir, size_t index,
                               bool full);

/// A checkpoint directory folded back to recovery inputs.
struct LoadedChain {
  /// ckpt-000000.full with every on-disk delta folded in — feed to
  /// RecoverPool.
  std::string checkpoint;
  /// The journal's valid prefix (already truncated at the first torn
  /// record; empty when no journal was flushed).
  std::string journal;
  /// Records in `journal` — the next_seq a continuing JournalWriter
  /// must start from.
  uint64_t journal_records = 0;
  /// Delta files folded (introspection / status lines).
  size_t deltas = 0;
};

/// Loads and folds <dir>'s chain. Fails when ckpt-000000.full is
/// missing/corrupt or a delta refuses to fold; a missing journal is not
/// an error (recovery from the last cut alone is exact).
Result<LoadedChain> LoadCheckpointChain(const std::string& dir);

/// Journals every chunk fed to `pool` and cuts the checkpoint chain
/// under `dir`: a full cut first, then deltas every `every` points
/// (plus explicit Finish() cuts). The journal buffer is flushed to
/// journal.log at every cut, so a crash between cuts loses at most the
/// unflushed journal tail — never an acknowledged checkpoint.
class PoolCheckpointer {
 public:
  /// Fresh tenant: empty journal, first cut writes ckpt-000000.full.
  /// Attaches the journal tap to `pool`; `dim` is the point
  /// dimensionality the journal frames. `every` == 0 means only
  /// explicit Finish() cuts.
  PoolCheckpointer(ShardedSwSamplerPool* pool, std::string dir,
                   uint64_t every, size_t dim);

  /// Recovered tenant: continue `chain.journal` at sequence
  /// `chain.journal_records`. Call Rebase() before feeding.
  PoolCheckpointer(ShardedSwSamplerPool* pool, std::string dir,
                   uint64_t every, size_t dim, LoadedChain chain);

  /// Detaches the journal tap.
  ~PoolCheckpointer();

  PoolCheckpointer(const PoolCheckpointer&) = delete;
  PoolCheckpointer& operator=(const PoolCheckpointer&) = delete;

  /// Post-recovery rebase: delete stale delta files, cut a fresh full
  /// base at the continuing journal sequence (see file comment).
  Status Rebase();

  /// Call after feeding; cuts when the fed count crossed the next
  /// `every` boundary. No-op at cadence 0.
  Status MaybeCut();

  /// An explicit cut (end of stream, FLUSH, tenant CLOSE).
  Status Finish() { return Cut(); }

  size_t cuts() const { return cuts_; }
  size_t journal_bytes() const { return journal_.size(); }

 private:
  Status Cut();

  ShardedSwSamplerPool* pool_;
  std::string dir_;
  uint64_t every_;
  std::string journal_;  // declared before writer_ (writer appends here)
  JournalWriter writer_;
  std::string chain_;  // folded full checkpoint the next delta chains on
  uint64_t next_cut_;
  size_t cuts_ = 0;
};

}  // namespace serve
}  // namespace rl0

#endif  // RL0_SERVE_CHECKPOINTER_H_
