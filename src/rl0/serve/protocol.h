// Line protocol of the standing-query streaming server (rl0_serve).
//
// The wire format is line-oriented text over a byte stream (unix or TCP
// socket): commands are single '\n'-terminated lines ('\r\n' tolerated),
// ASCII tokens separated by single spaces. Every command elicits zero or
// more data lines (ITEM/STAT) followed by exactly one status line — `OK
// [key=value ...]` or `ERR <message>` — in command order per connection.
// Standing-query output (EVENT blocks, see registry.h) is asynchronous:
// an EVENT block may appear between two responses, never inside one.
//
// Commands:
//   PING
//   CREATE <tenant> dim=D alpha=A window=W [mode=seq|time|late]
//          [lateness=L] [shards=S] [seed=N] [metric=l2|l1|linf] [m=M]
//          [k=K] [reservoir=0|1] [filter=0|1] [ckpt=1 [every=N]]
//          [recover=1]
//   FEED <tenant> <x,y,...> [<x,y,...> ...]          (sequence mode)
//   FEEDSTAMPED <tenant> <stamp>@<x,y,...> [...]     (time/late modes)
//   SAMPLE <tenant> [q=N] [seed=S]
//   F0 <tenant>
//   SUBSCRIBE <tenant> digest every=N [q=K] [seed=S]
//   SUBSCRIBE <tenant> f0 every=N
//   SUBSCRIBE <tenant> churn every=N threshold=T
//   UNSUBSCRIBE <tenant> <sub-id>
//   FLUSH <tenant>
//   STATS [<tenant>]
//   CLOSE <tenant>
//   QUIT
//
// This header is the pure, socket-free half: a LineDecoder that turns
// arbitrary byte arrivals (partial reads, pipelined commands, oversized
// garbage) into complete lines, and ParseCommand, which turns one line
// into a validated Command or a parse error. Both are deliberately
// total functions of their input — any byte sequence yields lines +
// oversize notices, any line yields a Command or a Status, never a
// crash — which is what the fuzz battery pins
// (tests/fuzz_robustness_test.cc).

#ifndef RL0_SERVE_PROTOCOL_H_
#define RL0_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "rl0/core/options.h"
#include "rl0/geom/metric.h"
#include "rl0/geom/point.h"
#include "rl0/util/status.h"

namespace rl0 {
namespace serve {

/// The query-rng salt shared with rl0_cli: SAMPLE draws with
/// Xoshiro256pp(SplitMix64(seed ^ kQuerySeedSalt)), so a server tenant
/// and a one-shot CLI run over the same stream produce byte-identical
/// samples (the CI smoke step diffs them).
constexpr uint64_t kQuerySeedSalt = 0x5175657279ULL;  // "Query"

/// Splits a raw byte stream into protocol lines. Handles partial reads
/// (bytes accumulate until a '\n'), pipelined input (many lines per
/// Append), and oversized lines (beyond `max_line_bytes` the line's
/// bytes are discarded through its terminating newline and ONE
/// kOversized event is reported, so the connection can answer with a
/// parseable error and stay in sync).
class LineDecoder {
 public:
  explicit LineDecoder(size_t max_line_bytes);

  /// Appends bytes read from the wire.
  void Append(const char* data, size_t n);

  enum class Event {
    kNone,       ///< No complete line buffered.
    kLine,       ///< *line is the next complete line (no terminator).
    kOversized,  ///< An oversized line was discarded (*line untouched).
  };

  /// Pulls the next event, in wire order (an oversized notice is
  /// sequenced exactly where the discarded line sat between its
  /// neighbours). Call until kNone after every Append.
  Event Next(std::string* line);

  /// Bytes of the unterminated partial line currently buffered (bounded
  /// by max_line_bytes regardless of what the peer sends).
  size_t buffered_bytes() const { return partial_.size(); }

 private:
  std::string partial_;
  size_t max_line_bytes_;
  /// Inside an oversized line: discard through the next '\n'.
  bool discarding_ = false;
  /// Completed events in wire order: {oversized, line}.
  std::deque<std::pair<bool, std::string>> events_;
};

/// What a parsed command asks for.
enum class CommandType {
  kPing,
  kCreate,
  kFeed,
  kFeedStamped,
  kSample,
  kF0,
  kSubscribe,
  kUnsubscribe,
  kFlush,
  kStats,
  kClose,
  kQuit,
};

/// The tenant's stamp semantics (ShardedSwSamplerPool modes).
enum class TenantMode : uint8_t { kSequence = 0, kTime = 1, kLate = 2 };

/// Standing-query flavours.
enum class QueryKind : uint8_t { kDigest = 0, kF0 = 1, kChurn = 2 };

/// CREATE parameters (defaults match rl0_cli's sample defaults, so a
/// server tenant reproduces a CLI run bit-for-bit).
struct CreateParams {
  size_t dim = 0;
  double alpha = 0.0;
  int64_t window = 0;
  TenantMode mode = TenantMode::kSequence;
  int64_t lateness = 0;
  size_t shards = 1;
  uint64_t seed = 0;
  Metric metric = Metric::kL2;
  /// expected_stream_length (SamplerOptions::expected_stream_length —
  /// part of the accept-cap derivation, so the CLI diff requires it).
  uint64_t expected_m = uint64_t{1} << 20;
  size_t k = 1;
  bool reservoir = false;
  bool filter = true;
  /// Checkpoint this tenant under <checkpoint-root>/<tenant> (requires
  /// the server to be started with a checkpoint root).
  bool checkpoint = false;
  /// Delta-cut cadence in points (0 = only the final cut on CLOSE).
  uint64_t checkpoint_every = 0;
  /// Recover the tenant from its checkpoint directory instead of
  /// starting empty (implies checkpoint).
  bool recover = false;
};

/// One parsed protocol command.
struct Command {
  CommandType type = CommandType::kPing;
  std::string tenant;
  CreateParams create;
  /// kFeed / kFeedStamped payload.
  std::vector<Point> points;
  std::vector<int64_t> stamps;
  /// kSample / digest subscriptions.
  int queries = 1;
  uint64_t seed = 0;
  bool seed_set = false;
  /// kSubscribe.
  QueryKind query = QueryKind::kDigest;
  uint64_t every = 0;
  double threshold = 0.0;
  /// kUnsubscribe.
  uint64_t sub_id = 0;
};

/// Maximum points per FEED/FEEDSTAMPED line (keeps a single command's
/// allocation bounded independently of max_line_bytes).
constexpr size_t kMaxPointsPerFeed = 65536;

/// Tenant names: [A-Za-z0-9_.-]{1,64}, no leading '.' (names double as
/// checkpoint directory components).
bool ValidTenantName(const std::string& name);

/// Parses one protocol line into a Command. Total: every input yields a
/// Command or an InvalidArgument status with a one-line message (which
/// the server relays verbatim as `ERR <message>`).
Result<Command> ParseCommand(const std::string& line);

/// Formats one sample line exactly as rl0_cli prints it:
/// "<coords>  # stream position <idx>". The ITEM data lines and the CI
/// smoke diff both build on this.
std::string FormatSampleLine(const Point& point, uint64_t stream_index);

}  // namespace serve
}  // namespace rl0

#endif  // RL0_SERVE_PROTOCOL_H_
