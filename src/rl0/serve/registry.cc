#include "rl0/serve/registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <utility>

namespace rl0 {
namespace serve {

namespace {

const char* ModeName(TenantMode mode) {
  switch (mode) {
    case TenantMode::kSequence:
      return "seq";
    case TenantMode::kTime:
      return "time";
    case TenantMode::kLate:
      return "late";
  }
  return "?";
}

const char* KindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kDigest:
      return "digest";
    case QueryKind::kF0:
      return "f0";
    case QueryKind::kChurn:
      return "churn";
  }
  return "?";
}

std::string F0Data(const CvmEstimator& cvm) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "DATA f0_exact=%.6g observed=%" PRIu64,
                cvm.Estimate(), cvm.observed());
  return buf;
}

/// Smallest multiple of `every` (> 0) strictly greater than `position`,
/// computed arithmetically so a stream that leaps far ahead (epoch-ns
/// stamps with a small cadence) costs O(1), not O(gap/every). Saturates
/// at INT64_MAX instead of overflowing: a saturated trigger simply
/// never fires again.
int64_t NextFireAfter(int64_t position, int64_t every) {
  int64_t k = position / every;
  // Truncating division rounds toward zero; for negative non-multiples
  // that already lands one multiple past `position`.
  if (position >= 0 || position % every == 0) ++k;
  if (k > 0 && k > std::numeric_limits<int64_t>::max() / every) {
    return std::numeric_limits<int64_t>::max();
  }
  return k * every;
}

}  // namespace

TenantRegistry::Tenant::Tenant(std::string tenant_name,
                               const CreateParams& tenant_params,
                               size_t cvm_capacity)
    : name(std::move(tenant_name)),
      params(tenant_params),
      cvm(cvm_capacity, tenant_params.seed) {}

TenantRegistry::TenantRegistry(const Options& options)
    : fleet_(options.fleet_threads),
      checkpoint_root_(options.checkpoint_root),
      cvm_capacity_(options.cvm_capacity) {}

TenantRegistry::~TenantRegistry() { CloseAll(); }

std::shared_ptr<TenantRegistry::Tenant> TenantRegistry::Find(
    const std::string& name) {
  MutexLock lock(&mu_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

Status TenantRegistry::Create(const std::string& name,
                              const CreateParams& params) {
  if (!ValidTenantName(name)) {
    return Status::InvalidArgument("bad tenant name");
  }
  if (params.checkpoint && checkpoint_root_.empty()) {
    return Status::FailedPrecondition(
        "server started without a checkpoint root (ckpt=1 unavailable)");
  }
  {
    MutexLock lock(&mu_);
    if (tenants_.count(name) != 0 || !creating_.insert(name).second) {
      return Status::FailedPrecondition("tenant '" + name +
                                        "' already exists");
    }
  }
  const Status status = BuildAndRegister(name, params);
  MutexLock lock(&mu_);
  creating_.erase(name);
  return status;
}

Status TenantRegistry::BuildAndRegister(const std::string& name,
                                        const CreateParams& params) {
  SamplerOptions opts;
  opts.dim = params.dim;
  opts.alpha = params.alpha;
  opts.metric = params.metric;
  opts.seed = params.seed;
  opts.k = params.k;
  opts.random_representative = params.reservoir;
  opts.expected_stream_length = params.expected_m;
  opts.dup_filter = params.filter;
  if (params.mode == TenantMode::kLate) {
    opts.allowed_lateness = params.lateness;
  }
  IngestPool::Options pipe;
  pipe.fleet = &fleet_;

  auto tenant = std::make_shared<Tenant>(name, params, cvm_capacity_);
  const std::string dir =
      params.checkpoint ? checkpoint_root_ + "/" + name : std::string();
  if (params.recover) {
    auto chain = LoadCheckpointChain(dir);
    if (!chain.ok()) return chain.status();
    auto recovered =
        RecoverPool(chain.value().checkpoint, chain.value().journal, pipe);
    if (!recovered.ok()) return recovered.status();
    tenant->pool = std::make_unique<ShardedSwSamplerPool>(
        std::move(recovered).value());
    tenant->ckpt = std::make_unique<PoolCheckpointer>(
        tenant->pool.get(), dir, params.checkpoint_every, params.dim,
        std::move(chain).value());
    const Status rebased = tenant->ckpt->Rebase();
    if (!rebased.ok()) return rebased;
    if (tenant->pool->now() >= 0 && params.mode != TenantMode::kSequence) {
      tenant->last_stamp = tenant->pool->now();
      tenant->last_stamp_set = true;
    }
  } else {
    auto pool = ShardedSwSamplerPool::Create(opts, params.window,
                                             params.shards, pipe);
    if (!pool.ok()) return pool.status();
    tenant->pool =
        std::make_unique<ShardedSwSamplerPool>(std::move(pool).value());
    if (params.checkpoint) {
      tenant->ckpt = std::make_unique<PoolCheckpointer>(
          tenant->pool.get(), dir, params.checkpoint_every, params.dim);
    }
  }

  MutexLock lock(&mu_);
  // The creating_ reservation guarantees no rival insert of this name.
  tenants_.emplace(name, std::move(tenant));
  return Status::OK();
}

int64_t TenantRegistry::NextTrigger(const Tenant* t) {
  int64_t next = std::numeric_limits<int64_t>::max();
  for (const auto& sub : t->subs) {
    next = std::min(next, sub->next_fire);
  }
  return next;
}

void TenantRegistry::FeedSlice(Tenant* t, const std::vector<Point>& points,
                               const std::vector<int64_t>& stamps,
                               size_t begin, size_t end) {
  if (begin >= end) return;
  const Span<const Point> p(points.data() + begin, end - begin);
  switch (t->params.mode) {
    case TenantMode::kSequence:
      t->pool->Feed(p);
      break;
    case TenantMode::kTime:
      t->pool->FeedStamped(
          p, Span<const int64_t>(stamps.data() + begin, end - begin));
      break;
    case TenantMode::kLate:
      t->pool->FeedStampedLate(
          p, Span<const int64_t>(stamps.data() + begin, end - begin));
      break;
  }
}

void TenantRegistry::FireSubscription(Tenant* t, Subscription* sub,
                                      int64_t position) {
  std::string block;
  char head[160];
  std::snprintf(head, sizeof(head), "EVENT %s %" PRIu64 " %s at=%lld\n",
                t->name.c_str(), sub->id, KindName(sub->kind),
                static_cast<long long>(position));
  switch (sub->kind) {
    case QueryKind::kDigest: {
      block = head;
      for (int q = 0; q < sub->queries; ++q) {
        const auto sample = t->pool->SampleLatest(&sub->rng);
        if (sample.has_value()) {
          block += "ITEM " +
                   FormatSampleLine(sample->point, sample->stream_index) +
                   "\n";
        } else {
          block += "ITEM none\n";
        }
      }
      block += "END\n";
      break;
    }
    case QueryKind::kF0:
      block = std::string(head) + F0Data(t->cvm) + "\nEND\n";
      break;
    case QueryKind::kChurn: {
      const double est = t->cvm.Estimate();
      if (!sub->baseline_set) {
        // First evaluation seeds the baseline silently; alerts measure
        // drift from the last *alerted* level, so slow cumulative drift
        // still trips eventually.
        sub->baseline = est;
        sub->baseline_set = true;
        return;
      }
      const double base = std::max(sub->baseline, 1.0);
      const double change = (est - sub->baseline) / base;
      if (change < sub->threshold && -change < sub->threshold) return;
      char data[160];
      std::snprintf(data, sizeof(data),
                    "DATA f0_exact=%.6g baseline=%.6g change=%.4f\n", est,
                    sub->baseline, change);
      sub->baseline = est;
      block = std::string(head) + data + "END\n";
      break;
    }
  }
  if (!sub->sink(block)) {
    sub->sink = nullptr;  // subscriber gone; FireDue erases it
  }
}

void TenantRegistry::FireDue(Tenant* t, int64_t position) {
  bool drained = false;
  for (auto& sub : t->subs) {
    if (sub->next_fire > position) continue;
    if (!drained) {
      // Digest draws and churn estimates must see everything fed up to
      // the trigger position.
      t->pool->Drain();
      drained = true;
    }
    // `position` is the subscription's trigger clock (a fed count in
    // sequence mode); the event labels itself with the pool's *stamp*
    // clock, which at this point is the crossing point's position stamp
    // in every mode.
    FireSubscription(t, sub.get(), t->pool->now());
    // One fire per crossing: jump straight past every boundary the
    // stream skipped in a single batch.
    sub->next_fire = NextFireAfter(position, sub->every);
  }
  t->subs.erase(
      std::remove_if(t->subs.begin(), t->subs.end(),
                     [](const std::unique_ptr<Subscription>& sub) {
                       return sub->sink == nullptr;
                     }),
      t->subs.end());
}

Status TenantRegistry::Feed(const std::string& name,
                            std::vector<Point> points) {
  auto tenant = Find(name);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant '" + name + "'");
  }
  Tenant* t = tenant.get();
  MutexLock lock(&t->mu);
  if (t->params.mode != TenantMode::kSequence) {
    return Status::FailedPrecondition("tenant '" + name +
                                      "' is stamped; use FEEDSTAMPED");
  }
  if (!points.empty() && points[0].dim() != t->params.dim) {
    return Status::InvalidArgument("wrong dimension for tenant '" + name +
                                   "'");
  }
  for (const Point& p : points) t->cvm.AddPoint(p);
  // Feed in slices that end exactly at trigger boundaries, so each
  // standing query evaluates the window at its crossing point. Position
  // stamps in sequence mode are 0-based, so the trigger at count C
  // evaluates at now = C-1.
  size_t offset = 0;
  while (offset < points.size()) {
    const int64_t fed = static_cast<int64_t>(t->pool->points_fed());
    const int64_t limit = fed + static_cast<int64_t>(points.size() - offset);
    int64_t boundary = limit;
    const int64_t next = NextTrigger(t);
    if (next > fed && next < limit) boundary = next;
    const size_t len = static_cast<size_t>(boundary - fed);
    FeedSlice(t, points, {}, offset, offset + len);
    offset += len;
    FireDue(t, boundary);
  }
  if (t->ckpt != nullptr) return t->ckpt->MaybeCut();
  return Status::OK();
}

Status TenantRegistry::FeedStamped(const std::string& name,
                                   std::vector<Point> points,
                                   std::vector<int64_t> stamps) {
  auto tenant = Find(name);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant '" + name + "'");
  }
  Tenant* t = tenant.get();
  MutexLock lock(&t->mu);
  if (t->params.mode == TenantMode::kSequence) {
    return Status::FailedPrecondition("tenant '" + name +
                                      "' is sequence-mode; use FEED");
  }
  if (!points.empty() && points[0].dim() != t->params.dim) {
    return Status::InvalidArgument("wrong dimension for tenant '" + name +
                                   "'");
  }
  if (points.empty()) return Status::OK();
  if (t->params.mode == TenantMode::kTime) {
    // The pool CHECK-fails (by design) on stamp regression; a protocol
    // peer must get an error instead of crashing the server. Guard both
    // across batches and within this one.
    int64_t prev = t->last_stamp_set
                       ? t->last_stamp
                       : std::numeric_limits<int64_t>::min();
    for (const int64_t stamp : stamps) {
      if (stamp < prev) {
        return Status::InvalidArgument(
            "stamp regression: stamps must be non-decreasing in time "
            "mode (use mode=late for out-of-order streams)");
      }
      prev = stamp;
    }
  }
  for (const Point& p : points) t->cvm.AddPoint(p);

  if (t->params.mode == TenantMode::kLate) {
    // Out-of-order path: the reorder stage owns ordering, so the batch
    // feeds whole and triggers follow the *release frontier*, which is
    // the only clock that never regresses.
    FeedSlice(t, points, stamps, 0, points.size());
    FireDue(t, t->pool->now());
  } else {
    size_t offset = 0;
    while (offset < points.size()) {
      const int64_t next = NextTrigger(t);
      size_t end = points.size();
      if (next != std::numeric_limits<int64_t>::max()) {
        // Fire at the first point whose stamp reaches the trigger:
        // include it, evaluate at its stamp.
        for (size_t i = offset; i < points.size(); ++i) {
          if (stamps[i] >= next) {
            end = i + 1;
            break;
          }
        }
      }
      FeedSlice(t, points, stamps, offset, end);
      offset = end;
      FireDue(t, stamps[end - 1]);
    }
  }
  t->last_stamp = stamps.back();
  t->last_stamp_set = true;
  if (t->ckpt != nullptr) return t->ckpt->MaybeCut();
  return Status::OK();
}

Result<std::vector<std::string>> TenantRegistry::Sample(
    const std::string& name, int queries, bool seed_set, uint64_t seed) {
  auto tenant = Find(name);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant '" + name + "'");
  }
  Tenant* t = tenant.get();
  MutexLock lock(&t->mu);
  t->pool->Drain();
  const uint64_t effective = seed_set ? seed : t->params.seed;
  Xoshiro256pp rng(SplitMix64(effective ^ kQuerySeedSalt));
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(queries));
  for (int q = 0; q < queries; ++q) {
    const auto sample = t->pool->SampleLatest(&rng);
    if (!sample.has_value()) {
      return Status::FailedPrecondition("window is empty");
    }
    lines.push_back(FormatSampleLine(sample->point, sample->stream_index));
  }
  return lines;
}

Result<std::string> TenantRegistry::F0Line(const std::string& name) {
  auto tenant = Find(name);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant '" + name + "'");
  }
  MutexLock lock(&tenant->mu);
  return F0Data(tenant->cvm);
}

Result<uint64_t> TenantRegistry::Subscribe(const std::string& name,
                                           const Command& cmd,
                                           uint64_t owner, EventSink sink) {
  auto tenant = Find(name);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant '" + name + "'");
  }
  Tenant* t = tenant.get();
  MutexLock lock(&t->mu);
  auto sub = std::make_unique<Subscription>();
  sub->id = t->next_sub_id++;
  sub->kind = cmd.query;
  sub->every = static_cast<int64_t>(cmd.every);
  sub->threshold = cmd.threshold;
  sub->queries = cmd.queries;
  sub->owner = owner;
  sub->sink = std::move(sink);
  const uint64_t sub_seed = cmd.seed_set ? cmd.seed : t->params.seed;
  sub->rng = Xoshiro256pp(SplitMix64(sub_seed ^ kQuerySeedSalt));
  // Fire positions are absolute multiples of `every` on the tenant's
  // clock (fed count or stamp), starting strictly after the present —
  // deterministic regardless of when the subscription arrived.
  const int64_t clock =
      t->params.mode == TenantMode::kSequence
          ? static_cast<int64_t>(t->pool->points_fed())
          : std::max<int64_t>(t->pool->now(), 0);
  sub->next_fire = NextFireAfter(clock, sub->every);
  const uint64_t id = sub->id;
  t->subs.push_back(std::move(sub));
  return id;
}

Status TenantRegistry::Unsubscribe(const std::string& name,
                                   uint64_t sub_id) {
  auto tenant = Find(name);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant '" + name + "'");
  }
  Tenant* t = tenant.get();
  MutexLock lock(&t->mu);
  for (auto it = t->subs.begin(); it != t->subs.end(); ++it) {
    if ((*it)->id == sub_id) {
      t->subs.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no such subscription");
}

Status TenantRegistry::FlushLocked(Tenant* t) {
  if (t->params.mode == TenantMode::kLate) {
    t->pool->FlushLate();
    t->pool->Drain();
    FireDue(t, t->pool->now());
  } else {
    t->pool->Drain();
  }
  if (t->ckpt != nullptr) return t->ckpt->Finish();
  return Status::OK();
}

Status TenantRegistry::Flush(const std::string& name) {
  auto tenant = Find(name);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant '" + name + "'");
  }
  MutexLock lock(&tenant->mu);
  return FlushLocked(tenant.get());
}

Status TenantRegistry::Close(const std::string& name) {
  std::shared_ptr<Tenant> tenant;
  {
    MutexLock lock(&mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return Status::NotFound("no tenant '" + name + "'");
    }
    tenant = std::move(it->second);
    tenants_.erase(it);
  }
  // The map no longer reaches the tenant; in-flight operations holding
  // the shared_ptr finish under t->mu before the state is torn down.
  MutexLock lock(&tenant->mu);
  const Status status = FlushLocked(tenant.get());
  tenant->subs.clear();
  return status;
}

Result<std::vector<std::string>> TenantRegistry::StatsLines(
    const std::string& name) {
  std::vector<std::string> lines;
  if (name.empty()) {
    MutexLock lock(&mu_);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "STAT tenants=%zu fleet_threads=%zu fleet_lanes=%zu",
                  tenants_.size(), fleet_.num_threads(),
                  fleet_.lanes_registered());
    lines.emplace_back(buf);
    return lines;
  }
  auto tenant = Find(name);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant '" + name + "'");
  }
  Tenant* t = tenant.get();
  MutexLock lock(&t->mu);
  t->pool->Drain();
  const DupFilterStats filter = t->pool->FilterStats();
  const ReorderStats late = t->pool->late_stats();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "STAT tenant=%s mode=%s shards=%zu window=%lld points=%" PRIu64
      " now=%lld space_words=%zu subs=%zu f0_exact=%.6g f0_observed=%" PRIu64
      " filter_hit=%" PRIu64 " filter_miss=%" PRIu64 " filter_bypass=%" PRIu64,
      t->name.c_str(), ModeName(t->params.mode), t->pool->num_shards(),
      static_cast<long long>(t->pool->window()), t->pool->points_fed(),
      static_cast<long long>(t->pool->now()), t->pool->SpaceWords(),
      t->subs.size(), t->cvm.Estimate(), t->cvm.observed(), filter.hits,
      filter.misses, filter.bypassed);
  std::string line = buf;
  if (late.offered != 0) {
    std::snprintf(buf, sizeof(buf),
                  " late_offered=%" PRIu64 " late_released=%" PRIu64
                  " late_dropped=%" PRIu64,
                  late.offered, late.released, late.late_dropped);
    line += buf;
  }
  if (t->ckpt != nullptr) {
    std::snprintf(buf, sizeof(buf), " ckpt_cuts=%zu journal_bytes=%zu",
                  t->ckpt->cuts(), t->ckpt->journal_bytes());
    line += buf;
  }
  lines.push_back(std::move(line));
  return lines;
}

void TenantRegistry::DropOwner(uint64_t owner) {
  std::vector<std::shared_ptr<Tenant>> all;
  {
    MutexLock lock(&mu_);
    for (auto& entry : tenants_) all.push_back(entry.second);
  }
  for (auto& tenant : all) {
    MutexLock lock(&tenant->mu);
    tenant->subs.erase(
        std::remove_if(tenant->subs.begin(), tenant->subs.end(),
                       [owner](const std::unique_ptr<Subscription>& sub) {
                         return sub->owner == owner;
                       }),
        tenant->subs.end());
  }
}

void TenantRegistry::CloseAll() {
  for (;;) {
    std::string name;
    {
      MutexLock lock(&mu_);
      if (tenants_.empty()) return;
      name = tenants_.begin()->first;
    }
    Close(name);
  }
}

size_t TenantRegistry::tenant_count() const {
  MutexLock lock(&mu_);
  return tenants_.size();
}

}  // namespace serve
}  // namespace rl0
