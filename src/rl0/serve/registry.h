// Multi-tenant sampler registry with standing queries.
//
// The server half that owns state: a TenantRegistry maps tenant names
// to windowed sharded pipelines (core/sharded_pool.h), all sharing ONE
// WorkerFleet (core/worker_fleet.h) — S lanes per tenant but a fixed
// thread count overall, with fair round-robin service so one tenant's
// backlog cannot starve another's. The connection layer (serve/server.h)
// is stateless by comparison: it parses commands and calls in here.
//
// Standing queries: a subscription asks for a periodic evaluation of a
// tenant's window — `digest` (k sample draws), `f0` (the CVM exact-
// distinct watermark, serve/cvm.h) or `churn` (alert when the distinct
// count drifts ≥ threshold since the last alert). Cadence is measured
// in *stream* progress, not wall clock: every N points (sequence-mode
// tenants) or every N time units of stamp progress (time/late), so
// firing positions are a deterministic function of the fed stream —
// which is what tests/standing_query_test.cc pins. To evaluate at the
// exact crossing, the registry splits feed chunks at trigger
// boundaries; the pipeline's chunking-invariance contract makes the
// split invisible to sampler state.
//
// Trigger timing per mode:
//   sequence  fires when the fed-point count crosses k·every, evaluated
//             after Drain at now = count-1 (the position stamp of the
//             crossing point);
//   time      fires at the first fed point whose stamp ≥ the trigger
//             stamp, evaluated at that point's stamp;
//   late      fires when the reorder stage's release frontier
//             (pool->now()) crosses the trigger stamp — late-buffered
//             points can therefore hold a trigger back until FLUSH,
//             which is the correct bounded-lateness behaviour (nothing
//             is evaluated before its window content is complete).
//
// Events are delivered push-style through an EventSink, one sink call
// per complete EVENT block. A sink returning false (its connection's
// bounded queue closed) permanently drops the subscription; a sink that
// blocks (queue full) applies end-to-end backpressure: the feeding
// command stalls, and with it the feeding client's socket.
//
// Durability: tenants created with ckpt=1 own a PoolCheckpointer under
// <checkpoint-root>/<tenant>; recover=1 restores from that directory
// (journal replay included) and rebases the chain (fresh full cut)
// before accepting new points. Subscriptions and CVM state are scratch:
// they do not survive recovery — only sampler state does.

#ifndef RL0_SERVE_REGISTRY_H_
#define RL0_SERVE_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "rl0/core/sharded_pool.h"
#include "rl0/core/worker_fleet.h"
#include "rl0/geom/point.h"
#include "rl0/serve/checkpointer.h"
#include "rl0/serve/cvm.h"
#include "rl0/serve/protocol.h"
#include "rl0/util/rng.h"
#include "rl0/util/status.h"
#include "rl0/util/sync.h"
#include "rl0/util/thread_annotations.h"

namespace rl0 {
namespace serve {

/// Delivers one complete EVENT block to a subscriber. May block
/// (backpressure); returns false when the subscriber is gone, which
/// drops the subscription.
using EventSink = std::function<bool(const std::string& block)>;

class TenantRegistry {
 public:
  struct Options {
    /// Fleet threads shared by every tenant's ingestion lanes.
    size_t fleet_threads = 4;
    /// Root directory for per-tenant checkpoints; empty disables ckpt=1.
    std::string checkpoint_root;
    /// Kept-key capacity of each tenant's CVM estimator.
    size_t cvm_capacity = 4096;
  };

  explicit TenantRegistry(const Options& options);

  /// Closes every tenant (CloseAll) before the fleet shuts down.
  ~TenantRegistry();

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Creates (or recovers, params.recover) a tenant.
  Status Create(const std::string& name, const CreateParams& params);

  /// Feeds a sequence-mode tenant. Splits at trigger boundaries, fires
  /// due standing queries, cuts checkpoints at the tenant's cadence.
  Status Feed(const std::string& name, std::vector<Point> points);

  /// Feeds a time- or late-mode tenant. Time mode requires stamps
  /// non-decreasing within the batch AND from the previous batch's last
  /// stamp (rejected with InvalidArgument otherwise — the pool would
  /// CHECK-fail); late mode accepts any order within the tenant's
  /// lateness bound (the reorder stage restores order, out-of-bound
  /// stamps count as late_dropped).
  Status FeedStamped(const std::string& name, std::vector<Point> points,
                     std::vector<int64_t> stamps);

  /// Draws `queries` consecutive samples from the latest window with a
  /// fresh query rng — seeded exactly like `rl0_cli sample`
  /// (SplitMix64(seed ^ kQuerySeedSalt)), so the returned lines are
  /// byte-identical to the CLI's for the same fed stream. `seed`
  /// defaults to the tenant's creation seed when !seed_set.
  Result<std::vector<std::string>> Sample(const std::string& name,
                                          int queries, bool seed_set,
                                          uint64_t seed);

  /// One "DATA f0_exact=... observed=..." line (see serve/cvm.h for the
  /// exact-distinct caveat).
  Result<std::string> F0Line(const std::string& name);

  /// Registers a standing query; returns its id. `owner` is an opaque
  /// connection token for DropOwner. `cmd` must be a parsed kSubscribe.
  Result<uint64_t> Subscribe(const std::string& name, const Command& cmd,
                             uint64_t owner, EventSink sink);

  Status Unsubscribe(const std::string& name, uint64_t sub_id);

  /// Late mode: releases the reorder buffer (FlushLate), fires any
  /// triggers the advanced frontier crossed, cuts a checkpoint. Other
  /// modes: drain + checkpoint cut only.
  Status Flush(const std::string& name);

  /// Flushes, fires pending triggers, cuts the final checkpoint, drops
  /// subscriptions and destroys the tenant.
  Status Close(const std::string& name);

  /// Formatted "STAT ..." lines: one per tenant for `name`, or the
  /// registry-wide summary for the empty string.
  Result<std::vector<std::string>> StatsLines(const std::string& name);

  /// Drops every subscription registered under `owner` (connection
  /// closed). Their sinks are never called again.
  void DropOwner(uint64_t owner);

  /// Closes every tenant (idempotent; also run by the destructor).
  void CloseAll();

  size_t tenant_count() const;
  WorkerFleet* fleet() { return &fleet_; }

 private:
  /// All fields are guarded by the owning Tenant's mu (a separate struct
  /// cannot name it in RL0_GUARDED_BY, so the contract lives here):
  /// subscriptions are only created, fired, and erased under that lock.
  struct Subscription {
    uint64_t id = 0;
    QueryKind kind = QueryKind::kDigest;
    int64_t every = 0;
    double threshold = 0.0;
    int queries = 1;
    uint64_t owner = 0;
    /// Next fire position: a point count (sequence mode) or a stamp.
    int64_t next_fire = 0;
    /// Digest draw stream (persistent across fires — deterministic for
    /// a fixed feed order).
    Xoshiro256pp rng;
    /// Churn baseline (updates only when an alert fires).
    double baseline = 0.0;
    bool baseline_set = false;
    EventSink sink;
  };

  struct Tenant {
    std::string name;
    CreateParams params;
    /// Serializes every operation on this tenant (feeding, queries,
    /// subscription management). Held while sinks run — backpressure on
    /// a slow subscriber intentionally stalls the tenant. Ordered AFTER
    /// the registry's mu_ (never take mu_ while holding a tenant's mu).
    Mutex mu;
    std::unique_ptr<ShardedSwSamplerPool> pool RL0_GUARDED_BY(mu);
    /// Declared after pool: destroyed first, detaching the journal tap
    /// before the pool's pipeline stops.
    std::unique_ptr<PoolCheckpointer> ckpt RL0_GUARDED_BY(mu);
    CvmEstimator cvm RL0_GUARDED_BY(mu);
    std::vector<std::unique_ptr<Subscription>> subs RL0_GUARDED_BY(mu);
    uint64_t next_sub_id RL0_GUARDED_BY(mu) = 1;
    /// Last stamp accepted from a FEEDSTAMPED batch (time mode's
    /// cross-batch monotonicity guard; the pool CHECK-fails on
    /// regression, so the registry must reject first).
    int64_t last_stamp RL0_GUARDED_BY(mu) = 0;
    bool last_stamp_set RL0_GUARDED_BY(mu) = false;

    Tenant(std::string name, const CreateParams& params,
           size_t cvm_capacity);
  };

  std::shared_ptr<Tenant> Find(const std::string& name);
  /// Create's body after the name reservation: builds (or recovers) the
  /// tenant and registers it. The caller holds `name` in creating_.
  Status BuildAndRegister(const std::string& name,
                          const CreateParams& params);
  /// Feeds [begin, end) of `points` (+stamps) through the right pool
  /// path for the tenant's mode.
  void FeedSlice(Tenant* t, const std::vector<Point>& points,
                 const std::vector<int64_t>& stamps, size_t begin,
                 size_t end) RL0_REQUIRES(t->mu);
  /// Fires every subscription whose next_fire ≤ `position` (a count in
  /// sequence mode, a stamp otherwise), advancing each past it. Call
  /// with the position actually reached by the pool.
  void FireDue(Tenant* t, int64_t position) RL0_REQUIRES(t->mu);
  void FireSubscription(Tenant* t, Subscription* sub, int64_t position)
      RL0_REQUIRES(t->mu);
  /// The earliest pending next_fire among live subscriptions, or
  /// INT64_MAX.
  static int64_t NextTrigger(const Tenant* t) RL0_REQUIRES(t->mu);
  Status FlushLocked(Tenant* t) RL0_REQUIRES(t->mu);

  /// Declared before tenants_: destroyed last, after every tenant's
  /// pool has deregistered its lanes.
  WorkerFleet fleet_;
  std::string checkpoint_root_;
  size_t cvm_capacity_;
  /// Registry-level lock: first in the lock hierarchy (taken before any
  /// tenant's mu, never after one — see docs/ARCHITECTURE.md).
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_
      RL0_GUARDED_BY(mu_);
  /// Names with a Create in flight. Reserving here before building
  /// keeps two concurrent CREATEs of one name from both running
  /// recovery (Rebase rewrites the checkpoint chain) against the same
  /// directory.
  std::set<std::string> creating_ RL0_GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace rl0

#endif  // RL0_SERVE_REGISTRY_H_
