#include "rl0/serve/checkpointer.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>

namespace rl0 {
namespace serve {

bool WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::InvalidArgument("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Internal("read failed: " + path);
  return bytes;
}

std::string CheckpointFileName(const std::string& dir, size_t index,
                               bool full) {
  char name[48];
  std::snprintf(name, sizeof(name), "ckpt-%06zu.%s", index,
                full ? "full" : "delta");
  return dir + "/" + name;
}

Result<LoadedChain> LoadCheckpointChain(const std::string& dir) {
  LoadedChain out;
  auto base = ReadFileBytes(CheckpointFileName(dir, 0, /*full=*/true));
  if (!base.ok()) return base.status();
  out.checkpoint = std::move(base).value();
  for (size_t i = 1;; ++i) {
    auto delta = ReadFileBytes(CheckpointFileName(dir, i, /*full=*/false));
    if (!delta.ok()) break;  // end of the chain
    std::string folded;
    const Status status =
        FoldPoolDelta(out.checkpoint, delta.value(), &folded);
    if (!status.ok()) {
      return Status::Internal("folding " +
                              CheckpointFileName(dir, i, false) + ": " +
                              status.ToString());
    }
    out.checkpoint = std::move(folded);
    ++out.deltas;
  }
  auto journal = ReadFileBytes(dir + "/journal.log");
  if (journal.ok()) {
    // Keep only the valid prefix: a torn tail must not be re-appended
    // to (the continuing writer would frame records after garbage).
    JournalContents contents;
    const Status status = ReadJournal(journal.value(), &contents);
    if (!status.ok()) {
      return Status::Internal("journal.log: " + status.ToString());
    }
    out.journal = journal.value().substr(0, contents.valid_bytes);
    out.journal_records = contents.records.size();
  }
  return out;
}

PoolCheckpointer::PoolCheckpointer(ShardedSwSamplerPool* pool,
                                   std::string dir, uint64_t every,
                                   size_t dim)
    : pool_(pool),
      dir_(std::move(dir)),
      every_(every),
      writer_(&journal_, dim),
      next_cut_(every) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best-effort; the
  AttachJournal(pool_, &writer_);  // first Cut reports a bad dir
}

PoolCheckpointer::PoolCheckpointer(ShardedSwSamplerPool* pool,
                                   std::string dir, uint64_t every,
                                   size_t dim, LoadedChain chain)
    : pool_(pool),
      dir_(std::move(dir)),
      every_(every),
      journal_(std::move(chain.journal)),
      writer_(&journal_, dim, chain.journal_records),
      next_cut_(every) {
  AttachJournal(pool_, &writer_);
}

PoolCheckpointer::~PoolCheckpointer() {
  pool_->SetJournalSink(nullptr);
}

Status PoolCheckpointer::Rebase() {
  // The stale deltas chain against the pre-crash epoch; remove them
  // before the fresh full cut overwrites ckpt-000000.full, so a crash
  // mid-rebase can never leave a full base next to foreign deltas.
  for (size_t i = 1;; ++i) {
    const std::string name = CheckpointFileName(dir_, i, /*full=*/false);
    std::error_code ec;
    if (!std::filesystem::remove(name, ec)) break;
  }
  chain_.clear();
  cuts_ = 0;
  const Status status = Cut();  // full (chain_ empty), continuing seq
  if (!status.ok()) return status;
  if (every_ != 0) {
    // Resume the cadence from the recovered fed count — the rebase cut
    // just covered everything up to here.
    next_cut_ = every_;
    const uint64_t fed = pool_->points_fed();
    while (next_cut_ <= fed) next_cut_ += every_;
  }
  return Status::OK();
}

Status PoolCheckpointer::MaybeCut() {
  if (every_ == 0 || pool_->points_fed() < next_cut_) return Status::OK();
  while (pool_->points_fed() >= next_cut_) next_cut_ += every_;
  return Cut();
}

Status PoolCheckpointer::Cut() {
  pool_->Drain();
  const uint64_t seq = writer_.next_seq();
  std::string blob;
  const bool full = chain_.empty();
  Status status = full ? CheckpointPool(pool_, seq, &blob)
                       : CheckpointPoolDelta(pool_, chain_, seq, &blob);
  if (status.ok() && !full) {
    std::string folded;
    status = FoldPoolDelta(chain_, blob, &folded);
    if (status.ok()) chain_ = std::move(folded);
  } else if (status.ok()) {
    chain_ = blob;
  }
  if (!status.ok()) return status;
  if (!WriteFileBytes(CheckpointFileName(dir_, cuts_, full), blob) ||
      !WriteFileBytes(dir_ + "/journal.log", journal_)) {
    return Status::Internal("cannot write checkpoint files in '" + dir_ +
                            "'");
  }
  ++cuts_;
  return Status::OK();
}

}  // namespace serve
}  // namespace rl0
