#include "rl0/serve/protocol.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

namespace rl0 {
namespace serve {

LineDecoder::LineDecoder(size_t max_line_bytes)
    : max_line_bytes_(max_line_bytes < 16 ? 16 : max_line_bytes) {}

void LineDecoder::Append(const char* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const char c = data[i];
    if (discarding_) {
      // Inside an oversized line: drop bytes through its newline. The
      // notice was queued when the limit was crossed, so memory stays
      // bounded even if the newline never comes.
      if (c == '\n') discarding_ = false;
      continue;
    }
    if (c == '\n') {
      if (!partial_.empty() && partial_.back() == '\r') {
        partial_.pop_back();  // tolerate CRLF
      }
      events_.emplace_back(false, std::move(partial_));
      partial_.clear();
      continue;
    }
    partial_.push_back(c);
    if (partial_.size() > max_line_bytes_) {
      partial_.clear();
      events_.emplace_back(true, std::string());
      discarding_ = true;
    }
  }
}

LineDecoder::Event LineDecoder::Next(std::string* line) {
  if (events_.empty()) return Event::kNone;
  const bool oversized = events_.front().first;
  if (!oversized) *line = std::move(events_.front().second);
  events_.pop_front();
  return oversized ? Event::kOversized : Event::kLine;
}

bool ValidTenantName(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  if (name[0] == '.') return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string FormatSampleLine(const Point& point, uint64_t stream_index) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  # stream position %llu",
                static_cast<unsigned long long>(stream_index));
  return point.ToString() + buf;
}

namespace {

// Strict numeric parsing, mirroring stream/csv.cc: errno reset, full
// token consumed, range-checked, and (for doubles) finite. Any deviation
// is a parse error, never a silently-clamped value.

bool ParseDoubleToken(const std::string& tok, double* out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size()) return false;
  if (errno == ERANGE || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool ParseU64Token(const std::string& tok, uint64_t* out) {
  if (tok.empty() || tok[0] == '-' || tok[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size()) return false;
  if (errno == ERANGE) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseI64Token(const std::string& tok, int64_t* out) {
  if (tok.empty() || tok[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size()) return false;
  if (errno == ERANGE) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(line, start, i - start);
  }
  return tokens;
}

Status Err(const std::string& msg) { return Status::InvalidArgument(msg); }

/// Parses "x,y,z" into a Point. `expect_dim` of 0 accepts any dimension.
bool ParsePointToken(const std::string& tok, Point* out) {
  std::vector<double> coords;
  size_t start = 0;
  for (;;) {
    const size_t comma = tok.find(',', start);
    const std::string piece =
        comma == std::string::npos ? tok.substr(start)
                                   : tok.substr(start, comma - start);
    double v;
    if (!ParseDoubleToken(piece, &v)) return false;
    coords.push_back(v);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  *out = Point(std::move(coords));
  return true;
}

/// Splits "key=value"; returns false when there is no '=' or empty key.
bool SplitKeyValue(const std::string& tok, std::string* key,
                   std::string* value) {
  const size_t eq = tok.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  key->assign(tok, 0, eq);
  value->assign(tok, eq + 1, tok.size() - eq - 1);
  return true;
}

Result<Command> ParseCreate(const std::vector<std::string>& tokens) {
  Command cmd;
  cmd.type = CommandType::kCreate;
  if (tokens.size() < 2) return Err("CREATE: missing tenant name");
  cmd.tenant = tokens[1];
  if (!ValidTenantName(cmd.tenant)) {
    return Err("CREATE: bad tenant name (want [A-Za-z0-9_.-]{1,64})");
  }
  CreateParams& p = cmd.create;
  bool have_dim = false, have_alpha = false, have_window = false;
  for (size_t i = 2; i < tokens.size(); ++i) {
    std::string key, value;
    if (!SplitKeyValue(tokens[i], &key, &value)) {
      return Err("CREATE: expected key=value, got '" + tokens[i] + "'");
    }
    uint64_t u = 0;
    double d = 0.0;
    int64_t s = 0;
    if (key == "dim") {
      if (!ParseU64Token(value, &u) || u == 0 || u > 4096) {
        return Err("CREATE: bad dim");
      }
      p.dim = static_cast<size_t>(u);
      have_dim = true;
    } else if (key == "alpha") {
      if (!ParseDoubleToken(value, &d) || d <= 0.0) {
        return Err("CREATE: bad alpha");
      }
      p.alpha = d;
      have_alpha = true;
    } else if (key == "window") {
      if (!ParseI64Token(value, &s) || s <= 0) {
        return Err("CREATE: bad window");
      }
      p.window = s;
      have_window = true;
    } else if (key == "mode") {
      if (value == "seq") {
        p.mode = TenantMode::kSequence;
      } else if (value == "time") {
        p.mode = TenantMode::kTime;
      } else if (value == "late") {
        p.mode = TenantMode::kLate;
      } else {
        return Err("CREATE: bad mode (want seq|time|late)");
      }
    } else if (key == "lateness") {
      if (!ParseI64Token(value, &s) || s < 0) {
        return Err("CREATE: bad lateness");
      }
      p.lateness = s;
    } else if (key == "shards") {
      if (!ParseU64Token(value, &u) || u == 0 || u > 256) {
        return Err("CREATE: bad shards");
      }
      p.shards = static_cast<size_t>(u);
    } else if (key == "seed") {
      if (!ParseU64Token(value, &u)) return Err("CREATE: bad seed");
      p.seed = u;
    } else if (key == "metric") {
      if (value == "l2") {
        p.metric = Metric::kL2;
      } else if (value == "l1") {
        p.metric = Metric::kL1;
      } else if (value == "linf") {
        p.metric = Metric::kLinf;
      } else {
        return Err("CREATE: bad metric (want l2|l1|linf)");
      }
    } else if (key == "m") {
      if (!ParseU64Token(value, &u) || u == 0) return Err("CREATE: bad m");
      p.expected_m = u;
    } else if (key == "k") {
      if (!ParseU64Token(value, &u) || u == 0 || u > 4096) {
        return Err("CREATE: bad k");
      }
      p.k = static_cast<size_t>(u);
    } else if (key == "reservoir") {
      if (!ParseU64Token(value, &u) || u > 1) {
        return Err("CREATE: bad reservoir (want 0|1)");
      }
      p.reservoir = u != 0;
    } else if (key == "filter") {
      if (!ParseU64Token(value, &u) || u > 1) {
        return Err("CREATE: bad filter (want 0|1)");
      }
      p.filter = u != 0;
    } else if (key == "ckpt") {
      if (!ParseU64Token(value, &u) || u > 1) {
        return Err("CREATE: bad ckpt (want 0|1)");
      }
      p.checkpoint = u != 0;
    } else if (key == "every") {
      if (!ParseU64Token(value, &u)) return Err("CREATE: bad every");
      p.checkpoint_every = u;
    } else if (key == "recover") {
      if (!ParseU64Token(value, &u) || u > 1) {
        return Err("CREATE: bad recover (want 0|1)");
      }
      p.recover = u != 0;
    } else {
      return Err("CREATE: unknown option '" + key + "'");
    }
  }
  if (!have_dim) return Err("CREATE: missing dim=");
  if (!have_alpha) return Err("CREATE: missing alpha=");
  if (!have_window) return Err("CREATE: missing window=");
  if (p.mode == TenantMode::kLate && p.lateness <= 0) {
    return Err("CREATE: mode=late requires lateness>0");
  }
  if (p.mode != TenantMode::kLate && p.lateness != 0) {
    return Err("CREATE: lateness= requires mode=late");
  }
  if (p.recover) p.checkpoint = true;
  return cmd;
}

Result<Command> ParseFeed(const std::vector<std::string>& tokens,
                          bool stamped) {
  Command cmd;
  cmd.type = stamped ? CommandType::kFeedStamped : CommandType::kFeed;
  const char* name = stamped ? "FEEDSTAMPED" : "FEED";
  if (tokens.size() < 2) {
    return Err(std::string(name) + ": missing tenant name");
  }
  cmd.tenant = tokens[1];
  if (tokens.size() < 3) {
    return Err(std::string(name) + ": no points");
  }
  if (tokens.size() - 2 > kMaxPointsPerFeed) {
    return Err(std::string(name) + ": too many points in one command");
  }
  cmd.points.reserve(tokens.size() - 2);
  if (stamped) cmd.stamps.reserve(tokens.size() - 2);
  size_t dim = 0;
  for (size_t i = 2; i < tokens.size(); ++i) {
    std::string coords_tok = tokens[i];
    if (stamped) {
      const size_t at = coords_tok.find('@');
      if (at == std::string::npos) {
        return Err("FEEDSTAMPED: expected stamp@coords, got '" +
                   tokens[i] + "'");
      }
      int64_t stamp;
      if (!ParseI64Token(coords_tok.substr(0, at), &stamp)) {
        return Err("FEEDSTAMPED: bad stamp in '" + tokens[i] + "'");
      }
      // No ordering check here: whether disorder is legal depends on
      // the tenant's mode (late tolerates it, time does not), which the
      // stateless parser cannot know. The registry enforces it.
      cmd.stamps.push_back(stamp);
      coords_tok.erase(0, at + 1);
    }
    Point point;
    if (!ParsePointToken(coords_tok, &point)) {
      return Err(std::string(name) + ": bad point '" + tokens[i] + "'");
    }
    if (i == 2) {
      dim = point.dim();
    } else if (point.dim() != dim) {
      return Err(std::string(name) + ": inconsistent dimensions");
    }
    cmd.points.push_back(std::move(point));
  }
  return cmd;
}

Result<Command> ParseSample(const std::vector<std::string>& tokens) {
  Command cmd;
  cmd.type = CommandType::kSample;
  if (tokens.size() < 2) return Err("SAMPLE: missing tenant name");
  cmd.tenant = tokens[1];
  for (size_t i = 2; i < tokens.size(); ++i) {
    std::string key, value;
    if (!SplitKeyValue(tokens[i], &key, &value)) {
      return Err("SAMPLE: expected key=value, got '" + tokens[i] + "'");
    }
    uint64_t u = 0;
    if (key == "q") {
      if (!ParseU64Token(value, &u) || u == 0 || u > 4096) {
        return Err("SAMPLE: bad q");
      }
      cmd.queries = static_cast<int>(u);
    } else if (key == "seed") {
      if (!ParseU64Token(value, &u)) return Err("SAMPLE: bad seed");
      cmd.seed = u;
      cmd.seed_set = true;
    } else {
      return Err("SAMPLE: unknown option '" + key + "'");
    }
  }
  return cmd;
}

Result<Command> ParseSubscribe(const std::vector<std::string>& tokens) {
  Command cmd;
  cmd.type = CommandType::kSubscribe;
  if (tokens.size() < 3) {
    return Err("SUBSCRIBE: want SUBSCRIBE <tenant> digest|f0|churn ...");
  }
  cmd.tenant = tokens[1];
  const std::string& kind = tokens[2];
  if (kind == "digest") {
    cmd.query = QueryKind::kDigest;
  } else if (kind == "f0") {
    cmd.query = QueryKind::kF0;
  } else if (kind == "churn") {
    cmd.query = QueryKind::kChurn;
  } else {
    return Err("SUBSCRIBE: bad kind (want digest|f0|churn)");
  }
  bool have_every = false, have_threshold = false;
  for (size_t i = 3; i < tokens.size(); ++i) {
    std::string key, value;
    if (!SplitKeyValue(tokens[i], &key, &value)) {
      return Err("SUBSCRIBE: expected key=value, got '" + tokens[i] + "'");
    }
    uint64_t u = 0;
    double d = 0.0;
    if (key == "every") {
      // The registry stores fire cadences as int64 stream positions;
      // every > INT64_MAX would wrap negative and break trigger math.
      if (!ParseU64Token(value, &u) || u == 0 ||
          u > static_cast<uint64_t>(
                  std::numeric_limits<int64_t>::max())) {
        return Err("SUBSCRIBE: bad every");
      }
      cmd.every = u;
      have_every = true;
    } else if (key == "q" && cmd.query == QueryKind::kDigest) {
      if (!ParseU64Token(value, &u) || u == 0 || u > 4096) {
        return Err("SUBSCRIBE: bad q");
      }
      cmd.queries = static_cast<int>(u);
    } else if (key == "seed" && cmd.query == QueryKind::kDigest) {
      if (!ParseU64Token(value, &u)) return Err("SUBSCRIBE: bad seed");
      cmd.seed = u;
      cmd.seed_set = true;
    } else if (key == "threshold" && cmd.query == QueryKind::kChurn) {
      if (!ParseDoubleToken(value, &d) || d < 0.0) {
        return Err("SUBSCRIBE: bad threshold");
      }
      cmd.threshold = d;
      have_threshold = true;
    } else {
      return Err("SUBSCRIBE: unknown option '" + key + "'");
    }
  }
  if (!have_every) return Err("SUBSCRIBE: missing every=");
  if (cmd.query == QueryKind::kChurn && !have_threshold) {
    return Err("SUBSCRIBE: churn requires threshold=");
  }
  return cmd;
}

}  // namespace

Result<Command> ParseCommand(const std::string& line) {
  const std::vector<std::string> tokens = SplitTokens(line);
  if (tokens.empty()) return Err("empty command");
  const std::string& verb = tokens[0];
  if (verb == "PING") {
    Command cmd;
    cmd.type = CommandType::kPing;
    if (tokens.size() != 1) return Err("PING takes no arguments");
    return cmd;
  }
  if (verb == "QUIT") {
    Command cmd;
    cmd.type = CommandType::kQuit;
    if (tokens.size() != 1) return Err("QUIT takes no arguments");
    return cmd;
  }
  if (verb == "CREATE") return ParseCreate(tokens);
  if (verb == "FEED") return ParseFeed(tokens, /*stamped=*/false);
  if (verb == "FEEDSTAMPED") return ParseFeed(tokens, /*stamped=*/true);
  if (verb == "SAMPLE") return ParseSample(tokens);
  if (verb == "SUBSCRIBE") return ParseSubscribe(tokens);
  if (verb == "UNSUBSCRIBE") {
    Command cmd;
    cmd.type = CommandType::kUnsubscribe;
    if (tokens.size() != 3) {
      return Err("UNSUBSCRIBE: want UNSUBSCRIBE <tenant> <sub-id>");
    }
    cmd.tenant = tokens[1];
    if (!ParseU64Token(tokens[2], &cmd.sub_id)) {
      return Err("UNSUBSCRIBE: bad sub-id");
    }
    return cmd;
  }
  if (verb == "F0" || verb == "FLUSH" || verb == "CLOSE") {
    Command cmd;
    cmd.type = verb == "F0"      ? CommandType::kF0
               : verb == "FLUSH" ? CommandType::kFlush
                                 : CommandType::kClose;
    if (tokens.size() != 2) {
      return Err(verb + ": want " + verb + " <tenant>");
    }
    cmd.tenant = tokens[1];
    return cmd;
  }
  if (verb == "STATS") {
    Command cmd;
    cmd.type = CommandType::kStats;
    if (tokens.size() > 2) return Err("STATS: want STATS [<tenant>]");
    if (tokens.size() == 2) cmd.tenant = tokens[1];
    return cmd;
  }
  return Err("unknown command '" + verb + "'");
}

}  // namespace serve
}  // namespace rl0
