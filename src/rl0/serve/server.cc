#include "rl0/serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

namespace rl0 {
namespace serve {

namespace {

constexpr int kPollMillis = 200;
/// Rounds of unwritable poll() a live session tolerates before it is
/// dropped (~5 s); shrinks to one round during shutdown.
constexpr int kStallRounds = 25;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

/// Never closes `fd` — ownership stays with the caller, so the failure
/// path has exactly one close.
bool ListenOn(int fd) {
  return SetNonBlocking(fd) && ::listen(fd, 64) == 0;
}

}  // namespace

Server::Server(const Options& options) : options_(options) {
  TenantRegistry::Options reg;
  reg.fleet_threads = options.fleet_threads;
  reg.checkpoint_root = options.checkpoint_root;
  registry_ = std::make_unique<TenantRegistry>(reg);
}

Result<std::unique_ptr<Server>> Server::Start(const Options& options) {
  if (options.unix_path.empty() && options.tcp_port == 0) {
    return Status::InvalidArgument(
        "need a unix socket path and/or a TCP port");
  }
  std::unique_ptr<Server> server(new Server(options));
  const Status bound = server->Bind();
  if (!bound.ok()) return bound;
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

Status Server::Bind() {
  if (!options_.unix_path.empty()) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long");
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a crash
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        !ListenOn(fd)) {
      if (fd >= 0) ::close(fd);
      return Status::Internal("cannot listen on unix socket '" +
                              options_.unix_path + "': " +
                              std::strerror(errno));
    }
    unix_fd_ = fd;
  }
  if (options_.tcp_port != 0) {
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(options_.tcp_port > 0
                  ? static_cast<uint16_t>(options_.tcp_port)
                  : 0);  // -1 = ephemeral
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    if (fd < 0 ||
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0 ||
        ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        !ListenOn(fd)) {
      if (fd >= 0) ::close(fd);
      return Status::Internal(std::string("cannot listen on TCP: ") +
                              std::strerror(errno));
    }
    tcp_fd_ = fd;
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      tcp_port_ = ntohs(bound.sin_port);
    }
  }
  return Status::OK();
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() {
  if (shutdown_.exchange(true)) {
    // Second caller: wait for the first to finish tearing down.
    while (!shut_down_done_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  // Flush tenants while subscribers are still connected: final trigger
  // fires and checkpoint cuts happen here, and live consumers receive
  // their last EVENT blocks. A consumer that stalls delivery is dropped
  // by its writer's shutdown-shrunk stall budget, so this cannot hang.
  registry_->CloseAll();
  std::vector<std::shared_ptr<Session>> sessions;
  {
    MutexLock lock(&sessions_mu_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    if (session->reader.joinable()) session->reader.join();
  }
  shut_down_done_.store(true);
}

void Server::ReapDone() {
  MutexLock lock(&sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::AcceptLoop() {
  pollfd fds[2];
  while (!shutdown_.load()) {
    int n = 0;
    if (unix_fd_ >= 0) fds[n++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n++] = {tcp_fd_, POLLIN, 0};
    const int ready = ::poll(fds, static_cast<nfds_t>(n), kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0) {
      ReapDone();
      continue;
    }
    for (int i = 0; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (fd >= 0) StartSession(fd);
    }
  }
}

void Server::StartSession(int fd) {
  if (!SetNonBlocking(fd)) {
    ::close(fd);
    return;
  }
  auto session = std::make_shared<Session>(options_.event_queue_depth);
  session->fd = fd;
  {
    MutexLock lock(&sessions_mu_);
    session->id = next_session_id_++;
    sessions_.push_back(session);
  }
  sessions_accepted_.fetch_add(1);
  session->writer = std::thread([this, session] { WriterLoop(session); });
  session->reader = std::thread([this, session] { ReaderLoop(session); });
}

void Server::NoteQueueDepth(size_t depth) {
  size_t seen = max_queue_depth_.load();
  while (depth > seen &&
         !max_queue_depth_.compare_exchange_weak(seen, depth)) {
  }
}

void Server::Respond(const std::shared_ptr<Session>& session,
                     std::string block) {
  if (session->out.Push(std::move(block))) {
    NoteQueueDepth(session->out.size());
  }
}

void Server::WriterLoop(const std::shared_ptr<Session>& session) {
  std::string block;
  bool dead = false;
  while (session->out.Pop(&block)) {
    size_t off = 0;
    int stalled = 0;
    while (!dead && off < block.size()) {
      pollfd pfd = {session->fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, kPollMillis);
      if (ready < 0 && errno != EINTR) {
        dead = true;
        break;
      }
      if (ready <= 0) {
        // Unwritable peer. During shutdown one stalled round is enough
        // to give up (Shutdown's CloseAll must not hang on a dead
        // subscriber); live sessions get the full budget.
        if (++stalled >= (shutdown_.load() ? 1 : kStallRounds)) dead = true;
        continue;
      }
      const ssize_t written =
          ::send(session->fd, block.data() + off, block.size() - off,
                 MSG_NOSIGNAL);
      if (written < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        dead = true;
      } else {
        stalled = 0;
        off += static_cast<size_t>(written);
      }
    }
    if (dead) {
      // Unblock every producer stuck in Push (their sinks then return
      // false and the registry drops the subscriptions), discard the
      // backlog, and bail.
      session->out.Close();
      while (session->out.Pop(&block)) {
      }
      return;
    }
  }
}

void Server::ReaderLoop(const std::shared_ptr<Session>& session) {
  LineDecoder decoder(options_.max_line_bytes);
  char buf[4096];
  bool open = true;
  while (open && !shutdown_.load()) {
    pollfd pfd = {session->fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = ::recv(session->fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // EOF
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        continue;
      }
      break;
    }
    decoder.Append(buf, static_cast<size_t>(n));
    std::string line;
    for (;;) {
      const LineDecoder::Event event = decoder.Next(&line);
      if (event == LineDecoder::Event::kNone) break;
      if (event == LineDecoder::Event::kOversized) {
        Respond(session, "ERR line too long\n");
        continue;
      }
      if (!HandleLine(session, line)) {
        open = false;
        break;
      }
    }
  }
  // Teardown: the registry must stop firing into this session before
  // the queue closes for good (sinks racing the close just get false).
  registry_->DropOwner(session->id);
  session->out.Close();
  if (session->writer.joinable()) session->writer.join();
  ::close(session->fd);
  session->done.store(true);
}

bool Server::HandleLine(const std::shared_ptr<Session>& session,
                        const std::string& line) {
  Result<Command> parsed = ParseCommand(line);
  if (!parsed.ok()) {
    Respond(session, "ERR " + parsed.status().message() + "\n");
    return true;
  }
  Command cmd = std::move(parsed).value();
  switch (cmd.type) {
    case CommandType::kPing:
      Respond(session, "OK pong\n");
      return true;
    case CommandType::kQuit:
      Respond(session, "OK bye\n");
      return false;
    case CommandType::kCreate: {
      const Status status = registry_->Create(cmd.tenant, cmd.create);
      Respond(session, status.ok() ? "OK\n"
                                   : "ERR " + status.message() + "\n");
      return true;
    }
    case CommandType::kFeed:
    case CommandType::kFeedStamped: {
      const size_t count = cmd.points.size();
      const Status status =
          cmd.type == CommandType::kFeed
              ? registry_->Feed(cmd.tenant, std::move(cmd.points))
              : registry_->FeedStamped(cmd.tenant, std::move(cmd.points),
                                       std::move(cmd.stamps));
      if (!status.ok()) {
        Respond(session, "ERR " + status.message() + "\n");
        return true;
      }
      char tail[48];
      std::snprintf(tail, sizeof(tail), "OK fed=%zu\n", count);
      Respond(session, tail);
      return true;
    }
    case CommandType::kSample: {
      auto lines = registry_->Sample(cmd.tenant, cmd.queries, cmd.seed_set,
                                     cmd.seed);
      if (!lines.ok()) {
        Respond(session, "ERR " + lines.status().message() + "\n");
        return true;
      }
      std::string block;
      for (const std::string& item : lines.value()) {
        block += "ITEM " + item + "\n";
      }
      block += "OK\n";
      Respond(session, std::move(block));
      return true;
    }
    case CommandType::kF0: {
      auto data = registry_->F0Line(cmd.tenant);
      if (!data.ok()) {
        Respond(session, "ERR " + data.status().message() + "\n");
        return true;
      }
      Respond(session, data.value() + "\nOK\n");
      return true;
    }
    case CommandType::kSubscribe: {
      // The sink must not keep the session alive in a cycle: it owns a
      // shared_ptr to the Session only, and DropOwner severs it when
      // the session ends.
      auto sink_session = session;
      auto self = this;
      auto id = registry_->Subscribe(
          cmd.tenant, cmd, session->id,
          [self, sink_session](const std::string& block) {
            if (!sink_session->out.Push(block)) return false;
            self->NoteQueueDepth(sink_session->out.size());
            return true;
          });
      if (!id.ok()) {
        Respond(session, "ERR " + id.status().message() + "\n");
        return true;
      }
      char tail[48];
      std::snprintf(tail, sizeof(tail), "OK id=%" PRIu64 "\n", id.value());
      Respond(session, tail);
      return true;
    }
    case CommandType::kUnsubscribe: {
      const Status status = registry_->Unsubscribe(cmd.tenant, cmd.sub_id);
      Respond(session, status.ok() ? "OK\n"
                                   : "ERR " + status.message() + "\n");
      return true;
    }
    case CommandType::kFlush: {
      const Status status = registry_->Flush(cmd.tenant);
      Respond(session, status.ok() ? "OK\n"
                                   : "ERR " + status.message() + "\n");
      return true;
    }
    case CommandType::kStats: {
      auto lines = registry_->StatsLines(cmd.tenant);
      if (!lines.ok()) {
        Respond(session, "ERR " + lines.status().message() + "\n");
        return true;
      }
      std::string block;
      for (const std::string& stat : lines.value()) {
        block += stat + "\n";
      }
      block += "OK\n";
      Respond(session, std::move(block));
      return true;
    }
    case CommandType::kClose: {
      const Status status = registry_->Close(cmd.tenant);
      Respond(session, status.ok() ? "OK\n"
                                   : "ERR " + status.message() + "\n");
      return true;
    }
  }
  Respond(session, "ERR internal: unhandled command\n");
  return true;
}

}  // namespace serve
}  // namespace rl0
