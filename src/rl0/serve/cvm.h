// CVM distinct-elements companion estimator for server F0 watermarks.
//
// The server's F0 command and f0 standing queries need a cheap,
// always-on cardinality signal per tenant. The paper-faithful
// F0EstimatorSW (core/f0_sw.h) answers the *robust* (near-duplicate
// collapsed) F0 question but costs many sampler lanes per tenant —
// too heavy to run unconditionally next to every registry pool. The
// server instead keeps one CvmEstimator per tenant: the
// Chakraborty–Vinodchandran–Meel sampling estimator (arXiv 2301.10191)
// over SplitMix64-hashed point byte keys.
//
// Honest semantics: this is an EXACT-distinct estimator — two points
// count as one element only when their coordinate bytes are identical.
// It does NOT collapse near-duplicates; it is a monitoring signal (how
// many distinct raw points has this tenant seen), not the paper's
// robust F0. The protocol reports it as `f0_exact` to keep the
// distinction visible, and the robust estimate remains available
// offline via `rl0_cli f0`.
//
// Properties: O(capacity) memory, O(1) amortized update, (ε, δ)
// guarantees per the CVM paper for capacity ≈ (12/ε²)·log₂(8m/δ).
// State is scratch — it is NOT checkpointed, and a recovered tenant
// restarts the estimator cold (count resumes from the replayed feed
// onward). STATS exposes `f0_observed` so tests can see warm-up.

#ifndef RL0_SERVE_CVM_H_
#define RL0_SERVE_CVM_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>

#include "rl0/geom/point.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace serve {

/// Hashes a point's coordinate bytes to the 64-bit element key the
/// estimator deduplicates on (exact-distinct semantics).
uint64_t PointKey(PointView point);

/// The CVM sampling estimator over 64-bit element keys.
class CvmEstimator {
 public:
  /// `capacity` bounds the kept-key set (≥ 16 enforced); `seed` drives
  /// the keep/evict coin flips (deterministic for a fixed feed order).
  CvmEstimator(size_t capacity, uint64_t seed);

  /// Observes one element.
  void Add(uint64_t key);

  /// Observes one point (hashes, then Add).
  void AddPoint(PointView point) { Add(PointKey(point)); }

  /// Current estimate of the number of distinct keys observed.
  double Estimate() const;

  /// Total elements observed (warm-up / monitoring).
  uint64_t observed() const { return observed_; }

  /// Kept-key set size (≤ capacity; introspection).
  size_t kept() const { return kept_.size(); }

 private:
  size_t capacity_;
  /// Keep probability p: an observed key survives into kept_ with
  /// probability p; estimate = |kept_| / p.
  double p_ = 1.0;
  std::unordered_set<uint64_t> kept_;
  Xoshiro256pp rng_;
  uint64_t observed_ = 0;
};

}  // namespace serve
}  // namespace rl0

#endif  // RL0_SERVE_CVM_H_
