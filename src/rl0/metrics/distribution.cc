#include "rl0/metrics/distribution.h"

#include <algorithm>
#include <cmath>

#include "rl0/util/check.h"

namespace rl0 {

SampleDistribution::SampleDistribution(size_t num_groups)
    : counts_(num_groups, 0) {
  RL0_CHECK(num_groups >= 1);
}

void SampleDistribution::Record(uint32_t group) {
  RL0_CHECK(group < counts_.size());
  ++counts_[group];
  ++total_;
}

uint64_t SampleDistribution::MinCount() const {
  return *std::min_element(counts_.begin(), counts_.end());
}

uint64_t SampleDistribution::MaxCount() const {
  return *std::max_element(counts_.begin(), counts_.end());
}

size_t SampleDistribution::ZeroGroups() const {
  size_t zeros = 0;
  for (uint64_t c : counts_) zeros += (c == 0);
  return zeros;
}

double SampleDistribution::StdDevNm() const {
  if (total_ == 0) return 0.0;
  const double n = static_cast<double>(counts_.size());
  const double f_star = 1.0 / n;
  double sum_sq = 0.0;
  for (uint64_t c : counts_) {
    const double f = static_cast<double>(c) / static_cast<double>(total_);
    sum_sq += (f - f_star) * (f - f_star);
  }
  return std::sqrt(sum_sq / n) / f_star;
}

double SampleDistribution::MaxDevNm() const {
  if (total_ == 0) return 0.0;
  const double n = static_cast<double>(counts_.size());
  const double f_star = 1.0 / n;
  double max_dev = 0.0;
  for (uint64_t c : counts_) {
    const double f = static_cast<double>(c) / static_cast<double>(total_);
    max_dev = std::max(max_dev, std::abs(f - f_star));
  }
  return max_dev / f_star;
}

double SampleDistribution::ChiSquare() const {
  if (total_ == 0) return 0.0;
  const double expected =
      static_cast<double>(total_) / static_cast<double>(counts_.size());
  double chi = 0.0;
  for (uint64_t c : counts_) {
    const double diff = static_cast<double>(c) - expected;
    chi += diff * diff / expected;
  }
  return chi;
}

double SampleDistribution::StdDevNoiseFloor(size_t num_groups,
                                            uint64_t runs) {
  if (runs == 0) return 0.0;
  return std::sqrt(static_cast<double>(num_groups - 1) /
                   static_cast<double>(runs));
}

}  // namespace rl0
