// Accuracy measurements for the sampling experiments (Section 6.1).
//
// The paper evaluates an ℓ0-sampler by running it many times, counting how
// often each group is returned, and reporting
//   stdDevNm = stddev of the empirical per-group frequencies f_i,
//              normalized by the target f* = 1/F0, and
//   maxDevNm = max_i |f_i − f*| / f*.
// Both follow the methodology of Cormode & Firmani's ℓ0-sampler survey.

#ifndef RL0_METRICS_DISTRIBUTION_H_
#define RL0_METRICS_DISTRIBUTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rl0 {

/// Accumulates per-group sample counts and computes the paper's metrics.
class SampleDistribution {
 public:
  /// Creates a distribution over `num_groups` groups.
  explicit SampleDistribution(size_t num_groups);

  /// Records one returned sample from `group`.
  void Record(uint32_t group);

  /// Number of recorded samples.
  uint64_t total() const { return total_; }

  /// Number of groups.
  size_t num_groups() const { return counts_.size(); }

  /// Raw counts.
  const std::vector<uint64_t>& counts() const { return counts_; }

  /// Count of the least / most frequently sampled group.
  uint64_t MinCount() const;
  uint64_t MaxCount() const;

  /// Number of groups never sampled.
  size_t ZeroGroups() const;

  /// stdDevNm: stddev of empirical frequencies normalized by f* = 1/n.
  double StdDevNm() const;

  /// maxDevNm: max_i |f_i − f*| / f*.
  double MaxDevNm() const;

  /// Pearson chi-square statistic against the uniform distribution
  /// (degrees of freedom = num_groups − 1).
  double ChiSquare() const;

  /// The sampling-noise floor for stdDevNm at this run count: even a
  /// perfectly uniform sampler measures stdDevNm ≈ sqrt((n−1)/runs).
  static double StdDevNoiseFloor(size_t num_groups, uint64_t runs);

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace rl0

#endif  // RL0_METRICS_DISTRIBUTION_H_
