// Minkowski metrics for the near-duplicate threshold.
//
// The paper works in Euclidean (L2) space and notes (Section 7) that the
// random grid is a locality-sensitive partition that generalizes to other
// metrics. The grid + pruned-DFS adjacency machinery in this library is
// exact for any metric whose distance-to-box decomposes monotonically over
// axes; we ship the three standard Minkowski cases. L2 is the default
// everywhere and matches the paper.

#ifndef RL0_GEOM_METRIC_H_
#define RL0_GEOM_METRIC_H_

#include "rl0/geom/point.h"

namespace rl0 {

/// Supported distance functions.
enum class Metric {
  kL2,    ///< Euclidean (the paper's setting).
  kL1,    ///< Manhattan / taxicab.
  kLinf,  ///< Chebyshev / maximum coordinate difference.
};

/// A stable lowercase name for logs ("l2", "l1", "linf").
const char* MetricName(Metric metric);

/// Distance between a and b under `metric`. Requires equal dimensions.
/// View-based: owning Points convert implicitly, arena-backed points pass
/// their PointStore views straight through (no materialization).
double MetricDistance(PointView a, PointView b, Metric metric);

/// True iff the `metric` distance between a and b is ≤ radius.
bool MetricWithinDistance(PointView a, PointView b, double radius,
                          Metric metric);

}  // namespace rl0

#endif  // RL0_GEOM_METRIC_H_
