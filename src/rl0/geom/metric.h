// Minkowski metrics for the near-duplicate threshold.
//
// The paper works in Euclidean (L2) space and notes (Section 7) that the
// random grid is a locality-sensitive partition that generalizes to other
// metrics. The grid + pruned-DFS adjacency machinery in this library is
// exact for any metric whose distance-to-box decomposes monotonically over
// axes; we ship the three standard Minkowski cases. L2 is the default
// everywhere and matches the paper.

#ifndef RL0_GEOM_METRIC_H_
#define RL0_GEOM_METRIC_H_

#include "rl0/geom/point.h"

namespace rl0 {

/// Supported distance functions.
enum class Metric {
  kL2,    ///< Euclidean (the paper's setting).
  kL1,    ///< Manhattan / taxicab.
  kLinf,  ///< Chebyshev / maximum coordinate difference.
};

/// A stable lowercase name for logs ("l2", "l1", "linf").
const char* MetricName(Metric metric);

/// Distance between a and b under `metric`. Requires equal dimensions.
/// View-based: owning Points convert implicitly, arena-backed points pass
/// their PointStore views straight through (no materialization).
///
/// \note These scalar loops are the *reference semantics* for the batched
/// kernels in geom/distance_kernels.h: contributions are accumulated in
/// axis order with plain multiply-then-add (the build pins
/// -ffp-contract=off so the compiler cannot fuse them), and the vector
/// paths replicate that operation sequence lane by lane. Changing the
/// accumulation here without changing the kernels in lockstep breaks the
/// bit-identical-decisions contract the differential tests pin.
double MetricDistance(PointView a, PointView b, Metric metric);

/// True iff the `metric` distance between a and b is ≤ radius.
/// For kL2 the comparison is squared-distance ≤ radius² (no square root);
/// the batched kernels compare against the identical bound, so a batched
/// verdict equals this predicate bit for bit (see the contract in
/// geom/distance_kernels.h).
bool MetricWithinDistance(PointView a, PointView b, double radius,
                          Metric metric);

}  // namespace rl0

#endif  // RL0_GEOM_METRIC_H_
