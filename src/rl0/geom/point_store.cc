#include "rl0/geom/point_store.h"

#include <cstring>

#include "rl0/util/check.h"

namespace rl0 {

PointStore::PointStore(size_t dim) : dim_(dim) { RL0_CHECK(dim >= 1); }

PointRef PointStore::Allocate() {
  PointRef ref;
  ref.dim = static_cast<uint32_t>(dim_);
  if (!free_offsets_.empty()) {
    ref.offset = free_offsets_.back();
    free_offsets_.pop_back();
  } else {
    ref.offset = coords_.size();
    coords_.resize(coords_.size() + dim_);
  }
  ++live_;
  return ref;
}

PointRef PointStore::Add(PointView p) {
  RL0_DCHECK(p.dim() == dim_);
  const PointRef ref = Allocate();
  Write(ref, p);
  return ref;
}

void PointStore::Write(PointRef ref, PointView p) {
  RL0_DCHECK(ref.valid());
  RL0_DCHECK(p.dim() == dim_ && ref.dim == dim_);
  RL0_DCHECK(ref.offset + dim_ <= coords_.size());
  std::memcpy(coords_.data() + ref.offset, p.data(), dim_ * sizeof(double));
}

void PointStore::Release(PointRef ref) {
  RL0_DCHECK(ref.valid());
  RL0_DCHECK(live_ > 0);
  free_offsets_.push_back(ref.offset);
  --live_;
}

}  // namespace rl0
