// Batched, SIMD-friendly distance evaluation over the PointStore arena.
//
// Algorithm 1's per-point cost is dominated by the FindCandidate probe:
// adjacent-cell lookups followed by exact distance checks against stored
// representatives (the (α,β)-robustness gap forces real distance
// evaluations — unlike classic L0 samplers, hashing alone cannot decide
// group membership). The samplers used to walk each cell chain calling
// MetricWithinDistance once per representative: one pointer resolve, one
// scalar distance loop, one compare, per candidate.
//
// This header batches that: the caller gathers the candidate arena slots
// of a whole adjacency neighborhood into a flat uint32_t list and calls
// DistanceOneToMany once. Because every stored point of a sampler family
// lives in one PointStore (fixed-size slots in a single flat double
// buffer, see point_store.h), candidate i's coordinates are simply
//
//   store.raw() + slots[i] * store.dim()
//
// and the kernel can process four candidates per AVX2 vector — one lane
// per candidate, sweeping the axes sequentially — with a squared-distance
// early-out once every lane of a block has already exceeded the radius.
//
// ## The bit-identical-decisions contract
//
// The batched kernel is REQUIRED to return, for every candidate, exactly
// the boolean MetricWithinDistance(store.View(slot), q, radius, metric)
// would return — not an approximation of it. The differential tests pin
// the samplers' accept/reject trajectories against the legacy map-based
// implementations, and those trajectories flow through these comparisons.
// The contract is kept by construction:
//
//   * Lane-per-candidate layout: each lane accumulates its candidate's
//     distance over the axes in the same order, with the same operations
//     (subtract, multiply, add — or abs/max for L1/L∞), as the scalar
//     loop in geom/point.cc. No cross-lane or in-lane reassociation.
//   * No FMA contraction: the kernel uses explicit multiply-then-add, and
//     the build compiles the library with -ffp-contract=off (see
//     CMakeLists.txt) so the scalar path cannot be contracted either.
//     The loops are laid out FMA-friendly; switching both paths to fused
//     ops together would preserve the contract, fusing one side alone
//     would not.
//   * The early-out never changes a decision: per-axis contributions are
//     non-negative, so a partial sum (or running max) that already
//     exceeds the radius bound can only grow.
//   * (x−y)² , |x−y| and max-folds are sign-symmetric, so operand order
//     per axis is immaterial at the bit level.
//
// tests/distance_kernel_test.cc verifies the contract over randomized
// batches (dims 1/2/5/20/64, exact-boundary radii) for both dispatch
// paths.
//
// ## Dispatch rules
//
//   * Default build: DistanceOneToMany dispatches at runtime — AVX2 lanes
//     when __builtin_cpu_supports("avx2") says so (checked once), the
//     scalar loop otherwise. No -mavx2 global flag is needed: the vector
//     body is compiled per-function via the GCC/Clang target attribute.
//   * -DRL0_NO_SIMD=ON (compile-time escape hatch): the vector body is
//     not built at all and DistanceOneToMany aliases the scalar loop.
//     CI keeps this configuration green.
//   * Non-x86 or non-GNU toolchains: scalar loop, same as RL0_NO_SIMD.
//
// DistanceKernelDispatch() reports which path DistanceOneToMany resolves
// to ("avx2" or "scalar"); benchmarks record it so throughput
// trajectories are comparable across machines (docs/BENCHMARKS.md).

#ifndef RL0_GEOM_DISTANCE_KERNELS_H_
#define RL0_GEOM_DISTANCE_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "rl0/geom/metric.h"
#include "rl0/geom/point.h"
#include "rl0/geom/point_store.h"
#include "rl0/util/small_vector.h"

namespace rl0 {

/// Per-candidate result bits of a batched distance evaluation. Bit i is
/// set iff candidate i passed the threshold test. Inline storage covers
/// 256 candidates (far beyond any adjacency neighborhood the samplers
/// probe); larger batches spill to the heap transparently.
class Bitmask {
 public:
  static constexpr size_t npos = ~size_t{0};

  /// Clears and resizes to `bits` bits, all zero.
  void Reset(size_t bits) {
    bits_ = bits;
    words_.clear();
    const size_t words = (bits + 63) / 64;
    words_.reserve(words);
    for (size_t i = 0; i < words; ++i) words_.push_back(0);
  }

  size_t size() const { return bits_; }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Index of the first set bit, or npos. Candidates are gathered in
  /// probe order (adjacent keys outer, cell chain inner), so this is
  /// exactly the representative the scalar first-match scan would pick.
  size_t FindFirst() const {
    const size_t words = words_.size();
    for (size_t w = 0; w < words; ++w) {
      if (words_[w] != 0) {
        const size_t bit = w * 64 + CountTrailingZeros(words_[w]);
        return bit < bits_ ? bit : npos;
      }
    }
    return npos;
  }

  /// Number of set bits (tests / introspection).
  size_t Count() const {
    size_t n = 0;
    for (size_t i = 0; i < bits_; ++i) n += Test(i);
    return n;
  }

 private:
  static size_t CountTrailingZeros(uint64_t w) {
#if defined(__GNUC__)
    return static_cast<size_t>(__builtin_ctzll(w));
#else
    size_t n = 0;
    while ((w & 1) == 0) {
      w >>= 1;
      ++n;
    }
    return n;
#endif
  }

  SmallVector<uint64_t, 4> words_;
  size_t bits_ = 0;
};

/// Batched threshold test: sets out bit i iff the `metric` distance
/// between q and the stored point in arena slot slots[i] is ≤ radius —
/// bit-for-bit the result of MetricWithinDistance(store.View(ref), q,
/// radius, metric) for each candidate (see the contract above). `out` is
/// Reset to n bits first. Requires q.dim() == store.dim() and every
/// slots[i] < store.capacity_slots() referring to a live slot.
///
/// Dispatches to the AVX2 body when available (see the dispatch rules
/// above); equivalent to DistanceOneToManyScalar in all cases.
void DistanceOneToMany(const PointStore& store, PointView q,
                       const uint32_t* slots, size_t n, Metric metric,
                       double radius, Bitmask* out);

/// The portable reference body: one MetricWithinDistance call per
/// candidate. Always available; public so the equivalence test (and any
/// caller that wants deterministic code identity across machines) can
/// invoke it directly.
void DistanceOneToManyScalar(const PointStore& store, PointView q,
                             const uint32_t* slots, size_t n, Metric metric,
                             double radius, Bitmask* out);

/// Index (in gather order) of the first candidate within `radius` of q,
/// or Bitmask::npos — the batched form of the samplers' first-match
/// probe. Lanes are tested four at a time in gather order and the scan
/// returns at the first block containing a hit, so at most three
/// candidates past the match are evaluated; distance checks are pure, so
/// the overshoot is unobservable and the returned index — hence every
/// sampling decision — equals the scalar early-exit walk's. Dispatch
/// rules as DistanceOneToMany; the scalar body IS the early-exit walk.
size_t FindFirstWithin(const PointStore& store, PointView q,
                       const uint32_t* slots, size_t n, Metric metric,
                       double radius);

/// Vectorized grid quantization: per axis i,
///   base[i]   = floor((p[i] - offset[i]) / side)   (as int64), and
///   scaled[i] = p[i] - (offset[i] + double(base[i]) * side).
/// This is the per-point prologue of every cell assignment and adjacency
/// search (grid/random_grid.cc) — dim divisions that the samplers pay per
/// stream element. Axes are independent lanes, and every lane operation
/// (subtract, divide, floor, multiply, add) is exactly rounded IEEE, so
/// the vector path is bit-identical to the scalar loop by construction —
/// no contract subtleties, unlike the accumulating distance loops above.
/// Dispatch rules as DistanceOneToMany.
void QuantizeAxes(const double* p, const double* offset, size_t dim,
                  double side, int64_t* base, double* scaled);

/// The path DistanceOneToMany resolves to on this machine and build:
/// "avx2" or "scalar". Stable strings — recorded in bench JSON.
const char* DistanceKernelDispatch();

}  // namespace rl0

#endif  // RL0_GEOM_DISTANCE_KERNELS_H_
