#include "rl0/geom/point.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "rl0/util/check.h"

namespace rl0 {

Point Point::operator+(const Point& other) const {
  RL0_DCHECK(dim() == other.dim());
  Point out(*this);
  for (size_t i = 0; i < coords_.size(); ++i) out.coords_[i] += other[i];
  return out;
}

Point Point::operator-(const Point& other) const {
  RL0_DCHECK(dim() == other.dim());
  Point out(*this);
  for (size_t i = 0; i < coords_.size(); ++i) out.coords_[i] -= other[i];
  return out;
}

Point Point::operator*(double scale) const {
  Point out(*this);
  for (double& c : out.coords_) c *= scale;
  return out;
}

double Point::Norm() const {
  double s = 0.0;
  for (double c : coords_) s += c * c;
  return std::sqrt(s);
}

std::string Point::ToString() const {
  std::string out = "(";
  char buf[32];
  for (size_t i = 0; i < coords_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.6g", coords_[i]);
    if (i) out += ", ";
    out += buf;
  }
  out += ")";
  return out;
}

bool PointView::operator==(PointView other) const {
  if (dim_ != other.dim_) return false;
  for (size_t i = 0; i < dim_; ++i) {
    if (data_[i] != other.data_[i]) return false;
  }
  return true;
}

double SquaredDistance(PointView a, PointView b) {
  RL0_DCHECK(a.dim() == b.dim());
  double s = 0.0;
  const size_t d = a.dim();
  const double* pa = a.data();
  const double* pb = b.data();
  for (size_t i = 0; i < d; ++i) {
    const double diff = pa[i] - pb[i];
    s += diff * diff;
  }
  return s;
}

double Distance(PointView a, PointView b) {
  return std::sqrt(SquaredDistance(a, b));
}

bool WithinDistance(PointView a, PointView b, double radius) {
  return SquaredDistance(a, b) <= radius * radius;
}

double MinPairwiseDistance(const std::vector<Point>& points) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      const double d2 = SquaredDistance(points[i], points[j]);
      if (d2 < best * best) best = std::sqrt(d2);
    }
  }
  return best;
}

}  // namespace rl0
