#include "rl0/geom/distance_kernels.h"

#include <cmath>

#include "rl0/util/check.h"

// The vector body is compiled per-function via the target attribute, so
// the library keeps its portable baseline ISA; RL0_NO_SIMD removes the
// body entirely (the compile-time escape hatch, exercised in CI).
#if !defined(RL0_NO_SIMD) && defined(__GNUC__) && \
    (defined(__x86_64__) || defined(__i386__))
#define RL0_DISTANCE_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace rl0 {

void DistanceOneToManyScalar(const PointStore& store, PointView q,
                             const uint32_t* slots, size_t n, Metric metric,
                             double radius, Bitmask* out) {
  RL0_DCHECK(q.dim() == store.dim());
  out->Reset(n);
  const double* base = store.raw();
  const size_t dim = store.dim();
  for (size_t i = 0; i < n; ++i) {
    const PointView c(base + size_t{slots[i]} * dim, dim);
    if (MetricWithinDistance(c, q, radius, metric)) out->Set(i);
  }
}

#if RL0_DISTANCE_KERNELS_X86

namespace {

bool Avx2Supported() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}

// The ≤-bound lane mask (bits 0..3) for one block of four candidates.
// One lane per candidate, axes swept sequentially: each lane performs the
// scalar loop's operations in the scalar loop's order, so the lane result
// is bit-identical to MetricWithinDistance (header contract). Explicit
// multiply-then-add — do not replace with _mm256_fmadd_pd unless the
// scalar path in geom/point.cc is fused in the same change.
//
// `bound` is radius² for L2 (exactly as WithinDistance compares), the
// radius itself for L1/L∞. Per-axis contributions are non-negative, so
// once every lane's accumulator exceeds the bound the block's verdict is
// final: the early-out (checked every 8 axes, amortizing the movemask)
// can only skip work, never flip a decision.
__attribute__((target("avx2"))) inline int BlockMask4(
    const double* base, size_t dim, const double* q, const uint32_t* slots,
    Metric metric, __m256d vbound) {
  const double* c0 = base + size_t{slots[0]} * dim;
  const double* c1 = base + size_t{slots[1]} * dim;
  const double* c2 = base + size_t{slots[2]} * dim;
  const double* c3 = base + size_t{slots[3]} * dim;
  const __m256d sign = _mm256_set1_pd(-0.0);
  __m256d acc = _mm256_setzero_pd();
  if (metric == Metric::kL2) {
    for (size_t k = 0; k < dim; ++k) {
      const __m256d qk = _mm256_broadcast_sd(q + k);
      const __m256d ck = _mm256_set_pd(c3[k], c2[k], c1[k], c0[k]);
      const __m256d diff = _mm256_sub_pd(ck, qk);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
      if ((k & 7) == 7 && k + 1 < dim &&
          _mm256_movemask_pd(_mm256_cmp_pd(acc, vbound, _CMP_GT_OQ)) == 0xF) {
        return 0;
      }
    }
  } else if (metric == Metric::kL1) {
    for (size_t k = 0; k < dim; ++k) {
      const __m256d qk = _mm256_broadcast_sd(q + k);
      const __m256d ck = _mm256_set_pd(c3[k], c2[k], c1[k], c0[k]);
      const __m256d diff = _mm256_sub_pd(ck, qk);
      acc = _mm256_add_pd(acc, _mm256_andnot_pd(sign, diff));
      if ((k & 7) == 7 && k + 1 < dim &&
          _mm256_movemask_pd(_mm256_cmp_pd(acc, vbound, _CMP_GT_OQ)) == 0xF) {
        return 0;
      }
    }
  } else {  // kLinf: running max instead of a sum, same early-out logic.
    for (size_t k = 0; k < dim; ++k) {
      const __m256d qk = _mm256_broadcast_sd(q + k);
      const __m256d ck = _mm256_set_pd(c3[k], c2[k], c1[k], c0[k]);
      const __m256d diff = _mm256_sub_pd(ck, qk);
      acc = _mm256_max_pd(acc, _mm256_andnot_pd(sign, diff));
      if ((k & 7) == 7 && k + 1 < dim &&
          _mm256_movemask_pd(_mm256_cmp_pd(acc, vbound, _CMP_GT_OQ)) == 0xF) {
        return 0;
      }
    }
  }
  // Ordered compare: NaN lanes report "outside", as scalar <= does.
  return _mm256_movemask_pd(_mm256_cmp_pd(acc, vbound, _CMP_LE_OQ));
}

__attribute__((target("avx2"))) void OneToManyAvx2(
    const double* base, size_t dim, const double* q, const uint32_t* slots,
    size_t n, Metric metric, double radius, Bitmask* out) {
  const double bound = metric == Metric::kL2 ? radius * radius : radius;
  const __m256d vbound = _mm256_set1_pd(bound);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int mask = BlockMask4(base, dim, q, slots + i, metric, vbound);
    if (mask & 1) out->Set(i + 0);
    if (mask & 2) out->Set(i + 1);
    if (mask & 4) out->Set(i + 2);
    if (mask & 8) out->Set(i + 3);
  }
  // Remainder lanes (n mod 4): the scalar loop itself.
  const PointView qv(q, dim);
  for (; i < n; ++i) {
    const PointView c(base + size_t{slots[i]} * dim, dim);
    if (MetricWithinDistance(c, qv, radius, metric)) out->Set(i);
  }
}

__attribute__((target("avx2"))) size_t FindFirstAvx2(
    const double* base, size_t dim, const double* q, const uint32_t* slots,
    size_t n, Metric metric, double radius) {
  const double bound = metric == Metric::kL2 ? radius * radius : radius;
  const __m256d vbound = _mm256_set1_pd(bound);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int mask = BlockMask4(base, dim, q, slots + i, metric, vbound);
    if (mask != 0) return i + static_cast<size_t>(__builtin_ctz(mask));
  }
  const PointView qv(q, dim);
  for (; i < n; ++i) {
    const PointView c(base + size_t{slots[i]} * dim, dim);
    if (MetricWithinDistance(c, qv, radius, metric)) return i;
  }
  return Bitmask::npos;
}

// Four axes per iteration; lane ops (sub, div, floor, mul, add) are each
// exactly rounded, so every lane reproduces the scalar axis bit for bit.
// int64 conversion happens on the stored (integral) floor results — the
// same double→int64 cast the scalar loop performs.
__attribute__((target("avx2"))) void QuantizeAxesAvx2(
    const double* p, const double* offset, size_t dim, double side,
    int64_t* base, double* scaled) {
  const __m256d vside = _mm256_set1_pd(side);
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const __m256d vp = _mm256_loadu_pd(p + i);
    const __m256d vo = _mm256_loadu_pd(offset + i);
    const __m256d f =
        _mm256_floor_pd(_mm256_div_pd(_mm256_sub_pd(vp, vo), vside));
    const __m256d lo = _mm256_add_pd(vo, _mm256_mul_pd(f, vside));
    _mm256_storeu_pd(scaled + i, _mm256_sub_pd(vp, lo));
    alignas(32) double fd[4];
    _mm256_store_pd(fd, f);
    base[i + 0] = static_cast<int64_t>(fd[0]);
    base[i + 1] = static_cast<int64_t>(fd[1]);
    base[i + 2] = static_cast<int64_t>(fd[2]);
    base[i + 3] = static_cast<int64_t>(fd[3]);
  }
  for (; i < dim; ++i) {
    const int64_t b =
        static_cast<int64_t>(std::floor((p[i] - offset[i]) / side));
    base[i] = b;
    scaled[i] = p[i] - (offset[i] + static_cast<double>(b) * side);
  }
}

}  // namespace

#endif  // RL0_DISTANCE_KERNELS_X86

const char* DistanceKernelDispatch() {
#if RL0_DISTANCE_KERNELS_X86
  return Avx2Supported() ? "avx2" : "scalar";
#else
  return "scalar";
#endif
}

void DistanceOneToMany(const PointStore& store, PointView q,
                       const uint32_t* slots, size_t n, Metric metric,
                       double radius, Bitmask* out) {
#if RL0_DISTANCE_KERNELS_X86
  if (Avx2Supported()) {
    RL0_DCHECK(q.dim() == store.dim());
    out->Reset(n);
    OneToManyAvx2(store.raw(), store.dim(), q.data(), slots, n, metric,
                  radius, out);
    return;
  }
#endif
  DistanceOneToManyScalar(store, q, slots, n, metric, radius, out);
}

void QuantizeAxes(const double* p, const double* offset, size_t dim,
                  double side, int64_t* base, double* scaled) {
#if RL0_DISTANCE_KERNELS_X86
  if (Avx2Supported()) {
    QuantizeAxesAvx2(p, offset, dim, side, base, scaled);
    return;
  }
#endif
  for (size_t i = 0; i < dim; ++i) {
    const int64_t b =
        static_cast<int64_t>(std::floor((p[i] - offset[i]) / side));
    base[i] = b;
    scaled[i] = p[i] - (offset[i] + static_cast<double>(b) * side);
  }
}

size_t FindFirstWithin(const PointStore& store, PointView q,
                       const uint32_t* slots, size_t n, Metric metric,
                       double radius) {
  RL0_DCHECK(q.dim() == store.dim());
#if RL0_DISTANCE_KERNELS_X86
  if (Avx2Supported()) {
    return FindFirstAvx2(store.raw(), store.dim(), q.data(), slots, n,
                         metric, radius);
  }
#endif
  // Scalar body: the samplers' original early-exit chain walk.
  const double* base = store.raw();
  const size_t dim = store.dim();
  for (size_t i = 0; i < n; ++i) {
    const PointView c(base + size_t{slots[i]} * dim, dim);
    if (MetricWithinDistance(c, q, radius, metric)) return i;
  }
  return Bitmask::npos;
}

}  // namespace rl0
