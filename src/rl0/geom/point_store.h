// Contiguous arena storage for same-dimension points.
//
// The samplers store thousands of representatives whose lifetimes churn
// with rate halvings and window expiry. Keeping each as a heap-allocated
// std::vector<double> puts every distance computation behind a pointer
// chase and scatters the working set across the allocator. PointStore
// instead keeps all stored points of one sampler family in a single flat
// double buffer: a stored point is addressed by a PointRef {offset, dim}
// and read through a PointView over the buffer. Slots are fixed-size
// (every point in a store shares the store's dimension), so released slots
// are recycled through a free list and the buffer only grows to the peak
// live population — mirroring the paper's space bounds.
//
// Views are invalidated by Add/Allocate (the buffer may grow); re-resolve
// a PointRef through View() after any allocation. Writes through Write()
// never move the buffer.

#ifndef RL0_GEOM_POINT_STORE_H_
#define RL0_GEOM_POINT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rl0/geom/point.h"

namespace rl0 {

/// Handle to a point stored in a PointStore: the offset of its first
/// coordinate in the store's flat buffer plus its dimension.
struct PointRef {
  static constexpr uint64_t kNullOffset = ~uint64_t{0};

  uint64_t offset = kNullOffset;
  uint32_t dim = 0;

  bool valid() const { return offset != kNullOffset; }

  bool operator==(const PointRef& other) const {
    return offset == other.offset && dim == other.dim;
  }
  bool operator!=(const PointRef& other) const { return !(*this == other); }
};

/// A flat arena of fixed-dimension points with slot recycling.
/// Copyable (copies the buffer and free list); moving is cheap.
class PointStore {
 public:
  /// A store for points of dimension `dim` (≥ 1).
  explicit PointStore(size_t dim);

  /// The fixed dimension of every stored point.
  size_t dim() const { return dim_; }

  /// Allocates a slot and copies `p` into it. Requires p.dim() == dim().
  /// Invalidates outstanding PointViews (the buffer may grow).
  PointRef Add(PointView p);

  /// Allocates an uninitialized slot (fill it with Write). Invalidates
  /// outstanding PointViews.
  PointRef Allocate();

  /// Overwrites the slot at `ref` with `p`. Never moves the buffer.
  void Write(PointRef ref, PointView p);

  /// A view of the stored point. Valid until the next Add/Allocate.
  PointView View(PointRef ref) const {
    return PointView(coords_.data() + ref.offset, ref.dim);
  }

  /// The flat coordinate buffer. Slot i's coordinates start at
  /// raw() + i * dim(); the batched distance kernels
  /// (geom/distance_kernels.h) address candidates this way. Invalidated
  /// by Add/Allocate like any view.
  const double* raw() const { return coords_.data(); }

  /// The arena slot index of `ref` (offsets are always slot-aligned:
  /// every slot in a store spans exactly dim() doubles).
  uint32_t SlotIndexOf(PointRef ref) const {
    return static_cast<uint32_t>(ref.offset / dim_);
  }

  /// Returns the slot at `ref` to the free list. The ref (and any copies
  /// of it) must not be used afterwards.
  void Release(PointRef ref);

  /// Number of live (allocated, unreleased) points.
  size_t live() const { return live_; }

  /// Total slots ever carved out of the buffer (live + free).
  size_t capacity_slots() const { return coords_.size() / dim_; }

  /// Live coordinate payload in doubles (== machine words).
  size_t PayloadWords() const { return live_ * dim_; }

 private:
  size_t dim_;
  std::vector<double> coords_;
  std::vector<uint64_t> free_offsets_;
  size_t live_ = 0;
};

}  // namespace rl0

#endif  // RL0_GEOM_POINT_STORE_H_
