// Johnson–Lindenstrauss random projection (paper Section 4, Remark 2).
//
// Theorem 4.1 needs (α, β)-sparsity with β > d^1.5·α; the paper remarks
// that JL dimension reduction weakens the requirement to
// β ≥ c·log^1.5(m)·α: project the stream to k = O(log m / ε²) dimensions
// — pairwise distances are preserved within (1±ε) with high probability —
// and run the sampler in the projected space with rescaled thresholds.
//
// This is the dense Gaussian construction: a k×d matrix of i.i.d.
// N(0, 1/k) entries, fixed per instance by the seed, applied per point in
// O(k·d). Near-duplicates stay near (distance ≤ (1+ε)·α) and separated
// groups stay separated (distance ≥ (1−ε)·β), so running the sampler with
// threshold (1+ε)·α in the projected space preserves the group structure.

#ifndef RL0_GEOM_JL_PROJECTION_H_
#define RL0_GEOM_JL_PROJECTION_H_

#include <cstdint>
#include <vector>

#include "rl0/geom/point.h"
#include "rl0/util/status.h"

namespace rl0 {

/// A fixed random linear map R^input_dim -> R^output_dim.
class JlProjection {
 public:
  /// Creates a projection with N(0, 1/output_dim) entries derived from
  /// `seed`. Requires 1 ≤ output_dim and 1 ≤ input_dim.
  static Result<JlProjection> Create(size_t input_dim, size_t output_dim,
                                     uint64_t seed);

  /// The standard dimension bound k = ⌈8·ln(m)/ε²⌉ preserving all pairwise
  /// distances of m points within (1±ε) with high probability.
  static size_t DimensionFor(uint64_t num_points, double epsilon);

  /// Projects `p` (dimension input_dim) to output_dim dimensions.
  Point Apply(const Point& p) const;

  /// Projects every point of `points`.
  std::vector<Point> ApplyAll(const std::vector<Point>& points) const;

  size_t input_dim() const { return input_dim_; }
  size_t output_dim() const { return output_dim_; }

 private:
  JlProjection(size_t input_dim, size_t output_dim,
               std::vector<double> matrix)
      : input_dim_(input_dim),
        output_dim_(output_dim),
        matrix_(std::move(matrix)) {}

  size_t input_dim_;
  size_t output_dim_;
  /// Row-major output_dim × input_dim.
  std::vector<double> matrix_;
};

}  // namespace rl0

#endif  // RL0_GEOM_JL_PROJECTION_H_
