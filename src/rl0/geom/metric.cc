#include "rl0/geom/metric.h"

#include <algorithm>
#include <cmath>

#include "rl0/util/check.h"

namespace rl0 {

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "l2";
    case Metric::kL1:
      return "l1";
    case Metric::kLinf:
      return "linf";
  }
  return "unknown";
}

double MetricDistance(PointView a, PointView b, Metric metric) {
  RL0_DCHECK(a.dim() == b.dim());
  switch (metric) {
    case Metric::kL2:
      return Distance(a, b);
    case Metric::kL1: {
      double s = 0.0;
      for (size_t i = 0; i < a.dim(); ++i) s += std::abs(a[i] - b[i]);
      return s;
    }
    case Metric::kLinf: {
      double m = 0.0;
      for (size_t i = 0; i < a.dim(); ++i) {
        m = std::max(m, std::abs(a[i] - b[i]));
      }
      return m;
    }
  }
  return 0.0;
}

bool MetricWithinDistance(PointView a, PointView b, double radius,
                          Metric metric) {
  if (metric == Metric::kL2) return WithinDistance(a, b, radius);
  return MetricDistance(a, b, metric) <= radius;
}

}  // namespace rl0
