// Points in d-dimensional Euclidean space and distance primitives.
//
// The paper's data model is points in R^d with the Euclidean metric; more
// complex objects (documents, images) are assumed to have been mapped to
// feature vectors upstream. Two representations share one set of
// primitives:
//
//   * Point      — an owning, value-semantics coordinate vector. The API
//                  boundary type (stream elements, returned samples).
//   * PointView  — a non-owning {pointer, dim} view over contiguous
//                  coordinates. The hot-path type: the samplers keep their
//                  stored points in a PointStore arena (one flat double
//                  buffer, see point_store.h) and hand out views, so the
//                  distance loops below run over cache-resident memory
//                  with no per-point indirection.
//
// Point converts implicitly to PointView, so every distance primitive is
// written once, against views.

#ifndef RL0_GEOM_POINT_H_
#define RL0_GEOM_POINT_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace rl0 {

/// A point in R^d (dense coordinates, value semantics).
class Point {
 public:
  /// Empty (dimension-0) point.
  Point() = default;

  /// A point with `dim` coordinates, all zero.
  explicit Point(size_t dim) : coords_(dim, 0.0) {}

  /// A point from explicit coordinates.
  Point(std::initializer_list<double> coords) : coords_(coords) {}

  /// A point adopting the given coordinate vector.
  explicit Point(std::vector<double> coords) : coords_(std::move(coords)) {}

  /// A point copying `dim` contiguous coordinates starting at `data`.
  Point(const double* data, size_t dim) : coords_(data, data + dim) {}

  /// Number of coordinates.
  size_t dim() const { return coords_.size(); }

  /// Coordinate access (unchecked in release builds).
  double operator[](size_t i) const { return coords_[i]; }
  double& operator[](size_t i) { return coords_[i]; }

  /// The underlying coordinate vector.
  const std::vector<double>& coords() const { return coords_; }

  /// Contiguous coordinate storage.
  const double* data() const { return coords_.data(); }

  /// Exact coordinate-wise equality (used by tests and exact baselines).
  bool operator==(const Point& other) const { return coords_ == other.coords_; }
  bool operator!=(const Point& other) const { return !(*this == other); }

  /// Component-wise sum / difference / scaling (used by generators).
  Point operator+(const Point& other) const;
  Point operator-(const Point& other) const;
  Point operator*(double scale) const;

  /// Euclidean norm of the point seen as a vector.
  double Norm() const;

  /// "(x1, x2, ..., xd)" with 6 significant digits, for logs.
  std::string ToString() const;

 private:
  std::vector<double> coords_;
};

/// A non-owning view of `dim` contiguous coordinates. Trivially copyable;
/// valid only while the owning storage (a Point or a PointStore buffer) is
/// alive and unmodified. Appending to a PointStore may reallocate its
/// buffer, so views must not be held across arena growth.
class PointView {
 public:
  constexpr PointView() = default;
  constexpr PointView(const double* data, size_t dim)
      : data_(data), dim_(dim) {}

  /// Implicit: lets owning Points flow into the view-based primitives.
  PointView(const Point& p) : data_(p.data()), dim_(p.dim()) {}

  size_t dim() const { return dim_; }
  double operator[](size_t i) const { return data_[i]; }
  const double* data() const { return data_; }

  /// Deep copy into an owning Point.
  Point Materialize() const { return Point(data_, dim_); }

  /// Exact coordinate-wise equality.
  bool operator==(PointView other) const;
  bool operator!=(PointView other) const { return !(*this == other); }

  /// "(x1, x2, ..., xd)" with 6 significant digits, for logs.
  std::string ToString() const { return Materialize().ToString(); }

 private:
  const double* data_ = nullptr;
  size_t dim_ = 0;
};

/// Squared Euclidean distance between a and b. Requires equal dimensions.
double SquaredDistance(PointView a, PointView b);

/// Euclidean distance between a and b. Requires equal dimensions.
double Distance(PointView a, PointView b);

/// True iff d(a, b) ≤ radius, computed without a square root.
bool WithinDistance(PointView a, PointView b, double radius);

/// Minimum pairwise Euclidean distance over a set (O(n²); generator-side
/// preprocessing only). Returns +inf for fewer than two points.
double MinPairwiseDistance(const std::vector<Point>& points);

}  // namespace rl0

#endif  // RL0_GEOM_POINT_H_
