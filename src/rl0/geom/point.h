// Points in d-dimensional Euclidean space and distance primitives.
//
// The paper's data model is points in R^d with the Euclidean metric; more
// complex objects (documents, images) are assumed to have been mapped to
// feature vectors upstream. Point is a thin wrapper over a dense coordinate
// vector with value semantics.

#ifndef RL0_GEOM_POINT_H_
#define RL0_GEOM_POINT_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace rl0 {

/// A point in R^d (dense coordinates, value semantics).
class Point {
 public:
  /// Empty (dimension-0) point.
  Point() = default;

  /// A point with `dim` coordinates, all zero.
  explicit Point(size_t dim) : coords_(dim, 0.0) {}

  /// A point from explicit coordinates.
  Point(std::initializer_list<double> coords) : coords_(coords) {}

  /// A point adopting the given coordinate vector.
  explicit Point(std::vector<double> coords) : coords_(std::move(coords)) {}

  /// Number of coordinates.
  size_t dim() const { return coords_.size(); }

  /// Coordinate access (unchecked in release builds).
  double operator[](size_t i) const { return coords_[i]; }
  double& operator[](size_t i) { return coords_[i]; }

  /// The underlying coordinate vector.
  const std::vector<double>& coords() const { return coords_; }

  /// Exact coordinate-wise equality (used by tests and exact baselines).
  bool operator==(const Point& other) const { return coords_ == other.coords_; }

  /// Component-wise sum / difference / scaling (used by generators).
  Point operator+(const Point& other) const;
  Point operator-(const Point& other) const;
  Point operator*(double scale) const;

  /// Euclidean norm of the point seen as a vector.
  double Norm() const;

  /// "(x1, x2, ..., xd)" with 6 significant digits, for logs.
  std::string ToString() const;

 private:
  std::vector<double> coords_;
};

/// Squared Euclidean distance between a and b. Requires equal dimensions.
double SquaredDistance(const Point& a, const Point& b);

/// Euclidean distance between a and b. Requires equal dimensions.
double Distance(const Point& a, const Point& b);

/// True iff d(a, b) ≤ radius, computed without a square root.
bool WithinDistance(const Point& a, const Point& b, double radius);

/// Minimum pairwise Euclidean distance over a set (O(n²); generator-side
/// preprocessing only). Returns +inf for fewer than two points.
double MinPairwiseDistance(const std::vector<Point>& points);

}  // namespace rl0

#endif  // RL0_GEOM_POINT_H_
