#include "rl0/geom/jl_projection.h"

#include <cmath>

#include "rl0/util/check.h"
#include "rl0/util/rng.h"

namespace rl0 {

Result<JlProjection> JlProjection::Create(size_t input_dim,
                                          size_t output_dim, uint64_t seed) {
  if (input_dim < 1) {
    return Status::InvalidArgument("input_dim must be >= 1");
  }
  if (output_dim < 1) {
    return Status::InvalidArgument("output_dim must be >= 1");
  }
  Xoshiro256pp rng(SplitMix64(seed ^ 0x4A4C50524FULL));
  const double scale = 1.0 / std::sqrt(static_cast<double>(output_dim));
  std::vector<double> matrix(input_dim * output_dim);
  for (double& entry : matrix) entry = scale * rng.NextGaussian();
  return JlProjection(input_dim, output_dim, std::move(matrix));
}

size_t JlProjection::DimensionFor(uint64_t num_points, double epsilon) {
  RL0_CHECK(epsilon > 0.0 && epsilon < 1.0);
  const double m = static_cast<double>(num_points < 2 ? 2 : num_points);
  return static_cast<size_t>(
      std::ceil(8.0 * std::log(m) / (epsilon * epsilon)));
}

Point JlProjection::Apply(const Point& p) const {
  RL0_DCHECK(p.dim() == input_dim_);
  Point out(output_dim_);
  for (size_t row = 0; row < output_dim_; ++row) {
    double acc = 0.0;
    const double* matrix_row = matrix_.data() + row * input_dim_;
    for (size_t col = 0; col < input_dim_; ++col) {
      acc += matrix_row[col] * p[col];
    }
    out[row] = acc;
  }
  return out;
}

std::vector<Point> JlProjection::ApplyAll(
    const std::vector<Point>& points) const {
  std::vector<Point> out;
  out.reserve(points.size());
  for (const Point& p : points) out.push_back(Apply(p));
  return out;
}

}  // namespace rl0
