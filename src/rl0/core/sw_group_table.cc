#include "rl0/core/sw_group_table.h"

#include <utility>

#include "rl0/util/check.h"

namespace rl0 {

namespace {
// Mirrors RepTable's threshold (rep_table.cc): below this many slot
// columns compaction churn outweighs the win.
constexpr size_t kCompactMinSlots = 64;
}  // namespace

uint32_t SwGroupTable::AllocateSlot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  RL0_CHECK(flags_.size() < kNpos);
  const uint32_t slot = static_cast<uint32_t>(flags_.size());
  id_.push_back(0);
  rep_.push_back(PointRef{});
  rep_arena_.push_back(0);
  rep_index_.push_back(0);
  rep_cell_.push_back(0);
  latest_.push_back(PointRef{});
  latest_stamp_.push_back(0);
  latest_index_.push_back(0);
  reservoir_.emplace_back();
  flags_.push_back(0);
  next_in_cell_.push_back(kNpos);
  stamp_prev_.push_back(kNpos);
  stamp_next_.push_back(kNpos);
  dirty_epoch_.push_back(0);
  return slot;
}

void SwGroupTable::LinkCell(uint32_t slot) {
  next_in_cell_[slot] = cell_index_.Upsert(rep_cell_[slot], slot);
}

void SwGroupTable::UnlinkCell(uint32_t slot) {
  const uint64_t key = rep_cell_[slot];
  const uint32_t head = cell_index_.Find(key);
  RL0_DCHECK(head != kNpos);
  if (head == slot) {
    const uint32_t next = next_in_cell_[slot];
    if (next == kNpos) {
      cell_index_.Erase(key);
    } else {
      cell_index_.SetHead(key, next);
    }
  } else {
    uint32_t prev = head;
    while (next_in_cell_[prev] != slot) {
      prev = next_in_cell_[prev];
      RL0_DCHECK(prev != kNpos);
    }
    next_in_cell_[prev] = next_in_cell_[slot];
  }
  next_in_cell_[slot] = kNpos;
}

void SwGroupTable::AppendStampTail(uint32_t slot) {
  RL0_DCHECK(stamp_tail_ == kNpos ||
             latest_stamp_[stamp_tail_] <= latest_stamp_[slot]);
  stamp_prev_[slot] = stamp_tail_;
  stamp_next_[slot] = kNpos;
  if (stamp_tail_ == kNpos) {
    stamp_head_ = slot;
  } else {
    stamp_next_[stamp_tail_] = slot;
  }
  stamp_tail_ = slot;
}

void SwGroupTable::InsertStampSorted(uint32_t slot) {
  // Walk back from the tail to the first entry not newer than `slot`;
  // ties insert after existing equals (expiry drops whole stamp classes,
  // so intra-tie order is immaterial).
  uint32_t after = stamp_tail_;
  while (after != kNpos && latest_stamp_[after] > latest_stamp_[slot]) {
    after = stamp_prev_[after];
  }
  if (after == stamp_tail_) {
    AppendStampTail(slot);
    return;
  }
  const uint32_t before =
      after == kNpos ? stamp_head_ : stamp_next_[after];
  stamp_prev_[slot] = after;
  stamp_next_[slot] = before;
  if (after == kNpos) {
    stamp_head_ = slot;
  } else {
    stamp_next_[after] = slot;
  }
  stamp_prev_[before] = slot;  // `before` exists: slot is not the tail
}

void SwGroupTable::UnlinkStamp(uint32_t slot) {
  const uint32_t prev = stamp_prev_[slot];
  const uint32_t next = stamp_next_[slot];
  if (prev == kNpos) {
    stamp_head_ = next;
  } else {
    stamp_next_[prev] = next;
  }
  if (next == kNpos) {
    stamp_tail_ = prev;
  } else {
    stamp_prev_[next] = prev;
  }
  stamp_prev_[slot] = kNpos;
  stamp_next_[slot] = kNpos;
}

uint32_t SwGroupTable::Add(uint64_t id, PointView point,
                           uint64_t stream_index, uint64_t cell_key,
                           bool accepted, int64_t stamp) {
  RL0_DCHECK(store_ != nullptr);
  const uint32_t slot = AllocateSlot();
  id_[slot] = id;
  rep_[slot] = store_->Add(point);
  rep_arena_[slot] = store_->SlotIndexOf(rep_[slot]);
  rep_index_[slot] = stream_index;
  rep_cell_[slot] = cell_key;
  latest_[slot] = store_->Add(point);
  latest_stamp_[slot] = stamp;
  latest_index_[slot] = stream_index;
  flags_[slot] = kLiveFlag | (accepted ? kAcceptedFlag : 0);
  dirty_epoch_[slot] = ckpt_seq_;
  LinkCell(slot);
  AppendStampTail(slot);
  ++live_;
  ++generation_;
  return slot;
}

void SwGroupTable::Touch(uint32_t slot, PointView latest, int64_t stamp,
                         uint64_t stream_index) {
  RL0_DCHECK(IsLive(slot));
  store_->Write(latest_[slot], latest);
  UnlinkStamp(slot);
  latest_stamp_[slot] = stamp;
  latest_index_[slot] = stream_index;
  dirty_epoch_[slot] = ckpt_seq_;
  AppendStampTail(slot);
}

void SwGroupTable::Remove(uint32_t slot) {
  RL0_DCHECK(IsLive(slot));
  UnlinkCell(slot);
  UnlinkStamp(slot);
  store_->Release(rep_[slot]);
  store_->Release(latest_[slot]);
  reservoir_[slot].ReleaseAll();
  flags_[slot] = 0;
  free_slots_.push_back(slot);
  --live_;
  ++generation_;
}

SwGroupTable::MovedGroup SwGroupTable::Extract(uint32_t slot) {
  RL0_DCHECK(IsLive(slot));
  UnlinkCell(slot);
  UnlinkStamp(slot);
  MovedGroup g;
  g.id = id_[slot];
  g.rep = rep_[slot];
  g.rep_index = rep_index_[slot];
  g.rep_cell = rep_cell_[slot];
  g.accepted = accepted(slot);
  g.latest = latest_[slot];
  g.latest_stamp = latest_stamp_[slot];
  g.latest_index = latest_index_[slot];
  g.reservoir = std::move(reservoir_[slot]);
  flags_[slot] = 0;
  free_slots_.push_back(slot);
  --live_;
  ++generation_;
  return g;
}

uint32_t SwGroupTable::AdoptMoved(MovedGroup&& g) {
  RL0_DCHECK(store_ != nullptr);
  const uint32_t slot = AllocateSlot();
  id_[slot] = g.id;
  rep_[slot] = g.rep;
  rep_arena_[slot] = store_->SlotIndexOf(g.rep);
  rep_index_[slot] = g.rep_index;
  rep_cell_[slot] = g.rep_cell;
  latest_[slot] = g.latest;
  latest_stamp_[slot] = g.latest_stamp;
  latest_index_[slot] = g.latest_index;
  reservoir_[slot] = std::move(g.reservoir);
  flags_[slot] = kLiveFlag | (g.accepted ? kAcceptedFlag : 0);
  dirty_epoch_[slot] = ckpt_seq_;
  LinkCell(slot);
  InsertStampSorted(slot);
  ++live_;
  ++generation_;
  return slot;
}

bool SwGroupTable::MaybeCompact() {
  if (flags_.size() < kCompactMinSlots) return false;
  if (live_ * 2 > flags_.size()) return false;
  Compact();
  return true;
}

void SwGroupTable::Compact() {
  const size_t slots = flags_.size();
  if (live_ == slots) return;

  // Monotone old→new map (see RepTable::Compact): relative slot order is
  // preserved, so slot-order iterations (Sample's target scan,
  // SnapshotGroups, the split planner) are invariant.
  std::vector<uint32_t> map(slots, kNpos);
  uint32_t packed_count = 0;
  for (uint32_t old = 0; old < slots; ++old) {
    if (IsLive(old)) map[old] = packed_count++;
  }
  const auto remap = [&map](uint32_t slot) {
    return slot == kNpos ? kNpos : map[slot];
  };

  std::vector<std::pair<uint64_t, uint32_t>> heads;
  heads.reserve(cell_index_.live());
  cell_index_.ForEach([&](uint64_t key, uint32_t head) {
    heads.emplace_back(key, map[head]);
  });

  // The arena is shared with the sibling levels of the hierarchy (and the
  // reservoirs' candidate refs), so only the columns move; every PointRef
  // stays valid. map[old] ≤ old, so ascending in-place moves are safe.
  for (uint32_t old = 0; old < slots; ++old) {
    if (!IsLive(old)) continue;
    const uint32_t slot = map[old];
    id_[slot] = id_[old];
    rep_[slot] = rep_[old];
    rep_arena_[slot] = rep_arena_[old];
    rep_index_[slot] = rep_index_[old];
    rep_cell_[slot] = rep_cell_[old];
    latest_[slot] = latest_[old];
    latest_stamp_[slot] = latest_stamp_[old];
    latest_index_[slot] = latest_index_[old];
    flags_[slot] = flags_[old];
    next_in_cell_[slot] = remap(next_in_cell_[old]);
    stamp_prev_[slot] = remap(stamp_prev_[old]);
    stamp_next_[slot] = remap(stamp_next_[old]);
    dirty_epoch_[slot] = dirty_epoch_[old];
    if (slot != old) reservoir_[slot] = std::move(reservoir_[old]);
  }
  stamp_head_ = remap(stamp_head_);
  stamp_tail_ = remap(stamp_tail_);

  id_.resize(packed_count);
  rep_.resize(packed_count);
  rep_arena_.resize(packed_count);
  rep_index_.resize(packed_count);
  rep_cell_.resize(packed_count);
  latest_.resize(packed_count);
  latest_stamp_.resize(packed_count);
  latest_index_.resize(packed_count);
  reservoir_.resize(packed_count);
  flags_.resize(packed_count);
  next_in_cell_.resize(packed_count);
  stamp_prev_.resize(packed_count);
  stamp_next_.resize(packed_count);
  dirty_epoch_.resize(packed_count);
  free_slots_.clear();

  cell_index_ = CellIndex();
  for (const auto& entry : heads) {
    cell_index_.SetHead(entry.first, entry.second);
  }
  ++generation_;
}

void SwGroupTable::Clear() {
  // An empty Clear (the common per-arrival Reset of already-empty lower
  // levels) observes nothing and so must not invalidate filter epochs.
  if (live_ > 0) ++generation_;
  for (uint32_t slot = 0; slot < flags_.size(); ++slot) {
    if (!IsLive(slot)) continue;
    store_->Release(rep_[slot]);
    store_->Release(latest_[slot]);
    reservoir_[slot].ReleaseAll();
    flags_[slot] = 0;
    next_in_cell_[slot] = kNpos;
    stamp_prev_[slot] = kNpos;
    stamp_next_[slot] = kNpos;
  }
  cell_index_ = CellIndex();
  stamp_head_ = kNpos;
  stamp_tail_ = kNpos;
  free_slots_.clear();
  live_ = 0;
  // Dead slots stay allocated (capacity tracks the peak population, the
  // accounting model of util/space.h); reset the free list to reuse them
  // in slot order.
  for (uint32_t slot = 0; slot < flags_.size(); ++slot) {
    free_slots_.push_back(static_cast<uint32_t>(flags_.size()) - 1 - slot);
  }
}

}  // namespace rl0
