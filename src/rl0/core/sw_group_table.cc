#include "rl0/core/sw_group_table.h"

#include <utility>

#include "rl0/util/check.h"

namespace rl0 {

uint32_t SwGroupTable::AllocateSlot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  RL0_CHECK(flags_.size() < kNpos);
  const uint32_t slot = static_cast<uint32_t>(flags_.size());
  id_.push_back(0);
  rep_.push_back(PointRef{});
  rep_index_.push_back(0);
  rep_cell_.push_back(0);
  latest_.push_back(PointRef{});
  latest_stamp_.push_back(0);
  latest_index_.push_back(0);
  reservoir_.emplace_back();
  flags_.push_back(0);
  next_in_cell_.push_back(kNpos);
  stamp_prev_.push_back(kNpos);
  stamp_next_.push_back(kNpos);
  return slot;
}

void SwGroupTable::LinkCell(uint32_t slot) {
  next_in_cell_[slot] = cell_index_.Upsert(rep_cell_[slot], slot);
}

void SwGroupTable::UnlinkCell(uint32_t slot) {
  const uint64_t key = rep_cell_[slot];
  const uint32_t head = cell_index_.Find(key);
  RL0_DCHECK(head != kNpos);
  if (head == slot) {
    const uint32_t next = next_in_cell_[slot];
    if (next == kNpos) {
      cell_index_.Erase(key);
    } else {
      cell_index_.SetHead(key, next);
    }
  } else {
    uint32_t prev = head;
    while (next_in_cell_[prev] != slot) {
      prev = next_in_cell_[prev];
      RL0_DCHECK(prev != kNpos);
    }
    next_in_cell_[prev] = next_in_cell_[slot];
  }
  next_in_cell_[slot] = kNpos;
}

void SwGroupTable::AppendStampTail(uint32_t slot) {
  RL0_DCHECK(stamp_tail_ == kNpos ||
             latest_stamp_[stamp_tail_] <= latest_stamp_[slot]);
  stamp_prev_[slot] = stamp_tail_;
  stamp_next_[slot] = kNpos;
  if (stamp_tail_ == kNpos) {
    stamp_head_ = slot;
  } else {
    stamp_next_[stamp_tail_] = slot;
  }
  stamp_tail_ = slot;
}

void SwGroupTable::InsertStampSorted(uint32_t slot) {
  // Walk back from the tail to the first entry not newer than `slot`;
  // ties insert after existing equals (expiry drops whole stamp classes,
  // so intra-tie order is immaterial).
  uint32_t after = stamp_tail_;
  while (after != kNpos && latest_stamp_[after] > latest_stamp_[slot]) {
    after = stamp_prev_[after];
  }
  if (after == stamp_tail_) {
    AppendStampTail(slot);
    return;
  }
  const uint32_t before =
      after == kNpos ? stamp_head_ : stamp_next_[after];
  stamp_prev_[slot] = after;
  stamp_next_[slot] = before;
  if (after == kNpos) {
    stamp_head_ = slot;
  } else {
    stamp_next_[after] = slot;
  }
  stamp_prev_[before] = slot;  // `before` exists: slot is not the tail
}

void SwGroupTable::UnlinkStamp(uint32_t slot) {
  const uint32_t prev = stamp_prev_[slot];
  const uint32_t next = stamp_next_[slot];
  if (prev == kNpos) {
    stamp_head_ = next;
  } else {
    stamp_next_[prev] = next;
  }
  if (next == kNpos) {
    stamp_tail_ = prev;
  } else {
    stamp_prev_[next] = prev;
  }
  stamp_prev_[slot] = kNpos;
  stamp_next_[slot] = kNpos;
}

uint32_t SwGroupTable::Add(uint64_t id, PointView point,
                           uint64_t stream_index, uint64_t cell_key,
                           bool accepted, int64_t stamp) {
  RL0_DCHECK(store_ != nullptr);
  const uint32_t slot = AllocateSlot();
  id_[slot] = id;
  rep_[slot] = store_->Add(point);
  rep_index_[slot] = stream_index;
  rep_cell_[slot] = cell_key;
  latest_[slot] = store_->Add(point);
  latest_stamp_[slot] = stamp;
  latest_index_[slot] = stream_index;
  flags_[slot] = kLiveFlag | (accepted ? kAcceptedFlag : 0);
  LinkCell(slot);
  AppendStampTail(slot);
  ++live_;
  return slot;
}

void SwGroupTable::Touch(uint32_t slot, PointView latest, int64_t stamp,
                         uint64_t stream_index) {
  RL0_DCHECK(IsLive(slot));
  store_->Write(latest_[slot], latest);
  UnlinkStamp(slot);
  latest_stamp_[slot] = stamp;
  latest_index_[slot] = stream_index;
  AppendStampTail(slot);
}

void SwGroupTable::Remove(uint32_t slot) {
  RL0_DCHECK(IsLive(slot));
  UnlinkCell(slot);
  UnlinkStamp(slot);
  store_->Release(rep_[slot]);
  store_->Release(latest_[slot]);
  reservoir_[slot].ReleaseAll();
  flags_[slot] = 0;
  free_slots_.push_back(slot);
  --live_;
}

SwGroupTable::MovedGroup SwGroupTable::Extract(uint32_t slot) {
  RL0_DCHECK(IsLive(slot));
  UnlinkCell(slot);
  UnlinkStamp(slot);
  MovedGroup g;
  g.id = id_[slot];
  g.rep = rep_[slot];
  g.rep_index = rep_index_[slot];
  g.rep_cell = rep_cell_[slot];
  g.accepted = accepted(slot);
  g.latest = latest_[slot];
  g.latest_stamp = latest_stamp_[slot];
  g.latest_index = latest_index_[slot];
  g.reservoir = std::move(reservoir_[slot]);
  flags_[slot] = 0;
  free_slots_.push_back(slot);
  --live_;
  return g;
}

uint32_t SwGroupTable::AdoptMoved(MovedGroup&& g) {
  RL0_DCHECK(store_ != nullptr);
  const uint32_t slot = AllocateSlot();
  id_[slot] = g.id;
  rep_[slot] = g.rep;
  rep_index_[slot] = g.rep_index;
  rep_cell_[slot] = g.rep_cell;
  latest_[slot] = g.latest;
  latest_stamp_[slot] = g.latest_stamp;
  latest_index_[slot] = g.latest_index;
  reservoir_[slot] = std::move(g.reservoir);
  flags_[slot] = kLiveFlag | (g.accepted ? kAcceptedFlag : 0);
  LinkCell(slot);
  InsertStampSorted(slot);
  ++live_;
  return slot;
}

void SwGroupTable::Clear() {
  for (uint32_t slot = 0; slot < flags_.size(); ++slot) {
    if (!IsLive(slot)) continue;
    store_->Release(rep_[slot]);
    store_->Release(latest_[slot]);
    reservoir_[slot].ReleaseAll();
    flags_[slot] = 0;
    next_in_cell_[slot] = kNpos;
    stamp_prev_[slot] = kNpos;
    stamp_next_[slot] = kNpos;
  }
  cell_index_ = CellIndex();
  stamp_head_ = kNpos;
  stamp_tail_ = kNpos;
  free_slots_.clear();
  live_ = 0;
  // Dead slots stay allocated (capacity tracks the peak population, the
  // accounting model of util/space.h); reset the free list to reuse them
  // in slot order.
  for (uint32_t slot = 0; slot < flags_.size(); ++slot) {
    free_slots_.push_back(static_cast<uint32_t>(flags_.size()) - 1 - slot);
  }
}

}  // namespace rl0
