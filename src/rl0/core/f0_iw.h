// Robust F0 estimation in the infinite window (paper Section 5).
//
// The estimator plugs the robust ℓ0-sampler into the Bar-Yossef et al.
// distinct-elements framework: run Algorithm 1 with the accept cap set to
// κB/ε² instead of κ0·log m, and return |Sacc|·R at query time — Sacc
// holds each group independently with probability 1/R, so |Sacc|·R
// concentrates to the number of groups within (1±ε) (constant success
// probability). Running several independent copies and taking the median
// boosts the success probability in the standard way.

#ifndef RL0_CORE_F0_IW_H_
#define RL0_CORE_F0_IW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "rl0/core/ingest_pool.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/core/options.h"
#include "rl0/util/span.h"
#include "rl0/util/status.h"
#include "rl0/util/sync.h"
#include "rl0/util/thread_annotations.h"

namespace rl0 {

/// Options for the infinite-window F0 estimator.
struct F0Options {
  /// Base sampler configuration (alpha, dim, seed, grid/hash settings).
  SamplerOptions sampler;
  /// Target relative accuracy ε.
  double epsilon = 0.1;
  /// The constant κB in the κB/ε² cap.
  double kappa_b = 12.0;
  /// Number of independent copies; the median of the copy estimates is
  /// returned. Odd values recommended.
  size_t copies = 9;

  /// Checks the options for consistency.
  Status Validate() const;
  /// The per-copy accept cap κB/ε².
  size_t PerCopyCap() const;
};

/// (1+ε)-approximate robust F0 for the infinite window.
class F0EstimatorIW {
 public:
  /// Validates options and constructs the estimator.
  static Result<F0EstimatorIW> Create(const F0Options& options);

  /// Processes the next stream point.
  void Insert(const Point& p);

  /// Processes a contiguous chunk of stream points: each copy consumes
  /// the whole chunk in one pass (better cache behaviour than
  /// interleaving the copies point by point).
  void InsertBatch(Span<const Point> points);

  /// Streams a chunk through the persistent ingestion pipeline: every
  /// copy is a pipeline lane with its own worker thread, so the copies
  /// consume the chunk in parallel instead of sequentially. Copies the
  /// chunk once (shared across lanes); safe from any number of threads.
  /// Workers start lazily on the first Feed. Do not mix with the serial
  /// Insert/InsertBatch calls without an intervening Drain().
  void Feed(Span<const Point> points);

  /// As Feed but adopts the vector — no copy.
  void FeedOwned(std::vector<Point> points);

  /// Blocks until everything fed before this call is consumed by every
  /// copy. Required before Estimate()/CopyEstimates() after feeding.
  void Drain();

  /// The median-of-copies estimate of the number of groups F0(S, α).
  /// Returns 0 before any insertion. Requires a drained pipeline.
  double Estimate() const;

  /// Per-copy estimates |Sacc|·R (introspection).
  std::vector<double> CopyEstimates() const;

  /// Number of copies.
  size_t copies() const { return samplers_.size(); }

  /// Total space in words across copies.
  size_t SpaceWords() const;

  /// Summed duplicate-suppression counters over the per-copy samplers
  /// (core/dup_filter.h). Requires a drained pipeline.
  DupFilterStats FilterStats() const {
    DupFilterStats stats;
    for (const RobustL0SamplerIW& s : samplers_) stats += s.filter_stats();
    return stats;
  }

 private:
  explicit F0EstimatorIW(std::vector<RobustL0SamplerIW> samplers);

  /// The lazily created pipeline grouped with the mutex that guards its
  /// creation (sibling RL0_GUARDED_BY); heap-allocated through the
  /// unique_ptr below so the estimator stays movable.
  struct PipelineFront {
    Mutex mu;
    std::unique_ptr<IngestPool> pipeline RL0_GUARDED_BY(mu);
  };

  /// Starts the per-copy pipeline workers on the first Feed (estimators
  /// that only ever InsertBatch never spawn threads). Takes pipe_->mu,
  /// so concurrent first Feeds are safe. Sink addresses stay valid
  /// across moves of the estimator: samplers_ never resizes, and its
  /// heap buffer moves with the object.
  IngestPool* EnsurePipeline();

  std::vector<RobustL0SamplerIW> samplers_;
  std::unique_ptr<PipelineFront> pipe_;
};

}  // namespace rl0

#endif  // RL0_CORE_F0_IW_H_
