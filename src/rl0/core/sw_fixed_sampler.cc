#include "rl0/core/sw_fixed_sampler.h"

#include <algorithm>
#include <limits>

#include "rl0/util/check.h"

namespace rl0 {

namespace {
constexpr uint64_t kNoGroup = std::numeric_limits<uint64_t>::max();
}  // namespace

SwFixedRateSampler::SwFixedRateSampler(const SamplerContext* ctx,
                                       uint32_t level, int64_t window,
                                       uint64_t* id_counter,
                                       PointStore* store)
    : ctx_(ctx), store_(store), level_(level), window_(window),
      id_counter_(id_counter) {
  RL0_CHECK(ctx != nullptr);
  RL0_CHECK(window > 0);
  RL0_CHECK(level <= CellHasher::kMaxLevel);
  if (id_counter_ == nullptr) id_counter_ = &owned_id_counter_;
  if (store_ == nullptr) {
    owned_store_ = std::make_unique<PointStore>(ctx_->options.dim);
    store_ = owned_store_.get();
  }
}

Result<std::unique_ptr<SwFixedRateSampler>>
SwFixedRateSampler::CreateStandalone(const SamplerOptions& options,
                                     uint32_t level, int64_t window) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  if (level > CellHasher::kMaxLevel) {
    return Status::InvalidArgument("level exceeds CellHasher::kMaxLevel");
  }
  auto ctx = std::make_unique<SamplerContext>(options);
  auto sampler = std::make_unique<SwFixedRateSampler>(ctx.get(), level,
                                                      window, nullptr);
  sampler->owned_ctx_ = std::move(ctx);
  return sampler;
}

size_t SwFixedRateSampler::GroupWords() const {
  // Arena layout: two flat points + StoredGroup header + the three index
  // entries (see GroupArenaWords in util/space.h).
  return GroupArenaWords(ctx_->options.dim);
}

void SwFixedRateSampler::IndexGroup(const StoredGroup& g) {
  cell_to_group_.emplace(g.rep_cell, g.id);
  by_stamp_.emplace(std::make_pair(g.latest_stamp, g.id), g.id);
}

void SwFixedRateSampler::UnindexGroup(const StoredGroup& g) {
  auto [it, end] = cell_to_group_.equal_range(g.rep_cell);
  for (; it != end; ++it) {
    if (it->second == g.id) {
      cell_to_group_.erase(it);
      break;
    }
  }
  by_stamp_.erase(std::make_pair(g.latest_stamp, g.id));
}

void SwFixedRateSampler::ReleaseGroup(StoredGroup* g) {
  store_->Release(g->rep);
  store_->Release(g->latest);
  g->reservoir.ReleaseAll();
}

GroupRecord SwFixedRateSampler::Materialize(const StoredGroup& g) const {
  GroupRecord out;
  out.id = g.id;
  out.rep = store_->View(g.rep).Materialize();
  out.rep_index = g.rep_index;
  out.rep_cell = g.rep_cell;
  out.accepted = g.accepted;
  out.latest = store_->View(g.latest).Materialize();
  out.latest_stamp = g.latest_stamp;
  out.latest_index = g.latest_index;
  if (ctx_->options.random_representative) {
    out.reservoir.reserve(g.reservoir.size());
    for (const WindowedReservoir::Candidate& c : g.reservoir.candidates()) {
      out.reservoir.push_back(WindowedReservoir::RestoredCandidate{
          c.priority, c.stamp, g.reservoir.CandidatePoint(c),
          c.stream_index});
    }
  }
  return out;
}

void SwFixedRateSampler::Adopt(GroupRecord&& in) {
  StoredGroup g;
  g.id = in.id;
  g.rep = store_->Add(in.rep);
  g.rep_index = in.rep_index;
  g.rep_cell = in.rep_cell;
  g.accepted = in.accepted;
  g.latest = store_->Add(in.latest);
  g.latest_stamp = in.latest_stamp;
  g.latest_index = in.latest_index;
  if (ctx_->options.random_representative) {
    // Fresh coin stream, salted per adoption so a group promoted several
    // times never replays a prior priority sequence (statistically
    // equivalent; see core/snapshot.h).
    const uint64_t reseed =
        ctx_->options.seed ^ (g.id * 0x9E3779B97F4A7C15ULL) ^
        SplitMix64(++reseed_epoch_);
    g.reservoir.RestoreState(window_, reseed, store_, in.reservoir);
  }
  if (g.accepted) ++accept_size_;
  IndexGroup(g);
  const uint64_t id = g.id;
  groups_.emplace(id, std::move(g));
}

uint64_t SwFixedRateSampler::FindCandidate(
    PointView p, const std::vector<uint64_t>& adj_keys) const {
  // A representative u with d(u, p) ≤ α has cell(u) ∈ adj(p).
  for (uint64_t key : adj_keys) {
    auto [it, end] = cell_to_group_.equal_range(key);
    for (; it != end; ++it) {
      const StoredGroup& g = groups_.at(it->second);
      if (MetricWithinDistance(store_->View(g.rep), p, ctx_->options.alpha,
                               ctx_->options.metric)) {
        return it->second;
      }
    }
  }
  return kNoGroup;
}

InsertOutcome SwFixedRateSampler::InsertPrepared(const PreparedPoint& p) {
  Expire(p.stamp);

  const uint64_t candidate = FindCandidate(*p.point, *p.adj_keys);
  if (candidate != kNoGroup) {
    // Same group as a tracked representative: refresh its latest point
    // (Algorithm 2 line 6: A ← (u,p) ∪ A \ (u,·)).
    StoredGroup& g = groups_.at(candidate);
    by_stamp_.erase(std::make_pair(g.latest_stamp, g.id));
    store_->Write(g.latest, *p.point);
    g.latest_stamp = p.stamp;
    g.latest_index = p.stream_index;
    by_stamp_.emplace(std::make_pair(g.latest_stamp, g.id), g.id);
    if (ctx_->options.random_representative) {
      g.reservoir.Insert(*p.point, p.stamp, p.stream_index);
    }
    return g.accepted ? InsertOutcome::kAccepted : InsertOutcome::kRejected;
  }

  // First point of a group in this window: judge it by its own cell first
  // (accept), then by the neighborhood (reject), else ignore.
  const bool accepted = ctx_->hasher.SampledAtLevel(p.cell_key, level_);
  bool rejected = false;
  if (!accepted) {
    for (uint64_t key : *p.adj_keys) {
      if (ctx_->hasher.SampledAtLevel(key, level_)) {
        rejected = true;
        break;
      }
    }
    if (!rejected) return InsertOutcome::kIgnored;
  }

  StoredGroup g;
  g.id = (*id_counter_)++;
  g.rep = store_->Add(*p.point);
  g.rep_index = p.stream_index;
  g.rep_cell = p.cell_key;
  g.accepted = accepted;
  g.latest = store_->Add(*p.point);
  g.latest_stamp = p.stamp;
  g.latest_index = p.stream_index;
  if (ctx_->options.random_representative) {
    g.reservoir =
        WindowedReservoir(window_, ctx_->options.seed ^ g.id, store_);
    g.reservoir.Insert(*p.point, p.stamp, p.stream_index);
  }
  if (accepted) ++accept_size_;
  IndexGroup(g);
  const uint64_t id = g.id;
  groups_.emplace(id, std::move(g));
  return accepted ? InsertOutcome::kAccepted : InsertOutcome::kRejected;
}

bool SwFixedRateSampler::Insert(const Point& p, int64_t stamp) {
  RL0_DCHECK(p.dim() == ctx_->options.dim);
  ctx_->grid.AdjacentCells(p, ctx_->options.alpha, &adj_scratch_);
  PreparedPoint prep;
  prep.point = &p;
  prep.stamp = stamp;
  prep.stream_index = static_cast<uint64_t>(stamp);
  prep.cell_key = ctx_->grid.CellKeyOf(p);
  prep.adj_keys = &adj_scratch_;
  return Insert(prep);
}

void SwFixedRateSampler::Expire(int64_t now) {
  const int64_t horizon = now - window_;
  while (!by_stamp_.empty()) {
    const auto it = by_stamp_.begin();
    if (it->first.first > horizon) break;
    const uint64_t id = it->second;
    auto git = groups_.find(id);
    RL0_DCHECK(git != groups_.end());
    if (git->second.accepted) --accept_size_;
    UnindexGroup(git->second);
    ReleaseGroup(&git->second);
    groups_.erase(git);
  }
}

void SwFixedRateSampler::Reset() {
  for (auto& [id, g] : groups_) ReleaseGroup(&g);
  groups_.clear();
  cell_to_group_.clear();
  by_stamp_.clear();
  accept_size_ = 0;
}

std::optional<SampleItem> SwFixedRateSampler::Sample(int64_t now,
                                                     Xoshiro256pp* rng) {
  Expire(now);
  if (accept_size_ == 0) return std::nullopt;
  uint64_t target = rng->NextBounded(accept_size_);
  for (auto& [id, g] : groups_) {
    if (!g.accepted) continue;
    if (target == 0) {
      if (ctx_->options.random_representative) {
        // Reservoir holds ≥ 1 unexpired item: the group's latest point is
        // alive (otherwise Expire would have dropped the group).
        const auto item = g.reservoir.Sample(now);
        RL0_DCHECK(item.has_value());
        if (item.has_value()) return item;
      }
      return SampleItem{store_->View(g.latest).Materialize(),
                        g.latest_index};
    }
    --target;
  }
  RL0_CHECK(false);  // accept_size_ out of sync.
  return std::nullopt;
}

void SwFixedRateSampler::AcceptedGroupSamples(int64_t now,
                                              std::vector<SampleItem>* out) {
  for (auto& [id, g] : groups_) {
    if (!g.accepted) continue;
    if (ctx_->options.random_representative) {
      const auto item = g.reservoir.Sample(now);
      if (item.has_value()) {
        out->push_back(*item);
        continue;
      }
    }
    out->push_back(
        SampleItem{store_->View(g.latest).Materialize(), g.latest_index});
  }
}

void SwFixedRateSampler::AcceptedLatestPoints(
    std::vector<SampleItem>* out) const {
  for (const auto& [id, g] : groups_) {
    if (g.accepted) {
      out->push_back(
          SampleItem{store_->View(g.latest).Materialize(), g.latest_index});
    }
  }
}

void SwFixedRateSampler::SnapshotGroups(std::vector<GroupRecord>* out) const {
  for (const auto& [id, g] : groups_) out->push_back(Materialize(g));
}

bool SwFixedRateSampler::SplitPromote(std::vector<GroupRecord>* promoted) {
  promoted->clear();
  // t = the arrival index of the last accepted representative whose cell
  // is sampled at level ℓ+1 (Algorithm 4 line 2).
  uint64_t t = 0;
  bool found = false;
  for (const auto& [id, g] : groups_) {
    if (!g.accepted) continue;
    if (!ctx_->hasher.SampledAtLevel(g.rep_cell, level_ + 1)) continue;
    if (!found || g.rep_index > t) {
      t = g.rep_index;
      found = true;
    }
  }
  if (!found) return false;

  // Partition groups: representatives arriving ≤ t are promoted (re-judged
  // at level ℓ+1 per Definition 2.2), the rest stay at level ℓ.
  std::vector<uint64_t> to_remove;
  std::vector<uint64_t> adj;
  for (auto& [id, g] : groups_) {
    if (g.rep_index > t) continue;
    to_remove.push_back(id);
    if (ctx_->hasher.SampledAtLevel(g.rep_cell, level_ + 1)) {
      GroupRecord moved = Materialize(g);
      moved.accepted = true;  // nestedness: it was accepted at ℓ already
      promoted->push_back(std::move(moved));
      continue;
    }
    // Own cell unsampled at ℓ+1: rejected if a nearby cell is sampled,
    // dropped otherwise.
    ctx_->grid.AdjacentCells(store_->View(g.rep), ctx_->options.alpha, &adj);
    bool near_sampled = false;
    for (uint64_t key : adj) {
      if (ctx_->hasher.SampledAtLevel(key, level_ + 1)) {
        near_sampled = true;
        break;
      }
    }
    if (near_sampled) {
      GroupRecord moved = Materialize(g);
      moved.accepted = false;
      promoted->push_back(std::move(moved));
    }
    // else: the group is dropped entirely at the higher level.
  }
  for (uint64_t id : to_remove) {
    auto it = groups_.find(id);
    if (it->second.accepted) --accept_size_;
    UnindexGroup(it->second);
    ReleaseGroup(&it->second);
    groups_.erase(it);
  }
  return true;
}

void SwFixedRateSampler::MergeFrom(std::vector<GroupRecord>&& incoming) {
  for (GroupRecord& g : incoming) Adopt(std::move(g));
}

size_t SwFixedRateSampler::SpaceWords() const {
  size_t words = groups_.size() * GroupWords() + 4 /* scalars */;
  if (ctx_->options.random_representative) {
    for (const auto& [id, g] : groups_) {
      words += g.reservoir.SpaceWords(ctx_->options.dim);
    }
  }
  return words;
}

}  // namespace rl0
