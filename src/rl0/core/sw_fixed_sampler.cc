#include "rl0/core/sw_fixed_sampler.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "rl0/util/check.h"

namespace rl0 {

SwFixedRateSampler::SwFixedRateSampler(const SamplerContext* ctx,
                                       uint32_t level, int64_t window,
                                       uint64_t* id_counter,
                                       PointStore* store)
    : ctx_(ctx), store_(store), level_(level), window_(window),
      id_counter_(id_counter) {
  RL0_CHECK(ctx != nullptr);
  RL0_CHECK(window > 0);
  RL0_CHECK(level <= CellHasher::kMaxLevel);
  if (id_counter_ == nullptr) id_counter_ = &owned_id_counter_;
  if (store_ == nullptr) {
    owned_store_ = std::make_unique<PointStore>(ctx_->options.dim);
    store_ = owned_store_.get();
  }
  table_.Bind(store_);
}

Result<std::unique_ptr<SwFixedRateSampler>>
SwFixedRateSampler::CreateStandalone(const SamplerOptions& options,
                                     uint32_t level, int64_t window) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  if (level > CellHasher::kMaxLevel) {
    return Status::InvalidArgument("level exceeds CellHasher::kMaxLevel");
  }
  auto ctx = std::make_unique<SamplerContext>(options);
  auto sampler = std::make_unique<SwFixedRateSampler>(ctx.get(), level,
                                                      window, nullptr);
  sampler->owned_ctx_ = std::move(ctx);
  return sampler;
}

size_t SwFixedRateSampler::GroupWords() const {
  // Arena layout: two flat points + group columns + the index entries
  // (see GroupArenaWords in util/space.h).
  return GroupArenaWords(ctx_->options.dim);
}

GroupRecord SwFixedRateSampler::Materialize(uint32_t slot) const {
  GroupRecord out;
  out.id = table_.id(slot);
  out.rep = store_->View(table_.rep_ref(slot)).Materialize();
  out.rep_index = table_.rep_index(slot);
  out.rep_cell = table_.rep_cell(slot);
  out.accepted = table_.accepted(slot);
  out.latest = store_->View(table_.latest_ref(slot)).Materialize();
  out.latest_stamp = table_.latest_stamp(slot);
  out.latest_index = table_.latest_index(slot);
  if (ctx_->options.random_representative) {
    const WindowedReservoir& reservoir = table_.reservoir(slot);
    out.reservoir.reserve(reservoir.size());
    for (const WindowedReservoir::Candidate& c : reservoir.candidates()) {
      out.reservoir.push_back(WindowedReservoir::RestoredCandidate{
          c.priority, c.stamp, reservoir.CandidatePoint(c), c.stream_index});
    }
  }
  return out;
}

void SwFixedRateSampler::Adopt(GroupRecord&& in) {
  SwGroupTable::MovedGroup g;
  g.id = in.id;
  g.rep = store_->Add(in.rep);
  g.rep_index = in.rep_index;
  g.rep_cell = in.rep_cell;
  g.accepted = in.accepted;
  g.latest = store_->Add(in.latest);
  g.latest_stamp = in.latest_stamp;
  g.latest_index = in.latest_index;
  if (ctx_->options.random_representative) {
    // Fresh coin stream, salted per adoption so a group restored several
    // times never replays a prior priority sequence (statistically
    // equivalent; see core/snapshot.h).
    const uint64_t reseed =
        ctx_->options.seed ^ (g.id * 0x9E3779B97F4A7C15ULL) ^
        SplitMix64(++reseed_epoch_);
    g.reservoir.RestoreState(window_, reseed, store_, in.reservoir);
  }
  if (g.accepted) ++accept_size_;
  table_.AdoptMoved(std::move(g));
}

uint32_t SwFixedRateSampler::FindCandidate(
    PointView p, const std::vector<uint64_t>& adj_keys) const {
  // A representative u with d(u, p) ≤ α has cell(u) ∈ adj(p). Each
  // bucket's chain is gathered into a flat slot list and probed with the
  // batched kernel (single-rep buckets keep the direct scalar check);
  // probe order, hence every decision, matches the per-rep walk exactly
  // — see RobustL0SamplerIW::FindCandidate for the full rationale.
  for (uint64_t key : adj_keys) {
    const uint32_t head = table_.CellHead(key);
    if (head == SwGroupTable::kNpos) continue;
    const uint32_t second = table_.NextInCell(head);
    if (second == SwGroupTable::kNpos) {
      if (MetricWithinDistance(store_->View(table_.rep_ref(head)), p,
                               ctx_->options.alpha, ctx_->options.metric)) {
        return head;
      }
      continue;
    }
    cand_slots_.clear();
    cand_arena_.clear();
    for (uint32_t slot = head; slot != SwGroupTable::kNpos;
         slot = table_.NextInCell(slot)) {
      cand_slots_.push_back(slot);
      cand_arena_.push_back(table_.rep_arena_slot(slot));
    }
    const size_t hit = FindFirstWithin(*store_, p, cand_arena_.data(),
                                       cand_arena_.size(),
                                       ctx_->options.metric,
                                       ctx_->options.alpha);
    if (hit != Bitmask::npos) return cand_slots_[hit];
  }
  return SwGroupTable::kNpos;
}

InsertOutcome SwFixedRateSampler::InsertPrepared(const PreparedPoint& p,
                                                 uint32_t* touched_slot) {
  if (touched_slot != nullptr) *touched_slot = SwGroupTable::kNpos;
  Expire(p.stamp);

  const uint32_t candidate = FindCandidate(*p.point, *p.adj_keys);
  if (candidate != SwGroupTable::kNpos) {
    // Same group as a tracked representative: refresh its latest point
    // (Algorithm 2 line 6: A ← (u,p) ∪ A \ (u,·)).
    ReplayTouch(p, candidate);
    if (touched_slot != nullptr) *touched_slot = candidate;
    return table_.accepted(candidate) ? InsertOutcome::kAccepted
                                      : InsertOutcome::kRejected;
  }

  // First point of a group in this window: judge it by its own cell first
  // (accept), then by the neighborhood (reject), else ignore.
  const bool accepted = ctx_->hasher.SampledAtLevel(p.cell_key, level_);
  bool rejected = false;
  if (!accepted) {
    for (uint64_t key : *p.adj_keys) {
      if (ctx_->hasher.SampledAtLevel(key, level_)) {
        rejected = true;
        break;
      }
    }
    if (!rejected) return InsertOutcome::kIgnored;
  }

  const uint64_t id = (*id_counter_)++;
  const uint32_t slot = table_.Add(id, *p.point, p.stream_index, p.cell_key,
                                   accepted, p.stamp);
  if (ctx_->options.random_representative) {
    table_.reservoir(slot) =
        WindowedReservoir(window_, ctx_->options.seed ^ id, store_);
    table_.reservoir(slot).Insert(*p.point, p.stamp, p.stream_index);
  }
  if (accepted) ++accept_size_;
  return accepted ? InsertOutcome::kAccepted : InsertOutcome::kRejected;
}

void SwFixedRateSampler::ReplayTouch(const PreparedPoint& p, uint32_t slot) {
  RL0_DCHECK(table_.IsLive(slot));
  table_.Touch(slot, *p.point, p.stamp, p.stream_index);
  if (ctx_->options.random_representative) {
    table_.reservoir(slot).Insert(*p.point, p.stamp, p.stream_index);
  }
}

bool SwFixedRateSampler::Insert(const Point& p, int64_t stamp) {
  RL0_DCHECK(p.dim() == ctx_->options.dim);
  PreparedPoint prep;
  prep.point = &p;
  prep.stamp = stamp;
  prep.stream_index = static_cast<uint64_t>(stamp);
  prep.cell_key = ctx_->grid.AdjacentCellsWithBase(p, ctx_->options.alpha,
                                                   &adj_scratch_);
  prep.adj_keys = &adj_scratch_;
  return Insert(prep);
}

void SwFixedRateSampler::Expire(int64_t now) {
  const int64_t horizon = now - window_;
  uint32_t slot;
  while ((slot = table_.OldestSlot()) != SwGroupTable::kNpos) {
    if (table_.latest_stamp(slot) > horizon) break;
    if (table_.accepted(slot)) --accept_size_;
    table_.Remove(slot);
  }
  // Repack after big die-offs so the batched probe keeps walking dense
  // columns (no-op unless ≥50% of the slots are dead; callers never hold
  // slot indices across Expire).
  table_.MaybeCompact();
}

void SwFixedRateSampler::Reset() {
  table_.Clear();
  accept_size_ = 0;
}

std::optional<SampleItem> SwFixedRateSampler::Sample(int64_t now,
                                                     Xoshiro256pp* rng) {
  Expire(now);
  if (accept_size_ == 0) return std::nullopt;
  uint64_t target = rng->NextBounded(accept_size_);
  for (uint32_t slot = 0; slot < table_.slot_count(); ++slot) {
    if (!table_.IsLive(slot) || !table_.accepted(slot)) continue;
    if (target == 0) {
      if (ctx_->options.random_representative) {
        // Reservoir holds ≥ 1 unexpired item: the group's latest point is
        // alive (otherwise Expire would have dropped the group). The
        // query-time reservoir expiry mutates the slot's record, so the
        // checkpoint epoch must see it.
        table_.MarkSlotDirty(slot);
        const auto item = table_.reservoir(slot).Sample(now);
        RL0_DCHECK(item.has_value());
        if (item.has_value()) return item;
      }
      return SampleItem{store_->View(table_.latest_ref(slot)).Materialize(),
                        table_.latest_index(slot)};
    }
    --target;
  }
  RL0_CHECK(false);  // accept_size_ out of sync.
  return std::nullopt;
}

void SwFixedRateSampler::AcceptedGroupSamples(int64_t now,
                                              std::vector<SampleItem>* out) {
  for (uint32_t slot = 0; slot < table_.slot_count(); ++slot) {
    if (!table_.IsLive(slot) || !table_.accepted(slot)) continue;
    if (ctx_->options.random_representative) {
      // Query-time reservoir expiry mutates the record (checkpointing).
      table_.MarkSlotDirty(slot);
      const auto item = table_.reservoir(slot).Sample(now);
      if (item.has_value()) {
        out->push_back(*item);
        continue;
      }
    }
    out->push_back(
        SampleItem{store_->View(table_.latest_ref(slot)).Materialize(),
                   table_.latest_index(slot)});
  }
}

void SwFixedRateSampler::AcceptedLatestPoints(
    std::vector<SampleItem>* out) const {
  for (uint32_t slot = 0; slot < table_.slot_count(); ++slot) {
    if (!table_.IsLive(slot) || !table_.accepted(slot)) continue;
    out->push_back(
        SampleItem{store_->View(table_.latest_ref(slot)).Materialize(),
                   table_.latest_index(slot)});
  }
}

void SwFixedRateSampler::SnapshotGroups(std::vector<GroupRecord>* out) const {
  for (uint32_t slot = 0; slot < table_.slot_count(); ++slot) {
    if (table_.IsLive(slot)) out->push_back(Materialize(slot));
  }
}

void SwFixedRateSampler::SnapshotDirtyGroups(
    std::vector<GroupRecord>* dirty, std::vector<uint64_t>* live_ids) const {
  for (uint32_t slot = 0; slot < table_.slot_count(); ++slot) {
    if (!table_.IsLive(slot)) continue;
    live_ids->push_back(table_.id(slot));
    if (table_.SlotDirty(slot)) dirty->push_back(Materialize(slot));
  }
}

SwFixedRateSampler::SplitPlan SwFixedRateSampler::PlanSplit() {
  SplitPlan plan;
  // t = the arrival index of the last accepted representative whose cell
  // is sampled at level ℓ+1 (Algorithm 4 line 2).
  uint64_t t = 0;
  for (uint32_t slot = 0; slot < table_.slot_count(); ++slot) {
    if (!table_.IsLive(slot) || !table_.accepted(slot)) continue;
    if (!ctx_->hasher.SampledAtLevel(table_.rep_cell(slot), level_ + 1)) {
      continue;
    }
    if (!plan.found || table_.rep_index(slot) > t) {
      t = table_.rep_index(slot);
      plan.found = true;
    }
  }
  if (!plan.found) return plan;

  // Partition groups: representatives arriving ≤ t are promoted (re-judged
  // at level ℓ+1 per Definition 2.2), the rest stay at level ℓ.
  std::vector<uint64_t> adj;
  for (uint32_t slot = 0; slot < table_.slot_count(); ++slot) {
    if (!table_.IsLive(slot) || table_.rep_index(slot) > t) continue;
    if (ctx_->hasher.SampledAtLevel(table_.rep_cell(slot), level_ + 1)) {
      // Nestedness: it was accepted at ℓ already.
      plan.promote_accepted.push_back(slot);
      continue;
    }
    // Own cell unsampled at ℓ+1: rejected if a nearby cell is sampled,
    // dropped otherwise.
    ctx_->grid.AdjacentCells(store_->View(table_.rep_ref(slot)),
                             ctx_->options.alpha, &adj);
    bool near_sampled = false;
    for (uint64_t key : adj) {
      if (ctx_->hasher.SampledAtLevel(key, level_ + 1)) {
        near_sampled = true;
        break;
      }
    }
    if (near_sampled) {
      plan.promote_rejected.push_back(slot);
    } else {
      // The group is dropped entirely at the higher level.
      plan.drop.push_back(slot);
    }
  }
  return plan;
}

bool SwFixedRateSampler::SplitPromote(std::vector<GroupRecord>* promoted) {
  promoted->clear();
  SplitPlan plan = PlanSplit();
  if (!plan.found) return false;
  for (uint32_t slot : plan.promote_accepted) {
    GroupRecord moved = Materialize(slot);
    moved.accepted = true;
    promoted->push_back(std::move(moved));
  }
  for (uint32_t slot : plan.promote_rejected) {
    GroupRecord moved = Materialize(slot);
    moved.accepted = false;
    promoted->push_back(std::move(moved));
  }
  const auto remove = [this](uint32_t slot) {
    if (table_.accepted(slot)) --accept_size_;
    table_.Remove(slot);
  };
  for (uint32_t slot : plan.promote_accepted) remove(slot);
  for (uint32_t slot : plan.promote_rejected) remove(slot);
  for (uint32_t slot : plan.drop) remove(slot);
  return true;
}

bool SwFixedRateSampler::PromoteInto(SwFixedRateSampler* upper) {
  RL0_CHECK(upper != nullptr && upper->store_ == store_);
  RL0_CHECK(upper->level_ == level_ + 1);
  SplitPlan plan = PlanSplit();
  if (!plan.found) return false;
  const auto move = [this, upper](uint32_t slot, bool accepted) {
    if (table_.accepted(slot)) --accept_size_;
    SwGroupTable::MovedGroup g = table_.Extract(slot);
    g.accepted = accepted;
    if (accepted) ++upper->accept_size_;
    upper->table_.AdoptMoved(std::move(g));
  };
  for (uint32_t slot : plan.promote_accepted) move(slot, true);
  for (uint32_t slot : plan.promote_rejected) move(slot, false);
  for (uint32_t slot : plan.drop) {
    if (table_.accepted(slot)) --accept_size_;
    table_.Remove(slot);
  }
  return true;
}

void SwFixedRateSampler::MergeFrom(std::vector<GroupRecord>&& incoming) {
  for (GroupRecord& g : incoming) Adopt(std::move(g));
}

size_t SwFixedRateSampler::SpaceWords() const {
  size_t words = table_.live() * GroupWords() + 4 /* scalars */;
  if (ctx_->options.random_representative) {
    for (uint32_t slot = 0; slot < table_.slot_count(); ++slot) {
      if (!table_.IsLive(slot)) continue;
      words += table_.reservoir(slot).SpaceWords(ctx_->options.dim);
    }
  }
  return words;
}

}  // namespace rl0
