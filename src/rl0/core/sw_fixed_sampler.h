// Sliding-window robust sampling at a fixed rate 1/R (paper Algorithm 2).
//
// For every *candidate* group (a group whose representative lies in a
// sampled cell or within α of one) the structure keeps a key-value pair
// (representative u, latest point p): u decides accept/reject, p tracks
// liveness. When the latest point of a group expires — no newer point of
// the group arrived within the window — the group is dropped; the next
// point of the group to arrive (if any) becomes its new representative.
// This realizes the representative-point semantics of the paper's
// Observation 1 / Figure 2: the representative of a group in the current
// window is the latest point p of the group such that the window ending
// right before p contains no other point of the group.
//
// The structure works for both sequence-based windows (stamp = arrival
// index) and time-based windows (stamp = arrival time); only the meaning
// of the stamp differs.
//
// Storage: groups live in a SwGroupTable — coordinates in a PointStore
// arena shared across all levels of a hierarchy, scalar fields in flat
// slot-indexed columns, cell membership in an open-addressing CellIndex,
// and expiry order in an intrusive stamp-sorted list (see
// core/sw_group_table.h). No node-based containers remain on the insert
// path. GroupRecord is the *materialized* exchange format (owning
// Points) used by SplitPromote/MergeFrom/SnapshotGroups; inside one
// hierarchy, split promotion instead moves groups arena-internally
// (PromoteInto), which also keeps reservoir coin streams intact across
// splits. The pre-refactor node-based implementation is preserved as
// baseline/legacy_sw_sampler.h for differential pinning.
//
// Used standalone (with a fixed rate it stores up to Θ(w/R) groups) and as
// the per-level building block of the space-efficient Algorithm 3, which
// additionally needs Reset (pruning), SplitPromote and MergeFrom
// (Algorithms 4 and 5).

#ifndef RL0_CORE_SW_FIXED_SAMPLER_H_
#define RL0_CORE_SW_FIXED_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "rl0/core/context.h"
#include "rl0/core/sample.h"
#include "rl0/core/sw_group_table.h"
#include "rl0/core/windowed_reservoir.h"
#include "rl0/geom/distance_kernels.h"
#include "rl0/geom/point_store.h"
#include "rl0/util/space.h"
#include "rl0/util/status.h"

namespace rl0 {

/// One tracked candidate group, materialized with owning Points (the
/// exchange format for split/merge between levels, snapshotting and
/// tests; in-table storage is arena-backed).
struct GroupRecord {
  uint64_t id = 0;
  /// The representative (first point of the group in the current window).
  Point rep;
  uint64_t rep_index = 0;
  uint64_t rep_cell = 0;
  /// Accepted (rep's cell sampled) vs rejected (only a nearby cell is).
  bool accepted = false;
  /// The latest point of the group and its stamp — liveness tracking.
  Point latest;
  int64_t latest_stamp = 0;
  uint64_t latest_index = 0;
  /// Section 2.3 variant: the group's windowed-reservoir candidates
  /// (populated only when options.random_representative is set).
  std::vector<WindowedReservoir::RestoredCandidate> reservoir;
};

/// What happened to a point fed to a level (drives Algorithm 3's
/// feed-top-down loop: only *accepted* records stop the descent, per the
/// paper's "accept it at the highest level ℓ in which the point falls into
/// Sacc_ℓ" — rejected records are bookkeeping that must not block lower
/// levels, or Lemma 2.10's non-emptiness guarantee would break).
enum class InsertOutcome {
  /// The group is not a candidate at this level; no trace left.
  kIgnored,
  /// The point became (or refreshed) a *rejected* representative/pair.
  kRejected,
  /// The point became (or refreshed) an *accepted* representative/pair.
  kAccepted,
};

/// Fixed-rate sliding-window sampler (Algorithm 2).
class SwFixedRateSampler {
 public:
  /// Non-owning constructor: `ctx` and `store` must outlive the sampler;
  /// `id_counter` issues group ids unique across all levels of a
  /// hierarchy. A null `store` gives the sampler a private arena.
  SwFixedRateSampler(const SamplerContext* ctx, uint32_t level,
                     int64_t window, uint64_t* id_counter,
                     PointStore* store = nullptr);

  /// Standalone factory owning its context and arena (single-level use,
  /// tests).
  static Result<std::unique_ptr<SwFixedRateSampler>> CreateStandalone(
      const SamplerOptions& options, uint32_t level, int64_t window);

  /// Feeds a prepared point. Expires dead groups first. Reports whether
  /// the point was recorded, and into which class (see InsertOutcome).
  InsertOutcome InsertPrepared(const PreparedPoint& p) {
    return InsertPrepared(p, nullptr);
  }

  /// As above; additionally reports *how* the point was recorded: when it
  /// refreshed an existing pair, `*touched_slot` receives that group's
  /// slot, otherwise kNpos (new representative or ignored). The hierarchy
  /// uses this to tell pure-touch arrivals — the only ones the
  /// duplicate-suppression front-end may record — from ones that mutated
  /// group structure.
  InsertOutcome InsertPrepared(const PreparedPoint& p,
                               uint32_t* touched_slot);

  /// Replays the touch half of a recorded descent step at this level: the
  /// exact mutations InsertPrepared's candidate branch performs (latest
  /// point/stamp refresh plus the reservoir coin), without the probe.
  /// Only valid when the table generation is unchanged since `slot` was
  /// recorded as this arrival's touch target (core/dup_filter.h contract);
  /// the caller has already run this level's Expire for `p.stamp`.
  void ReplayTouch(const PreparedPoint& p, uint32_t slot);

  /// Feeds a prepared point; true iff it was recorded at all (updated an
  /// existing pair or became a new accepted/rejected representative).
  bool Insert(const PreparedPoint& p) {
    return InsertPrepared(p) != InsertOutcome::kIgnored;
  }

  /// Convenience overload computing cell/adjacency internally.
  bool Insert(const Point& p, int64_t stamp);

  /// Drops groups whose latest point left the window at time `now`
  /// (latest_stamp ≤ now − window). Big expiry waves (a stream gap wider
  /// than the window, a post-promotion Reset) leave mostly-dead slot
  /// columns behind; those compact via SwGroupTable::MaybeCompact.
  void Expire(int64_t now);

  /// Prefetches the cell bucket of `key` in this level's group table
  /// (the hierarchy's batch paths issue this one stream element ahead).
  void PrefetchCell(uint64_t key) const { table_.PrefetchCell(key); }

  /// Whether the prefetch is worth its CellKeyOf cost at this level (see
  /// SwGroupTable::PrefetchPays).
  bool PrefetchPays() const { return table_.PrefetchPays(); }

  /// Clears all tracked groups (the hierarchy's pruning step).
  void Reset();

  /// Uniform sample over the *latest points* of accepted groups alive at
  /// `now` (values of A restricted to Sacc). With the Section 2.3
  /// random-representative option, a uniform point of the group's window
  /// instead. Expires first.
  std::optional<SampleItem> Sample(int64_t now, Xoshiro256pp* rng);

  /// Number of accepted groups |Sacc|.
  size_t accept_size() const { return accept_size_; }
  /// Number of rejected groups |Srej|.
  size_t reject_size() const { return table_.live() - accept_size_; }
  /// Total tracked groups (|A|).
  size_t group_count() const { return table_.live(); }
  /// This instance's level ℓ (rate 1/2^ℓ).
  uint32_t level() const { return level_; }
  /// The window width.
  int64_t window() const { return window_; }
  /// The shared context (introspection for tests).
  const SamplerContext& context() const { return *ctx_; }
  /// The flat group table (introspection for tests).
  const SwGroupTable& table() const { return table_; }
  /// This level's structure generation (see SwGroupTable::generation) —
  /// the epoch component the duplicate-suppression front-end sums over
  /// the levels a recorded descent probed.
  uint64_t generation() const { return table_.generation(); }

  /// Appends the latest points of accepted groups to `out` (A(Sacc)), in
  /// slot order (deterministic for a fixed insertion history).
  void AcceptedLatestPoints(std::vector<SampleItem>* out) const;

  /// Appends one sample item per accepted group: the group's windowed-
  /// reservoir sample (random_representative mode) or its latest point.
  /// Expires the reservoirs at `now` first.
  void AcceptedGroupSamples(int64_t now, std::vector<SampleItem>* out);

  /// Appends materialized copies of all group records to `out`
  /// (introspection, checkpointing).
  void SnapshotGroups(std::vector<GroupRecord>* out) const;

  /// Starts a new dirty-tracking epoch on the group table; subsequent
  /// SnapshotDirtyGroups calls report only groups touched after this
  /// point (delta snapshots, core/checkpoint.h). O(1).
  void MarkCheckpoint() { table_.MarkCheckpoint(); }

  /// Appends materialized records of the groups touched since the last
  /// MarkCheckpoint() to `dirty`, and the id of every live group — in
  /// slot order, the order SnapshotGroups serializes — to `live_ids`.
  void SnapshotDirtyGroups(std::vector<GroupRecord>* dirty,
                           std::vector<uint64_t>* live_ids) const;

  /// Algorithm 4 (Split), promotion half. Finds the last accepted
  /// representative sampled at level ℓ+1; moves every group whose
  /// representative arrived before or at it into `promoted`, re-judged at
  /// level ℓ+1 (accept / reject / drop, per Definition 2.2); keeps the
  /// remaining groups at level ℓ. Returns false (and promotes nothing) if
  /// no accepted representative is sampled at level ℓ+1 — the caller must
  /// abandon the cascade (see DESIGN.md §3).
  bool SplitPromote(std::vector<GroupRecord>* promoted);

  /// As SplitPromote, but moves the promoted groups arena-internally into
  /// `upper` (the level-ℓ+1 sibling of the same hierarchy; both samplers
  /// must share one PointStore). No GroupRecord is materialized and the
  /// promoted groups' reservoirs move with their coin streams intact —
  /// unlike the MergeFrom path, a promoted group's future reservoir
  /// priorities are exactly those of an unsplit run.
  bool PromoteInto(SwFixedRateSampler* upper);

  /// Algorithm 5 (Merge): adopts `groups` (already at this level's rate).
  /// Reservoir coin streams restart from a derived seed (see
  /// core/snapshot.h for the statistical-equivalence contract).
  void MergeFrom(std::vector<GroupRecord>&& groups);

  /// Space in words under the util/space.h accounting model.
  size_t SpaceWords() const;

 private:
  /// The split decision for this level (Algorithm 4 lines 1-2): the
  /// promotion threshold t and the partition of live slots.
  struct SplitPlan {
    bool found = false;
    std::vector<uint32_t> promote_accepted;
    std::vector<uint32_t> promote_rejected;
    std::vector<uint32_t> drop;
  };
  SplitPlan PlanSplit();

  GroupRecord Materialize(uint32_t slot) const;
  /// Installs a materialized record (allocating arena slots).
  void Adopt(GroupRecord&& g);
  uint32_t FindCandidate(PointView p,
                         const std::vector<uint64_t>& adj_keys) const;
  size_t GroupWords() const;

  const SamplerContext* ctx_;
  std::unique_ptr<SamplerContext> owned_ctx_;  // standalone mode only
  PointStore* store_;
  std::unique_ptr<PointStore> owned_store_;  // standalone mode only
  uint32_t level_;
  int64_t window_;
  uint64_t* id_counter_;
  uint64_t owned_id_counter_ = 0;  // standalone mode only
  uint64_t reseed_epoch_ = 0;      // salts reservoir reseeds on adoption

  size_t accept_size_ = 0;
  SwGroupTable table_;

  mutable std::vector<uint64_t> adj_scratch_;
  // FindCandidate gather scratch (see RobustL0SamplerIW): table slots
  // and arena slot indices for one multi-rep cell bucket.
  mutable SmallVector<uint32_t, 16> cand_slots_;
  mutable SmallVector<uint32_t, 16> cand_arena_;
};

}  // namespace rl0

#endif  // RL0_CORE_SW_FIXED_SAMPLER_H_
