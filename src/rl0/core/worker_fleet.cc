#include "rl0/core/worker_fleet.h"

#include <utility>

#include "rl0/util/check.h"

namespace rl0 {

WorkerFleet::WorkerFleet(size_t threads) {
  if (threads < 1) threads = 1;
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerFleet::~WorkerFleet() {
  {
    MutexLock lock(&mu_);
    // Pools must be stopped (and their lanes deregistered) before the
    // fleet goes away — a member outliving its fleet would lose its
    // worker silently.
    RL0_CHECK(members_.empty());
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

uint64_t WorkerFleet::Register(LaneFn fn) {
  MutexLock lock(&mu_);
  const uint64_t id = next_id_++;
  auto member = std::make_unique<Member>();
  member->fn = std::move(fn);
  members_.emplace(id, std::move(member));
  return id;
}

void WorkerFleet::Deregister(uint64_t id) {
  MutexLock lock(&mu_);
  auto it = members_.find(id);
  if (it == members_.end()) return;
  Member* m = it->second.get();
  m->dead = true;
  if (m->enlisted) {
    for (auto ring = ready_.begin(); ring != ready_.end(); ++ring) {
      if (*ring == id) {
        ready_.erase(ring);
        break;
      }
    }
    m->enlisted = false;
  }
  while (m->running) idle_cv_.Wait(&mu_);
  members_.erase(it);
}

void WorkerFleet::Notify(uint64_t id) {
  bool wake = false;
  {
    MutexLock lock(&mu_);
    auto it = members_.find(id);
    if (it == members_.end()) return;
    Member* m = it->second.get();
    if (m->dead) return;
    if (m->running) {
      // The run in flight may have already drained the queue before this
      // notification's chunk landed; latch so the member re-enters the
      // ring when the run ends.
      m->renotify = true;
    } else if (!m->enlisted) {
      m->enlisted = true;
      ready_.push_back(id);
      wake = true;
    }
  }
  if (wake) work_cv_.NotifyOne();
}

void WorkerFleet::WorkerLoop() {
  // Manual Lock/Unlock (not MutexLock) because the lock is dropped
  // around the member callback and reacquired after; the analysis
  // checks that the lock state is balanced at every join point.
  mu_.Lock();
  for (;;) {
    while (!stopping_ && ready_.empty()) work_cv_.Wait(&mu_);
    if (ready_.empty()) {
      if (stopping_) {
        mu_.Unlock();
        return;
      }
      continue;
    }
    const uint64_t id = ready_.front();
    ready_.pop_front();
    auto it = members_.find(id);
    if (it == members_.end()) continue;  // raced a Deregister
    Member* m = it->second.get();
    m->enlisted = false;
    m->running = true;
    m->renotify = false;
    mu_.Unlock();
    const bool did_work = m->fn();
    mu_.Lock();
    m->running = false;
    // did_work: the queue may hold more chunks (we only ran one) — take
    // another turn after everyone else. renotify: a producer pushed
    // while we ran. Either way re-enlist; a spurious extra run settles
    // by returning false.
    if (!m->dead && (did_work || m->renotify)) {
      m->enlisted = true;
      ready_.push_back(id);
      work_cv_.NotifyOne();
    }
    m->renotify = false;
    idle_cv_.NotifyAll();
  }
}

size_t WorkerFleet::lanes_registered() const {
  MutexLock lock(&mu_);
  return members_.size();
}

}  // namespace rl0
