#include "rl0/core/worker_fleet.h"

#include <utility>

#include "rl0/util/check.h"

namespace rl0 {

WorkerFleet::WorkerFleet(size_t threads) {
  if (threads < 1) threads = 1;
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerFleet::~WorkerFleet() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Pools must be stopped (and their lanes deregistered) before the
    // fleet goes away — a member outliving its fleet would lose its
    // worker silently.
    RL0_CHECK(members_.empty());
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

uint64_t WorkerFleet::Register(LaneFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_id_++;
  auto member = std::make_unique<Member>();
  member->fn = std::move(fn);
  members_.emplace(id, std::move(member));
  return id;
}

void WorkerFleet::Deregister(uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = members_.find(id);
  if (it == members_.end()) return;
  Member* m = it->second.get();
  m->dead = true;
  if (m->enlisted) {
    for (auto ring = ready_.begin(); ring != ready_.end(); ++ring) {
      if (*ring == id) {
        ready_.erase(ring);
        break;
      }
    }
    m->enlisted = false;
  }
  idle_cv_.wait(lock, [m] { return !m->running; });
  members_.erase(it);
}

void WorkerFleet::Notify(uint64_t id) {
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = members_.find(id);
    if (it == members_.end()) return;
    Member* m = it->second.get();
    if (m->dead) return;
    if (m->running) {
      // The run in flight may have already drained the queue before this
      // notification's chunk landed; latch so the member re-enters the
      // ring when the run ends.
      m->renotify = true;
    } else if (!m->enlisted) {
      m->enlisted = true;
      ready_.push_back(id);
      wake = true;
    }
  }
  if (wake) work_cv_.notify_one();
}

void WorkerFleet::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (ready_.empty()) {
      if (stopping_) return;
      continue;
    }
    const uint64_t id = ready_.front();
    ready_.pop_front();
    auto it = members_.find(id);
    if (it == members_.end()) continue;  // raced a Deregister
    Member* m = it->second.get();
    m->enlisted = false;
    m->running = true;
    m->renotify = false;
    lock.unlock();
    const bool did_work = m->fn();
    lock.lock();
    m->running = false;
    // did_work: the queue may hold more chunks (we only ran one) — take
    // another turn after everyone else. renotify: a producer pushed
    // while we ran. Either way re-enlist; a spurious extra run settles
    // by returning false.
    if (!m->dead && (did_work || m->renotify)) {
      m->enlisted = true;
      ready_.push_back(id);
      work_cv_.notify_one();
    }
    m->renotify = false;
    idle_cv_.notify_all();
  }
}

size_t WorkerFleet::lanes_registered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return members_.size();
}

}  // namespace rl0
