// Robust heavy hitters: frequent *entities* on streams with
// near-duplicates.
//
// The paper's noisy-data model (and its companion work on distributed
// noisy streams, reference [36]) motivates more statistics than sampling:
// "which entities appear most often?" is the dedup-analytics complement of
// distinct sampling. This module runs the SpaceSaving algorithm
// (Metwally-Agrawal-El Abbadi) over *groups* instead of exact items, using
// the same grid + candidate-lookup substrate as the samplers: an arriving
// point is charged to the tracked group whose representative lies within
// α of it; a new group either occupies a free counter or inherits the
// minimum counter (SpaceSaving eviction).
//
// Guarantees (well-separated data, m points, c counters): every tracked
// count overestimates its group's true count by at most m/c (the standard
// SpaceSaving bound, with group identity resolved greedily as in
// Section 3), so every group with true count > m/c is tracked. Space is
// Θ(c) points.

#ifndef RL0_CORE_HEAVY_HITTERS_H_
#define RL0_CORE_HEAVY_HITTERS_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "rl0/core/sample.h"
#include "rl0/geom/metric.h"
#include "rl0/geom/point.h"
#include "rl0/grid/random_grid.h"
#include "rl0/util/status.h"

namespace rl0 {

/// Configuration for RobustHeavyHitters.
struct HeavyHittersOptions {
  /// Dimension of the points. Required, ≥ 1.
  size_t dim = 0;
  /// Near-duplicate threshold α. Required, > 0.
  double alpha = 0.0;
  /// Distance function (default Euclidean).
  Metric metric = Metric::kL2;
  /// Number of counters c: guarantees error ≤ m/c. Required, ≥ 1.
  size_t capacity = 64;
  /// Seed for the grid shift.
  uint64_t seed = 0;

  /// Checks the options for consistency.
  Status Validate() const;
};

/// SpaceSaving over near-duplicate groups.
class RobustHeavyHitters {
 public:
  /// A tracked group.
  struct Entry {
    /// The group's representative (first point charged to the counter
    /// after its last reset).
    Point representative;
    /// Arrival index of the representative.
    uint64_t stream_index = 0;
    /// Estimated count (upper bound on the group's true count).
    uint64_t count = 0;
    /// Maximum possible overestimate (count inherited at takeover).
    uint64_t error = 0;
  };

  /// Validates `options` and constructs the sketch.
  static Result<RobustHeavyHitters> Create(const HeavyHittersOptions& options);

  /// Charges the next stream point to its group.
  void Insert(const Point& p);

  /// The tracked groups with the `k` largest estimated counts,
  /// descending (all tracked groups if k ≥ capacity).
  std::vector<Entry> TopK(size_t k) const;

  /// Estimated count of the group containing `p`, if tracked.
  /// kNotFound when no tracked representative is within α of p.
  Result<uint64_t> EstimateCount(const Point& p) const;

  /// Points processed so far.
  uint64_t points_processed() const { return points_processed_; }

  /// Number of occupied counters (≤ capacity).
  size_t tracked_groups() const { return entries_.size(); }

  /// Space in words under the util/space.h accounting model.
  size_t SpaceWords() const;

  /// The options in force.
  const HeavyHittersOptions& options() const { return options_; }

 private:
  explicit RobustHeavyHitters(const HeavyHittersOptions& options);

  uint64_t FindGroup(const Point& p) const;

  HeavyHittersOptions options_;
  RandomGrid grid_;
  uint64_t points_processed_ = 0;
  uint64_t next_id_ = 0;

  struct Counter {
    Entry entry;
    uint64_t cell_key = 0;
    std::multimap<uint64_t, uint64_t>::iterator by_count_it;
  };
  std::unordered_map<uint64_t, Counter> entries_;
  std::unordered_multimap<uint64_t, uint64_t> cell_to_entry_;
  /// count -> id, for O(log c) minimum eviction and count updates.
  std::multimap<uint64_t, uint64_t> by_count_;

  mutable AdjKeyVec adj_scratch_;
};

}  // namespace rl0

#endif  // RL0_CORE_HEAVY_HITTERS_H_
