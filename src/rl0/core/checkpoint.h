// Journaled crash recovery and incremental checkpoints.
//
// core/snapshot.h serializes one sampler in full. This layer adds the two
// pieces a long-running stream processor needs on top of that:
//
//  1. *Delta snapshots.* A full cut (SnapshotSamplerFull/-SW) marks a
//     dirty-tracking epoch on the sampler's slot tables; a delta cut
//     (SnapshotSamplerDelta/-SW) then serializes only the records touched
//     since the previous cut, plus the live-id order of every record —
//     which fully determines the sampler's state relative to the base
//     (deletions are implicit: an id absent from the order list is gone;
//     ids are monotone and never reused). ApplySamplerDelta/-SW folds a
//     delta onto its base and produces a blob *byte-identical* to the
//     full snapshot a contemporaneous SnapshotSampler/-SW call would have
//     written — so a folded chain is self-validating against the full
//     format's trailing checksum, and deltas chain by construction: each
//     delta records the trailing checksum of the exact base it was cut
//     against (SnapshotChainChecksum) and refuses to fold onto anything
//     else.
//
//  2. *A stamped journal.* ShardedSwSamplerPool::SetJournalSink taps the
//     feed path; JournalWriter turns the tap into an append-only record
//     of fed chunks — length-framed, CRC'd per record, torn-tail
//     tolerant (ReadJournal stops at the first bad byte and returns the
//     valid prefix). CheckpointPool cuts a pool-wide checkpoint carrying
//     the journal sequence number it is consistent with; RecoverPool
//     restores the shards and replays every journal record at or above
//     that sequence number through the ordinary feed path.
//
// Recovery contract (the bit-identity guarantee): because shard s of S
// consumes the points at global positions ≡ s (mod S) — the
// global-residue partition — replay is chunking-invariant by
// construction, and the recovered pool's per-shard snapshot bytes and
// lockstep query draws equal those of a pool that processed the same
// fed prefix without interruption *from the same restore point*. (After
// continued feeding, slot *layout* may differ from a never-restored
// twin — freed slots recycle in LIFO order and a restored table is
// packed dense — so byte equality is pinned against a reference sharing
// the restore point; semantic equality of query draws holds regardless.
// The Section 2.3 reservoir coin stream re-seeds on restore exactly as
// core/snapshot.h documents.)
//
// Durability boundary: the journal records *fed* chunks. On the
// bounded-lateness path only the chunks *released* by the reorder stage
// are fed, so points still buffered in the reorder heap at a crash are
// not durable — they were never acknowledged to any downstream state.
// The checkpoint header carries the stage's release frontier, and
// RecoverPool re-arms it (ReorderStage::NoteFrontier), so a restored
// pool judges re-offered stamps late exactly as the crashed pool would
// have: nothing already released or late-dropped can be re-admitted.

#ifndef RL0_CORE_CHECKPOINT_H_
#define RL0_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rl0/core/iw_sampler.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/geom/point.h"
#include "rl0/util/span.h"
#include "rl0/util/status.h"

namespace rl0 {

// ------------------------------------------------ sampler-level deltas

/// The trailing checksum of any blob produced by this layer or by
/// core/snapshot.h — the value deltas chain on. Returns 0 for blobs too
/// small to carry one.
uint64_t SnapshotChainChecksum(const std::string& blob);

/// Serializes `sampler` in full (byte-identical to SnapshotSampler) and
/// marks the dirty-tracking epoch: the next delta cut reports only
/// records touched from this point on.
Status SnapshotSamplerFull(RobustL0SamplerIW* sampler, std::string* out);

/// Serializes only the records touched since the last Full/Delta cut,
/// plus the live-id order, chained to the base whose trailing checksum
/// is `base_checksum`; then marks a fresh epoch. The sampler must have
/// had a Full cut before (the epoch and the chain both start there).
Status SnapshotSamplerDelta(RobustL0SamplerIW* sampler,
                            uint64_t base_checksum, std::string* out);

/// Folds `delta` onto `base` (a full blob — from SnapshotSamplerFull or
/// a previous fold). `out` is byte-identical to the full snapshot a
/// contemporaneous SnapshotSampler call would have produced. Fails if
/// either blob is corrupt or the delta was cut against a different base.
Status ApplySamplerDelta(const std::string& base, const std::string& delta,
                         std::string* out);

/// Sliding-window variants of the trio above.
Status SnapshotSamplerFullSW(RobustL0SamplerSW* sampler, std::string* out);
Status SnapshotSamplerDeltaSW(RobustL0SamplerSW* sampler,
                              uint64_t base_checksum, std::string* out);
Status ApplySamplerDeltaSW(const std::string& base, const std::string& delta,
                           std::string* out);

// ------------------------------------------------------------- journal

/// What one journal record is.
enum class JournalRecordType : uint8_t {
  /// A sequence-mode chunk: `count` points, stamped by global position.
  kPoints = 1,
  /// A time-mode chunk: `count` points with explicit stamps.
  kStamped = 2,
  /// A watermark broadcast (no points; see IngestPool::FeedWatermark).
  kWatermark = 3,
};

/// Appends length-framed, CRC'd records to a caller-owned byte buffer
/// (flush the buffer to storage at whatever cadence durability needs).
/// A fresh (empty) buffer gets the stream header; to continue a journal
/// that survived a crash, truncate it to ReadJournal's valid_bytes and
/// construct with next_seq = the number of surviving records. Not
/// thread-safe: the pool's journal tap already serializes sink calls.
class JournalWriter {
 public:
  JournalWriter(std::string* out, size_t dim, uint64_t next_seq = 0);

  /// Appends a sequence-mode chunk whose first point sits at global
  /// stream position `index_base`.
  void AppendPoints(Span<const Point> points, uint64_t index_base);
  /// Appends a time-mode chunk (stamps align with points).
  void AppendStamped(Span<const Point> points, Span<const int64_t> stamps,
                     uint64_t index_base);
  /// Appends a watermark broadcast; `index_base` is the global position
  /// the stream has reached (watermarks consume no indices).
  void AppendWatermark(int64_t watermark, uint64_t index_base);

  /// The sequence number the next record will carry.
  uint64_t next_seq() const { return next_seq_; }

 private:
  void BeginRecord(JournalRecordType type, uint64_t index_base,
                   uint64_t count, size_t* start);
  void EndRecord(size_t start);

  std::string* out_;
  size_t dim_;
  uint64_t next_seq_;
};

/// One decoded journal record.
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kPoints;
  uint64_t seq = 0;
  /// Global stream position of points[0] (point records), or the
  /// position the stream had reached (watermark records).
  uint64_t index_base = 0;
  std::vector<Point> points;
  std::vector<int64_t> stamps;
  int64_t watermark = 0;
};

/// The valid prefix of a journal byte stream.
struct JournalContents {
  /// Point dimensionality from the stream header (0 for an empty
  /// journal).
  size_t dim = 0;
  /// Records in sequence order (seq == position in this vector).
  std::vector<JournalRecord> records;
  /// Byte length of the valid prefix — truncate the buffer here before
  /// continuing it with a JournalWriter.
  size_t valid_bytes = 0;
};

/// Decodes the valid prefix of `journal`. Torn-tail tolerant: a record
/// cut short by a crash (or trailing garbage) ends the prefix without
/// error. An empty buffer is an empty journal. Fails only when the
/// stream header itself is present but not a journal header.
Status ReadJournal(const std::string& journal, JournalContents* out);

// ---------------------------------------------------- pool checkpoints

/// Cuts a full pool checkpoint: the stamp mode, counters, reorder
/// frontier and a full snapshot of every shard (marking each shard's
/// dirty-tracking epoch, so CheckpointPoolDelta can follow).
/// `journal_seq` is the journal sequence number this cut is consistent
/// with (the writer's next_seq() at a quiescent point): RecoverPool
/// replays records at or above it. Requires a drained pool with no
/// concurrent feeders (do NOT call from inside QuiescedRun — reading
/// points_fed there deadlocks; see IngestPool::QuiescedRun).
Status CheckpointPool(ShardedSwSamplerPool* pool, uint64_t journal_seq,
                      std::string* out);

/// Cuts an incremental pool checkpoint against `base` (a full pool
/// checkpoint — from CheckpointPool or FoldPoolDelta): a fresh header
/// plus one sampler delta per shard, each chained to the corresponding
/// shard blob inside `base`. Same quiescence requirements as
/// CheckpointPool.
Status CheckpointPoolDelta(ShardedSwSamplerPool* pool,
                           const std::string& base, uint64_t journal_seq,
                           std::string* out);

/// Folds a pool delta onto its base full checkpoint; `out` is
/// byte-identical to the full checkpoint a contemporaneous
/// CheckpointPool call would have produced.
Status FoldPoolDelta(const std::string& base, const std::string& delta,
                     std::string* out);

/// Rebuilds a pool from a full checkpoint (fold deltas first) and a
/// journal byte stream: restores every shard, re-latches the stamp
/// mode, re-arms the event watermark and reorder frontier, then replays
/// every journal record with seq ≥ the checkpoint's journal sequence
/// number through the ordinary feed path — verifying global index
/// continuity and stamp monotonicity record by record — and drains.
/// The returned pool is quiescent and, per the recovery contract in the
/// file comment, bit-identical (snapshot bytes and lockstep query
/// draws) to an uninterrupted run over the same fed prefix from the
/// same restore point. The journal may extend past the crash point's
/// last complete record (torn tails are ignored) and may be empty.
Result<ShardedSwSamplerPool> RecoverPool(
    const std::string& checkpoint, const std::string& journal,
    const IngestPool::Options& pipeline_options = IngestPool::Options());

/// Installs `writer` as `pool`'s journal tap: every fed chunk and
/// watermark broadcast is appended before it enters the pipeline.
/// `writer` must outlive the pool's feeding (or a SetJournalSink(nullptr)).
void AttachJournal(ShardedSwSamplerPool* pool, JournalWriter* writer);

}  // namespace rl0

#endif  // RL0_CORE_CHECKPOINT_H_
