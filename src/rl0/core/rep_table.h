// Structure-of-arrays storage for sampler representatives.
//
// Algorithm 1's hot loop is FindCandidate: for every arriving point,
// probe each adjacent cell key and distance-check the representatives
// stored in that cell. The seed implementation kept representatives in a
// std::unordered_map<id, Rep> (each Rep holding a heap-allocated Point)
// indexed by a std::unordered_multimap<cell, id> — three pointer chases
// per probe before the first coordinate is even touched.
//
// RepTable flattens all of it:
//
//   * coordinates live in a PointStore arena (one flat double buffer);
//   * the per-rep scalar fields (id, stream_index, cell_key, flags) are
//     parallel vectors indexed by a 32-bit slot;
//   * cell membership is an intrusive singly-linked chain threaded through
//     the `next_in_cell` column, with chain heads held in CellIndex — an
//     open-addressing (linear probing) hash table from cell key to slot.
//
// A FindCandidate probe is now: one open-addressing lookup, then a walk
// over slot indices whose coordinates are contiguous doubles. Slots are
// recycled through a free list, so the table's footprint tracks the peak
// live population, matching the paper's space accounting (RepArenaWords in
// util/space.h mirrors this layout field by field).

#ifndef RL0_CORE_REP_TABLE_H_
#define RL0_CORE_REP_TABLE_H_

#include <cstdint>
#include <vector>

#include "rl0/geom/point.h"
#include "rl0/geom/point_store.h"

namespace rl0 {

/// Active CellIndex probe kernel: "avx2" or "scalar". Mirrors
/// DistanceKernelDispatch(); benches record it next to machine facts.
const char* CellIndexDispatch();

/// Open-addressing hash table: cell key → head slot of the cell's rep
/// chain. Linear probing with tombstones; grows at 70% occupancy.
///
/// Storage is structure-of-arrays (keys / heads / states in parallel
/// vectors) so the probe loop can compare several buckets per step: the
/// AVX2 path fingerprints four consecutive keys at once and resolves the
/// first empty-or-matching position with a ctz, visiting positions in
/// exactly the scalar probe order — decisions and probe order are
/// unchanged, only the stride over memory differs. Runtime dispatch and
/// the -DRL0_NO_SIMD escape hatch follow geom/distance_kernels.h.
class CellIndex {
 public:
  static constexpr uint32_t kNpos = ~uint32_t{0};

  CellIndex();

  /// Head slot of `key`'s chain, or kNpos.
  uint32_t Find(uint64_t key) const;

  /// Sets (inserting if absent) the head slot of `key`'s chain.
  void SetHead(uint64_t key, uint32_t head);

  /// Sets the head slot of `key`'s chain and returns the previous head
  /// (kNpos if the key was absent) — SetHead and Find in one probe, the
  /// push-front primitive of the rep chains.
  uint32_t Upsert(uint64_t key, uint32_t head);

  /// Removes `key` (no-op if absent).
  void Erase(uint64_t key);

  /// Prefetches the probe bucket for `key` into cache. The batch
  /// ingestion paths issue this one stream element ahead, overlapping the
  /// bucket's memory latency with the current element's distance work.
  void Prefetch(uint64_t key) const {
#if defined(__GNUC__)
    const size_t i = BucketFor(key);
    __builtin_prefetch(&keys_[i]);
    __builtin_prefetch(&states_[i]);
#endif
  }

  /// Calls fn(key, head) for every present key, in unspecified order
  /// (compaction rebuild support).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (states_[i] == kFull) fn(keys_[i], heads_[i]);
    }
  }

  /// Number of distinct keys present.
  size_t live() const { return live_; }

 private:
  enum : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

  size_t BucketFor(uint64_t key) const {
    // Keys are already mixed (grid/cell.h); a multiplicative spread keeps
    // linear probing clusters short even for adversarial key sets.
    return static_cast<size_t>((key * 0x9E3779B97F4A7C15ULL) >> shift_);
  }
  void Grow();
  uint32_t FindScalar(uint64_t key) const;
  uint32_t FindAvx2(uint64_t key) const;  // defined only on the x86 build

  std::vector<uint64_t> keys_;
  std::vector<uint32_t> heads_;
  std::vector<uint8_t> states_;
  uint32_t shift_;   // 64 - log2(keys_.size())
  size_t live_ = 0;  // kFull buckets
  size_t used_ = 0;  // kFull + kTombstone buckets
};

/// SoA table of representatives with arena-backed points and a flat cell
/// index. Copyable (all columns are value vectors).
class RepTable {
 public:
  static constexpr uint32_t kNpos = CellIndex::kNpos;

  /// A table for reps of dimension `dim`. `with_reservoir` allocates the
  /// Section 2.3 columns (group sample point / index / count).
  RepTable(size_t dim, bool with_reservoir);

  // ----------------------------------------------------------- lifecycle

  /// Adds a representative; returns its slot. Invalidates PointViews.
  uint32_t Add(PointView point, uint64_t id, uint64_t stream_index,
               uint64_t cell_key, bool accepted);

  /// Removes the rep at `slot` (unlinks its cell chain, frees its arena
  /// slots, recycles the slot).
  void Remove(uint32_t slot);

  /// \brief Compacts the table: live reps move down to slots [0, live()),
  /// the arena is repacked in the new slot order, and the CellIndex is
  /// rebuilt.
  ///
  /// Contract (what makes this safe to run mid-stream):
  ///   * Slot renumbering is monotone — live slots keep their relative
  ///     order — so every slot-order iteration (queries, snapshots,
  ///     Refilter scans) visits the same representatives in the same
  ///     sequence before and after.
  ///   * Per-cell chain order is preserved link by link: FindCandidate's
  ///     first-match scan, and with it every sampling decision, is
  ///     bit-identical to the uncompacted table's.
  ///   * All externally held slot indices and PointViews are invalidated;
  ///     callers must not hold either across a call.
  ///
  /// Called after refilters/expiry waves that kill many slots: repacking
  /// restores the arena density the batched distance kernels
  /// (geom/distance_kernels.h) rely on, and drops the dead slot columns'
  /// footprint. tests/rep_table_compact_test.cc pins the invariants.
  void Compact();

  /// Compacts when at least half of the slot columns are dead (and the
  /// table is big enough for churn to matter). Returns whether it ran.
  /// The ≥50% trigger means compaction work is amortized O(1) per
  /// removal. Refilter() calls this after its removal sweep.
  bool MaybeCompact();

  /// Prefetches the CellIndex bucket of `key` (see CellIndex::Prefetch).
  void PrefetchCell(uint64_t key) const { index_.Prefetch(key); }

  /// True when the cell index is populated enough that a cold bucket
  /// load is plausible (cache-resident small tables gain nothing, and
  /// the batch paths pay a CellKeyOf per issued prefetch).
  bool PrefetchPays() const { return index_.live() >= kPrefetchMinCells; }

  /// Cell-count gate for PrefetchPays: ~4k live cells ≈ the index plus
  /// its rep columns no longer fit in a typical L2.
  static constexpr size_t kPrefetchMinCells = 4096;

  /// Number of live representatives.
  size_t live() const { return live_; }

  /// Upper bound over slot indices (iterate 0..slot_count() and skip
  /// !IsLive(slot)).
  size_t slot_count() const { return flags_.size(); }

  bool IsLive(uint32_t slot) const { return flags_[slot] & kLiveFlag; }

  // ------------------------------------------------------------- columns

  uint64_t id(uint32_t slot) const { return id_[slot]; }
  uint64_t stream_index(uint32_t slot) const { return stream_index_[slot]; }
  void set_stream_index(uint32_t slot, uint64_t v) {
    stream_index_[slot] = v;
    dirty_epoch_[slot] = ckpt_seq_;
  }
  uint64_t cell_key(uint32_t slot) const { return cell_key_[slot]; }
  bool accepted(uint32_t slot) const { return flags_[slot] & kAcceptedFlag; }
  void set_accepted(uint32_t slot, bool accepted);

  PointView point(uint32_t slot) const { return store_.View(point_[slot]); }
  /// Overwrites the rep's coordinates in place (same dimension).
  void set_point(uint32_t slot, PointView p) {
    store_.Write(point_[slot], p);
    dirty_epoch_[slot] = ckpt_seq_;
    ++generation_;
  }

  /// The rep point's *arena* slot index — the coordinate handle the
  /// batched distance kernels take (kept as a column so the gather loop
  /// never divides by dim).
  uint32_t point_arena_slot(uint32_t slot) const {
    return point_arena_[slot];
  }

  /// Moves the rep to a different cell chain (AbsorbFrom's
  /// earlier-representative-wins rewrite).
  void RekeyCell(uint32_t slot, uint64_t new_cell_key);

  // ------------------------------------------- reservoir-variant columns

  PointView sample_point(uint32_t slot) const {
    return store_.View(sample_point_[slot]);
  }
  void set_sample_point(uint32_t slot, PointView p) {
    store_.Write(sample_point_[slot], p);
    dirty_epoch_[slot] = ckpt_seq_;
  }
  uint64_t sample_index(uint32_t slot) const { return sample_index_[slot]; }
  void set_sample_index(uint32_t slot, uint64_t v) {
    sample_index_[slot] = v;
    dirty_epoch_[slot] = ckpt_seq_;
  }
  uint64_t group_count(uint32_t slot) const { return group_count_[slot]; }
  void set_group_count(uint32_t slot, uint64_t v) {
    group_count_[slot] = v;
    dirty_epoch_[slot] = ckpt_seq_;
  }

  // -------------------------------------------------------- cell chains

  /// First slot of `key`'s chain (kNpos if the cell holds no rep).
  uint32_t CellHead(uint64_t key) const { return index_.Find(key); }

  /// Next slot in the same cell's chain (kNpos at the end).
  uint32_t NextInCell(uint32_t slot) const { return next_in_cell_[slot]; }

  /// The underlying arena (introspection / space accounting).
  const PointStore& store() const { return store_; }

  /// \brief Structure generation: bumped by every mutation that can change
  /// what a probe over the table observes — Add, Remove, RekeyCell,
  /// Compact, set_point.
  ///
  /// The duplicate-suppression front-end (core/dup_filter.h) records this
  /// value with each cached (cell key → slot) entry and replays only when
  /// it still matches, so cached slots never dangle across refilters or
  /// compaction repacks. Reservoir-column setters (set_sample_point etc.)
  /// deliberately do NOT bump: probes never read those columns, and the
  /// replayed duplicate-loss path re-draws the reservoir coin itself.
  /// Monotone (never reset), so stale entries can never collide back.
  uint64_t generation() const { return generation_; }

  // -------------------------------------------------- checkpoint support

  /// Starts a new checkpoint epoch: a slot reports SlotDirty() only when
  /// its record content was mutated after the most recent call. Before
  /// the first call every live slot is dirty, so a delta cut with no
  /// prior checkpoint degenerates to a full serialization. O(1).
  void MarkCheckpoint() { ++ckpt_seq_; }

  /// Whether `slot`'s record content changed since MarkCheckpoint().
  bool SlotDirty(uint32_t slot) const {
    return dirty_epoch_[slot] == ckpt_seq_;
  }

  /// Stamps `slot` into the current checkpoint epoch. The table stamps
  /// its own mutations; callers stamp payload mutations the table cannot
  /// see (e.g. query-time reservoir expiry in the owning sampler).
  void MarkSlotDirty(uint32_t slot) { dirty_epoch_[slot] = ckpt_seq_; }

 private:
  enum : uint8_t { kLiveFlag = 1, kAcceptedFlag = 2 };

  void Link(uint32_t slot);
  void Unlink(uint32_t slot);

  size_t dim_;
  bool with_reservoir_;
  PointStore store_;
  CellIndex index_;

  std::vector<uint64_t> id_;
  std::vector<uint64_t> stream_index_;
  std::vector<uint64_t> cell_key_;
  std::vector<PointRef> point_;
  std::vector<uint32_t> point_arena_;  // point_'s arena slot index
  std::vector<uint8_t> flags_;
  std::vector<uint32_t> next_in_cell_;

  std::vector<PointRef> sample_point_;
  std::vector<uint64_t> sample_index_;
  std::vector<uint64_t> group_count_;

  // Checkpoint-epoch stamp per slot: dirty ⇔ stamp equals ckpt_seq_.
  // Epochs travel with their slots under Compact (the record content is
  // untouched by compaction, so cleanliness is preserved).
  std::vector<uint64_t> dirty_epoch_;
  uint64_t ckpt_seq_ = 0;

  std::vector<uint32_t> free_slots_;
  size_t live_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace rl0

#endif  // RL0_CORE_REP_TABLE_H_
