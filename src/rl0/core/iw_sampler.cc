#include "rl0/core/iw_sampler.h"

#include <algorithm>
#include <limits>

#include "rl0/util/check.h"

namespace rl0 {

namespace {
constexpr uint64_t kNoRep = std::numeric_limits<uint64_t>::max();
// Scalar bookkeeping charged once per sampler (level, counters, caps, ...).
constexpr size_t kSamplerScalarWords = 8;
}  // namespace

Result<RobustL0SamplerIW> RobustL0SamplerIW::Create(
    const SamplerOptions& options) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  return RobustL0SamplerIW(options, options.GridSide());
}

RobustL0SamplerIW::RobustL0SamplerIW(const SamplerOptions& options,
                                     double side)
    : options_(options),
      grid_(options.dim, side, SplitMix64(options.seed ^ 0x6772696400ULL),
            options.metric),
      hasher_(options.hash_family, SplitMix64(options.seed ^ 0x68617368ULL),
              options.kwise_k),
      reservoir_rng_(SplitMix64(options.seed ^ 0x7265737600ULL)),
      accept_cap_(options.EffectiveAcceptCap()) {
  meter_.Add(kSamplerScalarWords);
}

size_t RobustL0SamplerIW::RepWords() const {
  size_t words = PointWords(options_.dim) + 2 * kMapEntryWords;
  if (options_.random_representative) words += PointWords(options_.dim);
  return words;
}

uint64_t RobustL0SamplerIW::FindCandidate(
    const Point& p, const std::vector<uint64_t>& adj_keys) const {
  // A representative u with d(u, p) ≤ α satisfies d(p, cell(u)) ≤ α, so
  // cell(u) is one of the adj(p) keys: the scan below is complete.
  for (uint64_t key : adj_keys) {
    auto [it, end] = cell_to_rep_.equal_range(key);
    for (; it != end; ++it) {
      const Rep& rep = reps_.at(it->second);
      if (MetricWithinDistance(rep.point, p, options_.alpha,
                               options_.metric)) {
        return it->second;
      }
    }
  }
  return kNoRep;
}

void RobustL0SamplerIW::Insert(const Point& p) {
  RL0_DCHECK(p.dim() == options_.dim);
  const uint64_t stream_index = points_processed_++;

  grid_.AdjacentCells(p, options_.alpha, &adj_scratch_);
  const uint64_t candidate = FindCandidate(p, adj_scratch_);
  if (candidate != kNoRep) {
    // p is not the first point of its (candidate) group: skip it, but keep
    // the reservoir of the group fresh (Section 2.3 variant).
    if (options_.random_representative) {
      Rep& rep = reps_.at(candidate);
      ++rep.group_count;
      if (reservoir_rng_.NextBounded(rep.group_count) == 0) {
        rep.sample_point = p;
        rep.sample_index = stream_index;
      }
    }
    return;
  }

  // p is the first point of a group not yet judged.
  const uint64_t cell_key = grid_.CellKeyOf(p);
  const bool accepted = hasher_.SampledAtLevel(cell_key, level_);
  bool rejected = false;
  if (!accepted) {
    for (uint64_t key : adj_scratch_) {
      if (hasher_.SampledAtLevel(key, level_)) {
        rejected = true;
        break;
      }
    }
    if (!rejected) return;  // Group is ignored: no sampled cell nearby.
  }

  const uint64_t id = next_rep_id_++;
  Rep rep;
  rep.point = p;
  rep.stream_index = stream_index;
  rep.cell_key = cell_key;
  rep.accepted = accepted;
  rep.sample_point = p;
  rep.sample_index = stream_index;
  rep.group_count = 1;
  reps_.emplace(id, std::move(rep));
  cell_to_rep_.emplace(cell_key, id);
  if (accepted) ++accept_size_;
  meter_.Add(RepWords());

  // Halve the sample rate until the accept cap is restored (the paper
  // doubles once per arrival; a loop maintains the invariant strictly and
  // coincides with the paper's behaviour whenever one halving suffices).
  while (accept_size_ > accept_cap_ && level_ < CellHasher::kMaxLevel) {
    ++level_;
    Refilter();
  }
}

void RobustL0SamplerIW::Refilter() {
  // Nestedness (Fact 1(b)): sampled cells at the new level are a subset of
  // those at the previous level, so representatives only move
  // accepted -> {accepted, rejected, dropped} or rejected -> {rejected,
  // dropped}; no representative is (re)admitted.
  std::vector<uint64_t> to_remove;
  std::vector<uint64_t> adj;
  for (auto& [id, rep] : reps_) {
    if (hasher_.SampledAtLevel(rep.cell_key, level_)) {
      RL0_DCHECK(rep.accepted);
      continue;
    }
    grid_.AdjacentCells(rep.point, options_.alpha, &adj);
    bool near_sampled = false;
    for (uint64_t key : adj) {
      if (hasher_.SampledAtLevel(key, level_)) {
        near_sampled = true;
        break;
      }
    }
    if (near_sampled) {
      if (rep.accepted) {
        rep.accepted = false;
        --accept_size_;
      }
    } else {
      to_remove.push_back(id);
    }
  }
  for (uint64_t id : to_remove) {
    auto it = reps_.find(id);
    RL0_DCHECK(it != reps_.end());
    if (it->second.accepted) --accept_size_;
    auto [mit, mend] = cell_to_rep_.equal_range(it->second.cell_key);
    for (; mit != mend; ++mit) {
      if (mit->second == id) {
        cell_to_rep_.erase(mit);
        break;
      }
    }
    reps_.erase(it);
    meter_.Remove(RepWords());
  }
}

std::vector<uint64_t> RobustL0SamplerIW::SortedAcceptedIds() const {
  // Deterministic (content-defined) order: queries answer identically for
  // identical state, independent of hash-map iteration order — this is
  // what makes snapshot/restore behaviour reproducible.
  std::vector<uint64_t> ids;
  ids.reserve(accept_size_);
  for (const auto& [id, rep] : reps_) {
    if (rep.accepted) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::optional<SampleItem> RobustL0SamplerIW::Sample(Xoshiro256pp* rng) const {
  if (accept_size_ == 0) return std::nullopt;
  const std::vector<uint64_t> ids = SortedAcceptedIds();
  RL0_DCHECK(ids.size() == accept_size_);
  const Rep& rep = reps_.at(ids[rng->NextBounded(ids.size())]);
  if (options_.random_representative) {
    return SampleItem{rep.sample_point, rep.sample_index};
  }
  return SampleItem{rep.point, rep.stream_index};
}

std::optional<SampleItem> RobustL0SamplerIW::Sample(uint64_t query_seed) const {
  Xoshiro256pp rng(query_seed);
  return Sample(&rng);
}

Result<std::vector<SampleItem>> RobustL0SamplerIW::SampleK(
    size_t count, Xoshiro256pp* rng) const {
  if (count > accept_size_) {
    return Status::FailedPrecondition(
        "fewer accepted groups than requested samples");
  }
  std::vector<uint64_t> accepted = SortedAcceptedIds();
  // Partial Fisher–Yates: the first `count` entries become a uniform
  // without-replacement sample.
  std::vector<SampleItem> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t j = i + rng->NextBounded(accepted.size() - i);
    std::swap(accepted[i], accepted[j]);
    const Rep& rep = reps_.at(accepted[i]);
    if (options_.random_representative) {
      out.push_back(SampleItem{rep.sample_point, rep.sample_index});
    } else {
      out.push_back(SampleItem{rep.point, rep.stream_index});
    }
  }
  return out;
}

Status RobustL0SamplerIW::AbsorbFrom(const RobustL0SamplerIW& other) {
  const SamplerOptions& a = options_;
  const SamplerOptions& b = other.options_;
  if (a.dim != b.dim || a.alpha != b.alpha || a.metric != b.metric ||
      a.seed != b.seed || a.hash_family != b.hash_family ||
      a.side_mode != b.side_mode || a.custom_side != b.custom_side ||
      a.kwise_k != b.kwise_k) {
    return Status::InvalidArgument(
        "AbsorbFrom requires identical sampler options (shared grid/hash)");
  }

  // Raise this sampler to the coarser of the two rates first; nestedness
  // makes the refilter consistent with all past decisions.
  if (other.level_ > level_) {
    level_ = other.level_;
    Refilter();
  }

  // Re-judge the other partition's representatives at the unified rate and
  // install the ones that are not already covered. Processing in stream
  // order keeps the earlier-representative-wins rule deterministic.
  std::vector<const Rep*> incoming;
  incoming.reserve(other.reps_.size());
  for (const auto& [id, rep] : other.reps_) incoming.push_back(&rep);
  std::sort(incoming.begin(), incoming.end(),
            [](const Rep* x, const Rep* y) {
              return x->stream_index < y->stream_index;
            });

  std::vector<uint64_t> adj;
  for (const Rep* rep : incoming) {
    const bool accepted = hasher_.SampledAtLevel(rep->cell_key, level_);
    bool rejected = false;
    if (!accepted) {
      grid_.AdjacentCells(rep->point, options_.alpha, &adj);
      for (uint64_t key : adj) {
        if (hasher_.SampledAtLevel(key, level_)) {
          rejected = true;
          break;
        }
      }
      if (!rejected) continue;  // dropped at the unified rate
    }
    grid_.AdjacentCells(rep->point, options_.alpha, &adj_scratch_);
    const uint64_t existing = FindCandidate(rep->point, adj_scratch_);
    if (existing != kNoRep) {
      Rep& ours = reps_.at(existing);
      // Same group seen by both partitions: the earlier representative
      // wins; pool the reservoir state so the kept entry still samples
      // uniformly over the union of observed group points.
      if (options_.random_representative) {
        const uint64_t total = ours.group_count + rep->group_count;
        if (reservoir_rng_.NextBounded(total) < rep->group_count) {
          ours.sample_point = rep->sample_point;
          ours.sample_index = rep->sample_index;
        }
        ours.group_count = total;
      }
      if (rep->stream_index < ours.stream_index) {
        const bool was_accepted = ours.accepted;
        ours.point = rep->point;
        ours.stream_index = rep->stream_index;
        // Re-index the cell and re-judge acceptance for the new rep point.
        auto [mit, mend] = cell_to_rep_.equal_range(ours.cell_key);
        for (; mit != mend; ++mit) {
          if (mit->second == existing) {
            cell_to_rep_.erase(mit);
            break;
          }
        }
        ours.cell_key = rep->cell_key;
        cell_to_rep_.emplace(ours.cell_key, existing);
        ours.accepted = hasher_.SampledAtLevel(ours.cell_key, level_);
        if (was_accepted != ours.accepted) {
          accept_size_ += ours.accepted ? 1 : -1;
        }
        if (!ours.accepted) {
          // Keep Definition 2.2: the entry stays only if some cell within
          // α of the (new) representative is sampled; otherwise the group
          // is ignored at this rate and the entry is dropped.
          grid_.AdjacentCells(ours.point, options_.alpha, &adj);
          bool near_sampled = false;
          for (uint64_t key : adj) {
            near_sampled =
                near_sampled || hasher_.SampledAtLevel(key, level_);
          }
          if (!near_sampled) {
            auto [rit, rend] = cell_to_rep_.equal_range(ours.cell_key);
            for (; rit != rend; ++rit) {
              if (rit->second == existing) {
                cell_to_rep_.erase(rit);
                break;
              }
            }
            reps_.erase(existing);
            meter_.Remove(RepWords());
          }
        }
      }
      continue;
    }
    const uint64_t id = next_rep_id_++;
    Rep copy = *rep;
    copy.accepted = accepted;
    cell_to_rep_.emplace(copy.cell_key, id);
    if (accepted) ++accept_size_;
    reps_.emplace(id, std::move(copy));
    meter_.Add(RepWords());
  }

  points_processed_ += other.points_processed_;
  while (accept_size_ > accept_cap_ && level_ < CellHasher::kMaxLevel) {
    ++level_;
    Refilter();
  }
  return Status::OK();
}

std::vector<SampleItem> RobustL0SamplerIW::AcceptedRepresentatives() const {
  std::vector<SampleItem> out;
  for (const auto& [id, rep] : reps_) {
    if (rep.accepted) out.push_back(SampleItem{rep.point, rep.stream_index});
  }
  std::sort(out.begin(), out.end(),
            [](const SampleItem& a, const SampleItem& b) {
              return a.stream_index < b.stream_index;
            });
  return out;
}

std::vector<SampleItem> RobustL0SamplerIW::RejectedRepresentatives() const {
  std::vector<SampleItem> out;
  for (const auto& [id, rep] : reps_) {
    if (!rep.accepted) out.push_back(SampleItem{rep.point, rep.stream_index});
  }
  std::sort(out.begin(), out.end(),
            [](const SampleItem& a, const SampleItem& b) {
              return a.stream_index < b.stream_index;
            });
  return out;
}

}  // namespace rl0
