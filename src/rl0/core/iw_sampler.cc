#include "rl0/core/iw_sampler.h"

#include <algorithm>

#include "rl0/util/check.h"

namespace rl0 {

namespace {
// Scalar bookkeeping charged once per sampler (level, counters, caps, ...).
constexpr size_t kSamplerScalarWords = 8;
}  // namespace

Result<RobustL0SamplerIW> RobustL0SamplerIW::Create(
    const SamplerOptions& options) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  return RobustL0SamplerIW(options, options.GridSide());
}

RobustL0SamplerIW::RobustL0SamplerIW(const SamplerOptions& options,
                                     double side)
    : options_(options),
      grid_(options.dim, side, SplitMix64(options.seed ^ 0x6772696400ULL),
            options.metric),
      hasher_(options.hash_family, SplitMix64(options.seed ^ 0x68617368ULL),
              options.kwise_k),
      reservoir_rng_(SplitMix64(options.seed ^ 0x7265737600ULL)),
      accept_cap_(options.EffectiveAcceptCap()),
      reps_(options.dim, options.random_representative),
      dup_filter_(options.dim, /*payload_len=*/1, options.dup_filter) {
  meter_.Add(kSamplerScalarWords);
}

size_t RobustL0SamplerIW::RepWords() const {
  size_t words = RepArenaWords(options_.dim);
  if (options_.random_representative) {
    words += ReservoirRepExtraWords(options_.dim);
  }
  return words;
}

uint32_t RobustL0SamplerIW::FindCandidate(PointView p,
                                          const AdjKeyVec& adj_keys) const {
  // A representative u with d(u, p) ≤ α satisfies d(p, cell(u)) ≤ α, so
  // cell(u) is one of the adj(p) keys: the scan below is complete.
  // Per bucket, the chain is gathered into a flat slot list first and the
  // batched kernel probes it four lanes at a time (geom/
  // distance_kernels.h): the pointer-chasing touches only the slot
  // columns, the arithmetic streams over the arena. Buckets holding a
  // single rep — the common case at low dimension — keep the direct
  // scalar check. Probe order, and with it every decision, matches the
  // original per-rep walk exactly.
  for (uint64_t key : adj_keys) {
    const uint32_t head = reps_.CellHead(key);
    if (head == RepTable::kNpos) continue;
    const uint32_t second = reps_.NextInCell(head);
    if (second == RepTable::kNpos) {
      if (MetricWithinDistance(reps_.point(head), p, options_.alpha,
                               options_.metric)) {
        return head;
      }
      continue;
    }
    cand_slots_.clear();
    cand_arena_.clear();
    for (uint32_t slot = head; slot != RepTable::kNpos;
         slot = reps_.NextInCell(slot)) {
      cand_slots_.push_back(slot);
      cand_arena_.push_back(reps_.point_arena_slot(slot));
    }
    const size_t hit =
        FindFirstWithin(reps_.store(), p, cand_arena_.data(),
                        cand_arena_.size(), options_.metric, options_.alpha);
    if (hit != Bitmask::npos) return cand_slots_[hit];
  }
  return RepTable::kNpos;
}

void RobustL0SamplerIW::Insert(const Point& p) {
  InsertView(p, points_processed_);
  ++points_processed_;
}

void RobustL0SamplerIW::InsertBatch(Span<const Point> points) {
  const size_t n = points.size();
  // Decided once per chunk, outside the loop: issuing the prefetch costs
  // a CellKeyOf per element, which only pays once the index has outgrown
  // cache (PrefetchPays) — and keeping the hint out of the common loop
  // keeps that loop's code identical to the plain path.
  if (reps_.PrefetchPays()) {
    for (size_t i = 0; i < n; ++i) {
      // Overlap the next element's CellIndex bucket load with this
      // element's distance work (the probe's first dependent memory
      // read).
      if (i + 1 < n) reps_.PrefetchCell(grid_.CellKeyOf(points[i + 1]));
      InsertView(points[i], points_processed_);
      ++points_processed_;
    }
    return;
  }
  for (const Point& p : points) {
    InsertView(p, points_processed_);
    ++points_processed_;
  }
}

void RobustL0SamplerIW::InsertStrided(Span<const Point> points, size_t start,
                                      size_t stride, uint64_t index_base) {
  RL0_CHECK(stride >= 1);
  const size_t n = points.size();
  if (reps_.PrefetchPays()) {
    for (size_t i = start; i < n; i += stride) {
      if (i + stride < n) {
        reps_.PrefetchCell(grid_.CellKeyOf(points[i + stride]));
      }
      InsertView(points[i], index_base + static_cast<uint64_t>(i));
      ++points_processed_;
    }
    return;
  }
  for (size_t i = start; i < n; i += stride) {
    InsertView(points[i], index_base + static_cast<uint64_t>(i));
    ++points_processed_;
  }
}

void RobustL0SamplerIW::DuplicateLoss(uint32_t candidate, PointView p,
                                      uint64_t stream_index) {
  // p is not the first point of its (candidate) group: skip it, but keep
  // the reservoir of the group fresh (Section 2.3 variant).
  if (options_.random_representative) {
    const uint64_t count = reps_.group_count(candidate) + 1;
    reps_.set_group_count(candidate, count);
    if (reservoir_rng_.NextBounded(count) == 0) {
      reps_.set_sample_point(candidate, p);
      reps_.set_sample_index(candidate, stream_index);
    }
  }
}

void RobustL0SamplerIW::InsertView(PointView p, uint64_t stream_index) {
  RL0_DCHECK(p.dim() == options_.dim);

  // Duplicate-suppression front-end: an exact repeat of a recently probed
  // arrival, with the rep table structurally unchanged since (epoch ==
  // generation), must resolve to the same candidate the full probe found —
  // re-verify it with the real kernel, then take the identical
  // duplicate-loss path. Anything else falls through to the full probe.
  if (dup_filter_.enabled()) {
    const DupFilter::View hit = dup_filter_.Lookup(grid_.CellKeyOf(p), p);
    if (hit.found && hit.epoch == reps_.generation()) {
      const uint32_t candidate = hit.payload[0];
      RL0_DCHECK(reps_.IsLive(candidate));
      const uint32_t arena = reps_.point_arena_slot(candidate);
      if (FindFirstWithin(reps_.store(), p, &arena, 1, options_.metric,
                          options_.alpha) == 0) {
        dup_filter_.CountHit();
        DuplicateLoss(candidate, p, stream_index);
        return;
      }
    }
    dup_filter_.CountMiss();
  }

  // One fused pass: the adjacency search also yields cell(p)'s key (the
  // zero-offset fold), sparing the separate CellKeyOf quantize-and-fold
  // on the new-representative path.
  const uint64_t cell_key =
      grid_.AdjacentCellsWithBase(p, options_.alpha, &adj_scratch_);
  RL0_DCHECK(!dup_filter_.enabled() || grid_.CellKeyOf(p) == cell_key);
  const uint32_t candidate = FindCandidate(p, adj_scratch_);
  if (candidate != RepTable::kNpos) {
    if (dup_filter_.enabled()) {
      dup_filter_.Store(cell_key, reps_.generation(), p)[0] = candidate;
    }
    DuplicateLoss(candidate, p, stream_index);
    return;
  }

  // p is the first point of a group not yet judged.
  const bool accepted = hasher_.SampledAtLevel(cell_key, level_);
  bool rejected = false;
  if (!accepted) {
    for (uint64_t key : adj_scratch_) {
      if (hasher_.SampledAtLevel(key, level_)) {
        rejected = true;
        break;
      }
    }
    if (!rejected) return;  // Group is ignored: no sampled cell nearby.
  }

  const uint32_t slot =
      reps_.Add(p, next_rep_id_++, stream_index, cell_key, accepted);
  if (accepted) ++accept_size_;
  meter_.Add(RepWords());
  // Record before the refilter loop: a refilter (or its compaction) would
  // renumber/remove slots after bumping the generation, which correctly
  // invalidates this entry; recording afterwards could pair a renumbered
  // slot with the post-refilter generation.
  if (dup_filter_.enabled()) {
    dup_filter_.Store(cell_key, reps_.generation(), p)[0] = slot;
  }

  // Halve the sample rate until the accept cap is restored (the paper
  // doubles once per arrival; a loop maintains the invariant strictly and
  // coincides with the paper's behaviour whenever one halving suffices).
  while (accept_size_ > accept_cap_ && level_ < CellHasher::kMaxLevel) {
    ++level_;
    Refilter();
  }
}

void RobustL0SamplerIW::Refilter() {
  // Nestedness (Fact 1(b)): sampled cells at the new level are a subset of
  // those at the previous level, so representatives only move
  // accepted -> {accepted, rejected, dropped} or rejected -> {rejected,
  // dropped}; no representative is (re)admitted.
  std::vector<uint32_t> to_remove;
  AdjKeyVec adj;
  const size_t slots = reps_.slot_count();
  for (uint32_t slot = 0; slot < slots; ++slot) {
    if (!reps_.IsLive(slot)) continue;
    if (hasher_.SampledAtLevel(reps_.cell_key(slot), level_)) {
      RL0_DCHECK(reps_.accepted(slot));
      continue;
    }
    grid_.AdjacentCells(reps_.point(slot), options_.alpha, &adj);
    bool near_sampled = false;
    for (uint64_t key : adj) {
      if (hasher_.SampledAtLevel(key, level_)) {
        near_sampled = true;
        break;
      }
    }
    if (near_sampled) {
      if (reps_.accepted(slot)) {
        reps_.set_accepted(slot, false);
        --accept_size_;
      }
    } else {
      to_remove.push_back(slot);
    }
  }
  for (uint32_t slot : to_remove) {
    if (reps_.accepted(slot)) --accept_size_;
    reps_.Remove(slot);
    meter_.Remove(RepWords());
  }
  // A halving typically kills about half the representatives; when it
  // does, repack the slot columns and the arena so the batched kernel
  // keeps streaming over dense coordinates. No caller holds slot indices
  // across Refilter (compaction renumbers them).
  reps_.MaybeCompact();
}

std::vector<uint32_t> RobustL0SamplerIW::SortedAcceptedSlots() const {
  // Deterministic (content-defined) order: queries answer identically for
  // identical state, independent of slot recycling — this is what makes
  // snapshot/restore behaviour reproducible.
  std::vector<uint32_t> slots;
  slots.reserve(accept_size_);
  const size_t n = reps_.slot_count();
  for (uint32_t slot = 0; slot < n; ++slot) {
    if (reps_.IsLive(slot) && reps_.accepted(slot)) slots.push_back(slot);
  }
  std::sort(slots.begin(), slots.end(), [this](uint32_t a, uint32_t b) {
    return reps_.id(a) < reps_.id(b);
  });
  return slots;
}

std::optional<SampleItem> RobustL0SamplerIW::Sample(Xoshiro256pp* rng) const {
  if (accept_size_ == 0) return std::nullopt;
  const std::vector<uint32_t> slots = SortedAcceptedSlots();
  RL0_DCHECK(slots.size() == accept_size_);
  const uint32_t slot = slots[rng->NextBounded(slots.size())];
  if (options_.random_representative) {
    return SampleItem{reps_.sample_point(slot).Materialize(),
                      reps_.sample_index(slot)};
  }
  return SampleItem{reps_.point(slot).Materialize(), reps_.stream_index(slot)};
}

std::optional<SampleItem> RobustL0SamplerIW::Sample(uint64_t query_seed) const {
  Xoshiro256pp rng(query_seed);
  return Sample(&rng);
}

Result<std::vector<SampleItem>> RobustL0SamplerIW::SampleK(
    size_t count, Xoshiro256pp* rng) const {
  if (count > accept_size_) {
    return Status::FailedPrecondition(
        "fewer accepted groups than requested samples");
  }
  std::vector<uint32_t> accepted = SortedAcceptedSlots();
  // Partial Fisher–Yates: the first `count` entries become a uniform
  // without-replacement sample.
  std::vector<SampleItem> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t j = i + rng->NextBounded(accepted.size() - i);
    std::swap(accepted[i], accepted[j]);
    const uint32_t slot = accepted[i];
    if (options_.random_representative) {
      out.push_back(SampleItem{reps_.sample_point(slot).Materialize(),
                               reps_.sample_index(slot)});
    } else {
      out.push_back(SampleItem{reps_.point(slot).Materialize(),
                               reps_.stream_index(slot)});
    }
  }
  return out;
}

Status RobustL0SamplerIW::AbsorbFrom(const RobustL0SamplerIW& other) {
  const SamplerOptions& a = options_;
  const SamplerOptions& b = other.options_;
  if (a.dim != b.dim || a.alpha != b.alpha || a.metric != b.metric ||
      a.seed != b.seed || a.hash_family != b.hash_family ||
      a.side_mode != b.side_mode || a.custom_side != b.custom_side ||
      a.kwise_k != b.kwise_k) {
    return Status::InvalidArgument(
        "AbsorbFrom requires identical sampler options (shared grid/hash)");
  }

  // Raise this sampler to the coarser of the two rates first; nestedness
  // makes the refilter consistent with all past decisions.
  if (other.level_ > level_) {
    level_ = other.level_;
    Refilter();
  }

  // Re-judge the other partition's representatives at the unified rate and
  // install the ones that are not already covered. Processing in stream
  // order keeps the earlier-representative-wins rule deterministic (with
  // ties broken by rep id, for partitions fed by local arrival index).
  std::vector<uint32_t> incoming;
  incoming.reserve(other.reps_.live());
  const size_t other_slots = other.reps_.slot_count();
  for (uint32_t slot = 0; slot < other_slots; ++slot) {
    if (other.reps_.IsLive(slot)) incoming.push_back(slot);
  }
  std::sort(incoming.begin(), incoming.end(),
            [&other](uint32_t x, uint32_t y) {
              const uint64_t sx = other.reps_.stream_index(x);
              const uint64_t sy = other.reps_.stream_index(y);
              if (sx != sy) return sx < sy;
              return other.reps_.id(x) < other.reps_.id(y);
            });

  AdjKeyVec adj;
  for (uint32_t in : incoming) {
    const PointView in_point = other.reps_.point(in);
    const uint64_t in_cell = other.reps_.cell_key(in);
    const uint64_t in_index = other.reps_.stream_index(in);
    // One adjacency search serves both the rate check below and the
    // candidate lookup after it.
    grid_.AdjacentCells(in_point, options_.alpha, &adj_scratch_);
    const bool accepted = hasher_.SampledAtLevel(in_cell, level_);
    bool rejected = false;
    if (!accepted) {
      for (uint64_t key : adj_scratch_) {
        if (hasher_.SampledAtLevel(key, level_)) {
          rejected = true;
          break;
        }
      }
      if (!rejected) continue;  // dropped at the unified rate
    }
    const uint32_t existing = FindCandidate(in_point, adj_scratch_);
    if (existing != RepTable::kNpos) {
      // Same group seen by both partitions: the earlier representative
      // wins; pool the reservoir state so the kept entry still samples
      // uniformly over the union of observed group points.
      if (options_.random_representative) {
        const uint64_t total =
            reps_.group_count(existing) + other.reps_.group_count(in);
        if (reservoir_rng_.NextBounded(total) <
            other.reps_.group_count(in)) {
          reps_.set_sample_point(existing, other.reps_.sample_point(in));
          reps_.set_sample_index(existing, other.reps_.sample_index(in));
        }
        reps_.set_group_count(existing, total);
      }
      if (in_index < reps_.stream_index(existing)) {
        const bool was_accepted = reps_.accepted(existing);
        reps_.set_point(existing, in_point);
        reps_.set_stream_index(existing, in_index);
        // Re-index the cell and re-judge acceptance for the new rep point.
        reps_.RekeyCell(existing, in_cell);
        const bool now_accepted = hasher_.SampledAtLevel(in_cell, level_);
        reps_.set_accepted(existing, now_accepted);
        if (was_accepted != now_accepted) {
          accept_size_ += now_accepted ? 1 : -1;
        }
        if (!now_accepted) {
          // Keep Definition 2.2: the entry stays only if some cell within
          // α of the (new) representative is sampled; otherwise the group
          // is ignored at this rate and the entry is dropped.
          grid_.AdjacentCells(reps_.point(existing), options_.alpha, &adj);
          bool near_sampled = false;
          for (uint64_t key : adj) {
            near_sampled = near_sampled || hasher_.SampledAtLevel(key, level_);
          }
          if (!near_sampled) {
            reps_.Remove(existing);
            meter_.Remove(RepWords());
          }
        }
      }
      continue;
    }
    const uint32_t slot =
        reps_.Add(in_point, next_rep_id_++, in_index, in_cell, accepted);
    if (options_.random_representative) {
      reps_.set_sample_point(slot, other.reps_.sample_point(in));
      reps_.set_sample_index(slot, other.reps_.sample_index(in));
      reps_.set_group_count(slot, other.reps_.group_count(in));
    }
    if (accepted) ++accept_size_;
    meter_.Add(RepWords());
  }

  points_processed_ += other.points_processed_;
  while (accept_size_ > accept_cap_ && level_ < CellHasher::kMaxLevel) {
    ++level_;
    Refilter();
  }
  return Status::OK();
}

std::vector<SampleItem> RobustL0SamplerIW::AcceptedRepresentatives() const {
  std::vector<SampleItem> out;
  const size_t n = reps_.slot_count();
  for (uint32_t slot = 0; slot < n; ++slot) {
    if (!reps_.IsLive(slot) || !reps_.accepted(slot)) continue;
    out.push_back(
        SampleItem{reps_.point(slot).Materialize(), reps_.stream_index(slot)});
  }
  std::sort(out.begin(), out.end(),
            [](const SampleItem& a, const SampleItem& b) {
              return a.stream_index < b.stream_index;
            });
  return out;
}

std::vector<SampleItem> RobustL0SamplerIW::RejectedRepresentatives() const {
  std::vector<SampleItem> out;
  const size_t n = reps_.slot_count();
  for (uint32_t slot = 0; slot < n; ++slot) {
    if (!reps_.IsLive(slot) || reps_.accepted(slot)) continue;
    out.push_back(
        SampleItem{reps_.point(slot).Materialize(), reps_.stream_index(slot)});
  }
  std::sort(out.begin(), out.end(),
            [](const SampleItem& a, const SampleItem& b) {
              return a.stream_index < b.stream_index;
            });
  return out;
}

}  // namespace rl0
