#include "rl0/core/rep_table.h"

#include <cstring>

#include "rl0/util/check.h"

// Same per-function target-attribute scheme as geom/distance_kernels.cc:
// portable baseline ISA, AVX2 bodies gated behind runtime dispatch, and
// RL0_NO_SIMD as the compile-time escape hatch.
#if !defined(RL0_NO_SIMD) && defined(__GNUC__) && \
    (defined(__x86_64__) || defined(__i386__))
#define RL0_CELL_INDEX_X86 1
#include <immintrin.h>
#endif

namespace rl0 {

namespace {
constexpr size_t kInitialBuckets = 16;  // power of two
// Below this many slot columns, compaction churn outweighs the locality
// win; MaybeCompact stays a no-op.
constexpr size_t kCompactMinSlots = 64;

#if RL0_CELL_INDEX_X86
bool CellIndexAvx2Supported() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}
#endif
}  // namespace

const char* CellIndexDispatch() {
#if RL0_CELL_INDEX_X86
  return CellIndexAvx2Supported() ? "avx2" : "scalar";
#else
  return "scalar";
#endif
}

CellIndex::CellIndex()
    : keys_(kInitialBuckets, 0),
      heads_(kInitialBuckets, kNpos),
      states_(kInitialBuckets, kEmpty),
      shift_(64 - 4) {}

uint32_t CellIndex::FindScalar(uint64_t key) const {
  const size_t mask = keys_.size() - 1;
  size_t i = BucketFor(key);
  for (;;) {
    if (states_[i] == kEmpty) return kNpos;
    if (states_[i] == kFull && keys_[i] == key) return heads_[i];
    i = (i + 1) & mask;
  }
}

#if RL0_CELL_INDEX_X86
// Compares four consecutive buckets per step. The scalar probe stops at
// the first position (in probe order) that is empty, or full with a
// matching key; here that position is the lowest set bit of
// `emptym | (eqm & fullm)` within the block, so the returned verdict —
// and the set of positions that influence it — is identical. Blocks may
// read a few buckets past the stop position; those reads never feed the
// result. The tail before the array end falls back to single scalar
// steps so no load crosses the wrap-around.
__attribute__((target("avx2"))) uint32_t CellIndex::FindAvx2(
    uint64_t key) const {
  const size_t size = keys_.size();
  const size_t mask = size - 1;
  const __m256i needle =
      _mm256_set1_epi64x(static_cast<long long>(key));
  size_t i = BucketFor(key);
  for (;;) {
    if (i + 4 <= size) {
      const __m256i k = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&keys_[i]));
      const unsigned eqm = static_cast<unsigned>(_mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpeq_epi64(k, needle))));
      uint32_t s;
      std::memcpy(&s, &states_[i], sizeof(s));
      unsigned emptym = 0;
      unsigned fullm = 0;
      for (int j = 0; j < 4; ++j) {
        const uint32_t b = (s >> (8 * j)) & 0xffu;
        emptym |= (b == kEmpty ? 1u : 0u) << j;
        fullm |= (b == kFull ? 1u : 0u) << j;
      }
      const unsigned stop = emptym | (eqm & fullm);
      if (stop != 0) {
        const unsigned j = static_cast<unsigned>(__builtin_ctz(stop));
        if (emptym & (1u << j)) return kNpos;
        return heads_[i + j];
      }
      i = (i + 4) & mask;
    } else {
      if (states_[i] == kEmpty) return kNpos;
      if (states_[i] == kFull && keys_[i] == key) return heads_[i];
      i = (i + 1) & mask;
    }
  }
}
#endif  // RL0_CELL_INDEX_X86

uint32_t CellIndex::Find(uint64_t key) const {
#if RL0_CELL_INDEX_X86
  if (CellIndexAvx2Supported()) return FindAvx2(key);
#endif
  return FindScalar(key);
}

void CellIndex::SetHead(uint64_t key, uint32_t head) {
  (void)Upsert(key, head);
}

uint32_t CellIndex::Upsert(uint64_t key, uint32_t head) {
  RL0_DCHECK(head != kNpos);
  if ((used_ + 1) * 10 >= keys_.size() * 7) Grow();
  const size_t mask = keys_.size() - 1;
  size_t i = BucketFor(key);
  size_t insert_at = keys_.size();  // first tombstone seen, if any
  for (;;) {
    if (states_[i] == kFull && keys_[i] == key) {
      const uint32_t prev = heads_[i];
      heads_[i] = head;
      return prev;
    }
    if (states_[i] == kTombstone && insert_at == keys_.size()) insert_at = i;
    if (states_[i] == kEmpty) {
      if (insert_at == keys_.size()) {
        insert_at = i;
        ++used_;  // consuming a fresh empty bucket
      }
      keys_[insert_at] = key;
      heads_[insert_at] = head;
      states_[insert_at] = kFull;
      ++live_;
      return kNpos;
    }
    i = (i + 1) & mask;
  }
}

void CellIndex::Erase(uint64_t key) {
  const size_t mask = keys_.size() - 1;
  size_t i = BucketFor(key);
  for (;;) {
    if (states_[i] == kEmpty) return;
    if (states_[i] == kFull && keys_[i] == key) {
      states_[i] = kTombstone;
      --live_;
      return;
    }
    i = (i + 1) & mask;
  }
}

void CellIndex::Grow() {
  // The 70% trigger counts tombstones; under heavy rep churn (refilters,
  // window expiry) most of `used_` can be dead. Double only when live
  // keys genuinely crowd the table (≥ 35%); otherwise rehash at the same
  // size to clear tombstones, so the bucket array tracks the *live*
  // population — the bound kCellIndexEntryWords models — not the
  // cumulative insertion count.
  std::vector<uint64_t> old_keys = std::move(keys_);
  std::vector<uint32_t> old_heads = std::move(heads_);
  std::vector<uint8_t> old_states = std::move(states_);
  const bool double_size = (live_ + 1) * 20 >= old_keys.size() * 7;
  const size_t new_size = double_size ? old_keys.size() * 2 : old_keys.size();
  keys_.assign(new_size, 0);
  heads_.assign(new_size, kNpos);
  states_.assign(new_size, kEmpty);
  if (double_size) --shift_;
  live_ = 0;
  used_ = 0;
  const size_t mask = new_size - 1;
  for (size_t b = 0; b < old_keys.size(); ++b) {
    if (old_states[b] != kFull) continue;
    size_t i = BucketFor(old_keys[b]);
    while (states_[i] == kFull) i = (i + 1) & mask;
    keys_[i] = old_keys[b];
    heads_[i] = old_heads[b];
    states_[i] = kFull;
    ++live_;
    ++used_;
  }
}

RepTable::RepTable(size_t dim, bool with_reservoir)
    : dim_(dim), with_reservoir_(with_reservoir), store_(dim) {}

uint32_t RepTable::Add(PointView point, uint64_t id, uint64_t stream_index,
                       uint64_t cell_key, bool accepted) {
  RL0_DCHECK(point.dim() == dim_);
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    point_[slot] = store_.Add(point);
    if (with_reservoir_) sample_point_[slot] = store_.Add(point);
  } else {
    RL0_CHECK(flags_.size() < kNpos);
    slot = static_cast<uint32_t>(flags_.size());
    id_.push_back(0);
    stream_index_.push_back(0);
    cell_key_.push_back(0);
    point_.push_back(store_.Add(point));
    point_arena_.push_back(0);
    flags_.push_back(0);
    next_in_cell_.push_back(kNpos);
    dirty_epoch_.push_back(0);
    if (with_reservoir_) {
      sample_point_.push_back(store_.Add(point));
      sample_index_.push_back(0);
      group_count_.push_back(0);
    }
  }
  point_arena_[slot] = store_.SlotIndexOf(point_[slot]);
  id_[slot] = id;
  stream_index_[slot] = stream_index;
  cell_key_[slot] = cell_key;
  flags_[slot] = kLiveFlag | (accepted ? kAcceptedFlag : 0);
  if (with_reservoir_) {
    sample_index_[slot] = stream_index;
    group_count_[slot] = 1;
  }
  dirty_epoch_[slot] = ckpt_seq_;
  Link(slot);
  ++live_;
  ++generation_;
  return slot;
}

void RepTable::Remove(uint32_t slot) {
  RL0_DCHECK(IsLive(slot));
  Unlink(slot);
  store_.Release(point_[slot]);
  if (with_reservoir_) store_.Release(sample_point_[slot]);
  flags_[slot] = 0;
  free_slots_.push_back(slot);
  --live_;
  ++generation_;
}

void RepTable::set_accepted(uint32_t slot, bool accepted) {
  if (accepted) {
    flags_[slot] |= kAcceptedFlag;
  } else {
    flags_[slot] &= static_cast<uint8_t>(~kAcceptedFlag);
  }
  dirty_epoch_[slot] = ckpt_seq_;
}

bool RepTable::MaybeCompact() {
  if (flags_.size() < kCompactMinSlots) return false;
  if (live_ * 2 > flags_.size()) return false;
  Compact();
  return true;
}

void RepTable::Compact() {
  const size_t slots = flags_.size();
  if (live_ == slots) return;  // dense already (free list is empty too)

  // Monotone old→new slot map: live slots keep their relative order, so
  // slot-order iterations (queries, snapshot byte streams, Refilter
  // scans) are invariant under compaction.
  std::vector<uint32_t> map(slots, kNpos);
  uint32_t packed_count = 0;
  for (uint32_t old = 0; old < slots; ++old) {
    if (IsLive(old)) map[old] = packed_count++;
  }

  // Capture the cell heads before the slot surgery; chain structure moves
  // over link by link through the remapped next_in_cell_ column, so each
  // cell's scan order — and with it FindCandidate's first match — is
  // untouched.
  std::vector<std::pair<uint64_t, uint32_t>> heads;
  heads.reserve(index_.live());
  index_.ForEach([&](uint64_t key, uint32_t head) {
    heads.emplace_back(key, map[head]);
  });

  // Repack the arena in new slot order: after heavy refilter churn the
  // live coordinates are scattered across free-list holes; the batched
  // kernels stream much better over the re-densified buffer.
  PointStore packed(dim_);
  for (uint32_t old = 0; old < slots; ++old) {
    if (!IsLive(old)) continue;
    // map[old] ≤ old always, so ascending in-place moves never clobber
    // an entry that is still to be read.
    const uint32_t slot = map[old];
    id_[slot] = id_[old];
    stream_index_[slot] = stream_index_[old];
    cell_key_[slot] = cell_key_[old];
    flags_[slot] = flags_[old];
    const uint32_t old_next = next_in_cell_[old];
    next_in_cell_[slot] = old_next == kNpos ? kNpos : map[old_next];
    dirty_epoch_[slot] = dirty_epoch_[old];
    point_[slot] = packed.Add(store_.View(point_[old]));
    point_arena_[slot] = packed.SlotIndexOf(point_[slot]);
    if (with_reservoir_) {
      sample_point_[slot] = packed.Add(store_.View(sample_point_[old]));
      sample_index_[slot] = sample_index_[old];
      group_count_[slot] = group_count_[old];
    }
  }
  store_ = std::move(packed);

  id_.resize(packed_count);
  stream_index_.resize(packed_count);
  cell_key_.resize(packed_count);
  point_.resize(packed_count);
  point_arena_.resize(packed_count);
  flags_.resize(packed_count);
  next_in_cell_.resize(packed_count);
  dirty_epoch_.resize(packed_count);
  if (with_reservoir_) {
    sample_point_.resize(packed_count);
    sample_index_.resize(packed_count);
    group_count_.resize(packed_count);
  }
  free_slots_.clear();

  index_ = CellIndex();
  for (const auto& entry : heads) index_.SetHead(entry.first, entry.second);
  ++generation_;
}

void RepTable::RekeyCell(uint32_t slot, uint64_t new_cell_key) {
  Unlink(slot);
  cell_key_[slot] = new_cell_key;
  Link(slot);
  dirty_epoch_[slot] = ckpt_seq_;
  ++generation_;
}

void RepTable::Link(uint32_t slot) {
  next_in_cell_[slot] = index_.Upsert(cell_key_[slot], slot);
}

void RepTable::Unlink(uint32_t slot) {
  const uint64_t key = cell_key_[slot];
  const uint32_t head = index_.Find(key);
  RL0_DCHECK(head != kNpos);
  if (head == slot) {
    const uint32_t next = next_in_cell_[slot];
    if (next == kNpos) {
      index_.Erase(key);
    } else {
      index_.SetHead(key, next);
    }
  } else {
    uint32_t prev = head;
    while (next_in_cell_[prev] != slot) {
      prev = next_in_cell_[prev];
      RL0_DCHECK(prev != kNpos);
    }
    next_in_cell_[prev] = next_in_cell_[slot];
  }
  next_in_cell_[slot] = kNpos;
}

}  // namespace rl0
