#include "rl0/core/rep_table.h"

#include "rl0/util/check.h"

namespace rl0 {

namespace {
constexpr size_t kInitialBuckets = 16;  // power of two
// Below this many slot columns, compaction churn outweighs the locality
// win; MaybeCompact stays a no-op.
constexpr size_t kCompactMinSlots = 64;
}  // namespace

CellIndex::CellIndex() : buckets_(kInitialBuckets), shift_(64 - 4) {}

uint32_t CellIndex::Find(uint64_t key) const {
  const size_t mask = buckets_.size() - 1;
  size_t i = BucketFor(key);
  for (;;) {
    const Bucket& b = buckets_[i];
    if (b.state == kEmpty) return kNpos;
    if (b.state == kFull && b.key == key) return b.head;
    i = (i + 1) & mask;
  }
}

void CellIndex::SetHead(uint64_t key, uint32_t head) {
  (void)Upsert(key, head);
}

uint32_t CellIndex::Upsert(uint64_t key, uint32_t head) {
  RL0_DCHECK(head != kNpos);
  if ((used_ + 1) * 10 >= buckets_.size() * 7) Grow();
  const size_t mask = buckets_.size() - 1;
  size_t i = BucketFor(key);
  size_t insert_at = buckets_.size();  // first tombstone seen, if any
  for (;;) {
    Bucket& b = buckets_[i];
    if (b.state == kFull && b.key == key) {
      const uint32_t prev = b.head;
      b.head = head;
      return prev;
    }
    if (b.state == kTombstone && insert_at == buckets_.size()) insert_at = i;
    if (b.state == kEmpty) {
      if (insert_at == buckets_.size()) {
        insert_at = i;
        ++used_;  // consuming a fresh empty bucket
      }
      Bucket& dst = buckets_[insert_at];
      dst.key = key;
      dst.head = head;
      dst.state = kFull;
      ++live_;
      return kNpos;
    }
    i = (i + 1) & mask;
  }
}

void CellIndex::Erase(uint64_t key) {
  const size_t mask = buckets_.size() - 1;
  size_t i = BucketFor(key);
  for (;;) {
    Bucket& b = buckets_[i];
    if (b.state == kEmpty) return;
    if (b.state == kFull && b.key == key) {
      b.state = kTombstone;
      --live_;
      return;
    }
    i = (i + 1) & mask;
  }
}

void CellIndex::Grow() {
  // The 70% trigger counts tombstones; under heavy rep churn (refilters,
  // window expiry) most of `used_` can be dead. Double only when live
  // keys genuinely crowd the table (≥ 35%); otherwise rehash at the same
  // size to clear tombstones, so the bucket array tracks the *live*
  // population — the bound kCellIndexEntryWords models — not the
  // cumulative insertion count.
  std::vector<Bucket> old = std::move(buckets_);
  const bool double_size = (live_ + 1) * 20 >= old.size() * 7;
  buckets_.assign(double_size ? old.size() * 2 : old.size(), Bucket{});
  if (double_size) --shift_;
  live_ = 0;
  used_ = 0;
  const size_t mask = buckets_.size() - 1;
  for (const Bucket& b : old) {
    if (b.state != kFull) continue;
    size_t i = BucketFor(b.key);
    while (buckets_[i].state == kFull) i = (i + 1) & mask;
    buckets_[i] = b;
    ++live_;
    ++used_;
  }
}

RepTable::RepTable(size_t dim, bool with_reservoir)
    : dim_(dim), with_reservoir_(with_reservoir), store_(dim) {}

uint32_t RepTable::Add(PointView point, uint64_t id, uint64_t stream_index,
                       uint64_t cell_key, bool accepted) {
  RL0_DCHECK(point.dim() == dim_);
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    point_[slot] = store_.Add(point);
    if (with_reservoir_) sample_point_[slot] = store_.Add(point);
  } else {
    RL0_CHECK(flags_.size() < kNpos);
    slot = static_cast<uint32_t>(flags_.size());
    id_.push_back(0);
    stream_index_.push_back(0);
    cell_key_.push_back(0);
    point_.push_back(store_.Add(point));
    point_arena_.push_back(0);
    flags_.push_back(0);
    next_in_cell_.push_back(kNpos);
    if (with_reservoir_) {
      sample_point_.push_back(store_.Add(point));
      sample_index_.push_back(0);
      group_count_.push_back(0);
    }
  }
  point_arena_[slot] = store_.SlotIndexOf(point_[slot]);
  id_[slot] = id;
  stream_index_[slot] = stream_index;
  cell_key_[slot] = cell_key;
  flags_[slot] = kLiveFlag | (accepted ? kAcceptedFlag : 0);
  if (with_reservoir_) {
    sample_index_[slot] = stream_index;
    group_count_[slot] = 1;
  }
  Link(slot);
  ++live_;
  return slot;
}

void RepTable::Remove(uint32_t slot) {
  RL0_DCHECK(IsLive(slot));
  Unlink(slot);
  store_.Release(point_[slot]);
  if (with_reservoir_) store_.Release(sample_point_[slot]);
  flags_[slot] = 0;
  free_slots_.push_back(slot);
  --live_;
}

void RepTable::set_accepted(uint32_t slot, bool accepted) {
  if (accepted) {
    flags_[slot] |= kAcceptedFlag;
  } else {
    flags_[slot] &= static_cast<uint8_t>(~kAcceptedFlag);
  }
}

bool RepTable::MaybeCompact() {
  if (flags_.size() < kCompactMinSlots) return false;
  if (live_ * 2 > flags_.size()) return false;
  Compact();
  return true;
}

void RepTable::Compact() {
  const size_t slots = flags_.size();
  if (live_ == slots) return;  // dense already (free list is empty too)

  // Monotone old→new slot map: live slots keep their relative order, so
  // slot-order iterations (queries, snapshot byte streams, Refilter
  // scans) are invariant under compaction.
  std::vector<uint32_t> map(slots, kNpos);
  uint32_t packed_count = 0;
  for (uint32_t old = 0; old < slots; ++old) {
    if (IsLive(old)) map[old] = packed_count++;
  }

  // Capture the cell heads before the slot surgery; chain structure moves
  // over link by link through the remapped next_in_cell_ column, so each
  // cell's scan order — and with it FindCandidate's first match — is
  // untouched.
  std::vector<std::pair<uint64_t, uint32_t>> heads;
  heads.reserve(index_.live());
  index_.ForEach([&](uint64_t key, uint32_t head) {
    heads.emplace_back(key, map[head]);
  });

  // Repack the arena in new slot order: after heavy refilter churn the
  // live coordinates are scattered across free-list holes; the batched
  // kernels stream much better over the re-densified buffer.
  PointStore packed(dim_);
  for (uint32_t old = 0; old < slots; ++old) {
    if (!IsLive(old)) continue;
    // map[old] ≤ old always, so ascending in-place moves never clobber
    // an entry that is still to be read.
    const uint32_t slot = map[old];
    id_[slot] = id_[old];
    stream_index_[slot] = stream_index_[old];
    cell_key_[slot] = cell_key_[old];
    flags_[slot] = flags_[old];
    const uint32_t old_next = next_in_cell_[old];
    next_in_cell_[slot] = old_next == kNpos ? kNpos : map[old_next];
    point_[slot] = packed.Add(store_.View(point_[old]));
    point_arena_[slot] = packed.SlotIndexOf(point_[slot]);
    if (with_reservoir_) {
      sample_point_[slot] = packed.Add(store_.View(sample_point_[old]));
      sample_index_[slot] = sample_index_[old];
      group_count_[slot] = group_count_[old];
    }
  }
  store_ = std::move(packed);

  id_.resize(packed_count);
  stream_index_.resize(packed_count);
  cell_key_.resize(packed_count);
  point_.resize(packed_count);
  point_arena_.resize(packed_count);
  flags_.resize(packed_count);
  next_in_cell_.resize(packed_count);
  if (with_reservoir_) {
    sample_point_.resize(packed_count);
    sample_index_.resize(packed_count);
    group_count_.resize(packed_count);
  }
  free_slots_.clear();

  index_ = CellIndex();
  for (const auto& entry : heads) index_.SetHead(entry.first, entry.second);
}

void RepTable::RekeyCell(uint32_t slot, uint64_t new_cell_key) {
  Unlink(slot);
  cell_key_[slot] = new_cell_key;
  Link(slot);
}

void RepTable::Link(uint32_t slot) {
  next_in_cell_[slot] = index_.Upsert(cell_key_[slot], slot);
}

void RepTable::Unlink(uint32_t slot) {
  const uint64_t key = cell_key_[slot];
  const uint32_t head = index_.Find(key);
  RL0_DCHECK(head != kNpos);
  if (head == slot) {
    const uint32_t next = next_in_cell_[slot];
    if (next == kNpos) {
      index_.Erase(key);
    } else {
      index_.SetHead(key, next);
    }
  } else {
    uint32_t prev = head;
    while (next_in_cell_[prev] != slot) {
      prev = next_in_cell_[prev];
      RL0_DCHECK(prev != kNpos);
    }
    next_in_cell_[prev] = next_in_cell_[slot];
  }
  next_in_cell_[slot] = kNpos;
}

}  // namespace rl0
