#ifndef RL0_CORE_DUP_FILTER_H_
#define RL0_CORE_DUP_FILTER_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "rl0/geom/point.h"

namespace rl0 {

// Counters for the duplicate-suppression front-end. `bypassed` counts the
// arrivals that never consulted the filter (filter disabled or compiled out);
// it is derived from the sampler's points_processed so the disabled hot path
// carries zero accounting overhead.
struct DupFilterStats {
  uint64_t hits = 0;      // front-end hit, verified, replayed
  uint64_t misses = 0;    // consulted but fell through to the full probe
  uint64_t bypassed = 0;  // filter off: arrival went straight to the full probe

  DupFilterStats& operator+=(const DupFilterStats& o) {
    hits += o.hits;
    misses += o.misses;
    bypassed += o.bypassed;
    return *this;
  }
};

// DupFilter is a small 2-way set-associative cache of recently-seen exact
// arrivals, keyed on the quantized base cell key and guarded by the full
// point bytes. Each entry remembers (cell key, point bytes, epoch, payload
// words). The payload is opaque to the filter: the IW sampler stores the
// representative slot, the SW sampler stores the accept level plus the
// per-level touched slots of the recorded descent.
//
// Two ways per set, with a most-recently-used bit steering eviction, keep
// the dominant pattern of a cell resident while near-duplicate noise churns
// the other way: a perturbed arrival shares the exact repeat's cell key
// (same set, same tag) but not its bytes, so in a direct-mapped layout every
// perturbation would evict the hot entry and the next exact repeat would
// miss. Ways also absorb plain index collisions between distinct cells.
//
// Decision-identity contract: the filter never decides anything by itself.
// A Lookup only *finds* a candidate replay; the caller must (a) validate the
// entry's epoch against the live structure generation so cached slots never
// dangle across Refilter/Expire/Compact/Promote repacks, and (b) re-verify
// the cached representative with the real distance kernel before replaying.
// Epoch validation lives with the caller because the SW epoch is itself a
// function of the payload (the accept level selects which level generations
// participate). On any doubt the caller falls through to the full probe,
// which is always correct.
//
// The filter's arrays are scratch state (like adj_scratch_): they are not
// charged to the SpaceMeter and never enter snapshots, so snapshot bytes are
// identical with the filter on or off.
class DupFilter {
 public:
  // True when the front-end is compiled in (-DRL0_NO_DUP_FILTER removes it;
  // every construction then degenerates to a disabled filter and the replay
  // code paths become dead).
#if defined(RL0_NO_DUP_FILTER)
  static constexpr bool kCompiledIn = false;
#else
  static constexpr bool kCompiledIn = true;
#endif

  static constexpr size_t kWays = 2;
  static constexpr size_t kSets = 128;
  static constexpr size_t kEntries = kSets * kWays;

  // Result of a probe. `payload` points at `payload_len` words recorded by
  // the matching Store; valid until the next Store/Invalidate.
  struct View {
    const uint32_t* payload = nullptr;
    uint64_t epoch = 0;
    bool found = false;
  };

  // A default-constructed filter is disabled and allocation-free.
  DupFilter() = default;

  // `payload_len` is the number of uint32 words the caller records per entry.
  // A disabled filter allocates nothing; Lookup always misses (without
  // counting) and Store is a no-op.
  DupFilter(size_t dim, size_t payload_len, bool enabled);

  bool enabled() const { return enabled_; }

  // Probes for an entry whose cell key and exact point bytes match. Byte
  // equality (memcmp) is strictly stronger than operator== on coordinates,
  // so a found entry is safe to replay even across -0.0/NaN oddities.
  View Lookup(uint64_t cell_key, PointView p) const;

  // Installs an entry for `cell_key` and returns the payload words for the
  // caller to fill, or nullptr when disabled. Way choice within the set: an
  // existing entry with identical key and bytes is refreshed in place, an
  // empty way is filled next, otherwise the least-recently-used way is
  // evicted.
  uint32_t* Store(uint64_t cell_key, uint64_t epoch, PointView p);

  // Drops every cached entry. Cheap (clears one tag byte array); correctness
  // never depends on it thanks to epoch validation, but callers may use it
  // after wholesale rebuilds.
  void Invalidate();

  // Outcome accounting. The caller (not Lookup) counts, because a found
  // entry may still be rejected by the caller-side epoch check.
  void CountHit() { ++hits_; }
  void CountMiss() { ++misses_; }

  // `points_processed` is the sampler's total arrival count; everything that
  // was neither a hit nor a consulted miss bypassed the filter.
  DupFilterStats stats(uint64_t points_processed) const {
    DupFilterStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.bypassed = points_processed - hits_ - misses_;
    return s;
  }

 private:
  struct Slot {
    size_t set;  // first entry of the set is set * kWays
    uint16_t tag;
  };
  static Slot SlotFor(uint64_t cell_key) {
    const uint64_t h = cell_key * 0x9E3779B97F4A7C15ULL;
    Slot s;
    s.set = static_cast<size_t>(h >> 57);  // top 7 bits -> 128 sets
    // |1 keeps 0 reserved as the empty tag.
    s.tag = static_cast<uint16_t>(static_cast<uint16_t>(h >> 40) | 1u);
    return s;
  }

  // True when entry `e` holds `cell_key` with exactly the bytes of `p`.
  bool EntryMatches(size_t e, const Slot& s, uint64_t cell_key,
                    PointView p) const {
    return tags_[e] == s.tag && keys_[e] == cell_key &&
           std::memcmp(&bytes_[e * dim_], p.data(),
                       dim_ * sizeof(double)) == 0;
  }

  bool enabled_ = false;
  size_t dim_ = 0;
  size_t payload_len_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::vector<uint16_t> tags_;       // 0 == empty
  std::vector<uint64_t> keys_;       // full cell key per entry
  std::vector<uint64_t> epochs_;     // structure generation at record time
  std::vector<uint32_t> payload_;    // kEntries * payload_len_
  std::vector<double> bytes_;        // kEntries * dim_ exact point bytes
  mutable std::vector<uint8_t> mru_;  // per set: way touched last
};

}  // namespace rl0

#endif  // RL0_CORE_DUP_FILTER_H_
