// Robust F0 estimation over sliding windows (paper Section 5).
//
// Flajolet–Martin style: run r = Θ(1/ε²) independent copies of the
// hierarchical sliding-window sampler. In each copy the deepest level ℓ
// with a non-expired accepted group plays the role of the FM "maximum bit
// position" — a group's representative survives at level ℓ with
// probability 2^-ℓ, so over n window groups the deepest occupied level
// concentrates around log2 n. Averaging the per-copy levels to ℓ̄ and
// returning φ·2^ℓ̄ (φ the FM bias-correction constant) gives a constant-
// factor F0 estimate, sharpened by the averaging; an outer median over
// independent repetitions boosts the success probability. A HyperLogLog-
// style harmonic-mean combiner is provided as an alternative (the paper
// notes the same plug-in applies).

#ifndef RL0_CORE_F0_SW_H_
#define RL0_CORE_F0_SW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "rl0/core/ingest_pool.h"
#include "rl0/core/options.h"
#include "rl0/core/reorder_buffer.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/util/span.h"
#include "rl0/util/status.h"
#include "rl0/util/sync.h"
#include "rl0/util/thread_annotations.h"

namespace rl0 {

/// How per-copy level statistics are combined into one estimate.
enum class F0SwCombiner {
  /// φ · 2^(mean level) — the Flajolet–Martin combiner of Section 5.
  kFlajoletMartin,
  /// φ · r / Σ 2^(-level_i) — a HyperLogLog-style harmonic mean (no
  /// classical r² factor: every copy sees the whole stream rather than a
  /// 1/r slice, so the harmonic mean already estimates 0.77351·n).
  kHyperLogLog,
};

/// Options for the sliding-window F0 estimator.
struct F0SwOptions {
  /// Base sampler configuration (alpha, dim, seed, grid/hash settings).
  SamplerOptions sampler;
  /// Window width (same stamp semantics as RobustL0SamplerSW).
  int64_t window = 1024;
  /// Number of independent sampler copies per repetition (Θ(1/ε²)).
  size_t copies = 16;
  /// Outer repetitions; the median across them is returned (odd values
  /// recommended; 1 disables boosting).
  size_t repetitions = 1;
  /// Combiner for the per-copy statistics.
  F0SwCombiner combiner = F0SwCombiner::kFlajoletMartin;
  /// FM bias correction: estimate = phi · 2^(mean level). The classical
  /// value 1/0.77351 corrects E[max level] ≈ log2(0.77351·n).
  double phi = 1.0 / 0.77351;

  /// Checks the options for consistency.
  Status Validate() const;
};

/// Constant-factor / (1+ε) robust F0 estimator for sliding windows.
class F0EstimatorSW {
 public:
  /// Validates options and constructs the estimator.
  static Result<F0EstimatorSW> Create(const F0SwOptions& options);

  /// Feeds a point with an explicit stamp (time-based windows).
  void Insert(const Point& p, int64_t stamp);

  /// Feeds a point stamped with its arrival index (sequence-based).
  void Insert(const Point& p);

  /// Streams a chunk through the persistent ingestion pipeline: every
  /// copy is a pipeline lane with its own worker thread, each consuming
  /// the whole chunk with sequence stamps derived from the chunk's global
  /// index base (bit-identical to the serial Insert path). Copies the
  /// chunk once (shared across lanes); safe from any number of threads.
  /// Workers start lazily on the first Feed, continuing the stamp
  /// sequence after any serial inserts. Sequence-stamped estimators
  /// only — Feed cannot invent stamps for a time-based estimator
  /// (explicit stamps that diverged from arrival indices); those stream
  /// through FeedStamped instead (CHECK enforces it). Do not mix with
  /// the serial Insert calls without an intervening Drain().
  void Feed(Span<const Point> points);

  /// As Feed but adopts the vector — no copy.
  void FeedOwned(std::vector<Point> points);

  /// The explicit-stamp (time-based) pipeline path: streams a chunk with
  /// its parallel stamp array to every copy. Stamps must align with the
  /// points and be non-decreasing across everything inserted or fed so
  /// far (serial explicit-stamp inserts raise the pipeline's stamp
  /// watermark, so mixed serial/Feed ingestion keeps one monotone stamp
  /// sequence — pinned in tests/f0_test.cc). Cannot follow plain Feeds:
  /// one estimator streams through exactly one feed family (plain chunks
  /// bypass the stamp watermark; a mix CHECK-fails). Safe from any
  /// number of threads as long as the stamp order is externally
  /// coherent.
  void FeedStamped(Span<const Point> points, Span<const int64_t> stamps);

  /// As FeedStamped but adopts both vectors — no copy.
  void FeedOwnedStamped(std::vector<Point> points,
                        std::vector<int64_t> stamps);

  /// Bounded-lateness explicit-stamp feeding (core/reorder_buffer.h):
  /// stamps may run backwards by up to options.sampler.allowed_lateness
  /// behind the maximum stamp seen across late feeds; an estimator-level
  /// ReorderStage restores sorted order, streams the released prefix to
  /// every copy, and broadcasts watermarks so copies advance event time
  /// even between releases. Beyond-bound points follow
  /// options.sampler.late_policy (late_stats() accounts for every one).
  /// Same feed-family latch as FeedStamped (counts as the stamped
  /// family); do not mix with the strict FeedStamped* calls. Call
  /// FlushLate() + Drain() before estimating at end of stream.
  void FeedStampedLate(Span<const Point> points, Span<const int64_t> stamps);

  /// Releases everything the reorder stage still buffers and broadcasts
  /// the final watermark. Drain() afterwards for the usual barrier.
  /// No-op before any FeedStampedLate.
  void FlushLate();

  /// Counters of the estimator's reorder stage (all-zero before any
  /// FeedStampedLate).
  ReorderStats late_stats() const;

  /// Blocks until everything fed before this call is consumed by every
  /// copy, then syncs the stamp watermark (the last fed explicit stamp
  /// on the stamped path, the last stream position otherwise). Required
  /// before Estimate()/EstimateLatest() after feeding.
  void Drain();

  /// Estimates the number of groups alive in the window at `now`.
  /// Expires internal state, hence non-const. Returns 0 for an empty
  /// window.
  double Estimate(int64_t now);

  /// Estimate at the stamp of the most recent insertion.
  double EstimateLatest();

  /// Total space in words across all copies.
  size_t SpaceWords() const;

  /// Number of copies per repetition / repetitions (introspection).
  size_t copies() const { return copies_; }
  size_t repetitions() const { return repetitions_; }

  /// Read access to one underlying sampler copy (introspection for
  /// tests). Requires a drained pipeline.
  const RobustL0SamplerSW& copy_sampler(size_t i) const {
    return samplers_[i];
  }

 private:
  F0EstimatorSW(std::vector<RobustL0SamplerSW> samplers, size_t copies,
                size_t repetitions, F0SwCombiner combiner, double phi);

  double CombineRepetition(size_t rep, int64_t now);

  /// Which feed family the estimator streams through. Latched by the
  /// first Feed*/FeedStamped* call; the families cannot mix (plain
  /// chunks derive sequence stamps that bypass the stamp watermark).
  enum class FeedMode : uint8_t { kUnset = 0, kSequence = 1, kStamped = 2 };

  /// Pipeline-side mutable state grouped with the mutex that guards it
  /// (sibling RL0_GUARDED_BY keeps the guard expressible); the estimator
  /// holds it through a unique_ptr so it stays movable.
  struct PipelineFront {
    Mutex mu;
    /// Created lazily by the first Feed (see EnsurePipeline).
    std::unique_ptr<IngestPool> pipeline RL0_GUARDED_BY(mu);
    /// The latched feed family; decides how Drain syncs the stamp
    /// watermark and rejects feed-family mixes.
    FeedMode feed_mode RL0_GUARDED_BY(mu) = FeedMode::kUnset;
    /// Stamp/position of the most recent insertion (serial inserts
    /// update it inline; Drain syncs it from the pipeline).
    int64_t latest_stamp RL0_GUARDED_BY(mu) = 0;
    uint64_t points_processed RL0_GUARDED_BY(mu) = 0;
  };

  /// Latches the feed family and validates its stamp preconditions;
  /// CHECK-fails on a mix. Takes pipe_->mu.
  void LatchFeedMode(FeedMode mode);

  /// Starts the per-copy pipeline workers on the first Feed (estimators
  /// that only ever Insert never spawn threads). Takes pipe_->mu.
  /// The pipeline's index base continues after any serial inserts, so
  /// stamps stay globally consistent. Sink addresses stay valid across
  /// moves: samplers_ never resizes and its heap buffer moves along.
  IngestPool* EnsurePipeline();

  std::vector<RobustL0SamplerSW> samplers_;  // repetitions × copies
  size_t copies_;
  size_t repetitions_;
  F0SwCombiner combiner_;
  double phi_;
  /// Pipeline state, feed-family latch and insertion counters (see
  /// PipelineFront).
  std::unique_ptr<PipelineFront> pipe_;
  /// Bounded-lateness front end of FeedStampedLate (lazy stage plus the
  /// last watermark broadcast; core/reorder_buffer.h). Its mutex is
  /// separate from pipe_->mu: the pump can block on backpressure and
  /// must not hold the pipeline lock Insert/Drain need.
  std::unique_ptr<ReorderFrontEnd> reorder_fe_;
};

}  // namespace rl0

#endif  // RL0_CORE_F0_SW_H_
