#include "rl0/core/ingest_pool.h"

#include <utility>

#include "rl0/core/worker_fleet.h"
#include "rl0/util/check.h"

namespace rl0 {

IngestPool::IngestPool(std::vector<Sink> sinks,
                       std::vector<StampedSink> stamped_sinks,
                       std::vector<WatermarkSink> watermark_sinks,
                       const Options& options)
    : fleet_(options.fleet),
      queue_capacity_(options.queue_capacity < 1 ? 1
                                                 : options.queue_capacity),
      fed_(options.index_base) {
  RL0_CHECK(!sinks.empty());
  RL0_CHECK(stamped_sinks.empty() || stamped_sinks.size() == sinks.size());
  RL0_CHECK(watermark_sinks.empty() ||
            watermark_sinks.size() == sinks.size());
  lanes_.reserve(sinks.size());
  for (size_t i = 0; i < sinks.size(); ++i) {
    StampedSink stamped =
        stamped_sinks.empty() ? StampedSink() : std::move(stamped_sinks[i]);
    WatermarkSink watermark = watermark_sinks.empty()
                                  ? WatermarkSink()
                                  : std::move(watermark_sinks[i]);
    lanes_.push_back(std::make_unique<Lane>(queue_capacity_,
                                            std::move(sinks[i]),
                                            std::move(stamped),
                                            std::move(watermark)));
  }
  if (fleet_ != nullptr) {
    for (std::unique_ptr<Lane>& lane : lanes_) {
      lane->fleet_id = fleet_->Register(
          [this, raw = lane.get()] { return RunLaneOnce(raw); });
    }
  } else {
    for (std::unique_ptr<Lane>& lane : lanes_) {
      lane->worker =
          std::thread([this, raw = lane.get()] { WorkerLoop(raw); });
    }
  }
}

IngestPool::IngestPool(std::vector<Sink> sinks,
                       std::vector<StampedSink> stamped_sinks,
                       const Options& options)
    : IngestPool(std::move(sinks), std::move(stamped_sinks),
                 std::vector<WatermarkSink>(), options) {}

IngestPool::IngestPool(std::vector<Sink> sinks, const Options& options)
    : IngestPool(std::move(sinks), std::vector<StampedSink>(), options) {}

IngestPool::IngestPool(std::vector<Sink> sinks)
    : IngestPool(std::move(sinks), Options()) {}

IngestPool::~IngestPool() { Stop(); }

void IngestPool::ProcessChunk(Lane* lane, Chunk chunk) {
  {
    MutexLock proc(&lane->proc_mu);
    if (chunk.watermark_only) {
      lane->watermark_sink(chunk.watermark);
    } else if (chunk.stamps != nullptr) {
      lane->stamped_sink(Span<const Point>(chunk.data, chunk.size),
                         Span<const int64_t>(chunk.stamps, chunk.size),
                         chunk.index_base);
    } else {
      lane->sink(Span<const Point>(chunk.data, chunk.size),
                 chunk.index_base);
    }
  }
  chunk.owner.reset();  // release chunk storage before signalling
  chunk.stamp_owner.reset();
  {
    MutexLock done(&lane->done_mu);
    ++lane->completed;
  }
  lane->done_cv.NotifyAll();
}

void IngestPool::WorkerLoop(Lane* lane) {
  Chunk chunk;
  while (lane->queue.Pop(&chunk)) {
    ProcessChunk(lane, std::move(chunk));
  }
}

bool IngestPool::RunLaneOnce(Lane* lane) {
  Chunk chunk;
  if (!lane->queue.TryPop(&chunk)) return false;
  ProcessChunk(lane, std::move(chunk));
  return true;
}

void IngestPool::FeedChunk(Chunk chunk) {
  if (chunk.size == 0 && !chunk.watermark_only) return;
  // One critical section assigns the index base AND enqueues everywhere:
  // every lane sees the same chunk order, and bases are dense and unique
  // even under concurrent producers. Push may block here (backpressure);
  // that also throttles other producers, which is the intent — the
  // workers drain the queues without ever taking feed_mu_, so the pool
  // always makes progress.
  MutexLock lock(&feed_mu_);
  if (stopped_) return;
  if (chunk.watermark_only) {
    // A watermark announces "no stamped point below this will ever be
    // fed" — regressing the pool's stamp watermark would falsify the
    // announcements already broadcast.
    RL0_CHECK(!stamp_watermark_set_ || chunk.watermark >= latest_stamp_);
    latest_stamp_ = chunk.watermark;
    stamp_watermark_set_ = true;
  } else if (chunk.stamps != nullptr) {
    // Stamped chunks ride the same critical section, so the stamp
    // sequence is monotone in enqueue order — the time-based analogue of
    // the index-base contract. A violation means the producer handed the
    // pool out-of-order time; fail loudly rather than corrupt every
    // lane's expiry schedule. (Intra-chunk monotonicity was already
    // scanned outside this lock, so only the O(1) cross-chunk check and
    // watermark update serialize the producers.)
    RL0_CHECK(!stamp_watermark_set_ || chunk.stamps[0] >= latest_stamp_);
    latest_stamp_ = chunk.stamps[chunk.size - 1];
    stamp_watermark_set_ = true;
  }
  chunk.index_base = fed_;
  fed_ += chunk.size;
  ++chunks_fed_;
  for (std::unique_ptr<Lane>& lane : lanes_) {
    lane->queue.Push(chunk);
    // Fleet mode: wake a shared worker for this lane right after its
    // push, so an earlier lane progresses even while a later lane's
    // full queue blocks the loop.
    if (fleet_ != nullptr) fleet_->Notify(lane->fleet_id);
  }
}

void IngestPool::Feed(Span<const Point> points) {
  if (points.empty()) return;
  auto storage = std::make_shared<const std::vector<Point>>(points.begin(),
                                                            points.end());
  Chunk chunk;
  chunk.data = storage->data();
  chunk.size = storage->size();
  chunk.owner = std::move(storage);
  FeedChunk(std::move(chunk));
}

void IngestPool::FeedOwned(std::vector<Point> points) {
  if (points.empty()) return;
  auto storage =
      std::make_shared<const std::vector<Point>>(std::move(points));
  Chunk chunk;
  chunk.data = storage->data();
  chunk.size = storage->size();
  chunk.owner = std::move(storage);
  FeedChunk(std::move(chunk));
}

void IngestPool::FeedBorrowed(Span<const Point> points) {
  if (points.empty()) return;
  Chunk chunk;
  chunk.data = points.data();
  chunk.size = points.size();
  FeedChunk(std::move(chunk));
}

namespace {

/// Intra-chunk stamp validation, run before the feed lock is taken (the
/// scan is O(chunk); only the cross-chunk watermark check needs the
/// serializing critical section).
void CheckStampsNonDecreasing(Span<const int64_t> stamps) {
  for (size_t i = 1; i < stamps.size(); ++i) {
    RL0_CHECK(stamps[i] >= stamps[i - 1]);
  }
}

}  // namespace

void IngestPool::FeedStamped(Span<const Point> points,
                             Span<const int64_t> stamps) {
  if (points.empty()) return;
  RL0_CHECK(stamps.size() == points.size());
  FeedOwnedStamped(std::vector<Point>(points.begin(), points.end()),
                   std::vector<int64_t>(stamps.begin(), stamps.end()));
}

void IngestPool::FeedOwnedStamped(std::vector<Point> points,
                                  std::vector<int64_t> stamps) {
  if (points.empty()) return;
  RL0_CHECK(stamps.size() == points.size());
  RL0_CHECK(lanes_[0]->stamped_sink != nullptr);
  CheckStampsNonDecreasing(Span<const int64_t>(stamps.data(), stamps.size()));
  auto storage =
      std::make_shared<const std::vector<Point>>(std::move(points));
  auto stamp_storage =
      std::make_shared<const std::vector<int64_t>>(std::move(stamps));
  Chunk chunk;
  chunk.data = storage->data();
  chunk.size = storage->size();
  chunk.owner = std::move(storage);
  chunk.stamps = stamp_storage->data();
  chunk.stamp_owner = std::move(stamp_storage);
  FeedChunk(std::move(chunk));
}

void IngestPool::FeedBorrowedStamped(Span<const Point> points,
                                     Span<const int64_t> stamps) {
  if (points.empty()) return;
  RL0_CHECK(stamps.size() == points.size());
  RL0_CHECK(lanes_[0]->stamped_sink != nullptr);
  CheckStampsNonDecreasing(stamps);
  Chunk chunk;
  chunk.data = points.data();
  chunk.size = points.size();
  chunk.stamps = stamps.data();
  FeedChunk(std::move(chunk));
}

void IngestPool::FeedWatermark(int64_t watermark) {
  RL0_CHECK(lanes_[0]->watermark_sink != nullptr);
  Chunk chunk;
  chunk.watermark_only = true;
  chunk.watermark = watermark;
  FeedChunk(std::move(chunk));
}

void IngestPool::Drain() {
  uint64_t target;
  {
    MutexLock lock(&feed_mu_);
    target = chunks_fed_;
  }
  for (std::unique_ptr<Lane>& lane : lanes_) {
    MutexLock done(&lane->done_mu);
    while (lane->completed < target) lane->done_cv.Wait(&lane->done_mu);
  }
}

void IngestPool::QuiescedRun(const std::function<void()>& fn) {
  // Lock every lane's processing mutex, always in lane order (workers
  // only ever hold their own, so this cannot deadlock). With all of them
  // held, every worker sits between chunks and lane state is stable. The
  // lock set's size is only known at runtime, so this is the one place
  // that needs MutexLockSet's analysis escape (see util/sync.h).
  MutexLockSet paused;
  for (std::unique_ptr<Lane>& lane : lanes_) {
    paused.Lock(&lane->proc_mu);
  }
  fn();
}

void IngestPool::Stop() {
  {
    MutexLock lock(&feed_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Close() leaves queued chunks poppable: workers finish the backlog,
  // then their Pop returns false and the loop exits.
  for (std::unique_ptr<Lane>& lane : lanes_) {
    lane->queue.Close();
  }
  if (fleet_ != nullptr) {
    // Fleet mode: finish the backlog (every queued chunk was Notify'd,
    // so the fleet drains it), then withdraw the lanes. Deregister
    // blocks until a lane's in-flight run ends, so after this loop the
    // fleet never touches this pool again.
    Drain();
    for (std::unique_ptr<Lane>& lane : lanes_) {
      fleet_->Deregister(lane->fleet_id);
    }
    return;
  }
  for (std::unique_ptr<Lane>& lane : lanes_) {
    if (lane->worker.joinable()) lane->worker.join();
  }
}

uint64_t IngestPool::AdvanceIndexBase(uint64_t n) {
  MutexLock lock(&feed_mu_);
  const uint64_t base = fed_;
  fed_ += n;
  return base;
}

void IngestPool::NoteStamp(int64_t stamp) {
  MutexLock lock(&feed_mu_);
  if (!stamp_watermark_set_ || stamp > latest_stamp_) {
    latest_stamp_ = stamp;
  }
  stamp_watermark_set_ = true;
}

int64_t IngestPool::latest_stamp() const {
  MutexLock lock(&feed_mu_);
  return stamp_watermark_set_ ? latest_stamp_ : -1;
}

uint64_t IngestPool::points_fed() const {
  MutexLock lock(&feed_mu_);
  return fed_;
}

size_t IngestPool::MaxQueueDepth() const {
  size_t depth = 0;
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    const size_t lane_depth = lane->queue.size();
    if (lane_depth > depth) depth = lane_depth;
  }
  return depth;
}

}  // namespace rl0
