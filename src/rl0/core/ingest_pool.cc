#include "rl0/core/ingest_pool.h"

#include <utility>

#include "rl0/util/check.h"

namespace rl0 {

IngestPool::IngestPool(std::vector<Sink> sinks, const Options& options)
    : queue_capacity_(options.queue_capacity < 1 ? 1
                                                 : options.queue_capacity),
      fed_(options.index_base) {
  RL0_CHECK(!sinks.empty());
  lanes_.reserve(sinks.size());
  for (Sink& sink : sinks) {
    lanes_.push_back(std::make_unique<Lane>(queue_capacity_,
                                            std::move(sink)));
  }
  for (std::unique_ptr<Lane>& lane : lanes_) {
    lane->worker = std::thread([this, raw = lane.get()] { WorkerLoop(raw); });
  }
}

IngestPool::IngestPool(std::vector<Sink> sinks)
    : IngestPool(std::move(sinks), Options()) {}

IngestPool::~IngestPool() { Stop(); }

void IngestPool::WorkerLoop(Lane* lane) {
  Chunk chunk;
  while (lane->queue.Pop(&chunk)) {
    {
      std::lock_guard<std::mutex> proc(lane->proc_mu);
      lane->sink(Span<const Point>(chunk.data, chunk.size),
                 chunk.index_base);
    }
    chunk.owner.reset();  // release chunk storage before signalling
    {
      std::lock_guard<std::mutex> done(lane->done_mu);
      ++lane->completed;
    }
    lane->done_cv.notify_all();
  }
}

void IngestPool::FeedChunk(Chunk chunk) {
  if (chunk.size == 0) return;
  // One critical section assigns the index base AND enqueues everywhere:
  // every lane sees the same chunk order, and bases are dense and unique
  // even under concurrent producers. Push may block here (backpressure);
  // that also throttles other producers, which is the intent — the
  // workers drain the queues without ever taking feed_mu_, so the pool
  // always makes progress.
  std::lock_guard<std::mutex> lock(feed_mu_);
  if (stopped_) return;
  chunk.index_base = fed_;
  fed_ += chunk.size;
  ++chunks_fed_;
  for (std::unique_ptr<Lane>& lane : lanes_) {
    lane->queue.Push(chunk);
  }
}

void IngestPool::Feed(Span<const Point> points) {
  if (points.empty()) return;
  auto storage = std::make_shared<const std::vector<Point>>(points.begin(),
                                                            points.end());
  Chunk chunk;
  chunk.data = storage->data();
  chunk.size = storage->size();
  chunk.owner = std::move(storage);
  FeedChunk(std::move(chunk));
}

void IngestPool::FeedOwned(std::vector<Point> points) {
  if (points.empty()) return;
  auto storage =
      std::make_shared<const std::vector<Point>>(std::move(points));
  Chunk chunk;
  chunk.data = storage->data();
  chunk.size = storage->size();
  chunk.owner = std::move(storage);
  FeedChunk(std::move(chunk));
}

void IngestPool::FeedBorrowed(Span<const Point> points) {
  if (points.empty()) return;
  Chunk chunk;
  chunk.data = points.data();
  chunk.size = points.size();
  FeedChunk(std::move(chunk));
}

void IngestPool::Drain() {
  uint64_t target;
  {
    std::lock_guard<std::mutex> lock(feed_mu_);
    target = chunks_fed_;
  }
  for (std::unique_ptr<Lane>& lane : lanes_) {
    std::unique_lock<std::mutex> done(lane->done_mu);
    lane->done_cv.wait(done,
                       [&] { return lane->completed >= target; });
  }
}

void IngestPool::QuiescedRun(const std::function<void()>& fn) {
  // Lock every lane's processing mutex, always in lane order (workers
  // only ever hold their own, so this cannot deadlock). With all of them
  // held, every worker sits between chunks and lane state is stable.
  std::vector<std::unique_lock<std::mutex>> paused;
  paused.reserve(lanes_.size());
  for (std::unique_ptr<Lane>& lane : lanes_) {
    paused.emplace_back(lane->proc_mu);
  }
  fn();
}

void IngestPool::Stop() {
  {
    std::lock_guard<std::mutex> lock(feed_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Close() leaves queued chunks poppable: workers finish the backlog,
  // then their Pop returns false and the loop exits.
  for (std::unique_ptr<Lane>& lane : lanes_) {
    lane->queue.Close();
  }
  for (std::unique_ptr<Lane>& lane : lanes_) {
    if (lane->worker.joinable()) lane->worker.join();
  }
}

uint64_t IngestPool::AdvanceIndexBase(uint64_t n) {
  std::lock_guard<std::mutex> lock(feed_mu_);
  const uint64_t base = fed_;
  fed_ += n;
  return base;
}

uint64_t IngestPool::points_fed() const {
  std::lock_guard<std::mutex> lock(feed_mu_);
  return fed_;
}

}  // namespace rl0
