#include "rl0/core/f0_sw.h"

#include <algorithm>
#include <cmath>

#include "rl0/util/check.h"
#include "rl0/util/rng.h"

namespace rl0 {

Status F0SwOptions::Validate() const {
  Status s = sampler.Validate();
  if (!s.ok()) return s;
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  if (copies < 1) return Status::InvalidArgument("copies must be >= 1");
  if (repetitions < 1) {
    return Status::InvalidArgument("repetitions must be >= 1");
  }
  if (!(phi > 0.0)) return Status::InvalidArgument("phi must be positive");
  return Status::OK();
}

Result<F0EstimatorSW> F0EstimatorSW::Create(const F0SwOptions& options) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  std::vector<RobustL0SamplerSW> samplers;
  samplers.reserve(options.copies * options.repetitions);
  for (size_t i = 0; i < options.copies * options.repetitions; ++i) {
    SamplerOptions per_copy = options.sampler;
    per_copy.seed = SplitMix64(options.sampler.seed + 0x46305357ULL + i);
    Result<RobustL0SamplerSW> sampler =
        RobustL0SamplerSW::Create(per_copy, options.window);
    if (!sampler.ok()) return sampler.status();
    samplers.push_back(std::move(sampler).value());
  }
  return F0EstimatorSW(std::move(samplers), options.copies,
                       options.repetitions, options.combiner, options.phi);
}

F0EstimatorSW::F0EstimatorSW(std::vector<RobustL0SamplerSW> samplers,
                             size_t copies, size_t repetitions,
                             F0SwCombiner combiner, double phi)
    : samplers_(std::move(samplers)),
      copies_(copies),
      repetitions_(repetitions),
      combiner_(combiner),
      phi_(phi),
      pipe_(std::make_unique<PipelineFront>()),
      reorder_fe_(std::make_unique<ReorderFrontEnd>()) {}

void F0EstimatorSW::Insert(const Point& p, int64_t stamp) {
  {
    // Keep the pipeline's index space — and its stamp watermark — in
    // step with serially inserted points, so a later Feed never reuses a
    // stream position and a later FeedStamped never regresses the stamp
    // sequence. The counter writes happen under the same lock: Drain
    // writes them and LatchFeedMode reads them under pipe_->mu, so an
    // unguarded update here would race a concurrent first Feed.
    MutexLock lock(&pipe_->mu);
    pipe_->latest_stamp = stamp;
    ++pipe_->points_processed;
    if (pipe_->pipeline) {
      pipe_->pipeline->AdvanceIndexBase(1);
      pipe_->pipeline->NoteStamp(stamp);
    }
  }
  for (RobustL0SamplerSW& sampler : samplers_) sampler.Insert(p, stamp);
}

void F0EstimatorSW::Insert(const Point& p) {
  int64_t next_stamp;
  {
    MutexLock lock(&pipe_->mu);
    next_stamp = static_cast<int64_t>(pipe_->points_processed);
  }
  Insert(p, next_stamp);
}

IngestPool* F0EstimatorSW::EnsurePipeline() {
  MutexLock lock(&pipe_->mu);
  if (pipe_->pipeline) return pipe_->pipeline.get();
  std::vector<IngestPool::Sink> sinks;
  std::vector<IngestPool::StampedSink> stamped_sinks;
  std::vector<IngestPool::WatermarkSink> watermark_sinks;
  sinks.reserve(samplers_.size());
  stamped_sinks.reserve(samplers_.size());
  watermark_sinks.reserve(samplers_.size());
  for (RobustL0SamplerSW& sampler : samplers_) {
    RobustL0SamplerSW* copy = &sampler;
    // Every copy consumes the whole stream (the copies differ by seed,
    // not by partition). Plain chunks derive stamps from the chunk's
    // global index base — the same stamps the sequence-stamped serial
    // Insert path assigns; stamped chunks carry their explicit stamps.
    sinks.push_back([copy](Span<const Point> chunk, uint64_t base) {
      copy->InsertStrided(chunk, 0, 1, base);
    });
    stamped_sinks.push_back([copy](Span<const Point> chunk,
                                   Span<const int64_t> stamps,
                                   uint64_t base) {
      copy->InsertStridedStamped(chunk, stamps, 0, 1, base);
    });
    watermark_sinks.push_back([copy](int64_t watermark) {
      copy->NoteWatermark(watermark);
    });
  }
  IngestPool::Options options;
  // Continue the index (and stamp) sequence where serial inserts left
  // off.
  options.index_base = pipe_->points_processed;
  pipe_->pipeline = std::make_unique<IngestPool>(std::move(sinks),
                                                 std::move(stamped_sinks),
                                                 std::move(watermark_sinks),
                                                 options);
  if (pipe_->points_processed > 0) {
    pipe_->pipeline->NoteStamp(pipe_->latest_stamp);
  }
  return pipe_->pipeline.get();
}

void F0EstimatorSW::LatchFeedMode(FeedMode mode) {
  // One estimator streams through exactly one feed family: plain Feed
  // derives sequence stamps that never reach the pipeline's stamp
  // watermark, so a stamped feed after plain feeds (or vice versa)
  // would silently regress the samplers' stamp sequence in release
  // builds — the same mix ShardedSwSamplerPool::LatchMode rejects.
  // Serial Insert composes with either family (subject to the stamp
  // checks below). Under pipe_->mu: Drain writes the watermark
  // fields under the same lock.
  MutexLock lock(&pipe_->mu);
  RL0_CHECK(pipe_->feed_mode == FeedMode::kUnset || pipe_->feed_mode == mode);
  if (mode == FeedMode::kSequence) {
    // Plain feeds derive stamps from stream positions, so they also
    // require sequence-stamped serial history (stamp = arrival index).
    RL0_CHECK(pipe_->points_processed == 0 ||
              pipe_->latest_stamp + 1 ==
                  static_cast<int64_t>(pipe_->points_processed));
  }
  pipe_->feed_mode = mode;
}

void F0EstimatorSW::Feed(Span<const Point> points) {
  LatchFeedMode(FeedMode::kSequence);
  EnsurePipeline()->Feed(points);
}

void F0EstimatorSW::FeedOwned(std::vector<Point> points) {
  LatchFeedMode(FeedMode::kSequence);
  EnsurePipeline()->FeedOwned(std::move(points));
}

void F0EstimatorSW::FeedStamped(Span<const Point> points,
                                Span<const int64_t> stamps) {
  LatchFeedMode(FeedMode::kStamped);
  EnsurePipeline()->FeedStamped(points, stamps);
}

void F0EstimatorSW::FeedOwnedStamped(std::vector<Point> points,
                                     std::vector<int64_t> stamps) {
  LatchFeedMode(FeedMode::kStamped);
  EnsurePipeline()->FeedOwnedStamped(std::move(points), std::move(stamps));
}

void F0EstimatorSW::FeedStampedLate(Span<const Point> points,
                                    Span<const int64_t> stamps) {
  RL0_CHECK(stamps.size() == points.size());
  LatchFeedMode(FeedMode::kStamped);
  IngestPool* pipeline = EnsurePipeline();
  ReorderFrontEnd* fe = reorder_fe_.get();
  MutexLock lock(&fe->mu);
  if (!fe->stage) {
    const SamplerOptions& opts = samplers_[0].options();
    fe->stage = std::make_unique<ReorderStage>(opts.allowed_lateness,
                                               opts.late_policy);
  }
  fe->stage->OfferBatch(points, stamps);
  std::vector<Point> released_points;
  std::vector<int64_t> released_stamps;
  if (fe->stage->TakeReleased(&released_points, &released_stamps)) {
    pipeline->FeedOwnedStamped(std::move(released_points),
                               std::move(released_stamps));
  }
  if (fe->stage->has_watermark()) {
    const int64_t watermark = fe->stage->watermark();
    if (!fe->watermark_sent || watermark > fe->last_watermark) {
      pipeline->FeedWatermark(watermark);
      fe->watermark_sent = true;
      fe->last_watermark = watermark;
    }
  }
}

void F0EstimatorSW::FlushLate() {
  {
    ReorderFrontEnd* fe = reorder_fe_.get();
    MutexLock lock(&fe->mu);
    if (!fe->stage) return;
    fe->stage->Flush();
  }
  // Re-enter the shared pump via a zero-point late feed: the flush
  // staged its releases, and an empty OfferBatch is a no-op on top.
  FeedStampedLate(Span<const Point>(), Span<const int64_t>());
}

ReorderStats F0EstimatorSW::late_stats() const {
  ReorderFrontEnd* fe = reorder_fe_.get();
  MutexLock lock(&fe->mu);
  return fe->stage ? fe->stage->stats() : ReorderStats();
}

void F0EstimatorSW::Drain() {
  IngestPool* pipeline;
  {
    MutexLock lock(&pipe_->mu);
    pipeline = pipe_->pipeline.get();
  }
  if (pipeline == nullptr) return;
  pipeline->Drain();
  // Sync the watermark so EstimateLatest() sees the fed stream's end:
  // the last explicit stamp on the stamped path (which also folds in any
  // serial inserts via NoteStamp), the last stream position otherwise.
  // Under pipe_->mu: concurrent Feeds read these fields through
  // LatchFeedMode.
  MutexLock lock(&pipe_->mu);
  pipe_->points_processed = pipeline->points_fed();
  pipe_->latest_stamp =
      pipe_->feed_mode == FeedMode::kStamped
          ? pipeline->latest_stamp()
          : static_cast<int64_t>(pipe_->points_processed) - 1;
}

double F0EstimatorSW::CombineRepetition(size_t rep, int64_t now) {
  // Collect the deepest non-empty level of each copy in this repetition.
  std::vector<double> levels;
  levels.reserve(copies_);
  for (size_t c = 0; c < copies_; ++c) {
    RobustL0SamplerSW& sampler = samplers_[rep * copies_ + c];
    const std::optional<uint32_t> deepest = sampler.DeepestNonEmptyLevel(now);
    if (!deepest.has_value()) continue;  // empty window in this copy
    levels.push_back(static_cast<double>(*deepest));
  }
  if (levels.empty()) return 0.0;

  if (combiner_ == F0SwCombiner::kFlajoletMartin) {
    double mean = 0.0;
    for (double l : levels) mean += l;
    mean /= static_cast<double>(levels.size());
    return phi_ * std::pow(2.0, mean);
  }
  // HyperLogLog-style combiner: the harmonic mean of the per-copy 2^level
  // values, φ-corrected like the FM combiner. Classical HLL multiplies by
  // an extra factor r because each of its registers only sees a 1/r slice
  // of the stream; here every copy sees the whole stream, so the harmonic
  // mean itself already estimates 0.77351·n (it only differs from the FM
  // combiner in how outlier copies are damped).
  double denom = 0.0;
  for (double l : levels) denom += std::pow(2.0, -l);
  const double r = static_cast<double>(levels.size());
  return phi_ * r / denom;
}

double F0EstimatorSW::Estimate(int64_t now) {
  std::vector<double> estimates;
  estimates.reserve(repetitions_);
  for (size_t rep = 0; rep < repetitions_; ++rep) {
    estimates.push_back(CombineRepetition(rep, now));
  }
  std::nth_element(estimates.begin(),
                   estimates.begin() + estimates.size() / 2, estimates.end());
  return estimates[estimates.size() / 2];
}

double F0EstimatorSW::EstimateLatest() {
  int64_t now;
  {
    MutexLock lock(&pipe_->mu);
    now = pipe_->latest_stamp;
  }
  return Estimate(now);
}

size_t F0EstimatorSW::SpaceWords() const {
  size_t words = 0;
  for (const RobustL0SamplerSW& sampler : samplers_) {
    words += sampler.SpaceWords();
  }
  return words;
}

}  // namespace rl0
