#include "rl0/core/options.h"

#include <algorithm>
#include <cmath>

#include "rl0/util/bits.h"

namespace rl0 {

double SamplerOptions::GridSide() const {
  switch (side_mode) {
    case GridSideMode::kConstantDim:
      return alpha / 2.0;
    case GridSideMode::kHighDim:
      return static_cast<double>(dim) * alpha;
    case GridSideMode::kCustom:
      return custom_side;
  }
  return 0.0;
}

size_t SamplerOptions::EffectiveAcceptCap() const {
  if (accept_cap != 0) return accept_cap;
  const uint64_t m = std::max<uint64_t>(expected_stream_length, 4);
  const double log_m = static_cast<double>(CeilLog2(m));
  const size_t base = static_cast<size_t>(std::ceil(kappa0 * log_m));
  return std::max<size_t>(base, 8) * std::max<size_t>(k, 1);
}

Status SamplerOptions::Validate() const {
  if (dim < 1) {
    return Status::InvalidArgument("dim must be >= 1");
  }
  if (!(alpha > 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument("alpha must be positive and finite");
  }
  if (side_mode == GridSideMode::kCustom &&
      (!(custom_side > 0.0) || !std::isfinite(custom_side))) {
    return Status::InvalidArgument("custom_side must be positive and finite");
  }
  if (kappa0 <= 0.0) {
    return Status::InvalidArgument("kappa0 must be positive");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (hash_family == HashFamily::kKWisePoly && kwise_k < 2) {
    return Status::InvalidArgument("kwise_k must be >= 2 for kKWisePoly");
  }
  if (expected_stream_length < 1) {
    return Status::InvalidArgument("expected_stream_length must be >= 1");
  }
  if (allowed_lateness < 0) {
    return Status::InvalidArgument("allowed_lateness must be >= 0");
  }
  return Status::OK();
}

}  // namespace rl0
