// Shared immutable state for a family of sampler instances.
//
// The hierarchical sliding-window sampler (Algorithm 3) runs many
// fixed-rate instances (Algorithm 2) that must share one random grid and
// one nested cell hash — levels differ only in the sampling level ℓ fed to
// CellHasher::SampledAtLevel. SamplerContext bundles that shared state.

#ifndef RL0_CORE_CONTEXT_H_
#define RL0_CORE_CONTEXT_H_

#include "rl0/core/options.h"
#include "rl0/grid/random_grid.h"
#include "rl0/hashing/cell_hasher.h"
#include "rl0/util/rng.h"

namespace rl0 {

/// Immutable per-sampler-family state: options, grid, hash.
struct SamplerContext {
  explicit SamplerContext(const SamplerOptions& opts)
      : options(opts),
        grid(opts.dim, opts.GridSide(), SplitMix64(opts.seed ^ 0x6772696400ULL),
             opts.metric),
        hasher(opts.hash_family, SplitMix64(opts.seed ^ 0x68617368ULL),
               opts.kwise_k) {}

  SamplerOptions options;
  RandomGrid grid;
  CellHasher hasher;
};

/// A stream point with everything the per-level samplers need, computed
/// once per arrival (the adjacency DFS dominates per-point cost and must
/// not be repeated at every level).
struct PreparedPoint {
  const Point* point = nullptr;
  int64_t stamp = 0;
  uint64_t stream_index = 0;
  uint64_t cell_key = 0;
  const std::vector<uint64_t>* adj_keys = nullptr;
};

}  // namespace rl0

#endif  // RL0_CORE_CONTEXT_H_
