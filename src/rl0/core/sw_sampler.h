// Space-efficient robust ℓ0-sampling over sliding windows (Algorithm 3),
// the paper's main technical contribution.
//
// The structure runs L+1 = ⌈log2 w⌉+1 instances of the fixed-rate
// Algorithm 2 with sample rates 1, 1/2, ..., 1/2^L over a dynamic
// partition of the window into subwindows: level ℓ covers an older slice
// of the window at a coarser rate. An arriving point is fed top-down
// (level L first) and is *recorded* at the highest level that either
// already tracks its group or samples/rejects it as a new representative;
// all lower levels are then pruned (their state describes a stream suffix
// that the recording level now owns). Because level 0 samples every cell,
// every point is recorded somewhere, and the newest stream suffix is
// always tracked at rate 1 — that is what guarantees a sample exists
// whenever the window is non-empty (Lemma 2.10).
//
// When a level's accept set outgrows κ0·log m, the level is Split
// (Algorithm 4): groups up to the last representative that survives the
// next level's rate are promoted (re-filtered at half the rate, keeping
// Definition 2.2's accept/reject semantics), the rest stay; the promoted
// part Merges (Algorithm 5) into the level above, possibly cascading. A
// cascade past level L is the paper's "error" event (Lemma 2.8: happens
// with probability ≤ 1/m² per step for large enough κ0); it is surfaced
// through error_count() rather than aborting.
//
// At query time the per-level samples are unified: each accepted group of
// level ℓ enters the candidate set with probability R_ℓ/R_c (c = deepest
// non-empty level), so every group in the window is present with equal
// probability 1/R_c, and a uniform candidate is returned.

#ifndef RL0_CORE_SW_SAMPLER_H_
#define RL0_CORE_SW_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "rl0/core/context.h"
#include "rl0/core/dup_filter.h"
#include "rl0/core/reorder_buffer.h"
#include "rl0/core/sample.h"
#include "rl0/core/sw_fixed_sampler.h"
#include "rl0/geom/point_store.h"
#include "rl0/util/space.h"
#include "rl0/util/span.h"
#include "rl0/util/status.h"

namespace rl0 {

/// Hierarchical sliding-window robust ℓ0-sampler (Algorithms 3–5).
///
/// Works for sequence-based windows (stamp = arrival index; use the
/// single-argument Insert) and time-based windows (stamp = arrival time,
/// non-decreasing). Movable, not copyable.
class RobustL0SamplerSW {
 public:
  /// Validates options and creates a sampler for windows of width
  /// `window` (points or time units, depending on stamp semantics).
  static Result<RobustL0SamplerSW> Create(const SamplerOptions& options,
                                          int64_t window);

  /// Feeds a point with an explicit stamp (time-based windows).
  /// Stamps must be non-decreasing.
  void Insert(const Point& p, int64_t stamp);

  /// Feeds a point stamped with its arrival index (sequence-based windows).
  void Insert(const Point& p);

  /// Core of every insert path: explicit stamp and explicit *global*
  /// stream position. This is the time-based sharded-ingestion primitive
  /// — lanes of a stamped windowed pool feed their residue class through
  /// it, so stamps and stream indices both survive re-chunking. Stamps
  /// must be non-decreasing; stream indices identify arrival order.
  void InsertStamped(const Point& p, int64_t stamp, uint64_t stream_index);

  /// Feeds a contiguous chunk of points in arrival order, each stamped
  /// with its arrival index. Equivalent to calling Insert per point.
  void InsertBatch(Span<const Point> points);

  /// Feeds a point at *global* stream position `global_index` of a shared
  /// stream, using the position as both the stamp and the stream index
  /// (sequence-based windows over the shared stream). This is the sharded
  /// ingestion primitive: lanes of a windowed pool see interleaved
  /// substreams but agree on global window boundaries. Global indices
  /// must be non-decreasing across calls.
  void InsertGlobal(const Point& p, uint64_t global_index);

  /// Processes the strided subsequence points[start], points[start+stride],
  /// ... of a shared stream through InsertGlobal with global positions
  /// `index_base + i` — the windowed analogue of
  /// RobustL0SamplerIW::InsertStrided (see ShardedSwSamplerPool).
  void InsertStrided(Span<const Point> points, size_t start, size_t stride,
                     uint64_t index_base = 0);

  /// The time-based analogue of InsertStrided: processes the strided
  /// subsequence through InsertStamped with stamp `stamps[i]` and global
  /// position `index_base + i`. `stamps` must align with `points` and be
  /// non-decreasing.
  void InsertStridedStamped(Span<const Point> points,
                            Span<const int64_t> stamps, size_t start,
                            size_t stride, uint64_t index_base = 0);

  /// Bounded-lateness serial ingestion (core/reorder_buffer.h): accepts
  /// stamps up to options().allowed_lateness behind the maximum stamp
  /// seen, reorders them, and feeds the released sorted prefix through
  /// the strict InsertStamped core — so for ANY arrival order within the
  /// bound, sampler state (coin streams and snapshot bytes included) is
  /// bit-identical to inserting the canonically sorted stream directly.
  /// Beyond-bound arrivals follow options().late_policy (late_stats()
  /// accounts for every one). Call FlushLate() before end-of-stream
  /// queries; do not mix with the strict insert paths.
  void InsertStampedLate(const Point& p, int64_t stamp);

  /// Releases everything the late path still buffers (end of stream or a
  /// checkpoint) and advances the event-time watermark to the maximum
  /// stamp seen. Arrivals offered afterwards resume with everything at
  /// or below that watermark judged late. No-op before any
  /// InsertStampedLate.
  void FlushLate();

  /// Counters of the late path's reorder stage (all-zero before any
  /// InsertStampedLate).
  ReorderStats late_stats() const;

  /// Side-channel sink for beyond-bound arrivals under
  /// LatePolicy::kSideChannel; without one they buffer inside the stage
  /// (ReorderStage::TakeLate). The sink runs on the inserting thread.
  void set_late_sink(ReorderStage::LateSink sink);

  /// Raises the event-time watermark: a promise that no future stamp
  /// will be below `watermark`. Scratch state — never serialized by
  /// SnapshotSamplerSW (a restored sampler resumes at its latest stamp),
  /// so noting watermarks keeps snapshot bytes bit-identical to the
  /// strict sorted feed. Queries read it through watermark().
  void NoteWatermark(int64_t watermark);

  /// Event time: the later of the latest inserted stamp and any noted
  /// watermark. Equals latest_stamp() on the strict paths (which never
  /// note watermarks).
  int64_t watermark() const {
    return has_event_watermark_ && event_watermark_ > latest_stamp_
               ? event_watermark_
               : latest_stamp_;
  }

  /// Returns a robust ℓ0-sample of the window at time `now`: a group alive
  /// in (now-window, now] chosen uniformly, represented by its latest
  /// point — or, with options.random_representative, by a uniformly
  /// random point of the group's window (Section 2.3 variant, implemented
  /// with per-group windowed reservoirs; within-group uniformity is exact
  /// for the fixed-rate Algorithm 2 and Θ(1)-approximate here, because a
  /// pruned-and-re-established group restarts its reservoir). Returns
  /// nullopt iff the window is empty. Expires state, hence non-const.
  std::optional<SampleItem> Sample(int64_t now, Xoshiro256pp* rng);

  /// Sample at the current event time — watermark(), which is the stamp
  /// of the most recent insertion unless a later watermark was noted
  /// (bounded-lateness ingestion).
  std::optional<SampleItem> SampleLatest(Xoshiro256pp* rng);

  /// Samples `count` distinct window groups without replacement
  /// (Section 2.3; set options.k ≥ count so the per-level caps are scaled
  /// accordingly). Fails with kFailedPrecondition when fewer than `count`
  /// groups survive the query-time rate unification — the unified pool is
  /// itself a random 1/R_c-rate subset, so callers may simply retry with
  /// fresh query randomness (each query redraws the pool).
  Result<std::vector<SampleItem>> SampleK(size_t count, int64_t now,
                                          Xoshiro256pp* rng);

  /// Deepest level with a non-empty accept set at `now` (the FM-style
  /// statistic used by the sliding-window F0 estimator, Section 5).
  /// nullopt iff the window is empty.
  std::optional<uint32_t> DeepestNonEmptyLevel(int64_t now);

  /// Appends one item per accepted group across all levels (no rate
  /// unification): the group's latest point, or its reservoir sample in
  /// reservoir mode. Expires at `now` first. Deterministic order (levels
  /// bottom-up, table slot order) — the merge surface of the windowed
  /// sharded pool and of the rate-1 determinism tests.
  void AcceptedWindowItems(int64_t now, std::vector<SampleItem>* out);

  /// The rate-unified query pool (Algorithm 3 lines 19-22): every group
  /// alive in the window enters with equal probability 1/R_c. Exposed so
  /// a sharded pool can unify per-shard pools before the uniform draw.
  std::vector<SampleItem> WindowQueryPool(int64_t now, Xoshiro256pp* rng) {
    return BuildQueryPool(now, rng, /*min_level=*/-1);
  }

  /// As WindowQueryPool, but unified to `unify_level` when that is deeper
  /// than this sampler's own deepest non-empty level: every group then
  /// enters the pool with probability 1/2^max(c, unify_level). A sharded
  /// pool passes the *global* deepest level across shards, so every
  /// shard's groups are selected at one common rate — without it a shard
  /// whose hierarchy is shallower would over-contribute by the rate gap
  /// (see ShardedSwSamplerPool::Sample).
  std::vector<SampleItem> WindowQueryPool(int64_t now, Xoshiro256pp* rng,
                                          int unify_level) {
    return BuildQueryPool(now, rng, unify_level);
  }

  /// Number of levels (L+1 with L = ⌈log2 window⌉).
  size_t num_levels() const { return levels_.size(); }
  /// Read access to a level (tests/instrumentation).
  const SwFixedRateSampler& level(size_t i) const { return *levels_[i]; }
  /// The window width.
  int64_t window() const { return window_; }
  /// Points processed so far.
  uint64_t points_processed() const { return points_processed_; }
  /// Stamp of the most recent insertion.
  int64_t latest_stamp() const { return latest_stamp_; }
  /// Number of Algorithm-3 "error" events (cascade past the top level).
  uint64_t error_count() const { return error_count_; }
  /// Number of abandoned cascades (no promotable representative; see
  /// DESIGN.md §3 resolution 1).
  uint64_t stuck_split_count() const { return stuck_split_count_; }
  /// The accept cap κ0·k·log m in force.
  size_t accept_cap() const { return accept_cap_; }

  /// Current space in words (sum over levels plus scalars, including the
  /// bounded-lateness reorder buffer while it holds points).
  size_t SpaceWords() const;
  /// Peak space in words since construction (reorder buffer included).
  size_t PeakSpaceWords() const { return meter_.peak(); }

  /// Duplicate-suppression front-end counters (core/dup_filter.h).
  DupFilterStats filter_stats() const {
    return dup_filter_.stats(points_processed_);
  }

  /// The options in force.
  const SamplerOptions& options() const { return ctx_->options; }

 private:
  friend Status SnapshotSamplerSW(const RobustL0SamplerSW& sampler,
                                  std::string* out);
  friend Result<RobustL0SamplerSW> RestoreSamplerSW(
      const std::string& snapshot);
  // Incremental checkpoints (core/checkpoint.h): the full cut marks the
  // dirty-tracking epoch, the delta cut serializes only touched slots.
  friend Status SnapshotSamplerFullSW(RobustL0SamplerSW* sampler,
                                      std::string* out);
  friend Status SnapshotSamplerDeltaSW(RobustL0SamplerSW* sampler,
                                       uint64_t base_checksum,
                                       std::string* out);

  RobustL0SamplerSW(const SamplerOptions& options, int64_t window);

  void Cascade(size_t start_level);
  void ExpireAll(int64_t now);

  /// Σ level generation over [from_level, L] — the front-end epoch of a
  /// descent that probed levels from_level..L. Lower levels are excluded
  /// because a recorded descent never probes them (they are only Reset,
  /// which the replay performs live regardless of their content); each
  /// level generation is monotone, so the sum is too and stale entries
  /// can never collide back to a valid epoch.
  uint64_t SuffixEpoch(size_t from_level) const;

  /// SpaceWords() minus the reorder buffer: the durable sampler state.
  size_t CoreSpaceWords() const;
  /// Refreshes both space meters after a state change.
  void UpdateMeters();

  /// Attempts to replay a recorded descent for an exact repeat arrival.
  /// Returns true when the arrival was fully handled (bit-identically to
  /// the full descent); false means the caller must run the full descent
  /// (any expiry work already done here is a prefix of what the full
  /// descent performs, so falling through stays identical too).
  bool TryReplayDuplicate(const Point& p, int64_t stamp,
                          uint64_t stream_index);

  /// Records a completed pure-touch descent (touch targets in
  /// touch_scratch_) under the suffix epoch of its probed levels.
  void RecordDuplicate(const PreparedPoint& prep, size_t accept_level);
  /// Collects the rate-unified candidate pool (Algorithm 3 lines 19-22),
  /// unified to max(own deepest level, min_level); min_level < 0 means
  /// the sampler's own deepest level.
  std::vector<SampleItem> BuildQueryPool(int64_t now, Xoshiro256pp* rng,
                                         int min_level);

  std::unique_ptr<SamplerContext> ctx_;
  std::unique_ptr<uint64_t> id_counter_;
  /// One arena for every level's points (stable address: levels hold it).
  std::unique_ptr<PointStore> store_;
  std::vector<std::unique_ptr<SwFixedRateSampler>> levels_;
  int64_t window_;
  size_t accept_cap_;
  uint64_t points_processed_ = 0;
  int64_t latest_stamp_ = 0;
  uint64_t error_count_ = 0;
  uint64_t stuck_split_count_ = 0;
  SpaceMeter meter_;
  /// Peak of CoreSpaceWords() only. Snapshots serialize THIS peak: the
  /// reorder buffer is scratch (like the dup filter), so its transient
  /// occupancy must not leak into snapshot bytes — late-path and strict
  /// sorted feeds stay bit-identical (the PR 7 contract).
  SpaceMeter core_meter_;
  std::vector<uint64_t> adj_scratch_;

  // Duplicate-suppression front-end (core/dup_filter.h). Payload layout:
  // word 0 = accept level (levels_.size() when no level accepted), words
  // 1..L+1 = per-level touched slot or SwGroupTable::kNpos. Scratch state
  // — not charged to the SpaceMeter, never snapshotted.
  DupFilter dup_filter_;
  // Per-level touch targets of the descent in flight (kNpos = level
  // ignored or arrival not recordable).
  std::vector<uint32_t> touch_scratch_;

  /// Drains the reorder stage's staged releases through the strict
  /// insert core and folds its low watermark into the event watermark.
  void DrainLateReleases();

  // Bounded-lateness front-end of InsertStampedLate (lazy; serial-path
  // twin of the pool's reorder stage). Like the dup filter, scratch
  // state: never snapshotted.
  std::unique_ptr<ReorderStage> reorder_;
  std::vector<Point> late_points_scratch_;
  std::vector<int64_t> late_stamps_scratch_;
  // Event-time watermark from NoteWatermark — scratch, not serialized
  // (restore resumes at the latest stamp), so watermark propagation
  // cannot perturb snapshot byte-identity with the strict sorted feed.
  bool has_event_watermark_ = false;
  int64_t event_watermark_ = 0;
};

}  // namespace rl0

#endif  // RL0_CORE_SW_SAMPLER_H_
