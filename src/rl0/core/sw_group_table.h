// Flat, arena-friendly storage for sliding-window candidate groups.
//
// The pre-refactor SwFixedRateSampler kept its groups in three node-based
// containers: an unordered_map<id, StoredGroup>, an unordered_multimap
// cell→id, and an ordered map<(stamp, id), id> for expiry — three heap
// allocations and three pointer chases per group operation. SwGroupTable
// flattens all of it, mirroring core/rep_table.h:
//
//   * group coordinates (representative, latest point, reservoir
//     candidates) live in the sampler family's shared PointStore arena;
//   * scalar fields are parallel columns indexed by a 32-bit slot,
//     recycled through a free list;
//   * cell membership is an intrusive chain threaded through the
//     `next_in_cell` column, with heads in a CellIndex (open addressing);
//   * expiry order is an intrusive doubly-linked list threaded through
//     the `stamp_prev`/`stamp_next` columns, kept sorted by latest stamp.
//     Stream arrivals only ever append at the tail (stamps are
//     non-decreasing) or move a refreshed group to the tail, both O(1);
//     the rare adoption of groups with older stamps (split promotion,
//     snapshot restore) inserts by walking back from the tail.
//
// No operation allocates per entry: the columns grow to the peak live
// population and everything else is slot surgery.
//
// Ownership: the table owns its groups' arena slots and reservoirs and
// releases them on Remove/Clear/destruction. Extract/AdoptMoved transfer
// that ownership between tables sharing one PointStore without touching
// the arena — the primitive behind the hierarchy's arena-internal split
// promotion (reservoir coin streams move intact).

#ifndef RL0_CORE_SW_GROUP_TABLE_H_
#define RL0_CORE_SW_GROUP_TABLE_H_

#include <cstdint>
#include <vector>

#include "rl0/core/rep_table.h"
#include "rl0/core/windowed_reservoir.h"
#include "rl0/geom/point_store.h"
#include "rl0/util/check.h"

namespace rl0 {

/// SoA table of sliding-window groups with a flat cell index and an
/// intrusive stamp-ordered expiry list. Move-only (owns arena slots).
class SwGroupTable {
 public:
  static constexpr uint32_t kNpos = CellIndex::kNpos;

  /// A group's fields with ownership of its arena refs and reservoir —
  /// the transfer format of Extract/AdoptMoved (both tables must share
  /// one PointStore; nothing is copied, reservoir state moves intact).
  struct MovedGroup {
    uint64_t id = 0;
    PointRef rep;
    uint64_t rep_index = 0;
    uint64_t rep_cell = 0;
    bool accepted = false;
    PointRef latest;
    int64_t latest_stamp = 0;
    uint64_t latest_index = 0;
    WindowedReservoir reservoir;
  };

  SwGroupTable() = default;
  ~SwGroupTable() { Clear(); }

  SwGroupTable(SwGroupTable&&) = default;
  SwGroupTable& operator=(SwGroupTable&&) = default;
  SwGroupTable(const SwGroupTable&) = delete;
  SwGroupTable& operator=(const SwGroupTable&) = delete;

  /// Binds the arena. Must be called once, before any insertion.
  void Bind(PointStore* store) {
    RL0_DCHECK(store_ == nullptr && live_ == 0);
    store_ = store;
  }

  // ----------------------------------------------------------- lifecycle

  /// Adds a fresh group whose representative and latest point are both
  /// `point`, appended at the expiry tail. Requires `stamp` ≥ every
  /// stored latest stamp (stream stamps are non-decreasing).
  uint32_t Add(uint64_t id, PointView point, uint64_t stream_index,
               uint64_t cell_key, bool accepted, int64_t stamp);

  /// Refreshes the latest point/stamp/index of `slot` and moves it to
  /// the expiry tail. Requires `stamp` ≥ every stored latest stamp.
  void Touch(uint32_t slot, PointView latest, int64_t stamp,
             uint64_t stream_index);

  /// Removes the group: unlinks both intrusive structures, releases its
  /// arena slots and reservoir, recycles the slot.
  void Remove(uint32_t slot);

  /// Unlinks and recycles `slot` WITHOUT releasing arena storage; the
  /// returned MovedGroup owns the refs and the (still-live) reservoir.
  MovedGroup Extract(uint32_t slot);

  /// Installs a moved group, inserting into the expiry list by stamp
  /// (walks back from the tail — O(1) for fresh stamps, O(live) worst
  /// case on the rare adoption paths). The group's refs must point into
  /// this table's bound store.
  uint32_t AdoptMoved(MovedGroup&& g);

  /// Releases every group and empties the table (the hierarchy's pruning
  /// step). Keeps column capacity.
  void Clear();

  /// Compacts the slot columns: live groups move down to [0, live()),
  /// both intrusive structures (cell chains, stamp list) are remapped
  /// link by link, and the CellIndex is rebuilt. Same contract as
  /// RepTable::Compact — the renumbering is monotone, so slot-order
  /// iteration and per-cell chain order are invariant — EXCEPT that the
  /// shared arena is NOT repacked: the PointStore is owned by the whole
  /// hierarchy (all levels plus their reservoirs hold refs into it), so a
  /// single level's table must not move arena slots. Externally held slot
  /// indices are invalidated.
  void Compact();

  /// Compacts when ≥50% of the slot columns are dead and the table is
  /// big enough to matter (expiry waves after a stream gap are the usual
  /// trigger). Returns whether it ran.
  bool MaybeCompact();

  /// Prefetches the CellIndex bucket of `key` (batch-ingestion paths
  /// issue this one stream element ahead).
  void PrefetchCell(uint64_t key) const { cell_index_.Prefetch(key); }

  /// True when the cell index is populated enough for a cold bucket load
  /// to be plausible (same gate as RepTable::PrefetchPays).
  bool PrefetchPays() const {
    return cell_index_.live() >= RepTable::kPrefetchMinCells;
  }

  // ------------------------------------------------------------- queries

  size_t live() const { return live_; }
  /// Upper bound over slot indices (iterate 0..slot_count(), skip dead).
  size_t slot_count() const { return flags_.size(); }
  bool IsLive(uint32_t slot) const { return (flags_[slot] & kLiveFlag) != 0; }

  uint64_t id(uint32_t slot) const { return id_[slot]; }
  PointRef rep_ref(uint32_t slot) const { return rep_[slot]; }
  /// The representative's arena slot index — the handle the batched
  /// distance kernels take (column-cached; no division on the gather).
  uint32_t rep_arena_slot(uint32_t slot) const { return rep_arena_[slot]; }
  uint64_t rep_index(uint32_t slot) const { return rep_index_[slot]; }
  uint64_t rep_cell(uint32_t slot) const { return rep_cell_[slot]; }
  bool accepted(uint32_t slot) const {
    return (flags_[slot] & kAcceptedFlag) != 0;
  }
  PointRef latest_ref(uint32_t slot) const { return latest_[slot]; }
  int64_t latest_stamp(uint32_t slot) const { return latest_stamp_[slot]; }
  uint64_t latest_index(uint32_t slot) const { return latest_index_[slot]; }
  WindowedReservoir& reservoir(uint32_t slot) { return reservoir_[slot]; }
  const WindowedReservoir& reservoir(uint32_t slot) const {
    return reservoir_[slot];
  }

  /// First slot of `key`'s cell chain (kNpos if none).
  uint32_t CellHead(uint64_t key) const { return cell_index_.Find(key); }
  /// Next slot in the same cell's chain (kNpos at the end).
  uint32_t NextInCell(uint32_t slot) const { return next_in_cell_[slot]; }

  /// The slot with the smallest latest stamp (kNpos when empty) — the
  /// expiry candidate.
  uint32_t OldestSlot() const { return stamp_head_; }

  /// The bound arena (introspection).
  const PointStore* store() const { return store_; }

  /// \brief Structure generation: bumped by every mutation that can change
  /// what a probe over this table observes — Add, Remove, Extract,
  /// AdoptMoved, Compact, and Clear (when it dropped live groups).
  ///
  /// Touch deliberately does NOT bump: it rewrites the latest point /
  /// stamp / expiry links, none of which the candidate probe reads (the
  /// probe walks cell chains and distance-checks representatives), and
  /// the duplicate-replay path performs its own expiry pass live. The
  /// duplicate-suppression front-end (core/dup_filter.h) sums these
  /// counters over the probed levels as its epoch. Monotone.
  uint64_t generation() const { return generation_; }

  // -------------------------------------------------- checkpoint support

  /// Starts a new checkpoint epoch (see RepTable::MarkCheckpoint): a slot
  /// reports SlotDirty() only for record mutations after this call.
  void MarkCheckpoint() { ++ckpt_seq_; }

  /// Whether `slot`'s record content changed since MarkCheckpoint().
  bool SlotDirty(uint32_t slot) const {
    return dirty_epoch_[slot] == ckpt_seq_;
  }

  /// Stamps `slot` into the current checkpoint epoch — the table stamps
  /// its own mutations; the owning sampler stamps reservoir mutations the
  /// table cannot observe (query-time expiry, candidate insertion).
  void MarkSlotDirty(uint32_t slot) { dirty_epoch_[slot] = ckpt_seq_; }

 private:
  enum : uint8_t { kLiveFlag = 1, kAcceptedFlag = 2 };

  uint32_t AllocateSlot();
  void LinkCell(uint32_t slot);
  void UnlinkCell(uint32_t slot);
  void AppendStampTail(uint32_t slot);
  void InsertStampSorted(uint32_t slot);
  void UnlinkStamp(uint32_t slot);

  PointStore* store_ = nullptr;
  CellIndex cell_index_;

  std::vector<uint64_t> id_;
  std::vector<PointRef> rep_;
  std::vector<uint32_t> rep_arena_;  // rep_'s arena slot index
  std::vector<uint64_t> rep_index_;
  std::vector<uint64_t> rep_cell_;
  std::vector<PointRef> latest_;
  std::vector<int64_t> latest_stamp_;
  std::vector<uint64_t> latest_index_;
  std::vector<WindowedReservoir> reservoir_;
  std::vector<uint8_t> flags_;
  std::vector<uint32_t> next_in_cell_;
  std::vector<uint32_t> stamp_prev_;
  std::vector<uint32_t> stamp_next_;

  // Checkpoint-epoch stamp per slot (dirty ⇔ stamp == ckpt_seq_); epochs
  // travel with their slots under Compact.
  std::vector<uint64_t> dirty_epoch_;
  uint64_t ckpt_seq_ = 0;

  uint32_t stamp_head_ = kNpos;
  uint32_t stamp_tail_ = kNpos;
  std::vector<uint32_t> free_slots_;
  size_t live_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace rl0

#endif  // RL0_CORE_SW_GROUP_TABLE_H_
