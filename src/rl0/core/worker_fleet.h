// A shared worker fleet: many ingestion pools, one set of threads.
//
// IngestPool's default mode spawns one dedicated thread per lane, which
// is right for a handful of pools but collapses in the multi-tenant
// server setting: a registry hosting hundreds of tenant pools would
// spawn hundreds of mostly-idle threads. A WorkerFleet decouples lanes
// from threads — pools created with IngestPool::Options::fleet register
// each lane as a fleet *member* instead of spawning a worker, and a
// fixed set of fleet threads services every registered lane.
//
// Scheduling is fair by construction: a member with pending chunks sits
// in a FIFO ready ring; a fleet thread pops the front member, runs at
// most ONE of its chunks, and re-enlists it at the BACK of the ring if
// it still has work. A tenant with a deep backlog therefore cannot
// starve its neighbours — between any two chunks of one lane, every
// other ready lane gets a turn. Backpressure is unchanged: producers
// still block on the lane's bounded queue, not on the fleet.
//
// Ordering guarantee: a member is enlisted at most once and run by at
// most one thread at a time (the enlisted/running flags below), so a
// lane's chunks are consumed strictly in queue order — the pipeline's
// determinism contract (core/ingest_pool.h) holds identically in fleet
// mode.
//
// Lifetime: the fleet must outlive every pool registered with it.
// Deregister() (called from IngestPool::Stop) blocks until the member's
// callback is not running, after which the fleet never touches it again.

#ifndef RL0_CORE_WORKER_FLEET_H_
#define RL0_CORE_WORKER_FLEET_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rl0/util/sync.h"
#include "rl0/util/thread_annotations.h"

namespace rl0 {

/// A fixed set of threads servicing registered lanes round-robin.
class WorkerFleet {
 public:
  /// A member's work callback: consume at most one pending chunk and
  /// return whether one was consumed (false = nothing pending). Runs on
  /// a fleet thread with no fleet lock held; must not call back into
  /// this fleet for the same member.
  using LaneFn = std::function<bool()>;

  /// Starts `threads` fleet threads (at least 1).
  explicit WorkerFleet(size_t threads);

  /// Joins the threads after finishing all enlisted work. Every member
  /// must have been deregistered (pools stopped) before destruction.
  ~WorkerFleet();

  WorkerFleet(const WorkerFleet&) = delete;
  WorkerFleet& operator=(const WorkerFleet&) = delete;

  /// Registers a lane; returns its member id. Safe from any thread.
  uint64_t Register(LaneFn fn);

  /// Removes a member: drops any pending enlistment and blocks until
  /// the member's callback is not running on any fleet thread. After
  /// return the fleet never invokes the callback again.
  void Deregister(uint64_t id);

  /// Signals that member `id` may have pending work. Cheap; coalesces
  /// with an existing enlistment, and a notification racing the
  /// member's own run is latched and re-enlists it afterwards (no lost
  /// wakeups). Safe from any thread.
  void Notify(uint64_t id);

  size_t num_threads() const { return threads_.size(); }

  /// Members currently registered (introspection / tests).
  size_t lanes_registered() const;

 private:
  /// All flag members are guarded by the fleet's mu_ (a nested struct
  /// cannot name the enclosing class's mutex in RL0_GUARDED_BY, so the
  /// contract lives here); `fn` is immutable after Register and is the
  /// only field touched without the lock (invoked with mu_ released).
  struct Member {
    LaneFn fn;
    /// In the ready ring (set ⇒ exactly one ring entry).
    bool enlisted = false;
    /// A fleet thread is inside fn right now.
    bool running = false;
    /// Notify arrived while running — re-enlist when the run ends.
    bool renotify = false;
    /// Deregister started; never re-enlist.
    bool dead = false;
  };

  void WorkerLoop();

  mutable Mutex mu_;
  CondVar work_cv_;
  /// Signalled when a member's run ends (Deregister waits on it).
  CondVar idle_cv_;
  std::deque<uint64_t> ready_ RL0_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::unique_ptr<Member>> members_
      RL0_GUARDED_BY(mu_);
  uint64_t next_id_ RL0_GUARDED_BY(mu_) = 1;
  bool stopping_ RL0_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace rl0

#endif  // RL0_CORE_WORKER_FLEET_H_
