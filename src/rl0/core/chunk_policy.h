// Adaptive chunk sizing for the persistent ingestion pipeline.
//
// The pipeline's unit of work is a chunk: every Feed broadcasts one chunk
// to each lane's bounded queue, paying a fixed per-chunk cost (the feed
// lock, S queue pushes, S wakeups) regardless of chunk size. The right
// chunk size therefore depends on who is the bottleneck:
//
//   * queues backing up  — the lanes are the bottleneck; bigger chunks
//     amortize the per-chunk overhead across more points (throughput);
//   * queues empty       — the producer is the bottleneck and the lanes
//     starve between chunks; smaller chunks hand work over sooner
//     (pipelining/latency), at a per-chunk cost the idle lanes can absorb.
//
// AdaptiveChunkPolicy packages that feedback loop behind one object used
// by both sharded pools (ShardedSamplerPool::FeedAdaptive,
// ShardedSwSamplerPool::FeedAdaptive/FeedStampedAdaptive): after each
// chunk the producer reports the deepest lane queue
// (IngestPool::MaxQueueDepth) and the policy doubles or halves the next
// chunk within [min_chunk, max_chunk]. Chunk boundaries never affect
// results — the pipeline determinism contract (global-residue partition,
// atomic index bases and stamp arrays riding the chunks) makes per-lane
// state chunking-invariant — so the policy is free to chase throughput.
//
// Not thread-safe: one policy belongs to one producer loop. Concurrent
// producers each chop their own stream; the pipeline interleaves chunks,
// not points.

#ifndef RL0_CORE_CHUNK_POLICY_H_
#define RL0_CORE_CHUNK_POLICY_H_

#include <cstddef>

namespace rl0 {

/// Tuning knobs for AdaptiveChunkPolicy.
struct AdaptiveChunkOptions {
  /// Smallest chunk the policy will recommend.
  size_t min_chunk = 256;
  /// Largest chunk the policy will recommend.
  size_t max_chunk = 32768;
  /// First recommendation, before any feedback.
  size_t initial_chunk = 2048;
  /// Queue fill fraction (deepest lane / capacity) at or above which the
  /// chunk grows. Below it, an *empty* deepest queue shrinks the chunk;
  /// anything in between leaves it unchanged (hysteresis band).
  double backlog_threshold = 0.5;
};

/// Queue-depth-driven chunk sizing (grow on backlog, shrink on
/// starvation, hysteresis in between).
class AdaptiveChunkPolicy {
 public:
  AdaptiveChunkPolicy() : AdaptiveChunkPolicy(AdaptiveChunkOptions()) {}
  explicit AdaptiveChunkPolicy(const AdaptiveChunkOptions& options)
      : options_(Sanitize(options)), chunk_(Clamp(options_.initial_chunk)) {}

  /// The recommended size for the next chunk.
  size_t chunk() const { return chunk_; }

  /// Feedback after a chunk was enqueued: `max_queue_depth` is the
  /// deepest lane queue (IngestPool::MaxQueueDepth()), `queue_capacity`
  /// the per-lane capacity (IngestPool::queue_capacity()).
  void Observe(size_t max_queue_depth, size_t queue_capacity) {
    if (queue_capacity == 0) return;
    const double fill = static_cast<double>(max_queue_depth) /
                        static_cast<double>(queue_capacity);
    if (fill >= options_.backlog_threshold) {
      chunk_ = Clamp(chunk_ * 2);
    } else if (max_queue_depth == 0) {
      chunk_ = Clamp(chunk_ / 2);
    }
  }

  /// The (sanitized) options in force.
  const AdaptiveChunkOptions& options() const { return options_; }

 private:
  static AdaptiveChunkOptions Sanitize(AdaptiveChunkOptions o) {
    if (o.min_chunk < 1) o.min_chunk = 1;
    if (o.max_chunk < o.min_chunk) o.max_chunk = o.min_chunk;
    if (o.backlog_threshold <= 0.0) o.backlog_threshold = 0.5;
    return o;
  }
  size_t Clamp(size_t chunk) const {
    if (chunk < options_.min_chunk) return options_.min_chunk;
    if (chunk > options_.max_chunk) return options_.max_chunk;
    return chunk;
  }

  AdaptiveChunkOptions options_;
  size_t chunk_;
};

}  // namespace rl0

#endif  // RL0_CORE_CHUNK_POLICY_H_
