#include "rl0/core/snapshot.h"

#include <cstring>

#include "rl0/util/serialize.h"

namespace rl0 {

namespace {
constexpr char kMagic[8] = {'R', 'L', '0', 'S', 'N', 'A', 'P', '\0'};
constexpr char kMagicSW[8] = {'R', 'L', '0', 'S', 'N', 'P', 'W', '\0'};
// Version 2 appends the space meter's peak watermark to both formats;
// version-1 blobs are still restorable (peak restarts at current size).
constexpr uint32_t kVersion = 2;

/// FNV-1a over the payload, finalized with SplitMix64 — detects any
/// corruption of the blob, not just fields covered by structural checks.
uint64_t Checksum(const std::string& data, size_t length) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < length; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return SplitMix64(h);
}

void PutPoint(BinaryWriter* writer, PointView p) {
  for (size_t i = 0; i < p.dim(); ++i) writer->PutDouble(p[i]);
}

Status GetPoint(BinaryReader* reader, size_t dim, Point* out) {
  *out = Point(dim);
  for (size_t i = 0; i < dim; ++i) {
    Status s = reader->GetDouble(&(*out)[i]);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace

namespace {

void PutOptions(BinaryWriter* writer, const SamplerOptions& opts) {
  writer->PutU64(opts.dim);
  writer->PutDouble(opts.alpha);
  writer->PutU8(static_cast<uint8_t>(opts.metric));
  writer->PutU64(opts.seed);
  writer->PutU8(static_cast<uint8_t>(opts.side_mode));
  writer->PutDouble(opts.custom_side);
  writer->PutU8(static_cast<uint8_t>(opts.hash_family));
  writer->PutU32(opts.kwise_k);
  writer->PutDouble(opts.kappa0);
  writer->PutU64(opts.expected_stream_length);
  writer->PutU64(opts.accept_cap);
  writer->PutU64(opts.k);
  writer->PutU8(opts.random_representative ? 1 : 0);
}

Status GetOptions(BinaryReader* reader, SamplerOptions* opts) {
  uint8_t metric = 0, side_mode = 0, hash_family = 0, reservoir = 0;
  uint64_t dim = 0, accept_cap = 0, sample_k = 0;
  if (Status st = reader->GetU64(&dim); !st.ok()) return st;
  if (Status st = reader->GetDouble(&opts->alpha); !st.ok()) return st;
  if (Status st = reader->GetU8(&metric); !st.ok()) return st;
  if (Status st = reader->GetU64(&opts->seed); !st.ok()) return st;
  if (Status st = reader->GetU8(&side_mode); !st.ok()) return st;
  if (Status st = reader->GetDouble(&opts->custom_side); !st.ok()) return st;
  if (Status st = reader->GetU8(&hash_family); !st.ok()) return st;
  if (Status st = reader->GetU32(&opts->kwise_k); !st.ok()) return st;
  if (Status st = reader->GetDouble(&opts->kappa0); !st.ok()) return st;
  if (Status st = reader->GetU64(&opts->expected_stream_length); !st.ok()) {
    return st;
  }
  if (Status st = reader->GetU64(&accept_cap); !st.ok()) return st;
  if (Status st = reader->GetU64(&sample_k); !st.ok()) return st;
  if (Status st = reader->GetU8(&reservoir); !st.ok()) return st;
  opts->dim = static_cast<size_t>(dim);
  if (metric > static_cast<uint8_t>(Metric::kLinf)) {
    return Status::InvalidArgument("bad metric in snapshot");
  }
  opts->metric = static_cast<Metric>(metric);
  if (side_mode > static_cast<uint8_t>(GridSideMode::kCustom)) {
    return Status::InvalidArgument("bad side mode in snapshot");
  }
  opts->side_mode = static_cast<GridSideMode>(side_mode);
  if (hash_family > static_cast<uint8_t>(HashFamily::kKWisePoly)) {
    return Status::InvalidArgument("bad hash family in snapshot");
  }
  opts->hash_family = static_cast<HashFamily>(hash_family);
  opts->accept_cap = static_cast<size_t>(accept_cap);
  opts->k = static_cast<size_t>(sample_k);
  opts->random_representative = reservoir != 0;
  return Status::OK();
}

/// Verifies the trailing checksum and returns the payload prefix.
Result<std::string> CheckedPayload(const std::string& snapshot) {
  if (snapshot.size() < sizeof(uint64_t)) {
    return Status::InvalidArgument("snapshot too small");
  }
  const size_t payload_size = snapshot.size() - sizeof(uint64_t);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, snapshot.data() + payload_size,
              sizeof(stored_checksum));
  if (Checksum(snapshot, payload_size) != stored_checksum) {
    return Status::InvalidArgument("snapshot checksum mismatch");
  }
  return snapshot.substr(0, payload_size);
}

}  // namespace

Status SnapshotSampler(const RobustL0SamplerIW& sampler, std::string* out) {
  out->clear();
  BinaryWriter writer(out);
  writer.PutBytes(kMagic, sizeof(kMagic));
  writer.PutU32(kVersion);
  PutOptions(&writer, sampler.options_);
  writer.PutU32(sampler.level_);
  writer.PutU64(sampler.points_processed_);
  writer.PutU64(sampler.next_rep_id_);
  writer.PutU64(sampler.meter_.peak());

  const RepTable& reps = sampler.reps_;
  const bool reservoir_mode = sampler.options_.random_representative;
  writer.PutU64(reps.live());
  const size_t slots = reps.slot_count();
  for (uint32_t slot = 0; slot < slots; ++slot) {
    if (!reps.IsLive(slot)) continue;
    writer.PutU64(reps.id(slot));
    writer.PutU64(reps.stream_index(slot));
    writer.PutU64(reps.cell_key(slot));
    writer.PutU8(reps.accepted(slot) ? 1 : 0);
    // The reservoir columns exist only in reservoir mode; the format keeps
    // them unconditionally (degenerate values otherwise) for stability.
    writer.PutU64(reservoir_mode ? reps.group_count(slot) : 1);
    writer.PutU64(reservoir_mode ? reps.sample_index(slot)
                                 : reps.stream_index(slot));
    PutPoint(&writer, reps.point(slot));
    PutPoint(&writer, reservoir_mode ? reps.sample_point(slot)
                                     : reps.point(slot));
  }
  writer.PutU64(Checksum(*out, out->size()));
  return Status::OK();
}

Result<RobustL0SamplerIW> RestoreSampler(const std::string& snapshot) {
  Result<std::string> payload_result = CheckedPayload(snapshot);
  if (!payload_result.ok()) return payload_result.status();
  const std::string payload = std::move(payload_result).value();
  BinaryReader reader(payload);
  char magic[8];
  Status s = reader.GetBytes(magic, sizeof(magic));
  if (!s.ok()) return s;
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an rl0 snapshot");
  }
  uint32_t version = 0;
  if (Status st = reader.GetU32(&version); !st.ok()) return st;
  if (version < 1 || version > kVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }

  SamplerOptions opts;
  if (Status st = GetOptions(&reader, &opts); !st.ok()) return st;

  Result<RobustL0SamplerIW> created = RobustL0SamplerIW::Create(opts);
  if (!created.ok()) return created.status();
  RobustL0SamplerIW sampler = std::move(created).value();

  uint32_t level = 0;
  if (Status st = reader.GetU32(&level); !st.ok()) return st;
  if (level > CellHasher::kMaxLevel) {
    return Status::InvalidArgument("bad level in snapshot");
  }
  sampler.level_ = level;
  if (Status st = reader.GetU64(&sampler.points_processed_); !st.ok()) {
    return st;
  }
  if (Status st = reader.GetU64(&sampler.next_rep_id_); !st.ok()) return st;
  uint64_t peak_words = 0;
  if (version >= 2) {
    if (Status st = reader.GetU64(&peak_words); !st.ok()) return st;
  }

  uint64_t rep_count = 0;
  if (Status st = reader.GetU64(&rep_count); !st.ok()) return st;
  // Defensive bound before any reserve: every representative record costs
  // at least its fixed fields plus two points, so a count the remaining
  // bytes cannot possibly hold is malformed.
  const size_t min_rep_bytes = 41 + 16 * opts.dim;
  if (rep_count > reader.remaining() / min_rep_bytes) {
    return Status::InvalidArgument("bad representative count in snapshot");
  }
  size_t accept_size = 0;
  for (uint64_t i = 0; i < rep_count; ++i) {
    uint64_t id = 0, stream_index = 0, cell_key = 0;
    uint64_t group_count = 0, sample_index = 0;
    uint8_t accepted = 0;
    Point point, sample_point;
    if (Status st = reader.GetU64(&id); !st.ok()) return st;
    if (Status st = reader.GetU64(&stream_index); !st.ok()) return st;
    if (Status st = reader.GetU64(&cell_key); !st.ok()) return st;
    if (Status st = reader.GetU8(&accepted); !st.ok()) return st;
    if (Status st = reader.GetU64(&group_count); !st.ok()) return st;
    if (Status st = reader.GetU64(&sample_index); !st.ok()) return st;
    if (Status st = GetPoint(&reader, opts.dim, &point); !st.ok()) return st;
    if (Status st = GetPoint(&reader, opts.dim, &sample_point); !st.ok()) {
      return st;
    }
    // Integrity: the stored cell key must match the deterministic grid.
    if (sampler.grid_.CellKeyOf(point) != cell_key) {
      return Status::InvalidArgument("cell key mismatch in snapshot");
    }
    accept_size += accepted != 0;
    const uint32_t slot = sampler.reps_.Add(point, id, stream_index,
                                            cell_key, accepted != 0);
    if (opts.random_representative) {
      sampler.reps_.set_sample_point(slot, sample_point);
      sampler.reps_.set_sample_index(slot, sample_index);
      sampler.reps_.set_group_count(slot, group_count);
    }
    sampler.meter_.Add(sampler.RepWords());
  }
  sampler.accept_size_ = accept_size;
  if (Status st = reader.ExpectEnd(); !st.ok()) return st;
  // v2 blobs carry the original peak watermark; v1 blobs predate it and
  // keep the legacy behaviour (peak restarts at the restored size).
  if (version >= 2) sampler.meter_.RestorePeak(peak_words);

  // Reservoir coin stream restarts from a seed derived from the restore
  // point (see header: statistically equivalent, not bit-identical).
  sampler.reservoir_rng_ = Xoshiro256pp(
      SplitMix64(opts.seed ^ (sampler.points_processed_ * 0x9E3779B9ULL) ^
                 0x524553544FULL));
  return sampler;
}

Status SnapshotSamplerSW(const RobustL0SamplerSW& sampler, std::string* out) {
  out->clear();
  BinaryWriter writer(out);
  writer.PutBytes(kMagicSW, sizeof(kMagicSW));
  writer.PutU32(kVersion);
  PutOptions(&writer, sampler.ctx_->options);
  writer.PutI64(sampler.window_);
  writer.PutU64(*sampler.id_counter_);
  writer.PutU64(sampler.points_processed_);
  writer.PutI64(sampler.latest_stamp_);
  writer.PutU64(sampler.error_count_);
  writer.PutU64(sampler.stuck_split_count_);
  // The core peak only: the reorder buffer is scratch, so late-path
  // buffering must not leak into snapshot bytes (bit-identity with the
  // strict sorted feed).
  writer.PutU64(sampler.core_meter_.peak());

  writer.PutU64(sampler.levels_.size());
  std::vector<GroupRecord> groups;
  for (const auto& level : sampler.levels_) {
    groups.clear();
    level->SnapshotGroups(&groups);
    writer.PutU64(groups.size());
    for (const GroupRecord& g : groups) {
      writer.PutU64(g.id);
      writer.PutU64(g.rep_index);
      writer.PutU64(g.rep_cell);
      writer.PutU8(g.accepted ? 1 : 0);
      PutPoint(&writer, g.rep);
      PutPoint(&writer, g.latest);
      writer.PutI64(g.latest_stamp);
      writer.PutU64(g.latest_index);
      writer.PutU64(g.reservoir.size());
      for (const auto& candidate : g.reservoir) {
        writer.PutU64(candidate.priority);
        writer.PutI64(candidate.stamp);
        writer.PutU64(candidate.stream_index);
        PutPoint(&writer, candidate.point);
      }
    }
  }
  writer.PutU64(Checksum(*out, out->size()));
  return Status::OK();
}

Result<RobustL0SamplerSW> RestoreSamplerSW(const std::string& snapshot) {
  Result<std::string> payload_result = CheckedPayload(snapshot);
  if (!payload_result.ok()) return payload_result.status();
  const std::string payload = std::move(payload_result).value();
  BinaryReader reader(payload);
  char magic[8];
  if (Status st = reader.GetBytes(magic, sizeof(magic)); !st.ok()) return st;
  if (std::memcmp(magic, kMagicSW, sizeof(kMagicSW)) != 0) {
    return Status::InvalidArgument("not an rl0 sliding-window snapshot");
  }
  uint32_t version = 0;
  if (Status st = reader.GetU32(&version); !st.ok()) return st;
  if (version < 1 || version > kVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }

  SamplerOptions opts;
  if (Status st = GetOptions(&reader, &opts); !st.ok()) return st;
  int64_t window = 0;
  if (Status st = reader.GetI64(&window); !st.ok()) return st;

  Result<RobustL0SamplerSW> created = RobustL0SamplerSW::Create(opts, window);
  if (!created.ok()) return created.status();
  RobustL0SamplerSW sampler = std::move(created).value();

  if (Status st = reader.GetU64(sampler.id_counter_.get()); !st.ok()) {
    return st;
  }
  if (Status st = reader.GetU64(&sampler.points_processed_); !st.ok()) {
    return st;
  }
  if (Status st = reader.GetI64(&sampler.latest_stamp_); !st.ok()) return st;
  if (Status st = reader.GetU64(&sampler.error_count_); !st.ok()) return st;
  if (Status st = reader.GetU64(&sampler.stuck_split_count_); !st.ok()) {
    return st;
  }
  uint64_t peak_words = 0;
  if (version >= 2) {
    if (Status st = reader.GetU64(&peak_words); !st.ok()) return st;
  }

  uint64_t level_count = 0;
  if (Status st = reader.GetU64(&level_count); !st.ok()) return st;
  if (level_count != sampler.levels_.size()) {
    return Status::InvalidArgument("level count mismatch in snapshot");
  }
  for (size_t l = 0; l < level_count; ++l) {
    uint64_t group_count = 0;
    if (Status st = reader.GetU64(&group_count); !st.ok()) return st;
    // Minimum bytes per group record (fixed fields + two points + an
    // empty reservoir): bound the count before reserving anything.
    const size_t min_group_bytes = 49 + 16 * opts.dim;
    if (group_count > reader.remaining() / min_group_bytes) {
      return Status::InvalidArgument("bad group count in snapshot");
    }
    std::vector<GroupRecord> groups;
    groups.reserve(group_count);
    for (uint64_t i = 0; i < group_count; ++i) {
      GroupRecord g;
      uint8_t accepted = 0;
      if (Status st = reader.GetU64(&g.id); !st.ok()) return st;
      if (Status st = reader.GetU64(&g.rep_index); !st.ok()) return st;
      if (Status st = reader.GetU64(&g.rep_cell); !st.ok()) return st;
      if (Status st = reader.GetU8(&accepted); !st.ok()) return st;
      if (Status st = GetPoint(&reader, opts.dim, &g.rep); !st.ok()) {
        return st;
      }
      if (Status st = GetPoint(&reader, opts.dim, &g.latest); !st.ok()) {
        return st;
      }
      if (Status st = reader.GetI64(&g.latest_stamp); !st.ok()) return st;
      if (Status st = reader.GetU64(&g.latest_index); !st.ok()) return st;
      g.accepted = accepted != 0;
      // Integrity: the cell key and the acceptance bit must be consistent
      // with the deterministic grid and hash at this level.
      if (sampler.ctx_->grid.CellKeyOf(g.rep) != g.rep_cell) {
        return Status::InvalidArgument("cell key mismatch in snapshot");
      }
      if (g.accepted && !sampler.ctx_->hasher.SampledAtLevel(
                            g.rep_cell, static_cast<uint32_t>(l))) {
        return Status::InvalidArgument(
            "acceptance bit inconsistent with hash in snapshot");
      }
      uint64_t candidate_count = 0;
      if (Status st = reader.GetU64(&candidate_count); !st.ok()) return st;
      // Same per-record bound for reservoir candidates (three scalars
      // plus a point each).
      const size_t min_candidate_bytes = 24 + 8 * opts.dim;
      if (candidate_count > reader.remaining() / min_candidate_bytes) {
        return Status::InvalidArgument("bad reservoir size in snapshot");
      }
      g.reservoir.reserve(candidate_count);
      for (uint64_t c = 0; c < candidate_count; ++c) {
        WindowedReservoir::RestoredCandidate candidate;
        if (Status st = reader.GetU64(&candidate.priority); !st.ok()) {
          return st;
        }
        if (Status st = reader.GetI64(&candidate.stamp); !st.ok()) return st;
        if (Status st = reader.GetU64(&candidate.stream_index); !st.ok()) {
          return st;
        }
        if (Status st = GetPoint(&reader, opts.dim, &candidate.point);
            !st.ok()) {
          return st;
        }
        g.reservoir.push_back(std::move(candidate));
      }
      groups.push_back(std::move(g));
    }
    sampler.levels_[l]->MergeFrom(std::move(groups));
  }
  if (Status st = reader.ExpectEnd(); !st.ok()) return st;
  sampler.UpdateMeters();
  // v2 blobs carry the original core peak watermark (v1: legacy restart).
  if (version >= 2) {
    sampler.core_meter_.RestorePeak(peak_words);
    sampler.meter_.RestorePeak(peak_words);
  }
  return sampler;
}

}  // namespace rl0
