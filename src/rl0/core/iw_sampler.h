// Robust ℓ0-sampling in the infinite-window streaming model (Algorithm 1).
//
// The sampler maintains
//   Sacc — representatives of *sampled* groups (their cell is sampled by
//          the nested hash h_R at the current rate 1/R), and
//   Srej — representatives of *rejected* groups (own cell not sampled but
//          some cell within distance α of the representative is sampled).
// An arriving point that lies within α of a stored representative belongs
// to an already-judged candidate group and is skipped; otherwise it is the
// first point of its group near a sampled cell and becomes a new
// representative (accepted or rejected). Srej must be kept: it records the
// true first point of groups that could otherwise be "double-counted"
// through a later point falling into a sampled cell, which would bias the
// sample (paper Section 2.1).
//
// Whenever |Sacc| exceeds κ0·k·log m the rate is halved (R doubled) and the
// sets are re-filtered; nestedness of h_R (Fact 1(b)) makes the re-filter
// consistent with decisions already taken.
//
// At query time a uniform element of Sacc is returned — each group's
// representative is in Sacc with equal probability 1/R, so the returned
// group is uniform among all groups (Theorem 2.4); for general datasets
// the guarantee degrades gracefully to Θ(1/F0(S,α)) per α-ball
// (Theorem 3.1).
//
// Storage: representatives live in a RepTable — coordinates in a flat
// PointStore arena, scalar fields in parallel columns, cell membership in
// an open-addressing CellIndex (see core/rep_table.h). The refactor is
// decision-preserving: for a fixed seed the accept/reject trajectory is
// identical to the reference map-based implementation
// (baseline/legacy_iw_sampler.h), which the differential tests pin.

#ifndef RL0_CORE_IW_SAMPLER_H_
#define RL0_CORE_IW_SAMPLER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "rl0/core/dup_filter.h"
#include "rl0/core/options.h"
#include "rl0/core/rep_table.h"
#include "rl0/core/sample.h"
#include "rl0/geom/distance_kernels.h"
#include "rl0/geom/point.h"
#include "rl0/grid/random_grid.h"
#include "rl0/hashing/cell_hasher.h"
#include "rl0/util/rng.h"
#include "rl0/util/space.h"
#include "rl0/util/span.h"
#include "rl0/util/status.h"

namespace rl0 {

/// Infinite-window robust ℓ0-sampler (paper Algorithm 1).
///
/// Single-threaded streaming structure: Insert points one at a time (or in
/// contiguous batches), query with Sample()/SampleK() at any moment. All
/// randomness derives from options.seed; query-time randomness comes from
/// the caller's generator.
class RobustL0SamplerIW {
 public:
  /// Validates `options` and constructs a sampler.
  static Result<RobustL0SamplerIW> Create(const SamplerOptions& options);

  /// Processes the next stream point. Requires p.dim() == options.dim.
  void Insert(const Point& p);

  /// Processes a contiguous chunk of stream points in arrival order —
  /// the preferred ingestion path: one virtual-call-free loop over
  /// cache-resident input. Equivalent to calling Insert per point.
  void InsertBatch(Span<const Point> points);

  /// Processes the strided subsequence points[start], points[start+stride],
  /// ... of a shared stream, stamping each with its *global* position
  /// `index_base + i` (i = position in `points`). This is the
  /// sharded-ingestion path: shard s of S consumes (start=s, stride=S)
  /// and the global stream indices make the shards' states mergeable
  /// without index collisions; `index_base` is the number of stream
  /// points consumed before this span, so chunked feeding keeps indices
  /// globally unique (see ShardedSamplerPool::ConsumeParallel).
  void InsertStrided(Span<const Point> points, size_t start, size_t stride,
                     uint64_t index_base = 0);

  /// Returns a robust ℓ0-sample: a uniformly random element of Sacc
  /// (with the reservoir variant enabled, a uniformly random point of a
  /// uniformly sampled group). Returns nullopt iff no point was inserted
  /// or the accept set is empty (probability ≤ 1/m over the hash).
  std::optional<SampleItem> Sample(Xoshiro256pp* rng) const;

  /// Convenience overload seeding a fresh query-time generator.
  std::optional<SampleItem> Sample(uint64_t query_seed) const;

  /// Samples `count` distinct groups without replacement (Section 2.3;
  /// requires options.k ≥ count so the accept cap was scaled accordingly).
  /// Fails with kFailedPrecondition if fewer than `count` groups are
  /// currently accepted.
  Result<std::vector<SampleItem>> SampleK(size_t count,
                                          Xoshiro256pp* rng) const;

  /// Merges the state of `other` into this sampler, so that afterwards
  /// this sampler behaves as a robust ℓ0-sampler over the *union* of the
  /// two input streams — the distributed-streams setting of the related
  /// work the paper cites (Chung & Tirthapura). Both samplers must have
  /// been created with identical options (in particular the same seed, so
  /// they share one grid and one cell hash; this is the standard
  /// shared-randomness assumption of mergeable sketches).
  ///
  /// Guarantee: for well-separated unions the merged accept set holds each
  /// union group with equal probability 1/R — when both partitions judged
  /// a group, the earlier representative wins deterministically and both
  /// were judged through the same cell hash. When a group was *ignored*
  /// by one partition (no sampled cell near its local first point) the
  /// other partition's representative stands in, which relaxes uniformity
  /// to the Θ(1/n) of Theorem 3.1. SampleItem::stream_index values refer
  /// to positions in the originating partition after a merge; feed the
  /// partitions with InsertStrided to make them global stream positions
  /// (then earlier-representative-wins resolves by true arrival order).
  Status AbsorbFrom(const RobustL0SamplerIW& other);

  /// Number of accepted representatives |Sacc|.
  size_t accept_size() const { return accept_size_; }
  /// Number of rejected representatives |Srej|.
  size_t reject_size() const { return reps_.live() - accept_size_; }
  /// Current level ℓ (sample rate 1/R with R = 2^ℓ).
  uint32_t level() const { return level_; }
  /// Current R = 2^level.
  uint64_t rate_reciprocal() const { return uint64_t{1} << level_; }
  /// Total points processed.
  uint64_t points_processed() const { return points_processed_; }

  /// Current space in words under the accounting model of util/space.h.
  size_t SpaceWords() const { return meter_.current(); }
  /// Peak space in words since construction.
  size_t PeakSpaceWords() const { return meter_.peak(); }

  /// Duplicate-suppression front-end counters (core/dup_filter.h).
  /// Arrivals that never consulted the filter (options.dup_filter off, or
  /// points absorbed from another sampler) count as bypassed.
  DupFilterStats filter_stats() const {
    return dup_filter_.stats(points_processed_);
  }

  /// The options this sampler was created with.
  const SamplerOptions& options() const { return options_; }
  /// The grid (introspection for tests).
  const RandomGrid& grid() const { return grid_; }
  /// The cell hasher (introspection for tests).
  const CellHasher& hasher() const { return hasher_; }
  /// The representative table (introspection for tests).
  const RepTable& rep_table() const { return reps_; }

  /// Accepted representatives in insertion order (tests/baselines).
  std::vector<SampleItem> AcceptedRepresentatives() const;
  /// Rejected representatives in insertion order (tests/baselines).
  std::vector<SampleItem> RejectedRepresentatives() const;

 private:
  friend Status SnapshotSampler(const RobustL0SamplerIW& sampler,
                                std::string* out);
  friend Result<RobustL0SamplerIW> RestoreSampler(
      const std::string& snapshot);
  // Incremental checkpoints (core/checkpoint.h): the full cut marks the
  // dirty-tracking epoch, the delta cut serializes only touched slots.
  friend Status SnapshotSamplerFull(RobustL0SamplerIW* sampler,
                                    std::string* out);
  friend Status SnapshotSamplerDelta(RobustL0SamplerIW* sampler,
                                     uint64_t base_checksum,
                                     std::string* out);

  RobustL0SamplerIW(const SamplerOptions& options, double side);

  /// Core of Insert: judges one point carrying an explicit stream index.
  void InsertView(PointView p, uint64_t stream_index);

  /// Finds a stored representative within α of p, or RepTable::kNpos.
  /// Gathers the candidate slots of the whole adjacency neighborhood and
  /// runs the batched one-to-many kernel over the arena, returning the
  /// first match in probe order — the same representative (and the same
  /// per-candidate booleans) as the scalar chain walk it replaced.
  uint32_t FindCandidate(PointView p, const AdjKeyVec& adj_keys) const;

  /// The duplicate-loss tail of InsertView: p belongs to the already-judged
  /// group of `candidate`, so it is skipped, refreshing the group's
  /// reservoir (Section 2.3 variant). Shared verbatim by the full probe and
  /// the front-end replay — the decision-identity contract in code.
  void DuplicateLoss(uint32_t candidate, PointView p, uint64_t stream_index);

  /// Live slots of accepted representatives ordered by rep id (ascending
  /// — deterministic, content-defined query iteration).
  std::vector<uint32_t> SortedAcceptedSlots() const;

  /// Re-filters Sacc/Srej after the level was raised.
  void Refilter();

  size_t RepWords() const;

  SamplerOptions options_;
  RandomGrid grid_;
  CellHasher hasher_;
  Xoshiro256pp reservoir_rng_;
  uint32_t level_ = 0;
  size_t accept_cap_;
  size_t accept_size_ = 0;
  uint64_t points_processed_ = 0;
  uint64_t next_rep_id_ = 0;

  RepTable reps_;

  // Duplicate-suppression front-end (core/dup_filter.h): caches the probe
  // outcome of recent exact arrivals, epoch-gated on reps_.generation().
  // Scratch state — not charged to the SpaceMeter, never snapshotted.
  DupFilter dup_filter_;

  SpaceMeter meter_;
  // Adjacency scratch with inline capacity: the per-point key buffer
  // lives on the sampler itself, never the heap (ROADMAP item).
  mutable AdjKeyVec adj_scratch_;
  // FindCandidate gather scratch: table slots and their arena slot
  // indices for one multi-rep cell bucket. Inline capacity keeps typical
  // probes allocation-free without bloating the sampler's cache
  // footprint (longer chains spill to the heap transparently).
  mutable SmallVector<uint32_t, 16> cand_slots_;
  mutable SmallVector<uint32_t, 16> cand_arena_;
};

}  // namespace rl0

#endif  // RL0_CORE_IW_SAMPLER_H_
