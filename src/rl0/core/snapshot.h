// Checkpoint / restore for the infinite-window sampler.
//
// Long-running stream processors need to survive restarts. SnapshotSampler
// serializes a RobustL0SamplerIW — options, rate level, counters, and the
// full accept/reject state — into a versioned binary blob;
// RestoreSampler rebuilds an equivalent sampler that continues the stream
// where the original left off.
//
// Exactness: the restored sampler is *bit-identical* in behaviour for the
// default fixed-representative mode (the grid, hash and stored state are
// fully reconstructed). In the Section 2.3 reservoir mode the restored
// instance re-seeds its reservoir coin stream (raw generator state is not
// exposed); the per-group reservoirs remain valid uniform samplers —
// future coins are still independent and fresh — but the exact sequence
// of reservoir replacements after restore differs from an uninterrupted
// run. Peak-space accounting round-trips: format version 2 serializes the
// space meter's peak watermark and the restore path re-arms it, so a
// restored sampler reports the same lifetime peak as the original.
// Version-1 blobs (which predate the field) are still accepted with the
// legacy behaviour — their peak restarts at the restored current size.
//
// The sliding-window hierarchy is checkpointable too (SnapshotSamplerSW /
// RestoreSamplerSW): every level's group records — including the
// Section 2.3 windowed reservoirs — are serialized; the same coin-stream
// re-seeding caveat applies to reservoir priorities and query-time
// randomness is caller-provided anyway.

#ifndef RL0_CORE_SNAPSHOT_H_
#define RL0_CORE_SNAPSHOT_H_

#include <string>

#include "rl0/core/iw_sampler.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/util/status.h"

namespace rl0 {

/// Serializes `sampler` into `out` (cleared first).
Status SnapshotSampler(const RobustL0SamplerIW& sampler, std::string* out);

/// Rebuilds a sampler from a snapshot produced by SnapshotSampler.
/// Fails with kInvalidArgument on malformed, truncated or
/// version-incompatible input.
Result<RobustL0SamplerIW> RestoreSampler(const std::string& snapshot);

/// Serializes a sliding-window sampler into `out` (cleared first).
Status SnapshotSamplerSW(const RobustL0SamplerSW& sampler, std::string* out);

/// Rebuilds a sliding-window sampler from a SnapshotSamplerSW blob.
Result<RobustL0SamplerSW> RestoreSamplerSW(const std::string& snapshot);

}  // namespace rl0

#endif  // RL0_CORE_SNAPSHOT_H_
