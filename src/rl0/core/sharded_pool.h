// Thread-parallel ingestion via sharded samplers.
//
// The samplers are single-writer streaming structures. The standard way to
// use many cores — and the pattern behind the distributed setting of
// AbsorbFrom — is sharding: partition the stream across S samplers created
// with identical options (shared grid/hash randomness), feed each shard
// from its own thread, and merge on query. ShardedSamplerPool packages
// that pattern on top of a persistent IngestPool: one long-lived worker
// per shard, bounded per-shard chunk queues with backpressure, and a
// Merged() view built with RobustL0SamplerIW::AbsorbFrom.
//
// Partition: shard s receives the points at *global* stream positions
// ≡ s (mod S), in stream order, via the strided batch path
// (RobustL0SamplerIW::InsertStrided). Because the residue class is taken
// over global indices, each shard's input subsequence — and therefore its
// entire decision trajectory — is independent of how the stream was cut
// into Feed chunks. A later Merged() resolves groups judged by several
// shards deterministically by true arrival order.
//
// Concurrency contract: Feed/FeedOwned/FeedBorrowed are safe from any
// number of threads; each shard is only ever touched by its own worker.
// Drain() is the barrier: after it returns (with no concurrent feeders),
// Merged(), shard() and points_processed() read quiescent state.
// MergedQuiesced() is the exception that needs no barrier — it pauses the
// workers between chunks, so it is safe concurrently with ongoing
// feeding (each shard then contributes a prefix of its stream).

#ifndef RL0_CORE_SHARDED_POOL_H_
#define RL0_CORE_SHARDED_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "rl0/core/ingest_pool.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/util/span.h"
#include "rl0/util/status.h"

namespace rl0 {

/// A pool of identically-seeded samplers fed in parallel by a persistent
/// worker pipeline.
class ShardedSamplerPool {
 public:
  /// Creates `shards` samplers with identical options and starts the
  /// persistent worker threads (idle until fed). Requires shards ≥ 1.
  static Result<ShardedSamplerPool> Create(
      const SamplerOptions& options, size_t shards,
      const IngestPool::Options& pipeline_options = IngestPool::Options());

  /// Number of shards.
  size_t num_shards() const { return shards_.size(); }

  /// Direct access to a shard. Requires a quiescent pipeline (after
  /// Drain, or before any feeding).
  RobustL0SamplerIW& shard(size_t i) { return shards_[i]; }
  const RobustL0SamplerIW& shard(size_t i) const { return shards_[i]; }

  /// Streams `points` into the pipeline as one chunk (copied; the pool
  /// has its own lifetime for the data). Returns as soon as the chunk is
  /// queued on every shard — call Drain() before querying.
  /// (std::vector<Point> converts implicitly.)
  void Feed(Span<const Point> points);

  /// As Feed but adopts the vector — no copy.
  void FeedOwned(std::vector<Point> points);

  /// As Feed but zero-copy: `points` must stay valid until the next
  /// Drain() returns.
  void FeedBorrowed(Span<const Point> points);

  /// Blocks until everything fed before this call is consumed by every
  /// shard. Safe from any thread, also concurrently with feeding.
  void Drain();

  /// Feeds `points` and drains: the pipelined equivalent of the original
  /// blocking call. Deterministic: the global-residue partition does not
  /// depend on thread scheduling or chunk boundaries.
  void ConsumeParallel(Span<const Point> points);

  /// The pre-pipeline implementation: spawns one thread per shard, feeds
  /// the chunk with chunk-relative striding, joins all workers before
  /// returning. Kept as the bench_pipeline baseline and for differential
  /// testing; shares the pipeline's global index space, so the two paths
  /// may be interleaved (ConsumeParallelSpawnJoin drains first).
  void ConsumeParallelSpawnJoin(Span<const Point> points);

  /// A merged sampler over the union of all shards' streams (copy of
  /// shard 0 absorbing the rest; see AbsorbFrom's guarantee). Requires a
  /// quiescent pipeline (after Drain).
  Result<RobustL0SamplerIW> Merged() const;

  /// As Merged(), but safe concurrently with ongoing feeding: pauses the
  /// workers between chunks and merges each shard's current prefix. The
  /// result is a valid sampler over the subset of the stream processed at
  /// the pause point. Do not call the feed-side APIs (Feed*/Drain/
  /// points_fed) from the same thread while it runs — see
  /// IngestPool::QuiescedRun's deadlock caveat.
  Result<RobustL0SamplerIW> MergedQuiesced();

  /// Total points across shards. Requires a quiescent pipeline.
  uint64_t points_processed() const;

  /// Points handed to the pool so far (fed or consumed; any thread).
  uint64_t points_fed() const;

  /// Total space across shards. Requires a quiescent pipeline.
  size_t SpaceWords() const;

 private:
  ShardedSamplerPool(std::vector<RobustL0SamplerIW> shards,
                     const IngestPool::Options& pipeline_options);

  /// Starts the persistent workers. Called from the constructor — the
  /// pipeline exists before the pool is visible to any other thread, so
  /// concurrent Feeds never race on its creation. The sinks capture
  /// addresses of shards_ elements: stable across moves of the pool (the
  /// vector's heap buffer moves with it) because shards_ never resizes.
  void StartPipeline();

  std::vector<RobustL0SamplerIW> shards_;
  IngestPool::Options pipeline_options_;
  std::unique_ptr<IngestPool> pipeline_;
};

}  // namespace rl0

#endif  // RL0_CORE_SHARDED_POOL_H_
