// Thread-parallel ingestion via sharded samplers.
//
// The samplers are single-writer streaming structures. The standard way to
// use many cores — and the pattern behind the distributed setting of
// AbsorbFrom — is sharding: partition the stream across S samplers created
// with identical options (shared grid/hash randomness), feed each shard
// from its own thread, and merge on query. ShardedSamplerPool packages
// that pattern: deterministic round-robin partitioning, one worker thread
// per shard, and a Merged() view built with RobustL0SamplerIW::AbsorbFrom.
//
// Concurrency contract: each shard is only ever touched by one thread at a
// time; ConsumeParallel joins all workers before returning; Merged() must
// not run concurrently with insertion.

#ifndef RL0_CORE_SHARDED_POOL_H_
#define RL0_CORE_SHARDED_POOL_H_

#include <cstdint>
#include <vector>

#include "rl0/core/iw_sampler.h"
#include "rl0/util/status.h"

namespace rl0 {

/// A pool of identically-seeded samplers fed in parallel.
class ShardedSamplerPool {
 public:
  /// Creates `shards` samplers with identical options. Requires
  /// shards ≥ 1.
  static Result<ShardedSamplerPool> Create(const SamplerOptions& options,
                                           size_t shards);

  /// Number of shards.
  size_t num_shards() const { return shards_.size(); }

  /// Direct access to a shard (external feeding; one thread per shard).
  RobustL0SamplerIW& shard(size_t i) { return shards_[i]; }
  const RobustL0SamplerIW& shard(size_t i) const { return shards_[i]; }

  /// Feeds `points` with one worker thread per shard: shard s receives
  /// the points whose index ≡ s (mod num_shards), in stream order.
  /// Deterministic: the partition does not depend on thread scheduling.
  void ConsumeParallel(const std::vector<Point>& points);

  /// A merged sampler over the union of all shards' streams
  /// (copy of shard 0 absorbing the rest; see AbsorbFrom's guarantee).
  Result<RobustL0SamplerIW> Merged() const;

  /// Total points across shards.
  uint64_t points_processed() const;

  /// Total space across shards.
  size_t SpaceWords() const;

 private:
  explicit ShardedSamplerPool(std::vector<RobustL0SamplerIW> shards)
      : shards_(std::move(shards)) {}

  std::vector<RobustL0SamplerIW> shards_;
};

}  // namespace rl0

#endif  // RL0_CORE_SHARDED_POOL_H_
