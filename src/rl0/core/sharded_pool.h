// Thread-parallel ingestion via sharded samplers.
//
// The samplers are single-writer streaming structures. The standard way to
// use many cores — and the pattern behind the distributed setting of
// AbsorbFrom — is sharding: partition the stream across S samplers created
// with identical options (shared grid/hash randomness), feed each shard
// from its own thread, and merge on query. ShardedSamplerPool packages
// that pattern: deterministic round-robin partitioning, one worker thread
// per shard, and a Merged() view built with RobustL0SamplerIW::AbsorbFrom.
//
// Concurrency contract: each shard is only ever touched by one thread at a
// time; ConsumeParallel joins all workers before returning; Merged() must
// not run concurrently with insertion.

#ifndef RL0_CORE_SHARDED_POOL_H_
#define RL0_CORE_SHARDED_POOL_H_

#include <cstdint>
#include <vector>

#include "rl0/core/iw_sampler.h"
#include "rl0/util/span.h"
#include "rl0/util/status.h"

namespace rl0 {

/// A pool of identically-seeded samplers fed in parallel.
class ShardedSamplerPool {
 public:
  /// Creates `shards` samplers with identical options. Requires
  /// shards ≥ 1.
  static Result<ShardedSamplerPool> Create(const SamplerOptions& options,
                                           size_t shards);

  /// Number of shards.
  size_t num_shards() const { return shards_.size(); }

  /// Direct access to a shard (external feeding; one thread per shard).
  RobustL0SamplerIW& shard(size_t i) { return shards_[i]; }
  const RobustL0SamplerIW& shard(size_t i) const { return shards_[i]; }

  /// Feeds `points` with one worker thread per shard: shard s receives
  /// the points at *chunk-relative* positions ≡ s (mod num_shards), in
  /// stream order, via the strided batch path
  /// (RobustL0SamplerIW::InsertStrided). Each point is stamped with its
  /// global stream position (consumed-so-far + chunk position), so
  /// chunked feeding keeps indices globally unique and a later Merged()
  /// resolves groups judged by several shards deterministically by true
  /// arrival order. Note that across chunks a given global residue class
  /// may land on different shards (the partition restarts per chunk);
  /// only the global indices, not the shard assignment, are stable.
  /// Deterministic: the partition does not depend on thread scheduling.
  /// (std::vector<Point> converts implicitly.)
  void ConsumeParallel(Span<const Point> points);

  /// A merged sampler over the union of all shards' streams
  /// (copy of shard 0 absorbing the rest; see AbsorbFrom's guarantee).
  Result<RobustL0SamplerIW> Merged() const;

  /// Total points across shards.
  uint64_t points_processed() const;

  /// Total space across shards.
  size_t SpaceWords() const;

 private:
  explicit ShardedSamplerPool(std::vector<RobustL0SamplerIW> shards)
      : shards_(std::move(shards)) {}

  std::vector<RobustL0SamplerIW> shards_;
  /// Stream points consumed so far (the index base of the next chunk).
  uint64_t consumed_ = 0;
};

}  // namespace rl0

#endif  // RL0_CORE_SHARDED_POOL_H_
