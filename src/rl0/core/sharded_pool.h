// Thread-parallel ingestion via sharded samplers.
//
// The samplers are single-writer streaming structures. The standard way to
// use many cores — and the pattern behind the distributed setting of
// AbsorbFrom — is sharding: partition the stream across S samplers created
// with identical options (shared grid/hash randomness), feed each shard
// from its own thread, and merge on query. ShardedSamplerPool packages
// that pattern on top of a persistent IngestPool: one long-lived worker
// per shard, bounded per-shard chunk queues with backpressure, and a
// Merged() view built with RobustL0SamplerIW::AbsorbFrom.
//
// Partition: shard s receives the points at *global* stream positions
// ≡ s (mod S), in stream order, via the strided batch path
// (RobustL0SamplerIW::InsertStrided). Because the residue class is taken
// over global indices, each shard's input subsequence — and therefore its
// entire decision trajectory — is independent of how the stream was cut
// into Feed chunks. A later Merged() resolves groups judged by several
// shards deterministically by true arrival order.
//
// Concurrency contract: Feed/FeedOwned/FeedBorrowed are safe from any
// number of threads; each shard is only ever touched by its own worker.
// Drain() is the barrier: after it returns (with no concurrent feeders),
// Merged(), shard() and points_processed() read quiescent state.
// MergedQuiesced() is the exception that needs no barrier — it pauses the
// workers between chunks, so it is safe concurrently with ongoing
// feeding (each shard then contributes a prefix of its stream).

#ifndef RL0_CORE_SHARDED_POOL_H_
#define RL0_CORE_SHARDED_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include <optional>

#include "rl0/core/chunk_policy.h"
#include "rl0/core/ingest_pool.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/core/reorder_buffer.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/util/span.h"
#include "rl0/util/status.h"
#include "rl0/util/sync.h"
#include "rl0/util/thread_annotations.h"

namespace rl0 {

/// A pool of identically-seeded samplers fed in parallel by a persistent
/// worker pipeline.
class ShardedSamplerPool {
 public:
  /// Creates `shards` samplers with identical options and starts the
  /// persistent worker threads (idle until fed). Requires shards ≥ 1.
  static Result<ShardedSamplerPool> Create(
      const SamplerOptions& options, size_t shards,
      const IngestPool::Options& pipeline_options = IngestPool::Options());

  /// Number of shards.
  size_t num_shards() const { return shards_.size(); }

  /// Direct access to a shard. Requires a quiescent pipeline (after
  /// Drain, or before any feeding).
  RobustL0SamplerIW& shard(size_t i) { return shards_[i]; }
  const RobustL0SamplerIW& shard(size_t i) const { return shards_[i]; }

  /// Streams `points` into the pipeline as one chunk (copied; the pool
  /// has its own lifetime for the data). Returns as soon as the chunk is
  /// queued on every shard — call Drain() before querying.
  /// (std::vector<Point> converts implicitly.)
  void Feed(Span<const Point> points);

  /// As Feed but adopts the vector — no copy.
  void FeedOwned(std::vector<Point> points);

  /// As Feed but zero-copy: `points` must stay valid until the next
  /// Drain() returns.
  void FeedBorrowed(Span<const Point> points);

  /// Chops `points` into chunks sized by the shared adaptive policy
  /// (core/chunk_policy.h): queue depth grows the chunks, lane
  /// starvation shrinks them. Chunk boundaries never affect shard state
  /// (the determinism contract), so this is pure throughput tuning.
  /// Copies each chunk; single producer per policy (see chunk_policy()).
  void FeedAdaptive(Span<const Point> points);

  /// The adaptive chunk-sizing policy used by FeedAdaptive (mutable: the
  /// producer may reconfigure or share it across feeds).
  AdaptiveChunkPolicy& chunk_policy() { return chunk_policy_; }

  /// Blocks until everything fed before this call is consumed by every
  /// shard. Safe from any thread, also concurrently with feeding.
  void Drain();

  /// Feeds `points` and drains: the pipelined equivalent of the original
  /// blocking call. Deterministic: the global-residue partition does not
  /// depend on thread scheduling or chunk boundaries.
  void ConsumeParallel(Span<const Point> points);

  /// The pre-pipeline implementation: spawns one thread per shard, feeds
  /// the chunk with chunk-relative striding, joins all workers before
  /// returning. Kept as the bench_pipeline baseline and for differential
  /// testing; shares the pipeline's global index space, so the two paths
  /// may be interleaved (ConsumeParallelSpawnJoin drains first).
  void ConsumeParallelSpawnJoin(Span<const Point> points);

  /// A merged sampler over the union of all shards' streams (copy of
  /// shard 0 absorbing the rest; see AbsorbFrom's guarantee). Requires a
  /// quiescent pipeline (after Drain).
  Result<RobustL0SamplerIW> Merged() const;

  /// As Merged(), but safe concurrently with ongoing feeding: pauses the
  /// workers between chunks and merges each shard's current prefix. The
  /// result is a valid sampler over the subset of the stream processed at
  /// the pause point. Do not call the feed-side APIs (Feed*/Drain/
  /// points_fed) from the same thread while it runs — see
  /// IngestPool::QuiescedRun's deadlock caveat.
  Result<RobustL0SamplerIW> MergedQuiesced();

  /// Total points across shards. Requires a quiescent pipeline.
  uint64_t points_processed() const;

  /// Points handed to the pool so far (fed or consumed; any thread).
  uint64_t points_fed() const;

  /// Total space across shards. Requires a quiescent pipeline.
  size_t SpaceWords() const;

  /// Summed duplicate-suppression counters over the per-lane filters
  /// (each shard owns its own front-end; see core/dup_filter.h).
  /// Requires a quiescent pipeline.
  DupFilterStats FilterStats() const {
    DupFilterStats stats;
    for (const RobustL0SamplerIW& s : shards_) stats += s.filter_stats();
    return stats;
  }

 private:
  ShardedSamplerPool(std::vector<RobustL0SamplerIW> shards,
                     const IngestPool::Options& pipeline_options);

  /// Starts the persistent workers. Called from the constructor — the
  /// pipeline exists before the pool is visible to any other thread, so
  /// concurrent Feeds never race on its creation. The sinks capture
  /// addresses of shards_ elements: stable across moves of the pool (the
  /// vector's heap buffer moves with it) because shards_ never resizes.
  void StartPipeline();

  std::vector<RobustL0SamplerIW> shards_;
  IngestPool::Options pipeline_options_;
  std::unique_ptr<IngestPool> pipeline_;
  AdaptiveChunkPolicy chunk_policy_;
};

/// The windowed mode of the sharded pool: S sliding-window hierarchies
/// (RobustL0SamplerSW) fed as persistent IngestPool lanes.
///
/// Partition and stamps: shard s consumes the points at *global* stream
/// positions ≡ s (mod S). The pool supports both of the paper's window
/// models, chosen by which feed API is used first (modes cannot mix):
///
///   * sequence-based (Feed/FeedOwned/FeedBorrowed) — every point is
///     stamped with its global position; the stamp of chunk[0] is
///     carried by the chunk's index base;
///   * time-based (FeedStamped/FeedOwnedStamped/FeedBorrowedStamped) —
///     every point carries an explicit stamp from a parallel stamp
///     array that rides the chunk through the pipeline; stamps must be
///     non-decreasing in feed order (a point is live at query time
///     `now` iff its stamp lies in (now − w, now]).
///
/// In both modes per-shard input — stamps included — is invariant under
/// re-chunking of the feed, even when a chunk straddles a window-expiry
/// boundary (or a stamp gap jumps past whole windows). Lanes therefore
/// make bit-identical decisions for any chunking and any number of
/// producers (pinned by tests/sw_pipeline_determinism_test.cc).
///
/// Queries merge the per-shard window samples. Two shards may both track
/// one underlying group (each saw a sub-view of its points); the merge
/// dedupes reports within distance α of each other, keeping the report
/// with the latest stream index — exact for well-separated streams, the
/// same contract as RobustL0SamplerIW::AbsorbFrom. The concurrency
/// contract (Feed*/Drain/QuiescedRun) matches ShardedSamplerPool.
class ShardedSwSamplerPool {
 public:
  /// Creates `shards` identically-seeded windowed samplers and starts the
  /// persistent worker threads (idle until fed). Requires shards ≥ 1.
  static Result<ShardedSwSamplerPool> Create(
      const SamplerOptions& options, int64_t window, size_t shards,
      const IngestPool::Options& pipeline_options = IngestPool::Options());

  size_t num_shards() const { return shards_.size(); }
  int64_t window() const { return window_; }

  /// Direct access to a shard. Requires a quiescent pipeline.
  RobustL0SamplerSW& shard(size_t i) { return shards_[i]; }
  const RobustL0SamplerSW& shard(size_t i) const { return shards_[i]; }

  /// Streams `points` into the pipeline as one chunk (copied). Returns as
  /// soon as the chunk is queued on every shard — Drain() before querying.
  /// Sequence mode: stamps are global stream positions.
  void Feed(Span<const Point> points);
  /// As Feed but adopts the vector — no copy.
  void FeedOwned(std::vector<Point> points);
  /// As Feed but zero-copy: `points` must stay valid until the next
  /// Drain() returns.
  void FeedBorrowed(Span<const Point> points);

  /// Streams one explicitly stamped chunk (time-based windows; copied):
  /// `stamps[i]` is the stamp of `points[i]`. Stamps must align with the
  /// points, be non-decreasing within the chunk and across feeds, and the
  /// pool must not have been fed through the sequence-stamped APIs
  /// (modes cannot mix; checked). Lanes route their residue class
  /// through RobustL0SamplerSW::InsertStamped, so per-shard state —
  /// expiry schedule included — is invariant under re-chunking.
  void FeedStamped(Span<const Point> points, Span<const int64_t> stamps);
  /// As FeedStamped but adopts both vectors — no copy.
  void FeedOwnedStamped(std::vector<Point> points,
                        std::vector<int64_t> stamps);
  /// As FeedStamped but zero-copy: both arrays must stay valid until the
  /// next Drain() returns.
  void FeedBorrowedStamped(Span<const Point> points,
                           Span<const int64_t> stamps);

  /// Bounded-lateness time-based feeding (core/reorder_buffer.h): the
  /// stamps may run backwards by up to options().allowed_lateness behind
  /// the maximum stamp seen across all late feeds. A pool-level
  /// ReorderStage restores sorted order and streams the released prefix
  /// through the ordinary stamped pipeline, followed by a watermark
  /// chunk that advances every lane's event time (so a lane whose
  /// residue class went quiet still expires on schedule). For ANY
  /// arrival order within the bound, per-lane state — coin streams and
  /// snapshot bytes included — is bit-identical to FeedStamped of the
  /// canonically sorted stream (ties broken by
  /// ReorderStage::CanonicalLess). Beyond-bound points follow
  /// options().late_policy and are fully accounted in late_stats().
  /// Safe from any number of threads (serialized internally); do not mix
  /// with the strict FeedStamped* calls. Call FlushLate() + Drain()
  /// before end-of-stream queries.
  void FeedStampedLate(Span<const Point> points, Span<const int64_t> stamps);

  /// Releases everything the reorder stage still buffers into the
  /// pipeline and broadcasts the final watermark (the maximum stamp
  /// seen). Drain() afterwards for the usual barrier. No-op before any
  /// FeedStampedLate.
  void FlushLate();

  /// Counters of the pool's reorder stage (all-zero before any
  /// FeedStampedLate). The identity offered == released + late_dropped +
  /// late_redirected + buffered holds at every quiescent point.
  ReorderStats late_stats() const;

  /// Side-channel sink for beyond-bound arrivals under
  /// LatePolicy::kSideChannel; without one they buffer inside the stage
  /// (TakeLateSideChannel). The sink runs on the feeding thread, under
  /// the pool's reorder lock — keep it cheap and do not call back into
  /// the pool.
  void set_late_sink(ReorderStage::LateSink sink);

  /// Drains the internally buffered side-channel deliveries (kSideChannel
  /// with no sink set), in arrival order.
  std::vector<std::pair<Point, int64_t>> TakeLateSideChannel();

  /// Adaptive-chunked feeding (see ShardedSamplerPool::FeedAdaptive and
  /// core/chunk_policy.h); sequence mode.
  void FeedAdaptive(Span<const Point> points);
  /// Adaptive-chunked stamped feeding (time mode).
  void FeedStampedAdaptive(Span<const Point> points,
                           Span<const int64_t> stamps);
  /// The adaptive chunk-sizing policy used by the adaptive feeds.
  AdaptiveChunkPolicy& chunk_policy() { return chunk_policy_; }

  /// Blocks until everything fed before this call is consumed by every
  /// shard. Safe from any thread, also concurrently with feeding.
  void Drain();

  /// Feeds `points` and drains (the blocking convenience call).
  void ConsumeParallel(Span<const Point> points);

  /// The stamp of the most recently fed point — the global position of
  /// the stream's last point in sequence mode, the last explicit stamp in
  /// time mode; -1 before any feeding.
  int64_t now() const;

  /// Deterministic merged window view: the union of all shards' accepted
  /// groups across levels (no rate unification), deduped latest-wins.
  /// Requires a quiescent pipeline. At rate 1 every reported item is the
  /// true latest window point of a live group of the union stream.
  std::vector<SampleItem> MergedWindowItems(int64_t now);

  /// The merged rate-unified candidate pool behind Sample: every shard's
  /// query pool unified to the *global* deepest non-empty level across
  /// shards (each shard's groups then enter at one common rate
  /// 1/R_c_global; without the cross-shard unification a shard whose own
  /// hierarchy is shallower would over-contribute by its rate gap), then
  /// deduped α-proximity latest-wins so each underlying group keeps at
  /// most one entry. Requires a quiescent pipeline. Exposed for tests
  /// and for callers that want the pool rather than one draw.
  std::vector<SampleItem> UnifiedQueryPool(int64_t query_now,
                                           Xoshiro256pp* rng);

  /// A robust ℓ0-sample of the union window at time `query_now`: a
  /// uniform draw from UnifiedQueryPool. Requires a quiescent pipeline.
  /// nullopt iff the window is empty.
  ///
  /// Uniformity caveat: the cross-shard dedupe keeps one entry per
  /// group, and the global-level unification gives every shard's groups
  /// one common selection rate — but below rate 1 a group whose window
  /// points span k residue classes still gets k independent chances to
  /// enter the pool (up to S-fold over-inclusion *in probability*), the
  /// same graceful Θ(1)-per-group degradation regime as Theorem 3.1 and
  /// RobustL0SamplerIW::AbsorbFrom. Exact at rate 1; with one lane this
  /// is exactly the pointwise sampler's draw.
  std::optional<SampleItem> Sample(int64_t query_now, Xoshiro256pp* rng);

  /// Sample at the stamp of the most recently fed point.
  std::optional<SampleItem> SampleLatest(Xoshiro256pp* rng);

  /// As Sample, but safe concurrently with ongoing feeding: pauses the
  /// workers between chunks and queries each shard at its own processed
  /// prefix (shard-local latest stamp), so no shard's state is disturbed
  /// ahead of its stream position. See IngestPool::QuiescedRun's caveat:
  /// do not call the feed-side APIs from the same thread while it runs.
  std::optional<SampleItem> SampleQuiesced(Xoshiro256pp* rng);

  /// Runs `fn` with every worker paused between chunks (checkpointing a
  /// shard with SnapshotSamplerSW while the stream flows). `fn` must not
  /// call this pool's feed-side APIs (deadlock caveat above).
  void QuiescedRun(const std::function<void()>& fn);

  /// Total points across shards. Requires a quiescent pipeline.
  uint64_t points_processed() const;
  /// Points handed to the pool so far (any thread).
  uint64_t points_fed() const;
  /// Total space across shards. Requires a quiescent pipeline.
  size_t SpaceWords() const;

  /// Summed duplicate-suppression counters over the per-lane filters
  /// (each shard owns its own front-end; see core/dup_filter.h).
  /// Requires a quiescent pipeline.
  DupFilterStats FilterStats() const {
    DupFilterStats stats;
    for (const RobustL0SamplerSW& s : shards_) stats += s.filter_stats();
    return stats;
  }

  /// Durability tap on the feed path (core/checkpoint.h). When set, every
  /// fed chunk is reported to the sink *before* it enters the pipeline,
  /// together with the global index of its first point; watermark
  /// broadcasts are reported as empty chunks with `watermark` non-null.
  /// The reporting order equals the pipeline's index-base assignment
  /// order (both happen under one internal lock), so the journal is a
  /// faithful prefix-closed record of the fed stream. Sequence-mode
  /// chunks arrive with an empty `stamps` span. The sink runs on the
  /// feeding thread — keep it cheap and do not call back into the pool.
  using JournalSink = std::function<void(
      Span<const Point> points, Span<const int64_t> stamps,
      uint64_t index_base, const int64_t* watermark)>;

  /// Installs (or clears, with nullptr) the journal sink. Call before
  /// feeding or at a quiescent point — the installation itself is not
  /// synchronized against in-flight feeds.
  void SetJournalSink(JournalSink sink) { journal_ = std::move(sink); }

 private:
  // Checkpoint/recovery (core/checkpoint.h) reads the private header
  // fields (mode, counters, reorder frontier) and rebuilds a pool around
  // restored shards via the private constructor.
  friend Status CheckpointPool(ShardedSwSamplerPool* pool,
                               uint64_t journal_seq, std::string* out);
  friend Status CheckpointPoolDelta(ShardedSwSamplerPool* pool,
                                    const std::string& base,
                                    uint64_t journal_seq, std::string* out);
  friend Result<ShardedSwSamplerPool> RecoverPool(
      const std::string& checkpoint, const std::string& journal,
      const IngestPool::Options& pipeline_options);

  /// Which stamp semantics the pool has been fed with. Latched by the
  /// first feed; mixing modes is a programming error (CHECK-fails).
  enum class StampMode : uint8_t { kUnset = 0, kSequence = 1, kTime = 2 };

  ShardedSwSamplerPool(std::vector<RobustL0SamplerSW> shards, int64_t window,
                       const IngestPool::Options& pipeline_options);

  void StartPipeline();
  /// Latches the pool's stamp mode (atomic; safe from concurrent
  /// producers) and CHECK-fails on a mode mix.
  void LatchMode(StampMode mode);
  /// Streams the reorder stage's staged releases into the pipeline and
  /// broadcasts its advanced watermark. The caller holds the front end's
  /// mutex (compiler-checked via the parameter-based capability).
  void PumpReorderLocked(ReorderFrontEnd* fe) RL0_REQUIRES(fe->mu);
  /// In-place α-proximity dedup, keeping the item with the larger stream
  /// index per group; preserves first-seen order (single-shard pools pass
  /// through untouched, matching the pointwise sampler bit-for-bit).
  void DedupeLatestWins(std::vector<SampleItem>* items) const;
  /// Shared body of UnifiedQueryPool/SampleQuiesced: pools every shard at
  /// `now_of(shard)` unified to the global deepest level, then dedupes.
  template <typename NowOf>
  std::vector<SampleItem> BuildUnifiedPool(NowOf now_of, Xoshiro256pp* rng);
  /// Journal-then-feed: reports (points, stamps) to the sink and runs
  /// `feed` (which must enqueue exactly points.size() points) with
  /// journal_mu_ held across both, so journal order equals the pipeline's
  /// index-base assignment order. With no sink, just runs `feed`.
  template <typename FeedCall>
  void FeedJournaled(Span<const Point> points, Span<const int64_t> stamps,
                     FeedCall feed);

  std::vector<RobustL0SamplerSW> shards_;
  int64_t window_;
  IngestPool::Options pipeline_options_;
  std::unique_ptr<IngestPool> pipeline_;
  /// Heap-allocated so the pool stays movable.
  std::unique_ptr<std::atomic<uint8_t>> mode_;
  AdaptiveChunkPolicy chunk_policy_;
  /// Bounded-lateness front end of FeedStampedLate: the reorder stage
  /// and watermark memory grouped with the mutex that serializes the
  /// late path — the Offer → release → watermark sequence must hit the
  /// pipeline in one piece per producer, or two producers could
  /// interleave a release with a stale watermark. Heap-allocated so the
  /// pool stays movable.
  std::unique_ptr<ReorderFrontEnd> reorder_fe_;
  /// Serializes journal emission with index-base assignment: held across
  /// {points_fed() read, sink call, pipeline feed} so the journal records
  /// chunks in exactly the order the pipeline indexes them. An ordering
  /// lock, not a data guard (journal_ itself is installed at quiescent
  /// points by contract). Taken after reorder_fe_->mu on the late path
  /// (strict feeds never take reorder_fe_->mu, so the order is acyclic).
  std::unique_ptr<Mutex> journal_mu_;
  /// The installed durability tap, empty by default (see SetJournalSink).
  JournalSink journal_;
};

}  // namespace rl0

#endif  // RL0_CORE_SHARDED_POOL_H_
