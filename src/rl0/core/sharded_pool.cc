#include "rl0/core/sharded_pool.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "rl0/util/check.h"

namespace rl0 {

namespace {

/// First position i inside a chunk with (index_base + i) % shards == s —
/// the global-residue partition both pools' sinks are built on. One copy
/// of this arithmetic: it is what makes per-shard streams invariant
/// under re-chunking (the determinism contract of the pipeline tests).
size_t StrideStart(size_t s, size_t shards, uint64_t index_base) {
  return (s + shards - static_cast<size_t>(index_base % shards)) % shards;
}

/// The adaptive-chunk feed loop shared by both pools: chop `total`
/// points into policy-sized chunks, report the pipeline's queue depth
/// after each one. `feed(offset, n)` feeds the [offset, offset+n) slice.
template <typename FeedFn>
void FeedChunked(size_t total, AdaptiveChunkPolicy* policy,
                 IngestPool* pipeline, FeedFn feed) {
  size_t offset = 0;
  while (offset < total) {
    const size_t n = std::min(policy->chunk(), total - offset);
    feed(offset, n);
    offset += n;
    policy->Observe(pipeline->MaxQueueDepth(), pipeline->queue_capacity());
  }
}

}  // namespace

Result<ShardedSamplerPool> ShardedSamplerPool::Create(
    const SamplerOptions& options, size_t shards,
    const IngestPool::Options& pipeline_options) {
  if (shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  std::vector<RobustL0SamplerIW> samplers;
  samplers.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    // Identical options (and seed!) on purpose: AbsorbFrom requires the
    // shared grid/hash randomness of mergeable sketches.
    Result<RobustL0SamplerIW> sampler = RobustL0SamplerIW::Create(options);
    if (!sampler.ok()) return sampler.status();
    samplers.push_back(std::move(sampler).value());
  }
  return ShardedSamplerPool(std::move(samplers), pipeline_options);
}

ShardedSamplerPool::ShardedSamplerPool(
    std::vector<RobustL0SamplerIW> shards,
    const IngestPool::Options& pipeline_options)
    : shards_(std::move(shards)), pipeline_options_(pipeline_options) {
  StartPipeline();
}

void ShardedSamplerPool::StartPipeline() {
  const size_t shards = shards_.size();
  std::vector<IngestPool::Sink> sinks;
  sinks.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    RobustL0SamplerIW* shard = &shards_[s];
    sinks.push_back([shard, s, shards](Span<const Point> chunk,
                                       uint64_t index_base) {
      // Global-residue partition: this shard owns the points at global
      // stream positions ≡ s (mod shards), so per-shard input streams —
      // and decisions — are invariant under re-chunking of the feed.
      shard->InsertStrided(chunk, StrideStart(s, shards, index_base),
                           shards, index_base);
    });
  }
  pipeline_ = std::make_unique<IngestPool>(std::move(sinks),
                                           pipeline_options_);
}

void ShardedSamplerPool::Feed(Span<const Point> points) {
  pipeline_->Feed(points);
}

void ShardedSamplerPool::FeedOwned(std::vector<Point> points) {
  pipeline_->FeedOwned(std::move(points));
}

void ShardedSamplerPool::FeedBorrowed(Span<const Point> points) {
  pipeline_->FeedBorrowed(points);
}

void ShardedSamplerPool::FeedAdaptive(Span<const Point> points) {
  FeedChunked(points.size(), &chunk_policy_, pipeline_.get(),
              [&](size_t offset, size_t n) {
                pipeline_->Feed(points.subspan(offset, n));
              });
}

void ShardedSamplerPool::Drain() { pipeline_->Drain(); }

void ShardedSamplerPool::ConsumeParallel(Span<const Point> points) {
  // The span outlives the call because Drain is the last thing we do.
  FeedBorrowed(points);
  Drain();
}

void ShardedSamplerPool::ConsumeParallelSpawnJoin(Span<const Point> points) {
  // Pre-pipeline behaviour: per-call thread spawn/join, chunk-relative
  // residue classes. Quiesce the pipeline first and reserve this chunk's
  // index range so both paths share one global index space.
  pipeline_->Drain();
  const uint64_t index_base = pipeline_->AdvanceIndexBase(points.size());
  const size_t shards = shards_.size();
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    workers.emplace_back([this, points, s, shards, index_base] {
      shards_[s].InsertStrided(points, s, shards, index_base);
    });
  }
  for (std::thread& worker : workers) worker.join();
}

Result<RobustL0SamplerIW> ShardedSamplerPool::Merged() const {
  RobustL0SamplerIW merged = shards_[0];
  for (size_t s = 1; s < shards_.size(); ++s) {
    Status status = merged.AbsorbFrom(shards_[s]);
    if (!status.ok()) return status;
  }
  return merged;
}

Result<RobustL0SamplerIW> ShardedSamplerPool::MergedQuiesced() {
  Result<RobustL0SamplerIW> merged =
      Status::Internal("quiesced merge did not run");
  pipeline_->QuiescedRun([this, &merged] { merged = Merged(); });
  return merged;
}

uint64_t ShardedSamplerPool::points_processed() const {
  uint64_t total = 0;
  for (const RobustL0SamplerIW& sampler : shards_) {
    total += sampler.points_processed();
  }
  return total;
}

uint64_t ShardedSamplerPool::points_fed() const {
  return pipeline_->points_fed();
}

size_t ShardedSamplerPool::SpaceWords() const {
  size_t total = 0;
  for (const RobustL0SamplerIW& sampler : shards_) {
    total += sampler.SpaceWords();
  }
  return total;
}

// ---------------------------------------------------------- windowed mode

Result<ShardedSwSamplerPool> ShardedSwSamplerPool::Create(
    const SamplerOptions& options, int64_t window, size_t shards,
    const IngestPool::Options& pipeline_options) {
  if (shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  std::vector<RobustL0SamplerSW> samplers;
  samplers.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    // Identical options (and seed!): the shards must share one grid and
    // one nested cell hash for their window samples to be mergeable.
    Result<RobustL0SamplerSW> sampler =
        RobustL0SamplerSW::Create(options, window);
    if (!sampler.ok()) return sampler.status();
    samplers.push_back(std::move(sampler).value());
  }
  return ShardedSwSamplerPool(std::move(samplers), window, pipeline_options);
}

ShardedSwSamplerPool::ShardedSwSamplerPool(
    std::vector<RobustL0SamplerSW> shards, int64_t window,
    const IngestPool::Options& pipeline_options)
    : shards_(std::move(shards)), window_(window),
      pipeline_options_(pipeline_options),
      mode_(std::make_unique<std::atomic<uint8_t>>(0)),
      reorder_fe_(std::make_unique<ReorderFrontEnd>()),
      journal_mu_(std::make_unique<Mutex>()) {
  StartPipeline();
}

template <typename FeedCall>
void ShardedSwSamplerPool::FeedJournaled(Span<const Point> points,
                                         Span<const int64_t> stamps,
                                         FeedCall feed) {
  if (!journal_ || points.size() == 0) {
    // Empty chunks are pipeline no-ops; journaling them would only add
    // mode-ambiguous records with nothing to replay.
    feed();
    return;
  }
  // The lock spans the counter read AND the enqueue: a second producer
  // cannot slip a chunk between them, so the journal's record order is
  // the pipeline's index-base assignment order and recovery can verify
  // index continuity record by record.
  MutexLock lock(journal_mu_.get());
  journal_(points, stamps, pipeline_->points_fed(), nullptr);
  feed();
}

void ShardedSwSamplerPool::StartPipeline() {
  const size_t shards = shards_.size();
  std::vector<IngestPool::Sink> sinks;
  std::vector<IngestPool::StampedSink> stamped_sinks;
  std::vector<IngestPool::WatermarkSink> watermark_sinks;
  sinks.reserve(shards);
  stamped_sinks.reserve(shards);
  watermark_sinks.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    RobustL0SamplerSW* shard = &shards_[s];
    sinks.push_back([shard, s, shards](Span<const Point> chunk,
                                       uint64_t index_base) {
      // Global-residue partition with stamps derived from the chunk's
      // index base: point i of the chunk has global position (and stamp)
      // index_base + i, so the shard's input subsequence — including its
      // window-expiry schedule — is invariant under re-chunking.
      shard->InsertStrided(chunk, StrideStart(s, shards, index_base),
                           shards, index_base);
    });
    stamped_sinks.push_back([shard, s, shards](Span<const Point> chunk,
                                               Span<const int64_t> stamps,
                                               uint64_t index_base) {
      // Time-based variant: the stamp array rides the chunk, global
      // positions still come from the index base — the shard's input
      // (points, stamps, indices) is invariant under re-chunking.
      shard->InsertStridedStamped(chunk, stamps,
                                  StrideStart(s, shards, index_base),
                                  shards, index_base);
    });
    watermark_sinks.push_back([shard](int64_t watermark) {
      // Event-time advance without points: a lane whose residue class
      // saw nothing recent still learns how far time has progressed
      // (scratch state only — snapshots stay byte-identical to the
      // strict sorted feed).
      shard->NoteWatermark(watermark);
    });
  }
  pipeline_ = std::make_unique<IngestPool>(
      std::move(sinks), std::move(stamped_sinks), std::move(watermark_sinks),
      pipeline_options_);
}

void ShardedSwSamplerPool::LatchMode(StampMode mode) {
  uint8_t expected = static_cast<uint8_t>(StampMode::kUnset);
  const uint8_t wanted = static_cast<uint8_t>(mode);
  if (!mode_->compare_exchange_strong(expected, wanted,
                                      std::memory_order_relaxed)) {
    // Mixing sequence- and time-stamped feeds would interleave two
    // incompatible stamp semantics on every lane; fail loudly.
    RL0_CHECK(expected == wanted);
  }
}

void ShardedSwSamplerPool::Feed(Span<const Point> points) {
  LatchMode(StampMode::kSequence);
  FeedJournaled(points, Span<const int64_t>(),
                [&] { pipeline_->Feed(points); });
}

void ShardedSwSamplerPool::FeedOwned(std::vector<Point> points) {
  LatchMode(StampMode::kSequence);
  // The journal span is consumed before the move below runs.
  FeedJournaled(points, Span<const int64_t>(),
                [&] { pipeline_->FeedOwned(std::move(points)); });
}

void ShardedSwSamplerPool::FeedBorrowed(Span<const Point> points) {
  LatchMode(StampMode::kSequence);
  FeedJournaled(points, Span<const int64_t>(),
                [&] { pipeline_->FeedBorrowed(points); });
}

void ShardedSwSamplerPool::FeedStamped(Span<const Point> points,
                                       Span<const int64_t> stamps) {
  LatchMode(StampMode::kTime);
  FeedJournaled(points, stamps,
                [&] { pipeline_->FeedStamped(points, stamps); });
}

void ShardedSwSamplerPool::FeedOwnedStamped(std::vector<Point> points,
                                            std::vector<int64_t> stamps) {
  LatchMode(StampMode::kTime);
  FeedJournaled(points, stamps, [&] {
    pipeline_->FeedOwnedStamped(std::move(points), std::move(stamps));
  });
}

void ShardedSwSamplerPool::FeedBorrowedStamped(Span<const Point> points,
                                               Span<const int64_t> stamps) {
  LatchMode(StampMode::kTime);
  FeedJournaled(points, stamps,
                [&] { pipeline_->FeedBorrowedStamped(points, stamps); });
}

void ShardedSwSamplerPool::FeedStampedLate(Span<const Point> points,
                                           Span<const int64_t> stamps) {
  RL0_CHECK(stamps.size() == points.size());
  LatchMode(StampMode::kTime);
  ReorderFrontEnd* fe = reorder_fe_.get();
  MutexLock lock(&fe->mu);
  if (!fe->stage) {
    fe->stage = std::make_unique<ReorderStage>(
        shards_[0].options().allowed_lateness,
        shards_[0].options().late_policy);
  }
  fe->stage->OfferBatch(points, stamps);
  PumpReorderLocked(fe);
}

void ShardedSwSamplerPool::FlushLate() {
  ReorderFrontEnd* fe = reorder_fe_.get();
  MutexLock lock(&fe->mu);
  if (!fe->stage) return;
  fe->stage->Flush();
  PumpReorderLocked(fe);
}

void ShardedSwSamplerPool::PumpReorderLocked(ReorderFrontEnd* fe) {
  std::vector<Point> points;
  std::vector<int64_t> stamps;
  if (fe->stage->TakeReleased(&points, &stamps)) {
    // Released order is the canonically sorted order, so the pipeline
    // sees exactly the chunk stream a strict sorted feed would (modulo
    // chunk boundaries, which the determinism contract absorbs). Only
    // the *released* prefix is journaled — points still buffered in the
    // reorder heap at a crash were never durable (the recovery contract
    // in core/checkpoint.h).
    FeedJournaled(points, stamps, [&] {
      pipeline_->FeedOwnedStamped(std::move(points), std::move(stamps));
    });
  }
  if (fe->stage->has_watermark()) {
    const int64_t watermark = fe->stage->watermark();
    if (!fe->watermark_sent || watermark > fe->last_watermark) {
      // After the release above: released stamps are below the new
      // watermark, and every future release is at or above it, so the
      // pipeline's stamp monotonicity check holds on both sides.
      if (journal_) {
        MutexLock lock(journal_mu_.get());
        journal_(Span<const Point>(), Span<const int64_t>(),
                 pipeline_->points_fed(), &watermark);
        pipeline_->FeedWatermark(watermark);
      } else {
        pipeline_->FeedWatermark(watermark);
      }
      fe->watermark_sent = true;
      fe->last_watermark = watermark;
    }
  }
}

ReorderStats ShardedSwSamplerPool::late_stats() const {
  ReorderFrontEnd* fe = reorder_fe_.get();
  MutexLock lock(&fe->mu);
  return fe->stage ? fe->stage->stats() : ReorderStats();
}

void ShardedSwSamplerPool::set_late_sink(ReorderStage::LateSink sink) {
  ReorderFrontEnd* fe = reorder_fe_.get();
  MutexLock lock(&fe->mu);
  if (!fe->stage) {
    fe->stage = std::make_unique<ReorderStage>(
        shards_[0].options().allowed_lateness,
        shards_[0].options().late_policy);
  }
  fe->stage->set_late_sink(std::move(sink));
}

std::vector<std::pair<Point, int64_t>>
ShardedSwSamplerPool::TakeLateSideChannel() {
  ReorderFrontEnd* fe = reorder_fe_.get();
  MutexLock lock(&fe->mu);
  if (!fe->stage) return {};
  return fe->stage->TakeLate();
}

void ShardedSwSamplerPool::FeedAdaptive(Span<const Point> points) {
  FeedChunked(points.size(), &chunk_policy_, pipeline_.get(),
              [&](size_t offset, size_t n) {
                Feed(points.subspan(offset, n));
              });
}

void ShardedSwSamplerPool::FeedStampedAdaptive(Span<const Point> points,
                                               Span<const int64_t> stamps) {
  RL0_CHECK(stamps.size() == points.size());
  FeedChunked(points.size(), &chunk_policy_, pipeline_.get(),
              [&](size_t offset, size_t n) {
                FeedStamped(points.subspan(offset, n),
                            stamps.subspan(offset, n));
              });
}

void ShardedSwSamplerPool::Drain() { pipeline_->Drain(); }

void ShardedSwSamplerPool::ConsumeParallel(Span<const Point> points) {
  FeedBorrowed(points);
  Drain();
}

int64_t ShardedSwSamplerPool::now() const {
  if (mode_->load(std::memory_order_relaxed) ==
      static_cast<uint8_t>(StampMode::kTime)) {
    return pipeline_->latest_stamp();
  }
  return static_cast<int64_t>(pipeline_->points_fed()) - 1;
}

void ShardedSwSamplerPool::DedupeLatestWins(
    std::vector<SampleItem>* items) const {
  const SamplerOptions& opts = shards_[0].options();
  std::vector<SampleItem>& v = *items;
  size_t kept = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    bool merged = false;
    for (size_t j = 0; j < kept; ++j) {
      if (MetricWithinDistance(v[j].point, v[i].point, opts.alpha,
                               opts.metric)) {
        // Same underlying group reported by two shards: keep the view
        // with the later stream position (the union's freshest point).
        if (v[i].stream_index > v[j].stream_index) v[j] = std::move(v[i]);
        merged = true;
        break;
      }
    }
    if (!merged) {
      if (kept != i) v[kept] = std::move(v[i]);
      ++kept;
    }
  }
  v.resize(kept);
}

std::vector<SampleItem> ShardedSwSamplerPool::MergedWindowItems(
    int64_t query_now) {
  std::vector<SampleItem> items;
  for (RobustL0SamplerSW& shard : shards_) {
    shard.AcceptedWindowItems(query_now, &items);
  }
  // A single shard's accepted groups are already distinct (one accepted
  // record per group across the hierarchy) — pass through untouched so
  // the one-lane pool matches the pointwise sampler bit-for-bit.
  if (shards_.size() > 1) DedupeLatestWins(&items);
  return items;
}

template <typename NowOf>
std::vector<SampleItem> ShardedSwSamplerPool::BuildUnifiedPool(
    NowOf now_of, Xoshiro256pp* rng) {
  // Pass 1 (no query randomness consumed): the global deepest non-empty
  // level across shards. Each shard's pool is then unified to that one
  // rate 1/R_c_global, so no shard over-contributes just because its own
  // hierarchy settled shallower — the PR 3 multi-shard over-inclusion
  // caveat. With one shard this degenerates to the shard's own deepest
  // level and the rng consumption of the plain pointwise query.
  int c_global = -1;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const std::optional<uint32_t> deepest =
        shards_[s].DeepestNonEmptyLevel(now_of(s));
    if (deepest.has_value()) {
      c_global = std::max(c_global, static_cast<int>(*deepest));
    }
  }
  std::vector<SampleItem> pool;
  if (c_global < 0) return pool;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::vector<SampleItem> shard_pool =
        shards_[s].WindowQueryPool(now_of(s), rng, c_global);
    pool.insert(pool.end(), shard_pool.begin(), shard_pool.end());
  }
  // Cross-shard α-proximity dedupe: at most one entry per underlying
  // group survives, so a group tracked by several shards cannot occupy
  // several slots of the uniform draw.
  if (shards_.size() > 1) DedupeLatestWins(&pool);
  return pool;
}

std::vector<SampleItem> ShardedSwSamplerPool::UnifiedQueryPool(
    int64_t query_now, Xoshiro256pp* rng) {
  return BuildUnifiedPool([query_now](size_t) { return query_now; }, rng);
}

std::optional<SampleItem> ShardedSwSamplerPool::Sample(int64_t query_now,
                                                       Xoshiro256pp* rng) {
  const std::vector<SampleItem> pool = UnifiedQueryPool(query_now, rng);
  if (pool.empty()) return std::nullopt;
  return pool[rng->NextBounded(pool.size())];
}

std::optional<SampleItem> ShardedSwSamplerPool::SampleLatest(
    Xoshiro256pp* rng) {
  return Sample(now(), rng);
}

std::optional<SampleItem> ShardedSwSamplerPool::SampleQuiesced(
    Xoshiro256pp* rng) {
  std::optional<SampleItem> sample;
  pipeline_->QuiescedRun([this, rng, &sample] {
    // Each shard is queried at its own processed prefix: its event time
    // (watermark() — the latest stamp unless a broadcast watermark moved
    // past it on the bounded-lateness path). Expiring at a stamp the
    // lane is promised never to see undercut repeats or front-runs work
    // its own inserts do, so the peek never disturbs the lane's
    // deterministic trajectory.
    const std::vector<SampleItem> pool = BuildUnifiedPool(
        [this](size_t s) { return shards_[s].watermark(); }, rng);
    if (!pool.empty()) sample = pool[rng->NextBounded(pool.size())];
  });
  return sample;
}

void ShardedSwSamplerPool::QuiescedRun(const std::function<void()>& fn) {
  pipeline_->QuiescedRun(fn);
}

uint64_t ShardedSwSamplerPool::points_processed() const {
  uint64_t total = 0;
  for (const RobustL0SamplerSW& sampler : shards_) {
    total += sampler.points_processed();
  }
  return total;
}

uint64_t ShardedSwSamplerPool::points_fed() const {
  return pipeline_->points_fed();
}

size_t ShardedSwSamplerPool::SpaceWords() const {
  size_t total = 0;
  for (const RobustL0SamplerSW& sampler : shards_) {
    total += sampler.SpaceWords();
  }
  return total;
}

}  // namespace rl0
