#include "rl0/core/sharded_pool.h"

#include <thread>
#include <utility>

namespace rl0 {

Result<ShardedSamplerPool> ShardedSamplerPool::Create(
    const SamplerOptions& options, size_t shards,
    const IngestPool::Options& pipeline_options) {
  if (shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  std::vector<RobustL0SamplerIW> samplers;
  samplers.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    // Identical options (and seed!) on purpose: AbsorbFrom requires the
    // shared grid/hash randomness of mergeable sketches.
    Result<RobustL0SamplerIW> sampler = RobustL0SamplerIW::Create(options);
    if (!sampler.ok()) return sampler.status();
    samplers.push_back(std::move(sampler).value());
  }
  return ShardedSamplerPool(std::move(samplers), pipeline_options);
}

ShardedSamplerPool::ShardedSamplerPool(
    std::vector<RobustL0SamplerIW> shards,
    const IngestPool::Options& pipeline_options)
    : shards_(std::move(shards)), pipeline_options_(pipeline_options) {
  StartPipeline();
}

void ShardedSamplerPool::StartPipeline() {
  const size_t shards = shards_.size();
  std::vector<IngestPool::Sink> sinks;
  sinks.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    RobustL0SamplerIW* shard = &shards_[s];
    sinks.push_back([shard, s, shards](Span<const Point> chunk,
                                       uint64_t index_base) {
      // Global-residue partition: this shard owns the points at global
      // stream positions ≡ s (mod shards). The first such position inside
      // the chunk is the smallest i with (index_base + i) % shards == s,
      // so per-shard input streams — and decisions — are invariant under
      // re-chunking of the feed.
      const size_t start = static_cast<size_t>(
          (s + shards - static_cast<size_t>(index_base % shards)) % shards);
      shard->InsertStrided(chunk, start, shards, index_base);
    });
  }
  pipeline_ = std::make_unique<IngestPool>(std::move(sinks),
                                           pipeline_options_);
}

void ShardedSamplerPool::Feed(Span<const Point> points) {
  pipeline_->Feed(points);
}

void ShardedSamplerPool::FeedOwned(std::vector<Point> points) {
  pipeline_->FeedOwned(std::move(points));
}

void ShardedSamplerPool::FeedBorrowed(Span<const Point> points) {
  pipeline_->FeedBorrowed(points);
}

void ShardedSamplerPool::Drain() { pipeline_->Drain(); }

void ShardedSamplerPool::ConsumeParallel(Span<const Point> points) {
  // The span outlives the call because Drain is the last thing we do.
  FeedBorrowed(points);
  Drain();
}

void ShardedSamplerPool::ConsumeParallelSpawnJoin(Span<const Point> points) {
  // Pre-pipeline behaviour: per-call thread spawn/join, chunk-relative
  // residue classes. Quiesce the pipeline first and reserve this chunk's
  // index range so both paths share one global index space.
  pipeline_->Drain();
  const uint64_t index_base = pipeline_->AdvanceIndexBase(points.size());
  const size_t shards = shards_.size();
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    workers.emplace_back([this, points, s, shards, index_base] {
      shards_[s].InsertStrided(points, s, shards, index_base);
    });
  }
  for (std::thread& worker : workers) worker.join();
}

Result<RobustL0SamplerIW> ShardedSamplerPool::Merged() const {
  RobustL0SamplerIW merged = shards_[0];
  for (size_t s = 1; s < shards_.size(); ++s) {
    Status status = merged.AbsorbFrom(shards_[s]);
    if (!status.ok()) return status;
  }
  return merged;
}

Result<RobustL0SamplerIW> ShardedSamplerPool::MergedQuiesced() {
  Result<RobustL0SamplerIW> merged =
      Status::Internal("quiesced merge did not run");
  pipeline_->QuiescedRun([this, &merged] { merged = Merged(); });
  return merged;
}

uint64_t ShardedSamplerPool::points_processed() const {
  uint64_t total = 0;
  for (const RobustL0SamplerIW& sampler : shards_) {
    total += sampler.points_processed();
  }
  return total;
}

uint64_t ShardedSamplerPool::points_fed() const {
  return pipeline_->points_fed();
}

size_t ShardedSamplerPool::SpaceWords() const {
  size_t total = 0;
  for (const RobustL0SamplerIW& sampler : shards_) {
    total += sampler.SpaceWords();
  }
  return total;
}

}  // namespace rl0
