#include "rl0/core/sharded_pool.h"

#include <thread>

namespace rl0 {

Result<ShardedSamplerPool> ShardedSamplerPool::Create(
    const SamplerOptions& options, size_t shards) {
  if (shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  std::vector<RobustL0SamplerIW> samplers;
  samplers.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    // Identical options (and seed!) on purpose: AbsorbFrom requires the
    // shared grid/hash randomness of mergeable sketches.
    Result<RobustL0SamplerIW> sampler = RobustL0SamplerIW::Create(options);
    if (!sampler.ok()) return sampler.status();
    samplers.push_back(std::move(sampler).value());
  }
  return ShardedSamplerPool(std::move(samplers));
}

void ShardedSamplerPool::ConsumeParallel(Span<const Point> points) {
  const size_t shards = shards_.size();
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    workers.emplace_back([this, points, s, shards] {
      // The whole span is handed to the shard once; InsertStrided walks
      // the shard's residue class in one tight loop and stamps each point
      // with its *global* stream position, so Merged() resolves duplicate
      // groups by true arrival order (and stream indices stay unique
      // across shards).
      shards_[s].InsertStrided(points, s, shards, consumed_);
    });
  }
  for (std::thread& worker : workers) worker.join();
  consumed_ += points.size();
}

Result<RobustL0SamplerIW> ShardedSamplerPool::Merged() const {
  RobustL0SamplerIW merged = shards_[0];
  for (size_t s = 1; s < shards_.size(); ++s) {
    Status status = merged.AbsorbFrom(shards_[s]);
    if (!status.ok()) return status;
  }
  return merged;
}

uint64_t ShardedSamplerPool::points_processed() const {
  uint64_t total = 0;
  for (const RobustL0SamplerIW& sampler : shards_) {
    total += sampler.points_processed();
  }
  return total;
}

size_t ShardedSamplerPool::SpaceWords() const {
  size_t total = 0;
  for (const RobustL0SamplerIW& sampler : shards_) {
    total += sampler.SpaceWords();
  }
  return total;
}

}  // namespace rl0
