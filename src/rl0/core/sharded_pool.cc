#include "rl0/core/sharded_pool.h"

#include <thread>
#include <utility>

namespace rl0 {

namespace {

/// First position i inside a chunk with (index_base + i) % shards == s —
/// the global-residue partition both pools' sinks are built on. One copy
/// of this arithmetic: it is what makes per-shard streams invariant
/// under re-chunking (the determinism contract of the pipeline tests).
size_t StrideStart(size_t s, size_t shards, uint64_t index_base) {
  return (s + shards - static_cast<size_t>(index_base % shards)) % shards;
}

}  // namespace

Result<ShardedSamplerPool> ShardedSamplerPool::Create(
    const SamplerOptions& options, size_t shards,
    const IngestPool::Options& pipeline_options) {
  if (shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  std::vector<RobustL0SamplerIW> samplers;
  samplers.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    // Identical options (and seed!) on purpose: AbsorbFrom requires the
    // shared grid/hash randomness of mergeable sketches.
    Result<RobustL0SamplerIW> sampler = RobustL0SamplerIW::Create(options);
    if (!sampler.ok()) return sampler.status();
    samplers.push_back(std::move(sampler).value());
  }
  return ShardedSamplerPool(std::move(samplers), pipeline_options);
}

ShardedSamplerPool::ShardedSamplerPool(
    std::vector<RobustL0SamplerIW> shards,
    const IngestPool::Options& pipeline_options)
    : shards_(std::move(shards)), pipeline_options_(pipeline_options) {
  StartPipeline();
}

void ShardedSamplerPool::StartPipeline() {
  const size_t shards = shards_.size();
  std::vector<IngestPool::Sink> sinks;
  sinks.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    RobustL0SamplerIW* shard = &shards_[s];
    sinks.push_back([shard, s, shards](Span<const Point> chunk,
                                       uint64_t index_base) {
      // Global-residue partition: this shard owns the points at global
      // stream positions ≡ s (mod shards), so per-shard input streams —
      // and decisions — are invariant under re-chunking of the feed.
      shard->InsertStrided(chunk, StrideStart(s, shards, index_base),
                           shards, index_base);
    });
  }
  pipeline_ = std::make_unique<IngestPool>(std::move(sinks),
                                           pipeline_options_);
}

void ShardedSamplerPool::Feed(Span<const Point> points) {
  pipeline_->Feed(points);
}

void ShardedSamplerPool::FeedOwned(std::vector<Point> points) {
  pipeline_->FeedOwned(std::move(points));
}

void ShardedSamplerPool::FeedBorrowed(Span<const Point> points) {
  pipeline_->FeedBorrowed(points);
}

void ShardedSamplerPool::Drain() { pipeline_->Drain(); }

void ShardedSamplerPool::ConsumeParallel(Span<const Point> points) {
  // The span outlives the call because Drain is the last thing we do.
  FeedBorrowed(points);
  Drain();
}

void ShardedSamplerPool::ConsumeParallelSpawnJoin(Span<const Point> points) {
  // Pre-pipeline behaviour: per-call thread spawn/join, chunk-relative
  // residue classes. Quiesce the pipeline first and reserve this chunk's
  // index range so both paths share one global index space.
  pipeline_->Drain();
  const uint64_t index_base = pipeline_->AdvanceIndexBase(points.size());
  const size_t shards = shards_.size();
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    workers.emplace_back([this, points, s, shards, index_base] {
      shards_[s].InsertStrided(points, s, shards, index_base);
    });
  }
  for (std::thread& worker : workers) worker.join();
}

Result<RobustL0SamplerIW> ShardedSamplerPool::Merged() const {
  RobustL0SamplerIW merged = shards_[0];
  for (size_t s = 1; s < shards_.size(); ++s) {
    Status status = merged.AbsorbFrom(shards_[s]);
    if (!status.ok()) return status;
  }
  return merged;
}

Result<RobustL0SamplerIW> ShardedSamplerPool::MergedQuiesced() {
  Result<RobustL0SamplerIW> merged =
      Status::Internal("quiesced merge did not run");
  pipeline_->QuiescedRun([this, &merged] { merged = Merged(); });
  return merged;
}

uint64_t ShardedSamplerPool::points_processed() const {
  uint64_t total = 0;
  for (const RobustL0SamplerIW& sampler : shards_) {
    total += sampler.points_processed();
  }
  return total;
}

uint64_t ShardedSamplerPool::points_fed() const {
  return pipeline_->points_fed();
}

size_t ShardedSamplerPool::SpaceWords() const {
  size_t total = 0;
  for (const RobustL0SamplerIW& sampler : shards_) {
    total += sampler.SpaceWords();
  }
  return total;
}

// ---------------------------------------------------------- windowed mode

Result<ShardedSwSamplerPool> ShardedSwSamplerPool::Create(
    const SamplerOptions& options, int64_t window, size_t shards,
    const IngestPool::Options& pipeline_options) {
  if (shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  std::vector<RobustL0SamplerSW> samplers;
  samplers.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    // Identical options (and seed!): the shards must share one grid and
    // one nested cell hash for their window samples to be mergeable.
    Result<RobustL0SamplerSW> sampler =
        RobustL0SamplerSW::Create(options, window);
    if (!sampler.ok()) return sampler.status();
    samplers.push_back(std::move(sampler).value());
  }
  return ShardedSwSamplerPool(std::move(samplers), window, pipeline_options);
}

ShardedSwSamplerPool::ShardedSwSamplerPool(
    std::vector<RobustL0SamplerSW> shards, int64_t window,
    const IngestPool::Options& pipeline_options)
    : shards_(std::move(shards)), window_(window),
      pipeline_options_(pipeline_options) {
  StartPipeline();
}

void ShardedSwSamplerPool::StartPipeline() {
  const size_t shards = shards_.size();
  std::vector<IngestPool::Sink> sinks;
  sinks.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    RobustL0SamplerSW* shard = &shards_[s];
    sinks.push_back([shard, s, shards](Span<const Point> chunk,
                                       uint64_t index_base) {
      // Global-residue partition with stamps derived from the chunk's
      // index base: point i of the chunk has global position (and stamp)
      // index_base + i, so the shard's input subsequence — including its
      // window-expiry schedule — is invariant under re-chunking.
      shard->InsertStrided(chunk, StrideStart(s, shards, index_base),
                           shards, index_base);
    });
  }
  pipeline_ = std::make_unique<IngestPool>(std::move(sinks),
                                           pipeline_options_);
}

void ShardedSwSamplerPool::Feed(Span<const Point> points) {
  pipeline_->Feed(points);
}

void ShardedSwSamplerPool::FeedOwned(std::vector<Point> points) {
  pipeline_->FeedOwned(std::move(points));
}

void ShardedSwSamplerPool::FeedBorrowed(Span<const Point> points) {
  pipeline_->FeedBorrowed(points);
}

void ShardedSwSamplerPool::Drain() { pipeline_->Drain(); }

void ShardedSwSamplerPool::ConsumeParallel(Span<const Point> points) {
  FeedBorrowed(points);
  Drain();
}

int64_t ShardedSwSamplerPool::now() const {
  return static_cast<int64_t>(pipeline_->points_fed()) - 1;
}

void ShardedSwSamplerPool::DedupeLatestWins(
    std::vector<SampleItem>* items) const {
  const SamplerOptions& opts = shards_[0].options();
  std::vector<SampleItem>& v = *items;
  size_t kept = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    bool merged = false;
    for (size_t j = 0; j < kept; ++j) {
      if (MetricWithinDistance(v[j].point, v[i].point, opts.alpha,
                               opts.metric)) {
        // Same underlying group reported by two shards: keep the view
        // with the later stream position (the union's freshest point).
        if (v[i].stream_index > v[j].stream_index) v[j] = std::move(v[i]);
        merged = true;
        break;
      }
    }
    if (!merged) {
      if (kept != i) v[kept] = std::move(v[i]);
      ++kept;
    }
  }
  v.resize(kept);
}

std::vector<SampleItem> ShardedSwSamplerPool::MergedWindowItems(
    int64_t query_now) {
  std::vector<SampleItem> items;
  for (RobustL0SamplerSW& shard : shards_) {
    shard.AcceptedWindowItems(query_now, &items);
  }
  // A single shard's accepted groups are already distinct (one accepted
  // record per group across the hierarchy) — pass through untouched so
  // the one-lane pool matches the pointwise sampler bit-for-bit.
  if (shards_.size() > 1) DedupeLatestWins(&items);
  return items;
}

std::optional<SampleItem> ShardedSwSamplerPool::Sample(int64_t query_now,
                                                       Xoshiro256pp* rng) {
  std::vector<SampleItem> pool;
  for (RobustL0SamplerSW& shard : shards_) {
    std::vector<SampleItem> shard_pool = shard.WindowQueryPool(query_now, rng);
    pool.insert(pool.end(), shard_pool.begin(), shard_pool.end());
  }
  if (shards_.size() > 1) DedupeLatestWins(&pool);
  if (pool.empty()) return std::nullopt;
  return pool[rng->NextBounded(pool.size())];
}

std::optional<SampleItem> ShardedSwSamplerPool::SampleLatest(
    Xoshiro256pp* rng) {
  return Sample(now(), rng);
}

std::optional<SampleItem> ShardedSwSamplerPool::SampleQuiesced(
    Xoshiro256pp* rng) {
  std::optional<SampleItem> sample;
  pipeline_->QuiescedRun([this, rng, &sample] {
    // Each shard is queried at its own processed prefix: expiring at the
    // shard's latest stamp repeats work its own inserts already did, so
    // the peek never disturbs the lane's deterministic trajectory.
    std::vector<SampleItem> pool;
    for (RobustL0SamplerSW& shard : shards_) {
      std::vector<SampleItem> shard_pool =
          shard.WindowQueryPool(shard.latest_stamp(), rng);
      pool.insert(pool.end(), shard_pool.begin(), shard_pool.end());
    }
    if (shards_.size() > 1) DedupeLatestWins(&pool);
    if (!pool.empty()) sample = pool[rng->NextBounded(pool.size())];
  });
  return sample;
}

void ShardedSwSamplerPool::QuiescedRun(const std::function<void()>& fn) {
  pipeline_->QuiescedRun(fn);
}

uint64_t ShardedSwSamplerPool::points_processed() const {
  uint64_t total = 0;
  for (const RobustL0SamplerSW& sampler : shards_) {
    total += sampler.points_processed();
  }
  return total;
}

uint64_t ShardedSwSamplerPool::points_fed() const {
  return pipeline_->points_fed();
}

size_t ShardedSwSamplerPool::SpaceWords() const {
  size_t total = 0;
  for (const RobustL0SamplerSW& sampler : shards_) {
    total += sampler.SpaceWords();
  }
  return total;
}

}  // namespace rl0
