#include "rl0/core/f0_iw.h"

#include <algorithm>
#include <cmath>

#include "rl0/util/rng.h"

namespace rl0 {

Status F0Options::Validate() const {
  Status s = sampler.Validate();
  if (!s.ok()) return s;
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (kappa_b <= 0.0) {
    return Status::InvalidArgument("kappa_b must be positive");
  }
  if (copies < 1) {
    return Status::InvalidArgument("copies must be >= 1");
  }
  return Status::OK();
}

size_t F0Options::PerCopyCap() const {
  return std::max<size_t>(
      8, static_cast<size_t>(std::ceil(kappa_b / (epsilon * epsilon))));
}

Result<F0EstimatorIW> F0EstimatorIW::Create(const F0Options& options) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  std::vector<RobustL0SamplerIW> samplers;
  samplers.reserve(options.copies);
  for (size_t i = 0; i < options.copies; ++i) {
    SamplerOptions per_copy = options.sampler;
    // Section 5: replace the κ0·log m threshold with κB/ε².
    per_copy.accept_cap = options.PerCopyCap();
    // Independent randomness per copy, derived from the master seed.
    per_copy.seed = SplitMix64(options.sampler.seed + 0x46300000ULL + i);
    Result<RobustL0SamplerIW> sampler = RobustL0SamplerIW::Create(per_copy);
    if (!sampler.ok()) return sampler.status();
    samplers.push_back(std::move(sampler).value());
  }
  return F0EstimatorIW(std::move(samplers));
}

F0EstimatorIW::F0EstimatorIW(std::vector<RobustL0SamplerIW> samplers)
    : samplers_(std::move(samplers)),
      pipe_(std::make_unique<PipelineFront>()) {}

void F0EstimatorIW::Insert(const Point& p) {
  for (RobustL0SamplerIW& sampler : samplers_) sampler.Insert(p);
}

void F0EstimatorIW::InsertBatch(Span<const Point> points) {
  for (RobustL0SamplerIW& sampler : samplers_) sampler.InsertBatch(points);
}

IngestPool* F0EstimatorIW::EnsurePipeline() {
  MutexLock lock(&pipe_->mu);
  if (pipe_->pipeline) return pipe_->pipeline.get();
  std::vector<IngestPool::Sink> sinks;
  sinks.reserve(samplers_.size());
  for (RobustL0SamplerIW& sampler : samplers_) {
    RobustL0SamplerIW* copy = &sampler;
    // Unlike the sharded pool's strided lanes, every copy consumes the
    // whole stream: the copies differ by seed, not by partition.
    sinks.push_back([copy](Span<const Point> chunk, uint64_t /*base*/) {
      copy->InsertBatch(chunk);
    });
  }
  pipe_->pipeline = std::make_unique<IngestPool>(std::move(sinks));
  return pipe_->pipeline.get();
}

void F0EstimatorIW::Feed(Span<const Point> points) {
  EnsurePipeline()->Feed(points);
}

void F0EstimatorIW::FeedOwned(std::vector<Point> points) {
  EnsurePipeline()->FeedOwned(std::move(points));
}

void F0EstimatorIW::Drain() {
  IngestPool* pipeline;
  {
    MutexLock lock(&pipe_->mu);
    pipeline = pipe_->pipeline.get();
  }
  if (pipeline != nullptr) pipeline->Drain();
}

std::vector<double> F0EstimatorIW::CopyEstimates() const {
  std::vector<double> estimates;
  estimates.reserve(samplers_.size());
  for (const RobustL0SamplerIW& sampler : samplers_) {
    estimates.push_back(static_cast<double>(sampler.accept_size()) *
                        static_cast<double>(sampler.rate_reciprocal()));
  }
  return estimates;
}

double F0EstimatorIW::Estimate() const {
  std::vector<double> estimates = CopyEstimates();
  if (estimates.empty()) return 0.0;
  std::nth_element(estimates.begin(),
                   estimates.begin() + estimates.size() / 2, estimates.end());
  return estimates[estimates.size() / 2];
}

size_t F0EstimatorIW::SpaceWords() const {
  size_t words = 0;
  for (const RobustL0SamplerIW& sampler : samplers_) {
    words += sampler.SpaceWords();
  }
  return words;
}

}  // namespace rl0
