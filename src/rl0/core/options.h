// Options shared by the robust ℓ0-samplers and F0 estimators.

#ifndef RL0_CORE_OPTIONS_H_
#define RL0_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "rl0/geom/metric.h"
#include "rl0/hashing/cell_hasher.h"
#include "rl0/util/status.h"

namespace rl0 {

/// How the grid cell side length is derived from α.
enum class GridSideMode {
  /// side = α/2 — the constant-dimension regime of Section 2 (each cell
  /// has diameter < α in d ≤ 3, and the 5^d-block adjacency bound applies).
  kConstantDim,
  /// side = d·α — the high-dimension regime of Section 4 (requires
  /// (α, β)-sparsity with β > d^1.5·α so a cell meets at most one group).
  kHighDim,
  /// side = custom_side — explicit control (tests, ablations).
  kCustom,
};

/// What happens to a stamped arrival that is *late beyond the lateness
/// bound* — its stamp is below the release frontier (max stamp seen −
/// allowed_lateness), so the reordering stage has already released the
/// sorted prefix it belongs to (core/reorder_buffer.h).
enum class LatePolicy {
  /// Drop the point, counting it (ReorderStats::late_dropped). Nothing
  /// is ever silently lost: offered == released + dropped + redirected
  /// (+ buffered, zero after a flush) holds exactly.
  kDrop,
  /// Redirect the point (with its stamp) to a side channel — the
  /// caller's late sink, or an internal buffer drained via
  /// ReorderStage::TakeLate when no sink is set. Counted as
  /// ReorderStats::late_redirected.
  kSideChannel,
};

/// Configuration for RobustL0SamplerIW / SwFixedRateSampler /
/// RobustL0SamplerSW. Plain aggregate; validate with Validate().
struct SamplerOptions {
  /// Dimension d of the points. Required, ≥ 1.
  size_t dim = 0;

  /// Distance threshold α: points within α are near-duplicates. Required.
  double alpha = 0.0;

  /// Distance function under which α is interpreted (default: Euclidean,
  /// the paper's setting; L1/L∞ exercise the Section 7 generalization).
  Metric metric = Metric::kL2;

  /// Master seed; all internal randomness (grid offset, cell hash,
  /// reservoir decisions) is derived from it deterministically.
  uint64_t seed = 0;

  /// Grid side regime (see GridSideMode). Default: high-dimension rule,
  /// which is what the paper's own experiments use (datasets are generated
  /// (α, β)-sparse with β ≈ d^1.5·α).
  GridSideMode side_mode = GridSideMode::kHighDim;

  /// Cell side when side_mode == kCustom.
  double custom_side = 0.0;

  /// Hash family for cell sampling (default: fast mixing, as in the
  /// paper's experiments; kKWisePoly for the theory-faithful setup).
  HashFamily hash_family = HashFamily::kMix64;

  /// Independence parameter for kKWisePoly (Θ(log m)).
  uint32_t kwise_k = 32;

  /// The constant κ0 in the |Sacc| ≤ κ0·log m cap (paper: "large enough").
  double kappa0 = 4.0;

  /// Expected stream length m, used to derive the accept cap and failure
  /// probability targets when accept_cap == 0.
  uint64_t expected_stream_length = uint64_t{1} << 20;

  /// Explicit accept-set cap; 0 means derive κ0·k·⌈log2 m⌉ (min 8).
  size_t accept_cap = 0;

  /// Number of distinct samples to support without replacement
  /// (Section 2.3 scales the cap by k). Default 1.
  size_t k = 1;

  /// When true, return a uniformly random point of the sampled group
  /// instead of its fixed representative (Section 2.3 reservoir variant).
  bool random_representative = false;

  /// Enables the duplicate-suppression front-end (core/dup_filter.h): a
  /// small cache that short-circuits the adjacency DFS for exact repeat
  /// arrivals. Never changes decisions or RNG consumption — accepted
  /// samples, coin streams, and snapshot bytes are bit-identical with it
  /// on or off — so it is on by default; turn off to measure the raw
  /// probe path (bench_filter) or shave scratch memory. Compiled out
  /// entirely by -DRL0_NO_DUP_FILTER.
  bool dup_filter = true;

  /// Bounded-lateness ingestion (core/reorder_buffer.h): the late feed
  /// paths (RobustL0SamplerSW::InsertStampedLate,
  /// ShardedSwSamplerPool::FeedStampedLate, F0EstimatorSW::
  /// FeedStampedLate) accept stamps that run backwards by at most this
  /// many time units behind the maximum stamp seen, reordering them into
  /// the strict non-decreasing sequence the samplers require. Must be
  /// ≥ 0; 0 still tolerates equal-stamp ties arriving in any order. The
  /// strict FeedStamped/InsertStamped paths ignore it.
  int64_t allowed_lateness = 0;

  /// Policy for arrivals later than allowed_lateness on the late feed
  /// paths (see LatePolicy).
  LatePolicy late_policy = LatePolicy::kDrop;

  /// The grid cell side implied by the options.
  double GridSide() const;

  /// The accept-set cap implied by the options.
  size_t EffectiveAcceptCap() const;

  /// Checks the options for consistency.
  Status Validate() const;
};

}  // namespace rl0

#endif  // RL0_CORE_OPTIONS_H_
