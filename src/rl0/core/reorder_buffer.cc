#include "rl0/core/reorder_buffer.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>

#include "rl0/util/check.h"

namespace rl0 {

namespace {

/// The raw IEEE-754 word of a coordinate (total order proxy that never
/// equates distinct bit patterns, unlike operator< on doubles).
uint64_t CoordBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

bool ReorderStage::CanonicalLess(const Point& a, int64_t stamp_a,
                                 const Point& b, int64_t stamp_b) {
  if (stamp_a != stamp_b) return stamp_a < stamp_b;
  if (a.dim() != b.dim()) return a.dim() < b.dim();
  for (size_t i = 0; i < a.dim(); ++i) {
    const uint64_t bits_a = CoordBits(a[i]);
    const uint64_t bits_b = CoordBits(b[i]);
    if (bits_a != bits_b) return bits_a < bits_b;
  }
  return false;
}

void ReorderStage::SortCanonical(std::vector<Point>* points,
                                 std::vector<int64_t>* stamps) {
  RL0_CHECK(points->size() == stamps->size());
  std::vector<size_t> order(points->size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
    return CanonicalLess((*points)[i], (*stamps)[i], (*points)[j],
                         (*stamps)[j]);
  });
  std::vector<Point> sorted_points;
  std::vector<int64_t> sorted_stamps;
  sorted_points.reserve(points->size());
  sorted_stamps.reserve(stamps->size());
  for (size_t i : order) {
    sorted_points.push_back(std::move((*points)[i]));
    sorted_stamps.push_back((*stamps)[i]);
  }
  *points = std::move(sorted_points);
  *stamps = std::move(sorted_stamps);
}

ReorderStage::ReorderStage(int64_t allowed_lateness, LatePolicy policy)
    : allowed_lateness_(allowed_lateness),
      policy_(policy),
      released_bound_(std::numeric_limits<int64_t>::min()) {
  RL0_CHECK(allowed_lateness >= 0);
}

void ReorderStage::StageReleasesBelow(int64_t bound) {
  // Min-heap pops yield canonical order directly, so a release of k
  // points costs k·log(buffered) — no full sort of the buffer.
  const auto heap_greater = [](const Held& a, const Held& b) {
    return CanonicalLess(b.point, b.stamp, a.point, a.stamp);
  };
  while (!heap_.empty() && heap_.front().stamp < bound) {
    std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
    Held& top = heap_.back();
    released_points_.push_back(std::move(top.point));
    released_stamps_.push_back(top.stamp);
    heap_.pop_back();
    ++released_;
  }
}

void ReorderStage::Offer(const Point& p, int64_t stamp) {
  ++offered_;
  if (!has_watermark_ || stamp > max_stamp_) {
    has_watermark_ = true;
    max_stamp_ = stamp;
  }
  if (stamp < released_bound_) {
    // Beyond the lateness bound: the sorted prefix this point belongs
    // to has already been released; slotting it in would emit a
    // decreasing stamp downstream.
    if (policy_ == LatePolicy::kDrop) {
      ++late_dropped_;
    } else {
      ++late_redirected_;
      if (late_sink_) {
        late_sink_(p, stamp);
      } else {
        late_buffer_.emplace_back(p, stamp);
      }
    }
    return;
  }
  heap_.push_back(Held{p, stamp});
  std::push_heap(heap_.begin(), heap_.end(), [](const Held& a, const Held& b) {
    return CanonicalLess(b.point, b.stamp, a.point, a.stamp);
  });
  // Advance the frontier (high watermark − lateness, underflow-clamped)
  // and release the sorted prefix strictly below it. Strict: a tie at
  // the frontier stamp could still gain within-bound members, and ties
  // must release together to stay arrival-order invariant.
  const int64_t floor = std::numeric_limits<int64_t>::min();
  const int64_t frontier = max_stamp_ >= floor + allowed_lateness_
                               ? max_stamp_ - allowed_lateness_
                               : floor;
  if (frontier > released_bound_) {
    StageReleasesBelow(frontier);
    released_bound_ = frontier;
  }
}

void ReorderStage::OfferBatch(Span<const Point> points,
                              Span<const int64_t> stamps) {
  RL0_CHECK(stamps.size() == points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    Offer(points[i], stamps[i]);
  }
}

void ReorderStage::Flush() {
  if (heap_.empty()) {
    // Still advance the release bound: post-flush arrivals at or below
    // the high watermark would tie-break against already released
    // points, so they must be judged late.
    if (has_watermark_ && released_bound_ <= max_stamp_) {
      released_bound_ = max_stamp_ < std::numeric_limits<int64_t>::max()
                            ? max_stamp_ + 1
                            : max_stamp_;
    }
    return;
  }
  StageReleasesBelow(std::numeric_limits<int64_t>::max());
  RL0_CHECK(heap_.empty());
  released_bound_ = max_stamp_ < std::numeric_limits<int64_t>::max()
                        ? max_stamp_ + 1
                        : max_stamp_;
}

bool ReorderStage::TakeReleased(std::vector<Point>* points,
                                std::vector<int64_t>* stamps) {
  if (released_points_.empty()) return false;
  *points = std::move(released_points_);
  *stamps = std::move(released_stamps_);
  released_points_.clear();
  released_stamps_.clear();
  return true;
}

std::vector<std::pair<Point, int64_t>> ReorderStage::TakeLate() {
  std::vector<std::pair<Point, int64_t>> out = std::move(late_buffer_);
  late_buffer_.clear();
  return out;
}

ReorderStats ReorderStage::stats() const {
  ReorderStats s;
  s.offered = offered_;
  s.released = released_;
  s.late_dropped = late_dropped_;
  s.late_redirected = late_redirected_;
  // Staged-but-untaken points already count as released; buffered is the
  // heap only, so the accounting identity holds at every point.
  s.buffered = heap_.size();
  s.has_watermark = has_watermark_;
  s.max_stamp = max_stamp_;
  s.watermark = has_watermark_ ? watermark() : 0;
  return s;
}

size_t ReorderStage::SpaceWords() const {
  size_t words = 0;
  for (const Held& h : heap_) words += h.point.dim() + 2;
  for (const Point& p : released_points_) words += p.dim() + 1;
  words += released_stamps_.size();
  for (const auto& lp : late_buffer_) words += lp.first.dim() + 2;
  return words;
}

}  // namespace rl0
