#include "rl0/core/sw_sampler.h"

#include <cmath>

#include "rl0/util/bits.h"
#include "rl0/util/check.h"

namespace rl0 {

Result<RobustL0SamplerSW> RobustL0SamplerSW::Create(
    const SamplerOptions& options, int64_t window) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  const uint32_t levels =
      CeilLog2(static_cast<uint64_t>(window)) + 1;  // L+1 instances
  if (levels > CellHasher::kMaxLevel) {
    return Status::InvalidArgument("window too large for hash levels");
  }
  return RobustL0SamplerSW(options, window);
}

RobustL0SamplerSW::RobustL0SamplerSW(const SamplerOptions& options,
                                     int64_t window)
    : ctx_(std::make_unique<SamplerContext>(options)),
      id_counter_(std::make_unique<uint64_t>(0)),
      store_(std::make_unique<PointStore>(options.dim)),
      window_(window),
      accept_cap_(options.EffectiveAcceptCap()) {
  const uint32_t L = CeilLog2(static_cast<uint64_t>(window));
  levels_.reserve(L + 1);
  for (uint32_t l = 0; l <= L; ++l) {
    levels_.push_back(std::make_unique<SwFixedRateSampler>(
        ctx_.get(), l, window, id_counter_.get(), store_.get()));
  }
  dup_filter_ = DupFilter(options.dim, /*payload_len=*/1 + levels_.size(),
                          options.dup_filter);
  UpdateMeters();
}

void RobustL0SamplerSW::Insert(const Point& p, int64_t stamp) {
  InsertStamped(p, stamp, points_processed_);
}

void RobustL0SamplerSW::InsertGlobal(const Point& p, uint64_t global_index) {
  InsertStamped(p, static_cast<int64_t>(global_index), global_index);
}

void RobustL0SamplerSW::InsertStrided(Span<const Point> points, size_t start,
                                      size_t stride, uint64_t index_base) {
  RL0_DCHECK(stride > 0);
  const size_t n = points.size();
  // Gate decided once per chunk (the prefetch costs a CellKeyOf per
  // element and only pays on out-of-cache indexes); the common loop
  // stays free of the hint entirely.
  if (levels_.back()->PrefetchPays()) {
    for (size_t i = start; i < n; i += stride) {
      if (i + stride < n) {
        // Warm the first bucket the next element will probe (the top
        // level is fed first in the Algorithm 3 descent).
        levels_.back()->PrefetchCell(
            ctx_->grid.CellKeyOf(points[i + stride]));
      }
      InsertGlobal(points[i], index_base + i);
    }
    return;
  }
  for (size_t i = start; i < n; i += stride) {
    InsertGlobal(points[i], index_base + i);
  }
}

void RobustL0SamplerSW::InsertStridedStamped(Span<const Point> points,
                                             Span<const int64_t> stamps,
                                             size_t start, size_t stride,
                                             uint64_t index_base) {
  RL0_DCHECK(stride > 0);
  RL0_DCHECK(stamps.size() == points.size());
  const size_t n = points.size();
  // Same chunk-level prefetch gate as InsertStrided: warm the next
  // element's top-level cell bucket while this one inserts.
  if (levels_.back()->PrefetchPays()) {
    for (size_t i = start; i < n; i += stride) {
      if (i + stride < n) {
        levels_.back()->PrefetchCell(
            ctx_->grid.CellKeyOf(points[i + stride]));
      }
      InsertStamped(points[i], stamps[i], index_base + i);
    }
    return;
  }
  for (size_t i = start; i < n; i += stride) {
    InsertStamped(points[i], stamps[i], index_base + i);
  }
}

void RobustL0SamplerSW::InsertStamped(const Point& p, int64_t stamp,
                                      uint64_t stream_index) {
  RL0_DCHECK(p.dim() == ctx_->options.dim);
  RL0_DCHECK(points_processed_ == 0 || stamp >= latest_stamp_);
  latest_stamp_ = stamp;
  ++points_processed_;

  // Duplicate-suppression front-end: replay the recorded descent of an
  // exact repeat arrival when the probed levels are structurally
  // unchanged; otherwise fall through to the full descent.
  if (dup_filter_.enabled() && TryReplayDuplicate(p, stamp, stream_index)) {
    UpdateMeters();
    return;
  }

  PreparedPoint prep;
  prep.point = &p;
  prep.stamp = stamp;
  prep.stream_index = stream_index;
  // Fused pass: the adjacency search also yields cell(p)'s key.
  prep.cell_key = ctx_->grid.AdjacentCellsWithBase(p, ctx_->options.alpha,
                                                   &adj_scratch_);
  prep.adj_keys = &adj_scratch_;
  RL0_DCHECK(!dup_filter_.enabled() ||
             ctx_->grid.CellKeyOf(p) == prep.cell_key);

  // The arrival is recordable for replay only when every probed level
  // either ignored it or purely refreshed an existing group (no new
  // representatives, no cascade): only then is the whole descent a pure
  // function of (point bytes, probed-level structure) plus per-group coin
  // streams the replay re-draws identically.
  bool pure_touch = dup_filter_.enabled();
  size_t accept_level = levels_.size();  // sentinel: no accepting level
  if (pure_touch) {
    touch_scratch_.assign(levels_.size(), SwGroupTable::kNpos);
  }

  // Algorithm 3 lines 5-18: feed top-down and stop at the highest level
  // that records p in its *accept* set ("accept it at the highest level ℓ
  // in which the point falls into Sacc_ℓ"), pruning everything below it.
  // Rejected records at upper levels are retained (they block later points
  // of the same group from masquerading as new representatives there) but
  // must not stop the descent: the newest point has to end up accepted at
  // some level, or Lemma 2.10's non-emptiness guarantee would fail.
  for (size_t l = levels_.size(); l-- > 0;) {
    uint32_t touched = SwGroupTable::kNpos;
    const InsertOutcome outcome = levels_[l]->InsertPrepared(prep, &touched);
    if (pure_touch && outcome != InsertOutcome::kIgnored) {
      if (touched == SwGroupTable::kNpos) {
        pure_touch = false;  // a new representative was installed
      } else {
        touch_scratch_[l] = touched;
      }
    }
    if (outcome != InsertOutcome::kAccepted) continue;
    accept_level = l;
    for (size_t j = 0; j < l; ++j) levels_[j]->Reset();
    if (levels_[l]->accept_size() > accept_cap_) {
      Cascade(l);
      pure_touch = false;  // cascade moved groups after the touches
    }
    break;
    // Level 0 samples every cell and has no tracked rejected groups, so
    // the loop always accepts somewhere.
  }
  if (pure_touch) RecordDuplicate(prep, accept_level);
  UpdateMeters();
}

uint64_t RobustL0SamplerSW::SuffixEpoch(size_t from_level) const {
  uint64_t epoch = 0;
  for (size_t l = from_level; l < levels_.size(); ++l) {
    epoch += levels_[l]->generation();
  }
  return epoch;
}

bool RobustL0SamplerSW::TryReplayDuplicate(const Point& p, int64_t stamp,
                                           uint64_t stream_index) {
  const DupFilter::View hit = dup_filter_.Lookup(ctx_->grid.CellKeyOf(p), p);
  if (!hit.found) {
    dup_filter_.CountMiss();
    return false;
  }
  const size_t accept_level = hit.payload[0];
  // The lowest level the recorded descent probed: its accept level, or
  // level 0 when no level accepted (the descent then probed all of them).
  const size_t probe_floor =
      accept_level >= levels_.size() ? 0 : accept_level;
  if (hit.epoch != SuffixEpoch(probe_floor)) {
    dup_filter_.CountMiss();
    return false;
  }

  // Phase 1 — all reads and idempotent expiry, no touches yet. The full
  // descent expires each probed level before probing it; run exactly
  // those expiry passes in descent order, then re-check the epoch. If an
  // expiry removed a group (generation bump), the cached descent may no
  // longer match: abort to the full path, which re-runs Expire at the
  // same stamp (a no-op now) and proceeds identically to a filter-off
  // execution. No RNG is consumed and no touch is applied before this
  // point, so the abort is invisible to the decision stream.
  for (size_t l = levels_.size(); l-- > probe_floor;) {
    levels_[l]->Expire(stamp);
  }
  if (hit.epoch != SuffixEpoch(probe_floor)) {
    dup_filter_.CountMiss();
    return false;
  }

  // Re-verify every cached touch target with the real kernel against the
  // cached representative only (the decision-identity contract's guard):
  // each must still be live with its representative within α of p.
  for (size_t l = probe_floor; l < levels_.size(); ++l) {
    const uint32_t slot = hit.payload[1 + l];
    if (slot == SwGroupTable::kNpos) continue;
    const SwGroupTable& table = levels_[l]->table();
    if (!table.IsLive(slot)) {
      dup_filter_.CountMiss();
      return false;
    }
    const uint32_t arena = table.rep_arena_slot(slot);
    if (FindFirstWithin(*store_, p, &arena, 1, ctx_->options.metric,
                        ctx_->options.alpha) != 0) {
      dup_filter_.CountMiss();
      return false;
    }
  }

  // Phase 2 — replay. With the epoch intact, the full descent's probes
  // are a pure function of (point bytes, probed-level structure) and
  // would resolve to exactly the recorded touch targets; apply those
  // touches in descent order (per-group reservoir coins are drawn in the
  // full path's order), prune below the accept level, and keep the
  // cascade check live (it cannot fire: accept sizes are unchanged since
  // the recording, which saw no cascade).
  dup_filter_.CountHit();
  PreparedPoint prep;
  prep.point = &p;
  prep.stamp = stamp;
  prep.stream_index = stream_index;
  for (size_t l = levels_.size(); l-- > probe_floor;) {
    const uint32_t slot = hit.payload[1 + l];
    if (slot != SwGroupTable::kNpos) levels_[l]->ReplayTouch(prep, slot);
  }
  if (accept_level < levels_.size()) {
    for (size_t j = 0; j < accept_level; ++j) levels_[j]->Reset();
    if (levels_[accept_level]->accept_size() > accept_cap_) {
      Cascade(accept_level);
    }
  }
  return true;
}

void RobustL0SamplerSW::RecordDuplicate(const PreparedPoint& prep,
                                        size_t accept_level) {
  const size_t probe_floor =
      accept_level >= levels_.size() ? 0 : accept_level;
  uint32_t* payload = dup_filter_.Store(prep.cell_key,
                                        SuffixEpoch(probe_floor), *prep.point);
  payload[0] = static_cast<uint32_t>(accept_level);
  for (size_t l = 0; l < levels_.size(); ++l) {
    payload[1 + l] = touch_scratch_[l];
  }
}

void RobustL0SamplerSW::Insert(const Point& p) {
  Insert(p, static_cast<int64_t>(points_processed_));
}

void RobustL0SamplerSW::InsertBatch(Span<const Point> points) {
  const size_t n = points.size();
  if (levels_.back()->PrefetchPays()) {
    for (size_t i = 0; i < n; ++i) {
      if (i + 1 < n) {
        levels_.back()->PrefetchCell(ctx_->grid.CellKeyOf(points[i + 1]));
      }
      Insert(points[i], static_cast<int64_t>(points_processed_));
    }
    return;
  }
  for (const Point& p : points) {
    Insert(p, static_cast<int64_t>(points_processed_));
  }
}

void RobustL0SamplerSW::Cascade(size_t start_level) {
  size_t j = start_level;
  while (levels_[j]->accept_size() > accept_cap_) {
    if (j + 1 >= levels_.size()) {
      // Algorithm 3 line 17: the cascade ran past the top level. With
      // κ0 large enough this has probability ≤ 1/m² (Lemma 2.8); we
      // record the event and leave the top level over-full rather than
      // fail the stream.
      ++error_count_;
      return;
    }
    // Arena-internal promotion: the groups move between the two levels'
    // tables without materializing GroupRecords (both levels share one
    // PointStore), and their reservoir coin streams survive the split.
    if (!levels_[j]->PromoteInto(levels_[j + 1].get())) {
      // No accepted representative survives the next rate: nothing can be
      // promoted this round (DESIGN.md §3). The cap is restored on a later
      // arrival with fresh representatives.
      ++stuck_split_count_;
      return;
    }
    ++j;
  }
}

void RobustL0SamplerSW::ExpireAll(int64_t now) {
  for (auto& level : levels_) level->Expire(now);
}

std::vector<SampleItem> RobustL0SamplerSW::BuildQueryPool(int64_t now,
                                                          Xoshiro256pp* rng,
                                                          int min_level) {
  ExpireAll(now);
  // c = deepest level with a non-empty accept set (Algorithm 3 line 20).
  int c = -1;
  for (size_t l = levels_.size(); l-- > 0;) {
    if (levels_[l]->accept_size() > 0) {
      c = static_cast<int>(l);
      break;
    }
  }
  std::vector<SampleItem> pool;
  if (c < 0) return pool;
  // A sharded pool may unify deeper than this sampler's own hierarchy
  // reaches (the global deepest level across shards); the own deepest
  // level then gets thinned too, and the pool may legitimately come out
  // empty.
  const int unify = min_level > c ? min_level : c;

  // Unify the per-level rates: keep a level-ℓ group with probability
  // R_ℓ/R_unify = 2^(ℓ-unify), so that every surviving group was selected
  // with probability exactly 1/R_unify (Algorithm 3 lines 21-22).
  std::vector<SampleItem> level_points;
  for (int l = 0; l <= c; ++l) {
    level_points.clear();
    levels_[l]->AcceptedGroupSamples(now, &level_points);
    if (l == unify) {
      pool.insert(pool.end(), level_points.begin(), level_points.end());
      continue;
    }
    const double keep = std::pow(2.0, static_cast<double>(l - unify));
    for (const SampleItem& item : level_points) {
      if (rng->NextBernoulli(keep)) pool.push_back(item);
    }
  }
  // Level c contributes with probability 1 when unify == c.
  RL0_DCHECK(unify > c || !pool.empty());
  return pool;
}

std::optional<SampleItem> RobustL0SamplerSW::Sample(int64_t now,
                                                    Xoshiro256pp* rng) {
  const std::vector<SampleItem> pool = BuildQueryPool(now, rng, -1);
  if (pool.empty()) return std::nullopt;
  return pool[rng->NextBounded(pool.size())];
}

Result<std::vector<SampleItem>> RobustL0SamplerSW::SampleK(
    size_t count, int64_t now, Xoshiro256pp* rng) {
  std::vector<SampleItem> pool = BuildQueryPool(now, rng, -1);
  if (pool.size() < count) {
    return Status::FailedPrecondition(
        "fewer unified window groups than requested samples");
  }
  // Every pool entry belongs to a distinct group (each group is
  // accept-tracked at exactly one level), so a partial Fisher–Yates over
  // the pool is a without-replacement group sample.
  std::vector<SampleItem> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t j = i + rng->NextBounded(pool.size() - i);
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

std::optional<SampleItem> RobustL0SamplerSW::SampleLatest(Xoshiro256pp* rng) {
  return Sample(watermark(), rng);
}

void RobustL0SamplerSW::InsertStampedLate(const Point& p, int64_t stamp) {
  if (!reorder_) {
    reorder_ = std::make_unique<ReorderStage>(ctx_->options.allowed_lateness,
                                              ctx_->options.late_policy);
  }
  reorder_->Offer(p, stamp);
  DrainLateReleases();
}

void RobustL0SamplerSW::FlushLate() {
  if (!reorder_) return;
  reorder_->Flush();
  DrainLateReleases();
}

void RobustL0SamplerSW::DrainLateReleases() {
  if (reorder_->TakeReleased(&late_points_scratch_, &late_stamps_scratch_)) {
    for (size_t i = 0; i < late_points_scratch_.size(); ++i) {
      // Insert assigns the dense stream index the sorted feed would —
      // released order IS the canonically sorted order, so indices,
      // coin streams and snapshot bytes match the strict path exactly.
      Insert(late_points_scratch_[i], late_stamps_scratch_[i]);
    }
  }
  if (reorder_->has_watermark()) NoteWatermark(reorder_->watermark());
}

ReorderStats RobustL0SamplerSW::late_stats() const {
  return reorder_ ? reorder_->stats() : ReorderStats();
}

void RobustL0SamplerSW::set_late_sink(ReorderStage::LateSink sink) {
  if (!reorder_) {
    reorder_ = std::make_unique<ReorderStage>(ctx_->options.allowed_lateness,
                                              ctx_->options.late_policy);
  }
  reorder_->set_late_sink(std::move(sink));
}

void RobustL0SamplerSW::NoteWatermark(int64_t watermark) {
  if (!has_event_watermark_ || watermark > event_watermark_) {
    has_event_watermark_ = true;
    event_watermark_ = watermark;
  }
}

void RobustL0SamplerSW::AcceptedWindowItems(int64_t now,
                                            std::vector<SampleItem>* out) {
  ExpireAll(now);
  for (auto& level : levels_) level->AcceptedGroupSamples(now, out);
}

std::optional<uint32_t> RobustL0SamplerSW::DeepestNonEmptyLevel(int64_t now) {
  ExpireAll(now);
  for (size_t l = levels_.size(); l-- > 0;) {
    if (levels_[l]->accept_size() > 0) return static_cast<uint32_t>(l);
  }
  return std::nullopt;
}

size_t RobustL0SamplerSW::CoreSpaceWords() const {
  size_t words = 8;  // scalars
  for (const auto& level : levels_) words += level->SpaceWords();
  return words;
}

size_t RobustL0SamplerSW::SpaceWords() const {
  // The bounded-lateness buffer is real Θ(lateness · rate) state; after
  // a FlushLate it holds nothing and contributes nothing.
  return CoreSpaceWords() + (reorder_ ? reorder_->SpaceWords() : 0);
}

void RobustL0SamplerSW::UpdateMeters() {
  const size_t core = CoreSpaceWords();
  core_meter_.Set(core);
  meter_.Set(core + (reorder_ ? reorder_->SpaceWords() : 0));
}

}  // namespace rl0
