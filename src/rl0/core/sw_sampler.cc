#include "rl0/core/sw_sampler.h"

#include <cmath>

#include "rl0/util/bits.h"
#include "rl0/util/check.h"

namespace rl0 {

Result<RobustL0SamplerSW> RobustL0SamplerSW::Create(
    const SamplerOptions& options, int64_t window) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  const uint32_t levels =
      CeilLog2(static_cast<uint64_t>(window)) + 1;  // L+1 instances
  if (levels > CellHasher::kMaxLevel) {
    return Status::InvalidArgument("window too large for hash levels");
  }
  return RobustL0SamplerSW(options, window);
}

RobustL0SamplerSW::RobustL0SamplerSW(const SamplerOptions& options,
                                     int64_t window)
    : ctx_(std::make_unique<SamplerContext>(options)),
      id_counter_(std::make_unique<uint64_t>(0)),
      store_(std::make_unique<PointStore>(options.dim)),
      window_(window),
      accept_cap_(options.EffectiveAcceptCap()) {
  const uint32_t L = CeilLog2(static_cast<uint64_t>(window));
  levels_.reserve(L + 1);
  for (uint32_t l = 0; l <= L; ++l) {
    levels_.push_back(std::make_unique<SwFixedRateSampler>(
        ctx_.get(), l, window, id_counter_.get(), store_.get()));
  }
  meter_.Set(SpaceWords());
}

void RobustL0SamplerSW::Insert(const Point& p, int64_t stamp) {
  InsertStamped(p, stamp, points_processed_);
}

void RobustL0SamplerSW::InsertGlobal(const Point& p, uint64_t global_index) {
  InsertStamped(p, static_cast<int64_t>(global_index), global_index);
}

void RobustL0SamplerSW::InsertStrided(Span<const Point> points, size_t start,
                                      size_t stride, uint64_t index_base) {
  RL0_DCHECK(stride > 0);
  const size_t n = points.size();
  // Gate decided once per chunk (the prefetch costs a CellKeyOf per
  // element and only pays on out-of-cache indexes); the common loop
  // stays free of the hint entirely.
  if (levels_.back()->PrefetchPays()) {
    for (size_t i = start; i < n; i += stride) {
      if (i + stride < n) {
        // Warm the first bucket the next element will probe (the top
        // level is fed first in the Algorithm 3 descent).
        levels_.back()->PrefetchCell(
            ctx_->grid.CellKeyOf(points[i + stride]));
      }
      InsertGlobal(points[i], index_base + i);
    }
    return;
  }
  for (size_t i = start; i < n; i += stride) {
    InsertGlobal(points[i], index_base + i);
  }
}

void RobustL0SamplerSW::InsertStridedStamped(Span<const Point> points,
                                             Span<const int64_t> stamps,
                                             size_t start, size_t stride,
                                             uint64_t index_base) {
  RL0_DCHECK(stride > 0);
  RL0_DCHECK(stamps.size() == points.size());
  const size_t n = points.size();
  // Same chunk-level prefetch gate as InsertStrided: warm the next
  // element's top-level cell bucket while this one inserts.
  if (levels_.back()->PrefetchPays()) {
    for (size_t i = start; i < n; i += stride) {
      if (i + stride < n) {
        levels_.back()->PrefetchCell(
            ctx_->grid.CellKeyOf(points[i + stride]));
      }
      InsertStamped(points[i], stamps[i], index_base + i);
    }
    return;
  }
  for (size_t i = start; i < n; i += stride) {
    InsertStamped(points[i], stamps[i], index_base + i);
  }
}

void RobustL0SamplerSW::InsertStamped(const Point& p, int64_t stamp,
                                      uint64_t stream_index) {
  RL0_DCHECK(p.dim() == ctx_->options.dim);
  RL0_DCHECK(points_processed_ == 0 || stamp >= latest_stamp_);
  latest_stamp_ = stamp;
  ++points_processed_;

  PreparedPoint prep;
  prep.point = &p;
  prep.stamp = stamp;
  prep.stream_index = stream_index;
  // Fused pass: the adjacency search also yields cell(p)'s key.
  prep.cell_key = ctx_->grid.AdjacentCellsWithBase(p, ctx_->options.alpha,
                                                   &adj_scratch_);
  prep.adj_keys = &adj_scratch_;

  // Algorithm 3 lines 5-18: feed top-down and stop at the highest level
  // that records p in its *accept* set ("accept it at the highest level ℓ
  // in which the point falls into Sacc_ℓ"), pruning everything below it.
  // Rejected records at upper levels are retained (they block later points
  // of the same group from masquerading as new representatives there) but
  // must not stop the descent: the newest point has to end up accepted at
  // some level, or Lemma 2.10's non-emptiness guarantee would fail.
  for (size_t l = levels_.size(); l-- > 0;) {
    if (levels_[l]->InsertPrepared(prep) != InsertOutcome::kAccepted) {
      continue;
    }
    for (size_t j = 0; j < l; ++j) levels_[j]->Reset();
    if (levels_[l]->accept_size() > accept_cap_) Cascade(l);
    break;
    // Level 0 samples every cell and has no tracked rejected groups, so
    // the loop always accepts somewhere.
  }
  meter_.Set(SpaceWords());
}

void RobustL0SamplerSW::Insert(const Point& p) {
  Insert(p, static_cast<int64_t>(points_processed_));
}

void RobustL0SamplerSW::InsertBatch(Span<const Point> points) {
  const size_t n = points.size();
  if (levels_.back()->PrefetchPays()) {
    for (size_t i = 0; i < n; ++i) {
      if (i + 1 < n) {
        levels_.back()->PrefetchCell(ctx_->grid.CellKeyOf(points[i + 1]));
      }
      Insert(points[i], static_cast<int64_t>(points_processed_));
    }
    return;
  }
  for (const Point& p : points) {
    Insert(p, static_cast<int64_t>(points_processed_));
  }
}

void RobustL0SamplerSW::Cascade(size_t start_level) {
  size_t j = start_level;
  while (levels_[j]->accept_size() > accept_cap_) {
    if (j + 1 >= levels_.size()) {
      // Algorithm 3 line 17: the cascade ran past the top level. With
      // κ0 large enough this has probability ≤ 1/m² (Lemma 2.8); we
      // record the event and leave the top level over-full rather than
      // fail the stream.
      ++error_count_;
      return;
    }
    // Arena-internal promotion: the groups move between the two levels'
    // tables without materializing GroupRecords (both levels share one
    // PointStore), and their reservoir coin streams survive the split.
    if (!levels_[j]->PromoteInto(levels_[j + 1].get())) {
      // No accepted representative survives the next rate: nothing can be
      // promoted this round (DESIGN.md §3). The cap is restored on a later
      // arrival with fresh representatives.
      ++stuck_split_count_;
      return;
    }
    ++j;
  }
}

void RobustL0SamplerSW::ExpireAll(int64_t now) {
  for (auto& level : levels_) level->Expire(now);
}

std::vector<SampleItem> RobustL0SamplerSW::BuildQueryPool(int64_t now,
                                                          Xoshiro256pp* rng,
                                                          int min_level) {
  ExpireAll(now);
  // c = deepest level with a non-empty accept set (Algorithm 3 line 20).
  int c = -1;
  for (size_t l = levels_.size(); l-- > 0;) {
    if (levels_[l]->accept_size() > 0) {
      c = static_cast<int>(l);
      break;
    }
  }
  std::vector<SampleItem> pool;
  if (c < 0) return pool;
  // A sharded pool may unify deeper than this sampler's own hierarchy
  // reaches (the global deepest level across shards); the own deepest
  // level then gets thinned too, and the pool may legitimately come out
  // empty.
  const int unify = min_level > c ? min_level : c;

  // Unify the per-level rates: keep a level-ℓ group with probability
  // R_ℓ/R_unify = 2^(ℓ-unify), so that every surviving group was selected
  // with probability exactly 1/R_unify (Algorithm 3 lines 21-22).
  std::vector<SampleItem> level_points;
  for (int l = 0; l <= c; ++l) {
    level_points.clear();
    levels_[l]->AcceptedGroupSamples(now, &level_points);
    if (l == unify) {
      pool.insert(pool.end(), level_points.begin(), level_points.end());
      continue;
    }
    const double keep = std::pow(2.0, static_cast<double>(l - unify));
    for (const SampleItem& item : level_points) {
      if (rng->NextBernoulli(keep)) pool.push_back(item);
    }
  }
  // Level c contributes with probability 1 when unify == c.
  RL0_DCHECK(unify > c || !pool.empty());
  return pool;
}

std::optional<SampleItem> RobustL0SamplerSW::Sample(int64_t now,
                                                    Xoshiro256pp* rng) {
  const std::vector<SampleItem> pool = BuildQueryPool(now, rng, -1);
  if (pool.empty()) return std::nullopt;
  return pool[rng->NextBounded(pool.size())];
}

Result<std::vector<SampleItem>> RobustL0SamplerSW::SampleK(
    size_t count, int64_t now, Xoshiro256pp* rng) {
  std::vector<SampleItem> pool = BuildQueryPool(now, rng, -1);
  if (pool.size() < count) {
    return Status::FailedPrecondition(
        "fewer unified window groups than requested samples");
  }
  // Every pool entry belongs to a distinct group (each group is
  // accept-tracked at exactly one level), so a partial Fisher–Yates over
  // the pool is a without-replacement group sample.
  std::vector<SampleItem> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t j = i + rng->NextBounded(pool.size() - i);
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

std::optional<SampleItem> RobustL0SamplerSW::SampleLatest(Xoshiro256pp* rng) {
  return Sample(latest_stamp_, rng);
}

void RobustL0SamplerSW::AcceptedWindowItems(int64_t now,
                                            std::vector<SampleItem>* out) {
  ExpireAll(now);
  for (auto& level : levels_) level->AcceptedGroupSamples(now, out);
}

std::optional<uint32_t> RobustL0SamplerSW::DeepestNonEmptyLevel(int64_t now) {
  ExpireAll(now);
  for (size_t l = levels_.size(); l-- > 0;) {
    if (levels_[l]->accept_size() > 0) return static_cast<uint32_t>(l);
  }
  return std::nullopt;
}

size_t RobustL0SamplerSW::SpaceWords() const {
  size_t words = 8;  // scalars
  for (const auto& level : levels_) words += level->SpaceWords();
  return words;
}

}  // namespace rl0
