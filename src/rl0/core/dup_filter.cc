#include "rl0/core/dup_filter.h"

#include <algorithm>

namespace rl0 {

DupFilter::DupFilter(size_t dim, size_t payload_len, bool enabled)
    : enabled_(enabled && kCompiledIn), dim_(dim), payload_len_(payload_len) {
  if (!enabled_) return;
  tags_.assign(kEntries, 0);
  keys_.assign(kEntries, 0);
  epochs_.assign(kEntries, 0);
  payload_.assign(kEntries * payload_len_, 0);
  bytes_.assign(kEntries * dim_, 0.0);
  mru_.assign(kSets, 0);
}

DupFilter::View DupFilter::Lookup(uint64_t cell_key, PointView p) const {
  View v;
  if (!enabled_) return v;
  const Slot s = SlotFor(cell_key);
  for (size_t way = 0; way < kWays; ++way) {
    const size_t e = s.set * kWays + way;
    if (!EntryMatches(e, s, cell_key, p)) continue;
    mru_[s.set] = static_cast<uint8_t>(way);
    v.payload = &payload_[e * payload_len_];
    v.epoch = epochs_[e];
    v.found = true;
    return v;
  }
  return v;
}

uint32_t* DupFilter::Store(uint64_t cell_key, uint64_t epoch, PointView p) {
  if (!enabled_) return nullptr;
  const Slot s = SlotFor(cell_key);
  // Refresh an identical entry in place (epoch/payload update after a stale
  // replay), else fill an empty way, else evict the way the set touched
  // least recently — keeping the hot pattern of a cell resident while a
  // different byte pattern of the same cell churns the other way.
  size_t way = kWays;
  bool refresh = false;
  for (size_t w = 0; w < kWays; ++w) {
    if (EntryMatches(s.set * kWays + w, s, cell_key, p)) {
      way = w;
      refresh = true;
      break;
    }
  }
  if (way == kWays) {
    for (size_t w = 0; w < kWays; ++w) {
      if (tags_[s.set * kWays + w] == 0) {
        way = w;
        break;
      }
    }
  }
  if (way == kWays) way = 1u - mru_[s.set];
  const size_t e = s.set * kWays + way;
  mru_[s.set] = static_cast<uint8_t>(way);
  epochs_[e] = epoch;
  if (!refresh) {
    tags_[e] = s.tag;
    keys_[e] = cell_key;
    std::memcpy(&bytes_[e * dim_], p.data(), dim_ * sizeof(double));
  }
  return &payload_[e * payload_len_];
}

void DupFilter::Invalidate() {
  if (!enabled_) return;
  std::fill(tags_.begin(), tags_.end(), uint16_t{0});
}

}  // namespace rl0
