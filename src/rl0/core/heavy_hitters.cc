#include "rl0/core/heavy_hitters.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rl0/util/check.h"
#include "rl0/util/rng.h"
#include "rl0/util/space.h"

namespace rl0 {

namespace {
constexpr uint64_t kNoEntry = std::numeric_limits<uint64_t>::max();
}  // namespace

Status HeavyHittersOptions::Validate() const {
  if (dim < 1) return Status::InvalidArgument("dim must be >= 1");
  if (!(alpha > 0.0) || !std::isfinite(alpha)) {
    return Status::InvalidArgument("alpha must be positive and finite");
  }
  if (capacity < 1) return Status::InvalidArgument("capacity must be >= 1");
  return Status::OK();
}

Result<RobustHeavyHitters> RobustHeavyHitters::Create(
    const HeavyHittersOptions& options) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  return RobustHeavyHitters(options);
}

RobustHeavyHitters::RobustHeavyHitters(const HeavyHittersOptions& options)
    : options_(options),
      // The grid only accelerates candidate lookup here (no subsampling),
      // so cells of side α keep |adj| small while covering every possible
      // representative within α.
      grid_(options.dim, options.alpha,
            SplitMix64(options.seed ^ 0x6868677269ULL), options.metric) {}

uint64_t RobustHeavyHitters::FindGroup(const Point& p) const {
  grid_.AdjacentCells(p, options_.alpha, &adj_scratch_);
  for (uint64_t key : adj_scratch_) {
    auto [it, end] = cell_to_entry_.equal_range(key);
    for (; it != end; ++it) {
      const Counter& counter = entries_.at(it->second);
      if (MetricWithinDistance(counter.entry.representative, p,
                               options_.alpha, options_.metric)) {
        return it->second;
      }
    }
  }
  return kNoEntry;
}

void RobustHeavyHitters::Insert(const Point& p) {
  RL0_DCHECK(p.dim() == options_.dim);
  const uint64_t stream_index = points_processed_++;

  const uint64_t found = FindGroup(p);
  if (found != kNoEntry) {
    Counter& counter = entries_.at(found);
    by_count_.erase(counter.by_count_it);
    ++counter.entry.count;
    counter.by_count_it = by_count_.emplace(counter.entry.count, found);
    return;
  }

  if (entries_.size() < options_.capacity) {
    // Free counter available.
    const uint64_t id = next_id_++;
    Counter counter;
    counter.entry.representative = p;
    counter.entry.stream_index = stream_index;
    counter.entry.count = 1;
    counter.entry.error = 0;
    counter.cell_key = grid_.CellKeyOf(p);
    counter.by_count_it = by_count_.emplace(uint64_t{1}, id);
    cell_to_entry_.emplace(counter.cell_key, id);
    entries_.emplace(id, std::move(counter));
    return;
  }

  // SpaceSaving takeover: the minimum counter is reassigned to the new
  // group, inheriting its count as the error bound.
  const auto min_it = by_count_.begin();
  const uint64_t victim_id = min_it->second;
  Counter& counter = entries_.at(victim_id);
  // Re-index the cell.
  auto [cit, cend] = cell_to_entry_.equal_range(counter.cell_key);
  for (; cit != cend; ++cit) {
    if (cit->second == victim_id) {
      cell_to_entry_.erase(cit);
      break;
    }
  }
  by_count_.erase(min_it);
  const uint64_t inherited = counter.entry.count;
  counter.entry.representative = p;
  counter.entry.stream_index = stream_index;
  counter.entry.count = inherited + 1;
  counter.entry.error = inherited;
  counter.cell_key = grid_.CellKeyOf(p);
  counter.by_count_it = by_count_.emplace(counter.entry.count, victim_id);
  cell_to_entry_.emplace(counter.cell_key, victim_id);
}

std::vector<RobustHeavyHitters::Entry> RobustHeavyHitters::TopK(
    size_t k) const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [id, counter] : entries_) out.push_back(counter.entry);
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.stream_index < b.stream_index;  // deterministic tie-break
  });
  if (out.size() > k) out.resize(k);
  return out;
}

Result<uint64_t> RobustHeavyHitters::EstimateCount(const Point& p) const {
  const uint64_t found = FindGroup(p);
  if (found == kNoEntry) {
    return Status::NotFound("no tracked group within alpha of the point");
  }
  return entries_.at(found).entry.count;
}

size_t RobustHeavyHitters::SpaceWords() const {
  return entries_.size() * (PointWords(options_.dim) + 3 * kMapEntryWords) +
         4;
}

}  // namespace rl0
