// Bounded-lateness reordering for out-of-order stamped streams.
//
// Every stamped ingestion path in this repo (RobustL0SamplerSW::
// InsertStamped, IngestPool's stamped chunks) requires non-decreasing
// stamps — real event streams violate that constantly. ReorderStage is
// the front-end that restores the contract under a *bounded lateness*
// assumption: arrivals may run backwards by at most `allowed_lateness`
// time units behind the maximum stamp seen so far (the high watermark).
//
// The stage buffers arrivals in a min-heap ordered by a canonical total
// order and releases the sorted prefix below the *release frontier*
// (high watermark − allowed_lateness). The frontier is safe: a point
// with stamp s stays buffered while s ≥ frontier, i.e. exactly while a
// within-bound arrival could still sort at or before it — so for ANY
// arrival order satisfying the bound, the released sequence is
// *identical* to the canonically sorted stream. Downstream state fed
// from the released sequence is therefore bit-identical to feeding the
// sorted stream directly (the metamorphic contract pinned by
// tests/metamorphic_test.cc and tests/reorder_test.cc).
//
// Equal-stamp ties: arrival order within a tie is NOT recoverable from
// the stamps, so the canonical order breaks ties by the points' raw
// coordinate bit patterns (CanonicalLess). Ties release together (a tie
// at stamp s is only releasable once the frontier passes s, by which
// point every within-bound member of the tie has arrived), which is
// what makes the released sequence arrival-order invariant even at
// allowed_lateness = 0.
//
// Beyond-bound arrivals (stamp below the frontier) belong to an already
// released prefix and cannot be slotted back in. They are never lost
// silently: LatePolicy::kDrop counts them, LatePolicy::kSideChannel
// redirects them (with their stamps) to the caller's late sink or an
// internal buffer. The accounting identity
//     offered == released + late_dropped + late_redirected + buffered
// holds after every call, with buffered == 0 after Flush().
//
// Watermark propagation: watermark() is the *low* watermark — every
// future released point is guaranteed to have stamp ≥ watermark().
// Wiring layers forward it downstream (IngestPool::FeedWatermark →
// RobustL0SamplerSW::NoteWatermark) so queries can advance event time
// past the last released stamp — e.g. an empty-lane shard of a sharded
// pool still learns how far time has progressed (the watermark-stall
// edge in tests/reorder_test.cc).
//
// Pull-style API (no callbacks into downstream): Offer/OfferBatch move
// newly releasable points into an internal staging area drained with
// TakeReleased. This keeps the stage movable and composition explicit.
// Not thread-safe; wiring layers serialize access.

#ifndef RL0_CORE_REORDER_BUFFER_H_
#define RL0_CORE_REORDER_BUFFER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "rl0/core/options.h"
#include "rl0/geom/point.h"
#include "rl0/util/span.h"
#include "rl0/util/sync.h"
#include "rl0/util/thread_annotations.h"

namespace rl0 {

/// Counters of a ReorderStage. The identity
/// offered == released + late_dropped + late_redirected + buffered
/// holds after every Offer/OfferBatch/Flush.
struct ReorderStats {
  /// Points handed to Offer/OfferBatch.
  uint64_t offered = 0;
  /// Points released downstream in canonical stamp order.
  uint64_t released = 0;
  /// Beyond-bound arrivals dropped under LatePolicy::kDrop.
  uint64_t late_dropped = 0;
  /// Beyond-bound arrivals redirected under LatePolicy::kSideChannel.
  uint64_t late_redirected = 0;
  /// Points currently buffered (not yet releasable).
  uint64_t buffered = 0;
  /// False until the first offer; the stamp fields below are then
  /// meaningless.
  bool has_watermark = false;
  /// High watermark: the maximum stamp seen.
  int64_t max_stamp = 0;
  /// Low watermark: every future released point has stamp ≥ this.
  int64_t watermark = 0;
};

/// Buffers a boundedly-disordered stamped stream and releases it in
/// canonical sorted order (see file comment). Movable, not copyable.
class ReorderStage {
 public:
  /// Delivery target for beyond-bound arrivals under
  /// LatePolicy::kSideChannel; when unset they accumulate internally
  /// (drain with TakeLate).
  using LateSink = std::function<void(const Point& p, int64_t stamp)>;

  /// A stage tolerating stamps up to `allowed_lateness` behind the high
  /// watermark. Requires allowed_lateness ≥ 0.
  ReorderStage(int64_t allowed_lateness, LatePolicy policy);

  ReorderStage(ReorderStage&&) = default;
  ReorderStage& operator=(ReorderStage&&) = default;
  ReorderStage(const ReorderStage&) = delete;
  ReorderStage& operator=(const ReorderStage&) = delete;

  void set_late_sink(LateSink sink) { late_sink_ = std::move(sink); }

  /// Offers one arrival: judged against the lateness bound, then either
  /// buffered (possibly advancing the frontier and staging releases) or
  /// handled per the late policy.
  void Offer(const Point& p, int64_t stamp);

  /// Offers a batch in arrival order. Equivalent to Offer per element.
  void OfferBatch(Span<const Point> points, Span<const int64_t> stamps);

  /// Releases everything still buffered (end of stream, or a forced
  /// checkpoint): stages the remaining points in canonical order and
  /// advances the release bound past the high watermark, so later
  /// offers below it are late. The low watermark becomes the high
  /// watermark (event time has fully progressed).
  void Flush();

  /// Moves the staged released sequence into `points`/`stamps`
  /// (replacing their contents) and clears the staging area. Returns
  /// false (outputs untouched) when nothing is staged. Stamps are
  /// non-decreasing and ≥ every previously taken release.
  bool TakeReleased(std::vector<Point>* points, std::vector<int64_t>* stamps);

  /// Drains the internally buffered side-channel deliveries (kSideChannel
  /// with no sink set), in arrival order.
  std::vector<std::pair<Point, int64_t>> TakeLate();

  /// Re-arms a fresh stage at a recovered release frontier (crash
  /// recovery, core/checkpoint.h): arrivals with stamp < `frontier` are
  /// judged late exactly as the pre-crash stage judged them, so a
  /// restored pipeline cannot re-admit stamps that were already released
  /// or late-dropped. Monotone — a frontier behind the current one is a
  /// no-op. The empty heap stays empty (points the crashed stage still
  /// buffered were never durable; see the recovery contract).
  void NoteFrontier(int64_t frontier) {
    has_watermark_ = true;
    if (frontier > max_stamp_) max_stamp_ = frontier;
    if (frontier > released_bound_) released_bound_ = frontier;
  }

  /// The release frontier itself (≥ watermark(); checkpoint headers carry
  /// this so recovery can re-arm lateness judgment via NoteFrontier).
  int64_t release_bound() const { return released_bound_; }

  /// False until the first offer.
  bool has_watermark() const { return has_watermark_; }
  /// High watermark: maximum stamp seen. Requires has_watermark().
  int64_t max_stamp() const { return max_stamp_; }
  /// Low watermark: every future released point has stamp ≥ this (the
  /// value to propagate downstream). Requires has_watermark().
  int64_t watermark() const {
    return released_bound_ < max_stamp_ ? released_bound_ : max_stamp_;
  }

  /// Current counters.
  ReorderStats stats() const;

  /// Approximate buffered state in machine words (heap entries plus the
  /// staged release arrays).
  size_t SpaceWords() const;

  int64_t allowed_lateness() const { return allowed_lateness_; }
  LatePolicy late_policy() const { return policy_; }

  /// The canonical total order the stage releases in: by stamp, then
  /// dimension, then coordinate bit patterns (lexicographic on the raw
  /// IEEE-754 words, so -0.0 and +0.0 are distinct and exact duplicates
  /// are interchangeable). Exposed so tests and references can sort
  /// with the exact comparator the stage uses.
  static bool CanonicalLess(const Point& a, int64_t stamp_a, const Point& b,
                            int64_t stamp_b);

  /// Sorts the parallel arrays by CanonicalLess — the reference "sorted
  /// feed" of the arrival-order invariance tests.
  static void SortCanonical(std::vector<Point>* points,
                            std::vector<int64_t>* stamps);

 private:
  struct Held {
    Point point;
    int64_t stamp;
  };

  /// Moves every buffered point with stamp < `bound` into the staging
  /// arrays, in canonical order.
  void StageReleasesBelow(int64_t bound);

  int64_t allowed_lateness_;
  LatePolicy policy_;
  LateSink late_sink_;

  /// Min-heap by CanonicalLess (std::*_heap with a reversed comparator).
  std::vector<Held> heap_;
  /// Staged released sequence awaiting TakeReleased.
  std::vector<Point> released_points_;
  std::vector<int64_t> released_stamps_;
  /// Internal side-channel buffer (kSideChannel, no sink).
  std::vector<std::pair<Point, int64_t>> late_buffer_;

  bool has_watermark_ = false;
  int64_t max_stamp_ = 0;
  /// Everything with stamp < released_bound_ has been staged/released;
  /// an arrival below it is late. Monotone.
  int64_t released_bound_;

  uint64_t offered_ = 0;
  uint64_t released_ = 0;
  uint64_t late_dropped_ = 0;
  uint64_t late_redirected_ = 0;
};

/// The serialized bounded-lateness front end shared by the wiring layers
/// (ShardedSwSamplerPool, F0EstimatorSW): a lazily created ReorderStage
/// plus the watermark-broadcast memory, grouped with the mutex that
/// guards them so the discipline is a compile-time fact (sibling
/// RL0_GUARDED_BY) while the owner — which holds this struct through a
/// unique_ptr — stays movable.
struct ReorderFrontEnd {
  Mutex mu;
  /// Created by the first late feed (or set_late_sink); null until then.
  std::unique_ptr<ReorderStage> stage RL0_GUARDED_BY(mu);
  /// Last watermark broadcast downstream; duplicates are skipped so
  /// quiet feeds don't flood control chunks.
  bool watermark_sent RL0_GUARDED_BY(mu) = false;
  int64_t last_watermark RL0_GUARDED_BY(mu) = 0;
};

}  // namespace rl0

#endif  // RL0_CORE_REORDER_BUFFER_H_
