// Persistent worker-pool ingestion pipeline.
//
// PR 1 made batch ingestion fast inside one sampler; this is the layer
// that keeps many samplers fed from a live stream. An IngestPool owns one
// long-lived worker thread per *lane* (a lane is one shard of a
// ShardedSamplerPool, or one copy of an F0 estimator). Producers hand the
// pool stream chunks via Feed; every chunk is stamped with its global
// stream index base and broadcast to each lane's bounded queue, where the
// lane's worker consumes it through a caller-supplied sink (for sharded
// ingestion, the strided walk of the lane's residue class). This replaces
// the spawn/join threads that ShardedSamplerPool::ConsumeParallel used to
// create per call — thread startup is paid once per pool, not once per
// chunk, and chunks pipeline through the lanes instead of barriering at
// every call.
//
// Determinism contract: chunk index bases are assigned atomically with
// enqueue order under one feed lock, so every lane observes the same
// chunk sequence and every point carries the same global stream index no
// matter how many producers feed or how the scheduler runs the lanes.
// Sinks that partition by *global* index (see ShardedSamplerPool::Feed)
// therefore process bit-identical per-lane streams for any chunking.
//
// Backpressure: each lane queue holds at most Options::queue_capacity
// chunks; Feed blocks while any lane is full, so a slow lane throttles
// the producers instead of queueing unboundedly.
//
// Barriers: Drain() blocks until everything fed *before the call* has
// been consumed by every lane — after it returns (and with no concurrent
// feeders), lane state may be read directly. QuiescedRun(fn) runs fn
// while every worker is paused between chunks, which is what makes
// merge/snapshot safe *concurrently* with ongoing feeding.
//
// Stamped chunks (time-based windows): FeedStamped carries an explicit
// per-point stamp array alongside the chunk. The stamp array rides the
// same atomic index-base assignment — every lane sees identical
// (points, stamps, index_base) triples in identical order — so per-lane
// state stays chunking-invariant exactly as in the sequence-stamped
// mode. Stamps must be non-decreasing within a chunk (scanned before
// the feed lock is taken) and across chunks in enqueue order (the O(1)
// watermark check under the feed lock); a violation is a programming
// error and CHECK-fails. Lanes consume stamped chunks through their
// StampedSink; pools that never feed stamps never need one.
//
// Watermark chunks (bounded-lateness ingestion): FeedWatermark
// broadcasts a point-free control chunk announcing that event time has
// progressed to `watermark` — no stamped point below it will ever be
// fed again. Lanes consume it through their WatermarkSink (typically
// RobustL0SamplerSW::NoteWatermark), letting a lane whose residue class
// saw no recent points still advance its notion of event time (the
// empty-lane watermark stall). Watermark chunks ride the ordinary chunk
// sequence: they raise the pool's stamp watermark, count toward Drain's
// completion target, and never consume stream indices.
//
// Fleet mode (multi-tenant hosting): Options::fleet replaces the
// dedicated per-lane threads with membership in a shared WorkerFleet
// (core/worker_fleet.h) — many pools, one fixed thread set, fair
// round-robin service across every registered lane. All contracts above
// (index-base determinism, backpressure, Drain, QuiescedRun) hold
// identically; a lane is still consumed in order by one worker at a
// time. The fleet must outlive the pool (Stop deregisters the lanes).

#ifndef RL0_CORE_INGEST_POOL_H_
#define RL0_CORE_INGEST_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "rl0/geom/point.h"
#include "rl0/util/bounded_queue.h"
#include "rl0/util/span.h"
#include "rl0/util/sync.h"
#include "rl0/util/thread_annotations.h"

namespace rl0 {

class WorkerFleet;

/// A pool of persistent worker threads feeding per-lane samplers from a
/// shared chunked stream.
class IngestPool {
 public:
  /// Consumes one stream chunk on a lane's worker thread. `index_base` is
  /// the global stream position of chunk[0].
  using Sink = std::function<void(Span<const Point> chunk,
                                  uint64_t index_base)>;

  /// Consumes one explicitly stamped chunk (time-based windows):
  /// `stamps[i]` is the stamp of `chunk[i]`, `index_base + i` its global
  /// stream position.
  using StampedSink = std::function<void(Span<const Point> chunk,
                                         Span<const int64_t> stamps,
                                         uint64_t index_base)>;

  /// Consumes one watermark announcement (see FeedWatermark) on a lane's
  /// worker thread.
  using WatermarkSink = std::function<void(int64_t watermark)>;

  struct Options {
    /// Chunks buffered per lane before Feed blocks (backpressure window).
    size_t queue_capacity = 4;
    /// Global index of the first point fed through this pool (continues a
    /// stream that was partially consumed through another path).
    uint64_t index_base = 0;
    /// When non-null, lanes are serviced by this shared fleet instead of
    /// dedicated per-lane threads (multi-tenant hosting; see the file
    /// comment). The fleet must outlive the pool.
    WorkerFleet* fleet = nullptr;
  };

  /// Starts one worker thread per sink. Requires at least one sink.
  IngestPool(std::vector<Sink> sinks, const Options& options);
  explicit IngestPool(std::vector<Sink> sinks);

  /// As above, with a stamped sink per lane (same order as `sinks`; must
  /// be empty or match `sinks` in size). Lanes without stamped sinks
  /// reject FeedStamped.
  IngestPool(std::vector<Sink> sinks, std::vector<StampedSink> stamped_sinks,
             const Options& options);

  /// As above, with a watermark sink per lane (empty or matching `sinks`
  /// in size). Lanes without watermark sinks reject FeedWatermark.
  IngestPool(std::vector<Sink> sinks, std::vector<StampedSink> stamped_sinks,
             std::vector<WatermarkSink> watermark_sinks,
             const Options& options);

  /// Stops the pipeline (drains queued chunks, joins workers).
  ~IngestPool();

  IngestPool(const IngestPool&) = delete;
  IngestPool& operator=(const IngestPool&) = delete;

  /// Enqueues a copy of `points` for every lane. Safe from any thread;
  /// blocks while a lane queue is full. No-op on an empty span.
  void Feed(Span<const Point> points);

  /// As Feed but adopts the vector — no copy.
  void FeedOwned(std::vector<Point> points);

  /// As Feed but zero-copy: the caller guarantees `points` stays valid
  /// until the next Drain() (or Stop()) returns.
  void FeedBorrowed(Span<const Point> points);

  /// Enqueues a copy of the explicitly stamped chunk for every lane
  /// (requires stamped sinks). `stamps` must align with `points`, be
  /// non-decreasing, and start at or after the pool's stamp watermark.
  void FeedStamped(Span<const Point> points, Span<const int64_t> stamps);

  /// As FeedStamped but adopts both vectors — no copy.
  void FeedOwnedStamped(std::vector<Point> points,
                        std::vector<int64_t> stamps);

  /// As FeedStamped but zero-copy: both arrays must stay valid until the
  /// next Drain() (or Stop()) returns.
  void FeedBorrowedStamped(Span<const Point> points,
                           Span<const int64_t> stamps);

  /// Broadcasts a watermark control chunk (requires watermark sinks):
  /// every lane's WatermarkSink observes `watermark` after the chunks
  /// fed before this call. Must not regress the pool's stamp watermark,
  /// and stamped chunks fed afterwards must start at or after it (the
  /// standard cross-chunk stamp check covers this). Raises the pool's
  /// stamp watermark like NoteStamp; consumes no stream indices.
  void FeedWatermark(int64_t watermark);

  /// Blocks until every chunk fed before this call has been consumed by
  /// every lane. Safe from any thread, including concurrently with Feed
  /// (chunks fed after the call may still be in flight when it returns).
  void Drain();

  /// Runs `fn` while every worker is paused between chunks. Each lane has
  /// consumed a prefix of the fed chunk sequence (lanes may be at
  /// different prefixes); combine with a preceding Drain for a barrier on
  /// everything fed so far. Safe concurrently with Feed. `fn` must only
  /// READ lane state — in particular it must not call Feed, Drain,
  /// AdvanceIndexBase or points_fed on this pool: with the workers
  /// paused, a backpressured producer can be blocked holding the feed
  /// lock, and taking it from `fn` would deadlock.
  void QuiescedRun(const std::function<void()>& fn);

  /// Drains, closes the queues and joins the workers. Idempotent; called
  /// by the destructor. After Stop the pool no longer accepts Feeds.
  void Stop();

  /// Reserves the next `n` global stream indices without enqueuing
  /// anything — lets a non-pipelined ingestion path (the legacy spawn/join
  /// walk) interleave with pipelined feeding under one index space.
  /// Returns the base of the reserved range.
  uint64_t AdvanceIndexBase(uint64_t n);

  /// Raises the stamp watermark to `stamp` (no-op if already past it) —
  /// lets serial explicit-stamp inserts interleave with stamped feeding
  /// under one monotone stamp sequence (see F0EstimatorSW::Insert).
  void NoteStamp(int64_t stamp);

  /// The stamp of the most recently fed stamped point (or noted via
  /// NoteStamp); -1 before any stamped feeding.
  int64_t latest_stamp() const;

  /// Points fed (or index-reserved) so far.
  uint64_t points_fed() const;

  /// The deepest lane queue right now (chunks queued on the most
  /// backlogged lane) — the adaptive chunk-sizing signal (see
  /// core/chunk_policy.h). Safe from any thread; a racy snapshot.
  size_t MaxQueueDepth() const;

  /// Number of lanes.
  size_t num_lanes() const { return lanes_.size(); }

  /// Per-lane queue capacity.
  size_t queue_capacity() const { return queue_capacity_; }

 private:
  struct Chunk {
    /// Keeps copied/adopted storage alive; null for borrowed chunks.
    std::shared_ptr<const std::vector<Point>> owner;
    const Point* data = nullptr;
    size_t size = 0;
    uint64_t index_base = 0;
    /// Explicit stamps (stamped chunks only; null = sequence-stamped).
    std::shared_ptr<const std::vector<int64_t>> stamp_owner;
    const int64_t* stamps = nullptr;
    /// Watermark control chunk (size == 0; `watermark` is the payload).
    bool watermark_only = false;
    int64_t watermark = 0;
  };

  struct Lane {
    Lane(size_t queue_capacity, Sink lane_sink, StampedSink lane_stamped,
         WatermarkSink lane_watermark)
        : queue(queue_capacity),
          sink(std::move(lane_sink)),
          stamped_sink(std::move(lane_stamped)),
          watermark_sink(std::move(lane_watermark)) {}

    BoundedQueue<Chunk> queue;
    Sink sink;
    StampedSink stamped_sink;
    WatermarkSink watermark_sink;
    /// Dedicated worker (default mode; unused in fleet mode).
    std::thread worker;
    /// Fleet membership id (fleet mode; 0 in dedicated mode).
    uint64_t fleet_id = 0;
    /// Held by the worker while a chunk is inside the sink (QuiescedRun
    /// acquires all lanes' mutexes — via MutexLockSet — to pause the
    /// pool between chunks).
    Mutex proc_mu;
    /// Guards `completed`; signalled after every consumed chunk.
    Mutex done_mu;
    CondVar done_cv;
    uint64_t completed RL0_GUARDED_BY(done_mu) = 0;
  };

  void FeedChunk(Chunk chunk) RL0_EXCLUDES(feed_mu_);
  void WorkerLoop(Lane* lane);
  /// Runs one queued chunk through `lane`'s sink (shared by both worker
  /// modes; holds proc_mu across the sink and signals done_cv).
  void ProcessChunk(Lane* lane, Chunk chunk);
  /// Fleet-mode work callback: consume at most one queued chunk.
  bool RunLaneOnce(Lane* lane);

  /// The shared fleet servicing the lanes (null = dedicated threads).
  WorkerFleet* fleet_ = nullptr;
  const size_t queue_capacity_;
  /// Serializes index-base assignment with enqueue order (the determinism
  /// contract) and guards the feed-side counters below.
  mutable Mutex feed_mu_;
  uint64_t fed_ RL0_GUARDED_BY(feed_mu_) = 0;
  uint64_t chunks_fed_ RL0_GUARDED_BY(feed_mu_) = 0;
  /// Stamp watermark for stamped chunks; -1 until the first stamped feed
  /// (or NoteStamp). Monotonicity across chunks is only enforced once
  /// the watermark exists, so negative initial stamps stay legal.
  int64_t latest_stamp_ RL0_GUARDED_BY(feed_mu_) = -1;
  bool stamp_watermark_set_ RL0_GUARDED_BY(feed_mu_) = false;
  bool stopped_ RL0_GUARDED_BY(feed_mu_) = false;
  /// Stable addresses: workers hold Lane* across the pool's lifetime.
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace rl0

#endif  // RL0_CORE_INGEST_POOL_H_
