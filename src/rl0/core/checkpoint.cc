#include "rl0/core/checkpoint.h"

#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "rl0/core/snapshot.h"
#include "rl0/util/serialize.h"

namespace rl0 {

namespace {

// Full-snapshot framing — must mirror core/snapshot.cc exactly: deltas
// fold into blobs that are byte-identical to SnapshotSampler/-SW output,
// checksum included.
constexpr char kSnapMagic[8] = {'R', 'L', '0', 'S', 'N', 'A', 'P', '\0'};
constexpr char kSnapMagicSW[8] = {'R', 'L', '0', 'S', 'N', 'P', 'W', '\0'};
constexpr uint32_t kSnapVersion = 2;
/// Byte length of the PutOptions encoding (core/snapshot.cc).
constexpr size_t kOptionsBytes = 72;
/// Offset of the options block (after magic + version) in a full blob.
constexpr size_t kOptionsOffset = 8 + 4;

constexpr char kDeltaMagic[8] = {'R', 'L', '0', 'D', 'L', 'T', 'A', '\0'};
constexpr uint32_t kDeltaVersion = 1;
constexpr uint8_t kKindIW = 1;
constexpr uint8_t kKindSW = 2;

constexpr char kPoolMagic[8] = {'R', 'L', '0', 'C', 'K', 'P', 'T', '\0'};
constexpr char kPoolDeltaMagic[8] = {'R', 'L', '0', 'C', 'K', 'P', 'D',
                                     '\0'};
constexpr uint32_t kPoolVersion = 1;

constexpr char kJournalMagic[8] = {'R', 'L', '0', 'J', 'R', 'N', 'L', '\0'};
constexpr uint32_t kJournalVersion = 1;
/// Per-record sync marker ("JREC" little-endian).
constexpr uint32_t kRecordMarker = 0x4345524AU;
/// Record bytes before the payload: marker, type, seq, index base, count.
constexpr size_t kRecordFixedBytes = 4 + 1 + 8 + 8 + 8;

/// Upper bound on a believable point dimension in any header field —
/// rejects counts that would make per-record sizes overflow.
constexpr uint64_t kMaxDim = uint64_t{1} << 20;

/// FNV-1a finalized with SplitMix64 — must match core/snapshot.cc.
uint64_t ChecksumRange(const char* data, size_t length) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < length; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return SplitMix64(h);
}

uint64_t Checksum(const std::string& data, size_t length) {
  return ChecksumRange(data.data(), length);
}

/// Verifies the trailing checksum and returns the payload prefix.
Result<std::string> CheckedPayload(const std::string& blob) {
  if (blob.size() < sizeof(uint64_t)) {
    return Status::InvalidArgument("blob too small");
  }
  const size_t payload_size = blob.size() - sizeof(uint64_t);
  uint64_t stored = 0;
  std::memcpy(&stored, blob.data() + payload_size, sizeof(stored));
  if (Checksum(blob, payload_size) != stored) {
    return Status::InvalidArgument("checksum mismatch");
  }
  return blob.substr(0, payload_size);
}

void PutPoint(BinaryWriter* writer, PointView p) {
  for (size_t i = 0; i < p.dim(); ++i) writer->PutDouble(p[i]);
}

/// Bounds-checked forward cursor over a byte string — the record-walking
/// workhorse of the fold paths (BinaryReader cannot skip or report its
/// position).
struct Cursor {
  const std::string& s;
  size_t pos = 0;

  size_t remaining() const { return s.size() - pos; }
  bool Need(size_t n) const { return n <= remaining(); }
  bool U8(uint8_t* v) { return Raw(v, 1); }
  bool U32(uint32_t* v) { return Raw(v, 4); }
  bool U64(uint64_t* v) { return Raw(v, 8); }
  bool I64(int64_t* v) { return Raw(v, 8); }
  bool Skip(size_t n) {
    if (!Need(n)) return false;
    pos += n;
    return true;
  }
  bool Raw(void* out, size_t n) {
    if (!Need(n)) return false;
    std::memcpy(out, s.data() + pos, n);
    pos += n;
    return true;
  }
};

/// Reads the dimension field (first u64 of the options block) of a full
/// sampler blob payload.
Status BlobDim(const std::string& payload, size_t* dim) {
  if (payload.size() < kOptionsOffset + 8) {
    return Status::InvalidArgument("snapshot too small");
  }
  uint64_t dim64 = 0;
  std::memcpy(&dim64, payload.data() + kOptionsOffset, sizeof(dim64));
  if (dim64 == 0 || dim64 > kMaxDim) {
    return Status::InvalidArgument("bad dimension in snapshot");
  }
  *dim = static_cast<size_t>(dim64);
  return Status::OK();
}

/// Checks a full blob's magic + version for delta folding (deltas are
/// only cut against version-2 fulls, which SnapshotSampler*Full always
/// writes).
Status CheckFullHeader(const std::string& payload, const char magic[8]) {
  if (payload.size() < kOptionsOffset + kOptionsBytes) {
    return Status::InvalidArgument("base snapshot too small");
  }
  if (std::memcmp(payload.data(), magic, 8) != 0) {
    return Status::InvalidArgument("base is not the expected snapshot kind");
  }
  uint32_t version = 0;
  std::memcpy(&version, payload.data() + 8, sizeof(version));
  if (version != kSnapVersion) {
    return Status::InvalidArgument("unsupported base version for delta");
  }
  return Status::OK();
}

/// Serializes one representative record — must mirror SnapshotSampler's
/// per-record encoding byte for byte.
void PutIwRecord(BinaryWriter* writer, const RepTable& reps, uint32_t slot,
                 bool reservoir_mode) {
  writer->PutU64(reps.id(slot));
  writer->PutU64(reps.stream_index(slot));
  writer->PutU64(reps.cell_key(slot));
  writer->PutU8(reps.accepted(slot) ? 1 : 0);
  writer->PutU64(reservoir_mode ? reps.group_count(slot) : 1);
  writer->PutU64(reservoir_mode ? reps.sample_index(slot)
                                : reps.stream_index(slot));
  PutPoint(writer, reps.point(slot));
  PutPoint(writer, reservoir_mode ? reps.sample_point(slot)
                                  : reps.point(slot));
}

/// Serializes one group record — must mirror SnapshotSamplerSW's
/// per-record encoding byte for byte.
void PutSwRecord(BinaryWriter* writer, const GroupRecord& g) {
  writer->PutU64(g.id);
  writer->PutU64(g.rep_index);
  writer->PutU64(g.rep_cell);
  writer->PutU8(g.accepted ? 1 : 0);
  PutPoint(writer, g.rep);
  PutPoint(writer, g.latest);
  writer->PutI64(g.latest_stamp);
  writer->PutU64(g.latest_index);
  writer->PutU64(g.reservoir.size());
  for (const auto& candidate : g.reservoir) {
    writer->PutU64(candidate.priority);
    writer->PutI64(candidate.stamp);
    writer->PutU64(candidate.stream_index);
    PutPoint(writer, candidate.point);
  }
}

/// Walks one serialized SW group record starting at `cur`, returning its
/// id and byte length. The record layout is fixed except for the
/// reservoir tail.
bool WalkSwRecord(Cursor* cur, size_t dim, uint64_t* id, size_t* length) {
  const size_t start = cur->pos;
  const size_t fixed = 8 + 8 + 8 + 1 + 16 * dim + 8 + 8;
  if (!cur->Need(fixed + 8)) return false;
  std::memcpy(id, cur->s.data() + start, sizeof(*id));
  cur->pos = start + fixed;
  uint64_t candidates = 0;
  if (!cur->U64(&candidates)) return false;
  const size_t candidate_bytes = 24 + 8 * dim;
  if (candidates > cur->remaining() / candidate_bytes) return false;
  if (!cur->Skip(candidates * candidate_bytes)) return false;
  *length = cur->pos - start;
  return true;
}

}  // namespace

uint64_t SnapshotChainChecksum(const std::string& blob) {
  if (blob.size() < sizeof(uint64_t)) return 0;
  uint64_t checksum = 0;
  std::memcpy(&checksum, blob.data() + blob.size() - sizeof(checksum),
              sizeof(checksum));
  return checksum;
}

// ------------------------------------------------ infinite-window deltas

Status SnapshotSamplerFull(RobustL0SamplerIW* sampler, std::string* out) {
  if (Status st = SnapshotSampler(*sampler, out); !st.ok()) return st;
  sampler->reps_.MarkCheckpoint();
  return Status::OK();
}

Status SnapshotSamplerDelta(RobustL0SamplerIW* sampler,
                            uint64_t base_checksum, std::string* out) {
  out->clear();
  BinaryWriter writer(out);
  writer.PutBytes(kDeltaMagic, sizeof(kDeltaMagic));
  writer.PutU32(kDeltaVersion);
  writer.PutU8(kKindIW);
  writer.PutU64(base_checksum);
  writer.PutU32(sampler->level_);
  writer.PutU64(sampler->points_processed_);
  writer.PutU64(sampler->next_rep_id_);
  writer.PutU64(sampler->meter_.peak());

  const RepTable& reps = sampler->reps_;
  const bool reservoir_mode = sampler->options_.random_representative;
  std::vector<uint32_t> dirty_slots;
  std::vector<uint64_t> live_ids;
  live_ids.reserve(reps.live());
  const size_t slots = reps.slot_count();
  for (uint32_t slot = 0; slot < slots; ++slot) {
    if (!reps.IsLive(slot)) continue;
    live_ids.push_back(reps.id(slot));
    if (reps.SlotDirty(slot)) dirty_slots.push_back(slot);
  }
  writer.PutU64(dirty_slots.size());
  for (uint32_t slot : dirty_slots) {
    PutIwRecord(&writer, reps, slot, reservoir_mode);
  }
  // The live-id order list is the whole state map relative to the base:
  // an id absent from it was removed (refilter), and the order is the
  // slot order a contemporaneous full snapshot serializes in.
  writer.PutU64(live_ids.size());
  for (uint64_t id : live_ids) writer.PutU64(id);
  writer.PutU64(Checksum(*out, out->size()));
  sampler->reps_.MarkCheckpoint();
  return Status::OK();
}

Status ApplySamplerDelta(const std::string& base, const std::string& delta,
                         std::string* out) {
  Result<std::string> base_payload_r = CheckedPayload(base);
  if (!base_payload_r.ok()) return base_payload_r.status();
  const std::string base_payload = std::move(base_payload_r).value();
  if (Status st = CheckFullHeader(base_payload, kSnapMagic); !st.ok()) {
    return st;
  }
  size_t dim = 0;
  if (Status st = BlobDim(base_payload, &dim); !st.ok()) return st;
  const size_t rec_size = 41 + 16 * dim;
  // Index the base records by id. Scalars after the options block:
  // level u32, points_processed u64, next_rep_id u64, peak u64.
  Cursor bc{base_payload, kOptionsOffset + kOptionsBytes + 4 + 8 + 8 + 8};
  uint64_t base_count = 0;
  if (!bc.U64(&base_count)) {
    return Status::InvalidArgument("base snapshot truncated");
  }
  if (base_count > bc.remaining() / rec_size ||
      base_count * rec_size != bc.remaining()) {
    return Status::InvalidArgument("base record section malformed");
  }
  std::unordered_map<uint64_t, size_t> base_index;
  base_index.reserve(base_count);
  for (uint64_t i = 0; i < base_count; ++i) {
    uint64_t id = 0;
    std::memcpy(&id, base_payload.data() + bc.pos, sizeof(id));
    base_index[id] = bc.pos;
    bc.pos += rec_size;
  }

  Result<std::string> delta_payload_r = CheckedPayload(delta);
  if (!delta_payload_r.ok()) return delta_payload_r.status();
  const std::string delta_payload = std::move(delta_payload_r).value();
  Cursor dc{delta_payload};
  char magic[8];
  if (!dc.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kDeltaMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("not an rl0 delta");
  }
  uint32_t version = 0;
  uint8_t kind = 0;
  uint64_t base_checksum = 0;
  if (!dc.U32(&version) || !dc.U8(&kind) || !dc.U64(&base_checksum)) {
    return Status::InvalidArgument("delta truncated");
  }
  if (version != kDeltaVersion) {
    return Status::InvalidArgument("unsupported delta version");
  }
  if (kind != kKindIW) {
    return Status::InvalidArgument("delta kind mismatch");
  }
  if (base_checksum != SnapshotChainChecksum(base)) {
    return Status::InvalidArgument("delta was cut against a different base");
  }
  uint32_t level = 0;
  uint64_t points_processed = 0, next_rep_id = 0, peak = 0;
  if (!dc.U32(&level) || !dc.U64(&points_processed) ||
      !dc.U64(&next_rep_id) || !dc.U64(&peak)) {
    return Status::InvalidArgument("delta truncated");
  }
  uint64_t dirty_count = 0;
  if (!dc.U64(&dirty_count) || dirty_count > dc.remaining() / rec_size) {
    return Status::InvalidArgument("bad dirty count in delta");
  }
  std::unordered_map<uint64_t, size_t> dirty_index;
  dirty_index.reserve(dirty_count);
  for (uint64_t i = 0; i < dirty_count; ++i) {
    uint64_t id = 0;
    std::memcpy(&id, delta_payload.data() + dc.pos, sizeof(id));
    dirty_index[id] = dc.pos;
    dc.pos += rec_size;
  }
  uint64_t live_count = 0;
  if (!dc.U64(&live_count) || live_count != dc.remaining() / 8 ||
      live_count * 8 != dc.remaining()) {
    return Status::InvalidArgument("bad live-id list in delta");
  }

  out->clear();
  BinaryWriter writer(out);
  writer.PutBytes(kSnapMagic, sizeof(kSnapMagic));
  writer.PutU32(kSnapVersion);
  // Options are immutable across a sampler's lifetime: copy them
  // verbatim from the base (the delta never re-encodes them).
  writer.PutBytes(base_payload.data() + kOptionsOffset, kOptionsBytes);
  writer.PutU32(level);
  writer.PutU64(points_processed);
  writer.PutU64(next_rep_id);
  writer.PutU64(peak);
  writer.PutU64(live_count);
  for (uint64_t i = 0; i < live_count; ++i) {
    uint64_t id = 0;
    if (!dc.U64(&id)) return Status::InvalidArgument("delta truncated");
    auto dirty = dirty_index.find(id);
    if (dirty != dirty_index.end()) {
      writer.PutBytes(delta_payload.data() + dirty->second, rec_size);
      continue;
    }
    auto clean = base_index.find(id);
    if (clean == base_index.end()) {
      return Status::InvalidArgument("delta references an id not in base");
    }
    writer.PutBytes(base_payload.data() + clean->second, rec_size);
  }
  writer.PutU64(Checksum(*out, out->size()));
  return Status::OK();
}

// ------------------------------------------------- sliding-window deltas

Status SnapshotSamplerFullSW(RobustL0SamplerSW* sampler, std::string* out) {
  if (Status st = SnapshotSamplerSW(*sampler, out); !st.ok()) return st;
  for (auto& level : sampler->levels_) level->MarkCheckpoint();
  return Status::OK();
}

Status SnapshotSamplerDeltaSW(RobustL0SamplerSW* sampler,
                              uint64_t base_checksum, std::string* out) {
  out->clear();
  BinaryWriter writer(out);
  writer.PutBytes(kDeltaMagic, sizeof(kDeltaMagic));
  writer.PutU32(kDeltaVersion);
  writer.PutU8(kKindSW);
  writer.PutU64(base_checksum);
  writer.PutU64(*sampler->id_counter_);
  writer.PutU64(sampler->points_processed_);
  writer.PutI64(sampler->latest_stamp_);
  writer.PutU64(sampler->error_count_);
  writer.PutU64(sampler->stuck_split_count_);
  // Core peak, matching SnapshotSamplerSW (reorder buffer is scratch).
  writer.PutU64(sampler->core_meter_.peak());
  writer.PutU64(sampler->levels_.size());
  std::vector<GroupRecord> dirty;
  std::vector<uint64_t> live_ids;
  for (auto& level : sampler->levels_) {
    dirty.clear();
    live_ids.clear();
    level->SnapshotDirtyGroups(&dirty, &live_ids);
    writer.PutU64(dirty.size());
    for (const GroupRecord& g : dirty) PutSwRecord(&writer, g);
    writer.PutU64(live_ids.size());
    for (uint64_t id : live_ids) writer.PutU64(id);
  }
  writer.PutU64(Checksum(*out, out->size()));
  for (auto& level : sampler->levels_) level->MarkCheckpoint();
  return Status::OK();
}

Status ApplySamplerDeltaSW(const std::string& base, const std::string& delta,
                           std::string* out) {
  Result<std::string> base_payload_r = CheckedPayload(base);
  if (!base_payload_r.ok()) return base_payload_r.status();
  const std::string base_payload = std::move(base_payload_r).value();
  if (Status st = CheckFullHeader(base_payload, kSnapMagicSW); !st.ok()) {
    return st;
  }
  size_t dim = 0;
  if (Status st = BlobDim(base_payload, &dim); !st.ok()) return st;

  // Walk the base: window + six scalars, then per-level record blocks,
  // indexing every record by id within its level. (Groups move between
  // levels only through split promotion, which marks them dirty at the
  // destination — a clean live id is always found at its base level.)
  Cursor bc{base_payload, kOptionsOffset + kOptionsBytes};
  int64_t window = 0;
  if (!bc.I64(&window) || !bc.Skip(6 * 8)) {
    return Status::InvalidArgument("base snapshot truncated");
  }
  uint64_t level_count = 0;
  if (!bc.U64(&level_count) || level_count > 64) {
    return Status::InvalidArgument("bad level count in base");
  }
  std::vector<std::unordered_map<uint64_t, std::pair<size_t, size_t>>>
      base_records(level_count);
  for (uint64_t l = 0; l < level_count; ++l) {
    uint64_t group_count = 0;
    if (!bc.U64(&group_count)) {
      return Status::InvalidArgument("base snapshot truncated");
    }
    const size_t min_group_bytes = 49 + 16 * dim;
    if (group_count > bc.remaining() / min_group_bytes) {
      return Status::InvalidArgument("bad group count in base");
    }
    base_records[l].reserve(group_count);
    for (uint64_t g = 0; g < group_count; ++g) {
      uint64_t id = 0;
      size_t offset = bc.pos, length = 0;
      if (!WalkSwRecord(&bc, dim, &id, &length)) {
        return Status::InvalidArgument("base record malformed");
      }
      base_records[l][id] = {offset, length};
    }
  }
  if (bc.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in base snapshot");
  }

  Result<std::string> delta_payload_r = CheckedPayload(delta);
  if (!delta_payload_r.ok()) return delta_payload_r.status();
  const std::string delta_payload = std::move(delta_payload_r).value();
  Cursor dc{delta_payload};
  char magic[8];
  if (!dc.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kDeltaMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("not an rl0 delta");
  }
  uint32_t version = 0;
  uint8_t kind = 0;
  uint64_t base_checksum = 0;
  if (!dc.U32(&version) || !dc.U8(&kind) || !dc.U64(&base_checksum)) {
    return Status::InvalidArgument("delta truncated");
  }
  if (version != kDeltaVersion) {
    return Status::InvalidArgument("unsupported delta version");
  }
  if (kind != kKindSW) {
    return Status::InvalidArgument("delta kind mismatch");
  }
  if (base_checksum != SnapshotChainChecksum(base)) {
    return Status::InvalidArgument("delta was cut against a different base");
  }
  uint64_t id_counter = 0, points_processed = 0, error_count = 0;
  uint64_t stuck_split_count = 0, peak = 0, delta_levels = 0;
  int64_t latest_stamp = 0;
  if (!dc.U64(&id_counter) || !dc.U64(&points_processed) ||
      !dc.I64(&latest_stamp) || !dc.U64(&error_count) ||
      !dc.U64(&stuck_split_count) || !dc.U64(&peak) ||
      !dc.U64(&delta_levels)) {
    return Status::InvalidArgument("delta truncated");
  }
  if (delta_levels != level_count) {
    return Status::InvalidArgument("level count mismatch between delta/base");
  }
  std::vector<std::unordered_map<uint64_t, std::pair<size_t, size_t>>>
      dirty_records(level_count);
  std::vector<std::vector<uint64_t>> live_ids(level_count);
  for (uint64_t l = 0; l < level_count; ++l) {
    uint64_t dirty_count = 0;
    if (!dc.U64(&dirty_count)) {
      return Status::InvalidArgument("delta truncated");
    }
    const size_t min_group_bytes = 49 + 16 * dim;
    if (dirty_count > dc.remaining() / min_group_bytes) {
      return Status::InvalidArgument("bad dirty count in delta");
    }
    dirty_records[l].reserve(dirty_count);
    for (uint64_t g = 0; g < dirty_count; ++g) {
      uint64_t id = 0;
      size_t offset = dc.pos, length = 0;
      if (!WalkSwRecord(&dc, dim, &id, &length)) {
        return Status::InvalidArgument("delta record malformed");
      }
      dirty_records[l][id] = {offset, length};
    }
    uint64_t live_count = 0;
    if (!dc.U64(&live_count) || live_count > dc.remaining() / 8) {
      return Status::InvalidArgument("bad live-id list in delta");
    }
    live_ids[l].resize(live_count);
    for (uint64_t i = 0; i < live_count; ++i) {
      if (!dc.U64(&live_ids[l][i])) {
        return Status::InvalidArgument("delta truncated");
      }
    }
  }
  if (dc.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in delta");
  }

  out->clear();
  BinaryWriter writer(out);
  writer.PutBytes(kSnapMagicSW, sizeof(kSnapMagicSW));
  writer.PutU32(kSnapVersion);
  writer.PutBytes(base_payload.data() + kOptionsOffset, kOptionsBytes);
  writer.PutI64(window);
  writer.PutU64(id_counter);
  writer.PutU64(points_processed);
  writer.PutI64(latest_stamp);
  writer.PutU64(error_count);
  writer.PutU64(stuck_split_count);
  writer.PutU64(peak);
  writer.PutU64(level_count);
  for (uint64_t l = 0; l < level_count; ++l) {
    writer.PutU64(live_ids[l].size());
    for (uint64_t id : live_ids[l]) {
      auto dirty = dirty_records[l].find(id);
      if (dirty != dirty_records[l].end()) {
        writer.PutBytes(delta_payload.data() + dirty->second.first,
                        dirty->second.second);
        continue;
      }
      auto clean = base_records[l].find(id);
      if (clean == base_records[l].end()) {
        return Status::InvalidArgument("delta references an id not in base");
      }
      writer.PutBytes(base_payload.data() + clean->second.first,
                      clean->second.second);
    }
  }
  writer.PutU64(Checksum(*out, out->size()));
  return Status::OK();
}

// -------------------------------------------------------------- journal

JournalWriter::JournalWriter(std::string* out, size_t dim, uint64_t next_seq)
    : out_(out), dim_(dim), next_seq_(next_seq) {
  if (out_->empty()) {
    BinaryWriter writer(out_);
    writer.PutBytes(kJournalMagic, sizeof(kJournalMagic));
    writer.PutU32(kJournalVersion);
    writer.PutU64(dim_);
  }
}

void JournalWriter::BeginRecord(JournalRecordType type, uint64_t index_base,
                                uint64_t count, size_t* start) {
  *start = out_->size();
  BinaryWriter writer(out_);
  writer.PutU32(kRecordMarker);
  writer.PutU8(static_cast<uint8_t>(type));
  writer.PutU64(next_seq_);
  writer.PutU64(index_base);
  writer.PutU64(count);
}

void JournalWriter::EndRecord(size_t start) {
  const uint64_t crc =
      ChecksumRange(out_->data() + start, out_->size() - start);
  BinaryWriter writer(out_);
  writer.PutU64(crc);
  ++next_seq_;
}

void JournalWriter::AppendPoints(Span<const Point> points,
                                 uint64_t index_base) {
  size_t start = 0;
  BeginRecord(JournalRecordType::kPoints, index_base, points.size(), &start);
  BinaryWriter writer(out_);
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t d = 0; d < dim_; ++d) writer.PutDouble(points[i][d]);
  }
  EndRecord(start);
}

void JournalWriter::AppendStamped(Span<const Point> points,
                                  Span<const int64_t> stamps,
                                  uint64_t index_base) {
  size_t start = 0;
  BeginRecord(JournalRecordType::kStamped, index_base, points.size(),
              &start);
  BinaryWriter writer(out_);
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t d = 0; d < dim_; ++d) writer.PutDouble(points[i][d]);
  }
  for (size_t i = 0; i < stamps.size(); ++i) writer.PutI64(stamps[i]);
  EndRecord(start);
}

void JournalWriter::AppendWatermark(int64_t watermark, uint64_t index_base) {
  size_t start = 0;
  BeginRecord(JournalRecordType::kWatermark, index_base, 0, &start);
  BinaryWriter writer(out_);
  writer.PutI64(watermark);
  EndRecord(start);
}

Status ReadJournal(const std::string& journal, JournalContents* out) {
  out->dim = 0;
  out->records.clear();
  out->valid_bytes = 0;
  const size_t header_bytes = 8 + 4 + 8;
  if (journal.size() < header_bytes) {
    // An empty buffer — or a header torn mid-write — means nothing was
    // durably journaled yet; that is a valid (empty) journal.
    return Status::OK();
  }
  if (std::memcmp(journal.data(), kJournalMagic, sizeof(kJournalMagic)) !=
      0) {
    return Status::InvalidArgument("not an rl0 journal");
  }
  uint32_t version = 0;
  std::memcpy(&version, journal.data() + 8, sizeof(version));
  if (version != kJournalVersion) {
    return Status::InvalidArgument("unsupported journal version");
  }
  uint64_t dim64 = 0;
  std::memcpy(&dim64, journal.data() + 12, sizeof(dim64));
  if (dim64 > kMaxDim) {
    return Status::InvalidArgument("bad dimension in journal header");
  }
  out->dim = static_cast<size_t>(dim64);
  const size_t point_bytes = 8 * out->dim;

  size_t pos = header_bytes;
  out->valid_bytes = pos;
  while (true) {
    const size_t left = journal.size() - pos;
    if (left < kRecordFixedBytes + 8) break;
    uint32_t marker = 0;
    std::memcpy(&marker, journal.data() + pos, sizeof(marker));
    if (marker != kRecordMarker) break;
    const uint8_t type = static_cast<uint8_t>(journal[pos + 4]);
    uint64_t seq = 0, index_base = 0, count = 0;
    std::memcpy(&seq, journal.data() + pos + 5, sizeof(seq));
    std::memcpy(&index_base, journal.data() + pos + 13, sizeof(index_base));
    std::memcpy(&count, journal.data() + pos + 21, sizeof(count));
    size_t payload = 0;
    if (type == static_cast<uint8_t>(JournalRecordType::kPoints)) {
      if (out->dim == 0 && count > 0) break;
      if (point_bytes != 0 && count > left / point_bytes) break;
      payload = static_cast<size_t>(count) * point_bytes;
    } else if (type == static_cast<uint8_t>(JournalRecordType::kStamped)) {
      const size_t per = point_bytes + 8;
      if (count > left / per) break;
      payload = static_cast<size_t>(count) * per;
    } else if (type ==
               static_cast<uint8_t>(JournalRecordType::kWatermark)) {
      if (count != 0) break;
      payload = 8;
    } else {
      break;
    }
    if (left < kRecordFixedBytes + payload + 8) break;
    uint64_t stored_crc = 0;
    std::memcpy(&stored_crc,
                journal.data() + pos + kRecordFixedBytes + payload,
                sizeof(stored_crc));
    if (ChecksumRange(journal.data() + pos, kRecordFixedBytes + payload) !=
        stored_crc) {
      break;
    }
    // Journals are sequence-contiguous from 0; a CRC-valid record with
    // the wrong sequence number still ends the trusted prefix.
    if (seq != out->records.size()) break;

    JournalRecord record;
    record.type = static_cast<JournalRecordType>(type);
    record.seq = seq;
    record.index_base = index_base;
    const char* p = journal.data() + pos + kRecordFixedBytes;
    if (record.type == JournalRecordType::kWatermark) {
      std::memcpy(&record.watermark, p, sizeof(record.watermark));
    } else {
      record.points.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        Point point(out->dim);
        for (size_t d = 0; d < out->dim; ++d) {
          std::memcpy(&point[d], p, sizeof(double));
          p += sizeof(double);
        }
        record.points.push_back(std::move(point));
      }
      if (record.type == JournalRecordType::kStamped) {
        record.stamps.resize(count);
        for (uint64_t i = 0; i < count; ++i) {
          std::memcpy(&record.stamps[i], p, sizeof(int64_t));
          p += sizeof(int64_t);
        }
      }
    }
    out->records.push_back(std::move(record));
    pos += kRecordFixedBytes + payload + 8;
    out->valid_bytes = pos;
  }
  return Status::OK();
}

// ---------------------------------------------------- pool checkpoints

namespace {

struct PoolHeader {
  uint8_t mode = 0;
  uint64_t shards = 0;
  int64_t window = 0;
  uint64_t points_fed = 0;
  int64_t latest_stamp = -1;
  bool watermark_sent = false;
  int64_t last_watermark = 0;
  bool has_frontier = false;
  int64_t frontier = 0;
  uint64_t journal_seq = 0;
};

void PutPoolHeader(BinaryWriter* writer, const PoolHeader& hdr) {
  writer->PutU8(hdr.mode);
  writer->PutU64(hdr.shards);
  writer->PutI64(hdr.window);
  writer->PutU64(hdr.points_fed);
  writer->PutI64(hdr.latest_stamp);
  writer->PutU8(hdr.watermark_sent ? 1 : 0);
  writer->PutI64(hdr.last_watermark);
  writer->PutU8(hdr.has_frontier ? 1 : 0);
  writer->PutI64(hdr.frontier);
  writer->PutU64(hdr.journal_seq);
}

bool GetPoolHeader(Cursor* cur, PoolHeader* hdr) {
  uint8_t watermark_sent = 0, has_frontier = 0;
  if (!cur->U8(&hdr->mode) || !cur->U64(&hdr->shards) ||
      !cur->I64(&hdr->window) || !cur->U64(&hdr->points_fed) ||
      !cur->I64(&hdr->latest_stamp) || !cur->U8(&watermark_sent) ||
      !cur->I64(&hdr->last_watermark) || !cur->U8(&has_frontier) ||
      !cur->I64(&hdr->frontier) || !cur->U64(&hdr->journal_seq)) {
    return false;
  }
  hdr->watermark_sent = watermark_sent != 0;
  hdr->has_frontier = has_frontier != 0;
  return true;
}

/// Parses a full pool checkpoint payload into its header and per-shard
/// blob slices (offset, length into `payload`).
Status ParsePoolCheckpoint(const std::string& payload, PoolHeader* hdr,
                           std::vector<std::pair<size_t, size_t>>* blobs) {
  Cursor cur{payload};
  char magic[8];
  if (!cur.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kPoolMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("not an rl0 pool checkpoint");
  }
  uint32_t version = 0;
  if (!cur.U32(&version) || version != kPoolVersion) {
    return Status::InvalidArgument("unsupported pool checkpoint version");
  }
  if (!GetPoolHeader(&cur, hdr)) {
    return Status::InvalidArgument("pool checkpoint truncated");
  }
  if (hdr->shards == 0 || hdr->shards > 65536) {
    return Status::InvalidArgument("bad shard count in pool checkpoint");
  }
  blobs->clear();
  blobs->reserve(hdr->shards);
  for (uint64_t s = 0; s < hdr->shards; ++s) {
    uint64_t length = 0;
    if (!cur.U64(&length) || length > cur.remaining()) {
      return Status::InvalidArgument("pool checkpoint truncated");
    }
    blobs->emplace_back(cur.pos, static_cast<size_t>(length));
    cur.pos += length;
  }
  if (cur.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in pool checkpoint");
  }
  return Status::OK();
}

}  // namespace

Status CheckpointPool(ShardedSwSamplerPool* pool, uint64_t journal_seq,
                      std::string* out) {
  out->clear();
  BinaryWriter writer(out);
  writer.PutBytes(kPoolMagic, sizeof(kPoolMagic));
  writer.PutU32(kPoolVersion);
  // Snap the header fields at this quiescent point. (Friendship does not
  // extend into the anonymous namespace, hence inline; kept byte-for-byte
  // in step with CheckpointPoolDelta.)
  PoolHeader hdr;
  hdr.mode = pool->mode_->load(std::memory_order_relaxed);
  hdr.shards = pool->shards_.size();
  hdr.window = pool->window_;
  hdr.points_fed = pool->pipeline_->points_fed();
  hdr.latest_stamp = pool->pipeline_->latest_stamp();
  hdr.journal_seq = journal_seq;
  {
    ReorderFrontEnd* fe = pool->reorder_fe_.get();
    MutexLock lock(&fe->mu);
    hdr.watermark_sent = fe->watermark_sent;
    hdr.last_watermark = fe->last_watermark;
    if (fe->stage && fe->stage->has_watermark()) {
      hdr.has_frontier = true;
      hdr.frontier = fe->stage->release_bound();
    }
  }
  PutPoolHeader(&writer, hdr);
  std::string shard_blob;
  for (RobustL0SamplerSW& shard : pool->shards_) {
    if (Status st = SnapshotSamplerFullSW(&shard, &shard_blob); !st.ok()) {
      return st;
    }
    writer.PutU64(shard_blob.size());
    writer.PutBytes(shard_blob.data(), shard_blob.size());
  }
  writer.PutU64(Checksum(*out, out->size()));
  return Status::OK();
}

Status CheckpointPoolDelta(ShardedSwSamplerPool* pool,
                           const std::string& base, uint64_t journal_seq,
                           std::string* out) {
  Result<std::string> base_payload_r = CheckedPayload(base);
  if (!base_payload_r.ok()) return base_payload_r.status();
  const std::string base_payload = std::move(base_payload_r).value();
  PoolHeader base_hdr;
  std::vector<std::pair<size_t, size_t>> base_blobs;
  if (Status st = ParsePoolCheckpoint(base_payload, &base_hdr, &base_blobs);
      !st.ok()) {
    return st;
  }
  if (base_hdr.shards != pool->shards_.size()) {
    return Status::InvalidArgument("base shard count mismatch");
  }

  out->clear();
  BinaryWriter writer(out);
  writer.PutBytes(kPoolDeltaMagic, sizeof(kPoolDeltaMagic));
  writer.PutU32(kPoolVersion);
  writer.PutU64(SnapshotChainChecksum(base));
  // Same quiescent-point header snap as CheckpointPool.
  PoolHeader hdr;
  hdr.mode = pool->mode_->load(std::memory_order_relaxed);
  hdr.shards = pool->shards_.size();
  hdr.window = pool->window_;
  hdr.points_fed = pool->pipeline_->points_fed();
  hdr.latest_stamp = pool->pipeline_->latest_stamp();
  hdr.journal_seq = journal_seq;
  {
    ReorderFrontEnd* fe = pool->reorder_fe_.get();
    MutexLock lock(&fe->mu);
    hdr.watermark_sent = fe->watermark_sent;
    hdr.last_watermark = fe->last_watermark;
    if (fe->stage && fe->stage->has_watermark()) {
      hdr.has_frontier = true;
      hdr.frontier = fe->stage->release_bound();
    }
  }
  PutPoolHeader(&writer, hdr);
  std::string shard_delta;
  for (size_t s = 0; s < pool->shards_.size(); ++s) {
    const std::string base_shard(base_payload, base_blobs[s].first,
                                 base_blobs[s].second);
    if (Status st = SnapshotSamplerDeltaSW(&pool->shards_[s],
                                           SnapshotChainChecksum(base_shard),
                                           &shard_delta);
        !st.ok()) {
      return st;
    }
    writer.PutU64(shard_delta.size());
    writer.PutBytes(shard_delta.data(), shard_delta.size());
  }
  writer.PutU64(Checksum(*out, out->size()));
  return Status::OK();
}

Status FoldPoolDelta(const std::string& base, const std::string& delta,
                     std::string* out) {
  Result<std::string> base_payload_r = CheckedPayload(base);
  if (!base_payload_r.ok()) return base_payload_r.status();
  const std::string base_payload = std::move(base_payload_r).value();
  PoolHeader base_hdr;
  std::vector<std::pair<size_t, size_t>> base_blobs;
  if (Status st = ParsePoolCheckpoint(base_payload, &base_hdr, &base_blobs);
      !st.ok()) {
    return st;
  }

  Result<std::string> delta_payload_r = CheckedPayload(delta);
  if (!delta_payload_r.ok()) return delta_payload_r.status();
  const std::string delta_payload = std::move(delta_payload_r).value();
  Cursor dc{delta_payload};
  char magic[8];
  if (!dc.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kPoolDeltaMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("not an rl0 pool delta");
  }
  uint32_t version = 0;
  uint64_t base_checksum = 0;
  if (!dc.U32(&version) || version != kPoolVersion ||
      !dc.U64(&base_checksum)) {
    return Status::InvalidArgument("unsupported pool delta");
  }
  if (base_checksum != SnapshotChainChecksum(base)) {
    return Status::InvalidArgument(
        "pool delta was cut against a different base");
  }
  PoolHeader hdr;
  if (!GetPoolHeader(&dc, &hdr)) {
    return Status::InvalidArgument("pool delta truncated");
  }
  if (hdr.shards != base_hdr.shards) {
    return Status::InvalidArgument("shard count mismatch between delta/base");
  }

  out->clear();
  BinaryWriter writer(out);
  writer.PutBytes(kPoolMagic, sizeof(kPoolMagic));
  writer.PutU32(kPoolVersion);
  PutPoolHeader(&writer, hdr);
  std::string folded;
  for (uint64_t s = 0; s < hdr.shards; ++s) {
    uint64_t length = 0;
    if (!dc.U64(&length) || length > dc.remaining()) {
      return Status::InvalidArgument("pool delta truncated");
    }
    const std::string shard_delta(delta_payload, dc.pos,
                                  static_cast<size_t>(length));
    dc.pos += length;
    const std::string base_shard(base_payload, base_blobs[s].first,
                                 base_blobs[s].second);
    if (Status st = ApplySamplerDeltaSW(base_shard, shard_delta, &folded);
        !st.ok()) {
      return st;
    }
    writer.PutU64(folded.size());
    writer.PutBytes(folded.data(), folded.size());
  }
  if (dc.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in pool delta");
  }
  writer.PutU64(Checksum(*out, out->size()));
  return Status::OK();
}

Result<ShardedSwSamplerPool> RecoverPool(
    const std::string& checkpoint, const std::string& journal,
    const IngestPool::Options& pipeline_options) {
  Result<std::string> payload_r = CheckedPayload(checkpoint);
  if (!payload_r.ok()) return payload_r.status();
  const std::string payload = std::move(payload_r).value();
  PoolHeader hdr;
  std::vector<std::pair<size_t, size_t>> blobs;
  if (Status st = ParsePoolCheckpoint(payload, &hdr, &blobs); !st.ok()) {
    return st;
  }
  if (hdr.mode > 2) {
    return Status::InvalidArgument("bad stamp mode in pool checkpoint");
  }
  constexpr uint8_t kSequenceMode = 1;
  constexpr uint8_t kTimeMode = 2;

  std::vector<RobustL0SamplerSW> restored;
  restored.reserve(hdr.shards);
  for (const auto& blob : blobs) {
    Result<RobustL0SamplerSW> shard =
        RestoreSamplerSW(std::string(payload, blob.first, blob.second));
    if (!shard.ok()) return shard.status();
    if (shard.value().window() != hdr.window) {
      return Status::InvalidArgument("shard window mismatch in checkpoint");
    }
    restored.push_back(std::move(shard).value());
  }

  IngestPool::Options popts = pipeline_options;
  popts.index_base = hdr.points_fed;
  Result<ShardedSwSamplerPool> created = ShardedSwSamplerPool::Create(
      restored[0].options(), hdr.window, restored.size(), popts);
  if (!created.ok()) return created.status();
  ShardedSwSamplerPool pool = std::move(created).value();
  // Move the restored samplers into the freshly created lane slots. The
  // lane sinks capture &shards_[s], which is stable (the vector never
  // resizes), so move-assignment replaces each lane's state in place.
  for (size_t s = 0; s < restored.size(); ++s) {
    pool.shards_[s] = std::move(restored[s]);
  }
  if (hdr.mode != 0) {
    pool.mode_->store(hdr.mode, std::memory_order_relaxed);
  }
  bool stamp_set = false;
  int64_t stamp_watermark = 0;
  if (hdr.mode == kTimeMode && hdr.latest_stamp != -1) {
    // -1 doubles as IngestPool's "no stamped feed yet" sentinel; a pool
    // whose genuine latest stamp was -1 just re-derives the watermark
    // from the first replayed chunk, which restores the same state.
    pool.pipeline_->NoteStamp(hdr.latest_stamp);
    stamp_set = true;
    stamp_watermark = hdr.latest_stamp;
  }
  {
    // Construction-time writes: the pool is not visible to any other
    // thread yet, but the fields are lock-guarded, so take the (free)
    // lock rather than carve an analysis escape.
    ReorderFrontEnd* fe = pool.reorder_fe_.get();
    MutexLock lock(&fe->mu);
    if (hdr.watermark_sent) {
      fe->watermark_sent = true;
      fe->last_watermark = hdr.last_watermark;
      // Re-arm each shard's event-time watermark (scratch state the shard
      // snapshots deliberately exclude): without it, a restored quiet lane
      // would fall back to its latest stamp and expire too little.
      for (RobustL0SamplerSW& shard : pool.shards_) {
        shard.NoteWatermark(hdr.last_watermark);
      }
    }
    if (hdr.has_frontier) {
      // Re-arm the reorder stage's lateness judgment at the crashed
      // frontier so nothing already released (or late-dropped) can be
      // re-admitted by post-recovery offers.
      const SamplerOptions& options = pool.shards_[0].options();
      fe->stage = std::make_unique<ReorderStage>(options.allowed_lateness,
                                                 options.late_policy);
      fe->stage->NoteFrontier(hdr.frontier);
    }
  }

  JournalContents contents;
  if (Status st = ReadJournal(journal, &contents); !st.ok()) return st;
  if (!contents.records.empty() &&
      contents.dim != pool.shards_[0].options().dim) {
    return Status::InvalidArgument("journal dimension mismatch");
  }
  // Replay everything at or above the checkpoint's journal sequence
  // number, re-validating what the feed paths CHECK (index continuity,
  // stamp monotonicity, mode consistency) so a corrupt journal fails
  // soft instead of aborting the process.
  uint64_t expected_index = hdr.points_fed;
  uint8_t mode = hdr.mode;
  for (const JournalRecord& record : contents.records) {
    if (record.seq < hdr.journal_seq) continue;
    if (record.index_base != expected_index) {
      return Status::InvalidArgument("journal index discontinuity");
    }
    switch (record.type) {
      case JournalRecordType::kPoints:
        if (mode == kTimeMode) {
          return Status::InvalidArgument(
              "sequence record in a time-mode journal");
        }
        mode = kSequenceMode;
        if (!record.points.empty()) pool.Feed(record.points);
        expected_index += record.points.size();
        break;
      case JournalRecordType::kStamped: {
        if (mode == kSequenceMode) {
          return Status::InvalidArgument(
              "stamped record in a sequence-mode journal");
        }
        mode = kTimeMode;
        for (size_t i = 0; i < record.stamps.size(); ++i) {
          const int64_t floor =
              i == 0 ? stamp_watermark : record.stamps[i - 1];
          if ((i > 0 || stamp_set) && record.stamps[i] < floor) {
            return Status::InvalidArgument("journal stamps regress");
          }
        }
        if (!record.points.empty()) {
          pool.FeedStamped(record.points, record.stamps);
          stamp_set = true;
          stamp_watermark = record.stamps.back();
        }
        expected_index += record.points.size();
        break;
      }
      case JournalRecordType::kWatermark:
        if (mode == kSequenceMode) {
          return Status::InvalidArgument(
              "watermark record in a sequence-mode journal");
        }
        mode = kTimeMode;
        if (stamp_set && record.watermark < stamp_watermark) {
          return Status::InvalidArgument("journal watermark regresses");
        }
        pool.pipeline_->FeedWatermark(record.watermark);
        stamp_set = true;
        stamp_watermark = record.watermark;
        {
          ReorderFrontEnd* fe = pool.reorder_fe_.get();
          MutexLock lock(&fe->mu);
          fe->watermark_sent = true;
          fe->last_watermark = record.watermark;
          if (fe->stage) fe->stage->NoteFrontier(record.watermark);
        }
        break;
    }
  }
  if (mode != hdr.mode && hdr.mode == 0) {
    pool.mode_->store(mode, std::memory_order_relaxed);
  }
  pool.Drain();
  return pool;
}

void AttachJournal(ShardedSwSamplerPool* pool, JournalWriter* writer) {
  pool->SetJournalSink([writer](Span<const Point> points,
                                Span<const int64_t> stamps,
                                uint64_t index_base,
                                const int64_t* watermark) {
    if (watermark != nullptr) {
      writer->AppendWatermark(*watermark, index_base);
    } else if (stamps.size() != 0) {
      writer->AppendStamped(points, stamps, index_base);
    } else {
      writer->AppendPoints(points, index_base);
    }
  });
}

}  // namespace rl0
