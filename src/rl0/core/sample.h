// Result types returned by the samplers.

#ifndef RL0_CORE_SAMPLE_H_
#define RL0_CORE_SAMPLE_H_

#include <cstdint>

#include "rl0/geom/point.h"

namespace rl0 {

/// A sampled stream item: the point plus its position in the stream.
/// The position lets callers map the sample back to ground truth (e.g. the
/// generating group) without relying on floating-point equality.
struct SampleItem {
  Point point;
  /// 0-based index of this point's arrival in the stream.
  uint64_t stream_index = 0;
};

}  // namespace rl0

#endif  // RL0_CORE_SAMPLE_H_
