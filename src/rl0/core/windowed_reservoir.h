// Uniform random sampling from the live suffix of a stream — the
// sliding-window replacement for reservoir sampling that Section 2.3 of
// the paper calls for ("replace Reservoir sampling with a random sampling
// algorithm for sliding windows, e.g. [Braverman-Ostrovsky-Zaniolo]").
//
// Priority sampling: every arriving item draws a fresh uniform 64-bit
// priority; the sample for any window is the minimum-priority unexpired
// item, which is uniform over the window's items. Maintaining the sample
// takes the classic sliding-window-minimum structure: a deque of
// candidates with increasing stamps and strictly increasing priorities —
// a new arrival evicts every candidate with a larger priority (they can
// never be a window minimum again while the newer item is alive), and the
// front expires as the window slides. The candidate set is the sequence
// of suffix minima, of expected size O(log w).
//
// Candidate coordinates live in a PointStore arena shared with the owning
// sampler family (one flat buffer for the whole hierarchy); each candidate
// holds a PointRef and evictions release the slot. Standalone reservoirs
// (tests, ad-hoc use) may omit the store — an owned arena is created on
// first insert. Move-only: a reservoir owns its candidates' arena slots.

#ifndef RL0_CORE_WINDOWED_RESERVOIR_H_
#define RL0_CORE_WINDOWED_RESERVOIR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "rl0/core/sample.h"
#include "rl0/geom/point.h"
#include "rl0/geom/point_store.h"
#include "rl0/util/rng.h"
#include "rl0/util/space.h"

namespace rl0 {

/// Uniform sampler over the unexpired items of a stamped stream.
class WindowedReservoir {
 public:
  /// A stored suffix-minimum candidate (public for checkpointing).
  struct Candidate {
    uint64_t priority;
    int64_t stamp;
    PointRef ref;
    uint64_t stream_index;
  };

  WindowedReservoir() : window_(1) {}

  /// Creates a reservoir for windows of width `window`; priorities are
  /// drawn from a generator seeded with `seed`. Candidates are stored in
  /// `store` when given, else in a lazily created private arena.
  WindowedReservoir(int64_t window, uint64_t seed,
                    PointStore* store = nullptr)
      : window_(window), rng_(SplitMix64(seed ^ 0x57524553ULL)),
        store_(store) {}

  WindowedReservoir(WindowedReservoir&& other) noexcept
      : window_(other.window_),
        rng_(other.rng_),
        store_(other.store_),
        owned_store_(std::move(other.owned_store_)),
        candidates_(std::move(other.candidates_)) {
    other.candidates_.clear();  // moved-from deque state is unspecified
  }
  WindowedReservoir& operator=(WindowedReservoir&& other) noexcept {
    if (this != &other) {
      ReleaseAll();
      window_ = other.window_;
      rng_ = other.rng_;
      store_ = other.store_;
      owned_store_ = std::move(other.owned_store_);
      candidates_ = std::move(other.candidates_);
      other.candidates_.clear();
    }
    return *this;
  }
  WindowedReservoir(const WindowedReservoir&) = delete;
  WindowedReservoir& operator=(const WindowedReservoir&) = delete;

  ~WindowedReservoir() { ReleaseAll(); }

  /// Feeds an item; stamps must be non-decreasing.
  void Insert(PointView p, int64_t stamp, uint64_t stream_index) {
    Expire(stamp);
    const uint64_t priority = rng_();
    while (!candidates_.empty() && candidates_.back().priority >= priority) {
      ReleaseRef(candidates_.back().ref);
      candidates_.pop_back();
    }
    EnsureStore(p.dim());
    candidates_.push_back(
        Candidate{priority, stamp, store_->Add(p), stream_index});
  }

  /// Drops candidates that left the window at time `now`.
  void Expire(int64_t now) {
    const int64_t horizon = now - window_;
    while (!candidates_.empty() && candidates_.front().stamp <= horizon) {
      ReleaseRef(candidates_.front().ref);
      candidates_.pop_front();
    }
  }

  /// A uniformly random unexpired item, or nullopt for an empty window.
  std::optional<SampleItem> Sample(int64_t now) {
    Expire(now);
    if (candidates_.empty()) return std::nullopt;
    const Candidate& front = candidates_.front();
    return SampleItem{store_->View(front.ref).Materialize(),
                      front.stream_index};
  }

  /// Current number of stored candidates (expected O(log w)).
  size_t size() const { return candidates_.size(); }

  /// Space in words for items of dimension `dim`: per candidate the flat
  /// arena coordinates plus the four scalar fields (priority, stamp,
  /// point ref, stream_index), plus the reservoir's own two scalars.
  size_t SpaceWords(size_t dim) const {
    return candidates_.size() * (dim + 4) + 2;
  }

  /// The stored candidates, oldest first (checkpointing support).
  const std::deque<Candidate>& candidates() const { return candidates_; }

  /// Materializes a candidate's coordinates (checkpointing support).
  Point CandidatePoint(const Candidate& candidate) const {
    return store_->View(candidate.ref).Materialize();
  }

  /// Releases every candidate's arena slot and empties the reservoir
  /// (group teardown in the sliding-window samplers).
  void ReleaseAll() {
    for (const Candidate& c : candidates_) ReleaseRef(c.ref);
    candidates_.clear();
  }

  /// Rebuilds a reservoir from checkpointed parts: window, a fresh seed
  /// for the priority generator (see core/snapshot.h for the statistical
  /// — not bit-exact — equivalence contract), the target arena, and the
  /// materialized candidates ordered by stamp with strictly increasing
  /// priorities.
  struct RestoredCandidate {
    uint64_t priority;
    int64_t stamp;
    Point point;
    uint64_t stream_index;
  };
  void RestoreState(int64_t window, uint64_t reseed, PointStore* store,
                    const std::vector<RestoredCandidate>& restored) {
    ReleaseAll();
    window_ = window;
    rng_ = Xoshiro256pp(SplitMix64(reseed ^ 0x57524553ULL));
    store_ = store;
    owned_store_.reset();
    for (const RestoredCandidate& c : restored) {
      EnsureStore(c.point.dim());
      candidates_.push_back(
          Candidate{c.priority, c.stamp, store_->Add(c.point),
                    c.stream_index});
    }
  }

 private:
  void EnsureStore(size_t dim) {
    if (store_ == nullptr) {
      owned_store_ = std::make_unique<PointStore>(dim);
      store_ = owned_store_.get();
    }
  }
  void ReleaseRef(PointRef ref) {
    if (store_ != nullptr) store_->Release(ref);
  }

  int64_t window_;
  Xoshiro256pp rng_{0};
  PointStore* store_ = nullptr;
  std::unique_ptr<PointStore> owned_store_;
  std::deque<Candidate> candidates_;
};

}  // namespace rl0

#endif  // RL0_CORE_WINDOWED_RESERVOIR_H_
