// Uniform random sampling from the live suffix of a stream — the
// sliding-window replacement for reservoir sampling that Section 2.3 of
// the paper calls for ("replace Reservoir sampling with a random sampling
// algorithm for sliding windows, e.g. [Braverman-Ostrovsky-Zaniolo]").
//
// Priority sampling: every arriving item draws a fresh uniform 64-bit
// priority; the sample for any window is the minimum-priority unexpired
// item, which is uniform over the window's items. Maintaining the sample
// takes the classic sliding-window-minimum structure: a deque of
// candidates with increasing stamps and strictly increasing priorities —
// a new arrival evicts every candidate with a larger priority (they can
// never be a window minimum again while the newer item is alive), and the
// front expires as the window slides. The candidate set is the sequence
// of suffix minima, of expected size O(log w).

#ifndef RL0_CORE_WINDOWED_RESERVOIR_H_
#define RL0_CORE_WINDOWED_RESERVOIR_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "rl0/core/sample.h"
#include "rl0/geom/point.h"
#include "rl0/util/rng.h"
#include "rl0/util/space.h"

namespace rl0 {

/// Uniform sampler over the unexpired items of a stamped stream.
/// Copyable (state moves with its owning group during split/merge).
class WindowedReservoir {
 public:
  /// A stored suffix-minimum candidate (public for checkpointing).
  struct Candidate {
    uint64_t priority;
    int64_t stamp;
    SampleItem item;
  };

  WindowedReservoir() : window_(1) {}

  /// Creates a reservoir for windows of width `window`; priorities are
  /// drawn from a generator seeded with `seed`.
  WindowedReservoir(int64_t window, uint64_t seed)
      : window_(window), rng_(SplitMix64(seed ^ 0x57524553ULL)) {}

  /// Feeds an item; stamps must be non-decreasing.
  void Insert(const Point& p, int64_t stamp, uint64_t stream_index) {
    Expire(stamp);
    const uint64_t priority = rng_();
    while (!candidates_.empty() && candidates_.back().priority >= priority) {
      candidates_.pop_back();
    }
    candidates_.push_back(Candidate{priority, stamp, {p, stream_index}});
  }

  /// Drops candidates that left the window at time `now`.
  void Expire(int64_t now) {
    const int64_t horizon = now - window_;
    while (!candidates_.empty() && candidates_.front().stamp <= horizon) {
      candidates_.pop_front();
    }
  }

  /// A uniformly random unexpired item, or nullopt for an empty window.
  std::optional<SampleItem> Sample(int64_t now) {
    Expire(now);
    if (candidates_.empty()) return std::nullopt;
    return candidates_.front().item;
  }

  /// Current number of stored candidates (expected O(log w)).
  size_t size() const { return candidates_.size(); }

  /// Space in words for items of dimension `dim`.
  size_t SpaceWords(size_t dim) const {
    return candidates_.size() * (PointWords(dim) + 2) + 2;
  }

  /// The stored candidates, oldest first (checkpointing support).
  const std::deque<Candidate>& candidates() const { return candidates_; }

  /// Rebuilds a reservoir from checkpointed parts. The priority generator
  /// is re-seeded from `reseed`; see core/snapshot.h for the (statistical,
  /// not bit-exact) equivalence contract. Candidates must be ordered by
  /// stamp with strictly increasing priorities.
  void RestoreState(int64_t window, uint64_t reseed,
                    std::deque<Candidate> candidates) {
    window_ = window;
    rng_ = Xoshiro256pp(SplitMix64(reseed ^ 0x57524553ULL));
    candidates_ = std::move(candidates);
  }

 private:
  int64_t window_;
  Xoshiro256pp rng_{0};
  std::deque<Candidate> candidates_;
};

}  // namespace rl0

#endif  // RL0_CORE_WINDOWED_RESERVOIR_H_
