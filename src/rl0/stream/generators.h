// Base dataset generators (Section 6.1 of the paper).
//
// Rand5 and Rand20 are exactly the paper's synthetic datasets (uniform
// points in (0,1)^d). Yacht and Seeds in the paper are UCI datasets which
// are not redistributable here; YachtLike/SeedsLike are synthetic stand-ins
// with the same cardinality, dimension and qualitative structure (see
// DESIGN.md §3: after the rescale-to-unit-min-distance step the sampler
// only sees the point geometry, so the pipeline is exercised identically).
//
// The well-separated / sparse / overlapping generators back the unit and
// property tests for Sections 2–4.

#ifndef RL0_STREAM_GENERATORS_H_
#define RL0_STREAM_GENERATORS_H_

#include <cstdint>

#include "rl0/stream/dataset.h"

namespace rl0 {

/// `n` uniform points in (0,1)^dim (paper's Rand5/Rand20 with n=500).
BaseDataset RandomUniform(size_t n, size_t dim, uint64_t seed,
                          const std::string& name = "RandUniform");

/// Paper Rand5: 500 points in R^5.
BaseDataset Rand5(uint64_t seed = 1);

/// Paper Rand20: 500 points in R^20.
BaseDataset Rand20(uint64_t seed = 2);

/// Synthetic stand-in for the UCI yacht-hydrodynamics dataset: 308 points
/// in R^7 with heterogeneous per-coordinate scales (discrete design
/// parameters plus continuous measurements).
BaseDataset YachtLike(uint64_t seed = 3);

/// Synthetic stand-in for the UCI seeds dataset: 210 points in R^8 drawn
/// from three clusters (the three wheat varieties), 70 points each.
BaseDataset SeedsLike(uint64_t seed = 4);

/// `n` group centers with guaranteed pairwise distance > `beta`
/// (lattice-based construction), for (α, β)-sparsity tests.
BaseDataset SeparatedCenters(size_t n, size_t dim, double beta,
                             uint64_t seed);

/// A general (NOT well-separated) dataset: `n` points arranged in chains of
/// overlapping clusters with spacing between alpha and 2*alpha, so the
/// minimum-cardinality partition is ambiguous (Section 3 setting).
BaseDataset OverlappingChains(size_t n, size_t dim, double alpha,
                              uint64_t seed);

}  // namespace rl0

#endif  // RL0_STREAM_GENERATORS_H_
