#include "rl0/stream/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "rl0/util/check.h"

namespace rl0 {

namespace {

/// Advances past separators and extracts the next token of `line`
/// starting at `*pos`; returns false when the line is exhausted. The
/// single definition of the separator set (',', ' ', '\t', '\r' — CRLF
/// rides in as a trailing separator) shared by every CSV scanner here.
bool NextToken(const std::string& line, size_t* pos, std::string* token) {
  size_t p = *pos;
  while (p < line.size() &&
         (line[p] == ',' || line[p] == ' ' || line[p] == '\t' ||
          line[p] == '\r')) {
    ++p;
  }
  if (p >= line.size()) {
    *pos = p;
    return false;
  }
  size_t end = p;
  while (end < line.size() && line[end] != ',' && line[end] != ' ' &&
         line[end] != '\t' && line[end] != '\r') {
    ++end;
  }
  *token = line.substr(p, end - p);
  *pos = end;
  return true;
}

/// Splits a CSV line on commas and/or whitespace into coordinate tokens.
/// Rejects malformed numbers AND out-of-range values: strtod signals
/// overflow by returning ±HUGE_VAL with errno == ERANGE while still
/// consuming the whole token, so a pure parse-end check would silently
/// accept "1e999" as +inf (gradual underflow to denormals/zero is fine
/// and accepted). Explicit "inf"/"nan" tokens parse but are non-finite,
/// so the same std::isfinite gate rejects them too.
Status ParseLine(const std::string& line, size_t line_number,
                 std::vector<double>* coords) {
  coords->clear();
  size_t pos = 0;
  std::string token;
  while (NextToken(line, &pos, &token)) {
    char* parse_end = nullptr;
    errno = 0;
    const double value = std::strtod(token.c_str(), &parse_end);
    if (parse_end == token.c_str() || *parse_end != '\0') {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": bad number '" + token + "'");
    }
    if (!std::isfinite(value)) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": coordinate out of range '" + token + "'");
    }
    coords->push_back(value);
  }
  return Status::OK();
}

/// One consistency-checked point from a coordinate row. `dim` latches on
/// the first row.
Status AppendPoint(std::vector<double>&& coords, size_t line_number,
                   size_t* dim, std::vector<Point>* points) {
  if (*dim == 0) {
    *dim = coords.size();
  } else if (coords.size() != *dim) {
    return Status::InvalidArgument(
        "line " + std::to_string(line_number) + ": expected " +
        std::to_string(*dim) + " coordinates, got " +
        std::to_string(coords.size()));
  }
  points->push_back(Point(coords));
  return Status::OK();
}

}  // namespace

Result<std::vector<Point>> ParseCsvPoints(std::istream& in) {
  std::vector<Point> points;
  std::string line;
  std::vector<double> coords;
  size_t line_number = 0;
  size_t dim = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    Status s = ParseLine(line, line_number, &coords);
    if (!s.ok()) return s;
    if (coords.empty()) continue;
    s = AppendPoint(std::move(coords), line_number, &dim, &points);
    if (!s.ok()) return s;
  }
  return points;
}

Result<std::vector<Point>> ReadCsvPoints(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  return ParseCsvPoints(in);
}

void WriteCsvPoints(const std::vector<Point>& points, std::ostream& out) {
  char buf[40];
  for (const Point& p : points) {
    for (size_t i = 0; i < p.dim(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.17g", p[i]);
      if (i) out << ',';
      out << buf;
    }
    out << '\n';
  }
}

Result<StampedCsv> ParseCsvStampedPoints(std::istream& in,
                                         int64_t allowed_lateness) {
  if (allowed_lateness < 0) {
    return Status::InvalidArgument("allowed_lateness must be >= 0");
  }
  StampedCsv out;
  std::string line;
  std::vector<double> coords;
  size_t line_number = 0;
  size_t dim = 0;
  int64_t max_stamp = 0;  // running maximum; meaningful once stamps exist
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    Status s = ParseLine(line, line_number, &coords);
    if (!s.ok()) return s;
    if (coords.empty()) continue;
    if (coords.size() < 2) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": stamped rows need a stamp and at least one coordinate");
    }
    // The stamp column must be an exact integer: re-parsing the double is
    // lossy past 2^53, and a fractional stamp is a format error, so the
    // first token is parsed again as an integer from the raw line (same
    // tokenizer, same boundaries).
    size_t pos = 0;
    std::string token;
    NextToken(line, &pos, &token);  // non-empty: coords was non-empty
    char* parse_end = nullptr;
    errno = 0;
    const long long stamp = std::strtoll(token.c_str(), &parse_end, 10);
    if (parse_end == token.c_str() || *parse_end != '\0' ||
        errno == ERANGE) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": bad stamp '" + token + "'");
    }
    if (!out.stamps.empty()) {
      // Admission bound: the running maximum minus the lateness budget
      // (clamped against signed underflow for extreme stamps). With a
      // zero budget this is exactly the non-decreasing contract.
      const int64_t floor = std::numeric_limits<int64_t>::min();
      const int64_t bound = max_stamp >= floor + allowed_lateness
                                ? max_stamp - allowed_lateness
                                : floor;
      if (stamp < bound) {
        if (allowed_lateness == 0) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_number) + ": stamp " + token +
              " decreases (stamps must be non-decreasing)");
        }
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + ": stamp " + token +
            " is more than " + std::to_string(allowed_lateness) +
            " behind the maximum stamp " + std::to_string(max_stamp) +
            " (allowed lateness exceeded)");
      }
    }
    if (out.stamps.empty() || stamp > max_stamp) max_stamp = stamp;
    coords.erase(coords.begin());
    Status sp = AppendPoint(std::move(coords), line_number, &dim,
                            &out.points);
    if (!sp.ok()) return sp;
    out.stamps.push_back(static_cast<int64_t>(stamp));
  }
  return out;
}

Result<StampedCsv> ReadCsvStampedPoints(const std::string& path,
                                        int64_t allowed_lateness) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  return ParseCsvStampedPoints(in, allowed_lateness);
}

void WriteCsvStampedPoints(const std::vector<Point>& points,
                           const std::vector<int64_t>& stamps,
                           std::ostream& out) {
  RL0_CHECK(points.size() == stamps.size());
  char buf[40];
  for (size_t i = 0; i < points.size(); ++i) {
    out << static_cast<long long>(stamps[i]);
    const Point& p = points[i];
    for (size_t d = 0; d < p.dim(); ++d) {
      std::snprintf(buf, sizeof(buf), "%.17g", p[d]);
      out << ',' << buf;
    }
    out << '\n';
  }
}

}  // namespace rl0
