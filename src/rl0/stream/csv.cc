#include "rl0/stream/csv.h"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace rl0 {

namespace {

/// Splits a CSV line on commas and/or whitespace into coordinate tokens.
Status ParseLine(const std::string& line, size_t line_number,
                 std::vector<double>* coords) {
  coords->clear();
  size_t pos = 0;
  while (pos < line.size()) {
    // Skip separators.
    while (pos < line.size() &&
           (line[pos] == ',' || line[pos] == ' ' || line[pos] == '\t' ||
            line[pos] == '\r')) {
      ++pos;
    }
    if (pos >= line.size()) break;
    size_t end = pos;
    while (end < line.size() && line[end] != ',' && line[end] != ' ' &&
           line[end] != '\t' && line[end] != '\r') {
      ++end;
    }
    const std::string token = line.substr(pos, end - pos);
    char* parse_end = nullptr;
    const double value = std::strtod(token.c_str(), &parse_end);
    if (parse_end == token.c_str() || *parse_end != '\0') {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": bad number '" + token + "'");
    }
    coords->push_back(value);
    pos = end;
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Point>> ParseCsvPoints(std::istream& in) {
  std::vector<Point> points;
  std::string line;
  std::vector<double> coords;
  size_t line_number = 0;
  size_t dim = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    Status s = ParseLine(line, line_number, &coords);
    if (!s.ok()) return s;
    if (coords.empty()) continue;
    if (dim == 0) {
      dim = coords.size();
    } else if (coords.size() != dim) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected " +
          std::to_string(dim) + " coordinates, got " +
          std::to_string(coords.size()));
    }
    points.push_back(Point(coords));
  }
  return points;
}

Result<std::vector<Point>> ReadCsvPoints(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  return ParseCsvPoints(in);
}

void WriteCsvPoints(const std::vector<Point>& points, std::ostream& out) {
  char buf[40];
  for (const Point& p : points) {
    for (size_t i = 0; i < p.dim(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.17g", p[i]);
      if (i) out << ',';
      out << buf;
    }
    out << '\n';
  }
}

}  // namespace rl0
