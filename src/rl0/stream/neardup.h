// Near-duplicate stream synthesis (Section 6.1 of the paper).
//
// Given a base dataset, the paper generates a noisy stream as follows:
//   1. rescale so the minimum pairwise distance is 1;
//   2. for each base point x_i, add k_i near-duplicates, where k_i is
//      uniform in {1..100} (first transformation) or ⌈n·i^{-1}⌉ after a
//      random ordering (second, power-law transformation);
//   3. each near-duplicate is x_i + ẑ where z is uniform in (0,1)^d
//      rescaled to a length drawn uniformly from (0, 1/(2·d^1.5));
//   4. shuffle the stream randomly.
// The resulting dataset is (α, β)-sparse with α = d^{-1.5} (intra-group
// distances < α) and β = 1 − α (inter-group distances > β), which is the
// regime of the paper's Section 4 grid (side d·α).

#ifndef RL0_STREAM_NEARDUP_H_
#define RL0_STREAM_NEARDUP_H_

#include <cstdint>

#include "rl0/stream/dataset.h"

namespace rl0 {

/// How many near-duplicates each base point receives.
enum class DupDistribution {
  /// k_i uniform in {1, ..., max_dups} (paper's first transformation).
  kUniform,
  /// k_i = ⌈n / rank(i)⌉ under a random ordering (power-law, second
  /// transformation; the "-pl" datasets).
  kPowerLaw,
};

/// Options for the near-duplicate transformation.
struct NearDupOptions {
  DupDistribution distribution = DupDistribution::kUniform;
  /// Upper bound for kUniform (paper: 100).
  uint32_t max_dups = 100;
  /// Noise length upper bound as a fraction of 1/d^1.5 (paper: 1/2, i.e.
  /// lengths uniform in (0, 1/(2 d^1.5))).
  double noise_scale = 0.5;
  /// Shuffle the final stream (paper shuffles; disable for replay tests).
  bool shuffle = true;
  uint64_t seed = 0;
};

/// Rescales `points` in place so the minimum pairwise distance is 1.
/// Returns the scale factor applied. Requires at least 2 distinct points.
double RescaleToUnitMinDistance(std::vector<Point>* points);

/// Applies the Section 6.1 transformation to `base`, producing the noisy
/// stream with ground-truth group labels. The dataset name is suffixed
/// with "-pl" for the power-law distribution, matching the paper.
NoisyDataset MakeNearDuplicates(const BaseDataset& base,
                                const NearDupOptions& options);

}  // namespace rl0

#endif  // RL0_STREAM_NEARDUP_H_
