// Timestamped streams for the sliding-window models.
//
// The paper's two window models differ only in what "expired" means:
// sequence-based windows keep the last w *points*, time-based windows keep
// the points of the last w *time steps*. We represent both with a single
// stamped-point stream: the stamp is the arrival index for sequence-based
// windows, or an arbitrary non-decreasing time for time-based windows.

#ifndef RL0_STREAM_WINDOW_STREAM_H_
#define RL0_STREAM_WINDOW_STREAM_H_

#include <cstdint>
#include <vector>

#include "rl0/stream/dataset.h"

namespace rl0 {

/// A stream point with its stamp (arrival index or arrival time).
struct StampedPoint {
  Point point;
  int64_t stamp = 0;
  /// Ground-truth group (benchmark-side only).
  uint32_t group = 0;
  /// Position in the stream (benchmark-side only).
  uint64_t stream_index = 0;
};

/// Converts a noisy dataset into a sequence-stamped stream
/// (stamp = arrival index).
std::vector<StampedPoint> SequenceStamped(const NoisyDataset& dataset);

/// Converts a noisy dataset into a time-stamped stream with inter-arrival
/// gaps drawn uniformly from {1, ..., max_gap}; stamps are non-decreasing.
std::vector<StampedPoint> TimeStamped(const NoisyDataset& dataset,
                                      uint32_t max_gap, uint64_t seed);

/// As TimeStamped, but every `burst_every`-th gap jumps by
/// `burst_gap` instead — stamps that leap past whole windows, the
/// expiry-wave workload of the time-based pipeline tests. burst_every=0
/// disables bursts (plain TimeStamped).
std::vector<StampedPoint> TimeStampedBursty(const NoisyDataset& dataset,
                                            uint32_t max_gap,
                                            size_t burst_every,
                                            int64_t burst_gap,
                                            uint64_t seed);

/// Reorders a stamp-sorted stream into a bounded-disorder arrival order:
/// each element is keyed by stamp + jitter with jitter uniform in
/// [0, bound], then the stream is stable-sorted by key. Any element then
/// runs at most `bound` behind the running maximum stamp at its arrival
/// (if a precedes b in the output, key_a <= key_b, so
/// stamp_a >= stamp_b - bound) — the exact admission contract of
/// ReorderStage with allowed_lateness = bound. bound = 0 returns the
/// stream unchanged. Stamps, groups and stream indices ride along
/// untouched.
std::vector<StampedPoint> DisorderWithinBound(
    const std::vector<StampedPoint>& stream, int64_t bound, uint64_t seed);

/// As DisorderWithinBound but with heavy-tailed jitter: most elements
/// jitter only within bound/8, a ~1/16 minority draws from the full
/// [0, bound] range — a skewed-lateness workload (rare stragglers near
/// the bound) that stresses watermark stalls without violating the
/// bound.
std::vector<StampedPoint> DisorderSkewed(
    const std::vector<StampedPoint>& stream, int64_t bound, uint64_t seed);

/// Splits a stamped stream into the parallel point/stamp arrays the
/// stamped pipeline feeds on (ShardedSwSamplerPool::FeedStamped,
/// F0EstimatorSW::FeedStamped). Output vectors are cleared first.
void SplitStamped(const std::vector<StampedPoint>& stream,
                  std::vector<Point>* points, std::vector<int64_t>* stamps);

/// Ground truth for a window: the set of distinct groups with at least one
/// point alive in (now - w, now] ... i.e. stamps in [now - w + 1, now].
/// Returns the sorted group ids.
std::vector<uint32_t> GroupsInWindow(const std::vector<StampedPoint>& stream,
                                     size_t upto_index, int64_t window,
                                     int64_t now);

}  // namespace rl0

#endif  // RL0_STREAM_WINDOW_STREAM_H_
