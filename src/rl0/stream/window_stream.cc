#include "rl0/stream/window_stream.h"

#include <algorithm>

#include "rl0/util/rng.h"

namespace rl0 {

std::vector<StampedPoint> SequenceStamped(const NoisyDataset& dataset) {
  std::vector<StampedPoint> out;
  out.reserve(dataset.points.size());
  for (size_t i = 0; i < dataset.points.size(); ++i) {
    out.push_back(StampedPoint{dataset.points[i], static_cast<int64_t>(i),
                               dataset.group_of[i], i});
  }
  return out;
}

namespace {

/// The shared stamping loop: uniform jitter gaps in {1..max_gap}, with
/// every `burst_every`-th gap replaced by `burst_gap` (0 = no bursts).
/// `mixed_seed` is the caller's already-mixed rng seed — each public
/// generator keeps its own mix constant, so existing streams are
/// byte-stable.
std::vector<StampedPoint> StampWithGaps(const NoisyDataset& dataset,
                                        uint32_t max_gap, size_t burst_every,
                                        int64_t burst_gap,
                                        uint64_t mixed_seed) {
  std::vector<StampedPoint> out;
  out.reserve(dataset.points.size());
  Xoshiro256pp rng(SplitMix64(mixed_seed));
  int64_t now = 0;
  for (size_t i = 0; i < dataset.points.size(); ++i) {
    if (burst_every != 0 && i != 0 && i % burst_every == 0) {
      now += burst_gap;  // the whole previous window expires at once
    } else {
      now += 1 + static_cast<int64_t>(rng.NextBounded(std::max(1u, max_gap)));
    }
    out.push_back(
        StampedPoint{dataset.points[i], now, dataset.group_of[i], i});
  }
  return out;
}

}  // namespace

std::vector<StampedPoint> TimeStamped(const NoisyDataset& dataset,
                                      uint32_t max_gap, uint64_t seed) {
  return StampWithGaps(dataset, max_gap, 0, 0, seed ^ 0x54696D65ULL);
}

std::vector<StampedPoint> TimeStampedBursty(const NoisyDataset& dataset,
                                            uint32_t max_gap,
                                            size_t burst_every,
                                            int64_t burst_gap,
                                            uint64_t seed) {
  return StampWithGaps(dataset, max_gap, burst_every, burst_gap,
                       seed ^ 0x42757273ULL);
}

namespace {

/// The shared disorder loop: jitter keys drawn by `next_jitter`, stable
/// sort by key (ties keep the sorted order, so zero-jitter runs stay
/// put).
template <typename JitterFn>
std::vector<StampedPoint> DisorderByJitter(
    const std::vector<StampedPoint>& stream, int64_t bound,
    JitterFn next_jitter) {
  if (bound <= 0 || stream.size() < 2) return stream;
  std::vector<int64_t> keys;
  keys.reserve(stream.size());
  for (const StampedPoint& sp : stream) keys.push_back(sp.stamp + next_jitter());
  std::vector<size_t> order(stream.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&keys](size_t a, size_t b) { return keys[a] < keys[b]; });
  std::vector<StampedPoint> out;
  out.reserve(stream.size());
  for (size_t i : order) out.push_back(stream[i]);
  return out;
}

}  // namespace

std::vector<StampedPoint> DisorderWithinBound(
    const std::vector<StampedPoint>& stream, int64_t bound, uint64_t seed) {
  Xoshiro256pp rng(SplitMix64(seed ^ 0x4C617465ULL));
  return DisorderByJitter(stream, bound, [&rng, bound]() {
    return static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(bound) + 1));
  });
}

std::vector<StampedPoint> DisorderSkewed(
    const std::vector<StampedPoint>& stream, int64_t bound, uint64_t seed) {
  Xoshiro256pp rng(SplitMix64(seed ^ 0x536B6577ULL));
  return DisorderByJitter(stream, bound, [&rng, bound]() {
    const int64_t cap = rng.NextBounded(16) == 0 ? bound : bound / 8;
    return static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(cap) + 1));
  });
}

void SplitStamped(const std::vector<StampedPoint>& stream,
                  std::vector<Point>* points, std::vector<int64_t>* stamps) {
  points->clear();
  stamps->clear();
  points->reserve(stream.size());
  stamps->reserve(stream.size());
  for (const StampedPoint& sp : stream) {
    points->push_back(sp.point);
    stamps->push_back(sp.stamp);
  }
}

std::vector<uint32_t> GroupsInWindow(const std::vector<StampedPoint>& stream,
                                     size_t upto_index, int64_t window,
                                     int64_t now) {
  std::vector<uint32_t> groups;
  for (size_t i = 0; i <= upto_index && i < stream.size(); ++i) {
    if (stream[i].stamp > now - window && stream[i].stamp <= now) {
      groups.push_back(stream[i].group);
    }
  }
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  return groups;
}

}  // namespace rl0
