#include "rl0/stream/window_stream.h"

#include <algorithm>

#include "rl0/util/rng.h"

namespace rl0 {

std::vector<StampedPoint> SequenceStamped(const NoisyDataset& dataset) {
  std::vector<StampedPoint> out;
  out.reserve(dataset.points.size());
  for (size_t i = 0; i < dataset.points.size(); ++i) {
    out.push_back(StampedPoint{dataset.points[i], static_cast<int64_t>(i),
                               dataset.group_of[i], i});
  }
  return out;
}

std::vector<StampedPoint> TimeStamped(const NoisyDataset& dataset,
                                      uint32_t max_gap, uint64_t seed) {
  std::vector<StampedPoint> out;
  out.reserve(dataset.points.size());
  Xoshiro256pp rng(SplitMix64(seed ^ 0x54696D65ULL));
  int64_t now = 0;
  for (size_t i = 0; i < dataset.points.size(); ++i) {
    now += 1 + static_cast<int64_t>(rng.NextBounded(std::max(1u, max_gap)));
    out.push_back(
        StampedPoint{dataset.points[i], now, dataset.group_of[i], i});
  }
  return out;
}

std::vector<uint32_t> GroupsInWindow(const std::vector<StampedPoint>& stream,
                                     size_t upto_index, int64_t window,
                                     int64_t now) {
  std::vector<uint32_t> groups;
  for (size_t i = 0; i <= upto_index && i < stream.size(); ++i) {
    if (stream[i].stamp > now - window && stream[i].stamp <= now) {
      groups.push_back(stream[i].group);
    }
  }
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  return groups;
}

}  // namespace rl0
