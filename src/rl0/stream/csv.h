// CSV point streams: the interchange format of the command-line tool.
//
// One point per line, coordinates separated by commas (or whitespace);
// blank lines and lines starting with '#' are skipped. All points must
// share one dimension. Parsing is strict and reports 1-based line numbers
// in error messages.

#ifndef RL0_STREAM_CSV_H_
#define RL0_STREAM_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "rl0/geom/point.h"
#include "rl0/util/status.h"

namespace rl0 {

/// Parses points from CSV text.
Result<std::vector<Point>> ParseCsvPoints(std::istream& in);

/// Reads points from a CSV file.
Result<std::vector<Point>> ReadCsvPoints(const std::string& path);

/// Writes points as CSV ("%.17g" coordinates, comma-separated).
void WriteCsvPoints(const std::vector<Point>& points, std::ostream& out);

}  // namespace rl0

#endif  // RL0_STREAM_CSV_H_
