// CSV point streams: the interchange format of the command-line tool.
//
// One point per line, coordinates separated by commas (or whitespace);
// blank lines and lines starting with '#' are skipped; CRLF line endings
// are accepted. All points must share one dimension. Parsing is strict
// and reports 1-based line numbers in error messages: malformed tokens,
// inconsistent dimensions and out-of-range coordinates (overflow to
// ±inf, explicit inf/nan) are all rejected — a non-finite coordinate
// would silently poison every grid/distance computation downstream.
//
// Stamped variant (time-based windows): the first column is an integer
// stamp (arrival time), the remaining columns the coordinates. Stamps
// must be non-decreasing down the file, mirroring the stream contract of
// RobustL0SamplerSW::InsertStamped — unless the caller passes a
// positive `allowed_lateness`, in which case a stamp may run up to that
// many time units behind the file's running maximum (the bounded-
// lateness ingestion contract of core/reorder_buffer.h; rows beyond the
// bound are rejected with a line-numbered error).

#ifndef RL0_STREAM_CSV_H_
#define RL0_STREAM_CSV_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "rl0/geom/point.h"
#include "rl0/util/status.h"

namespace rl0 {

/// Parses points from CSV text.
Result<std::vector<Point>> ParseCsvPoints(std::istream& in);

/// Reads points from a CSV file.
Result<std::vector<Point>> ReadCsvPoints(const std::string& path);

/// Writes points as CSV ("%.17g" coordinates, comma-separated).
void WriteCsvPoints(const std::vector<Point>& points, std::ostream& out);

/// A parsed stamped stream: stamps[i] is the arrival time of points[i] —
/// the parallel-array feed format of the time-based pipeline
/// (ShardedSwSamplerPool::FeedStamped).
struct StampedCsv {
  std::vector<Point> points;
  std::vector<int64_t> stamps;
};

/// Parses a stamped stream from CSV text: leading integer stamp column,
/// then the coordinates. Rejects non-integer stamps with a line-numbered
/// error. `allowed_lateness` bounds how far a stamp may run behind the
/// file's running maximum: 0 (the default) demands non-decreasing
/// stamps; a positive bound admits disordered rows for the
/// bounded-lateness feed paths (FeedStampedLate) and rejects rows beyond
/// the bound with a line-numbered error naming it.
Result<StampedCsv> ParseCsvStampedPoints(std::istream& in,
                                         int64_t allowed_lateness = 0);

/// Reads a stamped stream from a CSV file.
Result<StampedCsv> ReadCsvStampedPoints(const std::string& path,
                                        int64_t allowed_lateness = 0);

/// Writes a stamped stream as CSV (stamp first, then "%.17g"
/// coordinates, comma-separated). Requires aligned arrays.
void WriteCsvStampedPoints(const std::vector<Point>& points,
                           const std::vector<int64_t>& stamps,
                           std::ostream& out);

}  // namespace rl0

#endif  // RL0_STREAM_CSV_H_
