#include "rl0/stream/neardup.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rl0/util/check.h"
#include "rl0/util/rng.h"

namespace rl0 {

double RescaleToUnitMinDistance(std::vector<Point>* points) {
  RL0_CHECK(points->size() >= 2);
  const double min_dist = MinPairwiseDistance(*points);
  RL0_CHECK(min_dist > 0.0 && std::isfinite(min_dist));
  const double scale = 1.0 / min_dist;
  for (Point& p : *points) p = p * scale;
  return scale;
}

NoisyDataset MakeNearDuplicates(const BaseDataset& base,
                                const NearDupOptions& options) {
  RL0_CHECK(base.dim >= 1);
  const size_t n = base.points.size();
  const size_t d = base.dim;
  Xoshiro256pp rng(SplitMix64(options.seed ^ 0x4E6F697365ULL));

  NoisyDataset out;
  out.name = base.name;
  if (options.distribution == DupDistribution::kPowerLaw) out.name += "-pl";
  out.dim = d;
  out.num_groups = n;

  // Step 1: rescale to unit minimum pairwise distance.
  std::vector<Point> centers = base.points;
  RescaleToUnitMinDistance(&centers);

  const double d15 = std::pow(static_cast<double>(d), 1.5);
  const double max_noise = options.noise_scale / d15;
  // Intra-group distances are < 2·max_noise; inter-group > 1 − 2·max_noise.
  out.alpha = 2.0 * max_noise;
  out.beta = 1.0 - 2.0 * max_noise;

  // Step 2: decide duplicate counts.
  std::vector<uint32_t> dup_count(n);
  if (options.distribution == DupDistribution::kUniform) {
    for (size_t i = 0; i < n; ++i) {
      dup_count[i] =
          1 + static_cast<uint32_t>(rng.NextBounded(options.max_dups));
    }
  } else {
    // Random ordering, then k = ⌈n / rank⌉ (rank is 1-based).
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    for (size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    for (size_t rank = 1; rank <= n; ++rank) {
      dup_count[order[rank - 1]] = static_cast<uint32_t>(
          std::ceil(static_cast<double>(n) / static_cast<double>(rank)));
    }
  }

  // Step 3: emit the original point plus its near-duplicates.
  for (size_t i = 0; i < n; ++i) {
    out.points.push_back(centers[i]);
    out.group_of.push_back(static_cast<uint32_t>(i));
    for (uint32_t c = 0; c < dup_count[i]; ++c) {
      Point z(d);
      double norm_sq = 0.0;
      for (size_t j = 0; j < d; ++j) {
        z[j] = rng.NextDouble();
        norm_sq += z[j] * z[j];
      }
      const double norm = std::sqrt(norm_sq);
      // Draw the target length from (0, max_noise); resample the direction
      // in the measure-zero case of an all-zero z.
      if (norm == 0.0) {
        --c;
        continue;
      }
      const double len = rng.NextDouble() * max_noise;
      out.points.push_back(centers[i] + z * (len / norm));
      out.group_of.push_back(static_cast<uint32_t>(i));
    }
  }

  // Step 4: shuffle the stream.
  if (options.shuffle) {
    for (size_t i = out.points.size(); i > 1; --i) {
      const size_t j = rng.NextBounded(i);
      std::swap(out.points[i - 1], out.points[j]);
      std::swap(out.group_of[i - 1], out.group_of[j]);
    }
  }
  return out;
}

}  // namespace rl0
