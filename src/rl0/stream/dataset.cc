#include "rl0/stream/dataset.h"

namespace rl0 {

Status NoisyDataset::Validate() const {
  if (points.size() != group_of.size()) {
    return Status::Internal("points/group_of size mismatch");
  }
  if (!(alpha > 0.0)) {
    return Status::Internal("alpha must be positive");
  }
  for (const Point& p : points) {
    if (p.dim() != dim) return Status::Internal("point dimension mismatch");
  }
  for (uint32_t g : group_of) {
    if (g >= num_groups) return Status::Internal("group label out of range");
  }
  return Status::OK();
}

RepresentativeStream ExtractRepresentatives(const NoisyDataset& dataset) {
  RepresentativeStream out;
  std::vector<bool> seen(dataset.num_groups, false);
  for (size_t i = 0; i < dataset.points.size(); ++i) {
    const uint32_t g = dataset.group_of[i];
    if (seen[g]) continue;
    seen[g] = true;
    out.points.push_back(dataset.points[i]);
    out.stream_index.push_back(i);
    out.group_of.push_back(g);
  }
  return out;
}

}  // namespace rl0
