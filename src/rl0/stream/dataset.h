// Dataset containers used by the experiment pipeline.
//
// A BaseDataset holds the "clean" points (one per real-world entity); a
// NoisyDataset is the stream actually fed to the samplers — every point is
// tagged with the ground-truth group it was generated from, which the
// benchmarks use to build empirical sampling distributions. Ground truth
// never leaks into the samplers themselves.

#ifndef RL0_STREAM_DATASET_H_
#define RL0_STREAM_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rl0/geom/point.h"
#include "rl0/util/status.h"

namespace rl0 {

/// A clean dataset: one point per entity.
struct BaseDataset {
  std::string name;
  size_t dim = 0;
  std::vector<Point> points;
};

/// A noisy stream: points in arrival order with ground-truth group labels.
struct NoisyDataset {
  std::string name;
  size_t dim = 0;
  /// Distance threshold α under which the stream was generated (intra-group
  /// distances are < alpha, inter-group distances are > beta).
  double alpha = 0.0;
  /// Inter-group separation lower bound β implied by the generation.
  double beta = 0.0;
  /// Number of groups (== number of base points).
  size_t num_groups = 0;
  /// The stream.
  std::vector<Point> points;
  /// Ground truth: group id of points[i].
  std::vector<uint32_t> group_of;

  /// Stream length m.
  size_t size() const { return points.size(); }

  /// Sanity-checks internal consistency (sizes, label range).
  Status Validate() const;
};

/// The subsequence of first-per-group points of `dataset`, preserving
/// arrival order, with original stream indices.
///
/// For the fixed-representative Algorithm 1, the evolution of
/// (Sacc, Srej, R) depends only on these points — every non-first point of
/// a candidate group is skipped, and non-first points of non-candidate
/// groups are ignored — so distribution experiments can replay just the
/// representatives (a ~50x speedup). Equivalence is asserted by
/// iw_sampler_test.ReplayEquivalence.
struct RepresentativeStream {
  std::vector<Point> points;
  std::vector<uint64_t> stream_index;  // position in the full stream
  std::vector<uint32_t> group_of;
};

/// Extracts the representative stream of `dataset`.
RepresentativeStream ExtractRepresentatives(const NoisyDataset& dataset);

}  // namespace rl0

#endif  // RL0_STREAM_DATASET_H_
