#include "rl0/stream/generators.h"

#include <cmath>

#include "rl0/util/check.h"
#include "rl0/util/rng.h"

namespace rl0 {

BaseDataset RandomUniform(size_t n, size_t dim, uint64_t seed,
                          const std::string& name) {
  BaseDataset out;
  out.name = name;
  out.dim = dim;
  out.points.reserve(n);
  Xoshiro256pp rng(SplitMix64(seed ^ 0x52616E64ULL));
  for (size_t i = 0; i < n; ++i) {
    Point p(dim);
    for (size_t j = 0; j < dim; ++j) p[j] = rng.NextDouble();
    out.points.push_back(std::move(p));
  }
  return out;
}

BaseDataset Rand5(uint64_t seed) { return RandomUniform(500, 5, seed, "Rand5"); }

BaseDataset Rand20(uint64_t seed) {
  return RandomUniform(500, 20, seed, "Rand20");
}

BaseDataset YachtLike(uint64_t seed) {
  // 308 points in R^7. The original columns mix a handful of discrete hull
  // design values with continuous measurements of very different scales;
  // we mimic that: coordinates 0-4 take values from small discrete grids,
  // coordinate 5 is a continuous operating parameter, coordinate 6 is a
  // heavy-tailed response variable.
  BaseDataset out;
  out.name = "Yacht";
  out.dim = 7;
  Xoshiro256pp rng(SplitMix64(seed ^ 0x59616368ULL));
  const double grids[5][6] = {
      {-5.0, -2.3, 0.0, 2.3, 5.0, 0.0},       // longitudinal position
      {0.53, 0.57, 0.6, 0.565, 0.546, 0.574}, // prismatic coefficient
      {4.34, 4.77, 5.1, 5.14, 4.78, 4.97},    // length-displacement
      {2.81, 3.32, 3.75, 3.51, 3.15, 3.99},   // beam-draught
      {2.73, 3.15, 3.51, 3.32, 2.76, 3.64},   // length-beam
  };
  out.points.reserve(308);
  for (size_t i = 0; i < 308; ++i) {
    Point p(7);
    for (size_t j = 0; j < 5; ++j) {
      p[j] = grids[j][rng.NextBounded(6)] + 0.01 * rng.NextGaussian();
    }
    p[5] = 0.125 + 0.025 * static_cast<double>(rng.NextBounded(14));
    const double froude = p[5];
    p[6] = std::exp(8.0 * froude) * (0.5 + rng.NextDouble());
    out.points.push_back(std::move(p));
  }
  return out;
}

BaseDataset SeedsLike(uint64_t seed) {
  // 210 points in R^8: three clusters of 70 ("Kama", "Rosa", "Canadian"),
  // Gaussian around variety-specific means with per-coordinate spreads
  // loosely matching the original measurement ranges.
  BaseDataset out;
  out.name = "Seeds";
  out.dim = 8;
  Xoshiro256pp rng(SplitMix64(seed ^ 0x53656564ULL));
  const double means[3][8] = {
      {14.3, 14.3, 0.880, 5.51, 3.24, 2.67, 5.09, 1.0},
      {18.3, 16.1, 0.884, 6.15, 3.68, 3.60, 6.02, 2.0},
      {11.9, 13.2, 0.849, 5.23, 2.85, 4.79, 5.12, 3.0},
  };
  const double spread[8] = {0.9, 0.5, 0.015, 0.2, 0.15, 1.0, 0.2, 0.05};
  out.points.reserve(210);
  for (size_t variety = 0; variety < 3; ++variety) {
    for (size_t i = 0; i < 70; ++i) {
      Point p(8);
      for (size_t j = 0; j < 8; ++j) {
        p[j] = means[variety][j] + spread[j] * rng.NextGaussian();
      }
      out.points.push_back(std::move(p));
    }
  }
  return out;
}

BaseDataset SeparatedCenters(size_t n, size_t dim, double beta,
                             uint64_t seed) {
  RL0_CHECK(beta > 0.0 && dim >= 1 && n >= 1);
  // Distinct lattice points scaled by (1+ε)·β: minimum pairwise distance of
  // distinct lattice points is one lattice step, so scaled distance > β.
  BaseDataset out;
  out.name = "SeparatedCenters";
  out.dim = dim;
  const double step = beta * 1.125;
  const uint64_t span =
      std::max<uint64_t>(4, static_cast<uint64_t>(
                                std::ceil(std::pow(4.0 * n, 1.0 / dim))));
  Xoshiro256pp rng(SplitMix64(seed ^ 0x536570ULL));
  std::vector<uint64_t> used;
  out.points.reserve(n);
  while (out.points.size() < n) {
    std::vector<int64_t> coord(dim);
    uint64_t code = 0;
    for (size_t j = 0; j < dim; ++j) {
      coord[j] = static_cast<int64_t>(rng.NextBounded(span));
      code = code * span + static_cast<uint64_t>(coord[j]);
    }
    bool dup = false;
    for (uint64_t c : used) {
      if (c == code) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    used.push_back(code);
    Point p(dim);
    for (size_t j = 0; j < dim; ++j) {
      p[j] = static_cast<double>(coord[j]) * step;
    }
    out.points.push_back(std::move(p));
  }
  return out;
}

BaseDataset OverlappingChains(size_t n, size_t dim, double alpha,
                              uint64_t seed) {
  RL0_CHECK(dim >= 1 && alpha > 0.0);
  // Chains of anchors spaced 1.4·α apart along axis 0: consecutive anchors
  // are farther than α but closer than 2α, so the dataset violates
  // well-separation and admits multiple minimum-cardinality partitions.
  BaseDataset out;
  out.name = "OverlappingChains";
  out.dim = dim;
  Xoshiro256pp rng(SplitMix64(seed ^ 0x436861696EULL));
  const size_t chain_len = 8;
  const double spacing = 1.4 * alpha;
  const double chain_gap = 10.0 * alpha * static_cast<double>(chain_len);
  size_t produced = 0;
  size_t chain = 0;
  while (produced < n) {
    Point base(dim);
    base[0] = static_cast<double>(chain) * chain_gap;
    for (size_t j = 1; j < dim; ++j) {
      base[j] = chain_gap * rng.NextDouble();
    }
    for (size_t i = 0; i < chain_len && produced < n; ++i, ++produced) {
      Point p = base;
      p[0] += spacing * static_cast<double>(i);
      // Small jitter keeps points in general position.
      for (size_t j = 0; j < dim; ++j) {
        p[j] += 0.05 * alpha * (rng.NextDouble() - 0.5);
      }
      out.points.push_back(std::move(p));
    }
    ++chain;
  }
  return out;
}

}  // namespace rl0
