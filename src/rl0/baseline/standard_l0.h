// The classical (noiseless) ℓ0-sampler baseline.
//
// The folklore min-rank sampler: assign every *distinct item* a random rank
// via a hash of its exact representation and keep the item with the minimum
// rank. On clean data this returns a uniform distinct element in O(1)
// words. On noisy data each near-duplicate hashes to a different rank, so
// the sampler returns a uniform random *point* among distinct points —
// i.e. it is biased toward groups with many near-duplicates, which is
// exactly the failure mode the paper's introduction motivates against
// (and bench_baseline_bias demonstrates).

#ifndef RL0_BASELINE_STANDARD_L0_H_
#define RL0_BASELINE_STANDARD_L0_H_

#include <cstdint>
#include <optional>

#include "rl0/core/sample.h"
#include "rl0/geom/point.h"

namespace rl0 {

/// Min-rank ℓ0-sampler over exact point identities.
class StandardL0Sampler {
 public:
  /// Creates a sampler with hash randomness derived from `seed`.
  explicit StandardL0Sampler(uint64_t seed);

  /// Processes the next stream point.
  void Insert(const Point& p);

  /// The current sample (the minimum-rank distinct item), if any.
  std::optional<SampleItem> Sample() const;

  /// Points processed so far.
  uint64_t points_processed() const { return points_processed_; }

 private:
  uint64_t HashPoint(const Point& p) const;

  uint64_t seed_;
  uint64_t best_rank_;
  bool has_sample_ = false;
  SampleItem best_;
  uint64_t points_processed_ = 0;
};

}  // namespace rl0

#endif  // RL0_BASELINE_STANDARD_L0_H_
