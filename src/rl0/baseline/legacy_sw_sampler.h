// The pre-refactor sliding-window samplers, preserved verbatim as a
// baseline — the same role baseline/legacy_iw_sampler.h plays for the
// infinite-window sampler.
//
// LegacySwFixedRateSampler keeps its groups in the original node-based
// containers (std::unordered_map<id, StoredGroup>, an unordered_multimap
// cell→id, and a std::map ordered by (stamp, id) for expiry);
// LegacySwSampler is the original Algorithm-3 hierarchy on top of it,
// with split promotion through materialized GroupRecords. The refactored
// core (core/sw_group_table.h flat index, arena-internal PromoteInto)
// must make bit-identical sampling decisions; the differential tests in
// tests/sw_pipeline_determinism_test.cc and tests/fuzz_robustness_test.cc
// pin that, and bench/bench_window.cc measures the layout win.
//
// Do not extend this code: it exists to stay equal to the seed behaviour.

#ifndef RL0_BASELINE_LEGACY_SW_SAMPLER_H_
#define RL0_BASELINE_LEGACY_SW_SAMPLER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rl0/core/context.h"
#include "rl0/core/sample.h"
#include "rl0/core/sw_fixed_sampler.h"  // GroupRecord, InsertOutcome
#include "rl0/core/windowed_reservoir.h"
#include "rl0/geom/point_store.h"
#include "rl0/util/space.h"
#include "rl0/util/span.h"
#include "rl0/util/status.h"

namespace rl0 {

/// Fixed-rate sliding-window sampler (Algorithm 2), node-based storage.
class LegacySwFixedRateSampler {
 public:
  LegacySwFixedRateSampler(const SamplerContext* ctx, uint32_t level,
                           int64_t window, uint64_t* id_counter,
                           PointStore* store = nullptr);

  static Result<std::unique_ptr<LegacySwFixedRateSampler>> CreateStandalone(
      const SamplerOptions& options, uint32_t level, int64_t window);

  InsertOutcome InsertPrepared(const PreparedPoint& p);
  bool Insert(const PreparedPoint& p) {
    return InsertPrepared(p) != InsertOutcome::kIgnored;
  }
  bool Insert(const Point& p, int64_t stamp);

  void Expire(int64_t now);
  void Reset();
  std::optional<SampleItem> Sample(int64_t now, Xoshiro256pp* rng);

  size_t accept_size() const { return accept_size_; }
  size_t reject_size() const { return groups_.size() - accept_size_; }
  size_t group_count() const { return groups_.size(); }
  uint32_t level() const { return level_; }
  int64_t window() const { return window_; }
  const SamplerContext& context() const { return *ctx_; }

  void AcceptedLatestPoints(std::vector<SampleItem>* out) const;
  void AcceptedGroupSamples(int64_t now, std::vector<SampleItem>* out);
  void SnapshotGroups(std::vector<GroupRecord>* out) const;
  bool SplitPromote(std::vector<GroupRecord>* promoted);
  void MergeFrom(std::vector<GroupRecord>&& groups);
  size_t SpaceWords() const;

 private:
  struct StoredGroup {
    uint64_t id = 0;
    PointRef rep;
    uint64_t rep_index = 0;
    uint64_t rep_cell = 0;
    bool accepted = false;
    PointRef latest;
    int64_t latest_stamp = 0;
    uint64_t latest_index = 0;
    WindowedReservoir reservoir;
  };

  void IndexGroup(const StoredGroup& g);
  void UnindexGroup(const StoredGroup& g);
  void ReleaseGroup(StoredGroup* g);
  GroupRecord Materialize(const StoredGroup& g) const;
  void Adopt(GroupRecord&& g);
  uint64_t FindCandidate(PointView p,
                         const std::vector<uint64_t>& adj_keys) const;
  size_t GroupWords() const;

  const SamplerContext* ctx_;
  std::unique_ptr<SamplerContext> owned_ctx_;
  PointStore* store_;
  std::unique_ptr<PointStore> owned_store_;
  uint32_t level_;
  int64_t window_;
  uint64_t* id_counter_;
  uint64_t owned_id_counter_ = 0;
  uint64_t reseed_epoch_ = 0;

  size_t accept_size_ = 0;
  std::unordered_map<uint64_t, StoredGroup> groups_;
  std::unordered_multimap<uint64_t, uint64_t> cell_to_group_;
  std::map<std::pair<int64_t, uint64_t>, uint64_t> by_stamp_;

  mutable std::vector<uint64_t> adj_scratch_;
};

/// The original hierarchical sliding-window sampler (Algorithms 3–5) over
/// the node-based per-level structure.
class LegacySwSampler {
 public:
  static Result<LegacySwSampler> Create(const SamplerOptions& options,
                                        int64_t window);

  void Insert(const Point& p, int64_t stamp);
  void Insert(const Point& p);
  void InsertBatch(Span<const Point> points);

  std::optional<SampleItem> Sample(int64_t now, Xoshiro256pp* rng);

  size_t num_levels() const { return levels_.size(); }
  const LegacySwFixedRateSampler& level(size_t i) const { return *levels_[i]; }
  int64_t window() const { return window_; }
  uint64_t points_processed() const { return points_processed_; }
  int64_t latest_stamp() const { return latest_stamp_; }
  uint64_t error_count() const { return error_count_; }
  uint64_t stuck_split_count() const { return stuck_split_count_; }

  size_t SpaceWords() const;

 private:
  LegacySwSampler(const SamplerOptions& options, int64_t window);

  void Cascade(size_t start_level);
  void ExpireAll(int64_t now);

  std::unique_ptr<SamplerContext> ctx_;
  std::unique_ptr<uint64_t> id_counter_;
  std::unique_ptr<PointStore> store_;
  std::vector<std::unique_ptr<LegacySwFixedRateSampler>> levels_;
  int64_t window_;
  size_t accept_cap_;
  uint64_t points_processed_ = 0;
  int64_t latest_stamp_ = 0;
  uint64_t error_count_ = 0;
  uint64_t stuck_split_count_ = 0;
  std::vector<uint64_t> adj_scratch_;
};

}  // namespace rl0

#endif  // RL0_BASELINE_LEGACY_SW_SAMPLER_H_
