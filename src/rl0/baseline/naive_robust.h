// Exact (Ω(n)-space) robust samplers — ground truth references.
//
// NaiveRobustSampler stores the first point of every group (found by a
// linear scan over stored representatives) and samples uniformly among
// them. It is exactly uniform over groups of a well-separated dataset and
// provides the accuracy reference for RobustL0SamplerIW at a Θ(n) space
// cost the paper's algorithm avoids.
//
// NaiveWindowSampler keeps every point of the current window and derives
// the group representatives on demand — the sliding-window ground truth.

#ifndef RL0_BASELINE_NAIVE_ROBUST_H_
#define RL0_BASELINE_NAIVE_ROBUST_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "rl0/core/sample.h"
#include "rl0/geom/point.h"
#include "rl0/util/rng.h"

namespace rl0 {

/// Exact robust ℓ0-sampler for the infinite window (Θ(n) space).
class NaiveRobustSampler {
 public:
  /// Creates a sampler with near-duplicate threshold `alpha`.
  explicit NaiveRobustSampler(double alpha);

  /// Processes the next stream point.
  void Insert(const Point& p);

  /// A uniformly random group representative.
  std::optional<SampleItem> Sample(Xoshiro256pp* rng) const;

  /// Current number of groups seen.
  size_t num_groups() const { return reps_.size(); }

  /// The representatives in arrival order.
  const std::vector<SampleItem>& representatives() const { return reps_; }

 private:
  double alpha_;
  uint64_t points_processed_ = 0;
  std::vector<SampleItem> reps_;
};

/// Exact robust ℓ0-sampler for sliding windows (stores the whole window).
class NaiveWindowSampler {
 public:
  /// `window` is the width (points for sequence-based stamps, time units
  /// for time-based stamps); `alpha` the near-duplicate threshold.
  NaiveWindowSampler(double alpha, int64_t window);

  /// Processes a stamped point; stamps must be non-decreasing.
  void Insert(const Point& p, int64_t stamp);

  /// Uniform sample over groups with a point alive at `now`
  /// (stamps in (now - window, now]). Representative = first alive point
  /// of each group.
  std::optional<SampleItem> Sample(int64_t now, Xoshiro256pp* rng) const;

  /// Number of groups alive at `now`.
  size_t GroupsAlive(int64_t now) const;

 private:
  struct Stored {
    Point point;
    int64_t stamp;
    uint64_t stream_index;
  };

  std::vector<SampleItem> AliveRepresentatives(int64_t now) const;

  double alpha_;
  int64_t window_;
  uint64_t points_processed_ = 0;
  std::deque<Stored> buffer_;
};

}  // namespace rl0

#endif  // RL0_BASELINE_NAIVE_ROBUST_H_
