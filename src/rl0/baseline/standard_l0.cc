#include "rl0/baseline/standard_l0.h"

#include <cstring>
#include <limits>

#include "rl0/util/rng.h"

namespace rl0 {

StandardL0Sampler::StandardL0Sampler(uint64_t seed)
    : seed_(SplitMix64(seed ^ 0x4C304D696EULL)),
      best_rank_(std::numeric_limits<uint64_t>::max()) {}

uint64_t StandardL0Sampler::HashPoint(const Point& p) const {
  // Hash the exact bit pattern of the coordinates: identical points (true
  // duplicates) collide, near-duplicates do not — the crux of the baseline.
  uint64_t h = seed_;
  for (double c : p.coords()) {
    uint64_t bits;
    std::memcpy(&bits, &c, sizeof(bits));
    h = SplitMix64(h ^ bits);
  }
  return h;
}

void StandardL0Sampler::Insert(const Point& p) {
  const uint64_t index = points_processed_++;
  const uint64_t rank = HashPoint(p);
  // Ties (true duplicates) keep the first arrival; distinct items get
  // distinct ranks with probability 1 - 2^-64 per pair.
  if (rank < best_rank_) {
    best_rank_ = rank;
    best_ = SampleItem{p, index};
    has_sample_ = true;
  }
}

std::optional<SampleItem> StandardL0Sampler::Sample() const {
  if (!has_sample_) return std::nullopt;
  return best_;
}

}  // namespace rl0
