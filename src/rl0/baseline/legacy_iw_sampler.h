// The pre-refactor, map-based implementation of Algorithm 1 — kept as a
// reference baseline.
//
// This is a faithful transcription of the original RobustL0SamplerIW
// ingestion path: one heap-allocated Point per representative, an
// std::unordered_map<id, Rep> for storage and an
// std::unordered_multimap<cell, id> for the cell index. It exists for two
// purposes:
//
//   1. Differential testing — the arena/flat-index sampler must make
//      bit-identical accept/reject decisions for any fixed seed
//      (tests/differential_test.cc pins AcceptedRepresentatives and
//      RejectedRepresentatives against this implementation).
//   2. Benchmarking — bench/bench_ingest.cc measures the ingestion
//      speedup of the contiguous layout against this pointer-chasing one.
//
// Only the fixed-representative insert path is implemented (the
// Section 2.3 reservoir variant does not change which representatives are
// stored, so the decision trajectory is already fully covered).

#ifndef RL0_BASELINE_LEGACY_IW_SAMPLER_H_
#define RL0_BASELINE_LEGACY_IW_SAMPLER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rl0/core/options.h"
#include "rl0/core/sample.h"
#include "rl0/geom/point.h"
#include "rl0/grid/random_grid.h"
#include "rl0/hashing/cell_hasher.h"
#include "rl0/util/status.h"

namespace rl0 {

/// Reference map-based infinite-window sampler (pre-refactor layout).
class LegacyL0SamplerIW {
 public:
  /// Validates `options` and constructs a sampler. The reservoir variant
  /// is not supported here (see header comment).
  static Result<LegacyL0SamplerIW> Create(const SamplerOptions& options);

  /// Processes the next stream point (original per-point path).
  void Insert(const Point& p);

  /// Number of accepted representatives |Sacc|.
  size_t accept_size() const { return accept_size_; }
  /// Number of rejected representatives |Srej|.
  size_t reject_size() const { return reps_.size() - accept_size_; }
  /// Current level ℓ.
  uint32_t level() const { return level_; }
  /// Total points processed.
  uint64_t points_processed() const { return points_processed_; }

  /// Accepted representatives in insertion order.
  std::vector<SampleItem> AcceptedRepresentatives() const;
  /// Rejected representatives in insertion order.
  std::vector<SampleItem> RejectedRepresentatives() const;

 private:
  struct Rep {
    Point point;
    uint64_t stream_index;
    uint64_t cell_key;
    bool accepted;
  };

  LegacyL0SamplerIW(const SamplerOptions& options, double side);

  void LegacyAdjacentCells(const Point& p,
                           std::vector<uint64_t>* out) const;
  uint64_t FindCandidate(const Point& p,
                         const std::vector<uint64_t>& adj_keys) const;
  void Refilter();

  SamplerOptions options_;
  RandomGrid grid_;
  CellHasher hasher_;
  uint32_t level_ = 0;
  size_t accept_cap_;
  size_t accept_size_ = 0;
  uint64_t points_processed_ = 0;
  uint64_t next_rep_id_ = 0;

  std::unordered_map<uint64_t, Rep> reps_;
  std::unordered_multimap<uint64_t, uint64_t> cell_to_rep_;
  mutable std::vector<uint64_t> adj_scratch_;
};

}  // namespace rl0

#endif  // RL0_BASELINE_LEGACY_IW_SAMPLER_H_
