// Offline partitioning baselines (ground truth for F0 and Section 3).
//
// NaturalPartition computes the connected components of the "distance ≤ α"
// graph — for a well-separated dataset this *is* the natural partition of
// Definition 1.3. GreedyPartition implements Definition 3.2: repeatedly
// pick the next unassigned point p (in the given order) and carve out
// Ball(p, α) ∩ S. Lemma 3.3 proves |greedy| = Θ(|minimum partition|);
// tests verify n_greedy ≤ n_natural on well-separated data and the Θ(1)
// spread across random orders on general data.
//
// Both are quadratic-time reference implementations intended for test- and
// bench-sized inputs, not for streams.

#ifndef RL0_BASELINE_EXACT_PARTITION_H_
#define RL0_BASELINE_EXACT_PARTITION_H_

#include <cstdint>
#include <vector>

#include "rl0/geom/point.h"

namespace rl0 {

/// A partition of point indices into groups.
struct Partition {
  /// group id per point index.
  std::vector<uint32_t> group_of;
  /// Number of groups.
  size_t num_groups = 0;
  /// Index of the first point of each group (by the order partitioning ran).
  std::vector<size_t> representative_of;
};

/// Connected components of the distance-≤-alpha graph (union-find).
/// Equals the natural partition for well-separated data.
Partition NaturalPartition(const std::vector<Point>& points, double alpha);

/// Definition 3.2 greedy partition, processing points in index order.
Partition GreedyPartition(const std::vector<Point>& points, double alpha);

/// Exact robust F0 of a well-separated dataset (== NaturalPartition size).
size_t ExactF0WellSeparated(const std::vector<Point>& points, double alpha);

/// Ground truth for sequence-stamped sliding windows (point i carries
/// stamp i; the window at `now` covers stream indices in
/// (now − window, now]): the natural partition of the whole stream plus
/// the window's live-group view.
struct WindowedGroupTruth {
  static constexpr size_t kNoIndex = ~size_t{0};

  /// NaturalPartition group id per stream index (whole stream).
  std::vector<uint32_t> group_of;
  /// Number of groups of the whole stream.
  size_t num_groups = 0;
  /// Per group id: the latest stream index inside the window, or
  /// kNoIndex for groups with no point in the window (expired).
  std::vector<size_t> latest_in_window;
  /// Group ids with at least one point in the window, ascending.
  std::vector<uint32_t> live_groups;

  bool IsLive(uint32_t group) const {
    return latest_in_window[group] != kNoIndex;
  }
};

/// Computes the exact windowed partition view at time `now` (quadratic in
/// |points| through NaturalPartition; test/bench sized inputs only).
WindowedGroupTruth ExactWindowGroups(const std::vector<Point>& points,
                                     double alpha, int64_t window,
                                     int64_t now);

/// True iff the dataset is (alpha, beta)-sparse: every pairwise distance is
/// either ≤ alpha or > beta.
bool IsSparse(const std::vector<Point>& points, double alpha, double beta);

}  // namespace rl0

#endif  // RL0_BASELINE_EXACT_PARTITION_H_
