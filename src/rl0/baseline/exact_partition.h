// Offline partitioning baselines (ground truth for F0 and Section 3).
//
// NaturalPartition computes the connected components of the "distance ≤ α"
// graph — for a well-separated dataset this *is* the natural partition of
// Definition 1.3. GreedyPartition implements Definition 3.2: repeatedly
// pick the next unassigned point p (in the given order) and carve out
// Ball(p, α) ∩ S. Lemma 3.3 proves |greedy| = Θ(|minimum partition|);
// tests verify n_greedy ≤ n_natural on well-separated data and the Θ(1)
// spread across random orders on general data.
//
// Both are quadratic-time reference implementations intended for test- and
// bench-sized inputs, not for streams.

#ifndef RL0_BASELINE_EXACT_PARTITION_H_
#define RL0_BASELINE_EXACT_PARTITION_H_

#include <cstdint>
#include <vector>

#include "rl0/geom/point.h"

namespace rl0 {

/// A partition of point indices into groups.
struct Partition {
  /// group id per point index.
  std::vector<uint32_t> group_of;
  /// Number of groups.
  size_t num_groups = 0;
  /// Index of the first point of each group (by the order partitioning ran).
  std::vector<size_t> representative_of;
};

/// Connected components of the distance-≤-alpha graph (union-find).
/// Equals the natural partition for well-separated data.
Partition NaturalPartition(const std::vector<Point>& points, double alpha);

/// Definition 3.2 greedy partition, processing points in index order.
Partition GreedyPartition(const std::vector<Point>& points, double alpha);

/// Exact robust F0 of a well-separated dataset (== NaturalPartition size).
size_t ExactF0WellSeparated(const std::vector<Point>& points, double alpha);

/// True iff the dataset is (alpha, beta)-sparse: every pairwise distance is
/// either ≤ alpha or > beta.
bool IsSparse(const std::vector<Point>& points, double alpha, double beta);

}  // namespace rl0

#endif  // RL0_BASELINE_EXACT_PARTITION_H_
