#include "rl0/baseline/exact_partition.h"

#include <numeric>

#include "rl0/util/check.h"

namespace rl0 {

namespace {

/// Plain union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

}  // namespace

Partition NaturalPartition(const std::vector<Point>& points, double alpha) {
  RL0_CHECK(alpha > 0.0);
  const size_t n = points.size();
  UnionFind uf(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (WithinDistance(points[i], points[j], alpha)) uf.Union(i, j);
    }
  }
  Partition part;
  part.group_of.assign(n, 0);
  std::vector<int64_t> root_to_group(n, -1);
  for (size_t i = 0; i < n; ++i) {
    const size_t root = uf.Find(i);
    if (root_to_group[root] < 0) {
      root_to_group[root] = static_cast<int64_t>(part.num_groups++);
      part.representative_of.push_back(i);
    }
    part.group_of[i] = static_cast<uint32_t>(root_to_group[root]);
  }
  return part;
}

Partition GreedyPartition(const std::vector<Point>& points, double alpha) {
  RL0_CHECK(alpha > 0.0);
  const size_t n = points.size();
  Partition part;
  part.group_of.assign(n, 0);
  std::vector<bool> assigned(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (assigned[i]) continue;
    const uint32_t g = static_cast<uint32_t>(part.num_groups++);
    part.representative_of.push_back(i);
    // Carve out Ball(points[i], alpha) ∩ S among unassigned points.
    for (size_t j = i; j < n; ++j) {
      if (!assigned[j] && WithinDistance(points[i], points[j], alpha)) {
        assigned[j] = true;
        part.group_of[j] = g;
      }
    }
  }
  return part;
}

size_t ExactF0WellSeparated(const std::vector<Point>& points, double alpha) {
  return NaturalPartition(points, alpha).num_groups;
}

WindowedGroupTruth ExactWindowGroups(const std::vector<Point>& points,
                                     double alpha, int64_t window,
                                     int64_t now) {
  const Partition part = NaturalPartition(points, alpha);
  WindowedGroupTruth truth;
  truth.group_of = part.group_of;
  truth.num_groups = part.num_groups;
  truth.latest_in_window.assign(part.num_groups,
                                WindowedGroupTruth::kNoIndex);
  const int64_t lo = now - window;  // exclusive
  const int64_t hi = now;           // inclusive
  for (size_t i = 0; i < points.size(); ++i) {
    const int64_t stamp = static_cast<int64_t>(i);
    if (stamp <= lo || stamp > hi) continue;
    size_t& latest = truth.latest_in_window[part.group_of[i]];
    if (latest == WindowedGroupTruth::kNoIndex || i > latest) latest = i;
  }
  for (uint32_t g = 0; g < truth.num_groups; ++g) {
    if (truth.IsLive(g)) truth.live_groups.push_back(g);
  }
  return truth;
}

bool IsSparse(const std::vector<Point>& points, double alpha, double beta) {
  RL0_CHECK(beta >= alpha);
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      const double d = Distance(points[i], points[j]);
      if (d > alpha && d <= beta) return false;
    }
  }
  return true;
}

}  // namespace rl0
