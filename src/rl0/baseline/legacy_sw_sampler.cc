// Pre-refactor sliding-window sampler implementation, kept byte-for-byte
// equivalent in behaviour to the seed code (see header).

#include "rl0/baseline/legacy_sw_sampler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rl0/util/bits.h"
#include "rl0/util/check.h"

namespace rl0 {

namespace {
constexpr uint64_t kNoGroup = std::numeric_limits<uint64_t>::max();
}  // namespace

LegacySwFixedRateSampler::LegacySwFixedRateSampler(const SamplerContext* ctx,
                                                   uint32_t level,
                                                   int64_t window,
                                                   uint64_t* id_counter,
                                                   PointStore* store)
    : ctx_(ctx), store_(store), level_(level), window_(window),
      id_counter_(id_counter) {
  RL0_CHECK(ctx != nullptr);
  RL0_CHECK(window > 0);
  RL0_CHECK(level <= CellHasher::kMaxLevel);
  if (id_counter_ == nullptr) id_counter_ = &owned_id_counter_;
  if (store_ == nullptr) {
    owned_store_ = std::make_unique<PointStore>(ctx_->options.dim);
    store_ = owned_store_.get();
  }
}

Result<std::unique_ptr<LegacySwFixedRateSampler>>
LegacySwFixedRateSampler::CreateStandalone(const SamplerOptions& options,
                                           uint32_t level, int64_t window) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  if (level > CellHasher::kMaxLevel) {
    return Status::InvalidArgument("level exceeds CellHasher::kMaxLevel");
  }
  auto ctx = std::make_unique<SamplerContext>(options);
  auto sampler = std::make_unique<LegacySwFixedRateSampler>(
      ctx.get(), level, window, nullptr);
  sampler->owned_ctx_ = std::move(ctx);
  return sampler;
}

size_t LegacySwFixedRateSampler::GroupWords() const {
  return GroupArenaWords(ctx_->options.dim);
}

void LegacySwFixedRateSampler::IndexGroup(const StoredGroup& g) {
  cell_to_group_.emplace(g.rep_cell, g.id);
  by_stamp_.emplace(std::make_pair(g.latest_stamp, g.id), g.id);
}

void LegacySwFixedRateSampler::UnindexGroup(const StoredGroup& g) {
  auto [it, end] = cell_to_group_.equal_range(g.rep_cell);
  for (; it != end; ++it) {
    if (it->second == g.id) {
      cell_to_group_.erase(it);
      break;
    }
  }
  by_stamp_.erase(std::make_pair(g.latest_stamp, g.id));
}

void LegacySwFixedRateSampler::ReleaseGroup(StoredGroup* g) {
  store_->Release(g->rep);
  store_->Release(g->latest);
  g->reservoir.ReleaseAll();
}

GroupRecord LegacySwFixedRateSampler::Materialize(
    const StoredGroup& g) const {
  GroupRecord out;
  out.id = g.id;
  out.rep = store_->View(g.rep).Materialize();
  out.rep_index = g.rep_index;
  out.rep_cell = g.rep_cell;
  out.accepted = g.accepted;
  out.latest = store_->View(g.latest).Materialize();
  out.latest_stamp = g.latest_stamp;
  out.latest_index = g.latest_index;
  if (ctx_->options.random_representative) {
    out.reservoir.reserve(g.reservoir.size());
    for (const WindowedReservoir::Candidate& c : g.reservoir.candidates()) {
      out.reservoir.push_back(WindowedReservoir::RestoredCandidate{
          c.priority, c.stamp, g.reservoir.CandidatePoint(c),
          c.stream_index});
    }
  }
  return out;
}

void LegacySwFixedRateSampler::Adopt(GroupRecord&& in) {
  StoredGroup g;
  g.id = in.id;
  g.rep = store_->Add(in.rep);
  g.rep_index = in.rep_index;
  g.rep_cell = in.rep_cell;
  g.accepted = in.accepted;
  g.latest = store_->Add(in.latest);
  g.latest_stamp = in.latest_stamp;
  g.latest_index = in.latest_index;
  if (ctx_->options.random_representative) {
    const uint64_t reseed =
        ctx_->options.seed ^ (g.id * 0x9E3779B97F4A7C15ULL) ^
        SplitMix64(++reseed_epoch_);
    g.reservoir.RestoreState(window_, reseed, store_, in.reservoir);
  }
  if (g.accepted) ++accept_size_;
  IndexGroup(g);
  const uint64_t id = g.id;
  groups_.emplace(id, std::move(g));
}

uint64_t LegacySwFixedRateSampler::FindCandidate(
    PointView p, const std::vector<uint64_t>& adj_keys) const {
  for (uint64_t key : adj_keys) {
    auto [it, end] = cell_to_group_.equal_range(key);
    for (; it != end; ++it) {
      const StoredGroup& g = groups_.at(it->second);
      if (MetricWithinDistance(store_->View(g.rep), p, ctx_->options.alpha,
                               ctx_->options.metric)) {
        return it->second;
      }
    }
  }
  return kNoGroup;
}

InsertOutcome LegacySwFixedRateSampler::InsertPrepared(
    const PreparedPoint& p) {
  Expire(p.stamp);

  const uint64_t candidate = FindCandidate(*p.point, *p.adj_keys);
  if (candidate != kNoGroup) {
    StoredGroup& g = groups_.at(candidate);
    by_stamp_.erase(std::make_pair(g.latest_stamp, g.id));
    store_->Write(g.latest, *p.point);
    g.latest_stamp = p.stamp;
    g.latest_index = p.stream_index;
    by_stamp_.emplace(std::make_pair(g.latest_stamp, g.id), g.id);
    if (ctx_->options.random_representative) {
      g.reservoir.Insert(*p.point, p.stamp, p.stream_index);
    }
    return g.accepted ? InsertOutcome::kAccepted : InsertOutcome::kRejected;
  }

  const bool accepted = ctx_->hasher.SampledAtLevel(p.cell_key, level_);
  bool rejected = false;
  if (!accepted) {
    for (uint64_t key : *p.adj_keys) {
      if (ctx_->hasher.SampledAtLevel(key, level_)) {
        rejected = true;
        break;
      }
    }
    if (!rejected) return InsertOutcome::kIgnored;
  }

  StoredGroup g;
  g.id = (*id_counter_)++;
  g.rep = store_->Add(*p.point);
  g.rep_index = p.stream_index;
  g.rep_cell = p.cell_key;
  g.accepted = accepted;
  g.latest = store_->Add(*p.point);
  g.latest_stamp = p.stamp;
  g.latest_index = p.stream_index;
  if (ctx_->options.random_representative) {
    g.reservoir =
        WindowedReservoir(window_, ctx_->options.seed ^ g.id, store_);
    g.reservoir.Insert(*p.point, p.stamp, p.stream_index);
  }
  if (accepted) ++accept_size_;
  IndexGroup(g);
  const uint64_t id = g.id;
  groups_.emplace(id, std::move(g));
  return accepted ? InsertOutcome::kAccepted : InsertOutcome::kRejected;
}

bool LegacySwFixedRateSampler::Insert(const Point& p, int64_t stamp) {
  RL0_DCHECK(p.dim() == ctx_->options.dim);
  ctx_->grid.AdjacentCells(p, ctx_->options.alpha, &adj_scratch_);
  PreparedPoint prep;
  prep.point = &p;
  prep.stamp = stamp;
  prep.stream_index = static_cast<uint64_t>(stamp);
  prep.cell_key = ctx_->grid.CellKeyOf(p);
  prep.adj_keys = &adj_scratch_;
  return Insert(prep);
}

void LegacySwFixedRateSampler::Expire(int64_t now) {
  const int64_t horizon = now - window_;
  while (!by_stamp_.empty()) {
    const auto it = by_stamp_.begin();
    if (it->first.first > horizon) break;
    const uint64_t id = it->second;
    auto git = groups_.find(id);
    RL0_DCHECK(git != groups_.end());
    if (git->second.accepted) --accept_size_;
    UnindexGroup(git->second);
    ReleaseGroup(&git->second);
    groups_.erase(git);
  }
}

void LegacySwFixedRateSampler::Reset() {
  for (auto& [id, g] : groups_) ReleaseGroup(&g);
  groups_.clear();
  cell_to_group_.clear();
  by_stamp_.clear();
  accept_size_ = 0;
}

std::optional<SampleItem> LegacySwFixedRateSampler::Sample(
    int64_t now, Xoshiro256pp* rng) {
  Expire(now);
  if (accept_size_ == 0) return std::nullopt;
  uint64_t target = rng->NextBounded(accept_size_);
  for (auto& [id, g] : groups_) {
    if (!g.accepted) continue;
    if (target == 0) {
      if (ctx_->options.random_representative) {
        const auto item = g.reservoir.Sample(now);
        RL0_DCHECK(item.has_value());
        if (item.has_value()) return item;
      }
      return SampleItem{store_->View(g.latest).Materialize(),
                        g.latest_index};
    }
    --target;
  }
  RL0_CHECK(false);
  return std::nullopt;
}

void LegacySwFixedRateSampler::AcceptedGroupSamples(
    int64_t now, std::vector<SampleItem>* out) {
  for (auto& [id, g] : groups_) {
    if (!g.accepted) continue;
    if (ctx_->options.random_representative) {
      const auto item = g.reservoir.Sample(now);
      if (item.has_value()) {
        out->push_back(*item);
        continue;
      }
    }
    out->push_back(
        SampleItem{store_->View(g.latest).Materialize(), g.latest_index});
  }
}

void LegacySwFixedRateSampler::AcceptedLatestPoints(
    std::vector<SampleItem>* out) const {
  for (const auto& [id, g] : groups_) {
    if (g.accepted) {
      out->push_back(
          SampleItem{store_->View(g.latest).Materialize(), g.latest_index});
    }
  }
}

void LegacySwFixedRateSampler::SnapshotGroups(
    std::vector<GroupRecord>* out) const {
  for (const auto& [id, g] : groups_) out->push_back(Materialize(g));
}

bool LegacySwFixedRateSampler::SplitPromote(
    std::vector<GroupRecord>* promoted) {
  promoted->clear();
  uint64_t t = 0;
  bool found = false;
  for (const auto& [id, g] : groups_) {
    if (!g.accepted) continue;
    if (!ctx_->hasher.SampledAtLevel(g.rep_cell, level_ + 1)) continue;
    if (!found || g.rep_index > t) {
      t = g.rep_index;
      found = true;
    }
  }
  if (!found) return false;

  std::vector<uint64_t> to_remove;
  std::vector<uint64_t> adj;
  for (auto& [id, g] : groups_) {
    if (g.rep_index > t) continue;
    to_remove.push_back(id);
    if (ctx_->hasher.SampledAtLevel(g.rep_cell, level_ + 1)) {
      GroupRecord moved = Materialize(g);
      moved.accepted = true;
      promoted->push_back(std::move(moved));
      continue;
    }
    ctx_->grid.AdjacentCells(store_->View(g.rep), ctx_->options.alpha, &adj);
    bool near_sampled = false;
    for (uint64_t key : adj) {
      if (ctx_->hasher.SampledAtLevel(key, level_ + 1)) {
        near_sampled = true;
        break;
      }
    }
    if (near_sampled) {
      GroupRecord moved = Materialize(g);
      moved.accepted = false;
      promoted->push_back(std::move(moved));
    }
  }
  for (uint64_t id : to_remove) {
    auto it = groups_.find(id);
    if (it->second.accepted) --accept_size_;
    UnindexGroup(it->second);
    ReleaseGroup(&it->second);
    groups_.erase(it);
  }
  return true;
}

void LegacySwFixedRateSampler::MergeFrom(
    std::vector<GroupRecord>&& incoming) {
  for (GroupRecord& g : incoming) Adopt(std::move(g));
}

size_t LegacySwFixedRateSampler::SpaceWords() const {
  size_t words = groups_.size() * GroupWords() + 4 /* scalars */;
  if (ctx_->options.random_representative) {
    for (const auto& [id, g] : groups_) {
      words += g.reservoir.SpaceWords(ctx_->options.dim);
    }
  }
  return words;
}

Result<LegacySwSampler> LegacySwSampler::Create(
    const SamplerOptions& options, int64_t window) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  if (window <= 0) return Status::InvalidArgument("window must be positive");
  const uint32_t levels = CeilLog2(static_cast<uint64_t>(window)) + 1;
  if (levels > CellHasher::kMaxLevel) {
    return Status::InvalidArgument("window too large for hash levels");
  }
  return LegacySwSampler(options, window);
}

LegacySwSampler::LegacySwSampler(const SamplerOptions& options,
                                 int64_t window)
    : ctx_(std::make_unique<SamplerContext>(options)),
      id_counter_(std::make_unique<uint64_t>(0)),
      store_(std::make_unique<PointStore>(options.dim)),
      window_(window),
      accept_cap_(options.EffectiveAcceptCap()) {
  const uint32_t L = CeilLog2(static_cast<uint64_t>(window));
  levels_.reserve(L + 1);
  for (uint32_t l = 0; l <= L; ++l) {
    levels_.push_back(std::make_unique<LegacySwFixedRateSampler>(
        ctx_.get(), l, window, id_counter_.get(), store_.get()));
  }
}

void LegacySwSampler::Insert(const Point& p, int64_t stamp) {
  RL0_DCHECK(p.dim() == ctx_->options.dim);
  RL0_DCHECK(points_processed_ == 0 || stamp >= latest_stamp_);
  latest_stamp_ = stamp;

  PreparedPoint prep;
  prep.point = &p;
  prep.stamp = stamp;
  prep.stream_index = points_processed_++;
  prep.cell_key = ctx_->grid.CellKeyOf(p);
  ctx_->grid.AdjacentCells(p, ctx_->options.alpha, &adj_scratch_);
  prep.adj_keys = &adj_scratch_;

  for (size_t l = levels_.size(); l-- > 0;) {
    if (levels_[l]->InsertPrepared(prep) != InsertOutcome::kAccepted) {
      continue;
    }
    for (size_t j = 0; j < l; ++j) levels_[j]->Reset();
    if (levels_[l]->accept_size() > accept_cap_) Cascade(l);
    break;
  }
}

void LegacySwSampler::Insert(const Point& p) {
  Insert(p, static_cast<int64_t>(points_processed_));
}

void LegacySwSampler::InsertBatch(Span<const Point> points) {
  for (const Point& p : points) {
    Insert(p, static_cast<int64_t>(points_processed_));
  }
}

void LegacySwSampler::Cascade(size_t start_level) {
  size_t j = start_level;
  while (levels_[j]->accept_size() > accept_cap_) {
    if (j + 1 >= levels_.size()) {
      ++error_count_;
      return;
    }
    std::vector<GroupRecord> promoted;
    if (!levels_[j]->SplitPromote(&promoted)) {
      ++stuck_split_count_;
      return;
    }
    levels_[j + 1]->MergeFrom(std::move(promoted));
    ++j;
  }
}

void LegacySwSampler::ExpireAll(int64_t now) {
  for (auto& level : levels_) level->Expire(now);
}

std::optional<SampleItem> LegacySwSampler::Sample(int64_t now,
                                                  Xoshiro256pp* rng) {
  ExpireAll(now);
  int c = -1;
  for (size_t l = levels_.size(); l-- > 0;) {
    if (levels_[l]->accept_size() > 0) {
      c = static_cast<int>(l);
      break;
    }
  }
  if (c < 0) return std::nullopt;
  std::vector<SampleItem> pool;
  std::vector<SampleItem> level_points;
  for (int l = 0; l <= c; ++l) {
    level_points.clear();
    levels_[l]->AcceptedGroupSamples(now, &level_points);
    if (l == c) {
      pool.insert(pool.end(), level_points.begin(), level_points.end());
      continue;
    }
    const double keep = std::pow(2.0, static_cast<double>(l - c));
    for (const SampleItem& item : level_points) {
      if (rng->NextBernoulli(keep)) pool.push_back(item);
    }
  }
  if (pool.empty()) return std::nullopt;
  return pool[rng->NextBounded(pool.size())];
}

size_t LegacySwSampler::SpaceWords() const {
  size_t words = 8;
  for (const auto& level : levels_) words += level->SpaceWords();
  return words;
}

}  // namespace rl0
