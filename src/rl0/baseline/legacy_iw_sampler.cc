#include "rl0/baseline/legacy_iw_sampler.h"

#include <algorithm>
#include <limits>

#include "rl0/util/check.h"
#include "rl0/util/rng.h"

namespace rl0 {

namespace {
constexpr uint64_t kNoRep = std::numeric_limits<uint64_t>::max();
}  // namespace

Result<LegacyL0SamplerIW> LegacyL0SamplerIW::Create(
    const SamplerOptions& options) {
  Status s = options.Validate();
  if (!s.ok()) return s;
  if (options.random_representative) {
    return Status::InvalidArgument(
        "LegacyL0SamplerIW does not implement the reservoir variant");
  }
  return LegacyL0SamplerIW(options, options.GridSide());
}

LegacyL0SamplerIW::LegacyL0SamplerIW(const SamplerOptions& options,
                                     double side)
    : options_(options),
      grid_(options.dim, side, SplitMix64(options.seed ^ 0x6772696400ULL),
            options.metric),
      hasher_(options.hash_family, SplitMix64(options.seed ^ 0x68617368ULL),
              options.kwise_k),
      accept_cap_(options.EffectiveAcceptCap()) {}

// The seed's adjacency path, faithfully: materialize the coordinate
// vectors of adj(p) through the DFS, then hash each one — the per-cell
// heap allocations this PR's key-folding AdjacentCells eliminated.
void LegacyL0SamplerIW::LegacyAdjacentCells(
    const Point& p, std::vector<uint64_t>* out) const {
  std::vector<CellCoord> coords;
  grid_.AdjacentCellCoords(p, options_.alpha, &coords);
  out->clear();
  out->reserve(coords.size());
  for (const CellCoord& c : coords) out->push_back(::rl0::CellKeyOf(c));
  std::sort(out->begin(), out->end());
}

uint64_t LegacyL0SamplerIW::FindCandidate(
    const Point& p, const std::vector<uint64_t>& adj_keys) const {
  for (uint64_t key : adj_keys) {
    auto [it, end] = cell_to_rep_.equal_range(key);
    for (; it != end; ++it) {
      const Rep& rep = reps_.at(it->second);
      if (MetricWithinDistance(rep.point, p, options_.alpha,
                               options_.metric)) {
        return it->second;
      }
    }
  }
  return kNoRep;
}

void LegacyL0SamplerIW::Insert(const Point& p) {
  RL0_DCHECK(p.dim() == options_.dim);
  const uint64_t stream_index = points_processed_++;

  LegacyAdjacentCells(p, &adj_scratch_);
  if (FindCandidate(p, adj_scratch_) != kNoRep) return;

  const uint64_t cell_key = ::rl0::CellKeyOf(grid_.CellCoordOf(p));
  const bool accepted = hasher_.SampledAtLevel(cell_key, level_);
  bool rejected = false;
  if (!accepted) {
    for (uint64_t key : adj_scratch_) {
      if (hasher_.SampledAtLevel(key, level_)) {
        rejected = true;
        break;
      }
    }
    if (!rejected) return;
  }

  const uint64_t id = next_rep_id_++;
  Rep rep;
  rep.point = p;
  rep.stream_index = stream_index;
  rep.cell_key = cell_key;
  rep.accepted = accepted;
  reps_.emplace(id, std::move(rep));
  cell_to_rep_.emplace(cell_key, id);
  if (accepted) ++accept_size_;

  while (accept_size_ > accept_cap_ && level_ < CellHasher::kMaxLevel) {
    ++level_;
    Refilter();
  }
}

void LegacyL0SamplerIW::Refilter() {
  std::vector<uint64_t> to_remove;
  std::vector<uint64_t> adj;
  for (auto& [id, rep] : reps_) {
    if (hasher_.SampledAtLevel(rep.cell_key, level_)) {
      RL0_DCHECK(rep.accepted);
      continue;
    }
    LegacyAdjacentCells(rep.point, &adj);
    bool near_sampled = false;
    for (uint64_t key : adj) {
      if (hasher_.SampledAtLevel(key, level_)) {
        near_sampled = true;
        break;
      }
    }
    if (near_sampled) {
      if (rep.accepted) {
        rep.accepted = false;
        --accept_size_;
      }
    } else {
      to_remove.push_back(id);
    }
  }
  for (uint64_t id : to_remove) {
    auto it = reps_.find(id);
    RL0_DCHECK(it != reps_.end());
    if (it->second.accepted) --accept_size_;
    auto [mit, mend] = cell_to_rep_.equal_range(it->second.cell_key);
    for (; mit != mend; ++mit) {
      if (mit->second == id) {
        cell_to_rep_.erase(mit);
        break;
      }
    }
    reps_.erase(it);
  }
}

std::vector<SampleItem> LegacyL0SamplerIW::AcceptedRepresentatives() const {
  std::vector<SampleItem> out;
  for (const auto& [id, rep] : reps_) {
    if (rep.accepted) out.push_back(SampleItem{rep.point, rep.stream_index});
  }
  std::sort(out.begin(), out.end(),
            [](const SampleItem& a, const SampleItem& b) {
              return a.stream_index < b.stream_index;
            });
  return out;
}

std::vector<SampleItem> LegacyL0SamplerIW::RejectedRepresentatives() const {
  std::vector<SampleItem> out;
  for (const auto& [id, rep] : reps_) {
    if (!rep.accepted) out.push_back(SampleItem{rep.point, rep.stream_index});
  }
  std::sort(out.begin(), out.end(),
            [](const SampleItem& a, const SampleItem& b) {
              return a.stream_index < b.stream_index;
            });
  return out;
}

}  // namespace rl0
