#include "rl0/baseline/naive_robust.h"

#include "rl0/util/check.h"

namespace rl0 {

NaiveRobustSampler::NaiveRobustSampler(double alpha) : alpha_(alpha) {
  RL0_CHECK(alpha > 0.0);
}

void NaiveRobustSampler::Insert(const Point& p) {
  const uint64_t index = points_processed_++;
  for (const SampleItem& rep : reps_) {
    if (WithinDistance(rep.point, p, alpha_)) return;
  }
  reps_.push_back(SampleItem{p, index});
}

std::optional<SampleItem> NaiveRobustSampler::Sample(
    Xoshiro256pp* rng) const {
  if (reps_.empty()) return std::nullopt;
  return reps_[rng->NextBounded(reps_.size())];
}

NaiveWindowSampler::NaiveWindowSampler(double alpha, int64_t window)
    : alpha_(alpha), window_(window) {
  RL0_CHECK(alpha > 0.0);
  RL0_CHECK(window > 0);
}

void NaiveWindowSampler::Insert(const Point& p, int64_t stamp) {
  RL0_DCHECK(buffer_.empty() || stamp >= buffer_.back().stamp);
  buffer_.push_back(Stored{p, stamp, points_processed_++});
  // Evict points that can never again be inside a queried window. Queries
  // use `now` ≥ the newest stamp, so anything older than newest - window
  // is dead.
  const int64_t horizon = stamp - window_;
  while (!buffer_.empty() && buffer_.front().stamp <= horizon) {
    buffer_.pop_front();
  }
}

std::vector<SampleItem> NaiveWindowSampler::AliveRepresentatives(
    int64_t now) const {
  std::vector<SampleItem> reps;
  for (const Stored& s : buffer_) {
    if (s.stamp <= now - window_ || s.stamp > now) continue;
    bool known = false;
    for (const SampleItem& rep : reps) {
      if (WithinDistance(rep.point, s.point, alpha_)) {
        known = true;
        break;
      }
    }
    if (!known) reps.push_back(SampleItem{s.point, s.stream_index});
  }
  return reps;
}

std::optional<SampleItem> NaiveWindowSampler::Sample(
    int64_t now, Xoshiro256pp* rng) const {
  const std::vector<SampleItem> reps = AliveRepresentatives(now);
  if (reps.empty()) return std::nullopt;
  return reps[rng->NextBounded(reps.size())];
}

size_t NaiveWindowSampler::GroupsAlive(int64_t now) const {
  return AliveRepresentatives(now).size();
}

}  // namespace rl0
