// Bounded-lateness reordering test battery (core/reorder_buffer.h).
//
// Four layers:
//
//   1. ReorderStage unit contracts: the strictly-below-frontier release
//      rule, equal-stamp ties releasing together, flush semantics,
//      late policies (drop counting, side-channel buffering/sinking),
//      watermark values, and the canonical total order.
//
//   2. Differential fuzzing against a sort-then-feed reference: for
//      random disordered streams (duplicate-stamp-heavy included), the
//      released sequence after Flush must equal the canonical sort of
//      the within-bound survivors, the late set must match the
//      reference's late set exactly, and the accounting identity
//      offered == released + late_dropped + late_redirected + buffered
//      must hold after every single offer. Beyond-bound points are
//      never silently lost: drop counters / side-channel deliveries
//      reconcile exactly with the input size.
//
//   3. Sampler-level equivalence: a RobustL0SamplerSW fed a disordered
//      stream through InsertStampedLate must end bit-identical
//      (snapshot bytes, sample draws) to one fed the canonically sorted
//      stream through the strict path, and its window membership must
//      agree with the exact NaiveWindowSampler ground truth fed sorted.
//
//   4. Watermark-stall edges: event time advances past the last
//      released point (queries expire state the releases alone would
//      keep alive), and empty pool lanes still learn the watermark
//      through the pipeline's watermark chunks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "rl0/baseline/naive_robust.h"
#include "rl0/core/reorder_buffer.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/core/snapshot.h"
#include "rl0/core/sw_sampler.h"
#include "rl0/stream/dataset.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"
#include "rl0/stream/window_stream.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

Point P(double x) { return Point{x}; }

/// offered == released + late_dropped + late_redirected + buffered.
void ExpectAccountingIdentity(const ReorderStats& s) {
  EXPECT_EQ(s.offered,
            s.released + s.late_dropped + s.late_redirected + s.buffered);
}

/// Drains the staged releases into flat vectors (appending).
void Take(ReorderStage* stage, std::vector<Point>* points,
          std::vector<int64_t>* stamps) {
  std::vector<Point> p;
  std::vector<int64_t> s;
  if (stage->TakeReleased(&p, &s)) {
    points->insert(points->end(), p.begin(), p.end());
    stamps->insert(stamps->end(), s.begin(), s.end());
  }
}

TEST(ReorderStageTest, ReleasesStrictlyBelowFrontier) {
  ReorderStage stage(10, LatePolicy::kDrop);
  std::vector<Point> points;
  std::vector<int64_t> stamps;

  stage.Offer(P(1), 90);
  stage.Offer(P(2), 100);  // frontier = 90: stamp 90 is NOT below it
  Take(&stage, &points, &stamps);
  EXPECT_TRUE(stamps.empty());
  EXPECT_EQ(stage.stats().buffered, 2u);

  stage.Offer(P(3), 101);  // frontier = 91: releases exactly stamp 90
  Take(&stage, &points, &stamps);
  ASSERT_EQ(stamps.size(), 1u);
  EXPECT_EQ(stamps[0], 90);
  ExpectAccountingIdentity(stage.stats());
}

TEST(ReorderStageTest, TiesReleaseTogetherAtZeroLateness) {
  // Two equal-stamp arrivals separated by another offer of the same
  // stamp: at lateness 0 the frontier equals the max stamp, so the tie
  // stays buffered (stamp is not strictly below the frontier) until a
  // larger stamp arrives — then the whole tie releases in one batch, in
  // canonical (coordinate-bit) order regardless of arrival order.
  ReorderStage stage(0, LatePolicy::kDrop);
  std::vector<Point> points;
  std::vector<int64_t> stamps;

  stage.Offer(P(5), 7);
  Take(&stage, &points, &stamps);
  EXPECT_TRUE(stamps.empty());
  stage.Offer(P(3), 7);  // same stamp: still within bound, joins the tie
  Take(&stage, &points, &stamps);
  EXPECT_TRUE(stamps.empty());

  stage.Offer(P(9), 8);  // frontier = 8 > 7: the tie releases together
  Take(&stage, &points, &stamps);
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_EQ(stamps[0], 7);
  EXPECT_EQ(stamps[1], 7);
  EXPECT_EQ(points[0][0], 3.0);  // canonical order, not arrival order
  EXPECT_EQ(points[1][0], 5.0);
}

TEST(ReorderStageTest, FlushReleasesEverythingAndAdvancesBound) {
  ReorderStage stage(100, LatePolicy::kDrop);
  stage.Offer(P(1), 50);
  stage.Offer(P(2), 10);
  stage.Offer(P(3), 30);
  stage.Flush();
  std::vector<Point> points;
  std::vector<int64_t> stamps;
  Take(&stage, &points, &stamps);
  EXPECT_EQ(stamps, (std::vector<int64_t>{10, 30, 50}));
  const ReorderStats stats = stage.stats();
  EXPECT_EQ(stats.released, 3u);
  EXPECT_EQ(stats.buffered, 0u);
  EXPECT_EQ(stats.watermark, 50);  // low == high watermark after Flush
  EXPECT_EQ(stats.max_stamp, 50);
}

TEST(ReorderStageTest, OffersAfterFlushAreLate) {
  ReorderStage stage(5, LatePolicy::kDrop);
  stage.Offer(P(1), 100);
  stage.Flush();
  // Everything at or below the flushed high watermark has been
  // released; a re-offer inside that prefix cannot be slotted back in.
  stage.Offer(P(2), 100);
  stage.Offer(P(3), 96);
  EXPECT_EQ(stage.stats().late_dropped, 2u);
  // ... but time keeps flowing: a fresh in-bound stamp is accepted.
  stage.Offer(P(4), 101);
  EXPECT_EQ(stage.stats().late_dropped, 2u);
  EXPECT_EQ(stage.stats().buffered, 1u);
  ExpectAccountingIdentity(stage.stats());
}

TEST(ReorderStageTest, DropPolicyCountsBeyondBound) {
  ReorderStage stage(10, LatePolicy::kDrop);
  stage.Offer(P(1), 1000);
  stage.Offer(P(2), 989);  // frontier is 990: beyond the bound
  stage.Offer(P(3), 990);  // exactly at the frontier: within bound
  const ReorderStats stats = stage.stats();
  EXPECT_EQ(stats.late_dropped, 1u);
  EXPECT_EQ(stats.buffered, 2u);
  ExpectAccountingIdentity(stats);
}

TEST(ReorderStageTest, SideChannelBuffersBeyondBound) {
  ReorderStage stage(0, LatePolicy::kSideChannel);
  stage.Offer(P(1), 10);
  stage.Offer(P(2), 11);  // releases stamp 10
  stage.Offer(P(3), 9);   // beyond bound -> internal late buffer
  stage.Offer(P(4), 5);
  const auto late = stage.TakeLate();
  ASSERT_EQ(late.size(), 2u);
  EXPECT_EQ(late[0].second, 9);  // arrival order, stamps intact
  EXPECT_EQ(late[1].second, 5);
  EXPECT_EQ(stage.stats().late_redirected, 2u);
  EXPECT_EQ(stage.stats().late_dropped, 0u);
  EXPECT_TRUE(stage.TakeLate().empty());  // drained
  ExpectAccountingIdentity(stage.stats());
}

TEST(ReorderStageTest, SideChannelSinkDeliversBeyondBound) {
  ReorderStage stage(0, LatePolicy::kSideChannel);
  std::vector<std::pair<double, int64_t>> delivered;
  stage.set_late_sink([&delivered](const Point& p, int64_t stamp) {
    delivered.emplace_back(p[0], stamp);
  });
  stage.Offer(P(1), 10);
  stage.Offer(P(2), 11);
  stage.Offer(P(3), 9);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].first, 3.0);
  EXPECT_EQ(delivered[0].second, 9);
  EXPECT_TRUE(stage.TakeLate().empty());  // sink bypasses the buffer
  EXPECT_EQ(stage.stats().late_redirected, 1u);
}

TEST(ReorderStageTest, WatermarkIsBoundedByMaxStamp) {
  ReorderStage stage(10, LatePolicy::kDrop);
  EXPECT_FALSE(stage.has_watermark());
  stage.Offer(P(1), 100);
  ASSERT_TRUE(stage.has_watermark());
  // released_bound = 90, max = 100: the low watermark is 90.
  EXPECT_EQ(stage.watermark(), 90);
  EXPECT_EQ(stage.max_stamp(), 100);
  stage.Flush();
  // After Flush the release bound passes the max stamp; the low
  // watermark clamps to the max (event time equals the last stamp).
  EXPECT_EQ(stage.watermark(), 100);
}

TEST(ReorderStageTest, EmptyFlushIsSafe) {
  ReorderStage stage(3, LatePolicy::kDrop);
  stage.Flush();
  EXPECT_FALSE(stage.has_watermark());
  std::vector<Point> points;
  std::vector<int64_t> stamps;
  EXPECT_FALSE(stage.TakeReleased(&points, &stamps));
  ExpectAccountingIdentity(stage.stats());
}

TEST(ReorderStageTest, CanonicalLessIsAStrictTotalOrder) {
  // Stamp dominates.
  EXPECT_TRUE(ReorderStage::CanonicalLess(P(9), 1, P(0), 2));
  EXPECT_FALSE(ReorderStage::CanonicalLess(P(0), 2, P(9), 1));
  // Equal stamps: coordinate bit patterns decide.
  EXPECT_TRUE(ReorderStage::CanonicalLess(P(1), 5, P(2), 5));
  EXPECT_FALSE(ReorderStage::CanonicalLess(P(2), 5, P(1), 5));
  // Exact duplicates are equivalent (not less either way).
  EXPECT_FALSE(ReorderStage::CanonicalLess(P(4), 5, P(4), 5));
  EXPECT_FALSE(ReorderStage::CanonicalLess(P(4), 5, P(4), 5));
  // -0.0 and +0.0 compare equal as doubles but have distinct bit
  // patterns — the canonical order must separate them deterministically.
  const bool neg_first = ReorderStage::CanonicalLess(P(-0.0), 5, P(0.0), 5);
  const bool pos_first = ReorderStage::CanonicalLess(P(0.0), 5, P(-0.0), 5);
  EXPECT_NE(neg_first, pos_first);
  // Dimension precedes coordinates.
  EXPECT_NE(ReorderStage::CanonicalLess(Point{1.0, 2.0}, 5, P(3), 5),
            ReorderStage::CanonicalLess(P(3), 5, Point{1.0, 2.0}, 5));
}

// ---------------------------------------------------------------------
// Layer 2: differential fuzzing vs the sort-then-feed reference.
// ---------------------------------------------------------------------

/// The reference split: a point is late iff its stamp runs more than
/// `lateness` behind the running maximum stamp at its arrival. (The
/// stage's released_bound_ equals running-max − lateness after every
/// offer, so this is exactly its admission rule.)
struct ReferenceSplit {
  std::vector<Point> survivor_points;
  std::vector<int64_t> survivor_stamps;
  std::vector<std::pair<Point, int64_t>> late;  // arrival order
};

ReferenceSplit SplitByLateness(const std::vector<Point>& points,
                               const std::vector<int64_t>& stamps,
                               int64_t lateness) {
  ReferenceSplit out;
  int64_t max_seen = std::numeric_limits<int64_t>::min();
  for (size_t i = 0; i < points.size(); ++i) {
    if (stamps[i] > max_seen) max_seen = stamps[i];
    if (stamps[i] < max_seen - lateness) {
      out.late.emplace_back(points[i], stamps[i]);
    } else {
      out.survivor_points.push_back(points[i]);
      out.survivor_stamps.push_back(stamps[i]);
    }
  }
  return out;
}

TEST(ReorderFuzzTest, DifferentialVsSortThenFeedReference) {
  Xoshiro256pp rng(SplitMix64(20260807));
  const int64_t lateness_choices[] = {0, 1, 3, 17, 100};
  for (int trial = 0; trial < 40; ++trial) {
    const int64_t lateness = lateness_choices[trial % 5];
    const size_t n = 20 + rng.NextBounded(200);
    // Duplicate-stamp-heavy disordered stream: a drifting clock with
    // ±jitter around a slowly advancing base, coarse stamp range so
    // equal stamps are common; bursts every so often leap ahead, making
    // earlier stamps beyond-bound.
    std::vector<Point> points;
    std::vector<int64_t> stamps;
    int64_t base = 0;
    for (size_t i = 0; i < n; ++i) {
      base += static_cast<int64_t>(rng.NextBounded(3));
      if (rng.NextBounded(16) == 0) base += lateness + 5;  // burst
      const int64_t jitter = static_cast<int64_t>(rng.NextBounded(7)) - 3;
      points.push_back(P(static_cast<double>(rng.NextBounded(32))));
      stamps.push_back(base + jitter);
    }

    SCOPED_TRACE("trial " + std::to_string(trial) + " lateness " +
                 std::to_string(lateness) + " n " + std::to_string(n));
    ReorderStage stage(lateness, LatePolicy::kSideChannel);
    std::vector<Point> released_points;
    std::vector<int64_t> released_stamps;
    for (size_t i = 0; i < n; ++i) {
      stage.Offer(points[i], stamps[i]);
      ExpectAccountingIdentity(stage.stats());
    }
    stage.Flush();
    Take(&stage, &released_points, &released_stamps);
    const auto late = stage.TakeLate();

    const ReferenceSplit ref = SplitByLateness(points, stamps, lateness);
    // Beyond-bound points are never silently lost: the side-channel
    // deliveries reconcile exactly with the input size...
    ASSERT_EQ(released_points.size() + late.size(), n);
    // ... and match the reference late set in arrival order.
    ASSERT_EQ(late.size(), ref.late.size());
    for (size_t i = 0; i < late.size(); ++i) {
      EXPECT_EQ(late[i].second, ref.late[i].second);
      EXPECT_EQ(late[i].first, ref.late[i].first);
    }
    // The released sequence is the canonical sort of the survivors.
    std::vector<Point> sorted_points = ref.survivor_points;
    std::vector<int64_t> sorted_stamps = ref.survivor_stamps;
    ReorderStage::SortCanonical(&sorted_points, &sorted_stamps);
    ASSERT_EQ(released_stamps, sorted_stamps);
    for (size_t i = 0; i < released_points.size(); ++i) {
      EXPECT_EQ(released_points[i], sorted_points[i]);
    }
    // Final stats: buffered == 0 after Flush, identity holds.
    const ReorderStats stats = stage.stats();
    EXPECT_EQ(stats.buffered, 0u);
    EXPECT_EQ(stats.released, released_points.size());
    EXPECT_EQ(stats.late_redirected, late.size());
    ExpectAccountingIdentity(stats);
  }
}

TEST(ReorderFuzzTest, BoundedDisorderGeneratorsNeverExceedTheBound) {
  // DisorderWithinBound/DisorderSkewed promise stamps at most `bound`
  // behind the running maximum — so a stage with that exact bound must
  // drop nothing and release the canonical sort of the whole stream.
  const BaseDataset base = RandomUniform(60, 2, 11);
  NearDupOptions nd;
  nd.max_dups = 6;
  nd.seed = 12;
  const NoisyDataset data = MakeNearDuplicates(base, nd);
  for (const int64_t bound : {1, 16, 256}) {
    for (const bool skewed : {false, true}) {
      SCOPED_TRACE("bound " + std::to_string(bound) +
                   (skewed ? " skewed" : " uniform"));
      const std::vector<StampedPoint> sorted = TimeStamped(data, 4, 99);
      const std::vector<StampedPoint> disordered =
          skewed ? DisorderSkewed(sorted, bound, 7)
                 : DisorderWithinBound(sorted, bound, 7);
      ASSERT_EQ(disordered.size(), sorted.size());
      std::vector<Point> points;
      std::vector<int64_t> stamps;
      SplitStamped(disordered, &points, &stamps);

      ReorderStage stage(bound, LatePolicy::kDrop);
      stage.OfferBatch(Span<const Point>(points),
                       Span<const int64_t>(stamps));
      stage.Flush();
      std::vector<Point> released_points;
      std::vector<int64_t> released_stamps;
      Take(&stage, &released_points, &released_stamps);
      EXPECT_EQ(stage.stats().late_dropped, 0u);
      ASSERT_EQ(released_points.size(), sorted.size());

      std::vector<Point> expect_points;
      std::vector<int64_t> expect_stamps;
      SplitStamped(sorted, &expect_points, &expect_stamps);
      ReorderStage::SortCanonical(&expect_points, &expect_stamps);
      EXPECT_EQ(released_stamps, expect_stamps);
      for (size_t i = 0; i < released_points.size(); ++i) {
        EXPECT_EQ(released_points[i], expect_points[i]);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Layer 3: sampler-level equivalence.
// ---------------------------------------------------------------------

SamplerOptions LateOptions(uint64_t seed, int64_t lateness) {
  SamplerOptions opts;
  opts.dim = 1;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.expected_stream_length = 1 << 12;
  opts.allowed_lateness = lateness;
  return opts;
}

/// A disordered 1-d revisit stream: group centers 10 apart, stamps a
/// jittered clock bounded within `lateness` of the running maximum.
void DisorderedStream(size_t n, size_t groups, int64_t lateness,
                      uint64_t seed, std::vector<Point>* points,
                      std::vector<int64_t>* stamps) {
  Xoshiro256pp rng(SplitMix64(seed));
  std::vector<StampedPoint> stream;
  int64_t now = 0;
  for (size_t i = 0; i < n; ++i) {
    now += 1 + static_cast<int64_t>(rng.NextBounded(3));
    const size_t g = rng.NextBounded(groups);
    StampedPoint sp;
    sp.point =
        Point{10.0 * static_cast<double>(g) + 0.3 * (rng.NextDouble() - 0.5)};
    sp.stamp = now;
    stream.push_back(sp);
  }
  stream = DisorderWithinBound(stream, lateness, seed + 1);
  SplitStamped(stream, points, stamps);
}

TEST(ReorderSamplerTest, LateFeedIsBitIdenticalToStrictSortedFeed) {
  for (const int64_t lateness : {0, 7, 64}) {
    SCOPED_TRACE("lateness " + std::to_string(lateness));
    std::vector<Point> points;
    std::vector<int64_t> stamps;
    DisorderedStream(1500, 40, lateness, 21 + lateness, &points, &stamps);

    auto late_fed = RobustL0SamplerSW::Create(LateOptions(5, lateness), 50)
                        .value();
    for (size_t i = 0; i < points.size(); ++i) {
      late_fed.InsertStampedLate(points[i], stamps[i]);
    }
    late_fed.FlushLate();
    EXPECT_EQ(late_fed.late_stats().late_dropped, 0u);
    EXPECT_EQ(late_fed.late_stats().released, points.size());

    std::vector<Point> sorted_points = points;
    std::vector<int64_t> sorted_stamps = stamps;
    ReorderStage::SortCanonical(&sorted_points, &sorted_stamps);
    auto strict = RobustL0SamplerSW::Create(LateOptions(5, lateness), 50)
                      .value();
    for (size_t i = 0; i < sorted_points.size(); ++i) {
      strict.Insert(sorted_points[i], sorted_stamps[i]);
    }

    // Snapshot bytes are bit-identical: the reorder stage and the event
    // watermark are scratch state, never serialized.
    std::string late_blob;
    std::string strict_blob;
    ASSERT_TRUE(SnapshotSamplerSW(late_fed, &late_blob).ok());
    ASSERT_TRUE(SnapshotSamplerSW(strict, &strict_blob).ok());
    EXPECT_EQ(late_blob, strict_blob);

    // And so are the query draws (same rng stream on both sides).
    Xoshiro256pp rng_a(SplitMix64(77));
    Xoshiro256pp rng_b(SplitMix64(77));
    for (int q = 0; q < 16; ++q) {
      const auto a = late_fed.SampleLatest(&rng_a);
      const auto b = strict.SampleLatest(&rng_b);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a.has_value()) {
        EXPECT_EQ(a->point, b->point);
        EXPECT_EQ(a->stream_index, b->stream_index);
      }
    }
  }
}

TEST(ReorderSamplerTest, WindowMembershipMatchesNaiveGroundTruth) {
  // Beyond-bound points included this time: the late-fed sampler's
  // window population must match the naive sampler fed the sorted
  // *survivors* (dropped points are out of both worlds by definition).
  Xoshiro256pp stream_rng(SplitMix64(31337));
  const int64_t lateness = 5;
  const int64_t window = 40;
  std::vector<Point> points;
  std::vector<int64_t> stamps;
  int64_t base = 0;
  for (size_t i = 0; i < 800; ++i) {
    base += static_cast<int64_t>(stream_rng.NextBounded(3));
    if (stream_rng.NextBounded(32) == 0) base += 30;  // bursts
    const int64_t jitter =
        static_cast<int64_t>(stream_rng.NextBounded(17)) - 8;
    const size_t g = stream_rng.NextBounded(25);
    points.push_back(Point{10.0 * static_cast<double>(g)});
    stamps.push_back(base + jitter);
  }

  auto sampler =
      RobustL0SamplerSW::Create(LateOptions(3, lateness), window).value();
  for (size_t i = 0; i < points.size(); ++i) {
    sampler.InsertStampedLate(points[i], stamps[i]);
  }
  sampler.FlushLate();
  const ReorderStats stats = sampler.late_stats();
  const ReferenceSplit ref = SplitByLateness(points, stamps, lateness);
  EXPECT_EQ(stats.late_dropped, ref.late.size());
  EXPECT_EQ(stats.released, ref.survivor_points.size());

  std::vector<Point> sorted_points = ref.survivor_points;
  std::vector<int64_t> sorted_stamps = ref.survivor_stamps;
  ReorderStage::SortCanonical(&sorted_points, &sorted_stamps);
  NaiveWindowSampler naive(1.0, window);
  for (size_t i = 0; i < sorted_points.size(); ++i) {
    naive.Insert(sorted_points[i], sorted_stamps[i]);
  }

  const int64_t now = sampler.watermark();
  EXPECT_EQ(now, *std::max_element(stamps.begin(), stamps.end()));
  std::vector<SampleItem> accepted;
  sampler.AcceptedWindowItems(now, &accepted);
  const size_t alive = naive.GroupsAlive(now);
  if (alive == 0) {
    EXPECT_TRUE(accepted.empty());
  } else {
    // Every surfaced member must carry an in-window stamp of a group
    // the ground truth considers alive (centers are 10 apart, so the
    // group id is just the coordinate).
    for (const SampleItem& item : accepted) {
      const int64_t stamp = sorted_stamps[item.stream_index];
      EXPECT_GT(stamp, now - window);
      EXPECT_LE(stamp, now);
    }
  }
  Xoshiro256pp rng(SplitMix64(9));
  const auto draw = sampler.SampleLatest(&rng);
  if (alive == 0) EXPECT_FALSE(draw.has_value());
}

// ---------------------------------------------------------------------
// Layer 4: watermark-stall edges.
// ---------------------------------------------------------------------

TEST(ReorderWatermarkTest, EventTimeAdvancesPastTheLastRelease) {
  // Window 50, lateness 10. A buffered-but-unreleased arrival still
  // advances event time via the watermark, expiring state that the
  // released prefix alone would keep alive.
  auto sampler = RobustL0SamplerSW::Create(LateOptions(1, 10), 50).value();
  Xoshiro256pp rng(SplitMix64(4));

  sampler.InsertStampedLate(P(1), 100);
  // Nothing released yet (frontier 90), but the watermark is 90.
  EXPECT_EQ(sampler.points_processed(), 0u);
  EXPECT_EQ(sampler.watermark(), 90);
  EXPECT_FALSE(sampler.SampleLatest(&rng).has_value());

  sampler.InsertStampedLate(P(2), 200);
  // Frontier 190 releases the stamp-100 point; event time is now 190,
  // so its window (140, 190] has already expired it.
  EXPECT_EQ(sampler.points_processed(), 1u);
  EXPECT_EQ(sampler.watermark(), 190);
  EXPECT_FALSE(sampler.SampleLatest(&rng).has_value());

  sampler.FlushLate();
  // The stamp-200 point lands; event time 200; the window holds it.
  EXPECT_EQ(sampler.watermark(), 200);
  const auto draw = sampler.SampleLatest(&rng);
  ASSERT_TRUE(draw.has_value());
  EXPECT_EQ(draw->point, P(2));
}

TEST(ReorderWatermarkTest, EmptyPoolLanesLearnTheWatermark) {
  // 4 lanes, 2 released points: lanes 2 and 3 never see a point, but the
  // watermark chunks ride every lane — so even empty shards know how far
  // event time has progressed.
  auto pool =
      ShardedSwSamplerPool::Create(LateOptions(8, 10), 100, 4).value();
  const std::vector<Point> points = {P(1), P(2)};
  const std::vector<int64_t> stamps = {0, 1000};
  pool.FeedStampedLate(Span<const Point>(points),
                       Span<const int64_t>(stamps));
  pool.FlushLate();
  pool.Drain();
  EXPECT_EQ(pool.late_stats().released, 2u);
  size_t with_points = 0;
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    EXPECT_EQ(pool.shard(s).watermark(), 1000);
    with_points += pool.shard(s).points_processed() > 0 ? 1 : 0;
  }
  EXPECT_EQ(with_points, 2u);
}

TEST(ReorderWatermarkTest, PoolSideChannelReconcilesExactly) {
  // Pool-level kSideChannel: beyond-bound points surface through
  // TakeLateSideChannel with their stamps; offered == released +
  // redirected reconciles exactly with the input size.
  SamplerOptions opts = LateOptions(6, 4);
  opts.late_policy = LatePolicy::kSideChannel;
  auto pool = ShardedSwSamplerPool::Create(opts, 100, 2).value();
  const std::vector<Point> points = {P(1), P(2), P(3), P(4), P(5)};
  const std::vector<int64_t> stamps = {50, 60, 55, 40, 61};
  // 55 is within bound (60-4=56 > 55? no: 55 < 56 — beyond!); recheck:
  // frontier after 60 is 56, so 55 and 40 are beyond-bound.
  pool.FeedStampedLate(Span<const Point>(points),
                       Span<const int64_t>(stamps));
  pool.FlushLate();
  pool.Drain();
  const auto late = pool.TakeLateSideChannel();
  const ReorderStats stats = pool.late_stats();
  EXPECT_EQ(stats.offered, 5u);
  EXPECT_EQ(stats.late_redirected, late.size());
  EXPECT_EQ(stats.late_dropped, 0u);
  EXPECT_EQ(stats.released + stats.late_redirected, 5u);
  ASSERT_EQ(late.size(), 2u);
  EXPECT_EQ(late[0].second, 55);
  EXPECT_EQ(late[1].second, 40);
  EXPECT_EQ(pool.points_processed(), 3u);
}

}  // namespace
}  // namespace rl0
