// Protocol battery for rl0_serve (serve/protocol.h + serve/server.h):
// the LineDecoder's framing under partial, pipelined and oversized
// arrivals; ParseCommand's total-function contract on malformed lines;
// and a real in-process Server driven over unix sockets — error paths,
// per-tenant isolation, and the differential pin: a server-fed tenant's
// SAMPLE lines must be byte-identical to querying a directly-fed
// ShardedSwSamplerPool with the CLI's query-rng derivation, in all
// three stamp modes (sequence, time, bounded-lateness).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rl0/core/sharded_pool.h"
#include "rl0/serve/protocol.h"
#include "rl0/serve/server.h"
#include "rl0/util/rng.h"
#include "serve_test_util.h"

namespace rl0 {
namespace serve {
namespace {

// ----------------------------------------------------------- LineDecoder

std::vector<std::pair<bool, std::string>> DrainDecoder(LineDecoder* d) {
  std::vector<std::pair<bool, std::string>> out;
  std::string line;
  for (;;) {
    const auto event = d->Next(&line);
    if (event == LineDecoder::Event::kNone) break;
    out.emplace_back(event == LineDecoder::Event::kOversized, line);
  }
  return out;
}

TEST(LineDecoderTest, SplitsPipelinedLinesAndToleratesCrlf) {
  LineDecoder d(64);
  const std::string wire = "PING\r\nSTATS\nQUIT\n";
  d.Append(wire.data(), wire.size());
  const auto got = DrainDecoder(&d);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].second, "PING");
  EXPECT_EQ(got[1].second, "STATS");
  EXPECT_EQ(got[2].second, "QUIT");
  EXPECT_EQ(d.buffered_bytes(), 0u);
}

TEST(LineDecoderTest, ReassemblesArbitrarySplitPoints) {
  const std::string wire = "CREATE t dim=2 alpha=0.5 window=10\nPING\n";
  for (size_t cut = 0; cut <= wire.size(); ++cut) {
    LineDecoder d(256);
    d.Append(wire.data(), cut);
    d.Append(wire.data() + cut, wire.size() - cut);
    const auto got = DrainDecoder(&d);
    ASSERT_EQ(got.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(got[0].second, "CREATE t dim=2 alpha=0.5 window=10");
    EXPECT_EQ(got[1].second, "PING");
  }
}

TEST(LineDecoderTest, OversizedLineKeepsWireOrderAndBoundedMemory) {
  LineDecoder d(16);  // the constructor clamps smaller caps up to 16
  const std::string wire = "ok1\n0123456789abcdef-too-long\nok2\n";
  d.Append(wire.data(), wire.size());
  const auto got = DrainDecoder(&d);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_FALSE(got[0].first);
  EXPECT_EQ(got[0].second, "ok1");
  EXPECT_TRUE(got[1].first);  // the notice sits where the line was
  EXPECT_FALSE(got[2].first);
  EXPECT_EQ(got[2].second, "ok2");
}

TEST(LineDecoderTest, OversizedRunNeverBuffersPastTheCap) {
  LineDecoder d(16);
  const std::string chunk(1000, 'x');
  for (int i = 0; i < 50; ++i) {
    d.Append(chunk.data(), chunk.size());
    EXPECT_LE(d.buffered_bytes(), 17u);  // cap + the overflowing byte
  }
  d.Append("\nPING\n", 6);
  const auto got = DrainDecoder(&d);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(got[0].first);   // one notice for the whole 50KB run
  EXPECT_EQ(got[1].second, "PING");
}

// ---------------------------------------------------------- ParseCommand

TEST(ParseCommandTest, ParsesEveryVerb) {
  auto create = ParseCommand(
      "CREATE t1 dim=3 alpha=0.25 window=500 mode=late lateness=40 "
      "shards=4 seed=7 metric=l1 m=10000 k=2 reservoir=1 filter=0");
  ASSERT_TRUE(create.ok()) << create.status().ToString();
  EXPECT_EQ(create.value().type, CommandType::kCreate);
  EXPECT_EQ(create.value().tenant, "t1");
  EXPECT_EQ(create.value().create.dim, 3u);
  EXPECT_DOUBLE_EQ(create.value().create.alpha, 0.25);
  EXPECT_EQ(create.value().create.window, 500);
  EXPECT_EQ(create.value().create.mode, TenantMode::kLate);
  EXPECT_EQ(create.value().create.lateness, 40);
  EXPECT_EQ(create.value().create.shards, 4u);
  EXPECT_EQ(create.value().create.seed, 7u);
  EXPECT_EQ(create.value().create.metric, Metric::kL1);
  EXPECT_EQ(create.value().create.expected_m, 10000u);
  EXPECT_EQ(create.value().create.k, 2u);
  EXPECT_TRUE(create.value().create.reservoir);
  EXPECT_FALSE(create.value().create.filter);

  auto feed = ParseCommand("FEED t1 1.5,2 3,4 -0.25,1e3");
  ASSERT_TRUE(feed.ok());
  ASSERT_EQ(feed.value().points.size(), 3u);
  EXPECT_DOUBLE_EQ(feed.value().points[2][1], 1e3);

  auto stamped = ParseCommand("FEEDSTAMPED t1 10@1,2 12@3,4");
  ASSERT_TRUE(stamped.ok());
  ASSERT_EQ(stamped.value().stamps.size(), 2u);
  EXPECT_EQ(stamped.value().stamps[1], 12);

  // Disorder parses: whether it is legal depends on the tenant's mode,
  // which only the registry knows.
  EXPECT_TRUE(ParseCommand("FEEDSTAMPED t1 12@1,2 10@3,4").ok());

  auto sample = ParseCommand("SAMPLE t1 q=5 seed=99");
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().queries, 5);
  EXPECT_TRUE(sample.value().seed_set);
  EXPECT_EQ(sample.value().seed, 99u);

  auto sub = ParseCommand("SUBSCRIBE t1 churn every=50 threshold=0.2");
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub.value().query, QueryKind::kChurn);
  EXPECT_EQ(sub.value().every, 50u);
  EXPECT_DOUBLE_EQ(sub.value().threshold, 0.2);

  EXPECT_TRUE(ParseCommand("UNSUBSCRIBE t1 3").ok());
  EXPECT_TRUE(ParseCommand("FLUSH t1").ok());
  EXPECT_TRUE(ParseCommand("STATS").ok());
  EXPECT_TRUE(ParseCommand("STATS t1").ok());
  EXPECT_TRUE(ParseCommand("CLOSE t1").ok());
  EXPECT_TRUE(ParseCommand("PING").ok());
  EXPECT_TRUE(ParseCommand("QUIT").ok());
}

TEST(ParseCommandTest, RejectsMalformedLinesWithMessages) {
  const char* bad[] = {
      "",
      "   ",
      "NOSUCHVERB x",
      "CREATE",
      "CREATE t1",                               // missing dim/alpha/window
      "CREATE t1 dim=0 alpha=0.5 window=10",     // zero dim
      "CREATE t1 dim=2 alpha=nan window=10",     // non-finite alpha
      "CREATE t1 dim=2 alpha=0.5 window=-3",     // negative window
      "CREATE t1 dim=2 alpha=0.5 window=10 mode=banana",
      "CREATE t1 dim=2 alpha=0.5 window=10 metric=l7",
      "CREATE .hidden dim=2 alpha=0.5 window=10",  // leading-dot tenant
      "CREATE bad/name dim=2 alpha=0.5 window=10",
      "FEED",
      "FEED t1",                                 // no points
      "FEED t1 1,2 3",                           // inconsistent dims
      "FEED t1 1,abc",
      "FEED t1 1,inf",
      "FEED t1 1,,2",
      "FEEDSTAMPED t1 1,2",                      // missing stamp@
      "FEEDSTAMPED t1 x@1,2",
      "FEEDSTAMPED t1 1@",
      "SAMPLE",
      "SAMPLE t1 q=0",
      "SAMPLE t1 q=abc",
      "SUBSCRIBE t1",
      "SUBSCRIBE t1 digest",                     // missing every
      "SUBSCRIBE t1 digest every=0",
      // 2^63: would wrap negative in the registry's int64 trigger math.
      "SUBSCRIBE t1 digest every=9223372036854775808",
      "SUBSCRIBE t1 churn every=10",             // missing threshold
      "SUBSCRIBE t1 nosuchkind every=10",
      "UNSUBSCRIBE t1",
      "UNSUBSCRIBE t1 notanid",
      "PING extra",
  };
  for (const char* line : bad) {
    const auto result = ParseCommand(line);
    EXPECT_FALSE(result.ok()) << "accepted: " << line;
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty()) << line;
    }
  }
}

TEST(ParseCommandTest, FeedPointCountIsBounded) {
  std::string line = "FEED t1";
  for (size_t i = 0; i < kMaxPointsPerFeed + 1; ++i) line += " 1";
  EXPECT_FALSE(ParseCommand(line).ok());
}

// --------------------------------------------------- server over sockets

struct ServerFixture {
  std::string path;
  std::unique_ptr<Server> server;

  explicit ServerFixture(const char* tag, size_t fleet_threads = 2) {
    path = TestSocketPath(tag);
    Server::Options options;
    options.unix_path = path;
    options.fleet_threads = fleet_threads;
    auto started = Server::Start(options);
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    if (started.ok()) server = std::move(started).value();
  }

  ~ServerFixture() {
    if (server != nullptr) server->Shutdown();
  }
};

TEST(ServeProtocolTest, PingErrorsAndUnknownCommands) {
  ServerFixture fx("ping");
  ASSERT_NE(fx.server, nullptr);
  TestClient client(fx.path);
  ASSERT_TRUE(client.connected());

  EXPECT_EQ(client.Command("PING"),
            std::vector<std::string>{"OK pong"});
  auto unknown = client.Command("BOGUS stuff");
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0].rfind("ERR", 0), 0u);

  // Feeding / querying a tenant that does not exist.
  EXPECT_EQ(client.Command("FEED nobody 1,2")[0].rfind("ERR", 0), 0u);
  EXPECT_EQ(client.Command("SAMPLE nobody")[0].rfind("ERR", 0), 0u);
  EXPECT_EQ(client.Command("CLOSE nobody")[0].rfind("ERR", 0), 0u);

  // Duplicate CREATE.
  EXPECT_EQ(client.Command("CREATE dup dim=2 alpha=0.5 window=10"),
            std::vector<std::string>{"OK"});
  EXPECT_EQ(client.Command("CREATE dup dim=2 alpha=0.5 window=10")[0].rfind(
                "ERR", 0),
            0u);

  // Wrong dimension and wrong feed verb for the mode.
  EXPECT_EQ(client.Command("FEED dup 1,2,3")[0].rfind("ERR", 0), 0u);
  EXPECT_EQ(client.Command("FEEDSTAMPED dup 1@1,2")[0].rfind("ERR", 0), 0u);

  // Sampling an empty window.
  EXPECT_EQ(client.Command("SAMPLE dup")[0].rfind("ERR", 0), 0u);

  // ckpt=1 without a checkpoint root.
  EXPECT_EQ(client.Command(
                "CREATE ck dim=2 alpha=0.5 window=10 ckpt=1")[0].rfind(
                "ERR", 0),
            0u);
}

TEST(ServeProtocolTest, PartialAndPipelinedFraming) {
  ServerFixture fx("frame");
  ASSERT_NE(fx.server, nullptr);
  TestClient client(fx.path);
  ASSERT_TRUE(client.connected());

  // One command dribbled in three raw writes.
  ASSERT_TRUE(client.SendRaw("PI"));
  ASSERT_TRUE(client.SendRaw("N"));
  ASSERT_TRUE(client.SendRaw("G\n"));
  EXPECT_EQ(client.ReadUnit(), std::vector<std::string>{"OK pong"});

  // Three commands pipelined in one write: responses come back in
  // command order.
  ASSERT_TRUE(client.SendRaw(
      "CREATE p dim=1 alpha=0.5 window=10\nFEED p 1 2 3\nSAMPLE p\n"));
  EXPECT_EQ(client.ReadUnit(), std::vector<std::string>{"OK"});
  EXPECT_EQ(client.ReadUnit(), std::vector<std::string>{"OK fed=3"});
  const auto sample = client.ReadUnit();
  ASSERT_EQ(sample.size(), 2u);
  EXPECT_EQ(sample[0].rfind("ITEM ", 0), 0u);
  EXPECT_EQ(sample[1], "OK");
}

TEST(ServeProtocolTest, OversizedLineGetsErrorAndConnectionSurvives) {
  std::string path = TestSocketPath("oversz");
  Server::Options options;
  options.unix_path = path;
  options.fleet_threads = 1;
  options.max_line_bytes = 128;
  auto started = Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();

  TestClient client(path);
  ASSERT_TRUE(client.connected());
  const std::string giant(1000, 'z');
  ASSERT_TRUE(client.SendRaw(giant + "\n"));
  const auto err = client.ReadUnit();
  ASSERT_EQ(err.size(), 1u);
  EXPECT_EQ(err[0].rfind("ERR", 0), 0u);
  // Same connection keeps working after the oversized line.
  EXPECT_EQ(client.Command("PING"), std::vector<std::string>{"OK pong"});
  started.value()->Shutdown();
}

TEST(ServeProtocolTest, TimeModeStampRegressionIsAnErrorNotACrash) {
  ServerFixture fx("regress");
  ASSERT_NE(fx.server, nullptr);
  TestClient client(fx.path);
  ASSERT_TRUE(client.connected());

  ASSERT_EQ(client.Command("CREATE tm dim=1 alpha=0.5 window=50 mode=time"),
            std::vector<std::string>{"OK"});
  EXPECT_EQ(client.Command("FEEDSTAMPED tm 10@1 20@2"),
            std::vector<std::string>{"OK fed=2"});
  // Regression across batches.
  EXPECT_EQ(client.Command("FEEDSTAMPED tm 15@3")[0].rfind("ERR", 0), 0u);
  // Regression inside one batch.
  EXPECT_EQ(client.Command("FEEDSTAMPED tm 30@4 25@5")[0].rfind("ERR", 0),
            0u);
  // The tenant survives and keeps accepting ordered batches.
  EXPECT_EQ(client.Command("FEEDSTAMPED tm 30@6"),
            std::vector<std::string>{"OK fed=1"});
}

// Clustered 2-d revisit stream: `groups` centers 10 apart with jitter.
std::vector<Point> Clustered(size_t n, size_t groups, uint64_t seed) {
  std::vector<Point> points;
  points.reserve(n);
  Xoshiro256pp rng(SplitMix64(seed));
  for (size_t i = 0; i < n; ++i) {
    const double g = static_cast<double>(rng.NextBounded(groups));
    Point p(2);
    p[0] = 10.0 * g + 0.3 * (rng.NextDouble() - 0.5);
    p[1] = 10.0 * g + 0.3 * (rng.NextDouble() - 0.5);
    points.push_back(std::move(p));
  }
  return points;
}

/// %.17g coordinates so the server's strtod reconstructs the exact
/// doubles — the same trick rl0_client's feed path uses.
std::string CoordToken(const Point& p) {
  char buf[64];
  std::string out;
  for (size_t d = 0; d < p.dim(); ++d) {
    std::snprintf(buf, sizeof(buf), "%.17g", p[d]);
    if (d > 0) out += ',';
    out += buf;
  }
  return out;
}

/// Draws `q` CLI-style samples from a drained pool: fresh query rng
/// seeded exactly like `rl0_cli sample` / the server's SAMPLE.
std::vector<std::string> DirectSampleLines(ShardedSwSamplerPool* pool,
                                           uint64_t seed, int q) {
  Xoshiro256pp rng(SplitMix64(seed ^ kQuerySeedSalt));
  std::vector<std::string> lines;
  for (int i = 0; i < q; ++i) {
    const auto sample = pool->SampleLatest(&rng);
    if (!sample.has_value()) {
      lines.push_back("<empty>");
      continue;
    }
    lines.push_back("ITEM " +
                    FormatSampleLine(sample->point, sample->stream_index));
  }
  return lines;
}

TEST(ServeProtocolTest, SequenceModeSampleMatchesDirectPoolByteForByte) {
  const size_t kN = 4000;
  const uint64_t kSeed = 11;
  const auto points = Clustered(kN, 60, 5);

  ServerFixture fx("diffseq");
  ASSERT_NE(fx.server, nullptr);
  TestClient client(fx.path);
  ASSERT_TRUE(client.connected());
  char create[160];
  std::snprintf(create, sizeof(create),
                "CREATE d dim=2 alpha=0.8 window=600 shards=3 seed=%llu "
                "m=%zu",
                static_cast<unsigned long long>(kSeed), kN);
  ASSERT_EQ(client.Command(create), std::vector<std::string>{"OK"});

  // Feed in ragged chunks (prime stride) — chunking must be invisible.
  for (size_t offset = 0; offset < kN;) {
    const size_t end = std::min(kN, offset + 137);
    std::string feed = "FEED d";
    for (size_t i = offset; i < end; ++i) feed += " " + CoordToken(points[i]);
    const auto reply = client.Command(feed);
    ASSERT_EQ(reply.size(), 1u);
    ASSERT_EQ(reply[0].rfind("OK fed=", 0), 0u) << reply[0];
    offset = end;
  }

  // The reference pool: same options, dedicated pipeline threads (the
  // fleet-vs-dedicated determinism contract is part of the pin).
  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 0.8;
  opts.seed = kSeed;
  opts.expected_stream_length = kN;
  auto pool = ShardedSwSamplerPool::Create(opts, 600, 3);
  ASSERT_TRUE(pool.ok());
  pool.value().FeedBorrowed(
      Span<const Point>(points.data(), points.size()));
  pool.value().Drain();
  const auto expected = DirectSampleLines(&pool.value(), kSeed, 5);

  auto got = client.Command("SAMPLE d q=5");
  ASSERT_EQ(got.size(), 6u);
  EXPECT_EQ(got.back(), "OK");
  got.pop_back();
  EXPECT_EQ(got, expected);

  // A different query seed also matches.
  const auto expected99 = DirectSampleLines(&pool.value(), 99, 3);
  auto got99 = client.Command("SAMPLE d q=3 seed=99");
  ASSERT_EQ(got99.size(), 4u);
  got99.pop_back();
  EXPECT_EQ(got99, expected99);
}

TEST(ServeProtocolTest, TimeModeSampleMatchesDirectPoolByteForByte) {
  const size_t kN = 3000;
  const uint64_t kSeed = 23;
  const auto points = Clustered(kN, 50, 6);
  std::vector<int64_t> stamps(kN);
  Xoshiro256pp gaps(77);
  int64_t t = 0;
  for (size_t i = 0; i < kN; ++i) {
    t += static_cast<int64_t>(gaps.NextBounded(4));
    stamps[i] = t;
  }

  ServerFixture fx("difftime");
  ASSERT_NE(fx.server, nullptr);
  TestClient client(fx.path);
  ASSERT_TRUE(client.connected());
  char create[160];
  std::snprintf(create, sizeof(create),
                "CREATE d dim=2 alpha=0.8 window=900 mode=time shards=2 "
                "seed=%llu m=%zu",
                static_cast<unsigned long long>(kSeed), kN);
  ASSERT_EQ(client.Command(create), std::vector<std::string>{"OK"});

  char stamp[32];
  for (size_t offset = 0; offset < kN;) {
    const size_t end = std::min(kN, offset + 211);
    std::string feed = "FEEDSTAMPED d";
    for (size_t i = offset; i < end; ++i) {
      std::snprintf(stamp, sizeof(stamp), " %lld@",
                    static_cast<long long>(stamps[i]));
      feed += stamp + CoordToken(points[i]);
    }
    const auto reply = client.Command(feed);
    ASSERT_EQ(reply.size(), 1u);
    ASSERT_EQ(reply[0].rfind("OK fed=", 0), 0u) << reply[0];
    offset = end;
  }

  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 0.8;
  opts.seed = kSeed;
  opts.expected_stream_length = kN;
  auto pool = ShardedSwSamplerPool::Create(opts, 900, 2);
  ASSERT_TRUE(pool.ok());
  pool.value().FeedStamped(
      Span<const Point>(points.data(), points.size()),
      Span<const int64_t>(stamps.data(), stamps.size()));
  pool.value().Drain();
  const auto expected = DirectSampleLines(&pool.value(), kSeed, 4);

  auto got = client.Command("SAMPLE d q=4");
  ASSERT_EQ(got.size(), 5u);
  got.pop_back();
  EXPECT_EQ(got, expected);
}

TEST(ServeProtocolTest, LateModeSampleMatchesDirectPoolByteForByte) {
  const size_t kN = 3000;
  const uint64_t kSeed = 31;
  const int64_t kLateness = 40;
  const auto points = Clustered(kN, 50, 8);
  // Sorted stamps, then bounded disorder within the lateness budget.
  std::vector<int64_t> stamps(kN);
  Xoshiro256pp rng(123);
  int64_t t = 0;
  for (size_t i = 0; i < kN; ++i) {
    t += static_cast<int64_t>(rng.NextBounded(3));
    stamps[i] = t;
  }
  std::vector<int64_t> disordered = stamps;
  for (size_t i = 0; i < kN; ++i) {
    const int64_t back = static_cast<int64_t>(rng.NextBounded(
        static_cast<uint64_t>(kLateness / 2)));
    disordered[i] = std::max<int64_t>(0, stamps[i] - back);
  }

  ServerFixture fx("difflate");
  ASSERT_NE(fx.server, nullptr);
  TestClient client(fx.path);
  ASSERT_TRUE(client.connected());
  char create[200];
  std::snprintf(create, sizeof(create),
                "CREATE d dim=2 alpha=0.8 window=900 mode=late "
                "lateness=%lld shards=2 seed=%llu m=%zu",
                static_cast<long long>(kLateness),
                static_cast<unsigned long long>(kSeed), kN);
  ASSERT_EQ(client.Command(create), std::vector<std::string>{"OK"});

  char stamp[32];
  for (size_t offset = 0; offset < kN;) {
    const size_t end = std::min(kN, offset + 173);
    std::string feed = "FEEDSTAMPED d";
    for (size_t i = offset; i < end; ++i) {
      std::snprintf(stamp, sizeof(stamp), " %lld@",
                    static_cast<long long>(disordered[i]));
      feed += stamp + CoordToken(points[i]);
    }
    const auto reply = client.Command(feed);
    ASSERT_EQ(reply.size(), 1u);
    ASSERT_EQ(reply[0].rfind("OK fed=", 0), 0u) << reply[0];
    offset = end;
  }
  ASSERT_EQ(client.Command("FLUSH d"), std::vector<std::string>{"OK"});

  SamplerOptions opts;
  opts.dim = 2;
  opts.alpha = 0.8;
  opts.seed = kSeed;
  opts.expected_stream_length = kN;
  opts.allowed_lateness = kLateness;
  auto pool = ShardedSwSamplerPool::Create(opts, 900, 2);
  ASSERT_TRUE(pool.ok());
  pool.value().FeedStampedLate(
      Span<const Point>(points.data(), points.size()),
      Span<const int64_t>(disordered.data(), disordered.size()));
  pool.value().FlushLate();
  pool.value().Drain();
  const auto expected = DirectSampleLines(&pool.value(), kSeed, 4);

  auto got = client.Command("SAMPLE d q=4");
  ASSERT_EQ(got.size(), 5u);
  got.pop_back();
  EXPECT_EQ(got, expected);
}

TEST(ServeProtocolTest, TenantsAreIsolated) {
  ServerFixture fx("isolate");
  ASSERT_NE(fx.server, nullptr);
  TestClient client(fx.path);
  ASSERT_TRUE(client.connected());

  ASSERT_EQ(client.Command("CREATE a dim=1 alpha=0.5 window=100 seed=1"),
            std::vector<std::string>{"OK"});
  ASSERT_EQ(client.Command("CREATE b dim=1 alpha=0.5 window=100 seed=1"),
            std::vector<std::string>{"OK"});
  ASSERT_EQ(client.Command("FEED a 10 20 30"),
            std::vector<std::string>{"OK fed=3"});
  ASSERT_EQ(client.Command("FEED b 1000 2000"),
            std::vector<std::string>{"OK fed=2"});

  // a's samples draw only from a's groups (values ≤ 30); b's only from
  // b's (values ≥ 1000).
  for (int trial = 0; trial < 5; ++trial) {
    char cmd[48];
    std::snprintf(cmd, sizeof(cmd), "SAMPLE a seed=%d", trial);
    const auto sa = client.Command(cmd);
    ASSERT_EQ(sa.size(), 2u);
    EXPECT_TRUE(sa[0].find("(10)") != std::string::npos ||
                sa[0].find("(20)") != std::string::npos ||
                sa[0].find("(30)") != std::string::npos)
        << sa[0];
    std::snprintf(cmd, sizeof(cmd), "SAMPLE b seed=%d", trial);
    const auto sb = client.Command(cmd);
    ASSERT_EQ(sb.size(), 2u);
    EXPECT_TRUE(sb[0].find("(1000)") != std::string::npos ||
                sb[0].find("(2000)") != std::string::npos)
        << sb[0];
  }

  // Closing a leaves b fully functional.
  ASSERT_EQ(client.Command("CLOSE a"), std::vector<std::string>{"OK"});
  EXPECT_EQ(client.Command("SAMPLE a seed=1")[0].rfind("ERR", 0), 0u);
  EXPECT_EQ(client.Command("SAMPLE b seed=1").size(), 2u);
}

TEST(ServeProtocolTest, StatsReportTenantsAndQuitEndsSession) {
  ServerFixture fx("stats");
  ASSERT_NE(fx.server, nullptr);
  TestClient client(fx.path);
  ASSERT_TRUE(client.connected());

  ASSERT_EQ(client.Command("CREATE s dim=1 alpha=0.5 window=10"),
            std::vector<std::string>{"OK"});
  ASSERT_EQ(client.Command("FEED s 1 2 3 4"),
            std::vector<std::string>{"OK fed=4"});

  const auto per_tenant = client.Command("STATS s");
  ASSERT_EQ(per_tenant.size(), 2u);
  EXPECT_NE(per_tenant[0].find("tenant=s"), std::string::npos);
  EXPECT_NE(per_tenant[0].find("points=4"), std::string::npos);
  EXPECT_NE(per_tenant[0].find("mode=seq"), std::string::npos);

  const auto global = client.Command("STATS");
  ASSERT_EQ(global.size(), 2u);
  EXPECT_NE(global[0].find("tenants=1"), std::string::npos);

  EXPECT_EQ(client.Command("QUIT"), std::vector<std::string>{"OK bye"});
  // Server closed the connection: the next read hits EOF.
  const auto after = client.ReadUnit(2000);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0], "<io error>");
}

}  // namespace
}  // namespace serve
}  // namespace rl0
