// Unit tests for rl0/util: Status/Result, RNG, bits, space accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "rl0/core/iw_sampler.h"
#include "rl0/util/bits.h"
#include "rl0/util/rng.h"
#include "rl0/util/small_vector.h"
#include "rl0/util/space.h"
#include "rl0/util/status.h"

namespace rl0 {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad alpha").message(), "bad alpha");
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  const std::string s = Status::InvalidArgument("alpha").ToString();
  EXPECT_NE(s.find("INVALID_ARGUMENT"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, MutableValueAccess) {
  Result<std::string> r(std::string("ab"));
  r.value() += "c";
  EXPECT_EQ(r.value(), "abc");
}

// ------------------------------------------------------------------- RNG

TEST(SplitMix64Test, DeterministicAndAvalanching) {
  EXPECT_EQ(SplitMix64(123), SplitMix64(123));
  EXPECT_NE(SplitMix64(123), SplitMix64(124));
  // Flipping one input bit flips roughly half the output bits.
  int flipped = __builtin_popcountll(SplitMix64(0) ^ SplitMix64(1));
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(SplitMix64SequenceTest, MatchesRepeatedCalls) {
  SplitMix64Sequence a(9), b(9);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256ppTest, DeterministicPerSeed) {
  Xoshiro256pp a(7), b(7), c(8);
  EXPECT_EQ(a(), b());
  Xoshiro256pp a2(7);
  a2();
  EXPECT_NE(a2(), c());
}

TEST(Xoshiro256ppTest, NextDoubleInUnitInterval) {
  Xoshiro256pp rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256ppTest, NextBoundedStaysInRangeAndCoversAll) {
  Xoshiro256pp rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256ppTest, NextBoundedOneAlwaysZero) {
  Xoshiro256pp rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Xoshiro256ppTest, BernoulliEdgeCases) {
  Xoshiro256pp rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(Xoshiro256ppTest, BernoulliFrequencyMatchesP) {
  Xoshiro256pp rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256ppTest, BoundedIsApproximatelyUniform) {
  Xoshiro256pp rng(6);
  const uint64_t buckets = 10;
  const int n = 100000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(buckets)];
  for (uint64_t b = 0; b < buckets; ++b) {
    EXPECT_NEAR(counts[b], n / static_cast<int>(buckets), 500);
  }
}

TEST(Xoshiro256ppTest, GaussianMomentsRoughlyStandard) {
  Xoshiro256pp rng(7);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

// ------------------------------------------------------------------ bits

TEST(BitsTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(4), 2u);
  EXPECT_EQ(CeilLog2(5), 3u);
  EXPECT_EQ(CeilLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
  EXPECT_EQ(CeilLog2(uint64_t{1} << 62), 62u);
}

TEST(BitsTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(4), 2u);
  EXPECT_EQ(FloorLog2(1023), 9u);
  EXPECT_EQ(FloorLog2(1024), 10u);
}

TEST(BitsTest, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1000), 1024u);
}

TEST(BitsTest, IsPow2) {
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(2));
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(0));
  EXPECT_FALSE(IsPow2(3));
  EXPECT_FALSE(IsPow2(65));
}

// ---------------------------------------------------------- small vector

TEST(SmallVectorTest, StaysInlineUpToCapacity) {
  SmallVector<uint64_t, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 4u);
  for (uint64_t i = 0; i < 4; ++i) v.push_back(i * 10);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], i * 10);
}

TEST(SmallVectorTest, SpillsToHeapAndKeepsContents) {
  SmallVector<uint64_t, 4> v;
  for (uint64_t i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, ClearKeepsStorageAndReusesIt) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  const size_t grown = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), grown);  // no shrink: scratch-buffer semantics
  v.push_back(42);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 42);
}

TEST(SmallVectorTest, IteratorsAndAlgorithms) {
  SmallVector<uint64_t, 8> v;
  for (uint64_t x : {5u, 1u, 4u, 2u, 3u}) v.push_back(x);
  std::sort(v.begin(), v.end());
  const std::vector<uint64_t> got(v.begin(), v.end());
  EXPECT_EQ(got, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
}

TEST(SmallVectorTest, CopyPreservesInlineAndHeapStates) {
  SmallVector<int, 3> inline_v;
  inline_v.push_back(7);
  SmallVector<int, 3> inline_copy(inline_v);
  EXPECT_TRUE(inline_copy.is_inline());
  ASSERT_EQ(inline_copy.size(), 1u);
  EXPECT_EQ(inline_copy[0], 7);

  SmallVector<int, 3> heap_v;
  for (int i = 0; i < 9; ++i) heap_v.push_back(i);
  SmallVector<int, 3> heap_copy;
  heap_copy = heap_v;
  ASSERT_EQ(heap_copy.size(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(heap_copy[i], i);
  // Deep copy: mutating the source must not leak through.
  heap_v[0] = 100;
  EXPECT_EQ(heap_copy[0], 0);
}

TEST(SmallVectorTest, AdjacencyBufferMatchesVectorOutput) {
  // The grid's two AdjacentCells overloads must emit identical keys —
  // this is what makes the SmallVector swap decision-preserving.
  RandomGrid grid(3, 0.5, 99);
  Point p{0.3, 1.4, -0.7};
  std::vector<uint64_t> vec_keys;
  AdjKeyVec small_keys;
  grid.AdjacentCells(p, 1.0, &vec_keys);
  grid.AdjacentCells(p, 1.0, &small_keys);
  ASSERT_EQ(small_keys.size(), vec_keys.size());
  for (size_t i = 0; i < vec_keys.size(); ++i) {
    EXPECT_EQ(small_keys[i], vec_keys[i]);
  }
}

// ----------------------------------------------------------------- space

TEST(SpaceMeterTest, TracksCurrentAndPeak) {
  SpaceMeter m;
  EXPECT_EQ(m.current(), 0u);
  m.Add(10);
  m.Add(5);
  EXPECT_EQ(m.current(), 15u);
  EXPECT_EQ(m.peak(), 15u);
  m.Remove(12);
  EXPECT_EQ(m.current(), 3u);
  EXPECT_EQ(m.peak(), 15u);
  m.Add(1);
  EXPECT_EQ(m.peak(), 15u);
}

TEST(SpaceMeterTest, SetUpdatesPeak) {
  SpaceMeter m;
  m.Set(7);
  EXPECT_EQ(m.current(), 7u);
  EXPECT_EQ(m.peak(), 7u);
  m.Set(3);
  EXPECT_EQ(m.current(), 3u);
  EXPECT_EQ(m.peak(), 7u);
  m.ResetPeak();
  EXPECT_EQ(m.peak(), 3u);
}

TEST(SpaceModelTest, PointWordsIncludesHeader) {
  EXPECT_EQ(PointWords(5), 5 + kPointHeaderWords);
  EXPECT_EQ(PointWords(0), kPointHeaderWords);
}

// ------------------------------------------- arena (SoA) rep accounting

TEST(SpaceModelTest, RepArenaWordsMatchesSoALayout) {
  // One arena-backed representative stores, per util/space.h:
  //   dim coordinate words in the PointStore buffer,
  //   kRepHeaderWords of SoA columns (id, stream_index, cell_key, point
  //   ref, packed flags + next-in-cell), and
  //   kCellIndexEntryWords for its CellIndex bucket share (key + head).
  EXPECT_EQ(RepArenaWords(5), 5 + kRepHeaderWords + kCellIndexEntryWords);
  EXPECT_EQ(RepArenaWords(20), 20 + kRepHeaderWords + kCellIndexEntryWords);
  // The flat layout must never charge more than the map-based model it
  // replaced (PointWords + two associative entries per rep).
  for (size_t dim : {1u, 2u, 5u, 20u, 64u}) {
    EXPECT_LE(RepArenaWords(dim), PointWords(dim) + 2 * kMapEntryWords);
  }
}

TEST(SpaceModelTest, ReservoirRepExtraWordsMatchesColumns) {
  // The Section 2.3 variant adds, per rep: the group-sample coordinates
  // (dim words) plus the sample_index and group_count columns.
  EXPECT_EQ(ReservoirRepExtraWords(5), 5 + 2);
  EXPECT_EQ(ReservoirRepExtraWords(1), 1 + 2);
}

TEST(SpaceModelTest, SamplerChargesExactlyRepArenaWordsPerRep) {
  // End to end: every stored representative of RobustL0SamplerIW costs
  // exactly RepArenaWords(dim) on top of the sampler scalars. Isolated
  // points far apart, rate pinned to 1, so each insert stores one rep.
  const size_t dim = 4;
  SamplerOptions opts;
  opts.dim = dim;
  opts.alpha = 1.0;
  opts.seed = 5;
  opts.side_mode = GridSideMode::kCustom;
  opts.custom_side = 4.0;
  opts.accept_cap = 1 << 20;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  const size_t empty = sampler.SpaceWords();
  for (int i = 1; i <= 5; ++i) {
    Point p(dim);
    p[0] = 100.0 * i;
    sampler.Insert(p);
    EXPECT_EQ(sampler.SpaceWords(), empty + i * RepArenaWords(dim));
  }
}

TEST(SpaceMeterTest, ArenaRepChargesAreLinearInLiveReps) {
  // Simulates the sampler's metering discipline: Add(RepArenaWords) per
  // stored rep, Remove on refilter-drop — current() must track the live
  // rep population exactly.
  const size_t dim = 7;
  SpaceMeter m;
  for (int i = 0; i < 10; ++i) m.Add(RepArenaWords(dim));
  EXPECT_EQ(m.current(), 10 * RepArenaWords(dim));
  for (int i = 0; i < 4; ++i) m.Remove(RepArenaWords(dim));
  EXPECT_EQ(m.current(), 6 * RepArenaWords(dim));
  EXPECT_EQ(m.peak(), 10 * RepArenaWords(dim));
}

}  // namespace
}  // namespace rl0
