// Determinism of the ingestion paths introduced by the batch refactor:
//
//   1. InsertBatch must be observationally identical to point-at-a-time
//      Insert (it is the same judging loop over a contiguous chunk).
//   2. Sharded ingestion (ShardedSamplerPool::ConsumeParallel, which feeds
//      shard s the global residue class i ≡ s mod S via InsertStrided)
//      followed by Merged() must reproduce the single-sampler accept set
//      exactly on well-separated streams while the rate stays at 1 (every
//      cell is sampled at level 0, so judging is shard-independent and
//      earlier-representative-wins resolves to the global first point of
//      every group; see AbsorbFrom's contract for why coarser rates only
//      guarantee distributional equality).
//   3. The arena-based sampler must make bit-identical decisions to the
//      pre-refactor map-based implementation on the paper's evaluation
//      workloads (the sweep in differential_test.cc covers random
//      configurations; this pins the named datasets).

#include <gtest/gtest.h>

#include <vector>

#include "rl0/baseline/legacy_iw_sampler.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace rl0 {
namespace {

struct Workload {
  const char* name;
  NoisyDataset data;
};

// Three paper-flavoured workloads across dims {5, 7, 20}, kept small
// enough for CI (max_dups 20 instead of the paper's 100).
std::vector<Workload> Workloads() {
  std::vector<Workload> out;
  const auto add = [&out](const char* name, BaseDataset base, uint64_t seed) {
    NearDupOptions nd;
    nd.max_dups = 20;
    nd.seed = seed;
    out.push_back(Workload{name, MakeNearDuplicates(base, nd)});
  };
  add("Rand5", Rand5(), 11);
  add("Yacht", YachtLike(), 12);
  add("Rand20", Rand20(), 13);
  return out;
}

SamplerOptions BaseOptions(const NoisyDataset& data, uint64_t seed) {
  SamplerOptions opts;
  opts.dim = data.dim;
  opts.alpha = data.alpha;
  opts.seed = seed;
  opts.side_mode = GridSideMode::kHighDim;
  opts.expected_stream_length = data.size();
  return opts;
}

void ExpectSameItems(const std::vector<SampleItem>& got,
                     const std::vector<SampleItem>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].stream_index, want[i].stream_index);
    EXPECT_EQ(got[i].point, want[i].point);
  }
}

TEST(IngestDeterminismTest, BatchMatchesPointwise) {
  for (const Workload& w : Workloads()) {
    SCOPED_TRACE(w.name);
    const SamplerOptions opts = BaseOptions(w.data, 101);
    auto pointwise = RobustL0SamplerIW::Create(opts).value();
    auto batched = RobustL0SamplerIW::Create(opts).value();
    for (const Point& p : w.data.points) pointwise.Insert(p);
    batched.InsertBatch(w.data.points);
    EXPECT_EQ(batched.level(), pointwise.level());
    EXPECT_EQ(batched.points_processed(), pointwise.points_processed());
    ExpectSameItems(batched.AcceptedRepresentatives(),
                    pointwise.AcceptedRepresentatives());
    ExpectSameItems(batched.RejectedRepresentatives(),
                    pointwise.RejectedRepresentatives());
  }
}

TEST(IngestDeterminismTest, ShardedThenMergedMatchesSingleAtRateOne) {
  for (const Workload& w : Workloads()) {
    SCOPED_TRACE(w.name);
    SamplerOptions opts = BaseOptions(w.data, 202);
    // Keep the rate at 1 (cap far above the group count): judging is then
    // shard-independent and the merged accept set must match exactly.
    opts.accept_cap = 1 << 20;
    auto single = RobustL0SamplerIW::Create(opts).value();
    single.InsertBatch(w.data.points);
    ASSERT_EQ(single.level(), 0u);

    for (size_t shards : {2, 3, 5}) {
      auto pool = ShardedSamplerPool::Create(opts, shards).value();
      pool.ConsumeParallel(w.data.points);
      EXPECT_EQ(pool.points_processed(), w.data.points.size());
      auto merged = pool.Merged().value();
      EXPECT_EQ(merged.level(), 0u);
      ExpectSameItems(merged.AcceptedRepresentatives(),
                      single.AcceptedRepresentatives());
      ExpectSameItems(merged.RejectedRepresentatives(),
                      single.RejectedRepresentatives());
    }
  }
}

TEST(IngestDeterminismTest, ArenaMatchesLegacyOnPaperWorkloads) {
  for (const Workload& w : Workloads()) {
    SCOPED_TRACE(w.name);
    // Natural κ0·log m cap: the rate-halving path is exercised too.
    const SamplerOptions opts = BaseOptions(w.data, 303);
    auto sampler = RobustL0SamplerIW::Create(opts).value();
    auto legacy = LegacyL0SamplerIW::Create(opts).value();
    sampler.InsertBatch(w.data.points);
    for (const Point& p : w.data.points) legacy.Insert(p);
    EXPECT_EQ(sampler.level(), legacy.level());
    ExpectSameItems(sampler.AcceptedRepresentatives(),
                    legacy.AcceptedRepresentatives());
    ExpectSameItems(sampler.RejectedRepresentatives(),
                    legacy.RejectedRepresentatives());
  }
}

TEST(IngestDeterminismTest, ChunkedConsumeParallelKeepsGlobalIndices) {
  // Streaming ingestion feeds the pool chunk by chunk; the pool's index
  // base must keep stream positions globally unique and identical to a
  // single whole-stream call.
  const Workload w = Workloads()[0];
  SamplerOptions opts = BaseOptions(w.data, 404);
  opts.accept_cap = 1 << 20;
  auto whole = ShardedSamplerPool::Create(opts, 3).value();
  whole.ConsumeParallel(w.data.points);
  auto chunked = ShardedSamplerPool::Create(opts, 3).value();
  const Span<const Point> all(w.data.points);
  const size_t half = all.size() / 2;
  chunked.ConsumeParallel(all.subspan(0, half));
  chunked.ConsumeParallel(all.subspan(half, all.size() - half));
  EXPECT_EQ(chunked.points_processed(), whole.points_processed());
  // Chunk boundaries shift each point's shard assignment, so per-shard
  // states differ — but the merged union must still be built from valid
  // global indices and cover the same groups. At rate 1 the merged accept
  // set is the set of global first points in both feeds.
  ExpectSameItems(chunked.Merged().value().AcceptedRepresentatives(),
                  whole.Merged().value().AcceptedRepresentatives());
}

TEST(IngestDeterminismTest, StridedUnionCoversEveryGlobalIndex) {
  // InsertStrided stamps global positions: the union of the shards'
  // accepted + rejected representative indices for a duplicate-free,
  // well-separated stream at rate 1 is exactly {0, ..., n-1} partitioned
  // by residue class.
  const BaseDataset base = SeparatedCenters(60, 3, 10.0, 7);
  SamplerOptions opts;
  opts.dim = 3;
  opts.alpha = 1.0;
  opts.seed = 99;
  opts.side_mode = GridSideMode::kCustom;
  opts.custom_side = 3.0;
  opts.accept_cap = 1 << 20;
  opts.expected_stream_length = base.points.size();
  const size_t shards = 4;
  auto pool = ShardedSamplerPool::Create(opts, shards).value();
  pool.ConsumeParallel(base.points);
  std::vector<bool> seen(base.points.size(), false);
  for (size_t s = 0; s < shards; ++s) {
    for (const auto& item : pool.shard(s).AcceptedRepresentatives()) {
      ASSERT_LT(item.stream_index, seen.size());
      EXPECT_EQ(item.stream_index % shards, s);
      EXPECT_FALSE(seen[item.stream_index]);
      seen[item.stream_index] = true;
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "stream position " << i << " unaccounted";
  }
}

}  // namespace
}  // namespace rl0
