// Tests for SwFixedRateSampler (paper Algorithm 2): representative-point
// semantics over sliding windows (Observation 1 / Figure 2), expiry,
// fixed-rate sampling, and the Split/Merge support used by Algorithm 3.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "rl0/core/sw_fixed_sampler.h"

namespace rl0 {
namespace {

SamplerOptions BaseOptions(size_t dim, double alpha, uint64_t seed) {
  SamplerOptions opts;
  opts.dim = dim;
  opts.alpha = alpha;
  opts.seed = seed;
  opts.expected_stream_length = 1 << 16;
  return opts;
}

TEST(SwFixedTest, CreateStandaloneValidates) {
  SamplerOptions bad;
  EXPECT_FALSE(SwFixedRateSampler::CreateStandalone(bad, 0, 10).ok());
  EXPECT_FALSE(
      SwFixedRateSampler::CreateStandalone(BaseOptions(2, 1.0, 1), 0, 0)
          .ok());
  EXPECT_FALSE(
      SwFixedRateSampler::CreateStandalone(BaseOptions(2, 1.0, 1), 63, 10)
          .ok());
  EXPECT_TRUE(
      SwFixedRateSampler::CreateStandalone(BaseOptions(2, 1.0, 1), 3, 10)
          .ok());
}

TEST(SwFixedTest, LevelZeroAcceptsEveryGroup) {
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(1, 1.0, 2), 0, 100)
          .value();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(sampler->Insert(Point{10.0 * i}, i));
  }
  EXPECT_EQ(sampler->accept_size(), 10u);
  EXPECT_EQ(sampler->reject_size(), 0u);
}

TEST(SwFixedTest, SameGroupUpdatesLatestNotCount) {
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(1, 1.0, 3), 0, 100)
          .value();
  EXPECT_TRUE(sampler->Insert(Point{0.0}, 0));
  EXPECT_TRUE(sampler->Insert(Point{0.5}, 1));
  EXPECT_TRUE(sampler->Insert(Point{-0.3}, 2));
  EXPECT_EQ(sampler->group_count(), 1u);
  std::vector<GroupRecord> groups;
  sampler->SnapshotGroups(&groups);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].rep, Point({0.0}));        // representative unchanged
  EXPECT_EQ(groups[0].latest, Point({-0.3}));    // latest point updated
  EXPECT_EQ(groups[0].latest_stamp, 2);
}

TEST(SwFixedTest, ExpiryDropsDeadGroups) {
  // Window 5: a group whose latest point has stamp ≤ now-5 disappears.
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(1, 1.0, 4), 0, 5)
          .value();
  sampler->Insert(Point{0.0}, 0);
  sampler->Insert(Point{100.0}, 3);
  EXPECT_EQ(sampler->group_count(), 2u);
  sampler->Expire(5);  // horizon 0: group at stamp 0 dies
  EXPECT_EQ(sampler->group_count(), 1u);
  sampler->Expire(8);  // horizon 3: group at stamp 3 dies
  EXPECT_EQ(sampler->group_count(), 0u);
  EXPECT_EQ(sampler->accept_size(), 0u);
}

TEST(SwFixedTest, FreshPointsKeepGroupAlive) {
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(1, 1.0, 5), 0, 5)
          .value();
  // Same group refreshed every 3 stamps: never expires.
  for (int t = 0; t <= 30; t += 3) {
    sampler->Insert(Point{0.1 * (t % 5)}, t);
    EXPECT_EQ(sampler->group_count(), 1u) << "t=" << t;
  }
}

TEST(SwFixedTest, RepresentativeSemanticsFigure2) {
  // Figure 2 of the paper: the representative of a group in the current
  // window is the latest point p such that the window right before p
  // (inclusive) has no other group point. Window 5, group points at
  // stamps 0, 3, 9:
  //  - at stamp 3 the representative is still the point from stamp 0;
  //  - by stamp 9 the stamp-3 point has expired (9-5=4 ≥ 3), so the
  //    stamp-9 point becomes the new representative.
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(1, 1.0, 6), 0, 5)
          .value();
  sampler->Insert(Point{0.0}, 0);
  sampler->Insert(Point{0.2}, 3);
  std::vector<GroupRecord> groups;
  sampler->SnapshotGroups(&groups);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].rep, Point({0.0}));
  sampler->Insert(Point{0.4}, 9);
  groups.clear();
  sampler->SnapshotGroups(&groups);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].rep, Point({0.4}));
  EXPECT_EQ(groups[0].latest, Point({0.4}));
}

TEST(SwFixedTest, InsertReportsRecordedOnlyForCandidates) {
  // At a high level (tiny sample rate), most new groups are not recorded.
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(1, 1.0, 7), 10, 1000)
          .value();
  int recorded = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    recorded += sampler->Insert(Point{10.0 * i}, i);
  }
  // Rate 2^-10 per cell; with the 1-d side=α/2 grid a group touches ≤ 4
  // candidate cells, so recorded counts stay far below n.
  EXPECT_LT(recorded, n / 4);
  EXPECT_EQ(static_cast<size_t>(recorded), sampler->group_count());
}

TEST(SwFixedTest, AcceptProbabilityMatchesRate) {
  // Observation 1(2): each window group enters Sacc with probability 1/R.
  const uint32_t level = 2;  // R = 4
  const int n_groups = 400;
  int accepted_total = 0;
  const int seeds = 60;
  for (int seed = 0; seed < seeds; ++seed) {
    auto sampler = SwFixedRateSampler::CreateStandalone(
                       BaseOptions(1, 1.0, 100 + seed), level, 1 << 20)
                       .value();
    for (int i = 0; i < n_groups; ++i) {
      sampler->Insert(Point{10.0 * i}, i);
    }
    accepted_total += static_cast<int>(sampler->accept_size());
  }
  const double rate = static_cast<double>(accepted_total) /
                      static_cast<double>(n_groups * seeds);
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(SwFixedTest, SampleReturnsLatestPointOfAcceptedGroup) {
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(1, 1.0, 8), 0, 100)
          .value();
  sampler->Insert(Point{0.0}, 0);
  sampler->Insert(Point{0.4}, 7);  // same group, newer
  Xoshiro256pp rng(9);
  const auto sample = sampler->Sample(8, &rng);
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->point, Point({0.4}));
}

TEST(SwFixedTest, SampleEmptyWindowIsNullopt) {
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(1, 1.0, 10), 0, 5)
          .value();
  sampler->Insert(Point{0.0}, 0);
  Xoshiro256pp rng(11);
  EXPECT_TRUE(sampler->Sample(3, &rng).has_value());
  EXPECT_FALSE(sampler->Sample(50, &rng).has_value());
}

TEST(SwFixedTest, ResetClearsEverything) {
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(1, 1.0, 12), 0, 100)
          .value();
  for (int i = 0; i < 5; ++i) sampler->Insert(Point{10.0 * i}, i);
  EXPECT_GT(sampler->group_count(), 0u);
  sampler->Reset();
  EXPECT_EQ(sampler->group_count(), 0u);
  EXPECT_EQ(sampler->accept_size(), 0u);
  EXPECT_EQ(sampler->SpaceWords(), 4u);  // scalars only
}

TEST(SwFixedTest, SplitPromoteRespectsDefinition22) {
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(1, 1.0, 13), 0, 1 << 20)
          .value();
  const int n = 200;
  for (int i = 0; i < n; ++i) sampler->Insert(Point{10.0 * i}, i);
  ASSERT_EQ(sampler->accept_size(), static_cast<size_t>(n));

  std::vector<GroupRecord> promoted;
  ASSERT_TRUE(sampler->SplitPromote(&promoted));
  ASSERT_FALSE(promoted.empty());

  const SamplerContext& ctx = sampler->context();
  // t = max rep_index among promoted accepted groups; all kept groups come
  // strictly after t.
  uint64_t t = 0;
  for (const GroupRecord& g : promoted) {
    if (g.accepted) t = std::max(t, g.rep_index);
  }
  std::vector<GroupRecord> kept;
  sampler->SnapshotGroups(&kept);
  for (const GroupRecord& g : kept) {
    EXPECT_GT(g.rep_index, t);
  }
  // Promoted groups satisfy Definition 2.2 at level 1.
  std::vector<uint64_t> adj;
  for (const GroupRecord& g : promoted) {
    const bool own_sampled = ctx.hasher.SampledAtLevel(g.rep_cell, 1);
    EXPECT_EQ(g.accepted, own_sampled);
    if (!own_sampled) {
      ctx.grid.AdjacentCells(g.rep, ctx.options.alpha, &adj);
      bool near = false;
      for (uint64_t key : adj) near = near || ctx.hasher.SampledAtLevel(key, 1);
      EXPECT_TRUE(near);
    }
  }
  // Promotion must drop roughly half the accepted groups (rate halves),
  // so the promoted accepted count is well below t+1 groups.
  size_t promoted_accepted = 0;
  for (const GroupRecord& g : promoted) promoted_accepted += g.accepted;
  EXPECT_LT(promoted_accepted, static_cast<size_t>(t) + 1);
  EXPECT_GT(promoted_accepted, 0u);
}

TEST(SwFixedTest, SplitPromoteFailsWhenNothingSampledAtNextLevel) {
  // A single group: if its cell is not sampled at level+1, there is no
  // promotable representative and SplitPromote must report failure.
  for (uint64_t seed = 0; seed < 64; ++seed) {
    auto sampler = SwFixedRateSampler::CreateStandalone(
                       BaseOptions(1, 1.0, seed), 0, 1 << 20)
                       .value();
    sampler->Insert(Point{0.0}, 0);
    const SamplerContext& ctx = sampler->context();
    std::vector<GroupRecord> groups;
    sampler->SnapshotGroups(&groups);
    ASSERT_EQ(groups.size(), 1u);
    const bool promotable = ctx.hasher.SampledAtLevel(groups[0].rep_cell, 1);
    std::vector<GroupRecord> promoted;
    EXPECT_EQ(sampler->SplitPromote(&promoted), promotable);
    if (!promotable) {
      EXPECT_TRUE(promoted.empty());
      EXPECT_EQ(sampler->group_count(), 1u);  // untouched
    }
  }
}

TEST(SwFixedTest, MergeFromCombinesCounts) {
  SamplerOptions opts = BaseOptions(1, 1.0, 14);
  auto a = SwFixedRateSampler::CreateStandalone(opts, 0, 1000).value();
  for (int i = 0; i < 6; ++i) a->Insert(Point{10.0 * i}, i);
  std::vector<GroupRecord> donated;
  a->SnapshotGroups(&donated);
  const size_t donated_accept =
      static_cast<size_t>(std::count_if(donated.begin(), donated.end(),
                                        [](const GroupRecord& g) {
                                          return g.accepted;
                                        }));

  auto b = SwFixedRateSampler::CreateStandalone(opts, 0, 1000).value();
  for (int i = 0; i < 4; ++i) b->Insert(Point{1000.0 + 10.0 * i}, 10 + i);
  const size_t b_groups = b->group_count();
  const size_t b_accept = b->accept_size();

  // Give each donated record a unique id range to avoid collisions with
  // b's ids (the hierarchy uses a shared counter for this purpose).
  for (size_t i = 0; i < donated.size(); ++i) donated[i].id = 10000 + i;
  b->MergeFrom(std::move(donated));
  EXPECT_EQ(b->group_count(), b_groups + 6);
  EXPECT_EQ(b->accept_size(), b_accept + donated_accept);

  // Expiry still works across merged groups (window 1000, stamps ≤ 13:
  // everything is dead by now = 2000).
  b->Expire(2000);
  EXPECT_EQ(b->group_count(), 0u);
}

TEST(SwFixedTest, SpaceWordsTracksGroups) {
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(3, 1.0, 15), 0, 100)
          .value();
  const size_t empty = sampler->SpaceWords();
  sampler->Insert(Point{0.0, 0.0, 0.0}, 0);
  const size_t one = sampler->SpaceWords();
  sampler->Insert(Point{50.0, 0.0, 0.0}, 1);
  const size_t two = sampler->SpaceWords();
  EXPECT_GT(one, empty);
  EXPECT_EQ(two - one, one - empty);  // linear in group count
}

TEST(SwFixedTest, TimeBasedStampsWithGaps) {
  auto sampler =
      SwFixedRateSampler::CreateStandalone(BaseOptions(1, 1.0, 16), 0, 10)
          .value();
  sampler->Insert(Point{0.0}, 100);
  sampler->Insert(Point{50.0}, 105);
  EXPECT_EQ(sampler->group_count(), 2u);
  sampler->Insert(Point{90.0}, 112);  // horizon 102: first group dies
  EXPECT_EQ(sampler->group_count(), 2u);
  std::vector<GroupRecord> groups;
  sampler->SnapshotGroups(&groups);
  for (const GroupRecord& g : groups) {
    EXPECT_NE(g.rep, Point({0.0}));
  }
}

}  // namespace
}  // namespace rl0
