// Tests for the Section 6.1 accuracy metrics (stdDevNm, maxDevNm, chi2).

#include <gtest/gtest.h>

#include <cmath>

#include "rl0/metrics/distribution.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

TEST(SampleDistributionTest, EmptyIsZero) {
  SampleDistribution dist(5);
  EXPECT_EQ(dist.total(), 0u);
  EXPECT_DOUBLE_EQ(dist.StdDevNm(), 0.0);
  EXPECT_DOUBLE_EQ(dist.MaxDevNm(), 0.0);
  EXPECT_DOUBLE_EQ(dist.ChiSquare(), 0.0);
  EXPECT_EQ(dist.ZeroGroups(), 5u);
}

TEST(SampleDistributionTest, PerfectlyUniformIsZeroDeviation) {
  SampleDistribution dist(4);
  for (uint32_t g = 0; g < 4; ++g) {
    for (int i = 0; i < 25; ++i) dist.Record(g);
  }
  EXPECT_EQ(dist.total(), 100u);
  EXPECT_DOUBLE_EQ(dist.StdDevNm(), 0.0);
  EXPECT_DOUBLE_EQ(dist.MaxDevNm(), 0.0);
  EXPECT_DOUBLE_EQ(dist.ChiSquare(), 0.0);
  EXPECT_EQ(dist.MinCount(), 25u);
  EXPECT_EQ(dist.MaxCount(), 25u);
}

TEST(SampleDistributionTest, HandComputedSkew) {
  // n=2 groups, counts (3, 1): f = (0.75, 0.25), f* = 0.5.
  // stdDevNm = sqrt(((0.25)^2 + (0.25)^2)/2) / 0.5 = 0.5.
  // maxDevNm = 0.25/0.5 = 0.5.
  // chi2 = ((3-2)^2 + (1-2)^2)/2 = 1.
  SampleDistribution dist(2);
  dist.Record(0);
  dist.Record(0);
  dist.Record(0);
  dist.Record(1);
  EXPECT_NEAR(dist.StdDevNm(), 0.5, 1e-12);
  EXPECT_NEAR(dist.MaxDevNm(), 0.5, 1e-12);
  EXPECT_NEAR(dist.ChiSquare(), 1.0, 1e-12);
}

TEST(SampleDistributionTest, DegenerateAllOneGroup) {
  SampleDistribution dist(4);
  for (int i = 0; i < 100; ++i) dist.Record(2);
  // f = (0,0,1,0), f* = 0.25: maxDev = 0.75/0.25 = 3.
  EXPECT_NEAR(dist.MaxDevNm(), 3.0, 1e-12);
  EXPECT_EQ(dist.ZeroGroups(), 3u);
  EXPECT_EQ(dist.MinCount(), 0u);
  EXPECT_EQ(dist.MaxCount(), 100u);
}

TEST(SampleDistributionTest, NoiseFloorFormula) {
  EXPECT_NEAR(SampleDistribution::StdDevNoiseFloor(500, 200000),
              std::sqrt(499.0 / 200000.0), 1e-12);
  EXPECT_DOUBLE_EQ(SampleDistribution::StdDevNoiseFloor(10, 0), 0.0);
}

TEST(SampleDistributionTest, UniformSamplerMeetsNoiseFloor) {
  // A truly uniform sampler's measured stdDevNm should land near the
  // noise floor (within a factor ~1.5 at these counts).
  const size_t n = 50;
  const uint64_t runs = 40000;
  SampleDistribution dist(n);
  Xoshiro256pp rng(3);
  for (uint64_t i = 0; i < runs; ++i) {
    dist.Record(static_cast<uint32_t>(rng.NextBounded(n)));
  }
  const double floor = SampleDistribution::StdDevNoiseFloor(n, runs);
  EXPECT_LT(dist.StdDevNm(), 1.5 * floor);
  EXPECT_GT(dist.StdDevNm(), 0.4 * floor);
}

TEST(SampleDistributionTest, ChiSquareNearDofForUniform) {
  // For a uniform sampler, E[chi2] = n-1.
  const size_t n = 100;
  SampleDistribution dist(n);
  Xoshiro256pp rng(5);
  for (int i = 0; i < 100000; ++i) {
    dist.Record(static_cast<uint32_t>(rng.NextBounded(n)));
  }
  EXPECT_GT(dist.ChiSquare(), 50.0);
  EXPECT_LT(dist.ChiSquare(), 160.0);
}

}  // namespace
}  // namespace rl0
