// Invariants for RepTable::Compact / SwGroupTable::Compact: compaction
// must be invisible — same live representatives with the same columns,
// the same per-cell chain order (what FindCandidate's first-match probe
// walks), the same slot-relative order (what queries and snapshots
// iterate) — while packing the slots dense. Fuzzed against interleaved
// inserts/removes, and pinned end-to-end by a legacy differential on a
// stream that forces refilter-triggered compactions.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "rl0/baseline/legacy_iw_sampler.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/core/rep_table.h"
#include "rl0/core/sw_group_table.h"
#include "rl0/geom/point.h"
#include "rl0/geom/point_store.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

constexpr size_t kDim = 3;

Point MakePoint(uint64_t id) {
  Point p(kDim);
  p[0] = static_cast<double>(id);
  p[1] = static_cast<double>(id % 7);
  p[2] = -1.5 * static_cast<double>(id % 3);
  return p;
}

// Everything observable about one rep, keyed independently of slots.
struct RepState {
  uint64_t stream_index;
  uint64_t cell_key;
  bool accepted;
  Point point;
  bool operator==(const RepState& o) const {
    return stream_index == o.stream_index && cell_key == o.cell_key &&
           accepted == o.accepted && point == o.point;
  }
};

// Visible state: id → fields, slot-order id sequence, and per-cell chain
// id sequences (probe order).
struct TableView {
  std::map<uint64_t, RepState> reps;
  std::vector<uint64_t> slot_order;
  std::map<uint64_t, std::vector<uint64_t>> chains;
};

TableView Capture(const RepTable& t) {
  TableView v;
  for (uint32_t slot = 0; slot < t.slot_count(); ++slot) {
    if (!t.IsLive(slot)) continue;
    v.reps[t.id(slot)] =
        RepState{t.stream_index(slot), t.cell_key(slot), t.accepted(slot),
                 t.point(slot).Materialize()};
    v.slot_order.push_back(t.id(slot));
  }
  for (const auto& entry : v.reps) {
    const uint64_t key = entry.second.cell_key;
    if (v.chains.count(key)) continue;
    std::vector<uint64_t>& chain = v.chains[key];
    for (uint32_t s = t.CellHead(key); s != RepTable::kNpos;
         s = t.NextInCell(s)) {
      chain.push_back(t.id(s));
    }
  }
  return v;
}

void ExpectSameView(const TableView& before, const TableView& after) {
  EXPECT_EQ(before.reps.size(), after.reps.size());
  for (const auto& entry : before.reps) {
    auto it = after.reps.find(entry.first);
    ASSERT_NE(it, after.reps.end()) << "rep " << entry.first << " vanished";
    EXPECT_TRUE(entry.second == it->second) << "rep " << entry.first;
  }
  // Relative slot order is part of the contract (queries, snapshots and
  // Refilter scans iterate slots).
  EXPECT_EQ(before.slot_order, after.slot_order);
  // Chain order is what the first-match probe walks.
  EXPECT_EQ(before.chains, after.chains);
}

TEST(RepTableCompact, PreservesVisibleStateAndPacksSlots) {
  for (const bool with_reservoir : {false, true}) {
    RepTable t(kDim, with_reservoir);
    Xoshiro256pp rng(42);
    std::vector<uint32_t> slots;
    for (uint64_t id = 0; id < 200; ++id) {
      // ~25 distinct cells → chains several reps deep.
      slots.push_back(t.Add(MakePoint(id), id, 1000 + id, id % 25,
                            (id % 3) == 0));
    }
    // Kill a scattered 60%.
    for (uint64_t id = 0; id < 200; ++id) {
      if (rng.NextBounded(5) < 3) t.Remove(slots[id]);
    }
    const TableView before = Capture(t);
    const size_t live = t.live();
    t.Compact();
    EXPECT_EQ(t.live(), live);
    EXPECT_EQ(t.slot_count(), live);  // dense
    for (uint32_t s = 0; s < t.slot_count(); ++s) EXPECT_TRUE(t.IsLive(s));
    ExpectSameView(before, Capture(t));

    // The table stays fully functional: add/remove after compaction.
    const uint32_t s = t.Add(MakePoint(999), 999, 9999, 3, true);
    EXPECT_TRUE(t.IsLive(s));
    EXPECT_EQ(t.CellHead(3), s);  // push-front semantics intact
    t.Remove(s);
    ExpectSameView(before, Capture(t));
  }
}

TEST(RepTableCompact, FuzzedInterleavingWithInserts) {
  RepTable t(kDim, true);
  Xoshiro256pp rng(0xF022);
  std::map<uint64_t, uint32_t> live_slots;  // id → slot (refreshed on compact)
  uint64_t next_id = 0;
  for (int round = 0; round < 400; ++round) {
    const uint32_t action = rng.NextBounded(10);
    if (action < 6 || live_slots.empty()) {
      const uint64_t id = next_id++;
      live_slots[id] = t.Add(MakePoint(id), id, id, rng.NextBounded(12),
                             rng.NextBounded(2) == 0);
    } else if (action < 9) {
      auto it = live_slots.begin();
      std::advance(it, rng.NextBounded(live_slots.size()));
      t.Remove(it->second);
      live_slots.erase(it);
    } else {
      const TableView before = Capture(t);
      t.Compact();
      EXPECT_EQ(t.slot_count(), t.live());
      ExpectSameView(before, Capture(t));
      // Slots were renumbered: refresh the handle map from ids.
      live_slots.clear();
      for (uint32_t s = 0; s < t.slot_count(); ++s) {
        live_slots[t.id(s)] = s;
      }
    }
    EXPECT_EQ(t.live(), live_slots.size());
  }
}

TEST(RepTableCompact, MaybeCompactTriggersAtHalfDead) {
  RepTable t(kDim, false);
  std::vector<uint32_t> slots;
  for (uint64_t id = 0; id < 100; ++id) {
    slots.push_back(t.Add(MakePoint(id), id, id, id % 10, true));
  }
  EXPECT_FALSE(t.MaybeCompact());  // fully live: nothing to do
  for (uint64_t id = 0; id < 40; ++id) t.Remove(slots[id]);
  EXPECT_FALSE(t.MaybeCompact());  // 60% live: below the trigger
  EXPECT_EQ(t.slot_count(), 100u);
  for (uint64_t id = 40; id < 50; ++id) t.Remove(slots[id]);
  EXPECT_TRUE(t.MaybeCompact());  // 50% dead: compacts
  EXPECT_EQ(t.slot_count(), 50u);
  EXPECT_EQ(t.live(), 50u);

  // Small tables never compact (churn would outweigh the win).
  RepTable small(kDim, false);
  std::vector<uint32_t> ss;
  for (uint64_t id = 0; id < 20; ++id) {
    ss.push_back(small.Add(MakePoint(id), id, id, 0, true));
  }
  for (uint64_t id = 0; id < 18; ++id) small.Remove(ss[id]);
  EXPECT_FALSE(small.MaybeCompact());
}

// Two identically fed tables — one compacted mid-way — must drain their
// expiry lists identically and keep identical cell chains: SwGroupTable
// compaction preserves the stamp list and the shared arena refs.
TEST(SwGroupTableCompact, PreservesExpiryOrderChainsAndSharedArena) {
  PointStore store_a(kDim);
  PointStore store_b(kDim);
  SwGroupTable a;
  SwGroupTable b;
  a.Bind(&store_a);
  b.Bind(&store_b);
  Xoshiro256pp rng(7);
  std::vector<uint32_t> slots_a;
  std::vector<uint32_t> slots_b;
  for (uint64_t id = 0; id < 120; ++id) {
    const Point p = MakePoint(id);
    const int64_t stamp = static_cast<int64_t>(id * 3);
    slots_a.push_back(a.Add(id, p, id, id % 9, (id % 2) == 0, stamp));
    slots_b.push_back(b.Add(id, p, id, id % 9, (id % 2) == 0, stamp));
  }
  for (uint64_t id = 0; id < 120; ++id) {
    if (id % 3 != 1) continue;  // remove a third, scattered
    a.Remove(slots_a[id]);
    b.Remove(slots_b[id]);
  }
  b.Compact();
  ASSERT_EQ(b.slot_count(), b.live());
  ASSERT_EQ(a.live(), b.live());

  // Same cell chains (probe order), fields, and arena-backed points.
  for (uint64_t key = 0; key < 9; ++key) {
    uint32_t sa = a.CellHead(key);
    uint32_t sb = b.CellHead(key);
    while (sa != SwGroupTable::kNpos && sb != SwGroupTable::kNpos) {
      EXPECT_EQ(a.id(sa), b.id(sb));
      EXPECT_EQ(a.rep_index(sa), b.rep_index(sb));
      EXPECT_EQ(a.accepted(sa), b.accepted(sb));
      EXPECT_TRUE(store_a.View(a.rep_ref(sa)) ==
                  store_b.View(b.rep_ref(sb)));
      EXPECT_EQ(b.rep_arena_slot(sb), store_b.SlotIndexOf(b.rep_ref(sb)));
      sa = a.NextInCell(sa);
      sb = b.NextInCell(sb);
    }
    EXPECT_EQ(sa, SwGroupTable::kNpos);
    EXPECT_EQ(sb, SwGroupTable::kNpos);
  }

  // Same expiry drain sequence.
  while (a.OldestSlot() != SwGroupTable::kNpos) {
    const uint32_t oa = a.OldestSlot();
    const uint32_t ob = b.OldestSlot();
    ASSERT_NE(ob, SwGroupTable::kNpos);
    EXPECT_EQ(a.id(oa), b.id(ob));
    EXPECT_EQ(a.latest_stamp(oa), b.latest_stamp(ob));
    a.Remove(oa);
    b.Remove(ob);
  }
  EXPECT_EQ(b.OldestSlot(), SwGroupTable::kNpos);
}

// End-to-end pin: a stream sized to push the sampler through several
// rate halvings (each Refilter kills about half the reps and trips
// MaybeCompact) must keep the arena sampler bit-identical to the legacy
// map-based implementation — compaction changes nothing observable.
TEST(RepTableCompact, RefilterCompactionKeepsLegacyDifferentialExact) {
  const BaseDataset base = RandomUniform(600, kDim, 191);
  NearDupOptions nd;
  nd.max_dups = 3;
  nd.seed = 192;
  const NoisyDataset data = MakeNearDuplicates(base, nd);
  SamplerOptions opts;
  opts.dim = kDim;
  opts.alpha = data.alpha;
  opts.seed = 193;
  opts.accept_cap = 16;  // several refilters over 600 groups
  opts.expected_stream_length = data.points.size();

  auto arena = RobustL0SamplerIW::Create(opts).value();
  auto legacy = LegacyL0SamplerIW::Create(opts).value();
  size_t prev_slots = 0;
  size_t compactions = 0;  // a slot-count shrink can only be a Compact
  for (const Point& p : data.points) {
    arena.Insert(p);
    legacy.Insert(p);
    const size_t slots = arena.rep_table().slot_count();
    if (slots < prev_slots) ++compactions;
    prev_slots = slots;
  }
  EXPECT_GE(compactions, 1u)
      << "stream did not exercise refilter-triggered compaction";
  EXPECT_EQ(arena.level(), legacy.level());
  ASSERT_EQ(arena.accept_size(), legacy.accept_size());
  ASSERT_EQ(arena.reject_size(), legacy.reject_size());
  const auto arena_acc = arena.AcceptedRepresentatives();
  const auto legacy_acc = legacy.AcceptedRepresentatives();
  for (size_t i = 0; i < arena_acc.size(); ++i) {
    EXPECT_EQ(arena_acc[i].stream_index, legacy_acc[i].stream_index);
    EXPECT_TRUE(arena_acc[i].point == legacy_acc[i].point);
  }
  EXPECT_GE(arena.level(), 1u);
}

}  // namespace
}  // namespace rl0
