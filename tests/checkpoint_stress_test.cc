// Concurrency stress for the checkpoint/journal layer. Run under
// ThreadSanitizer in CI (see .github/workflows/ci.yml, job `tsan`): the
// assertions here check journal framing and exactly-once accounting;
// TSan checks the journal tap's serialization under multi-producer
// feeding and the happens-before edges between feeder joins, the Drain
// barrier, and checkpoint cuts taken on a different thread.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "rl0/core/checkpoint.h"
#include "rl0/core/ingest_pool.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/core/snapshot.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

NoisyDataset StressData(uint64_t seed, size_t groups) {
  const BaseDataset base = RandomUniform(groups, 3, seed, "CkptStress");
  NearDupOptions nd;
  nd.max_dups = 12;
  nd.seed = seed + 1;
  return MakeNearDuplicates(base, nd);
}

SamplerOptions StressOptions(const NoisyDataset& data, uint64_t seed) {
  SamplerOptions opts;
  opts.dim = data.dim;
  opts.alpha = data.alpha;
  opts.seed = seed;
  opts.side_mode = GridSideMode::kHighDim;
  opts.expected_stream_length = data.size();
  return opts;
}

std::vector<std::string> ShardBlobs(const ShardedSwSamplerPool& pool) {
  std::vector<std::string> blobs(pool.num_shards());
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    EXPECT_TRUE(SnapshotSamplerSW(pool.shard(s), &blobs[s]).ok());
  }
  return blobs;
}

/// Every record's index_base must continue exactly where the previous
/// one left off (watermarks consume no indices). Returns the total
/// point count framed in the journal.
uint64_t ExpectContiguousIndexBases(const JournalContents& contents) {
  uint64_t expected_index = 0;
  uint64_t total = 0;
  for (const JournalRecord& rec : contents.records) {
    EXPECT_EQ(rec.index_base, expected_index) << "record seq " << rec.seq;
    if (rec.type != JournalRecordType::kWatermark) {
      expected_index += rec.points.size();
      total += rec.points.size();
    }
  }
  return total;
}

TEST(CheckpointStressTest, MultiProducerJournalTapAndCheckpointCycles) {
  // Rounds of multi-producer feeding (the journal tap serializes chunk
  // framing against the global position counter), concurrent Drain
  // barriers throughout, and a full-then-delta checkpoint chain cut on
  // a fresh thread after each round's drain. At the end the journal
  // must frame every point exactly once with contiguous index bases,
  // the folded chain plus the journal must replay to the full stream,
  // and an end-of-run cut must restore byte-identically.
  const NoisyDataset data = StressData(201, 70);
  const SamplerOptions opts = StressOptions(data, 202);
  const int64_t window = static_cast<int64_t>(data.size() / 2);
  IngestPool::Options pipeline;
  pipeline.queue_capacity = 2;  // exercise backpressure
  auto pool = ShardedSwSamplerPool::Create(opts, window, 3, pipeline).value();

  std::string journal;
  JournalWriter writer(&journal, opts.dim);
  AttachJournal(&pool, &writer);

  std::atomic<bool> feeding{true};
  std::vector<std::thread> drainers;
  for (int t = 0; t < 2; ++t) {
    drainers.emplace_back([&pool, &feeding] {
      while (feeding.load(std::memory_order_relaxed)) {
        pool.Drain();
      }
    });
  }

  const Span<const Point> all(data.points);
  const size_t rounds = 5;
  const size_t producers = 3;
  const size_t round_size = all.size() / rounds;
  std::string chain;  // folded full checkpoint, updated every round
  uint64_t chain_seq = 0;
  for (size_t round = 0; round < rounds; ++round) {
    const size_t begin = round * round_size;
    const size_t count =
        round + 1 == rounds ? all.size() - begin : round_size;
    const size_t slice = count / producers;
    std::vector<std::thread> feeders;
    for (size_t t = 0; t < producers; ++t) {
      const size_t fbegin = begin + t * slice;
      const size_t fcount = t + 1 == producers ? count - t * slice : slice;
      feeders.emplace_back([&pool, all, fbegin, fcount] {
        const size_t chunk = 37;
        for (size_t offset = 0; offset < fcount; offset += chunk) {
          const size_t n = std::min(chunk, fcount - offset);
          pool.Feed(all.subspan(fbegin + offset, n));
        }
      });
    }
    for (std::thread& f : feeders) f.join();
    pool.Drain();

    // Cut on a fresh thread: the cut must see the drained state through
    // the join/Drain happens-before edges alone (drainers still spin).
    std::thread cutter([&pool, &writer, &chain, &chain_seq] {
      const uint64_t seq = writer.next_seq();
      std::string cut;
      if (chain.empty()) {
        ASSERT_TRUE(CheckpointPool(&pool, seq, &cut).ok());
      } else {
        std::string delta;
        ASSERT_TRUE(CheckpointPoolDelta(&pool, chain, seq, &delta).ok());
        ASSERT_TRUE(FoldPoolDelta(chain, delta, &cut).ok());
      }
      chain = std::move(cut);
      chain_seq = seq;
    });
    cutter.join();
    ASSERT_FALSE(chain.empty());
  }
  feeding.store(false, std::memory_order_relaxed);
  for (std::thread& d : drainers) d.join();
  pool.Drain();

  // The journal framed every point exactly once, in global order.
  JournalContents contents;
  ASSERT_TRUE(ReadJournal(journal, &contents).ok());
  EXPECT_EQ(contents.valid_bytes, journal.size());
  EXPECT_EQ(ExpectContiguousIndexBases(contents), data.size());
  EXPECT_EQ(pool.points_fed(), data.size());
  EXPECT_EQ(pool.points_processed(), data.size());

  // An end-of-run cut restores byte-identically (no feeding after it,
  // so no slot-layout skew).
  std::string end_cut;
  ASSERT_TRUE(CheckpointPool(&pool, writer.next_seq(), &end_cut).ok());
  auto restored = RecoverPool(end_cut, "");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(ShardBlobs(restored.value()), ShardBlobs(pool));

  // The folded chain (cut one round before the end) plus the journal
  // replays the remainder: full-stream accounting must reconcile.
  auto replayed = RecoverPool(chain, journal);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed.value().points_processed(), data.size());
}

TEST(CheckpointStressTest, StampedLateFeedJournalsReleasesAndWatermarks) {
  // The bounded-lateness path under the same pattern: the journal tap
  // sees only *released* chunks plus watermark broadcasts, both pumped
  // out of the reorder stage while Drain barriers run concurrently.
  // Checkpoint cuts land between bursts while the reorder heap still
  // buffers points (the durability boundary), so the replay at the end
  // must still account for every point once the flush releases them.
  const NoisyDataset data = StressData(211, 60);
  SamplerOptions opts = StressOptions(data, 212);
  opts.allowed_lateness = 48;
  std::vector<int64_t> stamps;
  stamps.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    // Jitter stays well inside the lateness bound: nothing is dropped.
    stamps.push_back(static_cast<int64_t>(2 * i) -
                     static_cast<int64_t>(SplitMix64(i) % 17));
  }
  const int64_t window = static_cast<int64_t>(2 * data.size());
  IngestPool::Options pipeline;
  pipeline.queue_capacity = 2;
  auto pool = ShardedSwSamplerPool::Create(opts, window, 3, pipeline).value();

  std::string journal;
  JournalWriter writer(&journal, opts.dim);
  AttachJournal(&pool, &writer);

  std::atomic<bool> feeding{true};
  std::vector<std::thread> drainers;
  for (int t = 0; t < 2; ++t) {
    drainers.emplace_back([&pool, &feeding] {
      while (feeding.load(std::memory_order_relaxed)) {
        pool.Drain();
      }
    });
  }

  const Span<const Point> all(data.points);
  const Span<const int64_t> all_stamps(stamps);
  const size_t rounds = 4;
  const size_t round_size = all.size() / rounds;
  std::string chain;
  for (size_t round = 0; round < rounds; ++round) {
    const size_t begin = round * round_size;
    const size_t count =
        round + 1 == rounds ? all.size() - begin : round_size;
    // Explicit stamps must be monotone in offer order: one producer.
    std::thread feeder([&pool, all, all_stamps, begin, count] {
      const size_t chunk = 41;
      for (size_t offset = 0; offset < count; offset += chunk) {
        const size_t n = std::min(chunk, count - offset);
        pool.FeedStampedLate(all.subspan(begin + offset, n),
                             all_stamps.subspan(begin + offset, n));
      }
    });
    feeder.join();
    pool.Drain();
    std::thread cutter([&pool, &writer, &chain] {
      const uint64_t seq = writer.next_seq();
      std::string cut;
      if (chain.empty()) {
        ASSERT_TRUE(CheckpointPool(&pool, seq, &cut).ok());
      } else {
        std::string delta;
        ASSERT_TRUE(CheckpointPoolDelta(&pool, chain, seq, &delta).ok());
        ASSERT_TRUE(FoldPoolDelta(chain, delta, &cut).ok());
      }
      chain = std::move(cut);
    });
    cutter.join();
  }
  feeding.store(false, std::memory_order_relaxed);
  for (std::thread& d : drainers) d.join();
  pool.FlushLate();
  pool.Drain();

  const ReorderStats stats = pool.late_stats();
  EXPECT_EQ(stats.offered, data.size());
  EXPECT_EQ(stats.late_dropped, 0u);
  EXPECT_EQ(stats.buffered, 0u);
  EXPECT_EQ(stats.released, data.size());
  EXPECT_EQ(pool.points_processed(), data.size());

  // The journal holds the released chunks (contiguous, every point
  // exactly once) and at least one watermark broadcast, with stamps
  // non-decreasing across the whole record sequence.
  JournalContents contents;
  ASSERT_TRUE(ReadJournal(journal, &contents).ok());
  EXPECT_EQ(contents.valid_bytes, journal.size());
  EXPECT_EQ(ExpectContiguousIndexBases(contents), data.size());
  size_t watermarks = 0;
  int64_t last_stamp = stamps[0];
  for (const JournalRecord& rec : contents.records) {
    if (rec.type == JournalRecordType::kWatermark) {
      ++watermarks;
      continue;
    }
    ASSERT_EQ(rec.type, JournalRecordType::kStamped);
    for (const int64_t s : rec.stamps) {
      EXPECT_GE(s, last_stamp);
      last_stamp = s;
    }
  }
  EXPECT_GT(watermarks, 0u);

  // End-of-run cut restores byte-identically, watermark re-armed.
  std::string end_cut;
  ASSERT_TRUE(CheckpointPool(&pool, writer.next_seq(), &end_cut).ok());
  auto restored = RecoverPool(end_cut, "");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(ShardBlobs(restored.value()), ShardBlobs(pool));
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    EXPECT_EQ(restored.value().shard(s).watermark(),
              pool.shard(s).watermark());
  }

  // The mid-run chain plus the journal replays to full accounting even
  // though the chain was cut with points still buffered in the heap.
  auto replayed = RecoverPool(chain, journal);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed.value().points_processed(), data.size());
}

}  // namespace
}  // namespace rl0
