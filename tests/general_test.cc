// Tests for Section 3 (general, non-well-separated datasets): the greedy
// partition analysis (Lemma 3.3) and the relaxed sampling guarantee of
// Theorem 3.1 — every α-ball is hit with probability Θ(1/F0(S, α)).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "rl0/baseline/exact_partition.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/stream/generators.h"

namespace rl0 {
namespace {

SamplerOptions BaseOptions(size_t dim, double alpha, uint64_t seed) {
  SamplerOptions opts;
  opts.dim = dim;
  opts.alpha = alpha;
  opts.seed = seed;
  opts.side_mode = GridSideMode::kConstantDim;  // Section 3 regime
  opts.expected_stream_length = 1 << 16;
  return opts;
}

TEST(GreedyPartitionLemmaTest, GreedyAtMostOptimalCountOnChains) {
  // A chain 0, 0.9, 1.8, 2.7, ... with alpha = 1: the minimum partition
  // pairs consecutive points (⌈n/2⌉ groups, diameter 0.9 ≤ 1); greedy from
  // the left also pairs them. Lemma 3.3 first half: n_greedy ≤ n_opt.
  for (int n : {2, 5, 8, 13}) {
    std::vector<Point> pts;
    for (int i = 0; i < n; ++i) pts.push_back(Point{0.9 * i});
    const size_t greedy = GreedyPartition(pts, 1.0).num_groups;
    const size_t opt = (static_cast<size_t>(n) + 1) / 2;
    EXPECT_LE(greedy, opt) << "n=" << n;
    EXPECT_GE(greedy, opt / 3 + (opt % 3 != 0)) << "n=" << n;  // Θ(1) factor
  }
}

TEST(GreedyPartitionLemmaTest, OrderIndependenceUpToConstant) {
  // Lemma 3.3: any two greedy orders give group counts within a constant
  // factor (they both Θ-match the minimum cardinality partition).
  const BaseDataset data = OverlappingChains(96, 2, 1.0, 7);
  std::vector<Point> pts = data.points;
  const size_t forward = GreedyPartition(pts, 1.0).num_groups;
  std::reverse(pts.begin(), pts.end());
  const size_t backward = GreedyPartition(pts, 1.0).num_groups;
  Xoshiro256pp rng(8);
  for (size_t i = pts.size(); i > 1; --i) {
    std::swap(pts[i - 1], pts[rng.NextBounded(i)]);
  }
  const size_t shuffled = GreedyPartition(pts, 1.0).num_groups;
  const auto within_factor = [](size_t a, size_t b, double f) {
    return static_cast<double>(a) <= f * static_cast<double>(b) &&
           static_cast<double>(b) <= f * static_cast<double>(a);
  };
  EXPECT_TRUE(within_factor(forward, backward, 3.0))
      << forward << " vs " << backward;
  EXPECT_TRUE(within_factor(forward, shuffled, 3.0))
      << forward << " vs " << shuffled;
}

TEST(GreedyPartitionLemmaTest, GreedyDiameterAtMostTwoAlpha) {
  // Greedy groups are subsets of α-balls, so their diameter is ≤ 2α.
  const BaseDataset data = OverlappingChains(64, 3, 1.0, 9);
  const Partition part = GreedyPartition(data.points, 1.0);
  for (size_t i = 0; i < data.points.size(); ++i) {
    for (size_t j = i + 1; j < data.points.size(); ++j) {
      if (part.group_of[i] == part.group_of[j]) {
        EXPECT_LE(Distance(data.points[i], data.points[j]), 2.0 + 1e-9);
      }
    }
  }
}

TEST(GeneralDataTest, SamplerStillProducesSamples) {
  const BaseDataset data = OverlappingChains(200, 2, 1.0, 10);
  auto sampler = RobustL0SamplerIW::Create(BaseOptions(2, 1.0, 11)).value();
  for (const Point& p : data.points) sampler.Insert(p);
  Xoshiro256pp rng(12);
  EXPECT_TRUE(sampler.Sample(&rng).has_value());
  EXPECT_GE(sampler.accept_size(), 1u);
}

TEST(GeneralDataTest, StoredRepsArePairwiseSeparated) {
  // In the greedy view of Theorem 3.1, the stored representatives are
  // mutually more than α apart (each new representative was not within α
  // of any stored one).
  const BaseDataset data = OverlappingChains(150, 2, 1.0, 13);
  auto sampler = RobustL0SamplerIW::Create(BaseOptions(2, 1.0, 14)).value();
  for (const Point& p : data.points) sampler.Insert(p);
  std::vector<SampleItem> reps = sampler.AcceptedRepresentatives();
  const auto rejected = sampler.RejectedRepresentatives();
  reps.insert(reps.end(), rejected.begin(), rejected.end());
  for (size_t i = 0; i < reps.size(); ++i) {
    for (size_t j = i + 1; j < reps.size(); ++j) {
      EXPECT_GT(Distance(reps[i].point, reps[j].point), 1.0);
    }
  }
}

TEST(GeneralDataTest, Theorem31BallProbability) {
  // Every point's α-ball must be sampled with probability Θ(1/F0):
  // empirically, min and max over points of Pr[sample ∈ Ball(p, α)] stay
  // within a constant band around 1/n_opt.
  const BaseDataset data = OverlappingChains(60, 1, 1.0, 15);
  const size_t n_ref = GreedyPartition(data.points, 1.0).num_groups;
  const int runs = 6000;
  std::vector<int> ball_hits(data.points.size(), 0);
  for (int run = 0; run < runs; ++run) {
    auto sampler =
        RobustL0SamplerIW::Create(BaseOptions(1, 1.0, 2000 + run)).value();
    for (const Point& p : data.points) sampler.Insert(p);
    Xoshiro256pp rng(7000 + run);
    const auto sample = sampler.Sample(&rng);
    ASSERT_TRUE(sample.has_value());
    for (size_t i = 0; i < data.points.size(); ++i) {
      if (WithinDistance(data.points[i], sample->point, 1.0)) {
        ++ball_hits[i];
      }
    }
  }
  const double target = 1.0 / static_cast<double>(n_ref);
  for (size_t i = 0; i < data.points.size(); ++i) {
    const double prob = static_cast<double>(ball_hits[i]) / runs;
    EXPECT_GT(prob, target / 6.0) << "point " << i;
    EXPECT_LT(prob, target * 6.0) << "point " << i;
  }
}

TEST(GeneralDataTest, MinimumPartitionSmallBruteForceAgreement) {
  // For tiny 1-d instances the minimum cardinality partition is computable
  // by interval greedy (sort + sweep, optimal in 1-d); greedy-by-order
  // stays within the Lemma 3.3 constant of it.
  Xoshiro256pp rng(16);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Point> pts;
    const int n = 12;
    for (int i = 0; i < n; ++i) {
      pts.push_back(Point{3.0 * rng.NextDouble()});
    }
    // Optimal 1-d partition: sweep sorted points, cut when span > alpha.
    std::vector<double> xs;
    for (const Point& p : pts) xs.push_back(p[0]);
    std::sort(xs.begin(), xs.end());
    size_t opt = 0;
    double start = -1e18;
    for (double x : xs) {
      if (x - start > 1.0) {
        ++opt;
        start = x;
      }
    }
    const size_t greedy = GreedyPartition(pts, 1.0).num_groups;
    // Lemma 3.3: greedy groups are α-balls (diameter up to 2α), so
    // n_greedy ≤ n_opt; conversely each greedy ball splits into at most
    // two diameter-α intervals in 1-d, so n_opt ≤ 2·n_greedy.
    EXPECT_LE(greedy, opt);
    EXPECT_LE(opt, 2 * greedy);
  }
}

}  // namespace
}  // namespace rl0
