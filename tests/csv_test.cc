// Tests for the CSV point-stream reader/writer (rl0/stream/csv.h).

#include <gtest/gtest.h>

#include <sstream>

#include "rl0/stream/csv.h"

namespace rl0 {
namespace {

TEST(CsvTest, ParsesCommaSeparated) {
  std::istringstream in("1.5,2.5\n-3,4e2\n");
  const auto points = ParseCsvPoints(in);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points.value().size(), 2u);
  EXPECT_EQ(points.value()[0], Point({1.5, 2.5}));
  EXPECT_EQ(points.value()[1], Point({-3.0, 400.0}));
}

TEST(CsvTest, ParsesWhitespaceSeparated) {
  std::istringstream in("1 2 3\n4\t5\t6\n");
  const auto points = ParseCsvPoints(in);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points.value().size(), 2u);
  EXPECT_EQ(points.value()[0].dim(), 3u);
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header comment\n\n1,2\n\n# trailing\n3,4\n");
  const auto points = ParseCsvPoints(in);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points.value().size(), 2u);
}

TEST(CsvTest, RejectsBadNumbersWithLineInfo) {
  std::istringstream in("1,2\n3,abc\n");
  const auto points = ParseCsvPoints(in);
  ASSERT_FALSE(points.ok());
  EXPECT_NE(points.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(points.status().message().find("abc"), std::string::npos);
}

TEST(CsvTest, RejectsInconsistentDimensions) {
  std::istringstream in("1,2\n3,4,5\n");
  const auto points = ParseCsvPoints(in);
  ASSERT_FALSE(points.ok());
  EXPECT_NE(points.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, EmptyInputIsEmptyVector) {
  std::istringstream in("");
  const auto points = ParseCsvPoints(in);
  ASSERT_TRUE(points.ok());
  EXPECT_TRUE(points.value().empty());
}

TEST(CsvTest, MissingFileIsNotFound) {
  const auto points = ReadCsvPoints("/nonexistent/path/points.csv");
  ASSERT_FALSE(points.ok());
  EXPECT_EQ(points.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, WriteReadRoundTripIsExact) {
  std::vector<Point> points{Point{0.1, -2.000000000000004},
                            Point{1e-300, 12345.6789},
                            Point{3.14159265358979312, 0.0}};
  std::ostringstream out;
  WriteCsvPoints(points, out);
  std::istringstream in(out.str());
  const auto parsed = ParseCsvPoints(in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(parsed.value()[i], points[i]) << i;  // %.17g is lossless
  }
}

TEST(CsvTest, HandlesCrLf) {
  std::istringstream in("1,2\r\n3,4\r\n");
  const auto points = ParseCsvPoints(in);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points.value().size(), 2u);
  EXPECT_EQ(points.value()[0], Point({1.0, 2.0}));
}

}  // namespace
}  // namespace rl0
