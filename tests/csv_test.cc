// Tests for the CSV point-stream reader/writer (rl0/stream/csv.h).

#include <gtest/gtest.h>

#include <sstream>

#include "rl0/stream/csv.h"

namespace rl0 {
namespace {

TEST(CsvTest, ParsesCommaSeparated) {
  std::istringstream in("1.5,2.5\n-3,4e2\n");
  const auto points = ParseCsvPoints(in);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points.value().size(), 2u);
  EXPECT_EQ(points.value()[0], Point({1.5, 2.5}));
  EXPECT_EQ(points.value()[1], Point({-3.0, 400.0}));
}

TEST(CsvTest, ParsesWhitespaceSeparated) {
  std::istringstream in("1 2 3\n4\t5\t6\n");
  const auto points = ParseCsvPoints(in);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points.value().size(), 2u);
  EXPECT_EQ(points.value()[0].dim(), 3u);
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header comment\n\n1,2\n\n# trailing\n3,4\n");
  const auto points = ParseCsvPoints(in);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points.value().size(), 2u);
}

TEST(CsvTest, RejectsBadNumbersWithLineInfo) {
  std::istringstream in("1,2\n3,abc\n");
  const auto points = ParseCsvPoints(in);
  ASSERT_FALSE(points.ok());
  EXPECT_NE(points.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(points.status().message().find("abc"), std::string::npos);
}

TEST(CsvTest, RejectsInconsistentDimensions) {
  std::istringstream in("1,2\n3,4,5\n");
  const auto points = ParseCsvPoints(in);
  ASSERT_FALSE(points.ok());
  EXPECT_NE(points.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, EmptyInputIsEmptyVector) {
  std::istringstream in("");
  const auto points = ParseCsvPoints(in);
  ASSERT_TRUE(points.ok());
  EXPECT_TRUE(points.value().empty());
}

TEST(CsvTest, MissingFileIsNotFound) {
  const auto points = ReadCsvPoints("/nonexistent/path/points.csv");
  ASSERT_FALSE(points.ok());
  EXPECT_EQ(points.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, WriteReadRoundTripIsExact) {
  std::vector<Point> points{Point{0.1, -2.000000000000004},
                            Point{1e-300, 12345.6789},
                            Point{3.14159265358979312, 0.0}};
  std::ostringstream out;
  WriteCsvPoints(points, out);
  std::istringstream in(out.str());
  const auto parsed = ParseCsvPoints(in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(parsed.value()[i], points[i]) << i;  // %.17g is lossless
  }
}

TEST(CsvTest, HandlesCrLf) {
  std::istringstream in("1,2\r\n3,4\r\n");
  const auto points = ParseCsvPoints(in);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points.value().size(), 2u);
  EXPECT_EQ(points.value()[0], Point({1.0, 2.0}));
}

TEST(CsvTest, RejectsOverflowWithLineInfo) {
  // strtod parses "1e999" to +inf with errno == ERANGE while consuming
  // the whole token — the silent-acceptance bug this pin guards against.
  std::istringstream in("1,2\n3,1e999\n");
  const auto points = ParseCsvPoints(in);
  ASSERT_FALSE(points.ok());
  EXPECT_NE(points.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(points.status().message().find("out of range"),
            std::string::npos);

  std::istringstream neg("-1e999,0\n");
  EXPECT_FALSE(ParseCsvPoints(neg).ok());
}

TEST(CsvTest, RejectsExplicitInfAndNan) {
  std::istringstream inf_in("1,inf\n");
  EXPECT_FALSE(ParseCsvPoints(inf_in).ok());
  std::istringstream nan_in("nan,2\n");
  EXPECT_FALSE(ParseCsvPoints(nan_in).ok());
}

TEST(CsvTest, AcceptsUnderflowToDenormalOrZero) {
  // Gradual underflow also raises ERANGE but yields a finite value —
  // keep accepting it (only genuine overflow is an input error).
  std::istringstream in("1e-320,1e-999\n");
  const auto points = ParseCsvPoints(in);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points.value().size(), 1u);
  EXPECT_GT(points.value()[0][0], 0.0);
  EXPECT_EQ(points.value()[0][1], 0.0);
}

TEST(CsvStampedTest, ParsesLeadingStampColumn) {
  std::istringstream in("# t,x,y\n0,1.5,2.5\n4,-3,4e2\n4,0,0\n");
  const auto parsed = ParseCsvStampedPoints(in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().points.size(), 3u);
  ASSERT_EQ(parsed.value().stamps.size(), 3u);
  EXPECT_EQ(parsed.value().points[0], Point({1.5, 2.5}));
  EXPECT_EQ(parsed.value().stamps[0], 0);
  EXPECT_EQ(parsed.value().stamps[1], 4);
  EXPECT_EQ(parsed.value().stamps[2], 4);  // ties are legal
}

TEST(CsvStampedTest, RejectsDecreasingStamps) {
  std::istringstream in("5,1,2\n3,3,4\n");
  const auto parsed = ParseCsvStampedPoints(in);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("decreases"), std::string::npos);
}

TEST(CsvStampedTest, RejectsNonIntegerOrOverflowingStamps) {
  std::istringstream frac("1.5,1,2\n");
  EXPECT_FALSE(ParseCsvStampedPoints(frac).ok());
  std::istringstream huge("99999999999999999999999,1,2\n");
  EXPECT_FALSE(ParseCsvStampedPoints(huge).ok());
  std::istringstream lone("7\n");  // stamp with no coordinates
  EXPECT_FALSE(ParseCsvStampedPoints(lone).ok());
}

TEST(CsvStampedTest, HandlesCrLfAndWhitespace) {
  std::istringstream in("0 1 2\r\n3\t4\t5\r\n");
  const auto parsed = ParseCsvStampedPoints(in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().points.size(), 2u);
  EXPECT_EQ(parsed.value().points[1], Point({4.0, 5.0}));
  EXPECT_EQ(parsed.value().stamps[1], 3);
}

TEST(CsvStampedTest, LatenessBoundAdmitsBoundedDisorder) {
  // Stamps may run up to the bound behind the running maximum: 8 is 2
  // behind max 10, 7 exactly 3 behind — both admitted at bound 3; a new
  // maximum afterwards is always fine.
  std::istringstream in("5,1,2\n10,3,4\n8,5,6\n7,7,8\n12,9,10\n");
  const auto parsed = ParseCsvStampedPoints(in, 3);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().stamps.size(), 5u);
  EXPECT_EQ(parsed.value().stamps[2], 8);
  EXPECT_EQ(parsed.value().stamps[3], 7);
}

TEST(CsvStampedTest, LatenessBoundRejectsBeyondBoundWithLineInfo) {
  // 6 is 4 behind the maximum 10 — beyond a bound of 3; the error names
  // the offending line and the bound.
  std::istringstream in("5,1,2\n10,3,4\n6,5,6\n");
  const auto parsed = ParseCsvStampedPoints(in, 3);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("more than 3"),
            std::string::npos);
}

TEST(CsvStampedTest, LatenessBoundComparesAgainstMaxNotLast) {
  // The admission bound tracks the running *maximum*, not the previous
  // row: after 10, 8, the stamp 6 is 4 behind the max 10 even though it
  // is only 2 behind its predecessor.
  std::istringstream in("10,1,2\n8,3,4\n6,5,6\n");
  EXPECT_FALSE(ParseCsvStampedPoints(in, 3).ok());
  std::istringstream ok_in("10,1,2\n8,3,4\n7,5,6\n");
  EXPECT_TRUE(ParseCsvStampedPoints(ok_in, 3).ok());
}

TEST(CsvStampedTest, ZeroLatenessKeepsTheStrictContractAndWording) {
  // The default bound is the historical non-decreasing contract, error
  // wording included.
  std::istringstream in("5,1,2\n3,3,4\n");
  const auto parsed = ParseCsvStampedPoints(in, 0);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("decreases"), std::string::npos);
  std::istringstream negative("1,1,2\n");
  EXPECT_FALSE(ParseCsvStampedPoints(negative, -1).ok());
}

TEST(CsvStampedTest, WriteReadRoundTripIsExact) {
  std::vector<Point> points{Point{0.1, -2.000000000000004},
                            Point{1e-300, 12345.6789}};
  std::vector<int64_t> stamps{-5, 123456789012345678LL};
  std::ostringstream out;
  WriteCsvStampedPoints(points, stamps, out);
  std::istringstream in(out.str());
  const auto parsed = ParseCsvStampedPoints(in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().points.size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(parsed.value().points[i], points[i]) << i;
    EXPECT_EQ(parsed.value().stamps[i], stamps[i]) << i;
  }
}

}  // namespace
}  // namespace rl0
