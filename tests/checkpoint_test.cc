// Tests for incremental checkpoints and the stamped journal
// (core/checkpoint.h): delta cuts fold to blobs byte-identical to
// contemporaneous full snapshots, the chain checksum binds every delta
// to its exact base, journals tolerate torn tails at any byte offset,
// and pool checkpoints round-trip through RecoverPool.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rl0/core/checkpoint.h"
#include "rl0/core/snapshot.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

SamplerOptions IwOptions(uint64_t seed, bool reservoir) {
  SamplerOptions opts;
  opts.dim = 3;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.accept_cap = 12;
  opts.expected_stream_length = 1 << 14;
  opts.random_representative = reservoir;
  return opts;
}

SamplerOptions SwOptions(uint64_t seed, bool reservoir = false) {
  SamplerOptions opts;
  opts.dim = 1;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.accept_cap = 8;
  opts.expected_stream_length = 1 << 14;
  opts.random_representative = reservoir;
  return opts;
}

/// Clustered revisit stream: `groups` centers 10 apart with jitter, so
/// refilters, splits and (windowed) expiry all fire.
std::vector<Point> Revisits(size_t n, size_t groups, size_t dim,
                            uint64_t seed) {
  std::vector<Point> points;
  points.reserve(n);
  Xoshiro256pp rng(SplitMix64(seed));
  for (size_t i = 0; i < n; ++i) {
    const double g = static_cast<double>(rng.NextBounded(groups));
    Point p(dim);
    for (size_t d = 0; d < dim; ++d) {
      p[d] = 10.0 * g + 0.3 * (rng.NextDouble() - 0.5);
    }
    points.push_back(std::move(p));
  }
  return points;
}

// ------------------------------------------------ infinite-window deltas

TEST(CheckpointDeltaTest, IwDeltaFoldsToContemporaneousFull) {
  for (const bool reservoir : {false, true}) {
    SCOPED_TRACE(reservoir ? "reservoir" : "first-arrival");
    const std::vector<Point> points = Revisits(600, 70, 3, 101);
    auto sampler =
        RobustL0SamplerIW::Create(IwOptions(11, reservoir)).value();
    for (size_t i = 0; i < 200; ++i) sampler.Insert(points[i]);

    std::string base;
    ASSERT_TRUE(SnapshotSamplerFull(&sampler, &base).ok());
    // The full cut itself must be byte-identical to the plain snapshot.
    std::string plain;
    ASSERT_TRUE(SnapshotSampler(sampler, &plain).ok());
    EXPECT_EQ(base, plain);

    for (size_t i = 200; i < points.size(); ++i) sampler.Insert(points[i]);
    std::string reference;
    ASSERT_TRUE(SnapshotSampler(sampler, &reference).ok());
    std::string delta;
    ASSERT_TRUE(
        SnapshotSamplerDelta(&sampler, SnapshotChainChecksum(base), &delta)
            .ok());

    std::string folded;
    ASSERT_TRUE(ApplySamplerDelta(base, delta, &folded).ok());
    EXPECT_EQ(folded, reference);
    // ... and the folded blob restores like any full snapshot.
    EXPECT_TRUE(RestoreSampler(folded).ok());
  }
}

TEST(CheckpointDeltaTest, IwQuietDeltaIsSmall) {
  // A delta cut over an interval that touched nothing but a handful of
  // groups must not re-encode the whole table.
  const std::vector<Point> points = Revisits(800, 90, 3, 103);
  auto sampler = RobustL0SamplerIW::Create(IwOptions(13, false)).value();
  for (const Point& p : points) sampler.Insert(p);
  std::string base;
  ASSERT_TRUE(SnapshotSamplerFull(&sampler, &base).ok());

  // Revisit one existing group a few times: at most a couple of records
  // go dirty (dup-suppression may even absorb the repeats).
  for (int i = 0; i < 5; ++i) sampler.Insert(points[0]);
  std::string reference;
  ASSERT_TRUE(SnapshotSampler(sampler, &reference).ok());
  std::string delta;
  ASSERT_TRUE(
      SnapshotSamplerDelta(&sampler, SnapshotChainChecksum(base), &delta)
          .ok());
  EXPECT_LT(delta.size(), reference.size() / 2);

  std::string folded;
  ASSERT_TRUE(ApplySamplerDelta(base, delta, &folded).ok());
  EXPECT_EQ(folded, reference);
}

TEST(CheckpointDeltaTest, IwDeltaChainsAcrossManyLinks) {
  const std::vector<Point> points = Revisits(1200, 80, 3, 105);
  auto sampler = RobustL0SamplerIW::Create(IwOptions(17, true)).value();
  size_t fed = 0;
  for (; fed < 150; ++fed) sampler.Insert(points[fed]);

  std::string full;
  ASSERT_TRUE(SnapshotSamplerFull(&sampler, &full).ok());
  for (int link = 0; link < 5; ++link) {
    SCOPED_TRACE("link " + std::to_string(link));
    const size_t until = fed + 210;
    for (; fed < until; ++fed) sampler.Insert(points[fed]);
    std::string reference;
    ASSERT_TRUE(SnapshotSampler(sampler, &reference).ok());
    std::string delta;
    ASSERT_TRUE(
        SnapshotSamplerDelta(&sampler, SnapshotChainChecksum(full), &delta)
            .ok());
    std::string folded;
    ASSERT_TRUE(ApplySamplerDelta(full, delta, &folded).ok());
    ASSERT_EQ(folded, reference);
    full = std::move(folded);  // the fold is the next link's base
  }
}

TEST(CheckpointDeltaTest, IwDeltaRejectsWrongBaseAndTamper) {
  const std::vector<Point> points = Revisits(400, 50, 3, 107);
  auto sampler = RobustL0SamplerIW::Create(IwOptions(19, false)).value();
  for (size_t i = 0; i < 150; ++i) sampler.Insert(points[i]);
  std::string base_a;
  ASSERT_TRUE(SnapshotSamplerFull(&sampler, &base_a).ok());
  for (size_t i = 150; i < 250; ++i) sampler.Insert(points[i]);
  std::string delta_a;
  ASSERT_TRUE(
      SnapshotSamplerDelta(&sampler, SnapshotChainChecksum(base_a), &delta_a)
          .ok());
  std::string base_b;
  ASSERT_TRUE(SnapshotSamplerFull(&sampler, &base_b).ok());
  for (size_t i = 250; i < 400; ++i) sampler.Insert(points[i]);
  std::string delta_b;
  ASSERT_TRUE(
      SnapshotSamplerDelta(&sampler, SnapshotChainChecksum(base_b), &delta_b)
          .ok());

  std::string folded;
  // delta_b chains on base_b, not base_a; delta_a's base moved on.
  EXPECT_FALSE(ApplySamplerDelta(base_a, delta_b, &folded).ok());
  EXPECT_TRUE(ApplySamplerDelta(base_b, delta_b, &folded).ok());
  // Any byte flip in either blob breaks the fold.
  std::string tampered = delta_b;
  tampered[tampered.size() / 2] ^= 0x40;
  EXPECT_FALSE(ApplySamplerDelta(base_b, tampered, &folded).ok());
  tampered = base_b;
  tampered[tampered.size() / 3] ^= 0x40;
  EXPECT_FALSE(ApplySamplerDelta(tampered, delta_b, &folded).ok());
  // Kind confusion: an IW delta must not fold onto/with SW machinery.
  EXPECT_FALSE(ApplySamplerDeltaSW(base_b, delta_b, &folded).ok());
}

// ------------------------------------------------- sliding-window deltas

TEST(CheckpointDeltaTest, SwDeltaFoldsToContemporaneousFull) {
  for (const bool reservoir : {false, true}) {
    SCOPED_TRACE(reservoir ? "reservoir" : "first-arrival");
    const std::vector<Point> points = Revisits(900, 60, 1, 109);
    const int64_t window = 151;  // genuine expiry between the cuts
    auto sampler =
        RobustL0SamplerSW::Create(SwOptions(23, reservoir), window).value();
    for (size_t i = 0; i < 300; ++i) {
      sampler.Insert(points[i], static_cast<int64_t>(i));
    }

    std::string base;
    ASSERT_TRUE(SnapshotSamplerFullSW(&sampler, &base).ok());
    std::string plain;
    ASSERT_TRUE(SnapshotSamplerSW(sampler, &plain).ok());
    EXPECT_EQ(base, plain);

    Xoshiro256pp qrng(SplitMix64(31));
    for (size_t i = 300; i < points.size(); ++i) {
      sampler.Insert(points[i], static_cast<int64_t>(i));
      // Queries between cuts: reservoir expiry on the query path mutates
      // record content and must land in the delta.
      if (i % 97 == 0) {
        (void)sampler.Sample(static_cast<int64_t>(i), &qrng);
      }
    }
    std::string reference;
    ASSERT_TRUE(SnapshotSamplerSW(sampler, &reference).ok());
    std::string delta;
    ASSERT_TRUE(
        SnapshotSamplerDeltaSW(&sampler, SnapshotChainChecksum(base), &delta)
            .ok());
    std::string folded;
    ASSERT_TRUE(ApplySamplerDeltaSW(base, delta, &folded).ok());
    EXPECT_EQ(folded, reference);
    EXPECT_TRUE(RestoreSamplerSW(folded).ok());
  }
}

TEST(CheckpointDeltaTest, SwDeltaChainsAcrossExpiryWaves) {
  const std::vector<Point> points = Revisits(1500, 50, 1, 111);
  const int64_t window = 101;
  auto sampler =
      RobustL0SamplerSW::Create(SwOptions(29, true), window).value();
  int64_t stamp = 0;
  Xoshiro256pp rng(SplitMix64(211));
  size_t fed = 0;
  auto feed_some = [&](size_t n) {
    for (size_t i = 0; i < n; ++i, ++fed) {
      // Occasional bursts past the window: whole expiry waves inside a
      // checkpoint interval (group-table Clear/Compact move slots, which
      // must carry their dirty epochs along).
      stamp += rng.NextBounded(120) == 0
                   ? 2 * window
                   : static_cast<int64_t>(1 + rng.NextBounded(3));
      sampler.Insert(points[fed], stamp);
    }
  };

  feed_some(200);
  std::string full;
  ASSERT_TRUE(SnapshotSamplerFullSW(&sampler, &full).ok());
  for (int link = 0; link < 6; ++link) {
    SCOPED_TRACE("link " + std::to_string(link));
    feed_some(200);
    std::string reference;
    ASSERT_TRUE(SnapshotSamplerSW(sampler, &reference).ok());
    std::string delta;
    ASSERT_TRUE(
        SnapshotSamplerDeltaSW(&sampler, SnapshotChainChecksum(full), &delta)
            .ok());
    std::string folded;
    ASSERT_TRUE(ApplySamplerDeltaSW(full, delta, &folded).ok());
    ASSERT_EQ(folded, reference);
    full = std::move(folded);
  }
}

TEST(CheckpointDeltaTest, SwDeltaRejectsWrongBaseAndTamper) {
  const std::vector<Point> points = Revisits(500, 40, 1, 113);
  auto sampler = RobustL0SamplerSW::Create(SwOptions(31), 131).value();
  for (size_t i = 0; i < 250; ++i) {
    sampler.Insert(points[i], static_cast<int64_t>(i));
  }
  std::string base;
  ASSERT_TRUE(SnapshotSamplerFullSW(&sampler, &base).ok());
  for (size_t i = 250; i < 500; ++i) {
    sampler.Insert(points[i], static_cast<int64_t>(i));
  }
  std::string delta;
  ASSERT_TRUE(
      SnapshotSamplerDeltaSW(&sampler, SnapshotChainChecksum(base), &delta)
          .ok());
  std::string folded;
  ASSERT_TRUE(ApplySamplerDeltaSW(base, delta, &folded).ok());

  std::string other_base;
  ASSERT_TRUE(SnapshotSamplerFullSW(&sampler, &other_base).ok());
  EXPECT_FALSE(ApplySamplerDeltaSW(other_base, delta, &folded).ok());
  std::string tampered = delta;
  tampered[tampered.size() - 9] ^= 0x01;  // inside the trailing checksum
  EXPECT_FALSE(ApplySamplerDeltaSW(base, tampered, &folded).ok());
  EXPECT_FALSE(ApplySamplerDelta(base, delta, &folded).ok());  // kind mix
}

// -------------------------------------------------------------- journal

std::vector<Point> SmallPoints(size_t n, size_t dim, uint64_t seed) {
  std::vector<Point> points;
  Xoshiro256pp rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Point p(dim);
    for (size_t d = 0; d < dim; ++d) p[d] = rng.NextDouble();
    points.push_back(std::move(p));
  }
  return points;
}

TEST(JournalTest, RoundTripsAllRecordTypes) {
  const size_t dim = 2;
  const std::vector<Point> a = SmallPoints(3, dim, 1);
  const std::vector<Point> b = SmallPoints(5, dim, 2);
  const std::vector<int64_t> b_stamps = {10, 11, 11, 15, 20};

  std::string journal;
  JournalWriter writer(&journal, dim);
  writer.AppendPoints(a, /*index_base=*/0);
  writer.AppendStamped(b, b_stamps, /*index_base=*/3);
  writer.AppendWatermark(17, /*index_base=*/8);
  EXPECT_EQ(writer.next_seq(), 3u);

  JournalContents contents;
  ASSERT_TRUE(ReadJournal(journal, &contents).ok());
  EXPECT_EQ(contents.dim, dim);
  EXPECT_EQ(contents.valid_bytes, journal.size());
  ASSERT_EQ(contents.records.size(), 3u);

  EXPECT_EQ(contents.records[0].type, JournalRecordType::kPoints);
  EXPECT_EQ(contents.records[0].index_base, 0u);
  ASSERT_EQ(contents.records[0].points.size(), a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(contents.records[0].points[i], a[i]);
  }
  EXPECT_EQ(contents.records[1].type, JournalRecordType::kStamped);
  EXPECT_EQ(contents.records[1].index_base, 3u);
  ASSERT_EQ(contents.records[1].points.size(), b.size());
  EXPECT_EQ(contents.records[1].stamps, b_stamps);
  EXPECT_EQ(contents.records[2].type, JournalRecordType::kWatermark);
  EXPECT_EQ(contents.records[2].watermark, 17);
  EXPECT_EQ(contents.records[2].index_base, 8u);
}

TEST(JournalTest, EmptyAndHeaderOnlyJournalsAreValid) {
  JournalContents contents;
  ASSERT_TRUE(ReadJournal("", &contents).ok());
  EXPECT_TRUE(contents.records.empty());

  std::string journal;
  JournalWriter writer(&journal, 4);  // header only
  ASSERT_TRUE(ReadJournal(journal, &contents).ok());
  EXPECT_EQ(contents.dim, 4u);
  EXPECT_TRUE(contents.records.empty());
  EXPECT_EQ(contents.valid_bytes, journal.size());
}

TEST(JournalTest, RejectsForeignHeader) {
  JournalContents contents;
  EXPECT_FALSE(ReadJournal("definitely not a journal header..", &contents)
                   .ok());
}

TEST(JournalTest, TornTailAtEveryByteOffsetYieldsTheValidPrefix) {
  const size_t dim = 2;
  std::string journal;
  JournalWriter writer(&journal, dim);
  // Record boundaries, so every cut's expected prefix is known.
  std::vector<size_t> ends;
  writer.AppendPoints(SmallPoints(2, dim, 3), 0);
  ends.push_back(journal.size());
  const std::vector<int64_t> stamps = {5, 6, 7};
  writer.AppendStamped(SmallPoints(3, dim, 4), stamps, 2);
  ends.push_back(journal.size());
  writer.AppendWatermark(3, 5);
  ends.push_back(journal.size());
  writer.AppendPoints(SmallPoints(1, dim, 5), 5);
  ends.push_back(journal.size());

  for (size_t cut = 0; cut <= journal.size(); ++cut) {
    SCOPED_TRACE("cut " + std::to_string(cut));
    JournalContents contents;
    ASSERT_TRUE(ReadJournal(journal.substr(0, cut), &contents).ok());
    size_t expected = 0;
    size_t expected_bytes = cut < 20 ? 0 : 20;  // header size
    for (const size_t end : ends) {
      if (end <= cut) {
        ++expected;
        expected_bytes = end;
      }
    }
    EXPECT_EQ(contents.records.size(), expected);
    EXPECT_EQ(contents.valid_bytes, expected_bytes);
  }
}

TEST(JournalTest, TruncateAndContinueAfterATear) {
  const size_t dim = 1;
  std::string journal;
  JournalWriter writer(&journal, dim);
  writer.AppendPoints(SmallPoints(4, dim, 6), 0);
  writer.AppendPoints(SmallPoints(2, dim, 7), 4);
  // Tear mid-second-record.
  journal.resize(journal.size() - 5);

  JournalContents contents;
  ASSERT_TRUE(ReadJournal(journal, &contents).ok());
  ASSERT_EQ(contents.records.size(), 1u);
  // Recovery protocol: truncate to the valid prefix, continue writing
  // with the surviving record count as the next sequence number.
  journal.resize(contents.valid_bytes);
  JournalWriter cont(&journal, dim, contents.records.size());
  cont.AppendWatermark(9, 4);
  ASSERT_TRUE(ReadJournal(journal, &contents).ok());
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_EQ(contents.records[1].type, JournalRecordType::kWatermark);
  EXPECT_EQ(contents.records[1].seq, 1u);
}

TEST(JournalTest, CorruptedRecordEndsThePrefix) {
  const size_t dim = 1;
  std::string journal;
  JournalWriter writer(&journal, dim);
  writer.AppendPoints(SmallPoints(2, dim, 8), 0);
  const size_t first_end = journal.size();
  writer.AppendPoints(SmallPoints(2, dim, 9), 2);
  writer.AppendPoints(SmallPoints(2, dim, 10), 4);

  // Flip a payload byte in the middle record: its CRC fails, and the
  // third record is unreachable (prefix semantics — no resync).
  std::string corrupt = journal;
  corrupt[first_end + 40] ^= 0x10;
  JournalContents contents;
  ASSERT_TRUE(ReadJournal(corrupt, &contents).ok());
  EXPECT_EQ(contents.records.size(), 1u);
  EXPECT_EQ(contents.valid_bytes, first_end);
}

// ---------------------------------------------------- pool checkpoints

/// Per-shard full snapshots — the byte-level state fingerprint recovery
/// is pinned against.
std::vector<std::string> ShardBlobs(const ShardedSwSamplerPool& pool) {
  std::vector<std::string> blobs(pool.num_shards());
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    EXPECT_TRUE(SnapshotSamplerSW(pool.shard(s), &blobs[s]).ok());
  }
  return blobs;
}

/// Canonical (id-sorted) per-level state equality — the semantic
/// comparison for pools that no longer share a slot layout (the LIFO
/// recycling caveat in core/checkpoint.h).
void ExpectSameCanonicalState(const RobustL0SamplerSW& a,
                              const RobustL0SamplerSW& b) {
  ASSERT_EQ(a.num_levels(), b.num_levels());
  for (size_t l = 0; l < a.num_levels(); ++l) {
    SCOPED_TRACE("level " + std::to_string(l));
    std::vector<GroupRecord> ga, gb;
    a.level(l).SnapshotGroups(&ga);
    b.level(l).SnapshotGroups(&gb);
    const auto by_id = [](const GroupRecord& x, const GroupRecord& y) {
      return x.id < y.id;
    };
    std::sort(ga.begin(), ga.end(), by_id);
    std::sort(gb.begin(), gb.end(), by_id);
    ASSERT_EQ(ga.size(), gb.size());
    for (size_t i = 0; i < ga.size(); ++i) {
      ASSERT_EQ(ga[i].id, gb[i].id);
      EXPECT_EQ(ga[i].rep_index, gb[i].rep_index);
      EXPECT_EQ(ga[i].accepted, gb[i].accepted);
      EXPECT_EQ(ga[i].latest_stamp, gb[i].latest_stamp);
      EXPECT_EQ(ga[i].latest_index, gb[i].latest_index);
      EXPECT_EQ(ga[i].rep, gb[i].rep);
      EXPECT_EQ(ga[i].latest, gb[i].latest);
      ASSERT_EQ(ga[i].reservoir.size(), gb[i].reservoir.size());
      for (size_t r = 0; r < ga[i].reservoir.size(); ++r) {
        EXPECT_EQ(ga[i].reservoir[r].priority, gb[i].reservoir[r].priority);
        EXPECT_EQ(ga[i].reservoir[r].stream_index,
                  gb[i].reservoir[r].stream_index);
        EXPECT_EQ(ga[i].reservoir[r].point, gb[i].reservoir[r].point);
      }
    }
  }
}

void ExpectLockstepDraws(ShardedSwSamplerPool* a, ShardedSwSamplerPool* b) {
  Xoshiro256pp rng_a(SplitMix64(4040));
  Xoshiro256pp rng_b(SplitMix64(4040));
  for (int q = 0; q < 16; ++q) {
    const auto da = a->SampleLatest(&rng_a);
    const auto db = b->SampleLatest(&rng_b);
    ASSERT_EQ(da.has_value(), db.has_value()) << "draw " << q;
    if (da.has_value()) {
      EXPECT_EQ(da->stream_index, db->stream_index) << "draw " << q;
      EXPECT_EQ(da->point, db->point) << "draw " << q;
    }
  }
}

TEST(PoolCheckpointTest, DeltaFoldsToContemporaneousFull) {
  const std::vector<Point> points = Revisits(2000, 60, 1, 115);
  const int64_t window = 301;
  auto pool =
      ShardedSwSamplerPool::Create(SwOptions(37, true), window, 3).value();
  pool.Feed(Span<const Point>(points.data(), 800));
  pool.Drain();
  std::string base;
  ASSERT_TRUE(CheckpointPool(&pool, /*journal_seq=*/0, &base).ok());

  pool.Feed(Span<const Point>(points.data() + 800, 1200));
  pool.Drain();
  std::string delta;
  ASSERT_TRUE(CheckpointPoolDelta(&pool, base, /*journal_seq=*/5, &delta)
                  .ok());
  // The delta marked fresh epochs; a full cut of the same quiescent state
  // is the contemporaneous reference.
  std::string reference;
  ASSERT_TRUE(CheckpointPool(&pool, /*journal_seq=*/5, &reference).ok());
  std::string folded;
  ASSERT_TRUE(FoldPoolDelta(base, delta, &folded).ok());
  EXPECT_EQ(folded, reference);

  // Chain link two on the folded blob.
  pool.Feed(Span<const Point>(points.data(), 500));
  pool.Drain();
  std::string delta2;
  ASSERT_TRUE(
      CheckpointPoolDelta(&pool, folded, /*journal_seq=*/9, &delta2).ok());
  std::string reference2;
  ASSERT_TRUE(CheckpointPool(&pool, /*journal_seq=*/9, &reference2).ok());
  std::string folded2;
  ASSERT_TRUE(FoldPoolDelta(folded, delta2, &folded2).ok());
  EXPECT_EQ(folded2, reference2);
  // Wrong-base and tamper rejection at the pool level.
  EXPECT_FALSE(FoldPoolDelta(base, delta2, &folded).ok());
  std::string tampered = delta2;
  tampered[tampered.size() / 2] ^= 0x08;
  EXPECT_FALSE(FoldPoolDelta(folded2, tampered, &folded).ok());
}

TEST(PoolCheckpointTest, RecoverWithEmptyJournalRestoresTheCut) {
  const std::vector<Point> points = Revisits(1500, 50, 1, 117);
  const int64_t window = 257;
  auto pool =
      ShardedSwSamplerPool::Create(SwOptions(41), window, 2).value();
  pool.Feed(points);
  pool.Drain();
  std::string ckpt;
  ASSERT_TRUE(CheckpointPool(&pool, 0, &ckpt).ok());

  auto recovered_r = RecoverPool(ckpt, "");
  ASSERT_TRUE(recovered_r.ok()) << recovered_r.status().ToString();
  ShardedSwSamplerPool recovered = std::move(recovered_r).value();
  EXPECT_EQ(recovered.num_shards(), pool.num_shards());
  EXPECT_EQ(recovered.window(), pool.window());
  EXPECT_EQ(recovered.points_processed(), pool.points_processed());
  EXPECT_EQ(ShardBlobs(recovered), ShardBlobs(pool));
  ExpectLockstepDraws(&recovered, &pool);
}

TEST(PoolCheckpointTest, RecoverReplaysTheJournalSequenceMode) {
  const std::vector<Point> points = Revisits(2400, 70, 1, 119);
  const int64_t window = 401;
  const SamplerOptions opts = SwOptions(43, true);

  auto pool = ShardedSwSamplerPool::Create(opts, window, 3).value();
  std::string journal;
  JournalWriter writer(&journal, opts.dim);
  AttachJournal(&pool, &writer);

  pool.Feed(Span<const Point>(points.data(), 700));
  pool.Feed(Span<const Point>(points.data() + 700, 300));
  pool.Drain();
  std::string ckpt;
  ASSERT_TRUE(CheckpointPool(&pool, writer.next_seq(), &ckpt).ok());
  // Post-checkpoint chunks land in the journal and nowhere else durable.
  pool.Feed(Span<const Point>(points.data() + 1000, 900));
  pool.Feed(Span<const Point>(points.data() + 1900, 500));
  pool.Drain();

  // "Crash": all that survives is (ckpt, journal). The reference shares
  // the restore point (slot layout is packed on restore; see the LIFO
  // caveat in core/checkpoint.h) and re-feeds the suffix with a
  // DIFFERENT chunking — recovery must be chunking-invariant.
  auto reference_r = RecoverPool(ckpt, "");
  ASSERT_TRUE(reference_r.ok());
  ShardedSwSamplerPool reference = std::move(reference_r).value();
  size_t offset = 1000;
  Xoshiro256pp chunk_rng(SplitMix64(77));
  while (offset < points.size()) {
    const size_t chunk = std::min<size_t>(
        1 + chunk_rng.NextBounded(211), points.size() - offset);
    reference.Feed(Span<const Point>(points.data() + offset, chunk));
    offset += chunk;
  }
  reference.Drain();

  auto recovered_r = RecoverPool(ckpt, journal);
  ASSERT_TRUE(recovered_r.ok()) << recovered_r.status().ToString();
  ShardedSwSamplerPool recovered = std::move(recovered_r).value();
  EXPECT_EQ(recovered.points_processed(), points.size());
  EXPECT_EQ(ShardBlobs(recovered), ShardBlobs(reference));
  ExpectLockstepDraws(&recovered, &reference);
}

TEST(PoolCheckpointTest, EmptyCheckpointReplayEqualsUninterruptedRun) {
  // The strongest sub-case: a checkpoint cut before any feeding has
  // perfectly packed (empty) tables, so the recovered pool must equal a
  // genuinely uninterrupted pool byte-for-byte, not just a restored twin.
  const std::vector<Point> points = Revisits(1200, 60, 1, 121);
  const int64_t window = 307;
  const SamplerOptions opts = SwOptions(47);

  auto pool = ShardedSwSamplerPool::Create(opts, window, 2).value();
  std::string journal;
  JournalWriter writer(&journal, opts.dim);
  AttachJournal(&pool, &writer);
  std::string ckpt;
  ASSERT_TRUE(CheckpointPool(&pool, writer.next_seq(), &ckpt).ok());
  pool.Feed(Span<const Point>(points.data(), 500));
  pool.Feed(Span<const Point>(points.data() + 500, 700));
  pool.Drain();

  auto uninterrupted =
      ShardedSwSamplerPool::Create(opts, window, 2).value();
  uninterrupted.Feed(points);
  uninterrupted.Drain();

  auto recovered_r = RecoverPool(ckpt, journal);
  ASSERT_TRUE(recovered_r.ok()) << recovered_r.status().ToString();
  ShardedSwSamplerPool recovered = std::move(recovered_r).value();
  EXPECT_EQ(ShardBlobs(recovered), ShardBlobs(uninterrupted));
  ExpectLockstepDraws(&recovered, &uninterrupted);
}

TEST(PoolCheckpointTest, RecoverReplaysTheJournalTimeMode) {
  const std::vector<Point> points = Revisits(1800, 60, 1, 123);
  std::vector<int64_t> stamps;
  Xoshiro256pp srng(SplitMix64(88));
  int64_t t = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    t += 1 + static_cast<int64_t>(srng.NextBounded(4));
    stamps.push_back(t);
  }
  const int64_t window = 601;
  const SamplerOptions opts = SwOptions(53);

  auto pool = ShardedSwSamplerPool::Create(opts, window, 3).value();
  std::string journal;
  JournalWriter writer(&journal, opts.dim);
  AttachJournal(&pool, &writer);
  pool.FeedStamped(Span<const Point>(points.data(), 600),
                   Span<const int64_t>(stamps.data(), 600));
  pool.Drain();
  std::string ckpt;
  ASSERT_TRUE(CheckpointPool(&pool, writer.next_seq(), &ckpt).ok());
  pool.FeedStamped(Span<const Point>(points.data() + 600, 1200),
                   Span<const int64_t>(stamps.data() + 600, 1200));
  pool.Drain();

  auto reference_r = RecoverPool(ckpt, "");
  ASSERT_TRUE(reference_r.ok());
  ShardedSwSamplerPool reference = std::move(reference_r).value();
  size_t offset = 600;
  Xoshiro256pp chunk_rng(SplitMix64(99));
  while (offset < points.size()) {
    const size_t chunk = std::min<size_t>(
        1 + chunk_rng.NextBounded(173), points.size() - offset);
    reference.FeedStamped(Span<const Point>(points.data() + offset, chunk),
                          Span<const int64_t>(stamps.data() + offset, chunk));
    offset += chunk;
  }
  reference.Drain();

  auto recovered_r = RecoverPool(ckpt, journal);
  ASSERT_TRUE(recovered_r.ok()) << recovered_r.status().ToString();
  ShardedSwSamplerPool recovered = std::move(recovered_r).value();
  EXPECT_EQ(recovered.points_processed(), points.size());
  EXPECT_EQ(ShardBlobs(recovered), ShardBlobs(reference));
  ExpectLockstepDraws(&recovered, &reference);
}

TEST(PoolCheckpointTest, RecoverRearmsWatermarkAndFrontier) {
  // The satellite-2 regression: a checkpoint of a bounded-lateness pool
  // must carry the event watermark and release frontier. The recovered
  // pool (a) reports the same per-shard event time, and (b) judges a
  // stale re-offer late instead of re-admitting it.
  SamplerOptions opts = SwOptions(59);
  opts.allowed_lateness = 10;
  const int64_t window = 120;
  auto pool = ShardedSwSamplerPool::Create(opts, window, 2).value();

  std::vector<Point> points = Revisits(400, 30, 1, 125);
  std::vector<int64_t> stamps;
  for (size_t i = 0; i < points.size(); ++i) {
    stamps.push_back(static_cast<int64_t>(2 * i));
  }
  // Mild disorder within the bound: swap adjacent pairs.
  for (size_t i = 0; i + 1 < points.size(); i += 2) {
    std::swap(points[i], points[i + 1]);
    std::swap(stamps[i], stamps[i + 1]);
  }
  pool.FeedStampedLate(points, stamps);
  pool.FlushLate();
  pool.Drain();
  std::string ckpt;
  ASSERT_TRUE(CheckpointPool(&pool, 0, &ckpt).ok());

  auto recovered_r = RecoverPool(ckpt, "");
  ASSERT_TRUE(recovered_r.ok()) << recovered_r.status().ToString();
  ShardedSwSamplerPool recovered = std::move(recovered_r).value();
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    // Without the watermark carried in the header, a restored quiet lane
    // falls back to its own latest stamp and under-expires.
    EXPECT_EQ(recovered.shard(s).watermark(), pool.shard(s).watermark())
        << "shard " << s;
  }

  // A stale offer (far below the flushed frontier) must be judged late by
  // both pools — the recovered one must not re-admit it...
  const int64_t stale = stamps.back() / 2;
  const std::vector<Point> one = {Point{999.0}};
  const std::vector<int64_t> stale_stamp = {stale};
  pool.FeedStampedLate(one, stale_stamp);
  recovered.FeedStampedLate(one, stale_stamp);
  EXPECT_EQ(recovered.late_stats().late_dropped, 1u);

  // ... and fresh in-order feeding continues identically on both sides.
  // Expiry holes in the original's tables recycle in LIFO order while
  // the recovered tables were restored packed, so slot *layout* (and
  // hence raw snapshot bytes) legitimately diverge here — the pinned
  // contract is canonical state equality (byte equality against a
  // restore-point-sharing reference is pinned by the replay tests).
  const int64_t resume = stamps.back() + 3 * opts.allowed_lateness;
  std::vector<Point> fresh = Revisits(200, 30, 1, 127);
  std::vector<int64_t> fresh_stamps;
  for (size_t i = 0; i < fresh.size(); ++i) {
    fresh_stamps.push_back(resume + static_cast<int64_t>(i));
  }
  pool.FeedStampedLate(fresh, fresh_stamps);
  pool.FlushLate();
  pool.Drain();
  recovered.FeedStampedLate(fresh, fresh_stamps);
  recovered.FlushLate();
  recovered.Drain();
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    EXPECT_EQ(recovered.shard(s).points_processed(),
              pool.shard(s).points_processed());
    EXPECT_EQ(recovered.shard(s).watermark(), pool.shard(s).watermark());
    ExpectSameCanonicalState(recovered.shard(s), pool.shard(s));
  }
}

TEST(PoolCheckpointTest, RecoverRejectsCorruptInputs) {
  const std::vector<Point> points = Revisits(300, 30, 1, 129);
  auto pool = ShardedSwSamplerPool::Create(SwOptions(61), 101, 2).value();
  pool.Feed(points);
  pool.Drain();
  std::string ckpt;
  ASSERT_TRUE(CheckpointPool(&pool, 0, &ckpt).ok());

  EXPECT_FALSE(RecoverPool("", "").ok());
  EXPECT_FALSE(RecoverPool("garbage", "").ok());
  std::string tampered = ckpt;
  tampered[tampered.size() / 2] ^= 0x04;
  EXPECT_FALSE(RecoverPool(tampered, "").ok());
  // A truncated checkpoint fails the checksum, never crashes.
  EXPECT_FALSE(RecoverPool(ckpt.substr(0, ckpt.size() / 2), "").ok());

  // A journal with the wrong dimension is rejected before any feeding.
  std::string journal;
  JournalWriter writer(&journal, /*dim=*/3);
  writer.AppendPoints(SmallPoints(2, 3, 130), pool.points_processed());
  EXPECT_FALSE(RecoverPool(ckpt, journal).ok());

  // A journal whose index base doesn't continue the checkpoint is a
  // discontinuity, not silent misfeeding.
  std::string bad_base;
  JournalWriter writer2(&bad_base, /*dim=*/1);
  writer2.AppendPoints(SmallPoints(2, 1, 131),
                       pool.points_processed() + 7);
  EXPECT_FALSE(RecoverPool(ckpt, bad_base).ok());
}

}  // namespace
}  // namespace rl0
