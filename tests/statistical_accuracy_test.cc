// Statistical accuracy of the sampler and the F0 estimator against the
// exact offline baselines, at paper scale (a ≥50k-point noisy stream).
//
// Ground truth comes from baseline/exact_partition over the (rescaled)
// base points: NaturalPartition gives the group of every base entity and
// ExactF0WellSeparated the true robust F0; the generator's per-point
// labels lift that partition to the full noisy stream. Everything is
// seeded — the thresholds below are deterministic for this binary, and
// generous enough (p ≈ 0.001 for the chi-squared) that they are not
// knife-edge.
//
// The uniformity experiment replays the representative stream (the
// first-arrival point of each group): for the fixed-representative
// Algorithm 1 this provably reproduces the sampling distribution of the
// full stream (iw_sampler_test.ReplayEquivalence) at ~250x less work,
// which is what makes 2000 independent sampler instances affordable in a
// unit test. The F0 and coverage checks feed the full 50k-point stream
// through the persistent ingestion pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "rl0/baseline/exact_partition.h"
#include "rl0/core/f0_iw.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/core/sharded_pool.h"
#include "rl0/stream/dataset.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

constexpr size_t kGroups = 200;
constexpr uint64_t kDataSeed = 20180611;  // fixed: thresholds are pinned

/// The shared ≥50k-point workload plus exact_partition ground truth.
struct GroundTruth {
  NoisyDataset data;
  /// Rescaled base points (same geometry MakeNearDuplicates used).
  std::vector<Point> base_points;
  /// NaturalPartition of the base points at the stream's alpha.
  Partition partition;
  /// partition.group_of ∘ data.group_of: exact group of every stream point.
  std::vector<uint32_t> group_of_point;
};

const GroundTruth& SharedGroundTruth() {
  static const GroundTruth* truth = [] {
    auto* t = new GroundTruth();
    BaseDataset base = RandomUniform(kGroups, 3, kDataSeed, "Stat");
    NearDupOptions nd;
    nd.max_dups = 550;  // E[n] ≈ 55k: comfortably ≥ 50k for this seed
    nd.seed = kDataSeed + 1;
    t->data = MakeNearDuplicates(base, nd);

    // Reproduce the generator's rescaled base geometry and partition it
    // exactly. On this well-separated instance (min pairwise distance 1,
    // alpha = d^{-1.5} < 1) every base point is its own group.
    t->base_points = base.points;
    RescaleToUnitMinDistance(&t->base_points);
    t->partition = NaturalPartition(t->base_points, t->data.alpha);

    t->group_of_point.reserve(t->data.size());
    for (uint32_t label : t->data.group_of) {
      t->group_of_point.push_back(t->partition.group_of[label]);
    }
    return t;
  }();
  return *truth;
}

SamplerOptions StatOptions(const NoisyDataset& data, uint64_t seed) {
  SamplerOptions opts;
  opts.dim = data.dim;
  opts.alpha = data.alpha;
  opts.seed = seed;
  opts.side_mode = GridSideMode::kHighDim;
  opts.expected_stream_length = data.size();
  return opts;
}

double ChiSquaredUniform(const std::vector<uint64_t>& counts,
                         uint64_t total) {
  const double expected =
      static_cast<double>(total) / static_cast<double>(counts.size());
  double stat = 0.0;
  for (uint64_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    stat += d * d / expected;
  }
  return stat;
}

// Critical value of chi-squared with df = kGroups - 1 = 199 at
// p ≈ 0.001 is ≈ 267 (Wilson–Hilferty); 275 adds margin. A uniform
// sampler lands near df = 199 in expectation.
constexpr double kChiSquaredThreshold = 275.0;

TEST(StatisticalAccuracyTest, WorkloadIsPaperScaleAndWellSeparated) {
  const GroundTruth& t = SharedGroundTruth();
  ASSERT_GE(t.data.size(), 50000u) << "raise max_dups or change the seed";
  EXPECT_EQ(t.data.num_groups, kGroups);
  // exact_partition agrees with the generator: one group per base point,
  // and the greedy partition (Definition 3.2) finds the same count.
  EXPECT_EQ(t.partition.num_groups, kGroups);
  EXPECT_EQ(ExactF0WellSeparated(t.base_points, t.data.alpha), kGroups);
  EXPECT_EQ(GreedyPartition(t.base_points, t.data.alpha).num_groups,
            kGroups);
}

TEST(StatisticalAccuracyTest, SampledGroupsUniformChiSquared) {
  const GroundTruth& t = SharedGroundTruth();
  const RepresentativeStream reps = ExtractRepresentatives(t.data);
  ASSERT_EQ(reps.points.size(), kGroups);

  const uint64_t runs = 2000;
  uint64_t empty_runs = 0;
  std::vector<uint64_t> counts(kGroups, 0);
  for (uint64_t run = 0; run < runs; ++run) {
    // Natural accept cap: the rate rises above 1, so uniformity is the
    // Theorem 2.4 statement about the sketch randomness, not the trivial
    // keep-everything regime.
    auto sampler =
        RobustL0SamplerIW::Create(StatOptions(t.data, 40000 + run)).value();
    sampler.InsertBatch(reps.points);
    EXPECT_GT(sampler.level(), 0u);
    const auto sample = sampler.Sample(SplitMix64(90000 + run));
    if (!sample.has_value()) {
      ++empty_runs;
      continue;
    }
    // The replayed stream's indices are 0..G-1 over the representatives;
    // lift to the exact partition's group id.
    ASSERT_LT(sample->stream_index, reps.group_of.size());
    const uint32_t base_label = reps.group_of[sample->stream_index];
    ++counts[t.partition.group_of[base_label]];
  }

  // Empty accept sets happen with probability ≤ 1/m per run.
  EXPECT_LE(empty_runs, runs / 100);
  const double stat = ChiSquaredUniform(counts, runs - empty_runs);
  EXPECT_LT(stat, kChiSquaredThreshold)
      << "sampled groups deviate from uniform (df=199, p<0.001)";
}

TEST(StatisticalAccuracyTest, ChiSquaredDetectsBiasedSampling) {
  // Power check for the statistic itself: a sampler that favours one
  // group 3x must land far beyond the threshold at this run count.
  std::vector<uint64_t> counts(kGroups, 10);
  counts[0] = 30;
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  EXPECT_GT(ChiSquaredUniform(counts, total), kChiSquaredThreshold / 10);
  // And an exactly uniform table scores 0.
  EXPECT_EQ(ChiSquaredUniform(std::vector<uint64_t>(kGroups, 10),
                              10 * kGroups),
            0.0);
}

TEST(StatisticalAccuracyTest, F0EstimateWithinEpsilonEnvelope) {
  const GroundTruth& t = SharedGroundTruth();
  const double epsilon = 0.2;
  const double truth = static_cast<double>(kGroups);
  // Three independent seeds, each a median over copies: with the paper's
  // constant-δ per-copy guarantee boosted by the median, all three must
  // land in the (1±ε) envelope (seeds pinned, deterministic).
  for (uint64_t seed : {1u, 2u, 3u}) {
    F0Options opts;
    opts.sampler = StatOptions(t.data, 7000 + seed);
    opts.epsilon = epsilon;
    opts.copies = 7;
    auto estimator = F0EstimatorIW::Create(opts).value();
    // Feed the full ≥50k stream through the persistent pipeline, copies
    // in parallel, in streaming-sized chunks.
    const Span<const Point> all(t.data.points);
    const size_t chunk = 4096;
    for (size_t offset = 0; offset < all.size(); offset += chunk) {
      estimator.Feed(all.subspan(offset, chunk));
    }
    estimator.Drain();
    const double estimate = estimator.Estimate();
    EXPECT_GE(estimate, (1.0 - epsilon) * truth) << "seed " << seed;
    EXPECT_LE(estimate, (1.0 + epsilon) * truth) << "seed " << seed;
  }
}

TEST(StatisticalAccuracyTest, PipelineAtRateOneCoversExactF0) {
  const GroundTruth& t = SharedGroundTruth();
  SamplerOptions opts = StatOptions(t.data, 611);
  opts.accept_cap = 1 << 20;  // rate 1: Sacc holds every group
  auto pool = ShardedSamplerPool::Create(opts, 8).value();
  const Span<const Point> all(t.data.points);
  const size_t chunk = 2048;
  for (size_t offset = 0; offset < all.size(); offset += chunk) {
    pool.FeedBorrowed(all.subspan(offset, chunk));
  }
  pool.Drain();
  EXPECT_EQ(pool.points_processed(), t.data.size());
  auto merged = pool.Merged().value();
  EXPECT_EQ(merged.accept_size(),
            ExactF0WellSeparated(t.base_points, t.data.alpha));
}

}  // namespace
}  // namespace rl0
