// CellIndex probe tests: the runtime-dispatched (AVX2 / scalar) bucket
// compare must agree with a reference map under arbitrary churn, and the
// dispatch name must match the build configuration. The multi-bucket
// SIMD compare only changes how a probe sequence is scanned — hash
// order, tombstone handling, and growth are shared with the scalar
// path, so equivalence here pins the whole family.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rl0/core/rep_table.h"
#include "rl0/util/rng.h"

namespace rl0 {
namespace {

TEST(CellIndexSimdTest, DispatchMatchesBuildConfiguration) {
  const std::string name = CellIndexDispatch();
#ifdef RL0_NO_SIMD
  EXPECT_EQ(name, "scalar");
#else
  EXPECT_TRUE(name == "avx2" || name == "scalar") << name;
#endif
}

TEST(CellIndexSimdTest, MatchesReferenceMapUnderRandomChurn) {
  Xoshiro256pp rng(SplitMix64(20260807));
  CellIndex index;
  std::unordered_map<uint64_t, uint32_t> reference;
  std::vector<uint64_t> inserted;  // with repeats; good erase targets

  for (int step = 0; step < 20000; ++step) {
    const uint64_t op = rng.NextBounded(10);
    if (op < 5 || inserted.empty()) {
      // Mix dense sequential keys (adjacent grid cells collide in the
      // low bits) with full-width random ones.
      const uint64_t key = rng.NextBounded(2) == 0
                               ? rng.NextBounded(512)
                               : rng();
      const uint32_t head = static_cast<uint32_t>(rng.NextBounded(1 << 20));
      const uint32_t prev = index.Upsert(key, head);
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(prev, CellIndex::kNpos) << "key " << key;
        reference.emplace(key, head);
      } else {
        EXPECT_EQ(prev, it->second) << "key " << key;
        it->second = head;
      }
      inserted.push_back(key);
    } else if (op < 7) {
      const uint64_t key = inserted[rng.NextBounded(inserted.size())];
      index.Erase(key);
      reference.erase(key);
    } else if (op < 9) {
      // Lookup a key that was live at some point (may be erased now).
      const uint64_t key = inserted[rng.NextBounded(inserted.size())];
      const auto it = reference.find(key);
      EXPECT_EQ(index.Find(key),
                it == reference.end() ? CellIndex::kNpos : it->second)
          << "key " << key;
    } else {
      // Lookup a key that has (almost surely) never been inserted.
      EXPECT_EQ(index.Find(rng() | (uint64_t{1} << 63)), CellIndex::kNpos);
    }
    ASSERT_EQ(index.live(), reference.size());
  }

  // Final sweep: every surviving key resolves, and ForEach visits the
  // exact live set once.
  std::unordered_map<uint64_t, uint32_t> visited;
  index.ForEach([&](uint64_t key, uint32_t head) {
    EXPECT_TRUE(visited.emplace(key, head).second) << "key " << key;
  });
  EXPECT_EQ(visited.size(), reference.size());
  for (const auto& [key, head] : reference) {
    EXPECT_EQ(index.Find(key), head) << "key " << key;
    const auto it = visited.find(key);
    ASSERT_NE(it, visited.end()) << "key " << key;
    EXPECT_EQ(it->second, head);
  }
}

TEST(CellIndexSimdTest, TombstoneHeavyProbeChainsStayCorrect) {
  // Insert a packed run of keys, erase most of them, then re-probe:
  // the dispatched compare has to step over tombstone runs without
  // terminating early (tombstones are not empties).
  CellIndex index;
  constexpr uint64_t kKeys = 300;  // forces several growth rounds
  for (uint64_t k = 0; k < kKeys; ++k) {
    index.SetHead(k, static_cast<uint32_t>(k * 3));
  }
  for (uint64_t k = 0; k < kKeys; ++k) {
    if (k % 5 != 0) index.Erase(k);
  }
  EXPECT_EQ(index.live(), kKeys / 5);
  for (uint64_t k = 0; k < kKeys; ++k) {
    if (k % 5 == 0) {
      EXPECT_EQ(index.Find(k), static_cast<uint32_t>(k * 3)) << "key " << k;
    } else {
      EXPECT_EQ(index.Find(k), CellIndex::kNpos) << "key " << k;
    }
  }
  // Reinsert into the tombstoned table; every key must land cleanly.
  for (uint64_t k = 0; k < kKeys; ++k) {
    index.SetHead(k, static_cast<uint32_t>(k + 7));
  }
  EXPECT_EQ(index.live(), kKeys);
  for (uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(index.Find(k), static_cast<uint32_t>(k + 7)) << "key " << k;
  }
}

}  // namespace
}  // namespace rl0
