// Tests for the baselines: the classical min-rank ℓ0-sampler (and its bias
// on noisy data — the paper's motivating failure), the exact naive robust
// samplers, and the offline partitioners.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "rl0/baseline/exact_partition.h"
#include "rl0/baseline/naive_robust.h"
#include "rl0/baseline/standard_l0.h"
#include "rl0/metrics/distribution.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace rl0 {
namespace {

TEST(StandardL0Test, EmptyIsNullopt) {
  StandardL0Sampler sampler(1);
  EXPECT_FALSE(sampler.Sample().has_value());
}

TEST(StandardL0Test, UniformOverDistinctItems) {
  // Three distinct items with repetitions: each item sampled ~1/3 across
  // seeds (true duplicates collapse via identical hashing).
  SampleDistribution dist(3);
  const std::vector<Point> items{Point{0.0}, Point{1.0}, Point{2.0}};
  for (int seed = 0; seed < 9000; ++seed) {
    StandardL0Sampler sampler(static_cast<uint64_t>(seed));
    for (int rep = 0; rep < 5; ++rep) {
      for (size_t i = 0; i < items.size(); ++i) sampler.Insert(items[i]);
    }
    const auto sample = sampler.Sample();
    ASSERT_TRUE(sample.has_value());
    dist.Record(static_cast<uint32_t>(sample->point[0] + 0.5));
  }
  EXPECT_LT(dist.MaxDevNm(), 0.1);
}

TEST(StandardL0Test, TrueDuplicatesKeepFirstArrival) {
  StandardL0Sampler sampler(7);
  sampler.Insert(Point{5.0});
  sampler.Insert(Point{5.0});
  const auto sample = sampler.Sample();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->stream_index, 0u);
}

TEST(StandardL0Test, BiasedTowardLargeGroupsOnNoisyData) {
  // The paper's motivation: group A has 50 near-duplicates, group B has 1
  // point. The classical sampler returns group A ~50/51 of the time; a
  // robust sampler must return each with probability 1/2.
  int group_a = 0;
  const int runs = 4000;
  Xoshiro256pp noise(11);
  for (int seed = 0; seed < runs; ++seed) {
    StandardL0Sampler sampler(static_cast<uint64_t>(seed));
    for (int i = 0; i < 50; ++i) {
      sampler.Insert(Point{0.2 * noise.NextDouble()});
    }
    sampler.Insert(Point{100.0});
    const auto sample = sampler.Sample();
    ASSERT_TRUE(sample.has_value());
    group_a += sample->point[0] < 50.0;
  }
  const double frac_a = static_cast<double>(group_a) / runs;
  EXPECT_GT(frac_a, 0.9);  // heavily biased, as the paper argues
}

TEST(NaiveRobustTest, CountsGroupsExactly) {
  NaiveRobustSampler sampler(1.0);
  sampler.Insert(Point{0.0});
  sampler.Insert(Point{0.5});   // same group
  sampler.Insert(Point{10.0});  // new group
  sampler.Insert(Point{10.9});  // same as previous (d=0.9 ≤ 1)
  sampler.Insert(Point{20.0});  // new group
  EXPECT_EQ(sampler.num_groups(), 3u);
}

TEST(NaiveRobustTest, RepresentativesAreFirstPoints) {
  NaiveRobustSampler sampler(1.0);
  sampler.Insert(Point{0.0});
  sampler.Insert(Point{0.5});
  sampler.Insert(Point{10.0});
  ASSERT_EQ(sampler.representatives().size(), 2u);
  EXPECT_EQ(sampler.representatives()[0].stream_index, 0u);
  EXPECT_EQ(sampler.representatives()[1].stream_index, 2u);
}

TEST(NaiveRobustTest, UniformOverGroups) {
  NaiveRobustSampler sampler(1.0);
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    sampler.Insert(Point{10.0 * i});
    sampler.Insert(Point{10.0 * i + 0.3});
  }
  SampleDistribution dist(n);
  Xoshiro256pp rng(13);
  for (int q = 0; q < 20000; ++q) {
    const auto sample = sampler.Sample(&rng);
    ASSERT_TRUE(sample.has_value());
    dist.Record(static_cast<uint32_t>(sample->point[0] / 10.0 + 0.5));
  }
  EXPECT_LT(dist.MaxDevNm(), 0.12);
}

TEST(NaiveWindowTest, TracksAliveGroups) {
  // Window 5 at time `now` covers stamps in (now-5, now].
  NaiveWindowSampler sampler(1.0, 5);
  sampler.Insert(Point{0.0}, 0);
  sampler.Insert(Point{10.0}, 2);
  sampler.Insert(Point{20.0}, 4);
  EXPECT_EQ(sampler.GroupsAlive(4), 3u);   // covers stamps 0, 2, 4
  EXPECT_EQ(sampler.GroupsAlive(6), 2u);   // stamp 0 expired (0 ≤ 6-5)
  EXPECT_EQ(sampler.GroupsAlive(8), 1u);   // only stamp 4 (4 > 8-5)
  EXPECT_EQ(sampler.GroupsAlive(9), 0u);   // stamp 4 expired (4 ≤ 9-5)
}

TEST(NaiveWindowTest, SampleRespectsWindow) {
  NaiveWindowSampler sampler(1.0, 3);
  sampler.Insert(Point{0.0}, 0);
  sampler.Insert(Point{10.0}, 5);
  Xoshiro256pp rng(17);
  const auto sample = sampler.Sample(5, &rng);
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->point, Point({10.0}));
  EXPECT_FALSE(sampler.Sample(20, &rng).has_value());
}

TEST(NaturalPartitionTest, WellSeparatedClusters) {
  std::vector<Point> pts{Point{0.0},  Point{0.4}, Point{0.8},
                         Point{10.0}, Point{10.3}, Point{20.0}};
  const Partition part = NaturalPartition(pts, 1.0);
  EXPECT_EQ(part.num_groups, 3u);
  EXPECT_EQ(part.group_of[0], part.group_of[1]);
  EXPECT_EQ(part.group_of[1], part.group_of[2]);
  EXPECT_EQ(part.group_of[3], part.group_of[4]);
  EXPECT_NE(part.group_of[0], part.group_of[3]);
  EXPECT_NE(part.group_of[3], part.group_of[5]);
}

TEST(NaturalPartitionTest, ChainsMergeTransitively) {
  // Connected components: 0 - 0.9 - 1.8 chain is one component even though
  // endpoints are 1.8 apart (> alpha).
  std::vector<Point> pts{Point{0.0}, Point{0.9}, Point{1.8}};
  EXPECT_EQ(NaturalPartition(pts, 1.0).num_groups, 1u);
}

TEST(NaturalPartitionTest, MatchesGeneratorGroundTruth) {
  const BaseDataset base = RandomUniform(40, 3, 19);
  NearDupOptions opts;
  opts.seed = 20;
  const NoisyDataset noisy = MakeNearDuplicates(base, opts);
  const Partition part = NaturalPartition(noisy.points, noisy.alpha);
  EXPECT_EQ(part.num_groups, noisy.num_groups);
  // The partition must refine the ground-truth labels bijectively.
  std::map<uint32_t, uint32_t> mapping;
  for (size_t i = 0; i < noisy.points.size(); ++i) {
    const auto [it, inserted] =
        mapping.emplace(part.group_of[i], noisy.group_of[i]);
    EXPECT_EQ(it->second, noisy.group_of[i]);
  }
}

TEST(GreedyPartitionTest, BallCarvingSemantics) {
  // Greedy from the left: Ball(0, 1) grabs {0, 0.9}; 1.8 starts its own.
  std::vector<Point> pts{Point{0.0}, Point{0.9}, Point{1.8}};
  const Partition part = GreedyPartition(pts, 1.0);
  EXPECT_EQ(part.num_groups, 2u);
  EXPECT_EQ(part.group_of[0], part.group_of[1]);
  EXPECT_NE(part.group_of[0], part.group_of[2]);
  EXPECT_EQ(part.representative_of[0], 0u);
  EXPECT_EQ(part.representative_of[1], 2u);
}

TEST(GreedyPartitionTest, EqualsNaturalOnWellSeparatedData) {
  const BaseDataset base = RandomUniform(30, 4, 21);
  NearDupOptions opts;
  opts.seed = 22;
  const NoisyDataset noisy = MakeNearDuplicates(base, opts);
  EXPECT_EQ(GreedyPartition(noisy.points, noisy.alpha).num_groups,
            NaturalPartition(noisy.points, noisy.alpha).num_groups);
}

TEST(IsSparseTest, DetectsGapViolations) {
  std::vector<Point> sparse{Point{0.0}, Point{0.5}, Point{10.0}};
  EXPECT_TRUE(IsSparse(sparse, 1.0, 2.0));
  std::vector<Point> dense{Point{0.0}, Point{1.5}};  // 1.5 ∈ (1, 2]
  EXPECT_FALSE(IsSparse(dense, 1.0, 2.0));
}

TEST(ExactF0Test, MatchesPartitionCount) {
  const BaseDataset base = RandomUniform(25, 2, 23);
  NearDupOptions opts;
  opts.seed = 24;
  const NoisyDataset noisy = MakeNearDuplicates(base, opts);
  EXPECT_EQ(ExactF0WellSeparated(noisy.points, noisy.alpha), 25u);
}

}  // namespace
}  // namespace rl0
