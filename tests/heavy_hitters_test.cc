// Tests for RobustHeavyHitters: SpaceSaving over near-duplicate groups.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "rl0/core/heavy_hitters.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"
#include "rl0/util/rng.h"
#include "rl0/util/space.h"

namespace rl0 {
namespace {

HeavyHittersOptions BaseOptions(size_t capacity, uint64_t seed = 1) {
  HeavyHittersOptions opts;
  opts.dim = 1;
  opts.alpha = 1.0;
  opts.capacity = capacity;
  opts.seed = seed;
  return opts;
}

Point G(int group, double jitter = 0.0) {
  return Point{10.0 * group + jitter};
}

TEST(HeavyHittersTest, CreateValidates) {
  HeavyHittersOptions bad;
  EXPECT_FALSE(RobustHeavyHitters::Create(bad).ok());
  bad = BaseOptions(4);
  bad.alpha = -1;
  EXPECT_FALSE(RobustHeavyHitters::Create(bad).ok());
  bad = BaseOptions(0);
  EXPECT_FALSE(RobustHeavyHitters::Create(bad).ok());
  EXPECT_TRUE(RobustHeavyHitters::Create(BaseOptions(4)).ok());
}

TEST(HeavyHittersTest, ExactCountsUnderCapacity) {
  auto hh = RobustHeavyHitters::Create(BaseOptions(10)).value();
  // Group 0: 5 points (with jitter), group 1: 3, group 2: 1.
  for (int i = 0; i < 5; ++i) hh.Insert(G(0, 0.05 * i));
  for (int i = 0; i < 3; ++i) hh.Insert(G(1, -0.07 * i));
  hh.Insert(G(2));
  EXPECT_EQ(hh.tracked_groups(), 3u);
  const auto top = hh.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].count, 3u);
  EXPECT_EQ(top[2].count, 1u);
}

TEST(HeavyHittersTest, NearDuplicatesChargeOneCounter) {
  auto hh = RobustHeavyHitters::Create(BaseOptions(10)).value();
  Xoshiro256pp rng(3);
  for (int i = 0; i < 100; ++i) {
    hh.Insert(G(7, 0.4 * (rng.NextDouble() - 0.5)));
  }
  EXPECT_EQ(hh.tracked_groups(), 1u);
  EXPECT_EQ(hh.TopK(1)[0].count, 100u);
}

TEST(HeavyHittersTest, EstimateCountFindsTrackedGroups) {
  auto hh = RobustHeavyHitters::Create(BaseOptions(10)).value();
  for (int i = 0; i < 4; ++i) hh.Insert(G(1, 0.1 * i));
  const auto hit = hh.EstimateCount(G(1, 0.33));
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value(), 4u);
  const auto miss = hh.EstimateCount(G(9));
  EXPECT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
}

TEST(HeavyHittersTest, SpaceSavingTakeoverInheritsError) {
  auto hh = RobustHeavyHitters::Create(BaseOptions(2)).value();
  hh.Insert(G(0));
  hh.Insert(G(0, 0.1));
  hh.Insert(G(1));  // counters full: {G0: 2, G1: 1}
  hh.Insert(G(2));  // takeover of G1's counter: count 2, error 1
  const auto top = hh.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].count, 2u);
  EXPECT_EQ(top[1].count, 2u);
  // One entry must carry the inherited error.
  EXPECT_EQ(top[0].error + top[1].error, 1u);
}

TEST(HeavyHittersTest, OverestimateBoundedByNOverC) {
  // SpaceSaving guarantee: estimated count ≤ true count + m/c.
  const size_t capacity = 16;
  auto hh = RobustHeavyHitters::Create(BaseOptions(capacity, 5)).value();
  Xoshiro256pp rng(7);
  std::map<int, uint64_t> truth;
  uint64_t m = 0;
  // Zipf-ish stream over 60 groups.
  for (int i = 0; i < 6000; ++i) {
    const int group = static_cast<int>(rng.NextBounded(60));
    const int heavy = (i % 3 == 0) ? group % 5 : group;  // skew to 0..4
    hh.Insert(G(heavy, 0.3 * (rng.NextDouble() - 0.5)));
    ++truth[heavy];
    ++m;
  }
  for (const auto& entry : hh.TopK(capacity)) {
    const int group = static_cast<int>(entry.representative[0] / 10.0 + 0.5);
    const uint64_t true_count = truth[group];
    EXPECT_LE(entry.count, true_count + m / capacity + 1)
        << "group " << group;
    EXPECT_GE(entry.count, true_count) << "group " << group;  // upper bound
  }
}

TEST(HeavyHittersTest, HeavyGroupsAlwaysTracked) {
  // Any group with true count > m/c must be tracked at the end.
  const size_t capacity = 20;
  auto hh = RobustHeavyHitters::Create(BaseOptions(capacity, 9)).value();
  Xoshiro256pp rng(11);
  // 3 heavy groups (1000 each) + 3000 singleton groups, interleaved.
  uint64_t m = 0;
  int next_singleton = 100;
  for (int round = 0; round < 1000; ++round) {
    for (int h = 0; h < 3; ++h) {
      hh.Insert(G(h, 0.3 * (rng.NextDouble() - 0.5)));
      ++m;
    }
    for (int s = 0; s < 3; ++s) {
      hh.Insert(G(next_singleton++));
      ++m;
    }
  }
  for (int h = 0; h < 3; ++h) {
    const auto estimate = hh.EstimateCount(G(h));
    ASSERT_TRUE(estimate.ok()) << "heavy group " << h << " evicted";
    EXPECT_GE(estimate.value(), 1000u);
    EXPECT_LE(estimate.value(), 1000u + m / capacity + 1);
  }
}

TEST(HeavyHittersTest, PowerLawPipelineRecall) {
  // End-to-end: on a power-law near-duplicate stream, the top-5 true
  // groups must all be reported in the sketch's top-10.
  const BaseDataset base = RandomUniform(150, 4, 13);
  NearDupOptions nd;
  nd.distribution = DupDistribution::kPowerLaw;
  nd.seed = 15;
  const NoisyDataset data = MakeNearDuplicates(base, nd);
  HeavyHittersOptions opts;
  opts.dim = data.dim;
  opts.alpha = data.alpha;
  opts.capacity = 48;
  opts.seed = 17;
  auto hh = RobustHeavyHitters::Create(opts).value();
  for (const Point& p : data.points) hh.Insert(p);

  std::map<uint32_t, uint64_t> truth;
  for (uint32_t g : data.group_of) ++truth[g];
  std::vector<std::pair<uint64_t, uint32_t>> by_count;
  for (const auto& [g, c] : truth) by_count.push_back({c, g});
  std::sort(by_count.rbegin(), by_count.rend());

  const auto top = hh.TopK(10);
  for (int h = 0; h < 5; ++h) {
    const uint32_t heavy_group = by_count[h].second;
    bool found = false;
    for (const auto& entry : top) {
      found = found || data.group_of[entry.stream_index] == heavy_group;
    }
    EXPECT_TRUE(found) << "true top-" << h << " group missing from top-10";
  }
}

TEST(HeavyHittersTest, TopKOrderingAndTruncation) {
  auto hh = RobustHeavyHitters::Create(BaseOptions(10)).value();
  for (int g = 0; g < 6; ++g) {
    for (int c = 0; c <= g; ++c) hh.Insert(G(g, 0.01 * c));
  }
  const auto top3 = hh.TopK(3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].count, 6u);
  EXPECT_EQ(top3[1].count, 5u);
  EXPECT_EQ(top3[2].count, 4u);
  EXPECT_EQ(hh.TopK(100).size(), 6u);
}

TEST(HeavyHittersTest, SpaceBoundedByCapacity) {
  auto hh = RobustHeavyHitters::Create(BaseOptions(8)).value();
  for (int i = 0; i < 5000; ++i) hh.Insert(G(i));  // all distinct groups
  EXPECT_EQ(hh.tracked_groups(), 8u);
  EXPECT_LE(hh.SpaceWords(), 8 * (PointWords(1) + 3 * kMapEntryWords) + 4);
  EXPECT_EQ(hh.points_processed(), 5000u);
}

TEST(HeavyHittersTest, MetricOptionRespected) {
  HeavyHittersOptions opts = BaseOptions(4);
  opts.dim = 2;
  opts.metric = Metric::kLinf;
  auto hh = RobustHeavyHitters::Create(opts).value();
  hh.Insert(Point{0.0, 0.0});
  hh.Insert(Point{0.9, 0.9});  // L∞ distance 0.9 ≤ 1: same group
  EXPECT_EQ(hh.tracked_groups(), 1u);
}

}  // namespace
}  // namespace rl0
