// Unit tests for rl0/hashing: field arithmetic, k-wise hash, mixing hash,
// and the nested ranged sampling (paper Fact 1(b)).

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "rl0/hashing/cell_hasher.h"
#include "rl0/hashing/kwise_hash.h"
#include "rl0/hashing/mix_hash.h"

namespace rl0 {
namespace {

// ----------------------------------------------------------- field math

TEST(Mod61Test, SmallValuesUnchanged) {
  EXPECT_EQ(Mod61(0), 0u);
  EXPECT_EQ(Mod61(1), 1u);
  EXPECT_EQ(Mod61(kMersenne61 - 1), kMersenne61 - 1);
}

TEST(Mod61Test, ModulusFoldsToZero) {
  EXPECT_EQ(Mod61(kMersenne61), 0u);
  EXPECT_EQ(Mod61(static_cast<__uint128_t>(kMersenne61) * 2), 0u);
  EXPECT_EQ(Mod61(static_cast<__uint128_t>(kMersenne61) * kMersenne61), 0u);
}

TEST(Mod61Test, MatchesNaiveModulo) {
  for (uint64_t x : {uint64_t{12345}, uint64_t{1} << 40, uint64_t{1} << 63,
                     ~uint64_t{0}}) {
    EXPECT_EQ(Mod61(x), x % kMersenne61) << x;
  }
}

TEST(MulMod61Test, MatchesSmallProducts) {
  EXPECT_EQ(MulMod61(3, 5), 15u);
  EXPECT_EQ(MulMod61(kMersenne61 - 1, 2), kMersenne61 - 2);
  // (p-1)^2 = p^2 - 2p + 1 ≡ 1 (mod p).
  EXPECT_EQ(MulMod61(kMersenne61 - 1, kMersenne61 - 1), 1u);
}

// --------------------------------------------------------- k-wise hash

TEST(KWisePolyHashTest, DeterministicPerSeed) {
  KWisePolyHash h1(8, 42), h2(8, 42), h3(8, 43);
  EXPECT_EQ(h1(17), h2(17));
  EXPECT_NE(h1(17), h3(17));  // different seed (whp)
}

TEST(KWisePolyHashTest, OutputInField) {
  KWisePolyHash h(16, 7);
  for (uint64_t x = 0; x < 1000; ++x) EXPECT_LT(h(x), kMersenne61);
}

TEST(KWisePolyHashTest, PairwiseUniformityOfLowBit) {
  // Over random seeds, Pr[h(x) even] should be ~1/2 for any fixed x.
  const uint64_t x = 123456789;
  int even = 0;
  const int trials = 2000;
  for (int seed = 0; seed < trials; ++seed) {
    KWisePolyHash h(2, static_cast<uint64_t>(seed));
    even += (h(x) & 1) == 0;
  }
  EXPECT_NEAR(static_cast<double>(even) / trials, 0.5, 0.05);
}

TEST(KWisePolyHashTest, DegreeMatchesK) {
  EXPECT_EQ(KWisePolyHash(2, 1).k(), 2u);
  EXPECT_EQ(KWisePolyHash(32, 1).k(), 32u);
}

TEST(KWisePolyHashTest, DistinctInputsRarelyCollide) {
  KWisePolyHash h(8, 99);
  std::set<uint64_t> outputs;
  const int n = 10000;
  for (int x = 0; x < n; ++x) outputs.insert(h(static_cast<uint64_t>(x)));
  // Birthday bound: expected collisions ~ n^2 / (2 * 2^61) ≈ 0.
  EXPECT_EQ(outputs.size(), static_cast<size_t>(n));
}

TEST(KWisePolyHashTest, LowBitsBalanced) {
  KWisePolyHash h(8, 5);
  int ones = 0;
  const int n = 20000;
  for (int x = 0; x < n; ++x) ones += h(static_cast<uint64_t>(x)) & 1;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.02);
}

// ------------------------------------------------------------- mix hash

TEST(MixHashTest, DeterministicPerSeed) {
  MixHash h1(11), h2(11), h3(12);
  EXPECT_EQ(h1(500), h2(500));
  EXPECT_NE(h1(500), h3(500));
}

TEST(MixHashTest, AvalancheOnInputBitFlip) {
  MixHash h(3);
  int flipped = __builtin_popcountll(h(1000) ^ h(1001));
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(MixHashTest, LowBitsBalanced) {
  MixHash h(9);
  int ones = 0;
  const int n = 20000;
  for (int x = 0; x < n; ++x) ones += h(static_cast<uint64_t>(x)) & 1;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.02);
}

// ---------------------------------------------------------- cell hasher

class CellHasherFamilyTest : public ::testing::TestWithParam<HashFamily> {};

TEST_P(CellHasherFamilyTest, LevelZeroSamplesEverything) {
  CellHasher hasher(GetParam(), 77);
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_TRUE(hasher.SampledAtLevel(key, 0));
  }
}

TEST_P(CellHasherFamilyTest, NestednessFact1b) {
  // Sampled at level l+1 implies sampled at level l: h(x) mod 2R == 0
  // implies h(x) mod R == 0.
  CellHasher hasher(GetParam(), 123);
  for (uint64_t key = 0; key < 5000; ++key) {
    for (uint32_t level = 1; level <= 12; ++level) {
      if (hasher.SampledAtLevel(key, level)) {
        EXPECT_TRUE(hasher.SampledAtLevel(key, level - 1))
            << "key=" << key << " level=" << level;
      }
    }
  }
}

TEST_P(CellHasherFamilyTest, SampleRateApproximatelyTwoToMinusLevel) {
  CellHasher hasher(GetParam(), 321);
  const int n = 200000;
  for (uint32_t level : {1u, 2u, 4u, 6u}) {
    int sampled = 0;
    for (int key = 0; key < n; ++key) {
      sampled += hasher.SampledAtLevel(static_cast<uint64_t>(key), level);
    }
    const double expect = std::pow(2.0, -static_cast<double>(level));
    EXPECT_NEAR(static_cast<double>(sampled) / n, expect, expect * 0.15)
        << "level=" << level;
  }
}

TEST_P(CellHasherFamilyTest, DeterministicAcrossInstances) {
  CellHasher a(GetParam(), 55), b(GetParam(), 55);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(a.Hash(key), b.Hash(key));
    EXPECT_EQ(a.SampledAtLevel(key, 5), b.SampledAtLevel(key, 5));
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, CellHasherFamilyTest,
                         ::testing::Values(HashFamily::kMix64,
                                           HashFamily::kKWisePoly),
                         [](const auto& info) {
                           return info.param == HashFamily::kMix64
                                      ? "Mix64"
                                      : "KWisePoly";
                         });

TEST(CellHasherTest, FamiliesDiffer) {
  CellHasher mix(HashFamily::kMix64, 5);
  CellHasher poly(HashFamily::kKWisePoly, 5);
  int diff = 0;
  for (uint64_t key = 0; key < 64; ++key) diff += mix.Hash(key) != poly.Hash(key);
  EXPECT_GT(diff, 60);
}

}  // namespace
}  // namespace rl0
