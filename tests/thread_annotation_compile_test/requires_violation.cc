// Negative-compile case (b): calling an RL0_REQUIRES method without
// holding the mutex MUST fail under -Werror=thread-safety. The
// try_compile block in CMakeLists.txt asserts this file does NOT
// compile on Clang.

#include <cstdint>

#include "rl0/util/sync.h"
#include "rl0/util/thread_annotations.h"

namespace {

class Counter {
 public:
  void IncrementWithoutLock() {
    IncrementLocked();  // calling requires mu_ held
  }

 private:
  void IncrementLocked() RL0_REQUIRES(mu_) { ++value_; }

  rl0::Mutex mu_;
  int64_t value_ RL0_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.IncrementWithoutLock();
  return 0;
}
