// Negative-compile case (a): reading an RL0_GUARDED_BY field without
// holding its mutex MUST fail under -Werror=thread-safety. The
// try_compile block in CMakeLists.txt asserts this file does NOT
// compile on Clang; if it ever does, the annotations have stopped
// enforcing anything and the configure step fails loudly.

#include <cstdint>

#include "rl0/util/sync.h"
#include "rl0/util/thread_annotations.h"

namespace {

class Counter {
 public:
  int64_t UnguardedRead() const {
    return value_;  // read of value_ requires holding mu_
  }

 private:
  mutable rl0::Mutex mu_;
  int64_t value_ RL0_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  return static_cast<int>(counter.UnguardedRead());
}
