// Baseline for the negative-compile battery: correct lock usage that
// MUST compile cleanly under -Werror=thread-safety. If this file fails,
// the two *_violation.cc rejections prove nothing (they could be failing
// for an unrelated reason — a broken include path, a macro typo).
//
// Driven by the try_compile block in CMakeLists.txt (Clang configures
// only); never part of the normal build.

#include <cstdint>

#include "rl0/util/sync.h"
#include "rl0/util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    rl0::MutexLock lock(&mu_);
    IncrementLocked();
  }

  int64_t value() const {
    rl0::MutexLock lock(&mu_);
    return value_;
  }

 private:
  void IncrementLocked() RL0_REQUIRES(mu_) { ++value_; }

  mutable rl0::Mutex mu_;
  int64_t value_ RL0_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.value() == 1 ? 0 : 1;
}
