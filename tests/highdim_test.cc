// Tests for Section 4 (high-dimensional Euclidean spaces): the d·α grid on
// (α, β)-sparse data with β > d^1.5·α, the Lemma 4.2 reject/accept balance,
// and end-to-end sampling at dimensions up to 50.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rl0/baseline/exact_partition.h"
#include "rl0/core/iw_sampler.h"
#include "rl0/metrics/distribution.h"
#include "rl0/stream/dataset.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace rl0 {
namespace {

/// An (α, β)-sparse dataset in d dimensions with β ≈ d^1.5·α·1.2:
/// group centers with pairwise distance > β, `per_group` points each within
/// α/2 of the center.
NoisyDataset SparseHighDim(size_t groups, size_t per_group, size_t dim,
                           uint64_t seed) {
  const double alpha = 1.0;
  const double beta = 1.2 * std::pow(static_cast<double>(dim), 1.5) * alpha;
  const BaseDataset centers = SeparatedCenters(groups, dim, beta + alpha,
                                               seed);
  NoisyDataset out;
  out.name = "SparseHighDim";
  out.dim = dim;
  out.alpha = alpha;
  out.beta = beta;
  out.num_groups = groups;
  Xoshiro256pp rng(seed ^ 0xD1CEULL);
  for (size_t g = 0; g < groups; ++g) {
    for (size_t i = 0; i < per_group; ++i) {
      Point p = centers.points[g];
      // Random direction, length ≤ alpha/2 so intra-group distance ≤ alpha.
      Point z(dim);
      double norm_sq = 0.0;
      for (size_t j = 0; j < dim; ++j) {
        z[j] = rng.NextGaussian();
        norm_sq += z[j] * z[j];
      }
      const double len = 0.5 * alpha * rng.NextDouble();
      out.points.push_back(p + z * (len / std::sqrt(norm_sq)));
      out.group_of.push_back(static_cast<uint32_t>(g));
    }
  }
  for (size_t i = out.points.size(); i > 1; --i) {
    const size_t j = rng.NextBounded(i);
    std::swap(out.points[i - 1], out.points[j]);
    std::swap(out.group_of[i - 1], out.group_of[j]);
  }
  return out;
}

SamplerOptions HighDimOptions(size_t dim, uint64_t seed) {
  SamplerOptions opts;
  opts.dim = dim;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.side_mode = GridSideMode::kHighDim;  // side = d·α (Section 4)
  opts.expected_stream_length = 1 << 16;
  return opts;
}

TEST(HighDimTest, GeneratorProducesSparsity) {
  const NoisyDataset data = SparseHighDim(25, 3, 10, 1);
  ASSERT_TRUE(data.Validate().ok());
  EXPECT_TRUE(IsSparse(data.points, data.alpha, data.beta));
  EXPECT_EQ(NaturalPartition(data.points, data.alpha).num_groups, 25u);
}

class HighDimSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(HighDimSweep, GroupsResolvedExactlyWhileUnderCap) {
  const size_t dim = GetParam();
  const NoisyDataset data = SparseHighDim(30, 4, dim, 2 + dim);
  SamplerOptions opts = HighDimOptions(dim, 3 + dim);
  opts.accept_cap = 1000;  // no doubling: every group stays a candidate
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  for (const Point& p : data.points) sampler.Insert(p);
  // With rate 1 every group is accepted exactly once.
  EXPECT_EQ(sampler.accept_size(), 30u);
  EXPECT_EQ(sampler.reject_size(), 0u);
}

TEST_P(HighDimSweep, CapMaintainedAndSamplesValid) {
  const size_t dim = GetParam();
  const NoisyDataset data = SparseHighDim(200, 2, dim, 5 + dim);
  SamplerOptions opts = HighDimOptions(dim, 7 + dim);
  opts.accept_cap = 12;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  for (const Point& p : data.points) {
    sampler.Insert(p);
    ASSERT_LE(sampler.accept_size(), 12u);
    ASSERT_GE(sampler.accept_size(), 1u);
  }
  Xoshiro256pp rng(11);
  const auto sample = sampler.Sample(&rng);
  ASSERT_TRUE(sample.has_value());
  // The sample must be a representative of exactly one ground-truth group.
  EXPECT_LT(sample->stream_index, data.points.size());
}

INSTANTIATE_TEST_SUITE_P(Dims, HighDimSweep,
                         ::testing::Values(5, 10, 20, 35, 50));

TEST(HighDimTest, Lemma42RejectSetComparableToAcceptSet) {
  // Lemma 4.2: Pr[p ∈ Srej] ≤ κ1 · Pr[p ∈ Sacc ∪ Srej] with κ1 < 1, i.e.
  // rejects do not dominate. Aggregate over seeds at d=20 with the d·α
  // grid: the reject fraction among candidates stays bounded away from 1.
  const size_t dim = 20;
  const NoisyDataset data = SparseHighDim(300, 1, dim, 17);
  size_t accept_total = 0, reject_total = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    SamplerOptions opts = HighDimOptions(dim, 100 + seed);
    opts.accept_cap = 8;
    auto sampler = RobustL0SamplerIW::Create(opts).value();
    for (const Point& p : data.points) sampler.Insert(p);
    accept_total += sampler.accept_size();
    reject_total += sampler.reject_size();
  }
  ASSERT_GT(accept_total, 0u);
  const double reject_fraction =
      static_cast<double>(reject_total) /
      static_cast<double>(accept_total + reject_total);
  // κ1 < 1: the reject set must not dominate the candidate set (measured
  // ≈ 0.8 at d = 20 — bounded away from 1, unlike the naive 2^d blowup the
  // lemma rules out).
  EXPECT_LT(reject_fraction, 0.9);
}

TEST(HighDimTest, UniformityAtDimension20) {
  const size_t groups = 32;
  const NoisyDataset data = SparseHighDim(groups, 3, 20, 19);
  const RepresentativeStream reps = ExtractRepresentatives(data);
  SampleDistribution dist(groups);
  const int runs = 8000;
  int empty_runs = 0;
  for (int run = 0; run < runs; ++run) {
    SamplerOptions opts = HighDimOptions(20, 4000 + run);
    opts.accept_cap = 12;
    auto sampler = RobustL0SamplerIW::Create(opts).value();
    for (const Point& p : reps.points) sampler.Insert(p);
    Xoshiro256pp rng(9000 + run);
    const auto sample = sampler.Sample(&rng);
    if (!sample.has_value()) {
      ++empty_runs;  // legitimate low-probability failure after halving
      continue;
    }
    dist.Record(reps.group_of[sample->stream_index]);
  }
  EXPECT_LT(empty_runs, runs / 200);
  EXPECT_EQ(dist.ZeroGroups(), 0u);
  EXPECT_LT(dist.StdDevNm(), 0.15);
  EXPECT_LT(dist.MaxDevNm(), 0.4);
}

TEST(HighDimTest, PaperNoiseModelMatchesSection4Regime) {
  // The Section 6.1 generator yields α = d^{-1.5} and β = 1 − α; verify
  // the d·α grid assumption "each cell intersects ≤ 1 group" holds in the
  // sense that every stored representative pair is > α apart.
  const BaseDataset base = RandomUniform(100, 12, 23);
  NearDupOptions nd;
  nd.seed = 29;
  nd.max_dups = 5;
  const NoisyDataset data = MakeNearDuplicates(base, nd);
  SamplerOptions opts;
  opts.dim = 12;
  opts.alpha = data.alpha;
  opts.seed = 31;
  opts.side_mode = GridSideMode::kHighDim;
  opts.accept_cap = 16;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  for (const Point& p : data.points) sampler.Insert(p);
  EXPECT_GE(sampler.accept_size(), 1u);
  std::vector<SampleItem> reps = sampler.AcceptedRepresentatives();
  const auto rej = sampler.RejectedRepresentatives();
  reps.insert(reps.end(), rej.begin(), rej.end());
  for (size_t i = 0; i < reps.size(); ++i) {
    for (size_t j = i + 1; j < reps.size(); ++j) {
      EXPECT_GT(Distance(reps[i].point, reps[j].point), data.alpha);
    }
  }
}

}  // namespace
}  // namespace rl0
