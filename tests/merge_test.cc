// Tests for RobustL0SamplerIW::AbsorbFrom — merging samplers over
// partitioned streams (the distributed setting of the related work).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "rl0/core/iw_sampler.h"
#include "rl0/metrics/distribution.h"
#include "rl0/stream/dataset.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"

namespace rl0 {
namespace {

SamplerOptions MergeOptions(uint64_t seed) {
  SamplerOptions opts;
  opts.dim = 1;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.expected_stream_length = 1 << 14;
  return opts;
}

Point G(int group, double jitter = 0.0) {
  return Point{10.0 * group + jitter};
}

TEST(MergeTest, RequiresIdenticalOptions) {
  auto a = RobustL0SamplerIW::Create(MergeOptions(1)).value();
  auto b = RobustL0SamplerIW::Create(MergeOptions(2)).value();  // seed!
  EXPECT_EQ(a.AbsorbFrom(b).code(), StatusCode::kInvalidArgument);
  SamplerOptions different_alpha = MergeOptions(1);
  different_alpha.alpha = 2.0;
  auto c = RobustL0SamplerIW::Create(different_alpha).value();
  EXPECT_FALSE(a.AbsorbFrom(c).ok());
  auto d = RobustL0SamplerIW::Create(MergeOptions(1)).value();
  EXPECT_TRUE(a.AbsorbFrom(d).ok());
}

TEST(MergeTest, DisjointGroupsUnion) {
  auto a = RobustL0SamplerIW::Create(MergeOptions(3)).value();
  auto b = RobustL0SamplerIW::Create(MergeOptions(3)).value();
  for (int g = 0; g < 10; ++g) a.Insert(G(g));
  for (int g = 10; g < 25; ++g) b.Insert(G(g));
  ASSERT_TRUE(a.AbsorbFrom(b).ok());
  // Default cap is large: rate stays 1 and all 25 groups are accepted.
  EXPECT_EQ(a.accept_size(), 25u);
  EXPECT_EQ(a.points_processed(), 25u);
}

TEST(MergeTest, SharedGroupsDeduplicated) {
  auto a = RobustL0SamplerIW::Create(MergeOptions(4)).value();
  auto b = RobustL0SamplerIW::Create(MergeOptions(4)).value();
  for (int g = 0; g < 12; ++g) {
    a.Insert(G(g, 0.1));
    b.Insert(G(g, -0.2));  // the same 12 groups, different points
  }
  ASSERT_TRUE(a.AbsorbFrom(b).ok());
  EXPECT_EQ(a.accept_size() + a.reject_size(), 12u);
}

TEST(MergeTest, MergeMatchesSingleStreamState) {
  // Feeding stream halves to two samplers and merging must yield the same
  // accepted-group set as one sampler over the concatenated stream,
  // whenever each group appears in only one partition (so representative
  // choice is unambiguous).
  const BaseDataset base = RandomUniform(100, 1, 5);
  NearDupOptions nd;
  nd.max_dups = 4;
  nd.seed = 6;
  nd.shuffle = false;  // groups emitted contiguously: clean partition
  const NoisyDataset data = MakeNearDuplicates(base, nd);
  const size_t half = data.points.size() / 2;
  // Snap the boundary to a group boundary.
  size_t cut = half;
  while (cut < data.points.size() &&
         data.group_of[cut] == data.group_of[cut - 1]) {
    ++cut;
  }

  SamplerOptions opts = MergeOptions(7);
  opts.alpha = data.alpha;
  opts.accept_cap = 16;
  auto whole = RobustL0SamplerIW::Create(opts).value();
  for (const Point& p : data.points) whole.Insert(p);

  auto left = RobustL0SamplerIW::Create(opts).value();
  auto right = RobustL0SamplerIW::Create(opts).value();
  for (size_t i = 0; i < cut; ++i) left.Insert(data.points[i]);
  for (size_t i = cut; i < data.points.size(); ++i) {
    right.Insert(data.points[i]);
  }
  ASSERT_TRUE(left.AbsorbFrom(right).ok());

  // The merged level may lag the single-stream level (the single stream
  // doubled under the *combined* candidate load); unify for comparison.
  const auto accepted_groups = [&](const RobustL0SamplerIW& sampler,
                                   uint32_t at_level) {
    std::set<std::vector<double>> out;
    for (const SampleItem& item : sampler.AcceptedRepresentatives()) {
      if (sampler.hasher().SampledAtLevel(
              sampler.grid().CellKeyOf(item.point), at_level)) {
        out.insert(item.point.coords());
      }
    }
    return out;
  };
  const uint32_t level = std::max(whole.level(), left.level());
  EXPECT_EQ(accepted_groups(whole, level), accepted_groups(left, level));
}

TEST(MergeTest, EarlierRepresentativeWins) {
  auto a = RobustL0SamplerIW::Create(MergeOptions(8)).value();
  auto b = RobustL0SamplerIW::Create(MergeOptions(8)).value();
  // Same group: b saw it first (stream_index 0 vs 5).
  for (int i = 0; i < 5; ++i) a.Insert(G(100 + i));
  a.Insert(G(0, 0.3));   // a's rep for group 0, index 5
  b.Insert(G(0, -0.4));  // b's rep for group 0, index 0
  ASSERT_TRUE(a.AbsorbFrom(b).ok());
  // Find group 0's stored representative.
  std::vector<SampleItem> stored = a.AcceptedRepresentatives();
  const auto rejected = a.RejectedRepresentatives();
  stored.insert(stored.end(), rejected.begin(), rejected.end());
  bool found = false;
  for (const SampleItem& item : stored) {
    if (item.point[0] < 5.0) {
      EXPECT_DOUBLE_EQ(item.point[0], -0.4);  // b's earlier point
      EXPECT_EQ(item.stream_index, 0u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MergeTest, CapEnforcedAfterMerge) {
  SamplerOptions opts = MergeOptions(9);
  opts.accept_cap = 8;
  auto a = RobustL0SamplerIW::Create(opts).value();
  auto b = RobustL0SamplerIW::Create(opts).value();
  for (int g = 0; g < 300; ++g) a.Insert(G(g));
  for (int g = 300; g < 600; ++g) b.Insert(G(g));
  ASSERT_TRUE(a.AbsorbFrom(b).ok());
  EXPECT_LE(a.accept_size(), 8u);
  EXPECT_GE(a.accept_size(), 1u);
}

TEST(MergeTest, MergedSamplingStaysNearUniform) {
  // 40 groups split across two partitions (20 exclusive to each, all seen
  // by neither both): merged samplers across seeds must sample all 40
  // groups with Θ(1/40) frequency.
  const int groups = 40;
  SampleDistribution dist(groups);
  const int runs = 8000;
  int empty_runs = 0;
  for (int run = 0; run < runs; ++run) {
    SamplerOptions opts = MergeOptions(1000 + run);
    opts.accept_cap = 10;
    auto a = RobustL0SamplerIW::Create(opts).value();
    auto b = RobustL0SamplerIW::Create(opts).value();
    for (int g = 0; g < groups / 2; ++g) a.Insert(G(g));
    for (int g = groups / 2; g < groups; ++g) b.Insert(G(g));
    ASSERT_TRUE(a.AbsorbFrom(b).ok());
    Xoshiro256pp rng(5000 + run);
    const auto sample = a.Sample(&rng);
    if (!sample.has_value()) {
      ++empty_runs;
      continue;
    }
    const int g = static_cast<int>(sample->point[0] / 10.0 + 0.5);
    ASSERT_GE(g, 0);
    ASSERT_LT(g, groups);
    dist.Record(static_cast<uint32_t>(g));
  }
  EXPECT_LT(empty_runs, runs / 100);
  EXPECT_EQ(dist.ZeroGroups(), 0u);
  EXPECT_LT(dist.MaxDevNm(), 0.4);
}

TEST(MergeTest, ReservoirStatePooled) {
  SamplerOptions opts = MergeOptions(10);
  opts.random_representative = true;
  auto a = RobustL0SamplerIW::Create(opts).value();
  auto b = RobustL0SamplerIW::Create(opts).value();
  // Group 0: 3 points in a, 5 points in b.
  for (int i = 0; i < 3; ++i) a.Insert(G(0, 0.05 * i));
  for (int i = 0; i < 5; ++i) b.Insert(G(0, -0.05 * i));
  ASSERT_TRUE(a.AbsorbFrom(b).ok());
  // After pooling, the group's reservoir weight must cover all 8 points:
  // across many query draws both partitions' points must appear.
  // (The pooled count is internal; verify behaviourally via sampling.)
  int saw_a = 0, saw_b = 0;
  for (int q = 0; q < 400; ++q) {
    // Re-merge fresh sampler pairs (sharing a per-iteration seed) so the
    // pooled reservoir choice is redrawn each time.
    SamplerOptions per_run = opts;
    per_run.seed = 100 + static_cast<uint64_t>(q);
    auto a2 = RobustL0SamplerIW::Create(per_run).value();
    auto b2 = RobustL0SamplerIW::Create(per_run).value();
    for (int i = 0; i < 3; ++i) a2.Insert(G(0, 0.05 * (i + 1)));
    for (int i = 0; i < 5; ++i) b2.Insert(G(0, -0.05 * (i + 1)));
    ASSERT_TRUE(a2.AbsorbFrom(b2).ok());
    Xoshiro256pp rng(900 + q);
    const auto sample = a2.Sample(&rng);
    ASSERT_TRUE(sample.has_value());
    saw_a += sample->point[0] > 0.0;
    saw_b += sample->point[0] < 0.0;
  }
  // Expected split ~3:5 over a's and b's points; require both present in
  // roughly that proportion.
  EXPECT_GT(saw_a, 400 * 3 / 8 / 2);
  EXPECT_GT(saw_b, 400 * 5 / 8 / 2);
}

TEST(MergeTest, SelfAbsorbIsIdempotentOnGroups) {
  auto a = RobustL0SamplerIW::Create(MergeOptions(11)).value();
  for (int g = 0; g < 15; ++g) a.Insert(G(g));
  auto b = RobustL0SamplerIW::Create(MergeOptions(11)).value();
  for (int g = 0; g < 15; ++g) b.Insert(G(g, 0.2));
  const size_t before = a.accept_size() + a.reject_size();
  ASSERT_TRUE(a.AbsorbFrom(b).ok());
  EXPECT_EQ(a.accept_size() + a.reject_size(), before);
}

}  // namespace
}  // namespace rl0
