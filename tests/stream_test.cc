// Tests for the stream substrate: base dataset generators, the Section 6.1
// near-duplicate transformations, representative extraction, and the
// window stream helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "rl0/baseline/exact_partition.h"
#include "rl0/stream/dataset.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"
#include "rl0/stream/window_stream.h"

namespace rl0 {
namespace {

TEST(GeneratorsTest, RandomUniformShapeAndRange) {
  const BaseDataset data = RandomUniform(100, 7, 42);
  EXPECT_EQ(data.points.size(), 100u);
  EXPECT_EQ(data.dim, 7u);
  for (const Point& p : data.points) {
    ASSERT_EQ(p.dim(), 7u);
    for (size_t j = 0; j < 7; ++j) {
      EXPECT_GE(p[j], 0.0);
      EXPECT_LT(p[j], 1.0);
    }
  }
}

TEST(GeneratorsTest, PaperDatasetShapes) {
  EXPECT_EQ(Rand5().points.size(), 500u);
  EXPECT_EQ(Rand5().dim, 5u);
  EXPECT_EQ(Rand20().points.size(), 500u);
  EXPECT_EQ(Rand20().dim, 20u);
  EXPECT_EQ(YachtLike().points.size(), 308u);
  EXPECT_EQ(YachtLike().dim, 7u);
  EXPECT_EQ(SeedsLike().points.size(), 210u);
  EXPECT_EQ(SeedsLike().dim, 8u);
}

TEST(GeneratorsTest, DeterministicPerSeed) {
  const BaseDataset a = Rand5(9), b = Rand5(9), c = Rand5(10);
  EXPECT_EQ(a.points[0], b.points[0]);
  EXPECT_FALSE(a.points[0] == c.points[0]);
}

TEST(GeneratorsTest, BasePointsAreDistinct) {
  for (const BaseDataset& data :
       {Rand5(), Rand20(), YachtLike(), SeedsLike()}) {
    EXPECT_GT(MinPairwiseDistance(data.points), 0.0) << data.name;
  }
}

TEST(GeneratorsTest, SeparatedCentersRespectBeta) {
  const BaseDataset data = SeparatedCenters(60, 3, 5.0, 11);
  EXPECT_EQ(data.points.size(), 60u);
  EXPECT_GT(MinPairwiseDistance(data.points), 5.0);
}

TEST(GeneratorsTest, OverlappingChainsViolateWellSeparation) {
  const BaseDataset data = OverlappingChains(64, 2, 1.0, 12);
  EXPECT_EQ(data.points.size(), 64u);
  // Sparse with alpha=1, beta=2 would mean no pair in (1, 2]; chains space
  // consecutive points ~1.4 apart, so sparsity must fail.
  EXPECT_FALSE(IsSparse(data.points, 1.0, 2.0));
}

TEST(RescaleTest, UnitMinDistance) {
  std::vector<Point> pts{Point{0.0, 0.0}, Point{0.0, 0.25}, Point{2.0, 0.0}};
  const double scale = RescaleToUnitMinDistance(&pts);
  EXPECT_DOUBLE_EQ(scale, 4.0);
  EXPECT_NEAR(MinPairwiseDistance(pts), 1.0, 1e-12);
}

class NearDupTransformTest
    : public ::testing::TestWithParam<DupDistribution> {};

TEST_P(NearDupTransformTest, LabelsAndGeometryConsistent) {
  const BaseDataset base = RandomUniform(80, 4, 21);
  NearDupOptions opts;
  opts.distribution = GetParam();
  opts.max_dups = 20;
  opts.seed = 31;
  const NoisyDataset noisy = MakeNearDuplicates(base, opts);
  ASSERT_TRUE(noisy.Validate().ok());
  EXPECT_EQ(noisy.num_groups, 80u);
  EXPECT_GE(noisy.points.size(), 2 * 80u);  // every point gets ≥1 duplicate

  // Geometry: α = d^{-1.5}; every point is within α/2 of its group center
  // (center itself included), so intra-group distances are < α and
  // inter-group distances are > β.
  const double d15 = std::pow(4.0, 1.5);
  EXPECT_NEAR(noisy.alpha, 1.0 / d15, 1e-12);
  EXPECT_NEAR(noisy.beta, 1.0 - 1.0 / d15, 1e-12);
  // Spot-check sparsity on a subsample (full check is quadratic).
  for (size_t i = 0; i < noisy.points.size(); i += 7) {
    for (size_t j = i + 1; j < noisy.points.size(); j += 13) {
      const double dist = Distance(noisy.points[i], noisy.points[j]);
      if (noisy.group_of[i] == noisy.group_of[j]) {
        EXPECT_LT(dist, noisy.alpha);
      } else {
        EXPECT_GT(dist, noisy.beta);
      }
    }
  }
}

TEST_P(NearDupTransformTest, EveryGroupRepresented) {
  const BaseDataset base = RandomUniform(50, 3, 22);
  NearDupOptions opts;
  opts.distribution = GetParam();
  opts.seed = 23;
  const NoisyDataset noisy = MakeNearDuplicates(base, opts);
  std::set<uint32_t> groups(noisy.group_of.begin(), noisy.group_of.end());
  EXPECT_EQ(groups.size(), 50u);
}

INSTANTIATE_TEST_SUITE_P(BothDistributions, NearDupTransformTest,
                         ::testing::Values(DupDistribution::kUniform,
                                           DupDistribution::kPowerLaw),
                         [](const auto& info) {
                           return info.param == DupDistribution::kUniform
                                      ? "Uniform"
                                      : "PowerLaw";
                         });

TEST(NearDupTest, UniformDupCountsWithinRange) {
  const BaseDataset base = RandomUniform(60, 2, 24);
  NearDupOptions opts;
  opts.max_dups = 10;
  opts.seed = 25;
  opts.shuffle = false;
  const NoisyDataset noisy = MakeNearDuplicates(base, opts);
  std::vector<int> counts(60, 0);
  for (uint32_t g : noisy.group_of) ++counts[g];
  for (int c : counts) {
    EXPECT_GE(c, 2);       // original + at least 1 duplicate
    EXPECT_LE(c, 11);      // original + at most max_dups
  }
}

TEST(NearDupTest, PowerLawTotalMatchesHarmonicSum) {
  const size_t n = 100;
  const BaseDataset base = RandomUniform(n, 2, 26);
  NearDupOptions opts;
  opts.distribution = DupDistribution::kPowerLaw;
  opts.seed = 27;
  const NoisyDataset noisy = MakeNearDuplicates(base, opts);
  size_t expected = n;  // originals
  for (size_t rank = 1; rank <= n; ++rank) {
    expected += static_cast<size_t>(
        std::ceil(static_cast<double>(n) / static_cast<double>(rank)));
  }
  EXPECT_EQ(noisy.points.size(), expected);
}

TEST(NearDupTest, PowerLawHasHeavyAndLightGroups) {
  const size_t n = 100;
  const BaseDataset base = RandomUniform(n, 2, 28);
  NearDupOptions opts;
  opts.distribution = DupDistribution::kPowerLaw;
  opts.seed = 29;
  const NoisyDataset noisy = MakeNearDuplicates(base, opts);
  std::vector<int> counts(n, 0);
  for (uint32_t g : noisy.group_of) ++counts[g];
  EXPECT_EQ(*std::max_element(counts.begin(), counts.end()), 101);
  EXPECT_EQ(*std::min_element(counts.begin(), counts.end()), 2);
}

TEST(NearDupTest, ShuffleKeepsMultisetOfLabels) {
  const BaseDataset base = RandomUniform(40, 2, 30);
  NearDupOptions with;
  with.seed = 31;
  NearDupOptions without = with;
  without.shuffle = false;
  const NoisyDataset a = MakeNearDuplicates(base, with);
  const NoisyDataset b = MakeNearDuplicates(base, without);
  EXPECT_EQ(a.points.size(), b.points.size());
  std::vector<uint32_t> la = a.group_of, lb = b.group_of;
  std::sort(la.begin(), la.end());
  std::sort(lb.begin(), lb.end());
  EXPECT_EQ(la, lb);
  EXPECT_NE(a.group_of, b.group_of);  // order actually changed
}

TEST(NearDupTest, NoShuffleEmitsGroupsInOrder) {
  const BaseDataset base = RandomUniform(10, 2, 32);
  NearDupOptions opts;
  opts.shuffle = false;
  opts.seed = 33;
  const NoisyDataset noisy = MakeNearDuplicates(base, opts);
  EXPECT_TRUE(std::is_sorted(noisy.group_of.begin(), noisy.group_of.end()));
}

TEST(DatasetTest, ValidateCatchesCorruption) {
  const BaseDataset base = RandomUniform(10, 2, 34);
  NearDupOptions opts;
  opts.seed = 35;
  NoisyDataset noisy = MakeNearDuplicates(base, opts);
  EXPECT_TRUE(noisy.Validate().ok());
  NoisyDataset bad_label = noisy;
  bad_label.group_of[0] = 1000;
  EXPECT_FALSE(bad_label.Validate().ok());
  NoisyDataset bad_sizes = noisy;
  bad_sizes.group_of.pop_back();
  EXPECT_FALSE(bad_sizes.Validate().ok());
  NoisyDataset bad_alpha = noisy;
  bad_alpha.alpha = 0.0;
  EXPECT_FALSE(bad_alpha.Validate().ok());
}

TEST(RepresentativeStreamTest, FirstPerGroupInOrder) {
  const BaseDataset base = RandomUniform(30, 2, 36);
  NearDupOptions opts;
  opts.seed = 37;
  const NoisyDataset noisy = MakeNearDuplicates(base, opts);
  const RepresentativeStream reps = ExtractRepresentatives(noisy);
  EXPECT_EQ(reps.points.size(), 30u);
  EXPECT_TRUE(std::is_sorted(reps.stream_index.begin(),
                             reps.stream_index.end()));
  // Each listed index is the first occurrence of its group.
  for (size_t r = 0; r < reps.points.size(); ++r) {
    const uint32_t g = reps.group_of[r];
    for (size_t i = 0; i < reps.stream_index[r]; ++i) {
      EXPECT_NE(noisy.group_of[i], g);
    }
    EXPECT_EQ(noisy.group_of[reps.stream_index[r]], g);
  }
}

TEST(WindowStreamTest, SequenceStampsAreIndices) {
  const BaseDataset base = RandomUniform(10, 2, 38);
  NearDupOptions opts;
  opts.seed = 39;
  const NoisyDataset noisy = MakeNearDuplicates(base, opts);
  const auto stream = SequenceStamped(noisy);
  ASSERT_EQ(stream.size(), noisy.points.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].stamp, static_cast<int64_t>(i));
    EXPECT_EQ(stream[i].stream_index, i);
    EXPECT_EQ(stream[i].group, noisy.group_of[i]);
  }
}

TEST(WindowStreamTest, TimeStampsNonDecreasingWithBoundedGaps) {
  const BaseDataset base = RandomUniform(10, 2, 40);
  NearDupOptions opts;
  opts.seed = 41;
  const NoisyDataset noisy = MakeNearDuplicates(base, opts);
  const auto stream = TimeStamped(noisy, 5, 42);
  for (size_t i = 1; i < stream.size(); ++i) {
    const int64_t gap = stream[i].stamp - stream[i - 1].stamp;
    EXPECT_GE(gap, 1);
    EXPECT_LE(gap, 5);
  }
}

TEST(WindowStreamTest, BurstyStampsJumpPastWindows) {
  const BaseDataset base = RandomUniform(10, 2, 43);
  NearDupOptions opts;
  opts.seed = 44;
  const NoisyDataset noisy = MakeNearDuplicates(base, opts);
  const int64_t burst = 1000;
  const auto stream = TimeStampedBursty(noisy, 5, /*burst_every=*/7, burst, 45);
  ASSERT_GT(stream.size(), 14u);
  for (size_t i = 1; i < stream.size(); ++i) {
    const int64_t gap = stream[i].stamp - stream[i - 1].stamp;
    if (i % 7 == 0) {
      EXPECT_EQ(gap, burst) << i;  // the whole previous window expires
    } else {
      EXPECT_GE(gap, 1);
      EXPECT_LE(gap, 5);
    }
  }
  // burst_every = 0 disables bursts entirely.
  const auto plain = TimeStampedBursty(noisy, 5, 0, burst, 45);
  for (size_t i = 1; i < plain.size(); ++i) {
    EXPECT_LE(plain[i].stamp - plain[i - 1].stamp, 5);
  }
}

TEST(WindowStreamTest, SplitStampedPreservesOrderAndAlignment) {
  const BaseDataset base = RandomUniform(8, 3, 46);
  NearDupOptions opts;
  opts.seed = 47;
  const NoisyDataset noisy = MakeNearDuplicates(base, opts);
  const auto stream = TimeStamped(noisy, 4, 48);
  std::vector<Point> points{Point{99.0}};  // pre-filled: must be cleared
  std::vector<int64_t> stamps{-1};
  SplitStamped(stream, &points, &stamps);
  ASSERT_EQ(points.size(), stream.size());
  ASSERT_EQ(stamps.size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(points[i], stream[i].point);
    EXPECT_EQ(stamps[i], stream[i].stamp);
  }
}

TEST(WindowStreamTest, GroupsInWindowGroundTruth) {
  NoisyDataset tiny;
  tiny.dim = 1;
  tiny.alpha = 0.5;
  tiny.num_groups = 3;
  tiny.points = {Point{0.0}, Point{10.0}, Point{20.0}, Point{0.1}};
  tiny.group_of = {0, 1, 2, 0};
  const auto stream = SequenceStamped(tiny);
  // Window of width 2 at now=3 covers stamps {2, 3}: groups 2 and 0.
  const auto groups = GroupsInWindow(stream, 3, 2, 3);
  EXPECT_EQ(groups, (std::vector<uint32_t>{0, 2}));
  // Window of width 4 at now=3 covers all stamps 0..3.
  const auto all = GroupsInWindow(stream, 3, 4, 3);
  EXPECT_EQ(all, (std::vector<uint32_t>{0, 1, 2}));
}

}  // namespace
}  // namespace rl0
