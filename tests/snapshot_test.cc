// Tests for sampler checkpoint/restore (core/snapshot.h) and the binary
// serialization helpers (util/serialize.h).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "rl0/core/snapshot.h"
#include "rl0/stream/generators.h"
#include "rl0/stream/neardup.h"
#include "rl0/util/rng.h"
#include "rl0/util/serialize.h"

namespace rl0 {
namespace {

TEST(BinarySerializeTest, RoundTripsAllTypes) {
  std::string buf;
  BinaryWriter writer(&buf);
  writer.PutU8(7);
  writer.PutU32(123456);
  writer.PutU64(0xDEADBEEFCAFEULL);
  writer.PutI64(-42);
  writer.PutDouble(3.14159);

  BinaryReader reader(buf);
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  ASSERT_TRUE(reader.GetU8(&u8).ok());
  ASSERT_TRUE(reader.GetU32(&u32).ok());
  ASSERT_TRUE(reader.GetU64(&u64).ok());
  ASSERT_TRUE(reader.GetI64(&i64).ok());
  ASSERT_TRUE(reader.GetDouble(&d).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_TRUE(reader.ExpectEnd().ok());
}

TEST(BinarySerializeTest, TruncationDetected) {
  std::string buf;
  BinaryWriter writer(&buf);
  writer.PutU32(1);
  BinaryReader reader(buf);
  uint64_t v;
  EXPECT_FALSE(reader.GetU64(&v).ok());
}

TEST(BinarySerializeTest, TrailingBytesDetected) {
  std::string buf;
  BinaryWriter writer(&buf);
  writer.PutU32(1);
  writer.PutU8(9);
  BinaryReader reader(buf);
  uint32_t v;
  ASSERT_TRUE(reader.GetU32(&v).ok());
  EXPECT_FALSE(reader.ExpectEnd().ok());
  EXPECT_EQ(reader.remaining(), 1u);
}

// ------------------------------------------------------------ snapshots

SamplerOptions SnapOptions(uint64_t seed) {
  SamplerOptions opts;
  opts.dim = 3;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.accept_cap = 12;
  opts.expected_stream_length = 1 << 14;
  return opts;
}

NoisyDataset SnapData(uint64_t seed) {
  const BaseDataset base = RandomUniform(120, 3, seed);
  NearDupOptions nd;
  nd.max_dups = 6;
  nd.seed = seed + 1;
  return MakeNearDuplicates(base, nd);
}

TEST(SnapshotTest, RoundTripPreservesState) {
  const NoisyDataset data = SnapData(5);
  auto original = RobustL0SamplerIW::Create([&] {
                    SamplerOptions o = SnapOptions(7);
                    o.alpha = data.alpha;
                    return o;
                  }())
                      .value();
  for (const Point& p : data.points) original.Insert(p);

  std::string blob;
  ASSERT_TRUE(SnapshotSampler(original, &blob).ok());
  auto restored_result = RestoreSampler(blob);
  ASSERT_TRUE(restored_result.ok()) << restored_result.status().ToString();
  RobustL0SamplerIW restored = std::move(restored_result).value();

  EXPECT_EQ(restored.level(), original.level());
  EXPECT_EQ(restored.accept_size(), original.accept_size());
  EXPECT_EQ(restored.reject_size(), original.reject_size());
  EXPECT_EQ(restored.points_processed(), original.points_processed());
  EXPECT_EQ(restored.SpaceWords(), original.SpaceWords());

  // Identical query behaviour for the same query seed.
  const auto a = original.Sample(uint64_t{99});
  const auto b = restored.Sample(uint64_t{99});
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->stream_index, b->stream_index);
}

TEST(SnapshotTest, RestoredSamplerContinuesTheStream) {
  // Process half the stream, snapshot, restore, process the rest: the
  // final state must be identical to an uninterrupted run.
  const NoisyDataset data = SnapData(11);
  SamplerOptions opts = SnapOptions(13);
  opts.alpha = data.alpha;

  auto uninterrupted = RobustL0SamplerIW::Create(opts).value();
  for (const Point& p : data.points) uninterrupted.Insert(p);

  auto first_half = RobustL0SamplerIW::Create(opts).value();
  const size_t half = data.points.size() / 2;
  for (size_t i = 0; i < half; ++i) first_half.Insert(data.points[i]);
  std::string blob;
  ASSERT_TRUE(SnapshotSampler(first_half, &blob).ok());
  auto resumed = RestoreSampler(blob).value();
  for (size_t i = half; i < data.points.size(); ++i) {
    resumed.Insert(data.points[i]);
  }

  EXPECT_EQ(resumed.level(), uninterrupted.level());
  EXPECT_EQ(resumed.accept_size(), uninterrupted.accept_size());
  EXPECT_EQ(resumed.reject_size(), uninterrupted.reject_size());
  const auto a = uninterrupted.Sample(uint64_t{7});
  const auto b = resumed.Sample(uint64_t{7});
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->stream_index, b->stream_index);
}

TEST(SnapshotTest, PreservesAllOptionFields) {
  SamplerOptions opts = SnapOptions(17);
  opts.metric = Metric::kLinf;
  opts.hash_family = HashFamily::kKWisePoly;
  opts.kwise_k = 16;
  opts.k = 3;
  opts.random_representative = true;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  sampler.Insert(Point{0.0, 0.0, 0.0});

  std::string blob;
  ASSERT_TRUE(SnapshotSampler(sampler, &blob).ok());
  auto restored = RestoreSampler(blob).value();
  EXPECT_EQ(restored.options().metric, Metric::kLinf);
  EXPECT_EQ(restored.options().hash_family, HashFamily::kKWisePoly);
  EXPECT_EQ(restored.options().kwise_k, 16u);
  EXPECT_EQ(restored.options().k, 3u);
  EXPECT_TRUE(restored.options().random_representative);
}

TEST(SnapshotTest, RejectsGarbage) {
  EXPECT_FALSE(RestoreSampler("").ok());
  EXPECT_FALSE(RestoreSampler("not a snapshot at all").ok());
}

TEST(SnapshotTest, RejectsTruncation) {
  auto sampler = RobustL0SamplerIW::Create(SnapOptions(19)).value();
  for (int i = 0; i < 20; ++i) {
    sampler.Insert(Point{10.0 * i, 0.0, 0.0});
  }
  std::string blob;
  ASSERT_TRUE(SnapshotSampler(sampler, &blob).ok());
  for (size_t cut : {blob.size() - 1, blob.size() / 2, size_t{9}}) {
    EXPECT_FALSE(RestoreSampler(blob.substr(0, cut)).ok()) << cut;
  }
}

TEST(SnapshotTest, RejectsCorruptedPayload) {
  auto sampler = RobustL0SamplerIW::Create(SnapOptions(23)).value();
  sampler.Insert(Point{1.0, 2.0, 3.0});
  std::string blob;
  ASSERT_TRUE(SnapshotSampler(sampler, &blob).ok());
  // Flip a byte inside a stored coordinate: the cell-key integrity check
  // must reject the snapshot (the point no longer matches its cell).
  std::string corrupted = blob;
  corrupted[corrupted.size() - 5] ^= 0xFF;
  EXPECT_FALSE(RestoreSampler(corrupted).ok());
}

TEST(SnapshotTest, RejectsVersionMismatch) {
  auto sampler = RobustL0SamplerIW::Create(SnapOptions(29)).value();
  std::string blob;
  ASSERT_TRUE(SnapshotSampler(sampler, &blob).ok());
  blob[8] = 99;  // version field follows the 8-byte magic
  EXPECT_FALSE(RestoreSampler(blob).ok());
}

TEST(SnapshotTest, EmptySamplerRoundTrips) {
  auto sampler = RobustL0SamplerIW::Create(SnapOptions(31)).value();
  std::string blob;
  ASSERT_TRUE(SnapshotSampler(sampler, &blob).ok());
  auto restored = RestoreSampler(blob).value();
  EXPECT_EQ(restored.accept_size(), 0u);
  EXPECT_EQ(restored.points_processed(), 0u);
  Xoshiro256pp rng(1);
  EXPECT_FALSE(restored.Sample(&rng).has_value());
}

// ----------------------------------------------- sliding-window snapshots

SamplerOptions SwSnapOptions(uint64_t seed) {
  SamplerOptions opts;
  opts.dim = 1;
  opts.alpha = 1.0;
  opts.seed = seed;
  opts.accept_cap = 8;
  opts.expected_stream_length = 1 << 14;
  return opts;
}

TEST(SwSnapshotTest, RoundTripPreservesLevels) {
  auto original = RobustL0SamplerSW::Create(SwSnapOptions(41), 64).value();
  for (int i = 0; i < 500; ++i) {
    original.Insert(Point{10.0 * (i % 150)}, i);
  }
  std::string blob;
  ASSERT_TRUE(SnapshotSamplerSW(original, &blob).ok());
  auto restored_result = RestoreSamplerSW(blob);
  ASSERT_TRUE(restored_result.ok()) << restored_result.status().ToString();
  RobustL0SamplerSW restored = std::move(restored_result).value();

  EXPECT_EQ(restored.points_processed(), original.points_processed());
  EXPECT_EQ(restored.latest_stamp(), original.latest_stamp());
  ASSERT_EQ(restored.num_levels(), original.num_levels());
  for (size_t l = 0; l < original.num_levels(); ++l) {
    EXPECT_EQ(restored.level(l).accept_size(),
              original.level(l).accept_size())
        << "level " << l;
    EXPECT_EQ(restored.level(l).group_count(),
              original.level(l).group_count())
        << "level " << l;
  }
  EXPECT_EQ(restored.SpaceWords(), original.SpaceWords());
}

TEST(SwSnapshotTest, RestoredSamplerContinuesTheStream) {
  auto uninterrupted =
      RobustL0SamplerSW::Create(SwSnapOptions(43), 32).value();
  auto first_half = RobustL0SamplerSW::Create(SwSnapOptions(43), 32).value();
  for (int i = 0; i < 200; ++i) {
    uninterrupted.Insert(Point{10.0 * (i % 80)}, i);
    first_half.Insert(Point{10.0 * (i % 80)}, i);
  }
  std::string blob;
  ASSERT_TRUE(SnapshotSamplerSW(first_half, &blob).ok());
  auto resumed = RestoreSamplerSW(blob).value();
  for (int i = 200; i < 400; ++i) {
    uninterrupted.Insert(Point{10.0 * (i % 80)}, i);
    resumed.Insert(Point{10.0 * (i % 80)}, i);
  }
  for (size_t l = 0; l < uninterrupted.num_levels(); ++l) {
    EXPECT_EQ(resumed.level(l).accept_size(),
              uninterrupted.level(l).accept_size())
        << "level " << l;
    EXPECT_EQ(resumed.level(l).group_count(),
              uninterrupted.level(l).group_count())
        << "level " << l;
  }
  // Both must keep yielding valid window samples.
  Xoshiro256pp rng(45);
  const auto sample = resumed.Sample(399, &rng);
  ASSERT_TRUE(sample.has_value());
  EXPECT_GT(static_cast<int64_t>(sample->stream_index), 399 - 32);
}

TEST(SwSnapshotTest, ReservoirModeRoundTrips) {
  SamplerOptions opts = SwSnapOptions(47);
  opts.random_representative = true;
  auto original = RobustL0SamplerSW::Create(opts, 16).value();
  for (int i = 0; i < 100; ++i) {
    original.Insert(Point{0.05 * (i % 5)}, i);  // one group, many members
  }
  std::string blob;
  ASSERT_TRUE(SnapshotSamplerSW(original, &blob).ok());
  auto restored = RestoreSamplerSW(blob).value();
  Xoshiro256pp rng(49);
  const auto sample = restored.Sample(99, &rng);
  ASSERT_TRUE(sample.has_value());
  // Reservoir sample must be an in-window member of the group.
  EXPECT_GT(static_cast<int64_t>(sample->stream_index), 99 - 16);
}

TEST(SwSnapshotTest, RejectsCrossTypeAndGarbage) {
  // An IW snapshot must not restore as a SW sampler and vice versa.
  auto iw = RobustL0SamplerIW::Create(SnapOptions(51)).value();
  iw.Insert(Point{0.0, 0.0, 0.0});
  std::string iw_blob;
  ASSERT_TRUE(SnapshotSampler(iw, &iw_blob).ok());
  EXPECT_FALSE(RestoreSamplerSW(iw_blob).ok());

  auto sw = RobustL0SamplerSW::Create(SwSnapOptions(53), 8).value();
  sw.Insert(Point{0.0}, 0);
  std::string sw_blob;
  ASSERT_TRUE(SnapshotSamplerSW(sw, &sw_blob).ok());
  EXPECT_FALSE(RestoreSampler(sw_blob).ok());
  EXPECT_FALSE(RestoreSamplerSW("garbage").ok());
}

TEST(SwSnapshotTest, RejectsTruncationsAndMutations) {
  auto sw = RobustL0SamplerSW::Create(SwSnapOptions(55), 16).value();
  for (int i = 0; i < 50; ++i) sw.Insert(Point{10.0 * i}, i);
  std::string blob;
  ASSERT_TRUE(SnapshotSamplerSW(sw, &blob).ok());
  EXPECT_FALSE(RestoreSamplerSW(blob.substr(0, blob.size() / 2)).ok());
  std::string mutated = blob;
  mutated[blob.size() / 3] ^= 0x5A;
  EXPECT_FALSE(RestoreSamplerSW(mutated).ok());
}

// ------------------------------------------------ format versioning

/// Same checksum as core/snapshot.cc: FNV-1a finalized with SplitMix64.
uint64_t BlobChecksum(const std::string& data, size_t length) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < length; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return SplitMix64(h);
}

/// Downgrades a v2 blob to the v1 wire format: excise the 8-byte peak
/// watermark at `peak_offset`, patch the version word, reseal the
/// trailing checksum.
std::string DowngradeToV1(const std::string& v2, size_t peak_offset) {
  std::string v1 = v2.substr(0, v2.size() - 8);  // drop the checksum
  v1.erase(peak_offset, 8);
  const uint32_t version = 1;
  std::memcpy(&v1[8], &version, sizeof(version));
  std::string sealed = v1;
  BinaryWriter writer(&sealed);
  writer.PutU64(BlobChecksum(v1, v1.size()));
  return sealed;
}

TEST(SnapshotTest, PeakWatermarkSurvivesRestore) {
  // A tiny cap over many groups forces refilter waves, so the live
  // accept set ends well below its historical peak — the v2 field must
  // carry that watermark across the round trip.
  SamplerOptions opts = SnapOptions(61);
  opts.accept_cap = 6;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  for (int i = 0; i < 800; ++i) {
    sampler.Insert(Point{9.0 * (i % 97), 5.0 * (i % 89), 2.0 * (i % 83)});
  }
  std::string blob;
  ASSERT_TRUE(SnapshotSampler(sampler, &blob).ok());
  auto restored = RestoreSampler(blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().PeakSpaceWords(), sampler.PeakSpaceWords());

  auto sw = RobustL0SamplerSW::Create(SwSnapOptions(62), 64).value();
  for (int i = 0; i < 800; ++i) {
    // Stamp jumps past whole windows: expiry shrinks the tables below
    // their peak occupancy.
    sw.Insert(Point{10.0 * (i % 37)}, 3 * i);
  }
  std::string sw_blob;
  ASSERT_TRUE(SnapshotSamplerSW(sw, &sw_blob).ok());
  auto sw_restored = RestoreSamplerSW(sw_blob);
  ASSERT_TRUE(sw_restored.ok());
  EXPECT_EQ(sw_restored.value().PeakSpaceWords(), sw.PeakSpaceWords());
}

TEST(SnapshotTest, LegacyV1BlobsStillRestore) {
  // v1 predates the peak watermark. A downgraded blob (field excised,
  // version patched, checksum resealed) must restore with identical
  // sampler state; only the peak restarts at the restored size.
  SamplerOptions opts = SnapOptions(63);
  opts.accept_cap = 6;
  auto sampler = RobustL0SamplerIW::Create(opts).value();
  for (int i = 0; i < 800; ++i) {
    sampler.Insert(Point{9.0 * (i % 97), 5.0 * (i % 89), 2.0 * (i % 83)});
  }
  std::string v2;
  ASSERT_TRUE(SnapshotSampler(sampler, &v2).ok());
  // IW header: magic 8 + version 4 + options 72 + level 4 + processed 8
  // + next id 8 = 104; the peak watermark sits right after.
  auto restored = RestoreSampler(DowngradeToV1(v2, 104));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().points_processed(), sampler.points_processed());
  EXPECT_EQ(restored.value().accept_size(), sampler.accept_size());
  EXPECT_EQ(restored.value().level(), sampler.level());
  EXPECT_LT(restored.value().PeakSpaceWords(), sampler.PeakSpaceWords());
  // Re-snapshotting a v1 restore produces a v2 blob again.
  std::string resealed;
  ASSERT_TRUE(SnapshotSampler(restored.value(), &resealed).ok());
  uint32_t version = 0;
  std::memcpy(&version, resealed.data() + 8, sizeof(version));
  EXPECT_EQ(version, 2u);

  auto sw = RobustL0SamplerSW::Create(SwSnapOptions(64), 64).value();
  for (int i = 0; i < 800; ++i) {
    sw.Insert(Point{10.0 * (i % 37)}, 3 * i);
  }
  std::string sw_v2;
  ASSERT_TRUE(SnapshotSamplerSW(sw, &sw_v2).ok());
  // SW header: magic 8 + version 4 + options 72 + window 8 + id counter
  // 8 + processed 8 + latest stamp 8 + errors 8 + stuck splits 8 = 132.
  auto sw_restored = RestoreSamplerSW(DowngradeToV1(sw_v2, 132));
  ASSERT_TRUE(sw_restored.ok()) << sw_restored.status().ToString();
  EXPECT_EQ(sw_restored.value().points_processed(), sw.points_processed());
  EXPECT_EQ(sw_restored.value().error_count(), sw.error_count());
  EXPECT_LT(sw_restored.value().PeakSpaceWords(), sw.PeakSpaceWords());
}

}  // namespace
}  // namespace rl0
